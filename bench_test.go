package rapid

// One testing.B benchmark per table/figure of the paper's evaluation (§7).
// The benchmarks exercise the real kernels; simulated DPU metrics (GiB/s,
// Mrows/s at 800 MHz) are attached via b.ReportMetric next to the native
// wall-clock numbers Go reports. `go test -bench=. -benchmem` regenerates
// everything; cmd/rapid-bench prints the full paper-style tables.

import (
	"fmt"
	"sync"
	"testing"

	"rapid/internal/bench"
	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dms"
	"rapid/internal/dpu"
	"rapid/internal/hostdb"
	"rapid/internal/ops"
	"rapid/internal/primitives"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

func mk4ByteCols(rows, cols int) []coltypes.Data {
	out := make([]coltypes.Data, cols)
	for c := range out {
		d := coltypes.New(coltypes.W4, rows)
		for i := 0; i < rows; i++ {
			d.Set(i, int64(i*2654435761+c))
		}
		out[c] = d
	}
	return out
}

// Fig 8: hardware partitioning bandwidth per DMS strategy.
func BenchmarkFig8_HardwarePartitioning(b *testing.B) {
	const rows = 1 << 20
	cols := mk4ByteCols(rows, 4)
	strategies := []struct {
		name string
		spec dms.PartitionSpec
	}{
		{"radix", dms.PartitionSpec{Strategy: dms.Radix, Fanout: 32, KeyCols: []int{0}}},
		{"hash1", dms.PartitionSpec{Strategy: dms.Hash, Fanout: 32, KeyCols: []int{0}}},
		{"hash2", dms.PartitionSpec{Strategy: dms.Hash, Fanout: 32, KeyCols: []int{0, 1}}},
		{"hash4", dms.PartitionSpec{Strategy: dms.Hash, Fanout: 32, KeyCols: []int{0, 1, 2, 3}}},
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			soc := dpu.MustNew(dpu.DefaultConfig())
			eng := dms.NewEngine(dms.DefaultModel(), soc.DRAM())
			var simBW float64
			for i := 0; i < b.N; i++ {
				_, tm, err := eng.PartitionIDs(cols, s.spec)
				if err != nil {
					b.Fatal(err)
				}
				simBW = tm.BytesPerSec() / (1 << 30)
			}
			b.SetBytes(rows * 16)
			b.ReportMetric(simBW, "simGiB/s")
		})
	}
}

// Fig 9: DMS read bandwidth at the calibration point (4 cols, 128 rows).
func BenchmarkFig9_DMSReadWrite(b *testing.B) {
	const rows = 1 << 17
	src := mk4ByteCols(rows, 4)
	soc := dpu.MustNew(dpu.DefaultConfig())
	eng := dms.NewEngine(dms.DefaultModel(), soc.DRAM())
	bufs := make([]coltypes.Data, 4)
	for c := range bufs {
		bufs[c] = coltypes.New(coltypes.W4, 128)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ResetTotals()
		for lo := 0; lo+128 <= rows; lo += 128 {
			eng.Read(src, lo, lo+128, bufs)
		}
		b.ReportMetric(eng.Totals().BytesPerSec()/(1<<30), "simGiB/s")
	}
	b.SetBytes(rows * 16)
}

// §7.2: the filter primitive (Listing 1).
func BenchmarkFilterMicro(b *testing.B) {
	const rows = 1 << 20
	d := coltypes.New(coltypes.W4, rows)
	for i := 0; i < rows; i++ {
		d.Set(i, int64(i%1000))
	}
	soc := dpu.MustNew(dpu.DefaultConfig())
	core := soc.Core(0)
	bv := bits.NewVector(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bv.ClearAll()
		core.Reset()
		primitives.FilterConstBV(core, d, primitives.LT, 500, bv)
	}
	b.SetBytes(rows * 4)
	cyclesPerRow := float64(core.Cycles()) / rows
	b.ReportMetric(cyclesPerRow, "simCycles/row")
	b.ReportMetric(soc.Config().FreqHz/cyclesPerRow/1e6, "simMrows/s/core")
}

// Fig 10: software partitioning at the paper's headline point (32-way).
func BenchmarkFig10_SoftwarePartitioning(b *testing.B) {
	const rows = 1 << 19
	cols := mk4ByteCols(rows, 2)
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		ctx := qef.NewContext(qef.ModeDPU)
		base, err := ops.PartitionByHash(ctx, cols, []int{0}, ops.PartScheme{Rounds: []int{32}}, 256)
		if err != nil {
			b.Fatal(err)
		}
		ctx.Reset()
		if _, err := ops.SWPartitionRound(ctx, base, 32, 5, 256); err != nil {
			b.Fatal(err)
		}
		rate = float64(rows) / ctx.SimElapsed() / 1e6
	}
	b.SetBytes(rows * 8)
	b.ReportMetric(rate, "simMrows/s")
}

// Fig 11: join build kernel.
func BenchmarkFig11_JoinBuild(b *testing.B) {
	for _, tile := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("tile%d", tile), func(b *testing.B) {
			const rows = 1 << 16
			keys := make([]int64, rows)
			for i := range keys {
				keys[i] = int64(i)
			}
			hv := primitives.HashColumns(nil, []coltypes.Data{coltypes.FromInt64s(coltypes.W4, keys)}, nil)
			soc := dpu.MustNew(dpu.DefaultConfig())
			core := soc.Core(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Reset()
				ht := primitives.NewCompactHT(rows, 2048)
				ht.Build(core, hv, keys, nil, tile)
			}
			sec := soc.Config().Seconds(core.Cycles())
			b.ReportMetric(float64(rows)/sec/1e6, "simMrows/s/core")
		})
	}
}

// Fig 12: join probe kernel at 50% hit ratio.
func BenchmarkFig12_JoinProbe(b *testing.B) {
	for _, tile := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("tile%d", tile), func(b *testing.B) {
			const rows = 1 << 16
			buildKeys := make([]int64, rows)
			probeKeys := make([]int64, rows)
			for i := range buildKeys {
				buildKeys[i] = int64(i)
				probeKeys[i] = int64(i * 2)
			}
			bhv := primitives.HashColumns(nil, []coltypes.Data{coltypes.FromInt64s(coltypes.W4, buildKeys)}, nil)
			phv := primitives.HashColumns(nil, []coltypes.Data{coltypes.FromInt64s(coltypes.W4, probeKeys)}, nil)
			ht := primitives.NewCompactHT(rows, 2048)
			ht.Build(nil, bhv, buildKeys, nil, tile)
			soc := dpu.MustNew(dpu.DefaultConfig())
			core := soc.Core(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Reset()
				ht.Probe(core, phv, probeKeys, nil, tile, nil)
			}
			sec := soc.Config().Seconds(core.Cycles())
			b.ReportMetric(32*float64(rows)/sec/1e9, "simBrows/s/DPU")
		})
	}
}

// Fig 13: vectorized vs row-at-a-time join execution.
func BenchmarkFig13_Vectorization(b *testing.B) {
	const rows = 1 << 16
	nb, np := rows/4, rows
	buildKeys := make([]int64, nb)
	probeKeys := make([]int64, np)
	for i := range buildKeys {
		buildKeys[i] = int64(i)
	}
	for i := range probeKeys {
		probeKeys[i] = int64(i % (2 * nb))
	}
	bhv := primitives.HashColumns(nil, []coltypes.Data{coltypes.FromInt64s(coltypes.W4, buildKeys)}, nil)
	phv := primitives.HashColumns(nil, []coltypes.Data{coltypes.FromInt64s(coltypes.W4, probeKeys)}, nil)
	for _, vectorized := range []bool{true, false} {
		name := "vectorized"
		if !vectorized {
			name = "row-at-a-time"
		}
		b.Run(name, func(b *testing.B) {
			soc := dpu.MustNew(dpu.DefaultConfig())
			core := soc.Core(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Reset()
				ht := primitives.NewCompactHT(nb, primitives.BucketsFor(nb))
				ht.Build(core, bhv, buildKeys, nil, 256)
				ht.Probe(core, phv, probeKeys, nil, 256, nil)
				if !vectorized {
					primitives.ChargeScalarDispatch(core, nb+np)
				}
			}
			b.ReportMetric(float64(core.Cycles())/float64(nb+np), "simCycles/row")
		})
	}
}

var (
	benchDBOnce sync.Once
	benchDB     *hostdb.Database
	benchDBErr  error
)

func tpchBenchDB(b *testing.B) *hostdb.Database {
	b.Helper()
	benchDBOnce.Do(func() {
		benchDB = hostdb.New()
		benchDBErr = tpch.PopulateHostDB(benchDB, tpch.Config{ScaleFactor: 0.005, Seed: 2018})
	})
	if benchDBErr != nil {
		b.Fatal(benchDBErr)
	}
	return benchDB
}

// Fig 16 (and the System X side of Fig 14): each TPC-H query on the
// System X row engine vs RAPID software.
func BenchmarkFig16_SoftwareOnly(b *testing.B) {
	db := tpchBenchDB(b)
	for _, q := range tpch.Queries() {
		q := q
		b.Run(q.Name+"/systemx", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/rapid-sw", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Fig 14 + Fig 15: the simulated-DPU run of every query, reporting the
// perf/watt ratio and offload fraction.
func BenchmarkFig14_PerfPerWatt(b *testing.B) {
	db := tpchBenchDB(b)
	for i := 0; i < b.N; i++ {
		runs, err := bench.RunQueries(db, 1)
		if err != nil {
			b.Fatal(err)
		}
		var ppw, frac float64
		for _, r := range runs {
			ppw += r.PerfPerWatt()
			frac += r.RapidFrac
		}
		b.ReportMetric(ppw/float64(len(runs)), "avgPerfPerWatt")
		b.ReportMetric(100*frac/float64(len(runs)), "avgRapid%")
	}
}

// Fig 4: the task-formation optimization itself.
func BenchmarkFig4_TaskFormation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.RunFig4()
		if len(tbl.Rows) != 1 {
			b.Fatal("task formation failed")
		}
	}
}
