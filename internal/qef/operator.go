package qef

// Operator is a RAPID data processing operator (paper §5.4): operators are
// defined by op_dmem_size, create, open, produce and close. Execution is
// push-based: the task source (relation accessor or upstream operator)
// calls Produce once per tile, and Close when the stream ends. Operators
// forward tiles to their downstream operator inside the same task; results
// at task boundaries are materialized to DRAM by a sink operator.
type Operator interface {
	// DMEMSize returns the DMEM bytes the operator needs for its internal
	// state and output buffers at the given tile size (op_dmem_size). Task
	// formation (§5.2) packs operators into tasks under this budget.
	DMEMSize(tileRows int) int
	// Open prepares per-core state before the first tile (open).
	Open(tc *TaskCtx) error
	// Produce consumes one tile (produce). The tile's buffers belong to the
	// caller and may be reused after the call returns.
	Produce(tc *TaskCtx, t *Tile) error
	// Close flushes state at end of data (close).
	Close(tc *TaskCtx) error
}

// Chain opens all operators, streams tiles from source through the chain
// head, and closes in order. It is the execution of one task instance.
func Chain(tc *TaskCtx, head Operator, source func(emit func(*Tile) error) error) error {
	if err := head.Open(tc); err != nil {
		return err
	}
	if err := source(func(t *Tile) error { return head.Produce(tc, t) }); err != nil {
		return err
	}
	return head.Close(tc)
}
