// Package qef is RAPID's query execution framework (paper §5.1): push-based
// operator execution, an actor model for parallelism across the 32 dpCores,
// the relation accessor hiding the DMS, and vectorized (multiple-rows-at-a-
// time) processing.
//
// The same operator code runs in two modes. In ModeDPU every primitive
// charges dpCore cycles and every data movement goes through the DMS model;
// the simulated elapsed time of a task is max(compute, transfer) per the
// double-buffering overlap the hardware provides. In ModeX86 accounting is
// off and the code simply runs as fast as Go allows — the configuration
// behind the paper's "software-only performance of RAPID" comparison
// (Fig 16).
package qef

import (
	"fmt"
	"runtime"
	"sync"

	"rapid/internal/ate"
	"rapid/internal/dms"
	"rapid/internal/dpu"
	"rapid/internal/mem"
)

// Mode selects the execution configuration.
type Mode int

const (
	// ModeDPU simulates execution on the RAPID DPU with full cycle and
	// transfer accounting.
	ModeDPU Mode = iota
	// ModeX86 runs the identical engine natively without accounting.
	ModeX86
)

func (m Mode) String() string {
	if m == ModeDPU {
		return "dpu"
	}
	return "x86"
}

// Context is the execution environment shared by a query: the SoC, the DMS,
// the ATE router and per-core simulated-time accumulators.
type Context struct {
	Mode   Mode
	SoC    *dpu.SoC
	DMS    *dms.Engine
	Router *ate.Router

	workers int

	mu      sync.Mutex
	simTime []float64 // per-core simulated elapsed seconds (ModeDPU)
	// Global DDR bus occupancy: the DMS serializes all cores' DRAM
	// transfers on the memory interface, one lane per direction.
	busRead  float64
	busWrite float64
}

// NewContext builds an execution context. In ModeDPU the SoC is the paper's
// 32-core DPU; in ModeX86 the worker count follows GOMAXPROCS.
func NewContext(mode Mode) *Context {
	return NewContextWith(mode, dpu.DefaultConfig())
}

// NewContextWith builds a context with a custom DPU configuration.
func NewContextWith(mode Mode, cfg dpu.Config) *Context {
	soc := dpu.MustNew(cfg)
	ctx := &Context{
		Mode:    mode,
		SoC:     soc,
		DMS:     dms.NewEngine(dms.DefaultModel(), soc.DRAM()),
		Router:  ate.NewRouter(cfg),
		simTime: make([]float64, cfg.NumCores),
	}
	if mode == ModeDPU {
		ctx.workers = cfg.NumCores
	} else {
		ctx.workers = runtime.GOMAXPROCS(0)
		if ctx.workers > cfg.NumCores {
			ctx.workers = cfg.NumCores
		}
	}
	return ctx
}

// Workers returns the number of parallel workers (virtual dpCores in use).
func (c *Context) Workers() int { return c.workers }

// Reset clears all accounting for a fresh measurement.
func (c *Context) Reset() {
	c.SoC.Reset()
	c.DMS.ResetTotals()
	c.mu.Lock()
	for i := range c.simTime {
		c.simTime[i] = 0
	}
	c.busRead, c.busWrite = 0, 0
	c.mu.Unlock()
}

// addSimTime records simulated elapsed seconds on a core.
func (c *Context) addSimTime(core int, sec float64) {
	c.mu.Lock()
	c.simTime[core] += sec
	c.mu.Unlock()
}

// SimElapsed returns the simulated elapsed time of everything executed so
// far. Cores run in parallel (makespan = busiest core), but all cores share
// the DDR interface: the elapsed time is also bounded below by the total
// bus occupancy per direction.
func (c *Context) SimElapsed() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m float64
	for _, t := range c.simTime {
		if t > m {
			m = t
		}
	}
	if c.busRead > m {
		m = c.busRead
	}
	if c.busWrite > m {
		m = c.busWrite
	}
	return m
}

// BusSeconds returns the accumulated DDR bus occupancy (read, write).
func (c *Context) BusSeconds() (read, write float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busRead, c.busWrite
}

// SimTotalBusy returns the sum of per-core simulated busy seconds.
func (c *Context) SimTotalBusy() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s float64
	for _, t := range c.simTime {
		s += t
	}
	return s
}

// TaskCtx is the per-core execution state handed to operators: the core
// (nil in ModeX86), its DMEM, and the transfer-time accumulator that the
// relation accessor fills.
type TaskCtx struct {
	Ctx    *Context
	CoreID int
	Core   *dpu.Core // nil in ModeX86
	DMEM   *mem.DMEM

	transferSec float64
	// NoOverlap disables compute/transfer overlap accounting for the
	// current task (e.g. Fig 10 disables output double buffering).
	NoOverlap bool

	// Scratch arena for per-tile expression buffers (DMEM temporaries on
	// the DPU). Reset at tile boundaries by the task source; buffers must
	// not be retained across tiles.
	arena    []int64
	arenaOff int
}

// I64Scratch returns an n-element scratch buffer valid until the next
// ResetScratch. Contents are zeroed.
func (tc *TaskCtx) I64Scratch(n int) []int64 {
	if tc.arenaOff+n > len(tc.arena) {
		grow := 2 * (tc.arenaOff + n)
		if grow < 1<<14 {
			grow = 1 << 14
		}
		tc.arena = make([]int64, grow)
		tc.arenaOff = 0
	}
	buf := tc.arena[tc.arenaOff : tc.arenaOff+n : tc.arenaOff+n]
	tc.arenaOff += n
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// ResetScratch recycles all scratch buffers. Called by task sources before
// emitting each tile.
func (tc *TaskCtx) ResetScratch() { tc.arenaOff = 0 }

// AddTransfer accumulates DMS transfer time for overlap accounting, and
// bills the shared DDR bus.
func (tc *TaskCtx) AddTransfer(t dms.Timing) {
	tc.transferSec += t.Seconds
	tc.Ctx.mu.Lock()
	if t.Write {
		tc.Ctx.busWrite += t.Seconds
	} else {
		tc.Ctx.busRead += t.Seconds
	}
	tc.Ctx.mu.Unlock()
}

// TransferSeconds returns the accumulated transfer time.
func (tc *TaskCtx) TransferSeconds() float64 { return tc.transferSec }

// WorkUnit is one schedulable piece of a task: typically "process this
// chunk" or "join this partition pair". It runs pinned to a core.
type WorkUnit func(tc *TaskCtx) error

// RunParallel executes the work units on the core pool: worker w owns core
// w exclusively (the actor model — no shared mutable state between cores;
// communication goes through ATE or DMS). Units are assigned round-robin,
// matching the compiler's static task scheduling: simulated load balance
// must not depend on how fast the Go host happens to run each goroutine.
// Per unit, the simulated elapsed time is max(compute, transfer) honoring
// double-buffered overlap, or their sum when the unit disabled overlap.
func (c *Context) RunParallel(units []WorkUnit) error {
	if len(units) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, c.workers)
	for w := 0; w < c.workers; w++ {
		if w >= len(units) {
			break
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tc := c.newTaskCtx(w)
			for i := w; i < len(units); i += c.workers {
				if errs[w] != nil {
					return
				}
				errs[w] = c.runUnit(tc, units[i])
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *Context) newTaskCtx(w int) *TaskCtx {
	tc := &TaskCtx{Ctx: c, CoreID: w}
	if c.Mode == ModeDPU {
		tc.Core = c.SoC.Core(w)
		tc.DMEM = tc.Core.DMEM()
	} else {
		tc.DMEM = mem.NewDMEMWithCapacity(c.SoC.Config().DMEMBytes)
	}
	return tc
}

func (c *Context) runUnit(tc *TaskCtx, u WorkUnit) error {
	tc.transferSec = 0
	tc.NoOverlap = false
	tc.DMEM.Reset()
	var beforeCycles dpu.Cycles
	if tc.Core != nil {
		beforeCycles = tc.Core.Cycles()
	}
	err := u(tc)
	if tc.Core != nil {
		compute := c.SoC.Config().Seconds(tc.Core.Cycles() - beforeCycles)
		transfer := tc.transferSec
		var elapsed float64
		if tc.NoOverlap {
			elapsed = compute + transfer
		} else if compute > transfer {
			elapsed = compute
		} else {
			elapsed = transfer
		}
		c.addSimTime(tc.CoreID, elapsed)
	}
	if err != nil {
		return fmt.Errorf("qef: work unit on core %d: %w", tc.CoreID, err)
	}
	return nil
}

// RunSerial executes one work unit on core 0 (coordinator work such as
// final merges).
func (c *Context) RunSerial(u WorkUnit) error {
	tc := c.newTaskCtx(0)
	return c.runUnit(tc, u)
}
