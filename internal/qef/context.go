// Package qef is RAPID's query execution framework (paper §5.1): push-based
// operator execution, an actor model for parallelism across the 32 dpCores,
// the relation accessor hiding the DMS, and vectorized (multiple-rows-at-a-
// time) processing.
//
// The same operator code runs in two modes. In ModeDPU every primitive
// charges dpCore cycles and every data movement goes through the DMS model;
// the simulated elapsed time of a task is max(compute, transfer) per the
// double-buffering overlap the hardware provides. In ModeX86 accounting is
// off and the code simply runs as fast as Go allows — the configuration
// behind the paper's "software-only performance of RAPID" comparison
// (Fig 16).
package qef

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rapid/internal/ate"
	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dms"
	"rapid/internal/dpu"
	"rapid/internal/mem"
	"rapid/internal/obs"
)

// Mode selects the execution configuration.
type Mode int

const (
	// ModeDPU simulates execution on the RAPID DPU with full cycle and
	// transfer accounting.
	ModeDPU Mode = iota
	// ModeX86 runs the identical engine natively without accounting.
	ModeX86
)

func (m Mode) String() string {
	if m == ModeDPU {
		return "dpu"
	}
	return "x86"
}

// Executor runs work-unit batches on behalf of a Context. A nil executor
// means the context owns its parallelism outright (one goroutine per virtual
// core, the pre-scheduler behavior); a non-nil executor — the shared-SoC
// scheduler of internal/sched — multiplexes the units over a process-wide
// worker pool so concurrent queries share one machine's worth of cores.
// Implementations must preserve RunParallel's contract: unit i is pinned to
// virtual core i mod Workers(), units of one virtual core execute in
// ascending index order, and the deterministic first-error semantics hold.
type Executor interface {
	RunUnits(c *Context, units []WorkUnit) error
}

// Context is the execution environment shared by a query: the SoC, the DMS,
// the ATE router and per-core simulated-time accumulators.
type Context struct {
	Mode   Mode
	SoC    *dpu.SoC
	DMS    *dms.Engine
	Router *ate.Router

	// Prof, when non-nil, receives per-operator attribution of every
	// cycle and DMS transfer executed through this context.
	Prof *obs.Profile
	// Metrics, when non-nil, receives engine-wide counters (shared across
	// queries; typically the owning Database's registry).
	Metrics *obs.Registry

	// Exec, when non-nil, runs all work-unit batches (RunParallel and
	// RunSerial) on a shared scheduler instead of context-owned goroutines.
	Exec Executor

	// NoPrune disables zone-map scan pruning for this query (the metamorphic
	// test lanes compare pruned vs unpruned runs; EXPLAIN-level debugging uses
	// it too). Set once before execution.
	NoPrune bool

	// tilesPruned counts storage chunks skipped by zone-map pruning across
	// the whole query; atomic because distributed fragments may share-report
	// through wrapper goroutines.
	tilesPruned atomic.Int64

	// goCtx carries the query's cancellation signal; nil means "never
	// canceled". Set once before execution via SetGoContext.
	goCtx context.Context

	workers int

	// pools holds one TilePool per core, created lazily by the first task
	// context on that core and reused for the lifetime of the context —
	// the host-side analogue of each dpCore owning its DMEM. Worker w only
	// touches pools[w], and the goroutine spawn / wg.Wait pairs of the run
	// loops order successive uses, so no lock is needed.
	pools []*mem.TilePool

	// activeSpan is the operator span that work units started from this
	// context attribute to. It is written only by the orchestrator goroutine
	// strictly between RunParallel/RunSerial calls (the goroutine spawn and
	// wg.Wait establish the happens-before edges), so no lock is needed.
	activeSpan *obs.OpSpan

	mu      sync.Mutex
	simTime []float64 // per-core simulated elapsed seconds (ModeDPU)
	// Global DDR bus occupancy: the DMS serializes all cores' DRAM
	// transfers on the memory interface, one lane per direction.
	busRead  float64
	busWrite float64
}

// NewContext builds an execution context. In ModeDPU the SoC is the paper's
// 32-core DPU; in ModeX86 the worker count follows GOMAXPROCS.
func NewContext(mode Mode) *Context {
	return NewContextWith(mode, dpu.DefaultConfig())
}

// NewContextWith builds a context with a custom DPU configuration.
func NewContextWith(mode Mode, cfg dpu.Config) *Context {
	soc := dpu.MustNew(cfg)
	ctx := &Context{
		Mode:    mode,
		SoC:     soc,
		DMS:     dms.NewEngine(dms.DefaultModel(), soc.DRAM()),
		Router:  ate.NewRouter(cfg),
		simTime: make([]float64, cfg.NumCores),
		pools:   make([]*mem.TilePool, cfg.NumCores),
	}
	if mode == ModeDPU {
		ctx.workers = cfg.NumCores
	} else {
		ctx.workers = runtime.GOMAXPROCS(0)
		if ctx.workers > cfg.NumCores {
			ctx.workers = cfg.NumCores
		}
	}
	return ctx
}

// Workers returns the number of parallel workers (virtual dpCores in use).
func (c *Context) Workers() int { return c.workers }

// SetGoContext installs the query's cancellation context. Must be called
// before execution starts; tile loops and work-unit dispatch observe it.
func (c *Context) SetGoContext(ctx context.Context) { c.goCtx = ctx }

// Err returns the query's cancellation status: nil while the query may keep
// running, or the context error (context.Canceled, context.DeadlineExceeded)
// once it must stop. Checked at tile-loop boundaries and before every work
// unit, so cancellation latency is bounded by one tile.
func (c *Context) Err() error {
	if c.goCtx == nil {
		return nil
	}
	return c.goCtx.Err()
}

// Reset clears all accounting for a fresh measurement.
func (c *Context) Reset() {
	c.SoC.Reset()
	c.DMS.ResetTotals()
	c.mu.Lock()
	for i := range c.simTime {
		c.simTime[i] = 0
	}
	c.busRead, c.busWrite = 0, 0
	c.mu.Unlock()
	c.tilesPruned.Store(0)
}

// AddTilesPruned accumulates zone-pruned chunk counts for the query.
func (c *Context) AddTilesPruned(n int64) { c.tilesPruned.Add(n) }

// TilesPruned returns the number of storage chunks zone-map pruning skipped.
func (c *Context) TilesPruned() int64 { return c.tilesPruned.Load() }

// ActiveSpan returns the operator span subsequently started work units
// attribute to (nil when profiling is off). Task sources use it to record
// orchestrator-side per-scan accounting such as tile totals.
func (c *Context) ActiveSpan() *obs.OpSpan { return c.activeSpan }

// addSimTime records simulated elapsed seconds on a core.
func (c *Context) addSimTime(core int, sec float64) {
	c.mu.Lock()
	c.simTime[core] += sec
	c.mu.Unlock()
}

// SimElapsed returns the simulated elapsed time of everything executed so
// far. Cores run in parallel (makespan = busiest core), but all cores share
// the DDR interface: the elapsed time is also bounded below by the total
// bus occupancy per direction.
func (c *Context) SimElapsed() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m float64
	for _, t := range c.simTime {
		if t > m {
			m = t
		}
	}
	if c.busRead > m {
		m = c.busRead
	}
	if c.busWrite > m {
		m = c.busWrite
	}
	return m
}

// BusSeconds returns the accumulated DDR bus occupancy (read, write).
func (c *Context) BusSeconds() (read, write float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busRead, c.busWrite
}

// SetActiveSpan installs the operator span that subsequently started work
// units attribute to, returning the previous one so callers can restore it.
// Must only be called by the orchestrator goroutine between parallel phases.
func (c *Context) SetActiveSpan(s *obs.OpSpan) *obs.OpSpan {
	prev := c.activeSpan
	c.activeSpan = s
	return prev
}

// AccountSpanTransfer attributes a DMS operation issued by the orchestrator
// itself (outside any work unit, e.g. the hardware-partitioning hash pass)
// to the active span. It does not bill the DDR bus lanes: orchestrator-side
// DMS time is modeled inside the operation's own timing, not as bus
// occupancy, matching the pre-profiling accounting.
func (c *Context) AccountSpanTransfer(t dms.Timing) {
	c.activeSpan.AddTransfer(0, t.Write, t.Bytes, t.Seconds)
}

// CountMetric bumps a named engine counter if a registry is attached.
func (c *Context) CountMetric(name string, delta int64) {
	c.Metrics.Counter(name).Add(delta)
}

// SimTotalBusy returns the sum of per-core simulated busy seconds.
func (c *Context) SimTotalBusy() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s float64
	for _, t := range c.simTime {
		s += t
	}
	return s
}

// TaskCtx is the per-core execution state handed to operators: the core
// (nil in ModeX86), its DMEM, and the transfer-time accumulator that the
// relation accessor fills.
type TaskCtx struct {
	Ctx    *Context
	CoreID int
	Core   *dpu.Core // nil in ModeX86
	DMEM   *mem.DMEM

	transferSec float64
	// NoOverlap disables compute/transfer overlap accounting for the
	// current task (e.g. Fig 10 disables output double buffering).
	NoOverlap bool

	// Interval profiler state: every cycle (ModeDPU) or nanosecond
	// (ModeX86) between a unit's start and end is attributed to exactly one
	// operator span — the one active since the last SwitchSpan. span is nil
	// when profiling is off.
	span   *obs.OpSpan
	markCy int64
	markT  time.Time

	// pool serves all tile- and unit-lifetime scratch buffers (the DMEM
	// temporaries on the DPU): expression accumulators, bit-vectors, RID
	// lists, gathered column buffers and header slices. Reset at tile
	// boundaries by the task source; buffers must not be retained across
	// tiles. Nil only for hand-built contexts in tests, which then fall
	// back to plain allocation.
	pool *mem.TilePool

	// tiles recycles the Tile structs operators emit downstream, reset
	// together with the pool at tile boundaries.
	tiles   []*Tile
	tileOff int
}

// I64Scratch returns an n-element scratch buffer valid until the next
// ResetScratch. Contents are zeroed.
func (tc *TaskCtx) I64Scratch(n int) []int64 {
	if tc.pool == nil {
		return make([]int64, n)
	}
	return tc.pool.I64(n)
}

// U32Scratch returns a zeroed n-element uint32 scratch buffer (hash values,
// group ids) valid until the next ResetScratch.
func (tc *TaskCtx) U32Scratch(n int) []uint32 {
	if tc.pool == nil {
		return make([]uint32, n)
	}
	return tc.pool.U32(n)
}

// RIDScratch returns an empty RID buffer with capacity n, for append-style
// fills (bit-vector → RID conversion), valid until the next ResetScratch.
func (tc *TaskCtx) RIDScratch(n int) []uint32 {
	if tc.pool == nil {
		return make([]uint32, 0, n)
	}
	return tc.pool.U32(n)[:0]
}

// BVScratch returns a cleared n-bit vector valid until the next
// ResetScratch.
func (tc *TaskCtx) BVScratch(n int) *bits.Vector {
	if tc.pool == nil {
		return bits.NewVector(n)
	}
	return tc.pool.BV(n)
}

// DataScratch returns a zeroed column buffer of the given width and length
// valid until the next ResetScratch.
func (tc *TaskCtx) DataScratch(w coltypes.Width, n int) coltypes.Data {
	if tc.pool == nil {
		return coltypes.New(w, n)
	}
	return tc.pool.Data(w, n)
}

// ColScratch returns a zeroed []coltypes.Data header slice of length n
// valid until the next ResetScratch.
func (tc *TaskCtx) ColScratch(n int) []coltypes.Data {
	if tc.pool == nil {
		return make([]coltypes.Data, n)
	}
	return tc.pool.Headers(n)
}

// RowScratch returns a zeroed [][]int64 header slice of length n valid
// until the next ResetScratch.
func (tc *TaskCtx) RowScratch(n int) [][]int64 {
	if tc.pool == nil {
		return make([][]int64, n)
	}
	return tc.pool.RowHeaders(n)
}

// TileScratch returns a recycled Tile over the given columns, valid until
// the next ResetScratch. Operators use it to emit derived tiles downstream
// without allocating.
func (tc *TaskCtx) TileScratch(cols []coltypes.Data, n int) *Tile {
	if tc.tileOff == len(tc.tiles) {
		tc.tiles = append(tc.tiles, new(Tile))
	}
	t := tc.tiles[tc.tileOff]
	tc.tileOff++
	*t = Tile{Cols: cols, N: n}
	return t
}

// MarkScratch opens a unit-lifetime scratch scope: buffers taken after it
// survive ResetScratch and are freed by the matching ReleaseScratch. Task
// sources bracket their across-tile buffers (e.g. the accessor's double
// buffers) with it.
func (tc *TaskCtx) MarkScratch() {
	if tc.pool != nil {
		tc.pool.Mark()
	}
}

// ReleaseScratch closes the innermost MarkScratch scope.
func (tc *TaskCtx) ReleaseScratch() {
	if tc.pool != nil {
		tc.pool.Release()
	}
}

// ResetScratch recycles all tile-lifetime scratch buffers (everything taken
// since the innermost MarkScratch). Called by task sources before emitting
// each tile.
func (tc *TaskCtx) ResetScratch() {
	if tc.pool != nil {
		tc.pool.ResetTile()
	}
	tc.tileOff = 0
}

// Pool exposes the task's buffer pool for the DMEM-conformance tests; nil
// for hand-built task contexts.
func (tc *TaskCtx) Pool() *mem.TilePool { return tc.pool }

// BindPool attaches the scratch pool serving this task context. The shared
// scheduler calls it before every unit dispatch: the pool belongs to the
// scheduler worker (not the virtual core), so pooled buffers survive across
// queries while each pool still has exactly one goroutine using it at a
// time. Scratch never outlives a unit, so rebinding between units is safe.
func (tc *TaskCtx) BindPool(p *mem.TilePool) { tc.pool = p }

// Canceled returns the owning query's cancellation status (see Context.Err).
// Task sources call it once per tile.
func (tc *TaskCtx) Canceled() error { return tc.Ctx.Err() }

// beginSpanClock starts the unit's attribution interval.
func (tc *TaskCtx) beginSpanClock() {
	if tc.Core != nil {
		tc.markCy = int64(tc.Core.Cycles())
	} else {
		tc.markT = time.Now()
	}
}

// flushSpan attributes the cycles (or wall time) elapsed since the last
// mark to the current span and restarts the interval.
func (tc *TaskCtx) flushSpan() {
	if tc.Core != nil {
		now := int64(tc.Core.Cycles())
		tc.span.AddCycles(tc.CoreID, now-tc.markCy)
		tc.markCy = now
	} else {
		now := time.Now()
		tc.span.AddWallNs(tc.CoreID, now.Sub(tc.markT).Nanoseconds())
		tc.markT = now
	}
}

// SwitchSpan flushes the interval accumulated so far into the outgoing
// span and makes next the current span, returning the previous one. Called
// by span wrappers at operator boundaries; no-op when profiling is off.
func (tc *TaskCtx) SwitchSpan(next *obs.OpSpan) *obs.OpSpan {
	prev := tc.span
	if tc.Ctx.Prof == nil {
		return prev
	}
	tc.flushSpan()
	tc.span = next
	return prev
}

// SpanTileIn counts one tile of rows entering the current span (used by
// task sources, which have no upstream span wrapper to tick them).
func (tc *TaskCtx) SpanTileIn(rows int) {
	tc.span.TickIn(tc.CoreID, int64(rows))
}

// SpanTileChunk counts one storage chunk (zone-map tile) actually scanned
// under the current span. Together with the orchestrator-side total/pruned
// counts, the profile invariant pruned+scanned == total holds per scan.
func (tc *TaskCtx) SpanTileChunk() {
	tc.span.TickTileScanned(tc.CoreID)
}

// AddTransfer accumulates DMS transfer time for overlap accounting, and
// bills the shared DDR bus.
func (tc *TaskCtx) AddTransfer(t dms.Timing) {
	tc.transferSec += t.Seconds
	tc.span.AddTransfer(tc.CoreID, t.Write, t.Bytes, t.Seconds)
	tc.Ctx.mu.Lock()
	if t.Write {
		tc.Ctx.busWrite += t.Seconds
	} else {
		tc.Ctx.busRead += t.Seconds
	}
	tc.Ctx.mu.Unlock()
}

// TransferSeconds returns the accumulated transfer time.
func (tc *TaskCtx) TransferSeconds() float64 { return tc.transferSec }

// WorkUnit is one schedulable piece of a task: typically "process this
// chunk" or "join this partition pair". It runs pinned to a core.
type WorkUnit func(tc *TaskCtx) error

// RunParallel executes the work units on the core pool: worker w owns core
// w exclusively (the actor model — no shared mutable state between cores;
// communication goes through ATE or DMS). Units are assigned round-robin,
// matching the compiler's static task scheduling: simulated load balance
// must not depend on how fast the Go host happens to run each goroutine.
// Per unit, the simulated elapsed time is max(compute, transfer) honoring
// double-buffered overlap, or their sum when the unit disabled overlap.
//
// Error handling is deterministic: a failure at unit index f cancels all
// units with a higher index that have not yet started (on every worker,
// not just the failing one), and the error returned is always the one from
// the lowest-indexed unit that failed. Units below the lowest failing
// index always run, so replaying a failing query reproduces both the error
// and the set of executed units.
func (c *Context) RunParallel(units []WorkUnit) error {
	if len(units) == 0 {
		return nil
	}
	if c.Exec != nil {
		return c.Exec.RunUnits(c, units)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(units))
	// Index of the lowest failing unit observed so far; len(units) means
	// no failure. Workers skip any unit above the watermark.
	var firstFailed atomic.Int64
	firstFailed.Store(int64(len(units)))
	for w := 0; w < c.workers; w++ {
		if w >= len(units) {
			break
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tc := c.newTaskCtx(w)
			for i := w; i < len(units); i += c.workers {
				if int64(i) > firstFailed.Load() {
					return
				}
				if err := c.RunUnit(tc, units[i]); err != nil {
					errs[i] = err
					for {
						cur := firstFailed.Load()
						if int64(i) >= cur || firstFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if f := firstFailed.Load(); f < int64(len(units)) {
		return errs[f]
	}
	return nil
}

// NewTaskCtx builds the execution state for virtual core w without binding a
// scratch pool: the shared scheduler creates one per (query, virtual core)
// and attaches a worker-owned pool via BindPool at each dispatch.
func (c *Context) NewTaskCtx(w int) *TaskCtx {
	tc := &TaskCtx{Ctx: c, CoreID: w}
	if c.Mode == ModeDPU {
		tc.Core = c.SoC.Core(w)
		tc.DMEM = tc.Core.DMEM()
	} else {
		tc.DMEM = mem.NewDMEMWithCapacity(c.SoC.Config().DMEMBytes)
	}
	return tc
}

func (c *Context) newTaskCtx(w int) *TaskCtx {
	tc := c.NewTaskCtx(w)
	if c.pools[w] == nil {
		c.pools[w] = mem.NewTilePool()
	}
	tc.pool = c.pools[w]
	return tc
}

// RunUnit executes one work unit on its task context with full per-unit
// accounting (scratch reset, span clock, cycle/transfer overlap). It is the
// single execution path for both the context-owned run loops and the shared
// scheduler's workers. A canceled query fails the unit before it starts.
func (c *Context) RunUnit(tc *TaskCtx, u WorkUnit) error {
	if err := c.Err(); err != nil {
		return fmt.Errorf("qef: work unit on core %d: %w", tc.CoreID, err)
	}
	c.CountMetric("qef_work_units_total", 1)
	tc.transferSec = 0
	tc.NoOverlap = false
	tc.DMEM.Reset()
	var growsBefore int64
	if tc.pool != nil {
		tc.pool.Reset()
		tc.tileOff = 0
		growsBefore = tc.pool.Grows()
	}
	profiling := c.Prof != nil
	if profiling {
		tc.span = c.activeSpan
		tc.beginSpanClock()
	}
	var beforeCycles dpu.Cycles
	if tc.Core != nil {
		beforeCycles = tc.Core.Cycles()
	}
	err := u(tc)
	if profiling {
		tc.flushSpan()
		tc.span = nil
	}
	if tc.pool != nil {
		if d := tc.pool.Grows() - growsBefore; d > 0 {
			c.CountMetric("qef_pool_grows_total", d)
		}
	}
	if tc.Core != nil {
		compute := c.SoC.Config().Seconds(tc.Core.Cycles() - beforeCycles)
		transfer := tc.transferSec
		var elapsed float64
		if tc.NoOverlap {
			elapsed = compute + transfer
		} else if compute > transfer {
			elapsed = compute
		} else {
			elapsed = transfer
		}
		c.addSimTime(tc.CoreID, elapsed)
	}
	if err != nil {
		return fmt.Errorf("qef: work unit on core %d: %w", tc.CoreID, err)
	}
	return nil
}

// RunSerial executes one work unit on core 0 (coordinator work such as
// final merges).
func (c *Context) RunSerial(u WorkUnit) error {
	if c.Exec != nil {
		return c.Exec.RunUnits(c, []WorkUnit{u})
	}
	tc := c.newTaskCtx(0)
	return c.RunUnit(tc, u)
}
