package qef

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rapid/internal/dpu"
	"rapid/internal/obs"
)

type nopOp struct{}

func (nopOp) DMEMSize(int) int              { return 0 }
func (nopOp) Open(*TaskCtx) error           { return nil }
func (nopOp) Produce(*TaskCtx, *Tile) error { return nil }
func (nopOp) Close(*TaskCtx) error          { return nil }

// smallCfg is a 4-core DPU so RunParallel worker/unit assignment is exact
// and machine-independent in both modes.
func smallCfg() dpu.Config {
	cfg := dpu.DefaultConfig()
	cfg.NumCores = 4
	cfg.CoresPerMacro = 2
	return cfg
}

func profiledCtx(mode Mode) *Context {
	ctx := NewContextWith(mode, smallCfg())
	defs := []obs.SpanDef{
		{ID: 0, Parent: -1, Name: "sink"},
		{ID: 1, Parent: 0, Name: "source"},
	}
	ctx.Prof = obs.NewProfile(mode.String(), cfg(ctx), ctx.SoC.Config().FreqHz, defs)
	return ctx
}

func cfg(ctx *Context) int { return ctx.SoC.Config().NumCores }

// TestSpanZeroAllocPerTile pins the tentpole's overhead contract: spans are
// preallocated at plan time and the per-tile profiling path (span switch,
// row ticks, interval flush) allocates nothing.
func TestSpanZeroAllocPerTile(t *testing.T) {
	for _, mode := range []Mode{ModeX86, ModeDPU} {
		ctx := profiledCtx(mode)
		op := WithSpan(nopOp{}, ctx.Prof.Span(0), ctx.Prof.Span(1))
		tile := &Tile{N: 256}
		err := ctx.RunSerial(func(tc *TaskCtx) error {
			if err := op.Open(tc); err != nil {
				return err
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := op.Produce(tc, tile); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("mode %v: %v allocs per tile, want 0", mode, allocs)
			}
			return op.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWithSpanPassthroughWhenOff(t *testing.T) {
	op := nopOp{}
	if got := WithSpan(op, nil, nil); got != Operator(op) {
		t.Error("WithSpan with nil spans should return the operator unchanged")
	}
}

// TestRunParallelFirstErrorDeterministic pins the error contract: with
// failures injected at units 7, 9 and 21, the returned error is always
// unit 7's (the lowest failing index), every unit below it always runs,
// and the failing worker's own later units never run.
func TestRunParallelFirstErrorDeterministic(t *testing.T) {
	sent7 := errors.New("unit 7 failed")
	sent9 := errors.New("unit 9 failed")
	sent21 := errors.New("unit 21 failed")
	for trial := 0; trial < 50; trial++ {
		ctx := NewContextWith(ModeDPU, smallCfg()) // 4 workers exactly
		const n = 32
		var ran [n]atomic.Bool
		units := make([]WorkUnit, n)
		for i := 0; i < n; i++ {
			i := i
			units[i] = func(tc *TaskCtx) error {
				ran[i].Store(true)
				switch i {
				case 7:
					return sent7
				case 9:
					return sent9
				case 21:
					return sent21
				}
				return nil
			}
		}
		err := ctx.RunParallel(units)
		if !errors.Is(err, sent7) {
			t.Fatalf("trial %d: got %v, want unit 7's error", trial, err)
		}
		for i := 0; i < 7; i++ {
			if !ran[i].Load() {
				t.Fatalf("trial %d: unit %d below first failure did not run", trial, i)
			}
		}
		// Unit 13 shares worker 1 with failing unit 9 (13 mod 4 == 9 mod 4)
		// and comes later in its round-robin sequence.
		if ran[13].Load() {
			t.Fatalf("trial %d: unit 13 ran after its worker's unit 9 failed", trial)
		}
	}
}

// TestRunParallelCancelsSiblingWorkers pins the fix for the cross-worker
// leak: before, a failing unit only stopped its own worker and sibling
// workers kept draining their queues. Now units above the failure index
// that have not started are skipped on every worker.
func TestRunParallelCancelsSiblingWorkers(t *testing.T) {
	ctx := NewContextWith(ModeDPU, smallCfg()) // 4 workers
	sent := errors.New("unit 0 failed")
	failed := make(chan struct{})
	const n = 24
	var ran [n]atomic.Bool
	units := make([]WorkUnit, n)
	for i := 0; i < n; i++ {
		i := i
		units[i] = func(tc *TaskCtx) error {
			ran[i].Store(true)
			switch {
			case i == 0:
				close(failed)
				return sent
			case i < 4:
				// First unit of each sibling worker: already in flight when
				// unit 0 fails. Give the failure ample time to be recorded,
				// then finish normally.
				<-failed
				time.Sleep(100 * time.Millisecond)
			}
			return nil
		}
	}
	if err := ctx.RunParallel(units); !errors.Is(err, sent) {
		t.Fatalf("got %v, want unit 0's error", err)
	}
	for i := 4; i < n; i++ {
		if ran[i].Load() {
			t.Errorf("unit %d ran after unit 0 failed; sibling workers were not cancelled", i)
		}
	}
}

func TestRunParallelNoErrorRunsAllOnce(t *testing.T) {
	ctx := NewContextWith(ModeDPU, smallCfg())
	const n = 19
	var count [n]atomic.Int64
	units := make([]WorkUnit, n)
	var mu sync.Mutex
	coresSeen := map[int]bool{}
	for i := 0; i < n; i++ {
		i := i
		units[i] = func(tc *TaskCtx) error {
			count[i].Add(1)
			mu.Lock()
			coresSeen[tc.CoreID] = true
			mu.Unlock()
			return nil
		}
	}
	if err := ctx.RunParallel(units); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := count[i].Load(); got != 1 {
			t.Errorf("unit %d ran %d times", i, got)
		}
	}
	if len(coresSeen) != 4 {
		t.Errorf("expected all 4 workers used, saw %d", len(coresSeen))
	}
}
