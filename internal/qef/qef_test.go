package qef

import (
	"errors"
	"sync/atomic"
	"testing"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dms"
)

func TestContextModes(t *testing.T) {
	dpuCtx := NewContext(ModeDPU)
	if dpuCtx.Workers() != 32 {
		t.Fatalf("DPU workers = %d", dpuCtx.Workers())
	}
	x86 := NewContext(ModeX86)
	if x86.Workers() < 1 || x86.Workers() > 32 {
		t.Fatalf("x86 workers = %d", x86.Workers())
	}
	if ModeDPU.String() != "dpu" || ModeX86.String() != "x86" {
		t.Fatal("mode strings")
	}
}

func TestRunParallelExecutesAll(t *testing.T) {
	ctx := NewContext(ModeDPU)
	var count atomic.Int64
	units := make([]WorkUnit, 100)
	for i := range units {
		units[i] = func(tc *TaskCtx) error {
			if tc.Core == nil {
				return errors.New("DPU mode must pin cores")
			}
			tc.Core.Charge(1000)
			count.Add(1)
			return nil
		}
	}
	if err := ctx.RunParallel(units); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d units", count.Load())
	}
	if ctx.SimElapsed() <= 0 || ctx.SimTotalBusy() < ctx.SimElapsed() {
		t.Fatalf("sim times: elapsed=%g busy=%g", ctx.SimElapsed(), ctx.SimTotalBusy())
	}
	// Total busy time equals the work performed regardless of scheduling.
	wantBusy := 100 * 1000.0 / 800e6
	if b := ctx.SimTotalBusy(); b < wantBusy*0.99 || b > wantBusy*1.01 {
		t.Fatalf("busy = %g, want ~%g", b, wantBusy)
	}
	ctx.Reset()
	if ctx.SimElapsed() != 0 || ctx.SoC.TotalCycles() != 0 {
		t.Fatal("Reset")
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	ctx := NewContext(ModeDPU)
	boom := errors.New("boom")
	units := []WorkUnit{
		func(tc *TaskCtx) error { return nil },
		func(tc *TaskCtx) error { return boom },
		func(tc *TaskCtx) error { return nil },
	}
	if err := ctx.RunParallel(units); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverlapAccounting(t *testing.T) {
	// Compute-bound unit: elapsed == compute; transfer hidden.
	ctx := NewContext(ModeDPU)
	err := ctx.RunSerial(func(tc *TaskCtx) error {
		tc.Core.Charge(800e6) // 1 simulated second of compute
		tc.AddTransfer(timing(0.2))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := ctx.SimElapsed(); e < 0.99 || e > 1.01 {
		t.Fatalf("overlapped elapsed = %g, want ~1.0", e)
	}
	// Transfer-bound.
	ctx2 := NewContext(ModeDPU)
	_ = ctx2.RunSerial(func(tc *TaskCtx) error {
		tc.Core.Charge(80e6) // 0.1 s
		tc.AddTransfer(timing(0.5))
		return nil
	})
	if e := ctx2.SimElapsed(); e < 0.49 || e > 0.51 {
		t.Fatalf("transfer-bound elapsed = %g, want ~0.5", e)
	}
	// NoOverlap sums both.
	ctx3 := NewContext(ModeDPU)
	_ = ctx3.RunSerial(func(tc *TaskCtx) error {
		tc.NoOverlap = true
		tc.Core.Charge(80e6)
		tc.AddTransfer(timing(0.5))
		return nil
	})
	if e := ctx3.SimElapsed(); e < 0.59 || e > 0.61 {
		t.Fatalf("no-overlap elapsed = %g, want ~0.6", e)
	}
}

func TestTileSelection(t *testing.T) {
	cols := []coltypes.Data{coltypes.FromInt64s(coltypes.W4, []int64{1, 2, 3, 4})}
	tile := NewTile(cols, 4)
	if !tile.Dense() || tile.QualifyingRows() != 4 {
		t.Fatal("dense tile")
	}
	rids := tile.SelRIDs()
	if len(rids) != 4 || rids[3] != 3 {
		t.Fatal("dense SelRIDs")
	}
	bv := bits.NewVector(4)
	bv.Set(1)
	bv.Set(3)
	tile.Sel = bv
	if tile.QualifyingRows() != 2 || tile.Dense() {
		t.Fatal("bv selection")
	}
	var visited []int
	tile.ForEachRow(func(i int) { visited = append(visited, i) })
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 3 {
		t.Fatalf("ForEachRow = %v", visited)
	}
	tile.Sel = nil
	tile.RIDs = []uint32{0, 2}
	if tile.QualifyingRows() != 2 || tile.SelRIDs()[1] != 2 {
		t.Fatal("rid selection")
	}
}

func TestAccessorSequentialBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeDPU, ModeX86} {
		ctx := NewContext(mode)
		n := 1000
		cola := coltypes.New(coltypes.W4, n)
		colb := coltypes.New(coltypes.W8, n)
		for i := 0; i < n; i++ {
			cola.Set(i, int64(i))
			colb.Set(i, int64(i*2))
		}
		var sum int64
		var tiles int
		err := ctx.RunSerial(func(tc *TaskCtx) error {
			ra := NewAccessor(tc)
			return ra.Sequential([]coltypes.Data{cola, colb}, 256, func(t *Tile) error {
				tiles++
				if t.N > 256 {
					return errors.New("tile too big")
				}
				for i := 0; i < t.N; i++ {
					if t.Cols[1].Get(i) != 2*t.Cols[0].Get(i) {
						return errors.New("columns misaligned")
					}
					sum += t.Cols[0].Get(i)
				}
				return nil
			})
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if tiles != 4 {
			t.Fatalf("%v: tiles = %d", mode, tiles)
		}
		if sum != int64(n*(n-1)/2) {
			t.Fatalf("%v: sum = %d", mode, sum)
		}
		if mode == ModeDPU && ctx.SimElapsed() <= 0 {
			t.Fatal("DPU mode should account transfer time")
		}
	}
}

func TestAccessorSequentialEnforcesMinTile(t *testing.T) {
	ctx := NewContext(ModeX86)
	col := coltypes.New(coltypes.W4, 200)
	tiles := 0
	_ = ctx.RunSerial(func(tc *TaskCtx) error {
		return NewAccessor(tc).Sequential([]coltypes.Data{col}, 10, func(t *Tile) error {
			tiles++
			if t.N > MinTileRows {
				return errors.New("tile above clamped size")
			}
			return nil
		})
	})
	// 200 rows at minimum 64-row tiles = 4 tiles.
	if tiles != 4 {
		t.Fatalf("tiles = %d", tiles)
	}
}

func TestAccessorDMEMExhaustion(t *testing.T) {
	// 40 columns of 8 bytes need 40960 bytes of double buffers even at the
	// 64-row minimum tile: beyond the 32 KiB DMEM, so after degrading the
	// tile all the way down the accessor must still fail cleanly.
	ctx := NewContext(ModeDPU)
	cols := make([]coltypes.Data, 40)
	for i := range cols {
		cols[i] = coltypes.New(coltypes.W8, 4096)
	}
	err := ctx.RunSerial(func(tc *TaskCtx) error {
		return NewAccessor(tc).Sequential(cols, 2048, func(t *Tile) error { return nil })
	})
	if err == nil {
		t.Fatal("expected DMEM exhaustion")
	}
}

func TestAccessorDegradesTileUnderPressure(t *testing.T) {
	// 32 columns of 8 bytes fit exactly at the 64-row minimum tile
	// (2*64*256 = 32 KiB): instead of failing on the requested 2048-row
	// tile, the accessor shrinks it (§6.4 graceful degradation) and streams
	// every row.
	ctx := NewContext(ModeDPU)
	const rows = 4096
	cols := make([]coltypes.Data, 32)
	for i := range cols {
		cols[i] = coltypes.New(coltypes.W8, rows)
	}
	maxTile, seen := 0, 0
	err := ctx.RunSerial(func(tc *TaskCtx) error {
		return NewAccessor(tc).Sequential(cols, 2048, func(t *Tile) error {
			if t.N > maxTile {
				maxTile = t.N
			}
			seen += t.N
			return nil
		})
	})
	if err != nil {
		t.Fatalf("expected degraded success, got %v", err)
	}
	if maxTile != MinTileRows {
		t.Fatalf("tile = %d, want shrunk to %d", maxTile, MinTileRows)
	}
	if seen != rows {
		t.Fatalf("streamed %d rows, want %d", seen, rows)
	}
}

func TestAccessorGather(t *testing.T) {
	for _, mode := range []Mode{ModeDPU, ModeX86} {
		ctx := NewContext(mode)
		col := coltypes.FromInt64s(coltypes.W4, []int64{10, 20, 30, 40, 50})
		err := ctx.RunSerial(func(tc *TaskCtx) error {
			ra := NewAccessor(tc)
			got, err := ra.GatherTile(col, []uint32{4, 0})
			if err != nil {
				return err
			}
			if got.Get(0) != 50 || got.Get(1) != 10 {
				return errors.New("gather wrong")
			}
			bv := bits.NewVector(5)
			bv.Set(1)
			bv.Set(3)
			dst, n, err := ra.GatherBitVector(col, bv)
			if err != nil {
				return err
			}
			if n != 2 || dst.Get(0) != 20 || dst.Get(1) != 40 {
				return errors.New("bv gather wrong")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestAccessorWriteBack(t *testing.T) {
	for _, mode := range []Mode{ModeDPU, ModeX86} {
		ctx := NewContext(mode)
		dst := []coltypes.Data{coltypes.New(coltypes.W4, 10)}
		src := []coltypes.Data{coltypes.FromInt64s(coltypes.W4, []int64{7, 8, 9})}
		err := ctx.RunSerial(func(tc *TaskCtx) error {
			NewAccessor(tc).WriteBack(dst, 4, src, 3)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if dst[0].Get(4) != 7 || dst[0].Get(6) != 9 || dst[0].Get(3) != 0 {
			t.Fatalf("%v: writeback wrong: %v", mode, coltypes.ToInt64s(dst[0]))
		}
	}
}

// Operator plumbing: a trivial chain summing tile values.
type sumOp struct {
	total          int64
	opened, closed bool
}

func (s *sumOp) DMEMSize(int) int { return 64 }
func (s *sumOp) Open(tc *TaskCtx) error {
	s.opened = true
	return nil
}
func (s *sumOp) Produce(tc *TaskCtx, t *Tile) error {
	t.ForEachRow(func(i int) { s.total += t.Cols[0].Get(i) })
	return nil
}
func (s *sumOp) Close(tc *TaskCtx) error {
	s.closed = true
	return nil
}

func TestChain(t *testing.T) {
	ctx := NewContext(ModeX86)
	op := &sumOp{}
	err := ctx.RunSerial(func(tc *TaskCtx) error {
		return Chain(tc, op, func(emit func(*Tile) error) error {
			cols := []coltypes.Data{coltypes.FromInt64s(coltypes.W8, []int64{1, 2, 3})}
			return emit(NewTile(cols, 3))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !op.opened || !op.closed || op.total != 6 {
		t.Fatalf("chain state: %+v", op)
	}
}

func timing(sec float64) dms.Timing { return dms.Timing{Seconds: sec} }
