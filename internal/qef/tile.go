package qef

import (
	"rapid/internal/bits"
	"rapid/internal/coltypes"
)

// MinTileRows is the minimum tile size: "the unit of transfer for operators
// is called a tile, and consists of 64+ rows" (paper §4.1).
const MinTileRows = 64

// DefaultTileRows is the default operator tile size. 256 rows of a 4-byte
// column is 1 KiB per buffer, leaving DMEM room for several operators per
// task.
const DefaultTileRows = 256

// Tile is the unit of data flowing between the operators of a task:
// DMEM-resident column vectors for N rows, plus an optional qualification
// state (bit-vector or RID list) supporting the filter operator's late
// materialization (§5.4). At most one of Sel and RIDs is non-nil; both nil
// means all rows qualify.
type Tile struct {
	Cols []coltypes.Data
	N    int

	Sel  *bits.Vector
	RIDs []uint32
}

// NewTile builds a tile over the given columns.
func NewTile(cols []coltypes.Data, n int) *Tile {
	return &Tile{Cols: cols, N: n}
}

// QualifyingRows returns the number of rows passing the selection state.
func (t *Tile) QualifyingRows() int {
	switch {
	case t.RIDs != nil:
		return len(t.RIDs)
	case t.Sel != nil:
		return t.Sel.Count()
	default:
		return t.N
	}
}

// SelRIDs returns the qualifying row offsets as a RID slice, converting
// from the bit-vector representation if needed.
func (t *Tile) SelRIDs() []uint32 {
	switch {
	case t.RIDs != nil:
		return t.RIDs
	case t.Sel != nil:
		return t.Sel.ToRIDs(nil)
	default:
		rids := make([]uint32, t.N)
		for i := range rids {
			rids[i] = uint32(i)
		}
		return rids
	}
}

// AppendSelRIDs appends the qualifying row offsets to dst and returns it —
// the pooled-buffer variant of SelRIDs. When the tile already carries a RID
// list it is returned directly (no copy) if dst is empty.
func (t *Tile) AppendSelRIDs(dst []uint32) []uint32 {
	switch {
	case t.RIDs != nil:
		if len(dst) == 0 {
			return t.RIDs
		}
		return append(dst, t.RIDs...)
	case t.Sel != nil:
		return t.Sel.ToRIDs(dst)
	default:
		for i := 0; i < t.N; i++ {
			dst = append(dst, uint32(i))
		}
		return dst
	}
}

// ForEachRow invokes fn for every qualifying row offset in order.
func (t *Tile) ForEachRow(fn func(i int)) {
	switch {
	case t.RIDs != nil:
		for _, r := range t.RIDs {
			fn(int(r))
		}
	case t.Sel != nil:
		t.Sel.ForEach(fn)
	default:
		for i := 0; i < t.N; i++ {
			fn(i)
		}
	}
}

// Dense reports whether all rows qualify.
func (t *Tile) Dense() bool { return t.Sel == nil && t.RIDs == nil }
