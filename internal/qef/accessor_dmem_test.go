package qef

import (
	"testing"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
)

// TestGatherAdmissionBeforeHostAlloc pins the fix for the ordering bug where
// GatherTile/GatherBitVector allocated the destination buffer BEFORE asking
// DMEM for admission: a rejected gather must not pay for the buffer it was
// denied.
func TestGatherAdmissionBeforeHostAlloc(t *testing.T) {
	ctx := NewContext(ModeDPU)
	err := ctx.RunSerial(func(tc *TaskCtx) error {
		const n = 1024
		col := coltypes.New(coltypes.W8, n)
		rids := make([]uint32, n)
		for i := range rids {
			rids[i] = uint32(i)
		}
		// Exhaust DMEM to below the gather's need (n*8 bytes).
		if err := tc.DMEM.Alloc(tc.DMEM.Free() - 64); err != nil {
			return err
		}
		ra := NewAccessor(tc)
		base := tc.Pool().DataBytesInUse()

		if _, err := ra.GatherTile(col, rids); err == nil {
			t.Error("GatherTile succeeded despite exhausted DMEM")
		}
		if got := tc.Pool().DataBytesInUse(); got != base {
			t.Errorf("GatherTile took %d pool bytes before the admission check rejected it", got-base)
		}

		bv := bits.NewVectorAllSet(n)
		if _, _, err := ra.GatherBitVector(col, bv); err == nil {
			t.Error("GatherBitVector succeeded despite exhausted DMEM")
		}
		if got := tc.Pool().DataBytesInUse(); got != base {
			t.Errorf("GatherBitVector took %d pool bytes before the admission check rejected it", got-base)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScratchLifetimes exercises the pool lifetime model through the TaskCtx
// API: unit-lifetime takes survive ResetScratch, tile-lifetime takes are
// recycled, and recycled buffers come back zeroed.
func TestScratchLifetimes(t *testing.T) {
	ctx := NewContext(ModeX86)
	err := ctx.RunSerial(func(tc *TaskCtx) error {
		tc.MarkScratch()
		unit := tc.I64Scratch(8)
		unit[0] = 42
		tc.MarkScratch() // tile floor

		a := tc.I64Scratch(16)
		a[5] = 99
		tile1 := tc.TileScratch(tc.ColScratch(2), 16)
		tc.ResetScratch()

		b := tc.I64Scratch(16)
		if &a[0] != &b[0] {
			t.Error("tile-lifetime buffer not recycled by ResetScratch")
		}
		if b[5] != 0 {
			t.Error("recycled scratch not zeroed")
		}
		tile2 := tc.TileScratch(tc.ColScratch(2), 32)
		if tile1 != tile2 {
			t.Error("Tile struct not recycled by ResetScratch")
		}
		if unit[0] != 42 {
			t.Error("unit-lifetime buffer clobbered by ResetScratch")
		}
		tc.ReleaseScratch()
		tc.ReleaseScratch()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
