package qef

import (
	"rapid/internal/bits"
	"rapid/internal/coltypes"
)

// Accessor is the relation accessor (RA) of paper §5.1: the common interface
// operators use to declare their memory access pattern — sequential, gather,
// scatter or partitioned — while the RA programs the DMS descriptor loops,
// double-buffers the transfers and hands the operator DMEM-resident tiles.
//
// In ModeX86 the RA degenerates to zero-copy slice views: the same operator
// code runs without the DPU memory hierarchy, which is exactly the paper's
// software-only configuration.
type Accessor struct {
	tc *TaskCtx
}

// NewAccessor returns an accessor bound to a task context.
func NewAccessor(tc *TaskCtx) *Accessor { return &Accessor{tc: tc} }

// Sequential streams rows [0, rows) of the given DRAM columns in tiles of
// tileRows, invoking fn per tile. The DMEM cost is double buffering for
// every column (allocated once, reused across tiles).
func (a *Accessor) Sequential(cols []coltypes.Data, tileRows int, fn func(*Tile) error) error {
	rows := 0
	if len(cols) > 0 {
		rows = cols[0].Len()
	}
	if tileRows < MinTileRows {
		tileRows = MinTileRows
	}
	if a.tc.Core == nil {
		// ModeX86: zero-copy views. The view headers are unit-lifetime pool
		// buffers; the inner MarkScratch makes them the floor that the
		// callback's ResetScratch rolls back to. The source tile is a local
		// reused value so it survives that per-tile reset.
		a.tc.MarkScratch()
		defer a.tc.ReleaseScratch()
		views := a.tc.ColScratch(len(cols))
		a.tc.MarkScratch()
		defer a.tc.ReleaseScratch()
		var tile Tile
		for lo := 0; lo < rows; lo += tileRows {
			if err := a.tc.Canceled(); err != nil {
				return err
			}
			hi := lo + tileRows
			if hi > rows {
				hi = rows
			}
			for i, c := range cols {
				views[i] = c.Slice(lo, hi)
			}
			tile = Tile{Cols: views, N: hi - lo}
			if err := fn(&tile); err != nil {
				return err
			}
		}
		return nil
	}
	// ModeDPU: allocate double buffers in DMEM and run the DMS loop. Wide
	// rows shrink the tile until every column's double buffer fits the
	// scratchpad (§6.4 resilience: degrade the vector size, don't abort);
	// only a tile below the minimum propagates exhaustion.
	a.tc.DMEM.Mark()
	defer a.tc.DMEM.Release()
	rowBytes := 0
	for _, c := range cols {
		rowBytes += c.Width().Bytes()
	}
	degraded := false
	for tileRows > MinTileRows && 2*tileRows*rowBytes > a.tc.DMEM.Free() {
		tileRows /= 2
		degraded = true
	}
	if tileRows < MinTileRows {
		tileRows = MinTileRows
	}
	if degraded {
		a.tc.Ctx.CountMetric("qef_tile_degradations", 1)
	}
	a.tc.MarkScratch()
	defer a.tc.ReleaseScratch()
	bufs := a.tc.ColScratch(len(cols))
	for i, c := range cols {
		if err := a.tc.DMEM.Alloc(2 * tileRows * c.Width().Bytes()); err != nil {
			return err
		}
		bufs[i] = a.tc.DataScratch(c.Width(), tileRows)
	}
	views := a.tc.ColScratch(len(cols))
	a.tc.MarkScratch()
	defer a.tc.ReleaseScratch()
	var tile Tile
	for lo := 0; lo < rows; lo += tileRows {
		if err := a.tc.Canceled(); err != nil {
			return err
		}
		hi := lo + tileRows
		if hi > rows {
			hi = rows
		}
		n := hi - lo
		if n == tileRows {
			// Full tile: reuse the pre-boxed buffers outright.
			copy(views, bufs)
		} else {
			for i := range bufs {
				views[i] = bufs[i].Slice(0, n)
			}
		}
		t := a.tc.Ctx.DMS.Read(cols, lo, hi, views)
		a.tc.AddTransfer(t)
		tile = Tile{Cols: views, N: n}
		if err := fn(&tile); err != nil {
			return err
		}
	}
	return nil
}

// GatherTile fetches the rows named by rids from a DRAM column into a DMEM
// buffer — the RID-based gather the filter operator uses for non-first
// predicates (§5.4). The returned buffer is tile-lifetime pool scratch:
// valid until the caller's next ResetScratch.
func (a *Accessor) GatherTile(col coltypes.Data, rids []uint32) (coltypes.Data, error) {
	if a.tc.Core == nil {
		dst := a.tc.DataScratch(col.Width(), len(rids))
		coltypes.Gather(dst, col, rids)
		return dst, nil
	}
	// Admission check before the host-side buffer: a gather the scratchpad
	// rejects must not have paid the allocation it is rejecting.
	if err := a.tc.DMEM.Alloc(len(rids) * col.Width().Bytes()); err != nil {
		return nil, err
	}
	dst := a.tc.DataScratch(col.Width(), len(rids))
	t := a.tc.Ctx.DMS.GatherRead(col, rids, dst)
	a.tc.AddTransfer(t)
	return dst, nil
}

// GatherBitVector fetches the rows set in bv from a DRAM column into a DMEM
// buffer — the bit-vector driven gather of Listing 1's BVLD. The returned
// buffer is tile-lifetime pool scratch, like GatherTile's.
func (a *Accessor) GatherBitVector(col coltypes.Data, bv *bits.Vector) (coltypes.Data, int, error) {
	n := bv.Count()
	if a.tc.Core == nil {
		dst := a.tc.DataScratch(col.Width(), n)
		i := 0
		bv.ForEach(func(r int) {
			dst.Set(i, col.Get(r))
			i++
		})
		return dst, n, nil
	}
	// Admission check first, as in GatherTile.
	if err := a.tc.DMEM.Alloc(n * col.Width().Bytes()); err != nil {
		return nil, 0, err
	}
	dst := a.tc.DataScratch(col.Width(), n)
	got, t := a.tc.Ctx.DMS.BitVectorGatherRead(col, bv.Words(), bv.Len(), dst)
	a.tc.AddTransfer(t)
	return dst, got, nil
}

// WriteBack stores DMEM tile columns to DRAM destinations at row offset
// `at` (the materialization at a task boundary).
func (a *Accessor) WriteBack(dst []coltypes.Data, at int, src []coltypes.Data, rows int) {
	if a.tc.Core == nil {
		for i := range src {
			dst[i].CopyFrom(at, src[i].Slice(0, rows))
		}
		return
	}
	t := a.tc.Ctx.DMS.Write(dst, at, src, rows)
	a.tc.AddTransfer(t)
}
