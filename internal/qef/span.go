package qef

import "rapid/internal/obs"

// spanOp interposes on an operator-chain edge to drive the interval
// profiler: while the inner operator (and everything downstream of it)
// runs, the inner span is current; on return the caller's span is
// restored. It also ticks row/tile flow on both sides of the edge. The
// wrapper is installed at chain-build time, so the per-tile path performs
// no allocation and no map lookups — just counter arithmetic.
type spanOp struct {
	inner Operator
	span  *obs.OpSpan // the wrapped operator's span
	from  *obs.OpSpan // the upstream operator's span (nil at a source edge)
}

// WithSpan wraps op so that time spent inside it is attributed to span and
// rows crossing the edge are counted as from→span flow. Returns op
// unchanged when profiling is off (span and from both nil).
func WithSpan(op Operator, span, from *obs.OpSpan) Operator {
	if span == nil && from == nil {
		return op
	}
	return &spanOp{inner: op, span: span, from: from}
}

func (s *spanOp) DMEMSize(tileRows int) int { return s.inner.DMEMSize(tileRows) }

func (s *spanOp) Open(tc *TaskCtx) error {
	prev := tc.SwitchSpan(s.span)
	err := s.inner.Open(tc)
	tc.SwitchSpan(prev)
	return err
}

func (s *spanOp) Produce(tc *TaskCtx, t *Tile) error {
	n := int64(t.QualifyingRows())
	s.from.TickOut(tc.CoreID, n)
	s.span.TickIn(tc.CoreID, n)
	prev := tc.SwitchSpan(s.span)
	err := s.inner.Produce(tc, t)
	tc.SwitchSpan(prev)
	return err
}

func (s *spanOp) Close(tc *TaskCtx) error {
	prev := tc.SwitchSpan(s.span)
	err := s.inner.Close(tc)
	tc.SwitchSpan(prev)
	return err
}
