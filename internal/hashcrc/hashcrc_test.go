package hashcrc

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := Hash64(Seed, 12345)
	b := Hash64(Seed, 12345)
	if a != b {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(Seed, 12345) == Hash64(Seed, 12346) {
		t.Fatal("adjacent keys should differ (with overwhelming probability)")
	}
}

func TestChaining(t *testing.T) {
	// Multi-key hashing chains accumulators; order must matter.
	ab := Hash64(Hash64(Seed, 1), 2)
	ba := Hash64(Hash64(Seed, 2), 1)
	if ab == ba {
		t.Fatal("chained hash should be order sensitive")
	}
	if Hash32(Seed, 7) == Hash64(Seed, 7) {
		t.Fatal("width should be part of the hash domain")
	}
}

func TestHashBytes(t *testing.T) {
	if HashBytes(Seed, []byte("alpha")) == HashBytes(Seed, []byte("alphb")) {
		t.Fatal("byte hash collision on near keys")
	}
	if HashBytes(Seed, nil) != Seed {
		t.Fatal("empty update should be identity")
	}
}

// The radix partitioning stage uses the low bits of the finalized hash; a
// heavily skewed low-bit distribution would break partition balance. Check
// uniformity loosely over sequential keys (the common case for synthetic
// join keys).
func TestLowBitUniformity(t *testing.T) {
	const parts = 32
	const n = 32000
	var counts [parts]int
	for i := 0; i < n; i++ {
		h := Finalize(Hash64(Seed, uint64(i)))
		counts[h%parts]++
	}
	want := n / parts
	for p, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("partition %d has %d of %d keys (want ~%d): skewed low bits", p, c, n, want)
		}
	}
}

func TestFinalizeInjectiveOnSmallDomain(t *testing.T) {
	seen := map[uint32]uint32{}
	for i := uint32(0); i < 10000; i++ {
		f := Finalize(i)
		if prev, ok := seen[f]; ok {
			t.Fatalf("Finalize collision: %d and %d -> %d", prev, i, f)
		}
		seen[f] = i
	}
}

func TestQuickDeterminism(t *testing.T) {
	f := func(acc uint32, v uint64) bool {
		return Hash64(acc, v) == Hash64(acc, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
