// Package hashcrc provides the CRC32 hash-value generation that the RAPID
// DPU exposes as a single-cycle dpCore instruction and as the hash engine of
// the DMS (paper §2.1, §5.4). Both the hardware-partitioning path and the
// software join/group-by kernels hash with the same function, which is why
// hardware-computed hash vectors can feed software partitioning directly.
//
// We use the Castagnoli polynomial: it is the CRC32 variant implemented in
// hardware on commodity CPUs, so the Go standard library accelerates it,
// matching the "hardware hash engine" role it plays here.
package hashcrc

import "hash/crc32"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seed is the initial CRC accumulator value for the first key column.
const Seed uint32 = 0

// Hash64 folds an 8-byte value into the accumulator.
func Hash64(acc uint32, v uint64) uint32 {
	var b [8]byte
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
	return crc32.Update(acc, castagnoli, b[:])
}

// Hash32 folds a 4-byte value into the accumulator.
func Hash32(acc uint32, v uint32) uint32 {
	var b [4]byte
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	return crc32.Update(acc, castagnoli, b[:])
}

// HashBytes folds arbitrary bytes into the accumulator (dictionary keys).
func HashBytes(acc uint32, b []byte) uint32 {
	return crc32.Update(acc, castagnoli, b)
}

// Finalize mixes the accumulator so that low bits depend on all input bits;
// the DMS radix stage and the join kernel's bit-mask modulo both consume low
// bits directly.
func Finalize(acc uint32) uint32 {
	// CRC32 already diffuses well; a single multiplicative mix guards the
	// degenerate single-key case where inputs differ only in high bits.
	acc ^= acc >> 16
	acc *= 0x85ebca6b
	acc ^= acc >> 13
	return acc
}
