package dpu

import "testing"

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumCores != 32 || cfg.NumMacros() != 4 {
		t.Fatalf("cores/macros = %d/%d", cfg.NumCores, cfg.NumMacros())
	}
	if cfg.FreqHz != 800e6 {
		t.Fatalf("FreqHz = %v", cfg.FreqHz)
	}
	// 800M cycles == 1 second.
	if got := cfg.Seconds(800e6); got != 1.0 {
		t.Fatalf("Seconds(800M) = %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumCores: 0, CoresPerMacro: 8, FreqHz: 1, DMEMBytes: 1},
		{NumCores: 30, CoresPerMacro: 8, FreqHz: 1, DMEMBytes: 1},
		{NumCores: 32, CoresPerMacro: 8, FreqHz: 0, DMEMBytes: 1},
		{NumCores: 32, CoresPerMacro: 8, FreqHz: 1, DMEMBytes: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Fatal("New should propagate validation error")
	}
}

func TestSoCTopology(t *testing.T) {
	s := MustNew(DefaultConfig())
	if len(s.Cores()) != 32 {
		t.Fatalf("len(Cores) = %d", len(s.Cores()))
	}
	for i, co := range s.Cores() {
		if co.ID() != i {
			t.Fatalf("core %d has ID %d", i, co.ID())
		}
		if co.Macro() != i/8 {
			t.Fatalf("core %d in macro %d", i, co.Macro())
		}
		if co.DMEM().Capacity() != 32*1024 {
			t.Fatalf("core %d DMEM = %d", i, co.DMEM().Capacity())
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	s := MustNew(DefaultConfig())
	s.Core(0).Charge(100)
	s.Core(1).Charge(250)
	s.Core(31).Charge(50)
	if s.MaxCoreCycles() != 250 {
		t.Fatalf("MaxCoreCycles = %d", s.MaxCoreCycles())
	}
	if s.TotalCycles() != 400 {
		t.Fatalf("TotalCycles = %d", s.TotalCycles())
	}
	s.Core(0).ChargeBranchMiss(3)
	if s.Core(0).Cycles() != 100+3*BranchMissPenalty {
		t.Fatalf("cycles after miss = %d", s.Core(0).Cycles())
	}
	if s.TotalBranchMisses() != 3 {
		t.Fatalf("TotalBranchMisses = %d", s.TotalBranchMisses())
	}
	s.Core(2).CountInstructions(77)
	if s.TotalInstructions() != 77 {
		t.Fatalf("TotalInstructions = %d", s.TotalInstructions())
	}
	s.Reset()
	if s.TotalCycles() != 0 || s.TotalBranchMisses() != 0 || s.TotalInstructions() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestChargePanicsOnNegative(t *testing.T) {
	s := MustNew(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Core(0).Charge(-1)
}

func TestDualIssue(t *testing.T) {
	if DualIssue(10, 10) != 10 {
		t.Fatal("perfectly paired should take max")
	}
	if DualIssue(10, 3) != 10 || DualIssue(3, 10) != 10 {
		t.Fatal("unbalanced should take max")
	}
	if SerialIssue(7) != 7 {
		t.Fatal("serial")
	}
	if MulCycles(3) != 12 {
		t.Fatalf("MulCycles(3) = %d", MulCycles(3))
	}
}

func TestATEMessageCycles(t *testing.T) {
	intra := ATEMessageCycles(0, 0)
	inter := ATEMessageCycles(0, 3)
	if intra != ATESendCycles+ATEHopCycles {
		t.Fatalf("intra-macro = %d", intra)
	}
	if inter != ATESendCycles+2*ATEHopCycles {
		t.Fatalf("inter-macro = %d", inter)
	}
	if inter <= intra {
		t.Fatal("crossing macros must cost more")
	}
}

// The headline filter number of §7.2: 482 M tuples/s at 800 MHz is
// 1.65 cycles/tuple. Check the clock arithmetic that every figure relies on.
func TestFilterRateArithmetic(t *testing.T) {
	cfg := DefaultConfig()
	cyclesPerTuple := 1.65
	rate := cfg.FreqHz / cyclesPerTuple
	if rate < 480e6 || rate > 490e6 {
		t.Fatalf("1.65 cycles/tuple at 800MHz = %.0f tuples/s, want ~484M", rate)
	}
}
