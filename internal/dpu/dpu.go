// Package dpu models the RAPID Data Processing Unit (paper §2): a 5.8 W SoC
// with 32 simple in-order dpCores at 800 MHz, organized as 4 macros of 8
// cores, each core owning a 32 KiB DMEM scratchpad.
//
// Go cannot execute the dpCore ISA, so the model is *functional plus
// analytical*: operator primitives run as ordinary Go code producing correct
// results, and simultaneously charge cycles to their core's counter using an
// instruction-level cost model of the dpCore pipeline (dual issue of one ALU
// and one load/store op per cycle, single-cycle database instructions such
// as BVLD/FILT/CRC32, a stalling multiplier, and a static branch predictor
// that predicts backward branches taken). Simulated execution time and power
// figures are derived from these counters.
package dpu

import (
	"fmt"
	"sync/atomic"

	"rapid/internal/mem"
)

// Cycles counts dpCore clock cycles.
type Cycles int64

// Config describes a DPU SoC. The defaults match the paper.
type Config struct {
	NumCores      int     // total dpCores (32)
	CoresPerMacro int     // dpCores per macro (8)
	FreqHz        float64 // core clock (800 MHz)
	DMEMBytes     int     // scratchpad per core (32 KiB)
	L1DBytes      int     // L1 data cache per core (16 KiB)
	L1IBytes      int     // L1 instruction cache per core (8 KiB)
	L2Bytes       int     // shared L2 per macro (256 KiB)

	// Power model (paper §2: 51 mW dynamic per core at 800 MHz, 5.8 W
	// provisioned for the whole SoC including DMS, ATE and uncore).
	CoreDynamicPowerW float64
	ProvisionedPowerW float64
}

// DefaultConfig returns the paper's DPU configuration.
func DefaultConfig() Config {
	return Config{
		NumCores:          32,
		CoresPerMacro:     8,
		FreqHz:            800e6,
		DMEMBytes:         32 * 1024,
		L1DBytes:          16 * 1024,
		L1IBytes:          8 * 1024,
		L2Bytes:           256 * 1024,
		CoreDynamicPowerW: 0.051,
		ProvisionedPowerW: 5.8,
	}
}

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumCores <= 0:
		return fmt.Errorf("dpu: NumCores must be positive, got %d", c.NumCores)
	case c.CoresPerMacro <= 0 || c.NumCores%c.CoresPerMacro != 0:
		return fmt.Errorf("dpu: %d cores not divisible into macros of %d", c.NumCores, c.CoresPerMacro)
	case c.FreqHz <= 0:
		return fmt.Errorf("dpu: FreqHz must be positive")
	case c.DMEMBytes <= 0:
		return fmt.Errorf("dpu: DMEMBytes must be positive")
	}
	return nil
}

// NumMacros returns the macro count.
func (c Config) NumMacros() int { return c.NumCores / c.CoresPerMacro }

// Seconds converts a cycle count to seconds at the configured clock.
func (c Config) Seconds(cy Cycles) float64 { return float64(cy) / c.FreqHz }

// CyclesPerSecond returns the clock rate as Cycles.
func (c Config) CyclesPerSecond() float64 { return c.FreqHz }

// Core is one dpCore: an ID, its macro, its private DMEM and a cycle
// counter. A Core is owned by a single goroutine at a time (the actor model
// of the QEF guarantees this), but the counters are atomic so that
// cross-core observers — the ATE router charging on message delivery, the
// bench harness reading makespans mid-run — always see consistent values.
type Core struct {
	id    int
	macro int
	dmem  *mem.DMEM

	cycles atomic.Int64
	// Pipeline statistics for the vectorization experiments (Fig 13).
	branchMisses atomic.Int64
	instructions atomic.Int64
}

// ID returns the core index within the SoC.
func (co *Core) ID() int { return co.id }

// Macro returns the macro index the core belongs to.
func (co *Core) Macro() int { return co.macro }

// DMEM returns the core's scratchpad allocator.
func (co *Core) DMEM() *mem.DMEM { return co.dmem }

// Charge adds cy cycles to the core's counter.
func (co *Core) Charge(cy Cycles) {
	if cy < 0 {
		panic("dpu: negative cycle charge")
	}
	co.cycles.Add(int64(cy))
}

// ChargeBranchMiss records a mispredicted branch and its pipeline penalty.
func (co *Core) ChargeBranchMiss(n int64) {
	co.branchMisses.Add(n)
	co.cycles.Add(n * int64(BranchMissPenalty))
}

// CountInstructions adds to the retired-instruction counter (statistics
// only; cycle cost is charged separately).
func (co *Core) CountInstructions(n int64) { co.instructions.Add(n) }

// Cycles returns the core's accumulated cycle count.
func (co *Core) Cycles() Cycles { return Cycles(co.cycles.Load()) }

// BranchMisses returns the core's accumulated branch misprediction count.
func (co *Core) BranchMisses() int64 { return co.branchMisses.Load() }

// Instructions returns the retired-instruction count.
func (co *Core) Instructions() int64 { return co.instructions.Load() }

// Reset zeroes the counters and the DMEM allocator.
func (co *Core) Reset() {
	co.cycles.Store(0)
	co.branchMisses.Store(0)
	co.instructions.Store(0)
	co.dmem.Reset()
}

// SoC is a full DPU: configuration, cores and the attached DRAM.
type SoC struct {
	cfg   Config
	cores []*Core
	dram  *mem.DRAM
}

// New builds a DPU SoC from cfg.
func New(cfg Config) (*SoC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SoC{cfg: cfg, dram: mem.NewDRAM()}
	s.cores = make([]*Core, cfg.NumCores)
	for i := range s.cores {
		s.cores[i] = &Core{
			id:    i,
			macro: i / cfg.CoresPerMacro,
			dmem:  mem.NewDMEMWithCapacity(cfg.DMEMBytes),
		}
	}
	return s, nil
}

// MustNew builds a SoC and panics on config errors.
func MustNew(cfg Config) *SoC {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the SoC configuration.
func (s *SoC) Config() Config { return s.cfg }

// Core returns core i.
func (s *SoC) Core(i int) *Core { return s.cores[i] }

// Cores returns all cores.
func (s *SoC) Cores() []*Core { return s.cores }

// DRAM returns the attached memory arena.
func (s *SoC) DRAM() *mem.DRAM { return s.dram }

// MaxCoreCycles returns the makespan across cores: with all cores running
// in parallel, elapsed time is determined by the busiest core.
func (s *SoC) MaxCoreCycles() Cycles {
	var m Cycles
	for _, co := range s.cores {
		if c := Cycles(co.cycles.Load()); c > m {
			m = c
		}
	}
	return m
}

// TotalCycles returns the sum of cycles over all cores (total work).
func (s *SoC) TotalCycles() Cycles {
	var t Cycles
	for _, co := range s.cores {
		t += Cycles(co.cycles.Load())
	}
	return t
}

// TotalBranchMisses sums branch mispredictions over all cores.
func (s *SoC) TotalBranchMisses() int64 {
	var t int64
	for _, co := range s.cores {
		t += co.branchMisses.Load()
	}
	return t
}

// TotalInstructions sums retired instructions over all cores.
func (s *SoC) TotalInstructions() int64 {
	var t int64
	for _, co := range s.cores {
		t += co.instructions.Load()
	}
	return t
}

// Reset zeroes every core counter and DMEM.
func (s *SoC) Reset() {
	for _, co := range s.cores {
		co.Reset()
	}
	s.dram.ResetTraffic()
}
