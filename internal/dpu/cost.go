package dpu

// Instruction-level cost model of the dpCore pipeline (paper §2.1).
//
// The dpCore is a dual-issue in-order machine: each cycle it can retire one
// ALU-class instruction and one load/store-class instruction. The database
// instructions BVLD (bit-vector gather load), FILT (predicate compare) and
// CRC32 (hash value generation) are single-cycle. The low-power multiplier
// stalls the pipeline for several cycles, and there is no native floating
// point (the reason for the DSB encoding of §4.2). The branch predictor
// statically predicts backward branches taken, so the closing branch of a
// tight primitive loop is effectively free and only data-dependent forward
// branches miss.
const (
	// IssueWidth is the number of instructions retired per cycle when an
	// ALU op pairs with a load/store op.
	IssueWidth = 2

	// MulStall is the pipeline stall of the low-power multiplier.
	MulStall Cycles = 4

	// BranchMissPenalty is the in-order pipeline refill cost of a
	// mispredicted branch.
	BranchMissPenalty Cycles = 6

	// ATESendCycles is the cost of posting a message descriptor to the
	// hardware ATE engine; ATEHopCycles is the crossbar traversal cost per
	// level (1 hop within a macro, 2 hops across macros).
	ATESendCycles Cycles = 4
	ATEHopCycles  Cycles = 2
)

// DualIssue returns the cycles needed to retire aluOps ALU-class and lsuOps
// load/store-class instructions under the dual-issue pipeline: perfectly
// paired streams retire at max(alu, lsu) cycles.
func DualIssue(aluOps, lsuOps int64) Cycles {
	if aluOps > lsuOps {
		return Cycles(aluOps)
	}
	return Cycles(lsuOps)
}

// SerialIssue returns the cycles for a run of dependent single-cycle
// instructions that cannot pair (each waits on the previous result).
func SerialIssue(ops int64) Cycles { return Cycles(ops) }

// MulCycles returns the cost of n multiplications including stalls.
func MulCycles(n int64) Cycles { return Cycles(n) * MulStall }

// ATEMessageCycles returns the latency of one ATE message between two cores:
// send descriptor cost plus crossbar hops (1 level inside a macro, 2 levels
// across macros, per the 2-level crossbar of §2.4).
func ATEMessageCycles(fromMacro, toMacro int) Cycles {
	hops := Cycles(1)
	if fromMacro != toMacro {
		hops = 2
	}
	return ATESendCycles + hops*ATEHopCycles
}
