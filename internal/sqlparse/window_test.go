package sqlparse

import (
	"testing"
)

func TestParseWindowFunctions(t *testing.T) {
	stmt, err := Parse(`
		SELECT i_id, row_number() OVER (PARTITION BY i_cat ORDER BY i_price DESC) AS rn,
		       SUM(i_qty) OVER (PARTITION BY i_cat) AS cat_qty
		FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	rn := stmt.Select[1].Expr.(*FuncExpr)
	if rn.Name != "ROW_NUMBER" || rn.Over == nil {
		t.Fatalf("row_number parse: %+v", rn)
	}
	if len(rn.Over.PartitionBy) != 1 || len(rn.Over.OrderBy) != 1 || !rn.Over.OrderBy[0].Desc {
		t.Fatalf("over clause: %+v", rn.Over)
	}
	sw := stmt.Select[2].Expr.(*FuncExpr)
	if sw.Name != "SUM" || sw.Over == nil || len(sw.Over.OrderBy) != 0 {
		t.Fatalf("sum over: %+v", sw)
	}
}

func TestWindowEndToEnd(t *testing.T) {
	cat := testCatalog(t)
	// Row number within each qty class by price: the top-ranked row per
	// class must have the maximum price of the class.
	rel := execSQL(t, cat, `
		SELECT i_id, i_qty, i_price,
		       row_number() OVER (PARTITION BY i_qty ORDER BY i_price DESC) AS rn
		FROM item
		WHERE i_cat = 0`)
	if rel.Rows() == 0 {
		t.Fatal("no rows")
	}
	// Collect per-class max price and the price at rn=1.
	maxPrice := map[int64]int64{}
	rnOne := map[int64]int64{}
	for i := 0; i < rel.Rows(); i++ {
		qty := rel.Cols[1].Data.Get(i)
		price := rel.Cols[2].Data.Get(i)
		if price > maxPrice[qty] {
			maxPrice[qty] = price
		}
		if rel.Cols[3].Data.Get(i) == 1 {
			rnOne[qty] = price
		}
	}
	for qty, want := range maxPrice {
		if rnOne[qty] != want {
			t.Fatalf("class %d: rn=1 price %d, max %d", qty, rnOne[qty], want)
		}
	}
}

func TestWindowTotalSum(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT i_cat, i_qty, SUM(i_qty) OVER (PARTITION BY i_cat) AS total
		FROM item WHERE i_cat < 2`)
	// Per category, the window total must equal the sum of qty.
	sums := map[int64]int64{}
	for i := 0; i < rel.Rows(); i++ {
		sums[rel.Cols[0].Data.Get(i)] += rel.Cols[1].Data.Get(i)
	}
	for i := 0; i < rel.Rows(); i++ {
		c := rel.Cols[0].Data.Get(i)
		if rel.Cols[2].Data.Get(i) != sums[c] {
			t.Fatalf("cat %d: window total %d, want %d", c, rel.Cols[2].Data.Get(i), sums[c])
		}
	}
}

func TestWindowCumSum(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT i_id, SUM(i_qty) OVER (PARTITION BY i_cat ORDER BY i_id) AS running
		FROM item WHERE i_cat = 3 ORDER BY i_id`)
	// Running sum must be nondecreasing in id order within the single
	// category (qty >= 1 always).
	for i := 1; i < rel.Rows(); i++ {
		if rel.Cols[1].Data.Get(i) <= rel.Cols[1].Data.Get(i-1) {
			t.Fatalf("running sum not increasing at row %d", i)
		}
	}
}

func TestWindowErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		`SELECT row_number() OVER (PARTITION BY i_cat), COUNT(*) FROM item`, // window + agg
		`SELECT 1 + row_number() OVER (PARTITION BY i_cat) FROM item`,       // nested window
		`SELECT rank() OVER (PARTITION BY i_qty + 1) FROM item`,             // expr partition key
		`SELECT AVG(i_qty) OVER (PARTITION BY i_cat) FROM item`,             // unsupported window fn
	}
	for _, sql := range bad {
		stmt, err := Parse(sql)
		if err != nil {
			continue
		}
		if _, err := Bind(stmt, cat, 0); err == nil {
			t.Errorf("Bind(%q) should fail", sql)
		}
	}
}
