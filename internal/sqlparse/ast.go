package sqlparse

// The SQL abstract syntax tree. Names are unresolved; the binder (bind.go)
// maps them to typed plan columns.

// SelectStmt is a full query.
type SelectStmt struct {
	Select  []SelectItem
	From    []TableRef
	Joins   []JoinClause
	Where   AstPred
	GroupBy []AstExpr
	Having  AstPred
	OrderBy []OrderItem
	Limit   int // -1 = none
	// Set operation chaining: SELECT ... UNION SELECT ...
	SetOp    string // "", "UNION", "UNION ALL", "INTERSECT", "MINUS"
	SetRight *SelectStmt
}

// SelectItem is one output expression.
type SelectItem struct {
	Expr AstExpr
	As   string
	Star bool // SELECT *
}

// TableRef is a FROM-list entry.
type TableRef struct {
	Name  string
	Alias string
}

// JoinClause is an explicit JOIN ... ON.
type JoinClause struct {
	Kind  string // "INNER", "LEFT"
	Table TableRef
	On    AstPred
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr AstExpr
	Desc bool
}

// AstExpr is an unbound scalar expression.
type AstExpr interface{ astExpr() }

// ColName is a possibly-qualified column reference.
type ColName struct {
	Table string // optional qualifier (alias or table name)
	Name  string
}

// NumLit is an integer or decimal literal (text preserved for exactness).
type NumLit struct{ Text string }

// StrLit is a string literal.
type StrLit struct{ Val string }

// DateLit is DATE 'yyyy-mm-dd' possibly adjusted by interval arithmetic at
// parse time.
type DateLit struct{ Days int64 }

// BinExpr is arithmetic.
type BinExpr struct {
	Op   string // + - * /
	L, R AstExpr
}

// CaseExpr is CASE WHEN p THEN a ELSE b END.
type CaseExpr struct {
	Cond AstPred
	Then AstExpr
	Else AstExpr
}

// FuncExpr is an aggregate or window call: SUM/AVG/MIN/MAX/COUNT, or with
// Over set, a window function (also ROW_NUMBER/RANK/DENSE_RANK).
type FuncExpr struct {
	Name string // upper-case
	Arg  AstExpr
	Star bool        // COUNT(*)
	Over *OverClause // non-nil: window function
}

// OverClause is the OVER (PARTITION BY ... ORDER BY ...) specification.
type OverClause struct {
	PartitionBy []AstExpr
	OrderBy     []OrderItem
}

func (*ColName) astExpr()  {}
func (*NumLit) astExpr()   {}
func (*StrLit) astExpr()   {}
func (*DateLit) astExpr()  {}
func (*BinExpr) astExpr()  {}
func (*CaseExpr) astExpr() {}
func (*FuncExpr) astExpr() {}

// AstPred is an unbound predicate.
type AstPred interface{ astPred() }

// CmpPred compares two expressions.
type CmpPred struct {
	Op   string // = <> < <= > >=
	L, R AstExpr
}

// BetweenP is e BETWEEN lo AND hi.
type BetweenP struct {
	E      AstExpr
	Lo, Hi AstExpr
}

// InP is e IN (list) or e IN (subquery).
type InP struct {
	E    AstExpr
	List []AstExpr
	Sub  *SelectStmt
	Not  bool
}

// LikeP is e [NOT] LIKE 'pattern'.
type LikeP struct {
	E       AstExpr
	Pattern string
	Not     bool
}

// IsNullP is e IS [NOT] NULL. The engine's value domain has no NULL (every
// column is NOT NULL and all expressions are total), so the binder folds it
// to a constant predicate; it exists so three-valued-logic query shapes
// (e.g. TLP partitioning) parse and execute.
type IsNullP struct {
	E   AstExpr
	Not bool
}

// AndP / OrP / NotP combine predicates.
type AndP struct{ Preds []AstPred }
type OrP struct{ Preds []AstPred }
type NotP struct{ P AstPred }

func (*CmpPred) astPred()  {}
func (*BetweenP) astPred() {}
func (*InP) astPred()      {}
func (*LikeP) astPred()    {}
func (*IsNullP) astPred()  {}
func (*AndP) astPred()     {}
func (*OrP) astPred()      {}
func (*NotP) astPred()     {}
