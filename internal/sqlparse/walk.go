package sqlparse

// walkStmtCols visits every column reference in the statement (including
// subqueries' outer references are out of scope — subqueries get their own
// binding pass). Used for scan column pruning.
func walkStmtCols(stmt *SelectStmt, visit func(*ColName)) {
	var walkE func(AstExpr)
	walkE = func(e AstExpr) {
		switch ex := e.(type) {
		case *ColName:
			visit(ex)
		case *BinExpr:
			walkE(ex.L)
			walkE(ex.R)
		case *CaseExpr:
			walkE(ex.Then)
			walkE(ex.Else)
			walkPredCols(ex.Cond, walkE)
		case *FuncExpr:
			if ex.Arg != nil {
				walkE(ex.Arg)
			}
			if ex.Over != nil {
				for _, p := range ex.Over.PartitionBy {
					walkE(p)
				}
				for _, o := range ex.Over.OrderBy {
					walkE(o.Expr)
				}
			}
		}
	}
	for _, item := range stmt.Select {
		if !item.Star {
			walkE(item.Expr)
		}
	}
	walkPredCols(stmt.Where, walkE)
	for _, j := range stmt.Joins {
		walkPredCols(j.On, walkE)
	}
	for _, g := range stmt.GroupBy {
		walkE(g)
	}
	walkPredCols(stmt.Having, walkE)
	for _, o := range stmt.OrderBy {
		walkE(o.Expr)
	}
}

func walkPredCols(p AstPred, walkE func(AstExpr)) {
	if p == nil {
		return
	}
	switch pr := p.(type) {
	case *CmpPred:
		walkE(pr.L)
		walkE(pr.R)
	case *BetweenP:
		walkE(pr.E)
		walkE(pr.Lo)
		walkE(pr.Hi)
	case *InP:
		walkE(pr.E)
		for _, i := range pr.List {
			walkE(i)
		}
	case *LikeP:
		walkE(pr.E)
	case *IsNullP:
		walkE(pr.E)
	case *AndP:
		for _, s := range pr.Preds {
			walkPredCols(s, walkE)
		}
	case *OrP:
		for _, s := range pr.Preds {
			walkPredCols(s, walkE)
		}
	case *NotP:
		walkPredCols(pr.P, walkE)
	}
}
