package sqlparse

import "testing"

func TestNormalizeGroupsLiteralVariants(t *testing.T) {
	base := "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 24 AND l_shipdate >= DATE '1994-01-01' GROUP BY l_orderkey"
	variants := []string{
		"select l_orderkey,   sum(l_extendedprice)\nfrom LINEITEM where l_quantity < 17 and l_shipdate >= date '1995-06-30' group by l_orderkey",
		"SELECT L_ORDERKEY, SUM(L_EXTENDEDPRICE) FROM lineitem WHERE l_quantity < 0.5 AND l_shipdate >= DATE '1993-12-31' GROUP BY l_orderkey",
	}
	nb, err := Normalize(base)
	if err != nil {
		t.Fatalf("Normalize(base): %v", err)
	}
	if len(nb.Params) != 2 {
		t.Fatalf("want 2 params, got %v", nb.Params)
	}
	if nb.Params[0] != (Param{Kind: ParamNumber, Text: "24"}) {
		t.Errorf("param 0 = %+v", nb.Params[0])
	}
	if nb.Params[1] != (Param{Kind: ParamString, Text: "1994-01-01"}) {
		t.Errorf("param 1 = %+v", nb.Params[1])
	}
	for _, v := range variants {
		nv, err := Normalize(v)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", v, err)
		}
		if nv.TemplateFP != nb.TemplateFP || nv.Template != nb.Template {
			t.Errorf("variant did not share template:\n base: %s\n  got: %s", nb.Template, nv.Template)
		}
		if nv.ParamsFP == nb.ParamsFP {
			t.Errorf("distinct literals must differ in ParamsFP: %q", v)
		}
	}
}

func TestNormalizeSameLiteralsSameParamsFP(t *testing.T) {
	a, err := Normalize("SELECT * FROM t WHERE a = 5 AND b = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Normalize("select *  from t where A=5 and B='x'")
	if err != nil {
		t.Fatal(err)
	}
	if a.TemplateFP != b.TemplateFP || a.ParamsFP != b.ParamsFP {
		t.Fatalf("identical queries must share both fingerprints: %+v vs %+v", a, b)
	}
}

func TestNormalizeDistinguishesTemplates(t *testing.T) {
	a, _ := Normalize("SELECT a FROM t WHERE a < 5")
	b, _ := Normalize("SELECT a FROM t WHERE a > 5")
	if a.TemplateFP == b.TemplateFP {
		t.Fatalf("different operators must not collide: %q vs %q", a.Template, b.Template)
	}
	// A string and a number with the same spelling are different parameters.
	c, _ := Normalize("SELECT a FROM t WHERE a = 5")
	d, _ := Normalize("SELECT a FROM t WHERE a = '5'")
	if c.TemplateFP != d.TemplateFP {
		t.Fatalf("both should normalize to = ?")
	}
	if c.ParamsFP == d.ParamsFP {
		t.Fatalf("number 5 and string '5' must hash differently")
	}
}

func TestNormalizeLexErrorFallsThrough(t *testing.T) {
	if _, err := Normalize("SELECT 'unterminated"); err == nil {
		t.Fatal("want lex error")
	}
}

func TestStmtTables(t *testing.T) {
	stmt, err := Parse("SELECT * FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey WHERE l.l_partkey IN (SELECT p_partkey FROM part WHERE p_size < 10)")
	if err != nil {
		t.Fatal(err)
	}
	got := StmtTables(stmt)
	want := []string{"lineitem", "orders", "part"}
	if len(got) != len(want) {
		t.Fatalf("tables = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tables = %v, want %v", got, want)
		}
	}
}
