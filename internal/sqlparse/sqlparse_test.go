package sqlparse

import (
	"fmt"
	"strings"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/qcomp"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// --- lexer / parser ----------------------------------------------------------

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a_1, 'it''s', 12.5 FROM t WHERE x <= 3 -- comment\nAND y != 2;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, "it's") {
		t.Fatalf("escaped quote: %s", joined)
	}
	if !strings.Contains(joined, "<=") || !strings.Contains(joined, "<>") {
		t.Fatalf("operators: %s", joined)
	}
	if strings.Contains(joined, "comment") {
		t.Fatal("comment not skipped")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("bad char should fail")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
}

func TestParseBasic(t *testing.T) {
	stmt, err := Parse(`
		SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15'
		GROUP BY l_orderkey
		ORDER BY revenue DESC
		LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Select) != 2 || stmt.Select[1].As != "revenue" {
		t.Fatal("select list")
	}
	if len(stmt.From) != 2 || stmt.From[0].Name != "lineitem" {
		t.Fatal("from list")
	}
	if stmt.Limit != 10 || len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Fatal("order/limit")
	}
	if len(stmt.GroupBy) != 1 {
		t.Fatal("group by")
	}
}

func TestParseDateInterval(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE d >= DATE '1994-01-01' AND d < DATE '1994-01-01' + INTERVAL '1' YEAR`)
	if err != nil {
		t.Fatal(err)
	}
	var conj []AstPred
	flattenAnd(stmt.Where, &conj)
	c2 := conj[1].(*CmpPred)
	d := c2.R.(*DateLit)
	want := storage.MustParseDate("1995-01-01").Days()
	if d.Days != want {
		t.Fatalf("interval fold = %d, want %d", d.Days, want)
	}
}

func TestParseCaseInBetweenLike(t *testing.T) {
	stmt, err := Parse(`
		SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice ELSE 0 END)
		FROM lineitem
		WHERE l_quantity BETWEEN 1 AND 10 AND l_shipmode IN ('MAIL', 'SHIP') AND NOT l_flag = 1`)
	if err != nil {
		t.Fatal(err)
	}
	f := stmt.Select[0].Expr.(*FuncExpr)
	if f.Name != "SUM" {
		t.Fatal("agg")
	}
	if _, ok := f.Arg.(*CaseExpr); !ok {
		t.Fatal("case arg")
	}
	var conj []AstPred
	flattenAnd(stmt.Where, &conj)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if _, ok := conj[0].(*BetweenP); !ok {
		t.Fatal("between")
	}
	in := conj[1].(*InP)
	if len(in.List) != 2 {
		t.Fatal("in list")
	}
	if _, ok := conj[2].(*NotP); !ok {
		t.Fatal("not")
	}
}

func TestParseJoinOn(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t1 JOIN t2 ON t1.k = t2.k LEFT JOIN t3 ON t2.j = t3.j WHERE t1.x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Joins) != 2 || stmt.Joins[0].Kind != "INNER" || stmt.Joins[1].Kind != "LEFT" {
		t.Fatalf("joins: %+v", stmt.Joins)
	}
}

func TestParseSubquery(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE k IN (SELECT k2 FROM u WHERE z = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	in := stmt.Where.(*InP)
	if in.Sub == nil {
		t.Fatal("subquery missing")
	}
}

func TestParseUnion(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t UNION SELECT a FROM u`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.SetOp != "UNION" || stmt.SetRight == nil {
		t.Fatal("union")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing junk (",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// --- binder + end-to-end through qcomp ----------------------------------------

type mapCatalog map[string]*storage.Table

func (m mapCatalog) Lookup(name string) (*storage.Table, error) {
	if t, ok := m[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("no table %q", name)
}

func testCatalog(t testing.TB) mapCatalog {
	t.Helper()
	items := storage.NewTableBuilder("item", storage.MustSchema(
		storage.ColumnDef{Name: "i_id", Type: coltypes.Int()},
		storage.ColumnDef{Name: "i_cat", Type: coltypes.Int()},
		storage.ColumnDef{Name: "i_price", Type: coltypes.Decimal(2)},
		storage.ColumnDef{Name: "i_qty", Type: coltypes.Int()},
		storage.ColumnDef{Name: "i_date", Type: coltypes.Date()},
		storage.ColumnDef{Name: "i_mode", Type: coltypes.String()},
	), storage.BuildOptions{ChunkRows: 512})
	modes := []string{"MAIL", "SHIP", "AIR", "RAIL"}
	for i := 0; i < 4000; i++ {
		must(t, items.Append([]storage.Value{
			storage.IntValue(int64(i)),
			storage.IntValue(int64(i % 40)),
			storage.DecString(fmt.Sprintf("%d.%02d", 1+i%50, i%100)),
			storage.IntValue(int64(i%10 + 1)),
			storage.DateValue(1994, 1+(i%12), 1+(i%28)),
			storage.StrValue(modes[i%4]),
		}))
	}
	cats := storage.NewTableBuilder("cat", storage.MustSchema(
		storage.ColumnDef{Name: "c_id", Type: coltypes.Int()},
		storage.ColumnDef{Name: "c_name", Type: coltypes.String()},
	), storage.BuildOptions{})
	for i := 0; i < 40; i++ {
		must(t, cats.Append([]storage.Value{
			storage.IntValue(int64(i)),
			storage.StrValue(fmt.Sprintf("cat-%02d", i)),
		}))
	}
	return mapCatalog{"item": items.MustBuild(), "cat": cats.MustBuild()}
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func execSQL(t *testing.T, cat mapCatalog, sql string) *ops.Relation {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err := Bind(stmt, cat, storage.LatestSCN)
	if err != nil {
		t.Fatal(err)
	}
	c, err := qcomp.Compile(node)
	if err != nil {
		t.Fatalf("compile: %v\nplan:\n%s", err, plan.Format(node))
	}
	rel, err := c.Execute(qef.NewContext(qef.ModeX86))
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestBindSimpleFilter(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `SELECT i_id, i_qty FROM item WHERE i_qty > 8 AND i_mode = 'MAIL'`)
	want := 0
	for i := 0; i < 4000; i++ {
		if i%10+1 > 8 && i%4 == 0 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
	if rel.Cols[0].Name != "i_id" || rel.Cols[1].Name != "i_qty" {
		t.Fatal("output names")
	}
}

func TestBindAggregateAvgHaving(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT i_cat, COUNT(*) AS n, AVG(i_qty) AS aq
		FROM item
		GROUP BY i_cat
		HAVING COUNT(*) > 50
		ORDER BY i_cat`)
	// 40 categories x 100 rows each; all pass HAVING.
	if rel.Rows() != 40 {
		t.Fatalf("rows = %d", rel.Rows())
	}
	if rel.Cols[1].Data.Get(0) != 100 {
		t.Fatalf("count = %d", rel.Cols[1].Data.Get(0))
	}
	// ORDER BY: categories ascending.
	for i := 1; i < 40; i++ {
		if rel.Cols[0].Data.Get(i-1) >= rel.Cols[0].Data.Get(i) {
			t.Fatal("not sorted")
		}
	}
}

func TestBindJoin(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT i_id, c_name
		FROM item, cat
		WHERE i_cat = c_id AND i_qty = 10 AND c_name = 'cat-09'`)
	want := 0
	for i := 0; i < 4000; i++ {
		if i%10+1 == 10 && i%40 == 9 {
			want++
		}
	}
	if want == 0 {
		t.Fatal("test data broken: expected matches")
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
	if rel.Render(0, 1) != "cat-09" {
		t.Fatalf("c_name = %s", rel.Render(0, 1))
	}
}

func TestBindExpressionRevenue(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT SUM(i_price * i_qty) AS rev
		FROM item
		WHERE i_date >= DATE '1994-06-01' AND i_date < DATE '1994-06-01' + INTERVAL '1' MONTH`)
	if rel.Rows() != 1 {
		t.Fatal("scalar agg should give one row")
	}
	var want int64
	for i := 0; i < 4000; i++ {
		d := storage.DateValue(1994, 1+(i%12), 1+(i%28)).Days()
		lo := storage.MustParseDate("1994-06-01").Days()
		hi := storage.MustParseDate("1994-07-01").Days()
		if d >= lo && d < hi {
			price := int64(1+i%50)*100 + int64(i%100)
			want += price * int64(i%10+1)
		}
	}
	if got := rel.Cols[0].Data.Get(0); got != want {
		t.Fatalf("rev = %d, want %d", got, want)
	}
	// SUM of scale-2 values keeps scale 2.
	if rel.Cols[0].Type.Scale != 2 {
		t.Fatalf("scale = %d", rel.Cols[0].Type.Scale)
	}
}

func TestBindInSubquery(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT i_id FROM item
		WHERE i_cat IN (SELECT c_id FROM cat WHERE c_name LIKE 'cat-0%') AND i_qty = 1`)
	// c_name LIKE 'cat-0%' -> categories 0..9; i_qty = 1 -> i%10 == 0.
	want := 0
	for i := 0; i < 4000; i++ {
		if i%40 < 10 && i%10 == 0 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
}

func TestBindCaseAggregate(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT SUM(CASE WHEN i_mode = 'MAIL' THEN 1 ELSE 0 END) AS mails, COUNT(*) AS n
		FROM item`)
	if rel.Cols[0].Data.Get(0) != 1000 || rel.Cols[1].Data.Get(0) != 4000 {
		t.Fatalf("case agg = %d/%d", rel.Cols[0].Data.Get(0), rel.Cols[1].Data.Get(0))
	}
}

func TestBindOrderByPosition(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `SELECT i_cat, COUNT(*) FROM item GROUP BY i_cat ORDER BY 2 DESC, 1 LIMIT 3`)
	if rel.Rows() != 3 {
		t.Fatalf("rows = %d", rel.Rows())
	}
}

func TestBindUnion(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT i_cat FROM item WHERE i_qty = 1
		UNION
		SELECT i_cat FROM item WHERE i_qty = 2`)
	// i_qty=1 hits cats {0,10,20,30}; i_qty=2 hits {1,11,21,31}: 8 distinct.
	if rel.Rows() != 8 {
		t.Fatalf("union rows = %d, want 8 distinct cats", rel.Rows())
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		`SELECT nope FROM item`,
		`SELECT i_id FROM missing`,
		`SELECT i_id FROM item, cat`,      // cross join
		`SELECT i_id, COUNT(*) FROM item`, // non-grouped column with agg
		`SELECT i_id FROM item ORDER BY nope`,
	}
	for _, sql := range bad {
		stmt, err := Parse(sql)
		if err != nil {
			continue
		}
		if _, err := Bind(stmt, cat, storage.LatestSCN); err == nil {
			t.Errorf("Bind(%q) should fail", sql)
		}
	}
}

func TestBindAliases(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT x.i_id FROM item x, cat y
		WHERE x.i_cat = y.c_id AND y.c_name = 'cat-00' AND x.i_qty > 9`)
	want := 0
	for i := 0; i < 4000; i++ {
		if i%40 == 0 && i%10+1 > 9 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
}

func TestBindLeftJoin(t *testing.T) {
	cat := testCatalog(t)
	// Items in categories 0..39 against a filtered category list: LEFT
	// JOIN keeps all items; unmatched rows render zero-valued payload.
	rel := execSQL(t, cat, `
		SELECT i_id, c_name
		FROM item LEFT JOIN cat ON i_cat = c_id
		WHERE i_qty = 5`)
	want := 0
	for i := 0; i < 4000; i++ {
		if i%10+1 == 5 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
}

func TestBindHavingOverAggregateExpr(t *testing.T) {
	cat := testCatalog(t)
	rel := execSQL(t, cat, `
		SELECT i_cat, SUM(i_qty) AS s
		FROM item
		GROUP BY i_cat
		HAVING SUM(i_qty) > 500 AND COUNT(*) > 50
		ORDER BY i_cat`)
	// Category c has 100 rows all with qty c%10+1, so SUM = 100*(c%10+1):
	// above 500 only for c%10 >= 5, i.e. 20 of the 40 categories.
	if rel.Rows() != 20 {
		t.Fatalf("rows = %d, want 20", rel.Rows())
	}
	// First passing category is 5 with sum 600.
	if rel.Cols[0].Data.Get(0) != 5 || rel.Cols[1].Data.Get(0) != 600 {
		t.Fatalf("first group: cat=%d sum=%d", rel.Cols[0].Data.Get(0), rel.Cols[1].Data.Get(0))
	}
}

func TestBindPostAggArithmetic(t *testing.T) {
	cat := testCatalog(t)
	// Q14-style ratio over two aggregates.
	rel := execSQL(t, cat, `
		SELECT 100.0 * SUM(i_qty) / COUNT(*) AS avg_x100 FROM item`)
	if rel.Rows() != 1 {
		t.Fatal("scalar")
	}
	// avg qty = 5.5, x100 = 550; result scale is DivScale (4).
	if got := rel.Cols[0].Data.Get(0); got != 550*10000 {
		t.Fatalf("ratio = %d", got)
	}
}
