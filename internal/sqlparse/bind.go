package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
	"rapid/internal/plan"
	"rapid/internal/storage"
)

// Catalog resolves table names to loaded RAPID tables.
type Catalog interface {
	Lookup(name string) (*storage.Table, error)
}

// Bind resolves a parsed statement against the catalog into a typed logical
// plan, applying the host-database-style normalizations: predicate
// classification (per-table filters vs join edges vs residual), greedy join
// ordering (smallest first), IN-subquery to semi-join rewrite, aggregate
// extraction and output projection.
func Bind(stmt *SelectStmt, cat Catalog, scn uint64) (plan.Node, error) {
	b := &binder{cat: cat, scn: scn}
	return b.bindSelect(stmt)
}

type binder struct {
	cat Catalog
	scn uint64
}

// tableScope tracks one FROM table during binding.
type tableScope struct {
	alias   string
	table   *storage.Table
	colIdxs []int // table columns included in the scan
	node    plan.Node
	rows    int64
}

// scope is the evolving output schema during join construction: for every
// position, the originating alias and column name.
type scopeCol struct {
	alias string
	name  string
	field plan.Field
}

func (b *binder) bindSelect(stmt *SelectStmt) (plan.Node, error) {
	if stmt.SetOp != "" {
		left := *stmt
		left.SetOp, left.SetRight = "", nil
		ln, err := b.bindSelect(&left)
		if err != nil {
			return nil, err
		}
		rn, err := b.bindSelect(stmt.SetRight)
		if err != nil {
			return nil, err
		}
		kind := map[string]plan.SetOpKind{
			"UNION": plan.Union, "UNION ALL": plan.UnionAll,
			"INTERSECT": plan.Intersect, "MINUS": plan.Minus,
		}[stmt.SetOp]
		return &plan.SetOp{Kind: kind, Left: ln, Right: rn}, nil
	}

	// Resolve tables and referenced columns.
	scopes, err := b.resolveTables(stmt)
	if err != nil {
		return nil, err
	}

	// Classify conjuncts.
	var conjuncts []AstPred
	flattenAnd(stmt.Where, &conjuncts)
	var edges []joinEdge
	var residual []AstPred
	var semis []*InP
	perTable := map[string][]AstPred{}

	// Aliases on the nullable side of a LEFT JOIN. WHERE predicates on such
	// a table must run above the join: filtering its scan instead would turn
	// probe rows that lose their only match into padded output rows.
	nullableAlias := map[string]bool{}
	for _, j := range stmt.Joins {
		if j.Kind == "LEFT" {
			nullableAlias[j.Table.Alias] = true
		}
	}

	classify := func(p AstPred, fromJoinOn string, joinAlias string) error {
		if in, ok := p.(*InP); ok && in.Sub != nil {
			semis = append(semis, in)
			return nil
		}
		aliases := b.predAliases(p, scopes)
		switch len(aliases) {
		case 0:
			residual = append(residual, p) // constant predicate
		case 1:
			if fromJoinOn == "" && nullableAlias[aliases[0]] {
				residual = append(residual, p)
			} else {
				perTable[aliases[0]] = append(perTable[aliases[0]], p)
			}
		case 2:
			// A WHERE equality involving a LEFT JOIN's nullable side must
			// not become a join edge either — merged into the join keys it
			// would pad rows the filter should drop.
			whereOnNullable := fromJoinOn == "" &&
				(nullableAlias[aliases[0]] || nullableAlias[aliases[1]])
			if cp, ok := p.(*CmpPred); ok && cp.Op == "=" && !whereOnNullable {
				lcol, lok := cp.L.(*ColName)
				rcol, rok := cp.R.(*ColName)
				if lok && rok {
					la, lc := b.resolveAlias(lcol, scopes)
					ra, rc := b.resolveAlias(rcol, scopes)
					if la != "" && ra != "" && la != ra {
						edges = append(edges, joinEdge{la: la, ra: ra, lc: lc, rc: rc, leftKind: fromJoinOn})
						return nil
					}
				}
			}
			residual = append(residual, p)
		default:
			residual = append(residual, p)
		}
		return nil
	}
	for _, c := range conjuncts {
		if err := classify(c, "", ""); err != nil {
			return nil, err
		}
	}
	for _, j := range stmt.Joins {
		var onConj []AstPred
		flattenAnd(j.On, &onConj)
		for _, c := range onConj {
			if err := classify(c, j.Kind, j.Table.Alias); err != nil {
				return nil, err
			}
		}
	}

	// Per-table filters.
	for alias, preds := range perTable {
		sc := scopeOf(scopes, alias)
		cols := scopeColsOf(sc)
		for _, p := range preds {
			bp, err := b.bindPred(p, cols)
			if err != nil {
				return nil, err
			}
			sc.node = &plan.Filter{Input: sc.node, Pred: bp}
			sc.rows = sc.rows/3 + 1
		}
	}

	// Join tree: explicit joins in statement order, then greedy over the
	// remaining edges starting from the smallest table.
	cur, curCols, err := b.buildJoinTree(stmt, scopes, edges)
	if err != nil {
		return nil, err
	}

	// Semi-join rewrites for IN subqueries.
	for _, in := range semis {
		sub, err := b.bindSelect(in.Sub)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema()) != 1 {
			return nil, fmt.Errorf("sqlparse: IN subquery must return one column")
		}
		col, ok := in.E.(*ColName)
		if !ok {
			return nil, fmt.Errorf("sqlparse: IN subquery needs a column on the left")
		}
		idx, _, err := lookupCol(curCols, col)
		if err != nil {
			return nil, err
		}
		typ := plan.SemiJoin
		if in.Not {
			typ = plan.AntiJoin
		}
		cur = &plan.Join{Type: typ, Left: cur, Right: sub, LeftKeys: []int{idx}, RightKeys: []int{0}}
	}

	// Residual predicates.
	for _, p := range residual {
		bp, err := b.bindPred(p, curCols)
		if err != nil {
			return nil, err
		}
		cur = &plan.Filter{Input: cur, Pred: bp}
	}

	// Aggregation / window functions.
	hasAgg := stmt.GroupBy != nil || stmt.Having != nil
	hasWindow := false
	for _, item := range stmt.Select {
		if item.Star {
			continue
		}
		if containsAgg(item.Expr) {
			hasAgg = true
		}
		if containsWindow(item.Expr) {
			hasWindow = true
		}
	}
	if hasAgg && hasWindow {
		return nil, fmt.Errorf("sqlparse: window functions cannot be combined with aggregation")
	}

	var outNode plan.Node
	var outNames []string
	switch {
	case hasWindow:
		outNode, outNames, err = b.bindWindows(stmt, cur, curCols)
		if err != nil {
			return nil, err
		}
	case hasAgg:
		outNode, outNames, err = b.bindAggregate(stmt, cur, curCols)
		if err != nil {
			return nil, err
		}
	default:
		outNode, outNames, err = b.bindProjection(stmt, cur, curCols)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY over the output schema.
	if len(stmt.OrderBy) > 0 {
		items, err := b.bindOrderBy(stmt.OrderBy, outNode, outNames)
		if err != nil {
			return nil, err
		}
		outNode = &plan.Sort{Input: outNode, Keys: items}
	}
	if stmt.Limit >= 0 {
		outNode = &plan.Limit{Input: outNode, K: stmt.Limit}
	}
	return outNode, nil
}

// resolveTables builds a scan (with column pruning) per FROM/JOIN table.
func (b *binder) resolveTables(stmt *SelectStmt) ([]*tableScope, error) {
	refs := append([]TableRef(nil), stmt.From...)
	for _, j := range stmt.Joins {
		refs = append(refs, j.Table)
	}
	// Referenced columns by alias (or unqualified).
	used := map[string]map[string]bool{}
	addCol := func(c *ColName) {
		key := c.Table
		if used[key] == nil {
			used[key] = map[string]bool{}
		}
		used[key][c.Name] = true
	}
	walkStmtCols(stmt, addCol)

	scopes := make([]*tableScope, 0, len(refs))
	seen := map[string]bool{}
	for _, r := range refs {
		if seen[r.Alias] {
			return nil, fmt.Errorf("sqlparse: duplicate table alias %q", r.Alias)
		}
		seen[r.Alias] = true
		tbl, err := b.cat.Lookup(r.Name)
		if err != nil {
			return nil, err
		}
		// Prune: include columns referenced by alias, plus unqualified
		// names that exist in this table.
		var cols []int
		include := func(name string) {
			idx := tbl.Schema().ColIndex(name)
			if idx < 0 {
				return
			}
			for _, c := range cols {
				if c == idx {
					return
				}
			}
			cols = append(cols, idx)
		}
		for name := range used[r.Alias] {
			include(name)
		}
		if r.Alias != r.Name {
			for name := range used[r.Name] {
				include(name)
			}
		}
		for name := range used[""] {
			include(name)
		}
		if len(cols) == 0 {
			// SELECT * or nothing referenced: scan everything.
			cols = nil
		}
		scan := plan.NewScan(tbl, b.scn, cols)
		sc := &tableScope{alias: r.Alias, table: tbl, node: scan, rows: int64(tbl.Rows())}
		if cols == nil {
			sc.colIdxs = make([]int, tbl.Schema().NumCols())
			for i := range sc.colIdxs {
				sc.colIdxs[i] = i
			}
		} else {
			sc.colIdxs = cols
		}
		scopes = append(scopes, sc)
	}
	// SELECT * support requires all columns.
	for _, item := range stmt.Select {
		if item.Star {
			for _, sc := range scopes {
				all := make([]int, sc.table.Schema().NumCols())
				for i := range all {
					all[i] = i
				}
				sc.colIdxs = all
				sc.node = plan.NewScan(sc.table, b.scn, nil)
			}
			break
		}
	}
	return scopes, nil
}

func scopeOf(scopes []*tableScope, alias string) *tableScope {
	for _, s := range scopes {
		if s.alias == alias {
			return s
		}
	}
	return nil
}

func scopeColsOf(sc *tableScope) []scopeCol {
	fs := sc.node.Schema()
	cols := make([]scopeCol, len(fs))
	for i, f := range fs {
		cols[i] = scopeCol{alias: sc.alias, name: f.Name, field: f}
	}
	return cols
}

// joinEdge is one equi-join condition between two table aliases.
type joinEdge struct {
	la, ra   string // aliases
	lc, rc   string // column names
	leftKind string // "INNER" or "LEFT" for explicit joins
}

// buildJoinTree folds the tables into a left-deep join tree.
func (b *binder) buildJoinTree(stmt *SelectStmt, scopes []*tableScope, edges []joinEdge) (plan.Node, []scopeCol, error) {
	if len(scopes) == 1 {
		return scopes[0].node, scopeColsOf(scopes[0]), nil
	}
	joined := map[string]bool{}
	// Start from the largest table as the probe/output side; joining
	// smaller tables into it keeps build sides small.
	start := scopes[0]
	for _, s := range scopes[1:] {
		if s.rows > start.rows {
			start = s
		}
	}
	// Explicit LEFT joins pin the left side: start from the first FROM
	// table in that case.
	for _, e := range edges {
		if e.leftKind == "LEFT" {
			start = scopes[0]
			break
		}
	}
	cur := start.node
	curCols := scopeColsOf(start)
	joined[start.alias] = true
	remaining := len(scopes) - 1

	edgeUsable := func(e joinEdge) (string, bool) {
		if joined[e.la] && !joined[e.ra] {
			return e.ra, true
		}
		if joined[e.ra] && !joined[e.la] {
			return e.la, true
		}
		return "", false
	}

	// joinFanout estimates the output growth of joining table `alias`
	// through its column `col`: rows / NDV(col). A primary-key edge gives
	// ~1 (no growth); a foreign-key edge multiplies cardinality and is
	// deferred — the host optimizer's logical join ordering.
	joinFanout := func(alias, col string) float64 {
		sc := scopeOf(scopes, alias)
		if sc == nil {
			return 1e18
		}
		idx := sc.table.Schema().ColIndex(col)
		stats := sc.table.Stats()
		if idx < 0 || stats == nil || idx >= len(stats.Cols) || stats.Cols[idx].NDV <= 0 {
			return float64(sc.rows)
		}
		return float64(sc.rows) / float64(stats.Cols[idx].NDV)
	}

	for remaining > 0 {
		// Pick the joinable table with the smallest fan-out (PK-FK edges
		// first), breaking ties by table size.
		var bestAlias string
		bestFanout := 1e18
		bestRows := int64(1) << 62
		for _, e := range edges {
			a, ok := edgeUsable(e)
			if !ok {
				continue
			}
			col := e.rc
			if a == e.la {
				col = e.lc
			}
			f := joinFanout(a, col)
			sc := scopeOf(scopes, a)
			if sc == nil {
				continue
			}
			if f < bestFanout || (f == bestFanout && sc.rows < bestRows) {
				bestFanout, bestRows, bestAlias = f, sc.rows, a
			}
		}
		if bestAlias == "" {
			return nil, nil, fmt.Errorf("sqlparse: cross join (no join condition connects all tables)")
		}
		next := scopeOf(scopes, bestAlias)
		nextCols := scopeColsOf(next)
		// Gather all usable edges to this table (composite keys).
		var lk, rk []int
		kind := plan.InnerJoin
		for _, e := range edges {
			var curAlias, curCol, nextCol string
			switch {
			case joined[e.la] && e.ra == bestAlias:
				curAlias, curCol, nextCol = e.la, e.lc, e.rc
			case joined[e.ra] && e.la == bestAlias:
				curAlias, curCol, nextCol = e.ra, e.rc, e.lc
			default:
				continue
			}
			if e.leftKind == "LEFT" {
				kind = plan.LeftOuterJoin
			}
			li, _, err := lookupCol(curCols, &ColName{Table: curAlias, Name: curCol})
			if err != nil {
				return nil, nil, err
			}
			ri, _, err := lookupCol(nextCols, &ColName{Table: bestAlias, Name: nextCol})
			if err != nil {
				return nil, nil, err
			}
			lk = append(lk, li)
			rk = append(rk, ri)
		}
		if len(lk) > 2 {
			lk, rk = lk[:2], rk[:2]
		}
		cur = &plan.Join{Type: kind, Left: cur, Right: next.node, LeftKeys: lk, RightKeys: rk}
		curCols = append(curCols, nextCols...)
		joined[bestAlias] = true
		remaining--
	}
	return cur, curCols, nil
}

// bindProjection builds the non-aggregate SELECT output.
func (b *binder) bindProjection(stmt *SelectStmt, input plan.Node, cols []scopeCol) (plan.Node, []string, error) {
	var exprs []plan.Expr
	var names []string
	for _, item := range stmt.Select {
		if item.Star {
			for i, c := range cols {
				exprs = append(exprs, &plan.ColRef{Idx: i, Name: c.name, T: c.field.Type, Dict: c.field.Dict})
				names = append(names, c.name)
			}
			continue
		}
		e, err := b.bindExpr(item.Expr, cols)
		if err != nil {
			return nil, nil, err
		}
		name := item.As
		if name == "" {
			if c, ok := item.Expr.(*ColName); ok {
				name = c.Name
			} else {
				name = e.String()
			}
		}
		exprs = append(exprs, e)
		names = append(names, name)
	}
	return &plan.Project{Input: input, Exprs: exprs, Names: names}, names, nil
}

// bindWindows lowers windowed SELECT items: each OVER call appends one
// plan.Window column to the input, and a final projection selects the
// output order. Window arguments, PARTITION BY and ORDER BY must be plain
// columns.
func (b *binder) bindWindows(stmt *SelectStmt, input plan.Node, cols []scopeCol) (plan.Node, []string, error) {
	cur := input
	baseCols := len(cols)
	winIdx := map[*FuncExpr]int{} // window call -> appended column index
	next := baseCols

	colIdx := func(e AstExpr) (int, error) {
		cn, ok := e.(*ColName)
		if !ok {
			return 0, fmt.Errorf("sqlparse: window clauses support plain columns only")
		}
		idx, _, err := lookupCol(cols, cn)
		return idx, err
	}
	for _, item := range stmt.Select {
		f, ok := item.Expr.(*FuncExpr)
		if !ok || f.Over == nil {
			if containsWindow(item.Expr) {
				return nil, nil, fmt.Errorf("sqlparse: window calls must be top-level SELECT items")
			}
			continue
		}
		w := &plan.Window{Input: cur, Name: "win"}
		switch f.Name {
		case "ROW_NUMBER":
			w.Func = plan.RowNumber
		case "RANK":
			w.Func = plan.Rank
		case "DENSE_RANK":
			w.Func = plan.DenseRank
		case "SUM":
			if len(f.Over.OrderBy) > 0 {
				w.Func = plan.CumSum
			} else {
				w.Func = plan.WinTotalSum
			}
			vc, err := colIdx(f.Arg)
			if err != nil {
				return nil, nil, err
			}
			w.ValueCol = vc
		default:
			return nil, nil, fmt.Errorf("sqlparse: unsupported window function %s", f.Name)
		}
		for _, p := range f.Over.PartitionBy {
			idx, err := colIdx(p)
			if err != nil {
				return nil, nil, err
			}
			w.PartitionBy = append(w.PartitionBy, idx)
		}
		for _, o := range f.Over.OrderBy {
			idx, err := colIdx(o.Expr)
			if err != nil {
				return nil, nil, err
			}
			w.OrderBy = append(w.OrderBy, plan.SortItem{Col: idx, Desc: o.Desc})
		}
		cur = w
		winIdx[f] = next
		next++
	}

	// Final projection in SELECT order.
	schema := cur.Schema()
	var exprs []plan.Expr
	var names []string
	for _, item := range stmt.Select {
		if item.Star {
			return nil, nil, fmt.Errorf("sqlparse: SELECT * with window functions")
		}
		name := item.As
		if f, ok := item.Expr.(*FuncExpr); ok && f.Over != nil {
			idx := winIdx[f]
			if name == "" {
				name = strings.ToLower(f.Name)
			}
			exprs = append(exprs, &plan.ColRef{Idx: idx, Name: name, T: schema[idx].Type})
			names = append(names, name)
			continue
		}
		e, err := b.bindExpr(item.Expr, cols)
		if err != nil {
			return nil, nil, err
		}
		if name == "" {
			if c, ok := item.Expr.(*ColName); ok {
				name = c.Name
			} else {
				name = e.String()
			}
		}
		exprs = append(exprs, e)
		names = append(names, name)
	}
	return &plan.Project{Input: cur, Exprs: exprs, Names: names}, names, nil
}

// bindAggregate builds GroupBy + post-projection (+ HAVING).
func (b *binder) bindAggregate(stmt *SelectStmt, input plan.Node, cols []scopeCol) (plan.Node, []string, error) {
	// Group keys.
	var keys []plan.Expr
	keyOf := map[string]int{} // "alias.name" -> key index
	for _, g := range stmt.GroupBy {
		cn, ok := g.(*ColName)
		if !ok {
			return nil, nil, fmt.Errorf("sqlparse: GROUP BY supports plain columns only")
		}
		idx, sc, err := lookupCol(cols, cn)
		if err != nil {
			return nil, nil, err
		}
		keyOf[sc.alias+"."+sc.name] = len(keys)
		if cn.Table == "" {
			keyOf["."+sc.name] = len(keys)
		}
		keys = append(keys, &plan.ColRef{Idx: idx, Name: sc.name, T: sc.field.Type, Dict: sc.field.Dict})
	}

	// Collect aggregates from SELECT, HAVING and ORDER BY.
	var aggs []plan.AggExpr
	aggIdx := map[*FuncExpr]int{}
	addAgg := func(f *FuncExpr) error {
		if _, done := aggIdx[f]; done {
			return nil
		}
		var arg plan.Expr
		kind := map[string]plan.AggKind{
			"SUM": plan.Sum, "AVG": plan.Avg, "MIN": plan.Min, "MAX": plan.Max, "COUNT": plan.Count,
		}[f.Name]
		if f.Star {
			kind = plan.CountStar
		} else {
			var err error
			arg, err = b.bindExpr(f.Arg, cols)
			if err != nil {
				return err
			}
		}
		aggIdx[f] = len(aggs)
		aggs = append(aggs, plan.AggExpr{Kind: kind, Arg: arg, Name: fmt.Sprintf("agg%d", len(aggs))})
		return nil
	}
	var collect func(e AstExpr) error
	collect = func(e AstExpr) error {
		switch ex := e.(type) {
		case *FuncExpr:
			return addAgg(ex)
		case *BinExpr:
			if err := collect(ex.L); err != nil {
				return err
			}
			return collect(ex.R)
		case *CaseExpr:
			if err := collect(ex.Then); err != nil {
				return err
			}
			return collect(ex.Else)
		}
		return nil
	}
	for _, item := range stmt.Select {
		if item.Star {
			return nil, nil, fmt.Errorf("sqlparse: SELECT * with aggregates")
		}
		if err := collect(item.Expr); err != nil {
			return nil, nil, err
		}
	}
	collectPredAggs(stmt.Having, func(f *FuncExpr) { _ = addAgg(f) })
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, nil, err
		}
	}

	gb := &plan.GroupBy{Input: input, Keys: keys, Aggs: aggs}
	gbSchema := gb.Schema()
	// Post-agg scope: keys then aggs.
	postCols := make([]scopeCol, len(gbSchema))
	for i, f := range gbSchema {
		postCols[i] = scopeCol{alias: "", name: f.Name, field: f}
	}

	// Bind a SELECT/HAVING expression against the post-agg schema: group
	// key columns resolve to key positions, aggregates to agg positions.
	var bindPost func(e AstExpr) (plan.Expr, error)
	bindPost = func(e AstExpr) (plan.Expr, error) {
		switch ex := e.(type) {
		case *FuncExpr:
			i, ok := aggIdx[ex]
			if !ok {
				return nil, fmt.Errorf("sqlparse: aggregate not collected")
			}
			pos := len(keys) + i
			return &plan.ColRef{Idx: pos, Name: gbSchema[pos].Name, T: gbSchema[pos].Type}, nil
		case *ColName:
			idx, sc, err := lookupCol(cols, ex)
			if err != nil {
				return nil, err
			}
			_ = idx
			k, ok := keyOf[sc.alias+"."+sc.name]
			if !ok {
				k, ok = keyOf["."+sc.name]
			}
			if !ok {
				return nil, fmt.Errorf("sqlparse: column %s not in GROUP BY", sc.name)
			}
			return &plan.ColRef{Idx: k, Name: sc.name, T: gbSchema[k].Type, Dict: gbSchema[k].Dict}, nil
		case *NumLit:
			return bindNum(ex)
		case *DateLit:
			return &plan.Const{T: coltypes.Date(), Val: ex.Days}, nil
		case *BinExpr:
			l, err := bindPost(ex.L)
			if err != nil {
				return nil, err
			}
			r, err := bindPost(ex.R)
			if err != nil {
				return nil, err
			}
			return plan.NewArith(arithOp(ex.Op), l, r)
		case *CaseExpr:
			return nil, fmt.Errorf("sqlparse: CASE over aggregates unsupported")
		}
		return nil, fmt.Errorf("sqlparse: unsupported post-aggregate expression %T", e)
	}

	var node plan.Node = gb
	// HAVING.
	if stmt.Having != nil {
		hp, err := b.bindPredWith(stmt.Having, postCols, bindPost)
		if err != nil {
			return nil, nil, err
		}
		node = &plan.Filter{Input: node, Pred: hp}
	}
	// Output projection in SELECT order.
	var exprs []plan.Expr
	var names []string
	for _, item := range stmt.Select {
		e, err := bindPost(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		name := item.As
		if name == "" {
			if c, ok := item.Expr.(*ColName); ok {
				name = c.Name
			} else if f, ok := item.Expr.(*FuncExpr); ok {
				name = strings.ToLower(f.Name)
			} else {
				name = e.String()
			}
		}
		exprs = append(exprs, e)
		names = append(names, name)
	}
	return &plan.Project{Input: node, Exprs: exprs, Names: names}, names, nil
}

func (b *binder) bindOrderBy(items []OrderItem, node plan.Node, outNames []string) ([]plan.SortItem, error) {
	schema := node.Schema()
	out := make([]plan.SortItem, len(items))
	for i, it := range items {
		idx := -1
		switch e := it.Expr.(type) {
		case *ColName:
			for j, n := range outNames {
				if n == e.Name {
					idx = j
					break
				}
			}
			if idx < 0 {
				for j, f := range schema {
					if f.Name == e.Name {
						idx = j
						break
					}
				}
			}
		case *NumLit:
			p, err := strconv.Atoi(e.Text)
			if err == nil && p >= 1 && p <= len(schema) {
				idx = p - 1
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("sqlparse: ORDER BY term %d does not match an output column", i+1)
		}
		out[i] = plan.SortItem{Col: idx, Desc: it.Desc}
	}
	return out, nil
}

// --- expression/predicate binding -------------------------------------------

func (b *binder) bindExpr(e AstExpr, cols []scopeCol) (plan.Expr, error) {
	switch ex := e.(type) {
	case *ColName:
		idx, sc, err := lookupCol(cols, ex)
		if err != nil {
			return nil, err
		}
		return &plan.ColRef{Idx: idx, Name: sc.name, T: sc.field.Type, Dict: sc.field.Dict}, nil
	case *NumLit:
		return bindNum(ex)
	case *StrLit:
		return &plan.Const{T: coltypes.String(), Str: ex.Val}, nil
	case *DateLit:
		return &plan.Const{T: coltypes.Date(), Val: ex.Days}, nil
	case *BinExpr:
		l, err := b.bindExpr(ex.L, cols)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(ex.R, cols)
		if err != nil {
			return nil, err
		}
		return plan.NewArith(arithOp(ex.Op), l, r)
	case *CaseExpr:
		cond, err := b.bindPred(ex.Cond, cols)
		if err != nil {
			return nil, err
		}
		thenE, err := b.bindExpr(ex.Then, cols)
		if err != nil {
			return nil, err
		}
		elseE, err := b.bindExpr(ex.Else, cols)
		if err != nil {
			return nil, err
		}
		return plan.NewCase(cond, thenE, elseE)
	case *FuncExpr:
		return nil, fmt.Errorf("sqlparse: aggregate %s outside aggregation context", ex.Name)
	}
	return nil, fmt.Errorf("sqlparse: unsupported expression %T", e)
}

func bindNum(n *NumLit) (plan.Expr, error) {
	d, err := encoding.ParseDecimal(n.Text)
	if err != nil {
		return nil, fmt.Errorf("sqlparse: bad number %q: %w", n.Text, err)
	}
	t := coltypes.Int()
	if d.Scale > 0 {
		t = coltypes.Decimal(d.Scale)
	}
	return &plan.Const{T: t, Val: d.Unscaled}, nil
}

func (b *binder) bindPred(p AstPred, cols []scopeCol) (plan.Pred, error) {
	return b.bindPredWith(p, cols, func(e AstExpr) (plan.Expr, error) {
		return b.bindExpr(e, cols)
	})
}

func (b *binder) bindPredWith(p AstPred, cols []scopeCol, bindE func(AstExpr) (plan.Expr, error)) (plan.Pred, error) {
	switch pr := p.(type) {
	case *CmpPred:
		l, err := bindE(pr.L)
		if err != nil {
			return nil, err
		}
		r, err := bindE(pr.R)
		if err != nil {
			return nil, err
		}
		return &plan.Cmp{Op: cmpOpOf(pr.Op), L: l, R: r}, nil
	case *BetweenP:
		e, err := bindE(pr.E)
		if err != nil {
			return nil, err
		}
		lo, err := bindE(pr.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := bindE(pr.Hi)
		if err != nil {
			return nil, err
		}
		return &plan.BetweenPred{E: e, Lo: lo, Hi: hi}, nil
	case *InP:
		if pr.Sub != nil {
			return nil, fmt.Errorf("sqlparse: IN subquery in unsupported position")
		}
		e, err := bindE(pr.E)
		if err != nil {
			return nil, err
		}
		var list []*plan.Const
		for _, item := range pr.List {
			be, err := bindE(item)
			if err != nil {
				return nil, err
			}
			c, ok := be.(*plan.Const)
			if !ok {
				return nil, fmt.Errorf("sqlparse: IN list items must be constants")
			}
			list = append(list, c)
		}
		var out plan.Pred = &plan.InPred{E: e, List: list}
		if pr.Not {
			out = &plan.NotPred{P: out}
		}
		return out, nil
	case *LikeP:
		e, err := bindE(pr.E)
		if err != nil {
			return nil, err
		}
		kind, needle := classifyLike(pr.Pattern)
		return &plan.LikePred{E: e, Kind: kind, Pattern: needle, Negate: pr.Not}, nil
	case *IsNullP:
		// The value domain has no NULL (every column is NOT NULL and all
		// expressions are total), so IS NULL is constant false and
		// IS NOT NULL constant true. Still bind the operand so invalid
		// column references are rejected.
		if _, err := bindE(pr.E); err != nil {
			return nil, err
		}
		op := plan.NE // IS NULL: never true
		if pr.Not {
			op = plan.EQ // IS NOT NULL: always true
		}
		c := coltypes.Int()
		return &plan.Cmp{Op: op, L: &plan.Const{T: c, Val: 1}, R: &plan.Const{T: c, Val: 1}}, nil
	case *AndP:
		out := &plan.AndPred{}
		for _, s := range pr.Preds {
			bs, err := b.bindPredWith(s, cols, bindE)
			if err != nil {
				return nil, err
			}
			out.Preds = append(out.Preds, bs)
		}
		return out, nil
	case *OrP:
		out := &plan.OrPred{}
		for _, s := range pr.Preds {
			bs, err := b.bindPredWith(s, cols, bindE)
			if err != nil {
				return nil, err
			}
			out.Preds = append(out.Preds, bs)
		}
		return out, nil
	case *NotP:
		inner, err := b.bindPredWith(pr.P, cols, bindE)
		if err != nil {
			return nil, err
		}
		return &plan.NotPred{P: inner}, nil
	}
	return nil, fmt.Errorf("sqlparse: unsupported predicate %T", p)
}

// classifyLike splits a LIKE pattern into the supported shapes.
func classifyLike(pattern string) (plan.LikeKind, string) {
	pre := strings.HasPrefix(pattern, "%")
	suf := strings.HasSuffix(pattern, "%")
	needle := strings.Trim(pattern, "%")
	switch {
	case pre && suf:
		return plan.LikeContains, needle
	case pre:
		return plan.LikeSuffix, needle
	case suf:
		return plan.LikePrefix, needle
	default:
		return plan.LikeExact, needle
	}
}

// --- helpers -----------------------------------------------------------------

func flattenAnd(p AstPred, out *[]AstPred) {
	if p == nil {
		return
	}
	if a, ok := p.(*AndP); ok {
		for _, s := range a.Preds {
			flattenAnd(s, out)
		}
		return
	}
	*out = append(*out, p)
}

// predAliases returns the distinct table aliases a predicate references.
func (b *binder) predAliases(p AstPred, scopes []*tableScope) []string {
	set := map[string]bool{}
	var walkE func(e AstExpr)
	walkE = func(e AstExpr) {
		switch ex := e.(type) {
		case *ColName:
			if a, _ := b.resolveAlias(ex, scopes); a != "" {
				set[a] = true
			}
		case *BinExpr:
			walkE(ex.L)
			walkE(ex.R)
		case *CaseExpr:
			walkE(ex.Then)
			walkE(ex.Else)
			walkP(ex.Cond, walkE)
		}
	}
	walkP(p, walkE)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	return out
}

func walkP(p AstPred, walkE func(AstExpr)) {
	switch pr := p.(type) {
	case *CmpPred:
		walkE(pr.L)
		walkE(pr.R)
	case *BetweenP:
		walkE(pr.E)
		walkE(pr.Lo)
		walkE(pr.Hi)
	case *InP:
		walkE(pr.E)
		for _, i := range pr.List {
			walkE(i)
		}
	case *LikeP:
		walkE(pr.E)
	case *IsNullP:
		walkE(pr.E)
	case *AndP:
		for _, s := range pr.Preds {
			walkP(s, walkE)
		}
	case *OrP:
		for _, s := range pr.Preds {
			walkP(s, walkE)
		}
	case *NotP:
		walkP(pr.P, walkE)
	}
}

func collectPredAggs(p AstPred, add func(*FuncExpr)) {
	if p == nil {
		return
	}
	walkP(p, func(e AstExpr) {
		var walk func(AstExpr)
		walk = func(e AstExpr) {
			switch ex := e.(type) {
			case *FuncExpr:
				add(ex)
			case *BinExpr:
				walk(ex.L)
				walk(ex.R)
			}
		}
		walk(e)
	})
}

func containsAgg(e AstExpr) bool {
	switch ex := e.(type) {
	case *FuncExpr:
		return ex.Over == nil // windowed calls are not aggregates
	case *BinExpr:
		return containsAgg(ex.L) || containsAgg(ex.R)
	case *CaseExpr:
		return containsAgg(ex.Then) || containsAgg(ex.Else)
	}
	return false
}

func containsWindow(e AstExpr) bool {
	switch ex := e.(type) {
	case *FuncExpr:
		return ex.Over != nil
	case *BinExpr:
		return containsWindow(ex.L) || containsWindow(ex.R)
	case *CaseExpr:
		return containsWindow(ex.Then) || containsWindow(ex.Else)
	}
	return false
}

// resolveAlias maps a column name to its table alias (empty if unknown or
// ambiguous).
func (b *binder) resolveAlias(c *ColName, scopes []*tableScope) (alias, col string) {
	if c.Table != "" {
		if sc := scopeOf(scopes, c.Table); sc != nil {
			return c.Table, c.Name
		}
		// Qualifier may be a table name used with a different alias.
		for _, sc := range scopes {
			if sc.table.Name() == c.Table {
				return sc.alias, c.Name
			}
		}
		return "", c.Name
	}
	found := ""
	for _, sc := range scopes {
		if sc.table.Schema().ColIndex(c.Name) >= 0 {
			if found != "" {
				return "", c.Name // ambiguous
			}
			found = sc.alias
		}
	}
	return found, c.Name
}

// lookupCol resolves a column name against a combined scope.
func lookupCol(cols []scopeCol, c *ColName) (int, *scopeCol, error) {
	idx := -1
	for i := range cols {
		sc := &cols[i]
		if sc.name != c.Name {
			continue
		}
		if c.Table != "" && sc.alias != c.Table {
			continue
		}
		if idx >= 0 {
			return 0, nil, fmt.Errorf("sqlparse: ambiguous column %q", c.Name)
		}
		idx = i
	}
	if idx < 0 {
		return 0, nil, fmt.Errorf("sqlparse: unknown column %q", c.Name)
	}
	return idx, &cols[idx], nil
}

func arithOp(op string) plan.ArithOp {
	switch op {
	case "+":
		return plan.Add
	case "-":
		return plan.Sub
	case "*":
		return plan.Mul
	default:
		return plan.Div
	}
}

func cmpOpOf(op string) plan.CmpOp {
	switch op {
	case "=":
		return plan.EQ
	case "<>":
		return plan.NE
	case "<":
		return plan.LT
	case "<=":
		return plan.LE
	case ">":
		return plan.GT
	default:
		return plan.GE
	}
}
