package sqlparse

import "testing"

// FuzzParser feeds arbitrary strings to the parser: it must never panic or
// loop, and a successful parse must be deterministic. The seed corpus covers
// every statement class the generator emits plus the truncation shapes that
// historically crashed the token cursor at EOF.
func FuzzParser(f *testing.F) {
	for _, s := range []string{
		"SELECT a FROM t",
		"SELECT a, b FROM t WHERE a > 1 AND b < 2 ORDER BY a DESC LIMIT 3",
		"SELECT k1, SUM(a1) FROM t1 JOIN t2 ON k1 = k2 GROUP BY k1 HAVING SUM(a1) > 0",
		"SELECT a FROM t1 LEFT JOIN t2 ON k1 = k2 WHERE b IS NOT NULL",
		"SELECT a FROM t WHERE s LIKE 'x%' OR s IN ('a', 'b')",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR (a) IS NULL",
		"SELECT a FROM t WHERE d = DATE '2021-05-10'",
		"SELECT a FROM t UNION SELECT b FROM u",
		"SELECT a, RANK() OVER (PARTITION BY k ORDER BY a) FROM t",
		"SELECT CASE WHEN a > 1 THEN 2 ELSE 3 END FROM t",
		"SELECT a FROM t WHERE x IN (SELECT y FROM u)",
		"SELECT -1.5 * (a + 2) / 3 FROM t",
		// Truncation class: inputs that end mid-clause must error, not panic.
		"SELECT INTERVAL '3'",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t LIMIT",
		"SELECT",
		"SELECT a FROM t WHERE a BETWEEN",
		"SELECT a FROM",
		"",
		"'",
		"SELECT 'unterminated",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("nil statement without error for %q", src)
		}
		stmt2, err2 := Parse(src)
		if err2 != nil || stmt2 == nil {
			t.Fatalf("parse not deterministic for %q: first ok, second err=%v", src, err2)
		}
	})
}

// TestParserTruncationNoPanic pins the EOF regression deterministically (the
// fuzz corpus above only runs the saved inputs in short mode): the token
// cursor used to run past the slice on inputs ending mid-expression.
func TestParserTruncationNoPanic(t *testing.T) {
	whole := "SELECT a, SUM(b) FROM t1 LEFT JOIN t2 ON k1 = k2 WHERE a BETWEEN 1 AND 2 GROUP BY a ORDER BY a LIMIT 3"
	for i := 0; i <= len(whole); i++ {
		if _, err := Parse(whole[:i]); err != nil {
			continue // errors are expected; panics are the bug
		}
	}
}
