package sqlparse

import "strings"

// Literal normalization for the query cache (DESIGN.md §10) and the query
// journal. Normalize lexes a statement and replaces every number and string
// literal with a `?` placeholder, yielding a canonical template (keywords
// upper-cased, identifiers lower-cased, single-space separated) plus the
// extracted parameter vector in occurrence order. Two invocations of the
// same dashboard query that differ only in whitespace, letter case or
// literal values therefore share a TemplateFP, while the (TemplateFP,
// ParamsFP) pair still distinguishes distinct literal bindings — exactly
// the two keying granularities the plan cache and result cache need.

// ParamKind says which literal class a parameter replaced.
type ParamKind uint8

const (
	ParamNumber ParamKind = iota
	ParamString
)

// Param is one extracted literal, in template occurrence order.
type Param struct {
	Kind ParamKind
	Text string // number spelling or decoded string body
}

// Normalized is the canonical form of one SQL statement.
type Normalized struct {
	Template   string  // literal-free canonical rendering
	Params     []Param // literals in occurrence order
	TemplateFP uint64  // FNV-1a over Template
	ParamsFP   uint64  // FNV-1a over the parameter vector (kind + text)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// Normalize canonicalizes one SQL statement. It fails only when the lexer
// does (unterminated string, stray character); callers fall back to raw-SQL
// fingerprinting in that case so malformed input still journals.
func Normalize(sql string) (Normalized, error) {
	toks, err := lex(sql)
	if err != nil {
		return Normalized{}, err
	}
	var sb strings.Builder
	sb.Grow(len(sql))
	var params []Param
	ph := uint64(fnvOffset64)
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tokNumber:
			sb.WriteByte('?')
			params = append(params, Param{Kind: ParamNumber, Text: t.text})
			ph = fnvByte(ph, byte(ParamNumber))
			ph = fnvString(ph, t.text)
			ph = fnvByte(ph, 0)
		case tokString:
			sb.WriteByte('?')
			params = append(params, Param{Kind: ParamString, Text: t.text})
			ph = fnvByte(ph, byte(ParamString))
			ph = fnvString(ph, t.text)
			ph = fnvByte(ph, 0)
		default:
			sb.WriteString(t.text)
		}
	}
	n := Normalized{Template: sb.String(), Params: params, ParamsFP: ph}
	n.TemplateFP = fnvString(fnvOffset64, n.Template)
	return n, nil
}

// StmtTables lists every base table name a parsed statement touches (FROM
// items, JOIN sides, IN-subquery FROM items), deduplicated in first-use
// order. The cache uses it to capture per-table version vectors before the
// statement is bound.
func StmtTables(stmt *SelectStmt) []string {
	seen := make(map[string]bool, 4)
	var out []string
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkStmt func(*SelectStmt)
	walkPred := func(p AstPred) {
		walkPreds(p, func(pr AstPred) {
			if in, ok := pr.(*InP); ok && in.Sub != nil {
				walkStmt(in.Sub)
			}
		})
	}
	walkStmt = func(s *SelectStmt) {
		if s == nil {
			return
		}
		for _, f := range s.From {
			add(f.Name)
		}
		for _, j := range s.Joins {
			add(j.Table.Name)
			walkPred(j.On)
		}
		walkPred(s.Where)
		walkPred(s.Having)
		walkStmt(s.SetRight)
	}
	walkStmt(stmt)
	return out
}

// walkPreds visits p and every nested predicate.
func walkPreds(p AstPred, visit func(AstPred)) {
	if p == nil {
		return
	}
	visit(p)
	switch pr := p.(type) {
	case *AndP:
		for _, s := range pr.Preds {
			walkPreds(s, visit)
		}
	case *OrP:
		for _, s := range pr.Preds {
			walkPreds(s, visit)
		}
	case *NotP:
		walkPreds(pr.P, visit)
	}
}
