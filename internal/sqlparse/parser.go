package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

// next consumes and returns the current token; the trailing EOF token is
// never consumed so cur() stays in bounds after arbitrary token sequences.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, got %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	// Select list.
	for {
		if p.accept(tokSymbol, "*") {
			stmt.Select = append(stmt.Select, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				t, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.As = t.text
			} else if p.at(tokIdent, "") {
				item.As = p.next().text
			}
			stmt.Select = append(stmt.Select, item)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	// FROM.
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, tr)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	// JOIN clauses.
	for {
		kind := ""
		switch {
		case p.accept(tokKeyword, "INNER"):
			kind = "INNER"
		case p.accept(tokKeyword, "LEFT"):
			p.accept(tokKeyword, "OUTER")
			kind = "LEFT"
		case p.at(tokKeyword, "JOIN"):
			kind = "INNER"
		}
		if kind == "" || !p.accept(tokKeyword, "JOIN") {
			if kind != "" {
				return nil, p.errf("expected JOIN")
			}
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Kind: kind, Table: tr, On: on})
	}
	// WHERE.
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	// GROUP BY.
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	// HAVING.
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	// Set operations bind before ORDER BY/LIMIT (which apply to the whole).
	if p.at(tokKeyword, "UNION") || p.at(tokKeyword, "INTERSECT") || p.at(tokKeyword, "MINUS") {
		op := p.next().text
		if op == "UNION" && p.accept(tokKeyword, "ALL") {
			op = "UNION ALL"
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.SetOp = op
		stmt.SetRight = right
		return stmt, nil
	}
	// ORDER BY.
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				it.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, it)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	// LIMIT.
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		stmt.Limit = k
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: t.text, Alias: t.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a.text
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// Predicates: OR over AND over NOT over atoms.

func (p *parser) parsePred() (AstPred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	preds := []AstPred{left}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		preds = append(preds, r)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &OrP{Preds: preds}, nil
}

func (p *parser) parseAnd() (AstPred, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	preds := []AstPred{left}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		preds = append(preds, r)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &AndP{Preds: preds}, nil
}

func (p *parser) parseNot() (AstPred, error) {
	if p.accept(tokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotP{P: inner}, nil
	}
	return p.parsePredAtom()
}

func (p *parser) parsePredAtom() (AstPred, error) {
	// Parenthesized predicate: try it, backtracking to expression parsing
	// if the contents turn out to be an expression.
	if p.at(tokSymbol, "(") {
		save := p.pos
		p.pos++
		inner, err := p.parsePred()
		if err == nil && p.accept(tokSymbol, ")") {
			// It parsed as a predicate; but `(expr) op expr` also reaches
			// here when expr is comparison-shaped. Check nothing
			// comparison-like follows.
			if !p.atCmpSymbol() {
				return inner, nil
			}
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// e IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullP{E: e, Not: neg}, nil
	}
	// e BETWEEN lo AND hi
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenP{E: e, Lo: lo, Hi: hi}, nil
	}
	// e [NOT] IN / LIKE
	neg := false
	if p.at(tokKeyword, "NOT") && (p.toks[p.pos+1].text == "IN" || p.toks[p.pos+1].text == "LIKE") {
		p.pos++
		neg = true
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if p.at(tokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &InP{E: e, Sub: sub, Not: neg}, nil
		}
		var list []AstExpr
		for {
			item, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InP{E: e, List: list, Not: neg}, nil
	}
	if p.accept(tokKeyword, "LIKE") {
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeP{E: e, Pattern: t.text, Not: neg}, nil
	}
	// e op e
	if !p.atCmpSymbol() {
		return nil, p.errf("expected comparison, got %q", p.cur().text)
	}
	op := p.next().text
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CmpPred{Op: op, L: e, R: r}, nil
}

func (p *parser) atCmpSymbol() bool {
	if p.cur().kind != tokSymbol {
		return false
	}
	switch p.cur().text {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// Expressions: additive over multiplicative over unary over atoms.

func (p *parser) parseExpr() (AstExpr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := p.next().text
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		// Date interval arithmetic folds at parse time.
		if d, ok := left.(*DateLit); ok {
			if iv, ok2 := r.(*intervalLit); ok2 {
				left = &DateLit{Days: applyInterval(d.Days, iv, op)}
				continue
			}
		}
		left = &BinExpr{Op: op, L: left, R: r}
	}
	return left, nil
}

func (p *parser) parseTerm() (AstExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") || p.at(tokSymbol, "/") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: r}
	}
	return left, nil
}

func (p *parser) parseUnary() (AstExpr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(*NumLit); ok {
			return &NumLit{Text: "-" + n.Text}, nil
		}
		return &BinExpr{Op: "-", L: &NumLit{Text: "0"}, R: e}, nil
	}
	return p.parseAtom()
}

// intervalLit is parse-time only: INTERVAL 'n' MONTH etc.
type intervalLit struct {
	n    int
	unit string
}

func (*intervalLit) astExpr() {}

func (p *parser) parseAtom() (AstExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return &NumLit{Text: t.text}, nil
	case t.kind == tokString:
		p.pos++
		return &StrLit{Val: t.text}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.pos++
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		d, err := time.Parse("2006-01-02", s.text)
		if err != nil {
			return nil, p.errf("bad date literal %q", s.text)
		}
		return &DateLit{Days: int64(d.Unix() / 86400)}, nil
	case t.kind == tokKeyword && t.text == "INTERVAL":
		p.pos++
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(s.text)
		if err != nil {
			return nil, p.errf("bad interval %q", s.text)
		}
		unitTok := p.next()
		// YEAR/MONTH/DAY are contextual (not reserved — columns may be
		// named "day").
		switch strings.ToUpper(unitTok.text) {
		case "YEAR", "MONTH", "DAY":
			return &intervalLit{n: n, unit: strings.ToUpper(unitTok.text)}, nil
		}
		return nil, p.errf("bad interval unit %q", unitTok.text)
	case t.kind == tokKeyword && t.text == "CASE":
		p.pos++
		if _, err := p.expect(tokKeyword, "WHEN"); err != nil {
			return nil, err
		}
		cond, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var els AstExpr = &NumLit{Text: "0"}
		if p.accept(tokKeyword, "ELSE") {
			els, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "END"); err != nil {
			return nil, err
		}
		return &CaseExpr{Cond: cond, Then: then, Else: els}, nil
	case t.kind == tokKeyword && (t.text == "SUM" || t.text == "AVG" || t.text == "MIN" || t.text == "MAX" || t.text == "COUNT"):
		p.pos++
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if t.text == "COUNT" && p.accept(tokSymbol, "*") {
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &FuncExpr{Name: "COUNT", Star: true}, nil
		}
		p.accept(tokKeyword, "DISTINCT") // accepted, treated as plain
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		f := &FuncExpr{Name: t.text, Arg: arg}
		if p.at(tokKeyword, "OVER") {
			over, err := p.parseOver()
			if err != nil {
				return nil, err
			}
			f.Over = over
		}
		return f, nil
	case t.kind == tokIdent:
		p.pos++
		// Window ranking functions parse as identifiers: row_number() OVER.
		if (t.text == "row_number" || t.text == "rank" || t.text == "dense_rank") && p.at(tokSymbol, "(") {
			p.pos++
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			over, err := p.parseOver()
			if err != nil {
				return nil, err
			}
			return &FuncExpr{Name: strings.ToUpper(t.text), Over: over}, nil
		}
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColName{Table: t.text, Name: col.text}, nil
		}
		return &ColName{Name: t.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// parseOver parses OVER ( [PARTITION BY cols] [ORDER BY items] ).
func (p *parser) parseOver() (*OverClause, error) {
	if _, err := p.expect(tokKeyword, "OVER"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	over := &OverClause{}
	if p.accept(tokKeyword, "PARTITION") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			over.PartitionBy = append(over.PartitionBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				it.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			over.OrderBy = append(over.OrderBy, it)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return over, nil
}

func applyInterval(days int64, iv *intervalLit, op string) int64 {
	t := time.Unix(days*86400, 0).UTC()
	n := iv.n
	if op == "-" {
		n = -n
	}
	switch iv.unit {
	case "YEAR":
		t = t.AddDate(n, 0, 0)
	case "MONTH":
		t = t.AddDate(0, n, 0)
	case "DAY":
		t = t.AddDate(0, 0, n)
	}
	return t.Unix() / 86400
}
