// Package sqlparse is the SQL front end for the analytic subset RAPID
// accepts: SELECT-FROM-WHERE-GROUP BY-HAVING-ORDER BY-LIMIT with joins
// (comma-style and JOIN..ON), arithmetic, CASE, BETWEEN, IN (lists and
// single-level subqueries, bound as semi-joins), LIKE, date literals and
// interval arithmetic. The binder resolves names against loaded tables and
// produces the typed logical plan of internal/plan — standing in for the
// host database's parser and semantic analysis (paper §3.1).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"ASC": true, "DESC": true, "DATE": true, "INTERVAL": true,
	"OVER": true, "PARTITION": true,
	"SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "COUNT": true, "DISTINCT": true, "UNION": true, "ALL": true,
	"INTERSECT": true, "MINUS": true, "EXISTS": true, "IS": true, "NULL": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexWord()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
		} else if c == '.' && !seenDot {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at offset %d", start)
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
	}
}

var twoCharSymbols = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexSymbol() error {
	start := l.pos
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		sym := l.src[l.pos : l.pos+2]
		if sym == "!=" {
			sym = "<>"
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '+', '-', '*', '/', '<', '>', '=', '.', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		l.pos++
		return nil
	default:
		return fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
	}
}
