package plan

import (
	"strings"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/storage"
)

func testTable(t *testing.T) *storage.Table {
	t.Helper()
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "id", Type: coltypes.Int()},
		storage.ColumnDef{Name: "price", Type: coltypes.Decimal(2)},
		storage.ColumnDef{Name: "name", Type: coltypes.String()},
		storage.ColumnDef{Name: "day", Type: coltypes.Date()},
	)
	b := storage.NewTableBuilder("t", schema, storage.BuildOptions{})
	for i := 0; i < 10; i++ {
		if err := b.Append([]storage.Value{
			storage.IntValue(int64(i)),
			storage.DecString("1.50"),
			storage.StrValue("x"),
			storage.DateValue(2020, 1, 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestScanSchema(t *testing.T) {
	tbl := testTable(t)
	s := NewScan(tbl, storage.LatestSCN, nil)
	if len(s.Schema()) != 4 {
		t.Fatalf("schema = %d cols", len(s.Schema()))
	}
	if s.Schema()[1].Type.Scale != 2 {
		t.Fatal("decimal scale lost")
	}
	if s.Schema()[2].Dict == nil {
		t.Fatal("string column must carry its dictionary")
	}
	pruned := NewScan(tbl, storage.LatestSCN, []int{2, 0})
	if len(pruned.Schema()) != 2 || pruned.Schema()[0].Name != "name" {
		t.Fatal("pruned scan schema wrong")
	}
}

func TestArithTypeResolution(t *testing.T) {
	d2 := &Const{T: coltypes.Decimal(2), Val: 150}
	d1 := &Const{T: coltypes.Decimal(1), Val: 5}
	i := &Const{T: coltypes.Int(), Val: 3}
	date := &Const{T: coltypes.Date(), Val: 100}
	str := &Const{T: coltypes.String(), Str: "x"}

	add, err := NewArith(Add, d2, d1)
	if err != nil || add.Type().Scale != 2 {
		t.Fatalf("add scale = %d (%v)", add.Type().Scale, err)
	}
	mul, err := NewArith(Mul, d2, d1)
	if err != nil || mul.Type().Scale != 3 {
		t.Fatalf("mul scale = %d", mul.Type().Scale)
	}
	div, err := NewArith(Div, d2, d1)
	if err != nil || div.Type().Scale != DivScale {
		t.Fatalf("div scale = %d", div.Type().Scale)
	}
	ii, err := NewArith(Sub, i, i)
	if err != nil || ii.Type().Kind != coltypes.KindInt {
		t.Fatal("int-int must stay int")
	}
	dd, err := NewArith(Add, date, i)
	if err != nil || dd.Type().Kind != coltypes.KindDate {
		t.Fatal("date + int must stay a date")
	}
	if _, err := NewArith(Add, str, i); err == nil {
		t.Fatal("string arithmetic must fail")
	}
}

func TestAggExprTypes(t *testing.T) {
	arg := &Const{T: coltypes.Decimal(2), Val: 1}
	if (&AggExpr{Kind: Sum, Arg: arg}).Type().Scale != 2 {
		t.Fatal("SUM keeps scale")
	}
	if (&AggExpr{Kind: Avg, Arg: arg}).Type().Scale != 4 {
		t.Fatal("AVG adds two scale digits")
	}
	if (&AggExpr{Kind: Count, Arg: arg}).Type().Kind != coltypes.KindInt {
		t.Fatal("COUNT is int")
	}
	if (&AggExpr{Kind: CountStar}).Type().Kind != coltypes.KindInt {
		t.Fatal("COUNT(*) is int")
	}
}

func TestCaseScaleUnification(t *testing.T) {
	c, err := NewCase(&Cmp{Op: EQ, L: &Const{T: coltypes.Int(), Val: 1}, R: &Const{T: coltypes.Int(), Val: 1}},
		&Const{T: coltypes.Decimal(2), Val: 100},
		&Const{T: coltypes.Int(), Val: 0})
	if err != nil || c.Type().Scale != 2 {
		t.Fatalf("case scale = %d", c.Type().Scale)
	}
}

func TestNodeSchemas(t *testing.T) {
	tbl := testTable(t)
	scan := NewScan(tbl, storage.LatestSCN, nil)
	filter := &Filter{Input: scan, Pred: &Cmp{Op: GT, L: &ColRef{Idx: 0, T: coltypes.Int()}, R: &Const{T: coltypes.Int(), Val: 1}}}
	if len(filter.Schema()) != 4 {
		t.Fatal("filter schema passthrough")
	}
	join := &Join{Type: InnerJoin, Left: scan, Right: scan, LeftKeys: []int{0}, RightKeys: []int{0}}
	if len(join.Schema()) != 8 {
		t.Fatal("inner join concatenates schemas")
	}
	semi := &Join{Type: SemiJoin, Left: scan, Right: scan, LeftKeys: []int{0}, RightKeys: []int{0}}
	if len(semi.Schema()) != 4 {
		t.Fatal("semi join keeps left schema")
	}
	gb := &GroupBy{
		Input: scan,
		Keys:  []Expr{&ColRef{Idx: 2, Name: "name", T: coltypes.String()}},
		Aggs:  []AggExpr{{Kind: CountStar, Name: "n"}},
	}
	gs := gb.Schema()
	if len(gs) != 2 || gs[0].Name != "name" || gs[1].Name != "n" {
		t.Fatalf("groupby schema: %+v", gs)
	}
	// Group key resolves the dictionary from the input schema.
	if gs[0].Dict == nil {
		t.Fatal("group key lost dictionary")
	}
	w := &Window{Input: scan, Func: RowNumber, Name: "rn"}
	ws := w.Schema()
	if len(ws) != 5 || ws[4].Name != "rn" {
		t.Fatal("window schema")
	}
	proj := &Project{Input: scan, Exprs: []Expr{&ColRef{Idx: 1, Name: "price", T: coltypes.Decimal(2)}}, Names: []string{"p"}}
	if proj.Schema()[0].Name != "p" || proj.Schema()[0].Type.Scale != 2 {
		t.Fatal("project schema")
	}
	lim := &Limit{Input: &Sort{Input: scan, Keys: []SortItem{{Col: 0}}}, K: 3}
	if len(lim.Schema()) != 4 {
		t.Fatal("limit schema")
	}
	so := &SetOp{Kind: Union, Left: scan, Right: scan}
	if len(so.Schema()) != 4 {
		t.Fatal("setop schema")
	}
}

func TestFormat(t *testing.T) {
	tbl := testTable(t)
	scan := NewScan(tbl, storage.LatestSCN, nil)
	n := &Limit{Input: &Filter{Input: scan, Pred: &Cmp{Op: EQ,
		L: &ColRef{Idx: 0, Name: "id", T: coltypes.Int()}, R: &Const{T: coltypes.Int(), Val: 5}}}, K: 1}
	out := Format(n)
	for _, want := range []string{"Limit(1)", "Filter(id = 5)", "Scan(t)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	// Indentation reflects depth.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[2], "    ") {
		t.Fatalf("format structure:\n%s", out)
	}
}

func TestPredStrings(t *testing.T) {
	c := &ColRef{Idx: 0, Name: "x", T: coltypes.Int()}
	v := &Const{T: coltypes.Int(), Val: 5}
	cases := map[string]Pred{
		"x = 5":             &Cmp{Op: EQ, L: c, R: v},
		"x BETWEEN 5 AND 5": &BetweenPred{E: c, Lo: v, Hi: v},
		"NOT (x = 5)":       &NotPred{P: &Cmp{Op: EQ, L: c, R: v}},
		"(x = 5 AND x = 5)": &AndPred{Preds: []Pred{&Cmp{Op: EQ, L: c, R: v}, &Cmp{Op: EQ, L: c, R: v}}},
		"(x = 5 OR x = 5)":  &OrPred{Preds: []Pred{&Cmp{Op: EQ, L: c, R: v}, &Cmp{Op: EQ, L: c, R: v}}},
	}
	for want, p := range cases {
		if p.String() != want {
			t.Errorf("String = %q, want %q", p.String(), want)
		}
	}
	like := &LikePred{E: c, Kind: LikePrefix, Pattern: "ab"}
	if !strings.Contains(like.String(), "LIKE") {
		t.Fatal("like string")
	}
	in := &InPred{E: c, List: []*Const{v}}
	if !strings.Contains(in.String(), "IN") {
		t.Fatal("in string")
	}
	// Const rendering by type.
	if (&Const{T: coltypes.Decimal(2), Val: 150}).String() != "1.50" {
		t.Fatal("decimal const string")
	}
	if (&Const{T: coltypes.String(), Str: "hi"}).String() != "'hi'" {
		t.Fatal("string const string")
	}
}
