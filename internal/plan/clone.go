package plan

import (
	"fmt"

	"rapid/internal/storage"
)

// CloneAtSCN returns a copy of a bound plan tree with every Scan re-stamped
// to read at the given SCN. Node structs are freshly allocated but
// predicates, expressions and key slices are shared with the original —
// they are immutable after binding (the tray's per-node rewrite relies on
// the same invariant, see cluster.rewriteForNode). The plan cache uses this
// to serve a cached bound skeleton to a new query without re-parsing or
// re-binding; the compiler still runs, so costing and zone pruning see the
// fresh snapshot.
func CloneAtSCN(n Node, scn uint64) (Node, error) {
	switch v := n.(type) {
	case *Scan:
		return NewScan(v.Table, scn, v.Cols), nil
	case *Filter:
		in, err := CloneAtSCN(v.Input, scn)
		if err != nil {
			return nil, err
		}
		return &Filter{Input: in, Pred: v.Pred}, nil
	case *Project:
		in, err := CloneAtSCN(v.Input, scn)
		if err != nil {
			return nil, err
		}
		return &Project{Input: in, Exprs: v.Exprs, Names: v.Names}, nil
	case *Join:
		l, err := CloneAtSCN(v.Left, scn)
		if err != nil {
			return nil, err
		}
		r, err := CloneAtSCN(v.Right, scn)
		if err != nil {
			return nil, err
		}
		return &Join{Type: v.Type, Left: l, Right: r, LeftKeys: v.LeftKeys, RightKeys: v.RightKeys}, nil
	case *GroupBy:
		in, err := CloneAtSCN(v.Input, scn)
		if err != nil {
			return nil, err
		}
		return &GroupBy{Input: in, Keys: v.Keys, Aggs: v.Aggs}, nil
	case *Sort:
		in, err := CloneAtSCN(v.Input, scn)
		if err != nil {
			return nil, err
		}
		return &Sort{Input: in, Keys: v.Keys}, nil
	case *Limit:
		in, err := CloneAtSCN(v.Input, scn)
		if err != nil {
			return nil, err
		}
		return &Limit{Input: in, K: v.K}, nil
	case *SetOp:
		l, err := CloneAtSCN(v.Left, scn)
		if err != nil {
			return nil, err
		}
		r, err := CloneAtSCN(v.Right, scn)
		if err != nil {
			return nil, err
		}
		return &SetOp{Kind: v.Kind, Left: l, Right: r}, nil
	case *Window:
		in, err := CloneAtSCN(v.Input, scn)
		if err != nil {
			return nil, err
		}
		return &Window{Input: in, Func: v.Func, PartitionBy: v.PartitionBy,
			OrderBy: v.OrderBy, ValueCol: v.ValueCol, Name: v.Name}, nil
	default:
		return nil, fmt.Errorf("plan: CloneAtSCN: unknown node %T", n)
	}
}

// ScanTables lists every base table a plan scans, deduplicated in
// first-scan order — the version-vector footprint of a cached plan or
// result entry.
func ScanTables(n Node) []*storage.Table {
	var out []*storage.Table
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			for _, t := range out {
				if t == s.Table {
					return
				}
			}
			out = append(out, s.Table)
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}
