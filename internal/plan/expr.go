// Package plan defines the typed logical query plan shared by the two
// execution engines of this repository: RAPID's QComp (internal/qcomp)
// compiles it to the vectorized columnar engine, and System X's row engine
// (internal/hostdb) interprets it Volcano-style. The host database's logical
// optimization (semantic analysis, normalization, constant folding) has
// already happened by the time a plan reaches either engine (paper §3.1).
package plan

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
)

// Field describes one column of a node's output schema.
type Field struct {
	Name string
	Type coltypes.Type
	Dict *encoding.Dict // string columns carry their dictionary
}

// Expr is a typed scalar expression. All type/scale resolution happens at
// plan construction; engines execute without further analysis.
type Expr interface {
	Type() coltypes.Type
	String() string
}

// ColRef references column Idx of the node's input schema.
type ColRef struct {
	Idx  int
	Name string
	T    coltypes.Type
	Dict *encoding.Dict
}

func (e *ColRef) Type() coltypes.Type { return e.T }
func (e *ColRef) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("$%d", e.Idx)
}

// Const is a literal, already encoded to the physical integer domain
// (decimal at its scale, date as day number, string as a *value* — strings
// are bound to dictionary codes per table column at compile time).
type Const struct {
	T   coltypes.Type
	Val int64  // numeric/date/bool literals
	Str string // string literal (bound later against a dict)
}

func (e *Const) Type() coltypes.Type { return e.T }
func (e *Const) String() string {
	if e.T.Kind == coltypes.KindString {
		return fmt.Sprintf("'%s'", e.Str)
	}
	if e.T.Kind == coltypes.KindDecimal {
		return encoding.Decimal{Unscaled: e.Val, Scale: e.T.Scale}.String()
	}
	return fmt.Sprintf("%d", e.Val)
}

// ArithOp is an arithmetic operator.
type ArithOp int

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[op]
}

// DivScale is the result scale of decimal division.
const DivScale int8 = 4

// Arith is a binary arithmetic expression. T carries the resolved result
// scale: Add/Sub use max(scale), Mul sums scales, Div produces DivScale.
type Arith struct {
	Op   ArithOp
	L, R Expr
	T    coltypes.Type
}

func (e *Arith) Type() coltypes.Type { return e.T }
func (e *Arith) String() string      { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// NewArith builds an arithmetic node, resolving the result type.
func NewArith(op ArithOp, l, r Expr) (*Arith, error) {
	lt, rt := l.Type(), r.Type()
	if !numericOrDate(lt) || !numericOrDate(rt) {
		return nil, fmt.Errorf("plan: arithmetic over non-numeric types %v, %v", lt, rt)
	}
	t := coltypes.Int()
	ls, rs := scaleOf(lt), scaleOf(rt)
	switch op {
	case Add, Sub:
		s := ls
		if rs > s {
			s = rs
		}
		if s > 0 {
			t = coltypes.Decimal(s)
		}
		// Date +/- integer stays a date.
		if lt.Kind == coltypes.KindDate && rt.Kind == coltypes.KindInt {
			t = coltypes.Date()
		}
	case Mul:
		if s := ls + rs; s > 0 {
			t = coltypes.Decimal(s)
		}
	case Div:
		t = coltypes.Decimal(DivScale)
	}
	return &Arith{Op: op, L: l, R: r, T: t}, nil
}

func numericOrDate(t coltypes.Type) bool {
	return t.Numeric() || t.Kind == coltypes.KindDate || t.Kind == coltypes.KindBool
}

func scaleOf(t coltypes.Type) int8 {
	if t.Kind == coltypes.KindDecimal {
		return t.Scale
	}
	return 0
}

// CmpOp is a comparison operator.
type CmpOp int

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Pred is a boolean predicate.
type Pred interface {
	String() string
}

// Cmp compares two expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (p *Cmp) String() string { return fmt.Sprintf("%s %s %s", p.L, p.Op, p.R) }

// BetweenPred is lo <= e <= hi.
type BetweenPred struct {
	E      Expr
	Lo, Hi Expr
}

func (p *BetweenPred) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", p.E, p.Lo, p.Hi)
}

// InPred is e IN (list of constants).
type InPred struct {
	E    Expr
	List []*Const
}

func (p *InPred) String() string { return fmt.Sprintf("%s IN (...%d)", p.E, len(p.List)) }

// LikePred is a string pattern match on a dictionary column. Patterns are
// classified at parse time.
type LikeKind int

const (
	LikePrefix   LikeKind = iota // 'abc%'
	LikeSuffix                   // '%abc'
	LikeContains                 // '%abc%'
	LikeExact                    // no wildcard
)

type LikePred struct {
	E       Expr
	Kind    LikeKind
	Pattern string // wildcard-free needle
	Negate  bool
}

func (p *LikePred) String() string {
	op := "LIKE"
	if p.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'(kind=%d)", p.E, op, p.Pattern, p.Kind)
}

// AndPred / OrPred / NotPred combine predicates.
type AndPred struct{ Preds []Pred }
type OrPred struct{ Preds []Pred }
type NotPred struct{ P Pred }

func (p *AndPred) String() string { return joinPredStr(p.Preds, " AND ") }
func (p *OrPred) String() string  { return joinPredStr(p.Preds, " OR ") }
func (p *NotPred) String() string { return fmt.Sprintf("NOT (%s)", p.P) }

func joinPredStr(ps []Pred, sep string) string {
	s := "("
	for i, p := range ps {
		if i > 0 {
			s += sep
		}
		s += p.String()
	}
	return s + ")"
}

// CasePred wraps a predicate used as the condition of a CASE expression.
type CaseExpr struct {
	Cond Pred
	Then Expr
	Else Expr
	T    coltypes.Type
}

func (e *CaseExpr) Type() coltypes.Type { return e.T }
func (e *CaseExpr) String() string {
	return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END", e.Cond, e.Then, e.Else)
}

// NewCase builds a CASE with scale unification of the arms.
func NewCase(cond Pred, then, els Expr) (*CaseExpr, error) {
	tt, et := then.Type(), els.Type()
	ts, es := scaleOf(tt), scaleOf(et)
	s := ts
	if es > s {
		s = es
	}
	t := coltypes.Int()
	if s > 0 {
		t = coltypes.Decimal(s)
	}
	return &CaseExpr{Cond: cond, Then: then, Else: els, T: t}, nil
}
