package plan

import (
	"fmt"
	"strings"

	"rapid/internal/coltypes"
	"rapid/internal/storage"
)

// Node is a logical plan operator. Schema() is the node's output schema.
type Node interface {
	Schema() []Field
	Children() []Node
	String() string
}

// Scan reads a base table snapshot (columns in Cols order).
type Scan struct {
	Table  *storage.Table
	SCN    uint64
	Cols   []int // table column indices, in output order
	fields []Field
}

// NewScan builds a scan of the given table columns (nil = all).
func NewScan(t *storage.Table, scn uint64, cols []int) *Scan {
	if cols == nil {
		cols = make([]int, t.Schema().NumCols())
		for i := range cols {
			cols[i] = i
		}
	}
	fields := make([]Field, len(cols))
	for i, c := range cols {
		def := t.Schema().Col(c)
		fields[i] = Field{Name: def.Name, Type: def.Type, Dict: t.Meta(c).Dict}
	}
	return &Scan{Table: t, SCN: scn, Cols: cols, fields: fields}
}

func (n *Scan) Schema() []Field  { return n.fields }
func (n *Scan) Children() []Node { return nil }
func (n *Scan) String() string   { return fmt.Sprintf("Scan(%s)", n.Table.Name()) }

// Filter applies a predicate.
type Filter struct {
	Input Node
	Pred  Pred
}

func (n *Filter) Schema() []Field  { return n.Input.Schema() }
func (n *Filter) Children() []Node { return []Node{n.Input} }
func (n *Filter) String() string   { return fmt.Sprintf("Filter(%s)", n.Pred) }

// Project computes output expressions.
type Project struct {
	Input Node
	Exprs []Expr
	Names []string
}

func (n *Project) Schema() []Field {
	fields := make([]Field, len(n.Exprs))
	for i, e := range n.Exprs {
		name := ""
		if i < len(n.Names) {
			name = n.Names[i]
		}
		if name == "" {
			name = e.String()
		}
		fields[i] = Field{Name: name, Type: e.Type()}
		if cr, ok := e.(*ColRef); ok {
			fields[i].Dict = cr.Dict
		}
	}
	return fields
}
func (n *Project) Children() []Node { return []Node{n.Input} }
func (n *Project) String() string   { return fmt.Sprintf("Project(%d exprs)", len(n.Exprs)) }

// JoinType mirrors ops.JoinType at the logical level.
type JoinType int

const (
	InnerJoin JoinType = iota
	SemiJoin
	AntiJoin
	LeftOuterJoin
)

// Join is an equi-join. Left is the probe/outer side, Right the build side
// (the host optimizer has fixed the order; QComp may still swap for size).
// Keys pair Left and Right columns.
type Join struct {
	Type        JoinType
	Left, Right Node
	LeftKeys    []int
	RightKeys   []int
}

func (n *Join) Schema() []Field {
	switch n.Type {
	case SemiJoin, AntiJoin:
		return n.Left.Schema()
	default:
		return append(append([]Field(nil), n.Left.Schema()...), n.Right.Schema()...)
	}
}
func (n *Join) Children() []Node { return []Node{n.Left, n.Right} }
func (n *Join) String() string {
	return fmt.Sprintf("Join(type=%d, keys=%v=%v)", n.Type, n.LeftKeys, n.RightKeys)
}

// AggKind mirrors ops.AggKind plus AVG (lowered by the compilers).
type AggKind int

const (
	Sum AggKind = iota
	Min
	Max
	Count
	CountStar
	Avg
)

func (k AggKind) String() string {
	return [...]string{"SUM", "MIN", "MAX", "COUNT", "COUNT(*)", "AVG"}[k]
}

// AggExpr is one aggregate output.
type AggExpr struct {
	Kind AggKind
	Arg  Expr // nil for COUNT(*)
	Name string
}

// Type returns the aggregate's result type.
func (a *AggExpr) Type() coltypes.Type {
	switch a.Kind {
	case Count, CountStar:
		return coltypes.Int()
	case Avg:
		s := int8(0)
		if a.Arg != nil {
			s = scaleOf(a.Arg.Type())
		}
		return coltypes.Decimal(s + 2)
	default:
		if a.Arg == nil {
			return coltypes.Int()
		}
		return a.Arg.Type()
	}
}

// GroupBy aggregates with optional grouping keys.
type GroupBy struct {
	Input Node
	Keys  []Expr // group-by expressions (ColRefs after normalization)
	Aggs  []AggExpr
}

func (n *GroupBy) Schema() []Field {
	fields := make([]Field, 0, len(n.Keys)+len(n.Aggs))
	in := n.Input.Schema()
	for _, k := range n.Keys {
		f := Field{Name: k.String(), Type: k.Type()}
		if cr, ok := k.(*ColRef); ok {
			if cr.Idx < len(in) {
				f = in[cr.Idx]
			}
			if cr.Name != "" {
				f.Name = cr.Name
			}
		}
		fields = append(fields, f)
	}
	for _, a := range n.Aggs {
		fields = append(fields, Field{Name: a.Name, Type: a.Type()})
	}
	return fields
}
func (n *GroupBy) Children() []Node { return []Node{n.Input} }
func (n *GroupBy) String() string {
	return fmt.Sprintf("GroupBy(keys=%d, aggs=%d)", len(n.Keys), len(n.Aggs))
}

// SortItem is one ORDER BY term over the input schema.
type SortItem struct {
	Col  int
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Input Node
	Keys  []SortItem
}

func (n *Sort) Schema() []Field  { return n.Input.Schema() }
func (n *Sort) Children() []Node { return []Node{n.Input} }
func (n *Sort) String() string   { return fmt.Sprintf("Sort(%v)", n.Keys) }

// Limit keeps the first K rows (combined with Sort it becomes Top-K).
type Limit struct {
	Input Node
	K     int
}

func (n *Limit) Schema() []Field  { return n.Input.Schema() }
func (n *Limit) Children() []Node { return []Node{n.Input} }
func (n *Limit) String() string   { return fmt.Sprintf("Limit(%d)", n.K) }

// SetOpKind mirrors ops.SetOpKind.
type SetOpKind int

const (
	Union SetOpKind = iota
	UnionAll
	Intersect
	Minus
)

// SetOp combines two inputs.
type SetOp struct {
	Kind        SetOpKind
	Left, Right Node
}

func (n *SetOp) Schema() []Field  { return n.Left.Schema() }
func (n *SetOp) Children() []Node { return []Node{n.Left, n.Right} }
func (n *SetOp) String() string   { return fmt.Sprintf("SetOp(%d)", n.Kind) }

// WindowFunc mirrors ops.WindowFunc.
type WindowFunc int

const (
	RowNumber WindowFunc = iota
	Rank
	DenseRank
	CumSum
	WinTotalSum
)

// Window appends a window-function column.
type Window struct {
	Input       Node
	Func        WindowFunc
	PartitionBy []int
	OrderBy     []SortItem
	ValueCol    int
	Name        string
}

func (n *Window) Schema() []Field {
	name := n.Name
	if name == "" {
		name = "window"
	}
	return append(append([]Field(nil), n.Input.Schema()...), Field{Name: name, Type: coltypes.Int()})
}
func (n *Window) Children() []Node { return []Node{n.Input} }
func (n *Window) String() string   { return fmt.Sprintf("Window(f=%d)", n.Func) }

// Format renders a plan tree for debugging and EXPLAIN output.
func Format(n Node) string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}
