// Package tpch provides a TPC-H-style workload: a deterministic dbgen-like
// generator for all eight tables at configurable scale, and the
// "representative half" of the TPC-H queries the paper evaluates (§7.4),
// expressed in the supported SQL subset.
//
// The generator follows the TPC-H schema and value distributions closely
// enough that query selectivities and join fan-outs have realistic shapes;
// it is not a validated dbgen replacement (the paper's absolute numbers are
// not reproducible on simulated hardware anyway — see DESIGN.md).
package tpch

import (
	"fmt"
	"math/rand"
	"sort"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
	"rapid/internal/hostdb"
	"rapid/internal/storage"
)

// Config tunes the generator.
type Config struct {
	// ScaleFactor scales table cardinalities (1.0 = TPC-H SF1: 6M
	// lineitems). Typical test values: 0.001-0.1.
	ScaleFactor float64
	// Seed makes generation deterministic per seed.
	Seed int64
	// SkewZipf, when > 0, draws lineitem part/supplier keys from a zipfian
	// distribution to create join skew (s parameter, e.g. 1.2).
	SkewZipf float64
	// ClusterByShipDate sorts lineitem by l_shipdate before load, the layout
	// a date-partitioned warehouse table would have. Zone-map pruning
	// experiments depend on it: shipdate-range predicates (Q6, Q14) only
	// skip tiles when each tile covers a narrow date band.
	ClusterByShipDate bool
}

// Cardinalities at the configured scale.
func (c Config) counts() (supplier, customer, part, orders int) {
	sf := c.ScaleFactor
	if sf <= 0 {
		sf = 0.01
	}
	supplier = maxI(int(10_000*sf), 10)
	customer = maxI(int(150_000*sf), 30)
	part = maxI(int(200_000*sf), 40)
	orders = maxI(int(1_500_000*sf), 150)
	return
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []struct {
		name   string
		region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG"}
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nameSyl  = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse"}
)

func dec(unscaled int64, scale int8) storage.Value {
	return storage.DecValue(encoding.Decimal{Unscaled: unscaled, Scale: scale})
}

// Schemas returns the eight TPC-H table schemas.
func Schemas() map[string]*storage.Schema {
	return map[string]*storage.Schema{
		"region": storage.MustSchema(
			storage.ColumnDef{Name: "r_regionkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "r_name", Type: coltypes.String()},
		),
		"nation": storage.MustSchema(
			storage.ColumnDef{Name: "n_nationkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "n_name", Type: coltypes.String()},
			storage.ColumnDef{Name: "n_regionkey", Type: coltypes.Int()},
		),
		"supplier": storage.MustSchema(
			storage.ColumnDef{Name: "s_suppkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "s_name", Type: coltypes.String()},
			storage.ColumnDef{Name: "s_nationkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "s_acctbal", Type: coltypes.Decimal(2)},
		),
		"customer": storage.MustSchema(
			storage.ColumnDef{Name: "c_custkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "c_name", Type: coltypes.String()},
			storage.ColumnDef{Name: "c_nationkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "c_acctbal", Type: coltypes.Decimal(2)},
			storage.ColumnDef{Name: "c_mktsegment", Type: coltypes.String()},
		),
		"part": storage.MustSchema(
			storage.ColumnDef{Name: "p_partkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "p_name", Type: coltypes.String()},
			storage.ColumnDef{Name: "p_brand", Type: coltypes.String()},
			storage.ColumnDef{Name: "p_type", Type: coltypes.String()},
			storage.ColumnDef{Name: "p_size", Type: coltypes.Int()},
			storage.ColumnDef{Name: "p_container", Type: coltypes.String()},
			storage.ColumnDef{Name: "p_retailprice", Type: coltypes.Decimal(2)},
		),
		"partsupp": storage.MustSchema(
			storage.ColumnDef{Name: "ps_partkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "ps_suppkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "ps_availqty", Type: coltypes.Int()},
			storage.ColumnDef{Name: "ps_supplycost", Type: coltypes.Decimal(2)},
		),
		"orders": storage.MustSchema(
			storage.ColumnDef{Name: "o_orderkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "o_custkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "o_orderstatus", Type: coltypes.String()},
			storage.ColumnDef{Name: "o_totalprice", Type: coltypes.Decimal(2)},
			storage.ColumnDef{Name: "o_orderdate", Type: coltypes.Date()},
			storage.ColumnDef{Name: "o_orderpriority", Type: coltypes.String()},
			storage.ColumnDef{Name: "o_shippriority", Type: coltypes.Int()},
		),
		"lineitem": storage.MustSchema(
			storage.ColumnDef{Name: "l_orderkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "l_partkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "l_suppkey", Type: coltypes.Int()},
			storage.ColumnDef{Name: "l_linenumber", Type: coltypes.Int()},
			storage.ColumnDef{Name: "l_quantity", Type: coltypes.Int()},
			storage.ColumnDef{Name: "l_extendedprice", Type: coltypes.Decimal(2)},
			storage.ColumnDef{Name: "l_discount", Type: coltypes.Decimal(2)},
			storage.ColumnDef{Name: "l_tax", Type: coltypes.Decimal(2)},
			storage.ColumnDef{Name: "l_returnflag", Type: coltypes.String()},
			storage.ColumnDef{Name: "l_linestatus", Type: coltypes.String()},
			storage.ColumnDef{Name: "l_shipdate", Type: coltypes.Date()},
			storage.ColumnDef{Name: "l_commitdate", Type: coltypes.Date()},
			storage.ColumnDef{Name: "l_receiptdate", Type: coltypes.Date()},
			storage.ColumnDef{Name: "l_shipinstruct", Type: coltypes.String()},
			storage.ColumnDef{Name: "l_shipmode", Type: coltypes.String()},
		),
	}
}

// Data is the fully generated dataset, as logical rows per table.
type Data struct {
	Tables map[string][][]storage.Value
	Config Config
}

// Generate produces the dataset.
func Generate(cfg Config) *Data {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 0.01
	}
	nSupp, nCust, nPart, nOrders := cfg.counts()
	d := &Data{Tables: map[string][][]storage.Value{}, Config: cfg}

	// region, nation
	for i, r := range regions {
		d.Tables["region"] = append(d.Tables["region"], []storage.Value{
			storage.IntValue(int64(i)), storage.StrValue(r),
		})
	}
	for i, n := range nations {
		d.Tables["nation"] = append(d.Tables["nation"], []storage.Value{
			storage.IntValue(int64(i)), storage.StrValue(n.name), storage.IntValue(int64(n.region)),
		})
	}

	// supplier
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5001))
	for i := 0; i < nSupp; i++ {
		d.Tables["supplier"] = append(d.Tables["supplier"], []storage.Value{
			storage.IntValue(int64(i + 1)),
			storage.StrValue(fmt.Sprintf("Supplier#%09d", i+1)),
			storage.IntValue(int64(rng.Intn(len(nations)))),
			dec(int64(rng.Intn(2_000_000)-100_000), 2),
		})
	}

	// customer
	rng = rand.New(rand.NewSource(cfg.Seed ^ 0xC001))
	for i := 0; i < nCust; i++ {
		d.Tables["customer"] = append(d.Tables["customer"], []storage.Value{
			storage.IntValue(int64(i + 1)),
			storage.StrValue(fmt.Sprintf("Customer#%09d", i+1)),
			storage.IntValue(int64(rng.Intn(len(nations)))),
			dec(int64(rng.Intn(1_100_000)-100_000), 2),
			storage.StrValue(segments[rng.Intn(len(segments))]),
		})
	}

	// part
	rng = rand.New(rand.NewSource(cfg.Seed ^ 0xBA01))
	for i := 0; i < nPart; i++ {
		retail := int64(90000 + (i+1)%200*100 + rng.Intn(1000)) // ~900-1100
		d.Tables["part"] = append(d.Tables["part"], []storage.Value{
			storage.IntValue(int64(i + 1)),
			storage.StrValue(nameSyl[rng.Intn(len(nameSyl))] + " " + nameSyl[rng.Intn(len(nameSyl))]),
			storage.StrValue(fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)),
			storage.StrValue(typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + " " + typeSyl3[rng.Intn(len(typeSyl3))]),
			storage.IntValue(int64(rng.Intn(50) + 1)),
			storage.StrValue(containers[rng.Intn(len(containers))]),
			dec(retail, 2),
		})
	}

	// partsupp: 4 suppliers per part.
	rng = rand.New(rand.NewSource(cfg.Seed ^ 0xB5B5))
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			d.Tables["partsupp"] = append(d.Tables["partsupp"], []storage.Value{
				storage.IntValue(int64(i + 1)),
				storage.IntValue(int64((i+j*(nSupp/4+1))%nSupp + 1)),
				storage.IntValue(int64(rng.Intn(9999) + 1)),
				dec(int64(rng.Intn(100000)+100), 2),
			})
		}
	}

	// orders + lineitem
	rng = rand.New(rand.NewSource(cfg.Seed ^ 0x0DD5))
	var zipf *rand.Zipf
	if cfg.SkewZipf > 0 {
		zipf = rand.NewZipf(rng, cfg.SkewZipf, 1.0, uint64(nPart-1))
	}
	baseDate := storage.DateValue(1992, 1, 1).Days()
	dateRange := storage.DateValue(1998, 8, 2).Days() - baseDate
	statuses := []string{"O", "F", "P"}
	lineNo := 0
	for i := 0; i < nOrders; i++ {
		okey := int64(i + 1)
		odate := baseDate + int64(rng.Intn(int(dateRange)))
		nLines := rng.Intn(7) + 1
		var total int64
		rows := make([][]storage.Value, 0, nLines)
		for ln := 0; ln < nLines; ln++ {
			var partkey int64
			if zipf != nil {
				partkey = int64(zipf.Uint64()) + 1
			} else {
				partkey = int64(rng.Intn(nPart) + 1)
			}
			suppkey := int64((partkey+int64(ln)*(int64(nSupp)/4+1))%int64(nSupp) + 1)
			qty := int64(rng.Intn(50) + 1)
			price := qty * int64(90000+partkey%200*100) / 100 // scale 2
			disc := int64(rng.Intn(11))                       // 0.00-0.10
			tax := int64(rng.Intn(9))                         // 0.00-0.08
			ship := odate + int64(rng.Intn(121)+1)
			commit := odate + int64(rng.Intn(91)+30)
			receipt := ship + int64(rng.Intn(30)+1)
			flag := "N"
			status := "O"
			if receipt <= storage.DateValue(1995, 6, 17).Days() {
				if rng.Intn(2) == 0 {
					flag = "R"
				} else {
					flag = "A"
				}
				status = "F"
			}
			total += price
			rows = append(rows, []storage.Value{
				storage.IntValue(okey),
				storage.IntValue(partkey),
				storage.IntValue(suppkey),
				storage.IntValue(int64(ln + 1)),
				storage.IntValue(qty),
				dec(price, 2),
				dec(disc, 2),
				dec(tax, 2),
				storage.StrValue(flag),
				storage.StrValue(status),
				storage.Value{Kind: coltypes.KindDate, Int: ship},
				storage.Value{Kind: coltypes.KindDate, Int: commit},
				storage.Value{Kind: coltypes.KindDate, Int: receipt},
				storage.StrValue(instructs[rng.Intn(len(instructs))]),
				storage.StrValue(shipmodes[rng.Intn(len(shipmodes))]),
			})
			lineNo++
		}
		d.Tables["orders"] = append(d.Tables["orders"], []storage.Value{
			storage.IntValue(okey),
			storage.IntValue(int64(rng.Intn(nCust) + 1)),
			storage.StrValue(statuses[rng.Intn(len(statuses))]),
			dec(total, 2),
			storage.Value{Kind: coltypes.KindDate, Int: odate},
			storage.StrValue(priorities[rng.Intn(len(priorities))]),
			storage.IntValue(0),
		})
		d.Tables["lineitem"] = append(d.Tables["lineitem"], rows...)
	}
	if cfg.ClusterByShipDate {
		li := d.Tables["lineitem"]
		shipCol := Schemas()["lineitem"].ColIndex("l_shipdate")
		sort.SliceStable(li, func(a, b int) bool {
			return li[a][shipCol].Int < li[b][shipCol].Int
		})
	}
	return d
}

// PopulateHostDB creates and fills all tables in a host database and loads
// them into RAPID.
func PopulateHostDB(db *hostdb.Database, cfg Config) error {
	data := Generate(cfg)
	schemas := Schemas()
	for _, name := range TableNames() {
		if _, err := db.CreateTable(name, schemas[name]); err != nil {
			return err
		}
		if _, err := db.Insert(name, data.Tables[name]); err != nil {
			return err
		}
		// 1024-row chunks keep all 32 dpCores busy even at small scale
		// factors (a chunk is the parallel work grain of the scan).
		if _, err := db.Load(name, hostdb.LoadOptions{ScanThreads: 4, ChunkRows: 1024}); err != nil {
			return err
		}
	}
	return nil
}

// TableNames lists the tables in dependency order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}
