package tpch

import (
	"strconv"
	"strings"
	"testing"

	"rapid/internal/hostdb"
	"rapid/internal/qef"
)

func profileDB(t *testing.T, sf float64) *hostdb.Database {
	t.Helper()
	db := hostdb.New()
	if err := PopulateHostDB(db, Config{ScaleFactor: sf, Seed: 2018}); err != nil {
		t.Fatal(err)
	}
	return db
}

func findQuery(t *testing.T, name string) Query {
	t.Helper()
	for _, q := range Queries() {
		if q.Name == name {
			return q
		}
	}
	t.Fatalf("no query %s", name)
	return Query{}
}

// TestExplainAnalyzeQ1DPU is the PR's acceptance check: EXPLAIN ANALYZE on
// TPC-H Q1 in ModeDPU prints a per-operator table whose cycle and DMS-byte
// columns sum to the whole-query totals, and the profile passes the full
// per-core / per-direction invariant reconciliation.
func TestExplainAnalyzeQ1DPU(t *testing.T) {
	db := profileDB(t, 0.01)
	q1 := findQuery(t, "Q1")
	res, err := db.Query("EXPLAIN ANALYZE "+q1.SQL, hostdb.QueryOptions{
		Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU, FailOnInadmissible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded || res.Profile == nil {
		t.Fatalf("expected offloaded profiled execution, got offloaded=%v profile=%v", res.Offloaded, res.Profile)
	}
	prof := res.Profile
	if err := prof.CheckInvariants(); err != nil {
		t.Fatalf("profile invariants: %v", err)
	}
	if prof.TotalCycles() == 0 {
		t.Fatal("Q1 on ModeDPU charged zero cycles")
	}
	if prof.Totals().DMSReadBytes == 0 {
		t.Fatal("Q1 on ModeDPU moved zero DMS bytes")
	}

	out := prof.Format()
	for _, want := range []string{"GroupBy", "Scan(lineitem)", "total", "sim "} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}

	// Parse the table and verify the printed operator rows sum to the
	// printed total row, which must equal the profile's engine totals.
	var sumCy, sumRd, sumWr int64
	var totCy, totRd, totWr int64
	sawTotal := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "|") || strings.Contains(line, "-+-") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 4 {
			continue
		}
		name := strings.TrimSpace(cells[0])
		if name == "operator" {
			continue
		}
		cy, err1 := strconv.ParseInt(strings.TrimSpace(cells[1]), 10, 64)
		rd, err2 := strconv.ParseInt(strings.TrimSpace(cells[2]), 10, 64)
		wr, err3 := strconv.ParseInt(strings.TrimSpace(cells[3]), 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %q", line)
		}
		if name == "total" {
			totCy, totRd, totWr = cy, rd, wr
			sawTotal = true
		} else {
			sumCy += cy
			sumRd += rd
			sumWr += wr
		}
	}
	if !sawTotal {
		t.Fatalf("no total row in:\n%s", out)
	}
	if sumCy != totCy || sumRd != totRd || sumWr != totWr {
		t.Errorf("operator rows sum to cy=%d rd=%d wr=%d, total row says cy=%d rd=%d wr=%d",
			sumCy, sumRd, sumWr, totCy, totRd, totWr)
	}
	if totCy != prof.TotalCycles() || totRd != prof.Totals().DMSReadBytes || totWr != prof.Totals().DMSWriteBytes {
		t.Errorf("total row cy=%d rd=%d wr=%d does not match profile totals cy=%d rd=%d wr=%d",
			totCy, totRd, totWr, prof.TotalCycles(), prof.Totals().DMSReadBytes, prof.Totals().DMSWriteBytes)
	}
}

// TestProfileInvariantsAllQueriesBothModes runs every TPC-H query with
// profiling in both engine modes and checks the full invariant set.
func TestProfileInvariantsAllQueriesBothModes(t *testing.T) {
	db := profileDB(t, 0.005)
	for _, mode := range []qef.Mode{qef.ModeDPU, qef.ModeX86} {
		for _, q := range Queries() {
			res, err := db.Query(q.SQL, hostdb.QueryOptions{
				Mode: hostdb.ForceOffload, RapidMode: mode,
				FailOnInadmissible: true, Profile: true,
			})
			if err != nil {
				t.Fatalf("%s (%v): %v", q.Name, mode, err)
			}
			if res.Profile == nil {
				t.Fatalf("%s (%v): no profile", q.Name, mode)
			}
			if err := res.Profile.CheckInvariants(); err != nil {
				t.Errorf("%s (%v): %v\n%s", q.Name, mode, err, res.Profile.Format())
			}
		}
	}
}
