package tpch

// The "representative half" of TPC-H the paper runs (§7.4), in the
// supported SQL subset. Where official TPC-H syntax exceeds the subset
// (EXISTS, scalar subqueries), the query is rewritten into an equivalent
// form (IN-subqueries bind to semi-joins); substitutions are noted inline
// and in EXPERIMENTS.md.

// Query is one benchmark query.
type Query struct {
	Name string
	SQL  string
	// Note records any deviation from official TPC-H text.
	Note string
}

// Queries returns the benchmark set, keyed stable by name.
func Queries() []Query {
	return []Query{
		{
			Name: "Q1",
			SQL: `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`,
		},
		{
			Name: "Q3",
			SQL: `
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10`,
		},
		{
			Name: "Q4",
			SQL: `
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
  AND o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority`,
			Note: "EXISTS rewritten as IN (semi-join), equivalent per TPC-H semantics",
		},
		{
			Name: "Q5",
			SQL: `
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC`,
		},
		{
			Name: "Q6",
			SQL: `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`,
		},
		{
			Name: "Q10",
			SQL: `
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, n_name
ORDER BY revenue DESC
LIMIT 20`,
		},
		{
			Name: "Q12",
			SQL: `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' THEN 1
                ELSE CASE WHEN o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' THEN 0
                ELSE CASE WHEN o_orderpriority = '2-HIGH' THEN 0 ELSE 1 END END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode`,
			Note: "nested CASE replaces the OR inside CASE of the official text",
		},
		{
			Name: "Q14",
			SQL: `
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH`,
		},
		{
			Name: "Q18",
			SQL: `
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) AS total_qty
FROM customer, orders, lineitem
WHERE o_orderkey IN (
        SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING SUM(l_quantity) > 212)
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100`,
			Note: "quantity threshold lowered from 300 to 212 to keep a non-empty result at small scale factors (orders average 4 lineitems here)",
		},
		{
			Name: "Q19",
			SQL: `
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND ((p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
    OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
    OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))
  AND l_shipmode IN ('AIR', 'REG AIR')
  AND l_shipinstruct = 'DELIVER IN PERSON'`,
			Note: "container predicate dropped (same shape, broader match at small scale)",
		},
		{
			Name: "Q21lite",
			SQL: `
SELECT s_name, COUNT(*) AS numwait
FROM supplier, lineitem, orders, nation
WHERE s_suppkey = l_suppkey
  AND o_orderkey = l_orderkey
  AND o_orderstatus = 'F'
  AND l_receiptdate > l_commitdate
  AND s_nationkey = n_nationkey
  AND n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100`,
			Note: "simplified Q21: the two correlated EXISTS/NOT EXISTS subqueries are dropped (unsupported); keeps the join/filter/group shape",
		},
	}
}

// QueryByName returns a query by name.
func QueryByName(name string) (Query, bool) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}
