package tpch

import (
	"strings"
	"sync"
	"testing"

	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

var (
	sharedOnce sync.Once
	sharedDB   *hostdb.Database
)

// testDB returns a shared small TPC-H database (building it once keeps the
// suite fast).
func testDB(t testing.TB) *hostdb.Database {
	t.Helper()
	sharedOnce.Do(func() {
		db := hostdb.New()
		if err := PopulateHostDB(db, Config{ScaleFactor: 0.002, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		sharedDB = db
	})
	return sharedDB
}

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{ScaleFactor: 0.002, Seed: 1})
	if len(d.Tables["region"]) != 5 || len(d.Tables["nation"]) != 25 {
		t.Fatal("region/nation counts")
	}
	orders := len(d.Tables["orders"])
	lines := len(d.Tables["lineitem"])
	if orders < 150 {
		t.Fatalf("orders = %d", orders)
	}
	// 1..7 lineitems per order, average ~4.
	if lines < 2*orders || lines > 7*orders {
		t.Fatalf("lineitem/orders ratio = %d/%d", lines, orders)
	}
	if len(d.Tables["partsupp"]) != 4*len(d.Tables["part"]) {
		t.Fatal("partsupp must be 4 per part")
	}
	// Determinism.
	d2 := Generate(Config{ScaleFactor: 0.002, Seed: 1})
	if len(d2.Tables["lineitem"]) != lines {
		t.Fatal("generation not deterministic")
	}
	r1 := d.Tables["lineitem"][10]
	r2 := d2.Tables["lineitem"][10]
	for c := range r1 {
		if !r1[c].Equal(r2[c]) {
			t.Fatal("row content not deterministic")
		}
	}
}

func TestGenerateSkew(t *testing.T) {
	d := Generate(Config{ScaleFactor: 0.002, Seed: 7, SkewZipf: 1.5})
	counts := map[int64]int{}
	for _, row := range d.Tables["lineitem"] {
		counts[row[1].Int]++ // l_partkey
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	// Zipf 1.5: the hottest part should hold a large share.
	if float64(max)/float64(total) < 0.05 {
		t.Fatalf("skew too mild: max part has %d of %d rows", max, total)
	}
}

func TestLineitemDateInvariants(t *testing.T) {
	d := Generate(Config{ScaleFactor: 0.002, Seed: 3})
	for i, row := range d.Tables["lineitem"] {
		ship, receipt := row[10].Int, row[12].Int
		if receipt <= ship {
			t.Fatalf("row %d: receipt %d <= ship %d", i, receipt, ship)
		}
		if row[4].Int < 1 || row[4].Int > 50 {
			t.Fatalf("row %d: quantity %d", i, row[4].Int)
		}
		if row[6].Int < 0 || row[6].Int > 10 { // discount cents
			t.Fatalf("row %d: discount %d", i, row[6].Int)
		}
	}
}

func TestPopulateAndLoad(t *testing.T) {
	db := testDB(t)
	for _, name := range TableNames() {
		tbl, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Rapid() == nil {
			t.Fatalf("%s not loaded", name)
		}
		if tbl.Rows() != tbl.Rapid().Rows() {
			t.Fatalf("%s: host %d vs rapid %d rows", name, tbl.Rows(), tbl.Rapid().Rows())
		}
	}
}

// Every benchmark query must produce identical results on the host Volcano
// engine and on both RAPID configurations — the three-way oracle check.
func TestAllQueriesAgreeAcrossEngines(t *testing.T) {
	db := testDB(t)
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			host, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
			if err != nil {
				t.Fatalf("host: %v", err)
			}
			rapidX86, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
			if err != nil {
				t.Fatalf("rapid x86: %v", err)
			}
			rapidDPU, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU})
			if err != nil {
				t.Fatalf("rapid dpu: %v", err)
			}
			if !rapidX86.Offloaded || !rapidDPU.Offloaded {
				t.Fatal("offload did not happen")
			}
			ordered := strings.Contains(q.SQL, "ORDER BY")
			if !sameResult(host.Rel, rapidX86.Rel, ordered) {
				t.Fatalf("host vs rapid-x86 disagree: %d vs %d rows\n%s",
					host.Rel.Rows(), rapidX86.Rel.Rows(), dump(host.Rel, rapidX86.Rel))
			}
			if !sameResult(rapidX86.Rel, rapidDPU.Rel, ordered) {
				t.Fatal("rapid-x86 vs rapid-dpu disagree")
			}
			if host.Rel.Rows() == 0 && q.Name != "Q21lite" {
				t.Fatalf("%s returned no rows — workload or query broken", q.Name)
			}
		})
	}
}

type rendered interface {
	Rows() int
	NumCols() int
	Render(int, int) string
}

func rowKey(r rendered, i int) string {
	var sb strings.Builder
	for c := 0; c < r.NumCols(); c++ {
		sb.WriteString(r.Render(i, c))
		sb.WriteByte('|')
	}
	return sb.String()
}

func sameResult(a, b rendered, ordered bool) bool {
	if a.Rows() != b.Rows() || a.NumCols() != b.NumCols() {
		return false
	}
	if ordered {
		// Tie rows may legally reorder; compare as multisets of full rows
		// plus verifying the ordered prefix of the first sort column would
		// be overkill here — multiset equality is the portable check.
	}
	counts := map[string]int{}
	for i := 0; i < a.Rows(); i++ {
		counts[rowKey(a, i)]++
	}
	for i := 0; i < b.Rows(); i++ {
		counts[rowKey(b, i)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func dump(a, b rendered) string {
	var sb strings.Builder
	n := a.Rows()
	if b.Rows() < n {
		n = b.Rows()
	}
	if n > 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		sb.WriteString("A: " + rowKey(a, i) + "\n")
		sb.WriteString("B: " + rowKey(b, i) + "\n")
	}
	return sb.String()
}

func TestQ1Shape(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(mustQ(t, "Q1").SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	// Q1 groups: (A,F), (N,F), (N,O), (R,F) — at most 4, at least 3.
	if res.Rel.Rows() < 3 || res.Rel.Rows() > 4 {
		t.Fatalf("Q1 groups = %d", res.Rel.Rows())
	}
	// avg_qty between 1 and 50 at scale 2 (100..5000).
	avgIdx := 6
	for i := 0; i < res.Rel.Rows(); i++ {
		v := res.Rel.Cols[avgIdx].Data.Get(i)
		if v < 100 || v > 5000 {
			t.Fatalf("avg_qty out of range: %d", v)
		}
	}
}

func TestQ6ReferenceValue(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(mustQ(t, "Q6").SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	// Independent reference evaluation straight over the generated data.
	d := Generate(Config{ScaleFactor: 0.002, Seed: 42})
	lo := storage.MustParseDate("1994-01-01").Days()
	hi := storage.MustParseDate("1995-01-01").Days()
	var want int64
	for _, row := range d.Tables["lineitem"] {
		ship := row[10].Int
		disc := row[6].Dec.Unscaled // scale 2
		qty := row[4].Int
		if ship >= lo && ship < hi && disc >= 5 && disc <= 7 && qty < 24 {
			price := row[5].Dec.Unscaled // scale 2
			want += price * disc         // scale 4
		}
	}
	if got := res.Rel.Cols[0].Data.Get(0); got != want {
		t.Fatalf("Q6 revenue = %d, want %d", got, want)
	}
}

func TestOffloadFractionIsHigh(t *testing.T) {
	// Fig 15's premise: nearly all elapsed time is inside RAPID.
	db := testDB(t)
	res, err := db.Query(mustQ(t, "Q1").SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if res.RapidFraction() < 0.5 {
		t.Fatalf("RAPID fraction = %.2f — offload accounting broken", res.RapidFraction())
	}
}

func mustQ(t testing.TB, name string) Query {
	t.Helper()
	q, ok := QueryByName(name)
	if !ok {
		t.Fatalf("no query %s", name)
	}
	return q
}
