package primitives

import (
	"fmt"

	"rapid/internal/bits"
	"rapid/internal/dpu"
)

// The hash-join kernel of paper §6.3: a compact, pointer-free hash table
// over a DMEM-resident partition. The bucket-chained layout is mimicked with
// two bit-packed integer arrays sized at ceil(log2 N) bits per element —
// `hash-buckets` holds the row id of the last tuple seen per bucket and
// `link` chains earlier tuples with the same hash backwards. The §6.4
// "small skew" resilience is built in: when the DMEM budget is exhausted,
// build rows overflow gracefully to DRAM-side arrays (Fig 7b) and probes
// traverse both regions.

// CompactHT is the DMEM-resident compact hash table.
type CompactHT struct {
	nBuckets int
	mask     uint32
	sentinel uint64

	buckets *bits.PackedArray // nBuckets entries of width bits
	link    *bits.PackedArray // capacity entries of width bits

	keys  []int64 // build keys (DMEM partition column, widened)
	keys2 []int64 // optional second key column
	rows  int     // rows inserted into the DMEM region

	// DRAM overflow region (small-skew resilience, §6.4).
	capacity       int
	ovBuckets      map[uint32]int32 // bucket -> last overflow row (DRAM hash-buckets version)
	ovLink         []int32          // chain among overflow rows; -1 ends
	ovToDmemChain  []int32          // continuation from overflow chain into the DMEM region; -2 = none
	ovKeys, ovKey2 []int64
	ovRows         []int32 // original row ids of overflow rows
}

// BucketsFor returns the hash-table bucket count for n build rows: a power
// of two, reduced 2-4x below the row count per the paper's NDV-driven
// sizing.
func BucketsFor(n int) int {
	if n <= 4 {
		return 4
	}
	b := 1
	for b*4 < n {
		b <<= 1
	}
	return b
}

// HTSizeBytes returns the DMEM footprint of a compact table with the given
// capacity and bucket count — what the join operator declares as its
// op_dmem_size.
func HTSizeBytes(capacity, nBuckets int) int {
	w := bits.WidthFor(capacity + 1)
	return bits.PackedSizeBytes(nBuckets, w) + bits.PackedSizeBytes(capacity, w)
}

// NewCompactHT builds an empty table for up to capacity DMEM rows and the
// given bucket count (power of two).
func NewCompactHT(capacity, nBuckets int) *CompactHT {
	if nBuckets <= 0 || nBuckets&(nBuckets-1) != 0 {
		panic(fmt.Sprintf("primitives: bucket count %d must be a power of two", nBuckets))
	}
	if capacity < 0 {
		panic("primitives: negative capacity")
	}
	w := bits.WidthFor(capacity + 1) // +1 for the end-of-chain sentinel
	ht := &CompactHT{
		nBuckets: nBuckets,
		mask:     uint32(nBuckets - 1),
		sentinel: uint64(capacity),
		buckets:  bits.NewPackedArray(nBuckets, w),
		link:     bits.NewPackedArray(capacity, w),
		capacity: capacity,
	}
	ht.buckets.Fill(ht.sentinel)
	return ht
}

// SizeBytes returns the table's DMEM footprint.
func (ht *CompactHT) SizeBytes() int { return ht.buckets.SizeBytes() + ht.link.SizeBytes() }

// Rows returns the number of build rows inserted (DMEM + overflow).
func (ht *CompactHT) Rows() int { return ht.rows + len(ht.ovRows) }

// OverflowRows returns the number of rows that spilled to DRAM.
func (ht *CompactHT) OverflowRows() int { return len(ht.ovRows) }

// Build inserts all rows of the partition: hv are the (hardware-computed)
// hash values, keys the join-key column, keys2 an optional second key
// column. tileRows is the tile size the rows arrive in (cost model only;
// larger tiles amortize the per-tile overhead, Fig 11). Rows beyond the
// DMEM capacity overflow to DRAM. Vectorized: one tight loop, no branches
// besides the capacity check.
func (ht *CompactHT) Build(core *dpu.Core, hv []uint32, keys, keys2 []int64, tileRows int) {
	n := len(hv)
	if len(keys) != n || (keys2 != nil && len(keys2) != n) {
		panic("primitives: build input length mismatch")
	}
	ht.keys = keys
	ht.keys2 = keys2
	for i := 0; i < n; i++ {
		b := hv[i] & ht.mask
		if ht.rows < ht.capacity {
			row := ht.rows
			ht.link.Set(row, ht.buckets.Get(int(b)))
			ht.buckets.Set(int(b), uint64(row))
			ht.rows++
			continue
		}
		// Graceful overflow to DRAM (§6.4 small skew).
		ov := int32(len(ht.ovRows))
		if ht.ovBuckets == nil {
			ht.ovBuckets = make(map[uint32]int32)
		}
		prev, seen := ht.ovBuckets[b]
		if seen {
			ht.ovLink = append(ht.ovLink, prev)
			ht.ovToDmemChain = append(ht.ovToDmemChain, -2)
		} else {
			// First overflow in this bucket: remember where the DMEM
			// chain begins so probes continue into it.
			ht.ovLink = append(ht.ovLink, -1)
			dm := ht.buckets.Get(int(b))
			if dm == ht.sentinel {
				ht.ovToDmemChain = append(ht.ovToDmemChain, -2)
			} else {
				ht.ovToDmemChain = append(ht.ovToDmemChain, int32(dm))
			}
		}
		ht.ovBuckets[b] = ov
		ht.ovKeys = append(ht.ovKeys, keys[i])
		if keys2 != nil {
			ht.ovKey2 = append(ht.ovKey2, keys2[i])
		}
		ht.ovRows = append(ht.ovRows, int32(i))
	}
	charge(core, JoinBuildCost(n, tileRows))
	if core != nil {
		core.CountInstructions(int64(6 * n))
	}
}

// Match is one join result: build-side row id and probe-side row id.
type Match struct {
	BuildRow uint32
	ProbeRow uint32
}

// Probe scans the probe rows: for each, walk the bucket chain and emit a
// match per equal key. tileRows feeds the cost model. Results append to out.
func (ht *CompactHT) Probe(core *dpu.Core, hv []uint32, keys, keys2 []int64, tileRows int, out []Match) []Match {
	n := len(hv)
	hits := 0
	for i := 0; i < n; i++ {
		b := hv[i] & ht.mask
		k := keys[i]
		// DRAM overflow chain first (newest rows), then the DMEM chain.
		dmStart := int64(-1)
		if ov, ok := ht.ovBuckets[b]; ok {
			for cur := ov; cur >= 0; {
				if ht.ovKeys[cur] == k && (keys2 == nil || ht.ovKey2[cur] == keys2[i]) {
					out = append(out, Match{BuildRow: uint32(ht.ovRows[cur]), ProbeRow: uint32(i)})
					hits++
				}
				next := ht.ovLink[cur]
				if next < 0 {
					if cont := ht.ovToDmemChain[cur]; cont >= 0 {
						dmStart = int64(cont)
					}
					break
				}
				cur = next
			}
		} else {
			if first := ht.buckets.Get(int(b)); first != ht.sentinel {
				dmStart = int64(first)
			}
		}
		for cur := dmStart; cur >= 0; {
			if ht.keys[cur] == k && (keys2 == nil || ht.keys2[cur] == keys2[i]) {
				out = append(out, Match{BuildRow: uint32(cur), ProbeRow: uint32(i)})
				hits++
			}
			next := ht.link.Get(int(cur))
			if next == ht.sentinel {
				break
			}
			cur = int64(next)
		}
	}
	ratio := 0.0
	if n > 0 {
		ratio = float64(hits) / float64(n)
	}
	charge(core, JoinProbeCost(n, tileRows, ratio))
	// Overflow traversals pay DRAM latency instead of single-cycle DMEM.
	if len(ht.ovRows) > 0 {
		charge(core, 20*float64(n)*float64(len(ht.ovRows))/float64(ht.Rows()+1))
	}
	if core != nil {
		core.CountInstructions(int64(8 * n))
	}
	return out
}

// ProbeExists marks probe rows having at least one match (semi/anti joins).
func (ht *CompactHT) ProbeExists(core *dpu.Core, hv []uint32, keys, keys2 []int64, tileRows int, out *bits.Vector) int {
	n := len(hv)
	hits := 0
	for i := 0; i < n; i++ {
		b := hv[i] & ht.mask
		k := keys[i]
		found := false
		dmStart := int64(-1)
		if ov, ok := ht.ovBuckets[b]; ok {
			for cur := ov; cur >= 0 && !found; {
				if ht.ovKeys[cur] == k && (keys2 == nil || ht.ovKey2[cur] == keys2[i]) {
					found = true
					break
				}
				next := ht.ovLink[cur]
				if next < 0 {
					if cont := ht.ovToDmemChain[cur]; cont >= 0 {
						dmStart = int64(cont)
					}
					break
				}
				cur = next
			}
		} else {
			if first := ht.buckets.Get(int(b)); first != ht.sentinel {
				dmStart = int64(first)
			}
		}
		for cur := dmStart; cur >= 0 && !found; {
			if ht.keys[cur] == k && (keys2 == nil || ht.keys2[cur] == keys2[i]) {
				found = true
				break
			}
			next := ht.link.Get(int(cur))
			if next == ht.sentinel {
				break
			}
			cur = int64(next)
		}
		if found {
			out.Set(i)
			hits++
		}
	}
	ratio := 0.0
	if n > 0 {
		ratio = float64(hits) / float64(n)
	}
	charge(core, JoinProbeCost(n, tileRows, ratio))
	return hits
}

// MatchedBuildRows marks every build row that matched at least once (outer
// join bookkeeping). It re-probes with the given probe vectors.
func (ht *CompactHT) MatchedBuildRows(core *dpu.Core, matches []Match, out *bits.Vector) {
	for _, m := range matches {
		out.Set(int(m.BuildRow))
	}
	charge(core, costGatherPerRow*float64(len(matches)))
}
