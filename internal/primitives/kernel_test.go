package primitives

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
)

func TestWidenToI64(t *testing.T) {
	core := testCore(t)
	for _, w := range []coltypes.Width{coltypes.W1, coltypes.W2, coltypes.W4, coltypes.W8} {
		d := col(w, -5, 0, 100)
		out := WidenToI64(core, d, nil)
		if len(out) != 3 || out[0] != -5 || out[2] != 100 {
			t.Fatalf("w%d: %v", w, out)
		}
	}
	// Buffer reuse.
	buf := make([]int64, 10)
	out := WidenToI64(nil, col(coltypes.W4, 1, 2), buf)
	if len(out) != 2 || out[1] != 2 {
		t.Fatal("reuse wrong")
	}
}

func TestArithmetic(t *testing.T) {
	core := testCore(t)
	a := []int64{1, 2, 3}
	b := []int64{10, 20, 30}
	out := make([]int64, 3)
	AddConst(core, a, 5, out)
	if out[2] != 8 {
		t.Fatal("AddConst")
	}
	MulConst(core, a, 3, out)
	if out[1] != 6 {
		t.Fatal("MulConst")
	}
	DivConst(core, b, 10, out)
	if out[2] != 3 {
		t.Fatal("DivConst")
	}
	AddCol(core, a, b, out)
	if out[0] != 11 {
		t.Fatal("AddCol")
	}
	SubCol(core, b, a, out)
	if out[1] != 18 {
		t.Fatal("SubCol")
	}
	MulCol(core, a, b, out)
	if out[2] != 90 {
		t.Fatal("MulCol")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("div by zero should panic")
		}
	}()
	DivConst(core, a, 0, out)
}

func TestAggregate(t *testing.T) {
	core := testCore(t)
	vals := []int64{5, -3, 12, 7}
	st := NewAggState()
	Aggregate(core, vals, nil, &st)
	if st.Sum != 21 || st.Min != -3 || st.Max != 12 || st.Count != 4 {
		t.Fatalf("agg = %+v", st)
	}
	sel := bits.NewVector(4)
	sel.Set(0)
	sel.Set(2)
	st2 := NewAggState()
	Aggregate(core, vals, sel, &st2)
	if st2.Sum != 17 || st2.Count != 2 || st2.Min != 5 {
		t.Fatalf("masked agg = %+v", st2)
	}
	st.Merge(st2)
	if st.Sum != 38 || st.Count != 6 || st.Min != -3 || st.Max != 12 {
		t.Fatalf("merge = %+v", st)
	}
}

func TestGroupedAgg(t *testing.T) {
	core := testCore(t)
	g := NewGroupedAgg(3)
	gids := []uint32{0, 1, 0, 2, 1}
	vals := []int64{10, 20, 30, 40, 50}
	g.Accumulate(core, gids, vals)
	if g.Sums[0] != 40 || g.Sums[1] != 70 || g.Sums[2] != 40 {
		t.Fatalf("sums = %v", g.Sums)
	}
	if g.Counts[0] != 2 || g.Mins[1] != 20 || g.Maxs[1] != 50 {
		t.Fatal("counts/min/max wrong")
	}
	g.AccumulateCounts(core, gids)
	if g.Counts[0] != 4 {
		t.Fatal("AccumulateCounts")
	}
	if g.SizeBytes() != 3*4*8 {
		t.Fatalf("SizeBytes = %d", g.SizeBytes())
	}
}

func TestHashColumns(t *testing.T) {
	core := testCore(t)
	a := col(coltypes.W4, 1, 2, 3, 1)
	b := col(coltypes.W8, 9, 9, 9, 9)
	hv := HashColumns(core, []coltypes.Data{a, b}, nil)
	if len(hv) != 4 {
		t.Fatal("len")
	}
	if hv[0] != hv[3] {
		t.Fatal("equal keys must hash equal")
	}
	if hv[0] == hv[1] {
		t.Fatal("different keys should differ")
	}
	// Same values at different widths hash identically (width-independent
	// key domain) — required for joining a W2 column against a W4 column.
	wa := HashColumns(nil, []coltypes.Data{col(coltypes.W2, 7)}, nil)
	wb := HashColumns(nil, []coltypes.Data{col(coltypes.W8, 7)}, nil)
	if wa[0] != wb[0] {
		t.Fatal("hash must be width independent")
	}
}

func TestComputePartitionMap(t *testing.T) {
	core := testCore(t)
	rng := rand.New(rand.NewSource(11))
	n := 5000
	keys := coltypes.New(coltypes.W4, n)
	for i := 0; i < n; i++ {
		keys.Set(i, int64(rng.Intn(1000)))
	}
	hv := HashColumns(core, []coltypes.Data{keys}, nil)
	m := ComputePartitionMap(core, hv, 16, 0)
	if m.Fanout() != 16 {
		t.Fatal("fanout")
	}
	// Completeness: every row appears exactly once.
	seen := make([]bool, n)
	total := 0
	for p := 0; p < 16; p++ {
		for _, r := range m.Partition(p) {
			if seen[r] {
				t.Fatalf("row %d twice", r)
			}
			seen[r] = true
			total++
			// Row's hash must map to partition p.
			if int(hv[r]&15) != p {
				t.Fatalf("row %d in wrong partition", r)
			}
		}
	}
	if total != n {
		t.Fatalf("total = %d", total)
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}

func TestComputePartitionMapShift(t *testing.T) {
	// Shifted radix bits select a disjoint bit range — the mechanism behind
	// multi-round partitioning.
	hv := []uint32{0b0000, 0b0100, 0b1000, 0b1100}
	m0 := ComputePartitionMap(nil, hv, 4, 0)
	if m0.Rows(0) != 4 {
		t.Fatal("shift 0 should put all in partition 0")
	}
	m2 := ComputePartitionMap(nil, hv, 4, 2)
	for p := 0; p < 4; p++ {
		if m2.Rows(p) != 1 {
			t.Fatalf("shift 2 partition %d rows = %d", p, m2.Rows(p))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two fanout should panic")
		}
	}()
	ComputePartitionMap(nil, hv, 3, 0)
}

func TestSwPartitionAll(t *testing.T) {
	core := testCore(t)
	n := 1000
	key := coltypes.New(coltypes.W4, n)
	val := coltypes.New(coltypes.W8, n)
	for i := 0; i < n; i++ {
		key.Set(i, int64(i))
		val.Set(i, int64(i*100))
	}
	hv := HashColumns(core, []coltypes.Data{key}, nil)
	m := ComputePartitionMap(core, hv, 8, 0)
	parts := SwPartitionAll(core, []coltypes.Data{key, val}, m)
	total := 0
	for p := range parts {
		rows := parts[p][0].Len()
		total += rows
		for i := 0; i < rows; i++ {
			k := parts[p][0].Get(i)
			if parts[p][1].Get(i) != k*100 {
				t.Fatal("row torn across columns")
			}
		}
	}
	if total != n {
		t.Fatalf("total = %d", total)
	}
}

func TestCompactHTBuildProbe(t *testing.T) {
	core := testCore(t)
	// Build over 8 tuples like the paper's Figure 6 example.
	buildKeys := []int64{10, 20, 30, 40, 10, 20, 50, 10}
	bk := coltypes.FromInt64s(coltypes.W4, buildKeys)
	hv := HashColumns(core, []coltypes.Data{bk}, nil)
	ht := NewCompactHT(len(buildKeys), 4)
	ht.Build(core, hv, buildKeys, nil, 256)
	if ht.Rows() != 8 || ht.OverflowRows() != 0 {
		t.Fatalf("rows=%d overflow=%d", ht.Rows(), ht.OverflowRows())
	}
	// Probe: key 10 matches rows 0,4,7; key 99 matches none.
	probeKeys := []int64{10, 99, 20}
	pk := coltypes.FromInt64s(coltypes.W4, probeKeys)
	phv := HashColumns(core, []coltypes.Data{pk}, nil)
	matches := ht.Probe(core, phv, probeKeys, nil, 256, nil)
	want := map[[2]uint32]bool{
		{0, 0}: true, {4, 0}: true, {7, 0}: true,
		{1, 2}: true, {5, 2}: true,
	}
	if len(matches) != len(want) {
		t.Fatalf("matches = %v", matches)
	}
	for _, m := range matches {
		if !want[[2]uint32{m.BuildRow, m.ProbeRow}] {
			t.Fatalf("unexpected match %+v", m)
		}
	}
}

func TestCompactHTBitWidth(t *testing.T) {
	// The packed arrays must use ceil(log2 N) bits: for 1000 rows (+1
	// sentinel) that is 10 bits, so link = 1250 bytes, not 4000.
	ht := NewCompactHT(1000, 256)
	wantLink := bits.PackedSizeBytes(1000, 10)
	wantBuckets := bits.PackedSizeBytes(256, 10)
	if ht.SizeBytes() != wantLink+wantBuckets {
		t.Fatalf("SizeBytes = %d, want %d", ht.SizeBytes(), wantLink+wantBuckets)
	}
	if HTSizeBytes(1000, 256) != wantLink+wantBuckets {
		t.Fatal("HTSizeBytes mismatch")
	}
	// A 4096-row DMEM partition table fits comfortably in 32 KiB.
	if HTSizeBytes(4096, 1024) > 10*1024 {
		t.Fatalf("4096-row table = %d bytes", HTSizeBytes(4096, 1024))
	}
}

func TestBucketsFor(t *testing.T) {
	// Power of two, 2-4x smaller than rows (paper §6.3).
	for _, n := range []int{10, 100, 1000, 4096, 5000} {
		b := BucketsFor(n)
		if b&(b-1) != 0 {
			t.Fatalf("BucketsFor(%d) = %d not power of two", n, b)
		}
		if b*4 < n || (n > 4 && b >= n) {
			t.Fatalf("BucketsFor(%d) = %d out of 2-4x range", n, b)
		}
	}
	if BucketsFor(1) != 4 {
		t.Fatal("min buckets")
	}
}

func TestCompactHTOverflow(t *testing.T) {
	core := testCore(t)
	// Capacity 8 but 20 build rows: 12 overflow to DRAM; all matches must
	// still be found (the §6.4 graceful degradation).
	n := 20
	buildKeys := make([]int64, n)
	for i := range buildKeys {
		buildKeys[i] = int64(i % 10)
	}
	bk := coltypes.FromInt64s(coltypes.W4, buildKeys)
	hv := HashColumns(core, []coltypes.Data{bk}, nil)
	ht := NewCompactHT(8, 4)
	ht.Build(core, hv, buildKeys, nil, 256)
	if ht.OverflowRows() != 12 {
		t.Fatalf("overflow = %d", ht.OverflowRows())
	}
	probeKeys := []int64{3}
	pk := coltypes.FromInt64s(coltypes.W4, probeKeys)
	phv := HashColumns(core, []coltypes.Data{pk}, nil)
	matches := ht.Probe(core, phv, probeKeys, nil, 256, nil)
	// Key 3 occurs at rows 3 and 13.
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	got := []int{int(matches[0].BuildRow), int(matches[1].BuildRow)}
	sort.Ints(got)
	if got[0] != 3 || got[1] != 13 {
		t.Fatalf("matched rows %v, want [3 13]", got)
	}
}

func TestCompactHTSecondKey(t *testing.T) {
	buildK1 := []int64{1, 1, 2}
	buildK2 := []int64{10, 20, 10}
	bk := coltypes.FromInt64s(coltypes.W4, buildK1)
	hv := HashColumns(nil, []coltypes.Data{bk}, nil)
	ht := NewCompactHT(3, 4)
	ht.Build(nil, hv, buildK1, buildK2, 256)
	probeK1 := []int64{1}
	probeK2 := []int64{20}
	pk := coltypes.FromInt64s(coltypes.W4, probeK1)
	phv := HashColumns(nil, []coltypes.Data{pk}, nil)
	matches := ht.Probe(nil, phv, probeK1, probeK2, 256, nil)
	if len(matches) != 1 || matches[0].BuildRow != 1 {
		t.Fatalf("composite key matches = %v", matches)
	}
}

func TestProbeExists(t *testing.T) {
	buildKeys := []int64{1, 2, 3}
	bk := coltypes.FromInt64s(coltypes.W4, buildKeys)
	hv := HashColumns(nil, []coltypes.Data{bk}, nil)
	ht := NewCompactHT(3, 4)
	ht.Build(nil, hv, buildKeys, nil, 256)
	probeKeys := []int64{2, 9, 3, 9}
	pk := coltypes.FromInt64s(coltypes.W4, probeKeys)
	phv := HashColumns(nil, []coltypes.Data{pk}, nil)
	out := bits.NewVector(4)
	hits := ht.ProbeExists(nil, phv, probeKeys, nil, 256, out)
	if hits != 2 || !out.Test(0) || !out.Test(2) || out.Test(1) {
		t.Fatalf("exists: %d %s", hits, out)
	}
}

// Property: hash join kernel agrees with a nested-loop reference on random
// inputs, including under DMEM overflow.
func TestCompactHTEquivalence(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := rng.Intn(200) + 1
		np := rng.Intn(200) + 1
		capacity := int(capRaw)%nb + 1 // may force overflow
		buildKeys := make([]int64, nb)
		for i := range buildKeys {
			buildKeys[i] = int64(rng.Intn(50))
		}
		probeKeys := make([]int64, np)
		for i := range probeKeys {
			probeKeys[i] = int64(rng.Intn(50))
		}
		bk := coltypes.FromInt64s(coltypes.W8, buildKeys)
		pk := coltypes.FromInt64s(coltypes.W8, probeKeys)
		ht := NewCompactHT(capacity, BucketsFor(nb))
		ht.Build(nil, HashColumns(nil, []coltypes.Data{bk}, nil), buildKeys, nil, 256)
		matches := ht.Probe(nil, HashColumns(nil, []coltypes.Data{pk}, nil), probeKeys, nil, 256, nil)
		got := map[[2]uint32]int{}
		for _, m := range matches {
			got[[2]uint32{m.BuildRow, m.ProbeRow}]++
		}
		wantCount := 0
		for p, pkv := range probeKeys {
			for b, bkv := range buildKeys {
				if pkv == bkv {
					wantCount++
					if got[[2]uint32{uint32(b), uint32(p)}] != 1 {
						return false
					}
				}
			}
		}
		return wantCount == len(matches)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	// 4 widths x 6 ops x 2 variants of filters alone = 48 primitives.
	if Count() < 60 {
		t.Fatalf("registry has %d primitives, expected the generated matrix", Count())
	}
	in, ok := Lookup("rpdmpr_bvflt_i4_OPT_TYPE_EQ_cval")
	if !ok {
		t.Fatal("Listing 1's primitive must be registered")
	}
	if in.Kind != KindFilterBV || in.Width != coltypes.W4 || in.Op != "EQ" {
		t.Fatalf("info = %+v", in)
	}
	if _, ok := Lookup("swpart_partcol_i4"); !ok {
		t.Fatal("Listing 3's primitive must be registered")
	}
	if _, ok := Lookup("compute_partition_map"); !ok {
		t.Fatal("Listing 2's primitive must be registered")
	}
	all := All()
	if len(all) != Count() {
		t.Fatal("All inconsistent")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("All must be sorted")
		}
	}
}

func TestScalarDispatchCharges(t *testing.T) {
	core := testCore(t)
	ChargeScalarDispatch(core, 1000)
	if core.Cycles() == 0 || core.BranchMisses() == 0 {
		t.Fatal("scalar dispatch must charge cycles and branch misses")
	}
	ChargeTileOverhead(core)
}
