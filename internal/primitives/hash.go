package primitives

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/hashcrc"
)

// Hash primitives: the dpCore exposes CRC32 as a single-cycle instruction
// (§2.1), and the same CRC32 is computed by the DMS hash engine, so hash
// vectors are interchangeable between hardware and software partitioning.

// HashColumn folds one key column into the hash accumulator vector. Pass
// first=true for the first key (accumulators are seeded), false to chain
// further keys. acc must have d.Len() elements (or be nil for first=true).
func HashColumn(core *dpu.Core, d coltypes.Data, acc []uint32, first bool) []uint32 {
	n := d.Len()
	if first {
		if cap(acc) < n {
			acc = make([]uint32, n)
		}
		acc = acc[:n]
		for i := range acc {
			acc[i] = hashcrc.Seed
		}
	} else if len(acc) != n {
		panic(fmt.Sprintf("primitives: hash accumulator length %d != %d", len(acc), n))
	}
	switch s := d.(type) {
	case coltypes.I8:
		for i, v := range s {
			acc[i] = hashcrc.Hash64(acc[i], uint64(int64(v)))
		}
	case coltypes.I16:
		for i, v := range s {
			acc[i] = hashcrc.Hash64(acc[i], uint64(int64(v)))
		}
	case coltypes.I32:
		for i, v := range s {
			acc[i] = hashcrc.Hash64(acc[i], uint64(int64(v)))
		}
	case coltypes.I64:
		for i, v := range s {
			acc[i] = hashcrc.Hash64(acc[i], uint64(v))
		}
	default:
		panic(fmt.Sprintf("primitives: unsupported data %T", d))
	}
	charge(core, costHashPerRowPerKey*float64(n))
	return acc
}

// HashFinalize applies the final mix to the accumulator vector.
func HashFinalize(core *dpu.Core, acc []uint32) {
	for i, h := range acc {
		acc[i] = hashcrc.Finalize(h)
	}
	charge(core, costArithPerRow*float64(len(acc)))
}

// HashColumns hashes a set of key columns to finalized 32-bit values —
// exactly what the DMS hash engine would deliver in CRC memory.
func HashColumns(core *dpu.Core, cols []coltypes.Data, acc []uint32) []uint32 {
	for k, c := range cols {
		acc = HashColumn(core, c, acc, k == 0)
	}
	HashFinalize(core, acc)
	return acc
}
