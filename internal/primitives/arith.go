package primitives

import (
	"fmt"
	"math"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dpu"
)

// Arithmetic primitives operate on 64-bit accumulators: the compiler inserts
// a widen primitive per input column ("primitive and encoding selection for
// each column", §5.2), keeping the arithmetic kernel matrix small while DSB
// products and sums get 64-bit headroom.

// WidenToI64 copies d into an int64 vector. dst may be nil (allocated) or a
// reusable buffer of at least d.Len() elements.
func WidenToI64(core *dpu.Core, d coltypes.Data, dst []int64) []int64 {
	n := d.Len()
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	switch s := d.(type) {
	case coltypes.I8:
		for i, v := range s {
			dst[i] = int64(v)
		}
	case coltypes.I16:
		for i, v := range s {
			dst[i] = int64(v)
		}
	case coltypes.I32:
		for i, v := range s {
			dst[i] = int64(v)
		}
	case coltypes.I64:
		copy(dst, s)
	default:
		panic(fmt.Sprintf("primitives: unsupported data %T", d))
	}
	charge(core, costWidenPerRow*float64(n))
	return dst
}

// AddConst computes out[i] = in[i] + c.
func AddConst(core *dpu.Core, in []int64, c int64, out []int64) {
	for i, v := range in {
		out[i] = v + c
	}
	charge(core, costArithPerRow*float64(len(in)))
}

// MulConst computes out[i] = in[i] * c. The dpCore multiplier stalls the
// pipeline, so multiplications are billed at dpu.MulStall cycles each.
func MulConst(core *dpu.Core, in []int64, c int64, out []int64) {
	for i, v := range in {
		out[i] = v * c
	}
	charge(core, float64(dpu.MulStall)*float64(len(in)))
}

// DivConst computes out[i] = in[i] / c (integer division; used for decimal
// rescaling). Division runs on the multiplier unit.
func DivConst(core *dpu.Core, in []int64, c int64, out []int64) {
	if c == 0 {
		panic("primitives: division by zero constant")
	}
	for i, v := range in {
		out[i] = v / c
	}
	charge(core, float64(dpu.MulStall)*float64(len(in)))
}

// AddCol computes out[i] = a[i] + b[i].
func AddCol(core *dpu.Core, a, b, out []int64) {
	for i := range a {
		out[i] = a[i] + b[i]
	}
	charge(core, costArithPerRow*float64(len(a)))
}

// SubCol computes out[i] = a[i] - b[i].
func SubCol(core *dpu.Core, a, b, out []int64) {
	for i := range a {
		out[i] = a[i] - b[i]
	}
	charge(core, costArithPerRow*float64(len(a)))
}

// MulCol computes out[i] = a[i] * b[i].
func MulCol(core *dpu.Core, a, b, out []int64) {
	for i := range a {
		out[i] = a[i] * b[i]
	}
	charge(core, float64(dpu.MulStall)*float64(len(a)))
}

// Aggregates of one vector under an optional selection bit-vector.

// AggState accumulates sum/min/max/count.
type AggState struct {
	Sum   int64
	Min   int64
	Max   int64
	Count int64
}

// NewAggState returns an identity accumulator.
func NewAggState() AggState {
	return AggState{Min: math.MaxInt64, Max: math.MinInt64}
}

// Merge combines two accumulators (the merge operator after low-NDV
// group-by, §5.4).
func (a *AggState) Merge(o AggState) {
	a.Sum += o.Sum
	a.Count += o.Count
	if o.Min < a.Min {
		a.Min = o.Min
	}
	if o.Max > a.Max {
		a.Max = o.Max
	}
}

// Aggregate folds vals (rows of sel when non-nil) into st.
func Aggregate(core *dpu.Core, vals []int64, sel *bits.Vector, st *AggState) {
	update := func(v int64) {
		st.Sum += v
		st.Count++
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	if sel == nil {
		for _, v := range vals {
			update(v)
		}
		charge(core, costAggPerRow*float64(len(vals)))
		return
	}
	n := 0
	for i := sel.NextSet(0); i >= 0; i = sel.NextSet(i + 1) {
		update(vals[i])
		n++
	}
	charge(core, costAggPerRow*float64(n))
}

// GroupedAgg maintains per-group accumulators indexed by dense group IDs —
// the DMEM-resident aggregation table of the group-by operator.
type GroupedAgg struct {
	Sums   []int64
	Mins   []int64
	Maxs   []int64
	Counts []int64
}

// NewGroupedAgg allocates accumulators for n groups.
func NewGroupedAgg(n int) *GroupedAgg {
	g := &GroupedAgg{
		Sums:   make([]int64, n),
		Mins:   make([]int64, n),
		Maxs:   make([]int64, n),
		Counts: make([]int64, n),
	}
	for i := range g.Mins {
		g.Mins[i] = math.MaxInt64
		g.Maxs[i] = math.MinInt64
	}
	return g
}

// SizeBytes returns the DMEM footprint of the accumulators.
func (g *GroupedAgg) SizeBytes() int { return 4 * 8 * len(g.Sums) }

// Accumulate folds vals into the accumulators selected by gids.
func (g *GroupedAgg) Accumulate(core *dpu.Core, gids []uint32, vals []int64) {
	for i, gid := range gids {
		v := vals[i]
		g.Sums[gid] += v
		g.Counts[gid]++
		if v < g.Mins[gid] {
			g.Mins[gid] = v
		}
		if v > g.Maxs[gid] {
			g.Maxs[gid] = v
		}
	}
	charge(core, costGroupedAggPerRow*float64(len(gids)))
}

// AccumulateCounts folds only row counts (COUNT(*) fast path).
func (g *GroupedAgg) AccumulateCounts(core *dpu.Core, gids []uint32) {
	for _, gid := range gids {
		g.Counts[gid]++
	}
	charge(core, 0.5*costGroupedAggPerRow*float64(len(gids)))
}
