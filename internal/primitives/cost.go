// Package primitives implements RAPID's query-execution primitives (paper
// §5.1): type-specialized, side-effect-free, short functions over column
// vectors. The paper generates C functions from templates for every
// (operation, type) combination; here Go generics instantiate the same
// matrix and a registry (registry.go) exposes it under the paper's naming
// scheme.
//
// Every primitive both computes its result and charges cycles to the
// executing dpCore from the cost model in this file. Passing a nil core
// disables accounting (the ModeX86 software-only configuration).
package primitives

import "rapid/internal/dpu"

// Per-row and per-invocation cycle costs of the primitive kernels.
//
// These are calibrated against the paper's measured operator rates; each
// constant notes its target. The underlying pipeline justification: the
// dpCore dual-issues one ALU and one LSU instruction per cycle, BVLD/FILT/
// CRC32 are single-cycle, DMEM loads/stores are single-cycle, and tight
// backward loops predict perfectly (§2.1).
const (
	// Filter (Listing 1): dual-issued filteq+bvld sustain ~1 cycle/row;
	// bit-vector word maintenance adds ~3 cycles per 64 rows; measured
	// total is 1.65 cycles/row => 482 M rows/s/core at 800 MHz (§7.2).
	costFilterPerRow  = 1.6
	costFilterPerWord = 3.0

	// RID-emitting filter variant: the hit store cannot pair as cleanly.
	costFilterRIDPerRow = 1.8

	// DMEM gather by index: single-cycle loads, address arithmetic pairs.
	costGatherPerRow = 1.0

	// Widening copy ([]T -> []int64) and narrow store.
	costWidenPerRow = 1.0

	// Additive arithmetic: load+op+store across dual issue.
	costArithPerRow = 1.5

	// Aggregation accumulate (sum/min/max) over a vector.
	costAggPerRow = 1.5
	// Grouped aggregation: gid load, accumulator load/update/store.
	costGroupedAggPerRow = 3.0

	// CRC32 hash: single-cycle CRC instruction, serial accumulator chain
	// per extra key.
	costHashPerRowPerKey = 1.5

	// compute_partition_map (Listing 2): id computation, histogram,
	// prefix-sum and map fill — a few tight loops over the tile.
	costPartMapPerRow       = 4.0
	costPartMapPerPartition = 2.0

	// Software partition gather (Listing 3): index load + element
	// load/store per row per column.
	costSwPartGatherPerRow = 2.0

	// Join kernels (§6.3). Calibrated to Fig 11/12: build ~15.5 cycles/row
	// + ~424/tile (46 M rows/s/core at 256-row tiles, +39 % from 64 to
	// 1024); probe ~15 cycles/row + 8 per hit + ~650/tile (0.88-1.35 B
	// rows/s/DPU at 50 % hit rate).
	costJoinBuildPerRow  = 15.5
	costJoinBuildPerTile = 424.0
	costJoinProbePerRow  = 15.0
	costJoinProbePerHit  = 8.0
	costJoinProbePerTile = 650.0

	// Per-tile operator control flow: "a single conditional check per
	// tile" (§5.4) plus descriptor handling.
	costTileOverhead = 30.0

	// Row-at-a-time execution disables vectorization: every row pays a
	// primitive dispatch (call, operand setup) and a data-dependent branch.
	// Calibrated to the ~46 % vectorization gain of Fig 13: the join kernel
	// costs ~34.5 cycles/row vectorized; +7.5 dispatch + ~0.5 branch-miss
	// cycles/row lands at 1.46x.
	costScalarDispatchPerRow = 7.5
	scalarBranchMissRate     = 0.08
)

// charge adds cy cycles to core if accounting is enabled.
func charge(core *dpu.Core, cy float64) {
	if core != nil && cy > 0 {
		core.Charge(dpu.Cycles(cy))
	}
}

// ChargeTileOverhead bills the per-tile operator control-flow check.
func ChargeTileOverhead(core *dpu.Core) { charge(core, costTileOverhead) }

// ChargeScalarDispatch bills the row-at-a-time execution penalty for n rows
// (Fig 13's non-vectorized configuration), including its branch misses.
func ChargeScalarDispatch(core *dpu.Core, n int) {
	if core == nil || n <= 0 {
		return
	}
	charge(core, costScalarDispatchPerRow*float64(n))
	core.ChargeBranchMiss(int64(scalarBranchMissRate * float64(n)))
}

// FilterCost returns the modeled cycles of a bit-vector filter over n rows
// (exported for the cost model in qcomp).
func FilterCost(n int) float64 {
	return costFilterPerRow*float64(n) + costFilterPerWord*float64((n+63)/64)
}

// JoinBuildCost returns the modeled cycles of building a hash table over n
// rows arriving in tiles of the given size.
func JoinBuildCost(n, tileRows int) float64 {
	if tileRows <= 0 {
		tileRows = 256
	}
	tiles := float64((n + tileRows - 1) / tileRows)
	return costJoinBuildPerRow*float64(n) + costJoinBuildPerTile*tiles
}

// JoinProbeCost returns the modeled cycles of probing n rows with the given
// expected hit ratio.
func JoinProbeCost(n, tileRows int, hitRatio float64) float64 {
	if tileRows <= 0 {
		tileRows = 256
	}
	tiles := float64((n + tileRows - 1) / tileRows)
	return (costJoinProbePerRow+costJoinProbePerHit*hitRatio)*float64(n) +
		costJoinProbePerTile*tiles
}

// PartitionMapCost returns the modeled cycles of compute_partition_map over
// n rows at the given fan-out.
func PartitionMapCost(n, fanout int) float64 {
	return costPartMapPerRow*float64(n) + costPartMapPerPartition*float64(fanout)
}
