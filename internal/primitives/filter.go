package primitives

import (
	"fmt"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dpu"
)

// CmpOp is a comparison operator of the FILT instruction family.
type CmpOp int

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "EQ"
	case NE:
		return "NE"
	case LT:
		return "LT"
	case LE:
		return "LE"
	case GT:
		return "GT"
	case GE:
		return "GE"
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Negate returns the complementary operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	panic("primitives: bad CmpOp")
}

// Swap returns the operator with operand order reversed (a op b == b Swap(op) a).
func (op CmpOp) Swap() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

func cmp[T coltypes.Elem](op CmpOp, a, b T) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	panic("primitives: bad CmpOp")
}

// filterConstBV is the dense first-predicate kernel: evaluate `in[i] op
// cval` for every row and set the output bit-vector. Returns the hit count.
func filterConstBV[T coltypes.Elem](core *dpu.Core, in []T, op CmpOp, cval T, out *bits.Vector) int {
	hits := 0
	for i, v := range in {
		if cmp(op, v, cval) {
			out.Set(i)
			hits++
		}
	}
	charge(core, FilterCost(len(in)))
	if core != nil {
		core.CountInstructions(int64(2 * len(in)))
	}
	return hits
}

// filterConstBVMasked is Listing 1 (rpdmpr_bvflt): evaluate the predicate
// only on rows set in the input bit-vector (BVLD gathers them), writing the
// surviving rows to out. Per-value cost scales with the candidate count,
// but every bit-vector word must still be loaded and scanned — the reason
// RID lists win below 1/32 density (§5.4).
func filterConstBVMasked[T coltypes.Elem](core *dpu.Core, in []T, op CmpOp, cval T, inBV, out *bits.Vector) int {
	hits := 0
	candidates := 0
	for i := inBV.NextSet(0); i >= 0; i = inBV.NextSet(i + 1) {
		candidates++
		if cmp(op, in[i], cval) {
			out.Set(i)
			hits++
		}
	}
	words := (inBV.Len() + 63) / 64
	charge(core, FilterCost(candidates)+costFilterPerWord*float64(words))
	if core != nil {
		core.CountInstructions(int64(2*candidates) + int64(words))
	}
	return hits
}

// filterConstRIDs is the RID-list kernel chosen when fewer than 1/32 of the
// rows are expected to qualify (§5.4): scan the candidate RIDs and append
// survivors to out.
func filterConstRIDs[T coltypes.Elem](core *dpu.Core, in []T, op CmpOp, cval T, inRIDs []uint32, out []uint32) []uint32 {
	for _, r := range inRIDs {
		if cmp(op, in[r], cval) {
			out = append(out, r)
		}
	}
	charge(core, costFilterRIDPerRow*float64(len(inRIDs)))
	return out
}

// filterConstRIDsDense scans all n rows and emits qualifying RIDs.
func filterConstRIDsDense[T coltypes.Elem](core *dpu.Core, in []T, op CmpOp, cval T, out []uint32) []uint32 {
	for i, v := range in {
		if cmp(op, v, cval) {
			out = append(out, uint32(i))
		}
	}
	charge(core, costFilterRIDPerRow*float64(len(in)))
	return out
}

// filterBetweenBV evaluates lo <= in[i] <= hi on rows of inBV (nil = all).
func filterBetweenBV[T coltypes.Elem](core *dpu.Core, in []T, lo, hi T, inBV, out *bits.Vector) int {
	hits := 0
	if inBV == nil {
		for i, v := range in {
			if v >= lo && v <= hi {
				out.Set(i)
				hits++
			}
		}
		charge(core, 2*costFilterPerRow*float64(len(in))+costFilterPerWord*float64((len(in)+63)/64))
		return hits
	}
	candidates := 0
	for i := inBV.NextSet(0); i >= 0; i = inBV.NextSet(i + 1) {
		candidates++
		if v := in[i]; v >= lo && v <= hi {
			out.Set(i)
			hits++
		}
	}
	charge(core, 2*costFilterPerRow*float64(candidates)+costFilterPerWord*float64((candidates+63)/64))
	return hits
}

// filterColColBV evaluates a[i] op b[i] on rows of inBV (nil = all).
func filterColColBV[T coltypes.Elem](core *dpu.Core, a, b []T, op CmpOp, inBV, out *bits.Vector) int {
	hits := 0
	if inBV == nil {
		for i := range a {
			if cmp(op, a[i], b[i]) {
				out.Set(i)
				hits++
			}
		}
		charge(core, FilterCost(len(a))+costGatherPerRow*float64(len(a)))
		return hits
	}
	candidates := 0
	for i := inBV.NextSet(0); i >= 0; i = inBV.NextSet(i + 1) {
		candidates++
		if cmp(op, a[i], b[i]) {
			out.Set(i)
			hits++
		}
	}
	charge(core, FilterCost(candidates)+costGatherPerRow*float64(candidates))
	return hits
}

// filterInSet tests dictionary-code membership against a code bitmap — the
// compiled form of string range/prefix/IN predicates (§4.2). Codes outside
// the bitmap domain fail the predicate.
func filterInSet[T coltypes.Elem](core *dpu.Core, in []T, set *bits.Vector, inBV, out *bits.Vector) int {
	hits := 0
	test := func(v T) bool {
		c := int64(v)
		return c >= 0 && c < int64(set.Len()) && set.Test(int(c))
	}
	if inBV == nil {
		for i, v := range in {
			if test(v) {
				out.Set(i)
				hits++
			}
		}
		charge(core, FilterCost(len(in))+costGatherPerRow*float64(len(in)))
		return hits
	}
	candidates := 0
	for i := inBV.NextSet(0); i >= 0; i = inBV.NextSet(i + 1) {
		candidates++
		if test(in[i]) {
			out.Set(i)
			hits++
		}
	}
	charge(core, FilterCost(candidates)+costGatherPerRow*float64(candidates))
	return hits
}

// Data-dispatching wrappers: select the width-specialized instantiation for
// a coltypes.Data, mirroring the generated-primitive lookup.

// FilterConstBV evaluates `d op cval` densely into out, returning hits.
func FilterConstBV(core *dpu.Core, d coltypes.Data, op CmpOp, cval int64, out *bits.Vector) int {
	switch s := d.(type) {
	case coltypes.I8:
		c, ok := constFit[int8](cval)
		if !ok {
			return degenerateConst(op, cval, d, len(s), out)
		}
		return filterConstBV(core, s, op, c, out)
	case coltypes.I16:
		c, ok := constFit[int16](cval)
		if !ok {
			return degenerateConst(op, cval, d, len(s), out)
		}
		return filterConstBV(core, s, op, c, out)
	case coltypes.I32:
		c, ok := constFit[int32](cval)
		if !ok {
			return degenerateConst(op, cval, d, len(s), out)
		}
		return filterConstBV(core, s, op, c, out)
	case coltypes.I64:
		return filterConstBV(core, s, op, cval, out)
	}
	panic(fmt.Sprintf("primitives: unsupported data %T", d))
}

// FilterConstBVMasked evaluates `d op cval` on rows of inBV into out.
func FilterConstBVMasked(core *dpu.Core, d coltypes.Data, op CmpOp, cval int64, inBV, out *bits.Vector) int {
	switch s := d.(type) {
	case coltypes.I8:
		c, ok := constFit[int8](cval)
		if !ok {
			return degenerateConstMasked(op, cval, d, inBV, out)
		}
		return filterConstBVMasked(core, s, op, c, inBV, out)
	case coltypes.I16:
		c, ok := constFit[int16](cval)
		if !ok {
			return degenerateConstMasked(op, cval, d, inBV, out)
		}
		return filterConstBVMasked(core, s, op, c, inBV, out)
	case coltypes.I32:
		c, ok := constFit[int32](cval)
		if !ok {
			return degenerateConstMasked(op, cval, d, inBV, out)
		}
		return filterConstBVMasked(core, s, op, c, inBV, out)
	case coltypes.I64:
		return filterConstBVMasked(core, s, op, cval, inBV, out)
	}
	panic(fmt.Sprintf("primitives: unsupported data %T", d))
}

// FilterConstRIDs evaluates `d op cval` over candidate RIDs (nil = dense
// scan) appending hits to out.
func FilterConstRIDs(core *dpu.Core, d coltypes.Data, op CmpOp, cval int64, inRIDs []uint32, out []uint32) []uint32 {
	switch s := d.(type) {
	case coltypes.I8:
		c, ok := constFit[int8](cval)
		if !ok {
			return degenerateConstRIDs(op, cval, d, inRIDs, out)
		}
		if inRIDs == nil {
			return filterConstRIDsDense(core, s, op, c, out)
		}
		return filterConstRIDs(core, s, op, c, inRIDs, out)
	case coltypes.I16:
		c, ok := constFit[int16](cval)
		if !ok {
			return degenerateConstRIDs(op, cval, d, inRIDs, out)
		}
		if inRIDs == nil {
			return filterConstRIDsDense(core, s, op, c, out)
		}
		return filterConstRIDs(core, s, op, c, inRIDs, out)
	case coltypes.I32:
		c, ok := constFit[int32](cval)
		if !ok {
			return degenerateConstRIDs(op, cval, d, inRIDs, out)
		}
		if inRIDs == nil {
			return filterConstRIDsDense(core, s, op, c, out)
		}
		return filterConstRIDs(core, s, op, c, inRIDs, out)
	case coltypes.I64:
		if inRIDs == nil {
			return filterConstRIDsDense(core, s, op, cval, out)
		}
		return filterConstRIDs(core, s, op, cval, inRIDs, out)
	}
	panic(fmt.Sprintf("primitives: unsupported data %T", d))
}

// FilterBetweenBV evaluates lo <= d <= hi on rows of inBV (nil = all).
func FilterBetweenBV(core *dpu.Core, d coltypes.Data, lo, hi int64, inBV, out *bits.Vector) int {
	w := d.Width()
	// Clamp bounds into the width domain; an empty clamped range means no
	// row can qualify.
	if lo < w.MinInt() {
		lo = w.MinInt()
	}
	if hi > w.MaxInt() {
		hi = w.MaxInt()
	}
	if lo > hi {
		return 0
	}
	switch s := d.(type) {
	case coltypes.I8:
		return filterBetweenBV(core, s, int8(lo), int8(hi), inBV, out)
	case coltypes.I16:
		return filterBetweenBV(core, s, int16(lo), int16(hi), inBV, out)
	case coltypes.I32:
		return filterBetweenBV(core, s, int32(lo), int32(hi), inBV, out)
	case coltypes.I64:
		return filterBetweenBV(core, s, lo, hi, inBV, out)
	}
	panic(fmt.Sprintf("primitives: unsupported data %T", d))
}

// FilterColColBV evaluates a[i] op b[i]; a and b may have different widths
// (widened comparison).
func FilterColColBV(core *dpu.Core, a, b coltypes.Data, op CmpOp, inBV, out *bits.Vector) int {
	if a.Width() == b.Width() {
		switch sa := a.(type) {
		case coltypes.I8:
			return filterColColBV(core, sa, b.(coltypes.I8), op, inBV, out)
		case coltypes.I16:
			return filterColColBV(core, sa, b.(coltypes.I16), op, inBV, out)
		case coltypes.I32:
			return filterColColBV(core, sa, b.(coltypes.I32), op, inBV, out)
		case coltypes.I64:
			return filterColColBV(core, sa, b.(coltypes.I64), op, inBV, out)
		}
	}
	// Mixed widths: widen both (the compiler normally inserts explicit
	// widen primitives; this fallback keeps the operator correct).
	aw := WidenToI64(core, a, nil)
	bw := WidenToI64(core, b, nil)
	return filterColColBV(core, aw, bw, op, inBV, out)
}

// FilterInSetBV tests dictionary-code membership on rows of inBV (nil=all).
func FilterInSetBV(core *dpu.Core, d coltypes.Data, set *bits.Vector, inBV, out *bits.Vector) int {
	switch s := d.(type) {
	case coltypes.I8:
		return filterInSet(core, s, set, inBV, out)
	case coltypes.I16:
		return filterInSet(core, s, set, inBV, out)
	case coltypes.I32:
		return filterInSet(core, s, set, inBV, out)
	case coltypes.I64:
		return filterInSet(core, s, set, inBV, out)
	}
	panic(fmt.Sprintf("primitives: unsupported data %T", d))
}

// constFit narrows a 64-bit constant, reporting whether it is representable
// at the column width.
func constFit[T coltypes.Elem](v int64) (T, bool) {
	t := T(v)
	return t, int64(t) == v
}

// degenerateConst resolves comparisons whose constant lies outside the
// column's physical domain: the predicate is then uniformly true or false.
func degenerateConst(op CmpOp, cval int64, d coltypes.Data, n int, out *bits.Vector) int {
	if !degenerateTrue(op, cval, d) {
		return 0
	}
	for i := 0; i < n; i++ {
		out.Set(i)
	}
	return n
}

func degenerateConstMasked(op CmpOp, cval int64, d coltypes.Data, inBV, out *bits.Vector) int {
	if !degenerateTrue(op, cval, d) {
		return 0
	}
	hits := 0
	for i := inBV.NextSet(0); i >= 0; i = inBV.NextSet(i + 1) {
		out.Set(i)
		hits++
	}
	return hits
}

func degenerateConstRIDs(op CmpOp, cval int64, d coltypes.Data, inRIDs []uint32, out []uint32) []uint32 {
	if !degenerateTrue(op, cval, d) {
		return out
	}
	if inRIDs == nil {
		for i := 0; i < d.Len(); i++ {
			out = append(out, uint32(i))
		}
		return out
	}
	return append(out, inRIDs...)
}

// degenerateTrue reports whether `x op cval` holds for every representable
// x of the column width, given that cval is outside that width's domain.
func degenerateTrue(op CmpOp, cval int64, d coltypes.Data) bool {
	w := d.Width()
	above := cval > w.MaxInt()
	switch op {
	case EQ:
		return false
	case NE:
		return true
	case LT, LE:
		return above
	case GT, GE:
		return !above
	}
	return false
}
