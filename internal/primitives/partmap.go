package primitives

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
)

// Software-partitioning primitives (paper §5.4, Listings 2 and 3): the
// vectorized data-partitioning pipeline of branch-free tight loops that
// extends the 32-way hardware fan-out to 1024+ ways in one pass.

// PartitionMap is the output of compute_partition_map: row indices grouped
// by partition, with per-partition extents.
type PartitionMap struct {
	// RowIdx holds the input row indices ordered by partition: rows of
	// partition p occupy RowIdx[Offsets[p]:Offsets[p+1]].
	RowIdx  []uint32
	Offsets []int32 // len = fanout+1
}

// Rows returns the row count of partition p.
func (m *PartitionMap) Rows(p int) int { return int(m.Offsets[p+1] - m.Offsets[p]) }

// Partition returns the row indices of partition p.
func (m *PartitionMap) Partition(p int) []uint32 {
	return m.RowIdx[m.Offsets[p]:m.Offsets[p+1]]
}

// Fanout returns the partition count.
func (m *PartitionMap) Fanout() int { return len(m.Offsets) - 1 }

// SizeBytes returns the DMEM footprint of the map.
func (m *PartitionMap) SizeBytes() int { return len(m.RowIdx)*4 + len(m.Offsets)*4 }

// ComputePartitionMap is Listing 2: from hardware-computed hash values,
// derive each row's partition (radix bits of the hash shifted by `shift`),
// histogram the tile, prefix-sum, and emit the partition-ordered row map.
// fanout must be a power of two.
func ComputePartitionMap(core *dpu.Core, hv []uint32, fanout int, shift uint) *PartitionMap {
	if fanout <= 0 || fanout&(fanout-1) != 0 {
		panic(fmt.Sprintf("primitives: fan-out %d must be a positive power of two", fanout))
	}
	mask := uint32(fanout - 1)
	n := len(hv)
	pids := make([]uint32, n)
	for i, h := range hv {
		pids[i] = (h >> shift) & mask
	}
	counts := make([]int32, fanout)
	for _, p := range pids {
		counts[p]++
	}
	m := &PartitionMap{RowIdx: make([]uint32, n), Offsets: make([]int32, fanout+1)}
	var sum int32
	for p, c := range counts {
		m.Offsets[p] = sum
		sum += c
	}
	m.Offsets[fanout] = sum
	fill := make([]int32, fanout)
	copy(fill, m.Offsets[:fanout])
	for i, p := range pids {
		m.RowIdx[fill[p]] = uint32(i)
		fill[p]++
	}
	charge(core, PartitionMapCost(n, fanout))
	if core != nil {
		core.CountInstructions(int64(4 * n))
	}
	return m
}

// SwPartitionColumn is Listing 3 (swpart_partcol): gather the rows of
// partition p from the input column and emit them sequentially into out.
// out must have m.Rows(p) elements.
func SwPartitionColumn(core *dpu.Core, in coltypes.Data, m *PartitionMap, p int, out coltypes.Data) {
	sel := m.Partition(p)
	coltypes.Gather(out, in, sel)
	charge(core, costSwPartGatherPerRow*float64(len(sel)))
	if core != nil {
		core.CountInstructions(int64(2 * len(sel)))
	}
}

// SwPartitionAll gathers every partition of every column: the full software
// partitioning step over one tile. Returns per-partition column sets.
func SwPartitionAll(core *dpu.Core, cols []coltypes.Data, m *PartitionMap) [][]coltypes.Data {
	out := make([][]coltypes.Data, m.Fanout())
	for p := range out {
		rows := m.Rows(p)
		out[p] = make([]coltypes.Data, len(cols))
		for c, col := range cols {
			dst := col.NewSame(rows)
			SwPartitionColumn(core, col, m, p, dst)
			out[p][c] = dst
		}
	}
	return out
}

// GatherRows gathers arbitrary rows of a DMEM-resident column (single-cycle
// random access, §2.2).
func GatherRows(core *dpu.Core, in coltypes.Data, rowIdx []uint32, out coltypes.Data) {
	coltypes.Gather(out, in, rowIdx)
	charge(core, costGatherPerRow*float64(len(rowIdx)))
}
