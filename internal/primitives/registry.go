package primitives

import (
	"fmt"
	"sort"

	"rapid/internal/coltypes"
)

// The primitive generator framework (paper §5.1) parses C-like templates and
// emits a function per (operation, input/output type) combination, linked
// into the RAPID binary. Go generics instantiate the same matrix at compile
// time; this registry exposes the instantiations under the paper's naming
// scheme (e.g. "rpdmpr_bvflt_i4_OPT_TYPE_EQ_cval") so the compiler's
// primitive-selection step (§5.2 factor iv) can enumerate and choose them.

// Kind classifies registered primitives.
type Kind int

const (
	KindFilterBV Kind = iota
	KindFilterRID
	KindArith
	KindHash
	KindPartition
	KindJoin
	KindAggregate
)

// Info describes one generated primitive instantiation.
type Info struct {
	Name  string
	Kind  Kind
	Width coltypes.Width
	Op    string
	// CyclesPerRow is the steady-state cost used by the compiler's cost
	// model when picking between variants.
	CyclesPerRow float64
}

var registry = map[string]Info{}

func register(in Info) {
	if _, dup := registry[in.Name]; dup {
		panic(fmt.Sprintf("primitives: duplicate registration %q", in.Name))
	}
	registry[in.Name] = in
}

// widthTag maps a physical width to the paper's type suffix (ub4-style,
// signed here).
func widthTag(w coltypes.Width) string {
	switch w {
	case coltypes.W1:
		return "i1"
	case coltypes.W2:
		return "i2"
	case coltypes.W4:
		return "i4"
	case coltypes.W8:
		return "i8"
	}
	return "i?"
}

// FilterName returns the registered name of a filter primitive variant.
func FilterName(w coltypes.Width, op CmpOp, rid bool) string {
	variant := "bvflt"
	if rid {
		variant = "ridflt"
	}
	return fmt.Sprintf("rpdmpr_%s_%s_OPT_TYPE_%s_cval", variant, widthTag(w), op)
}

func init() {
	widths := []coltypes.Width{coltypes.W1, coltypes.W2, coltypes.W4, coltypes.W8}
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	for _, w := range widths {
		for _, op := range ops {
			register(Info{
				Name:         FilterName(w, op, false),
				Kind:         KindFilterBV,
				Width:        w,
				Op:           op.String(),
				CyclesPerRow: costFilterPerRow + costFilterPerWord/64,
			})
			register(Info{
				Name:         FilterName(w, op, true),
				Kind:         KindFilterRID,
				Width:        w,
				Op:           op.String(),
				CyclesPerRow: costFilterRIDPerRow,
			})
		}
		register(Info{
			Name:         fmt.Sprintf("rpdmpr_between_%s", widthTag(w)),
			Kind:         KindFilterBV,
			Width:        w,
			Op:           "BETWEEN",
			CyclesPerRow: 2 * costFilterPerRow,
		})
		register(Info{
			Name:         fmt.Sprintf("rpdmpr_inset_%s", widthTag(w)),
			Kind:         KindFilterBV,
			Width:        w,
			Op:           "INSET",
			CyclesPerRow: costFilterPerRow + costGatherPerRow,
		})
		register(Info{
			Name:         fmt.Sprintf("rpdmpr_crc32_%s", widthTag(w)),
			Kind:         KindHash,
			Width:        w,
			Op:           "CRC32",
			CyclesPerRow: costHashPerRowPerKey,
		})
		register(Info{
			Name:         fmt.Sprintf("swpart_partcol_%s", widthTag(w)),
			Kind:         KindPartition,
			Width:        w,
			Op:           "GATHER",
			CyclesPerRow: costSwPartGatherPerRow,
		})
		register(Info{
			Name:         fmt.Sprintf("rpdmpr_widen_%s", widthTag(w)),
			Kind:         KindArith,
			Width:        w,
			Op:           "WIDEN",
			CyclesPerRow: costWidenPerRow,
		})
	}
	for _, op := range []string{"ADD", "SUB", "MUL", "DIV", "ADDC", "MULC"} {
		cy := costArithPerRow
		if op == "MUL" || op == "DIV" || op == "MULC" {
			cy = 4
		}
		register(Info{
			Name:         fmt.Sprintf("rpdmpr_arith_i8_%s", op),
			Kind:         KindArith,
			Width:        coltypes.W8,
			Op:           op,
			CyclesPerRow: cy,
		})
	}
	register(Info{Name: "compute_partition_map", Kind: KindPartition, Op: "PARTMAP", CyclesPerRow: costPartMapPerRow})
	register(Info{Name: "rpdmpr_join_build", Kind: KindJoin, Op: "BUILD", CyclesPerRow: costJoinBuildPerRow})
	register(Info{Name: "rpdmpr_join_probe", Kind: KindJoin, Op: "PROBE", CyclesPerRow: costJoinProbePerRow})
	register(Info{Name: "rpdmpr_agg_i8", Kind: KindAggregate, Width: coltypes.W8, Op: "AGG", CyclesPerRow: costAggPerRow})
	register(Info{Name: "rpdmpr_gagg_i8", Kind: KindAggregate, Width: coltypes.W8, Op: "GROUPED_AGG", CyclesPerRow: costGroupedAggPerRow})
}

// Lookup returns the Info for a registered primitive name.
func Lookup(name string) (Info, bool) {
	in, ok := registry[name]
	return in, ok
}

// All returns every registered primitive, sorted by name.
func All() []Info {
	out := make([]Info, 0, len(registry))
	for _, in := range registry {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Count returns the number of generated primitive instantiations.
func Count() int { return len(registry) }
