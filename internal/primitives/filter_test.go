package primitives

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dpu"
)

func testCore(t testing.TB) *dpu.Core {
	t.Helper()
	return dpu.MustNew(dpu.DefaultConfig()).Core(0)
}

func col(w coltypes.Width, vals ...int64) coltypes.Data {
	return coltypes.FromInt64s(w, vals)
}

func TestCmpOps(t *testing.T) {
	type c struct {
		op   CmpOp
		a, b int64
		want bool
	}
	cases := []c{
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, 4, 5, true}, {LT, 5, 5, false},
		{LE, 5, 5, true}, {LE, 6, 5, false},
		{GT, 6, 5, true}, {GT, 5, 5, false},
		{GE, 5, 5, true}, {GE, 4, 5, false},
	}
	for _, tc := range cases {
		if got := cmp(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("%d %v %d = %v", tc.a, tc.op, tc.b, got)
		}
	}
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		neg := op.Negate()
		for a := int64(-2); a <= 2; a++ {
			for b := int64(-2); b <= 2; b++ {
				if cmp(op, a, b) == cmp(neg, a, b) {
					t.Fatalf("%v and its negation agree on (%d,%d)", op, a, b)
				}
				if cmp(op, a, b) != cmp(op.Swap(), b, a) {
					t.Fatalf("%v swap wrong on (%d,%d)", op, a, b)
				}
			}
		}
	}
	if EQ.String() != "EQ" || CmpOp(99).String() == "" {
		t.Fatal("String")
	}
}

func TestFilterConstBVAllWidths(t *testing.T) {
	core := testCore(t)
	for _, w := range []coltypes.Width{coltypes.W1, coltypes.W2, coltypes.W4, coltypes.W8} {
		d := col(w, 1, 5, 3, 5, 7, 5, 0)
		bv := bits.NewVector(d.Len())
		hits := FilterConstBV(core, d, EQ, 5, bv)
		if hits != 3 || bv.Count() != 3 {
			t.Fatalf("w%d: hits=%d count=%d", w, hits, bv.Count())
		}
		if !bv.Test(1) || !bv.Test(3) || !bv.Test(5) || bv.Test(0) {
			t.Fatalf("w%d: wrong rows: %s", w, bv)
		}
	}
	if core.Cycles() == 0 {
		t.Fatal("filter should charge cycles")
	}
}

func TestFilterConstBVMaskedChain(t *testing.T) {
	// Chained predicates as in Listing 1: second filter sees only rows that
	// passed the first.
	core := testCore(t)
	a := col(coltypes.W4, 10, 20, 30, 40, 50, 60)
	b := col(coltypes.W4, 1, 1, 2, 2, 1, 2)
	bv1 := bits.NewVector(6)
	FilterConstBV(core, a, GT, 25, bv1) // rows 2,3,4,5
	bv2 := bits.NewVector(6)
	hits := FilterConstBVMasked(core, b, EQ, 2, bv1, bv2) // rows 2,3,5
	if hits != 3 || !bv2.Test(2) || !bv2.Test(3) || !bv2.Test(5) {
		t.Fatalf("chain wrong: hits=%d %s", hits, bv2)
	}
	if bv2.Test(1) {
		t.Fatal("row 1 failed first predicate but passed second")
	}
	// Masked filter cost: per-candidate work plus the bit-vector word scan
	// (the BVLD loop must touch every word) — far below the dense cost but
	// not free.
	c1 := testCore(t)
	big := coltypes.New(coltypes.W4, 100000)
	sparse := bits.NewVector(100000)
	sparse.Set(5)
	out := bits.NewVector(100000)
	FilterConstBVMasked(c1, big, EQ, 0, sparse, out)
	words := int64((100000 + 63) / 64)
	if cy := int64(c1.Cycles()); cy < 3*words || cy > 4*words+100 {
		t.Fatalf("masked filter on 1 candidate charged %d cycles, want ~%d (word scan)", cy, 3*words)
	}
	if int64(c1.Cycles()) > int64(FilterCost(100000))/10 {
		t.Fatal("sparse masked filter should be far cheaper than a dense pass")
	}
}

func TestFilterConstRIDs(t *testing.T) {
	core := testCore(t)
	d := col(coltypes.W2, 5, 1, 5, 2, 5)
	rids := FilterConstRIDs(core, d, EQ, 5, nil, nil)
	if len(rids) != 3 || rids[0] != 0 || rids[1] != 2 || rids[2] != 4 {
		t.Fatalf("dense RIDs = %v", rids)
	}
	// Chained through a candidate list.
	d2 := col(coltypes.W2, 9, 9, 7, 9, 7)
	rids2 := FilterConstRIDs(core, d2, EQ, 7, rids, nil)
	if len(rids2) != 2 || rids2[0] != 2 || rids2[1] != 4 {
		t.Fatalf("chained RIDs = %v", rids2)
	}
}

func TestFilterBetween(t *testing.T) {
	core := testCore(t)
	d := col(coltypes.W4, 5, 15, 25, 35, 45)
	bv := bits.NewVector(5)
	hits := FilterBetweenBV(core, d, 10, 40, nil, bv)
	if hits != 3 || !bv.Test(1) || !bv.Test(2) || !bv.Test(3) {
		t.Fatalf("between: hits=%d %s", hits, bv)
	}
	// Masked variant.
	in := bits.NewVector(5)
	in.Set(1)
	in.Set(4)
	bv2 := bits.NewVector(5)
	if hits := FilterBetweenBV(core, d, 10, 50, in, bv2); hits != 2 || !bv2.Test(1) || !bv2.Test(4) {
		t.Fatalf("masked between wrong: %d %s", hits, bv2)
	}
	// Bounds clamping: range entirely above a W1 domain matches nothing.
	small := col(coltypes.W1, 1, 2, 3)
	bv3 := bits.NewVector(3)
	if hits := FilterBetweenBV(core, small, 300, 400, nil, bv3); hits != 0 {
		t.Fatal("clamped-empty range should match nothing")
	}
	// Range straddling the domain clamps correctly.
	bv4 := bits.NewVector(3)
	if hits := FilterBetweenBV(core, small, 2, 1000, nil, bv4); hits != 2 {
		t.Fatalf("straddling range hits = %d", hits)
	}
}

func TestFilterColCol(t *testing.T) {
	core := testCore(t)
	a := col(coltypes.W4, 1, 5, 3, 7)
	b := col(coltypes.W4, 2, 4, 3, 9)
	bv := bits.NewVector(4)
	if hits := FilterColColBV(core, a, b, LT, nil, bv); hits != 2 || !bv.Test(0) || !bv.Test(3) {
		t.Fatalf("colcol LT: %d %s", hits, bv)
	}
	// Mixed widths widen.
	c := col(coltypes.W8, 2, 4, 3, 9)
	bv2 := bits.NewVector(4)
	if hits := FilterColColBV(core, a, c, EQ, nil, bv2); hits != 1 || !bv2.Test(2) {
		t.Fatalf("mixed width colcol: %d %s", hits, bv2)
	}
}

func TestFilterInSet(t *testing.T) {
	core := testCore(t)
	codes := col(coltypes.W4, 0, 1, 2, 3, 1, 9)
	set := bits.NewVector(4)
	set.Set(1)
	set.Set(3)
	bv := bits.NewVector(6)
	hits := FilterInSetBV(core, codes, set, nil, bv)
	if hits != 3 || !bv.Test(1) || !bv.Test(3) || !bv.Test(4) {
		t.Fatalf("inset: %d %s", hits, bv)
	}
	if bv.Test(5) {
		t.Fatal("out-of-domain code 9 must not match")
	}
}

func TestDegenerateConstants(t *testing.T) {
	core := testCore(t)
	d := col(coltypes.W1, 1, 2, 3) // domain [-128,127]
	bv := bits.NewVector(3)
	if hits := FilterConstBV(core, d, LT, 1000, bv); hits != 3 {
		t.Fatalf("x < 1000 over W1 should be all: %d", hits)
	}
	bv2 := bits.NewVector(3)
	if hits := FilterConstBV(core, d, GT, 1000, bv2); hits != 0 {
		t.Fatalf("x > 1000 over W1 should be none: %d", hits)
	}
	bv3 := bits.NewVector(3)
	if hits := FilterConstBV(core, d, EQ, -1000, bv3); hits != 0 {
		t.Fatal("x == -1000 over W1 should be none")
	}
	bv4 := bits.NewVector(3)
	if hits := FilterConstBV(core, d, GE, -1000, bv4); hits != 3 {
		t.Fatal("x >= -1000 over W1 should be all")
	}
	// Masked and RID variants agree.
	in := bits.NewVectorAllSet(3)
	bv5 := bits.NewVector(3)
	if hits := FilterConstBVMasked(core, d, NE, 1000, in, bv5); hits != 3 {
		t.Fatal("masked degenerate NE wrong")
	}
	if rids := FilterConstRIDs(core, d, LE, 1000, nil, nil); len(rids) != 3 {
		t.Fatal("RID degenerate LE wrong")
	}
}

// Property: BV and RID filter variants agree with a reference evaluation.
func TestFilterVariantsAgree(t *testing.T) {
	f := func(seed int64, opRaw uint8, cval int16) bool {
		rng := rand.New(rand.NewSource(seed))
		op := CmpOp(int(opRaw) % 6)
		n := rng.Intn(300) + 1
		d := coltypes.New(coltypes.W2, n)
		for i := 0; i < n; i++ {
			d.Set(i, int64(int16(rng.Intn(1<<16)-(1<<15))))
		}
		bv := bits.NewVector(n)
		hits := FilterConstBV(nil, d, op, int64(cval), bv)
		rids := FilterConstRIDs(nil, d, op, int64(cval), nil, nil)
		if hits != len(rids) {
			return false
		}
		ref := 0
		for i := 0; i < n; i++ {
			if cmp(op, d.Get(i), int64(cval)) {
				ref++
				if !bv.Test(i) {
					return false
				}
			}
		}
		return ref == hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The headline micro-benchmark of §7.2: the modeled filter rate must be
// ~482 M rows/s per core (1.65 cycles/row at 800 MHz).
func TestFilterRateCalibration(t *testing.T) {
	core := testCore(t)
	const n = 1 << 20
	d := coltypes.New(coltypes.W4, n)
	bv := bits.NewVector(n)
	FilterConstBV(core, d, EQ, 1, bv)
	cyclesPerRow := float64(core.Cycles()) / n
	if cyclesPerRow < 1.55 || cyclesPerRow > 1.75 {
		t.Fatalf("filter = %.3f cycles/row, want ~1.65", cyclesPerRow)
	}
	rate := 800e6 / cyclesPerRow
	if rate < 455e6 || rate > 520e6 {
		t.Fatalf("filter rate = %.0f rows/s/core, want ~482M", rate)
	}
}
