package qgen

import (
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/storage"
)

// regressScenario is a minimal fixed table used to pin engine bugs the
// harness surfaced; the SQL below is the minimized reproducer in each case.
func regressScenario() *Scenario {
	return &Scenario{
		Seed: 0,
		Tables: []*Table{{
			Name: "t0",
			Cols: []Column{
				{Name: "k0", Kind: KInt, Type: coltypes.Int(), Hi: 20},
				{Name: "a0", Kind: KInt, Type: coltypes.Int(), Hi: 99},
			},
			Rows: [][]storage.Value{
				{storage.IntValue(3), storage.IntValue(30)},
				{storage.IntValue(1), storage.IntValue(10)},
				{storage.IntValue(2), storage.IntValue(20)},
			},
		}},
	}
}

// Regression: ORDER BY ... LIMIT 0 returned 1 row on RAPID (qcomp fuses
// Sort+Limit into TopK, and ops.TopK clamped k <= 0 up to 1) while the host
// correctly returned none.
func TestRegressLimitZeroWithOrderBy(t *testing.T) {
	r, err := NewRunner(regressScenario())
	if err != nil {
		t.Fatal(err)
	}
	if m := r.CheckSQL("SELECT a0 FROM t0 ORDER BY a0 LIMIT 0"); m != nil {
		t.Fatalf("%s", m.Reproducer())
	}
}

// Regression: MIN/MAX over an empty input leaked the int64 identity
// sentinels (MaxInt64/MinInt64) out of qcomp's scalar finalization; the
// host row engine emits a zero row for scalar aggregates over no input.
func TestRegressMinMaxOverEmptyInput(t *testing.T) {
	r, err := NewRunner(regressScenario())
	if err != nil {
		t.Fatal(err)
	}
	if m := r.CheckSQL("SELECT MIN(a0), MAX(a0), SUM(a0), COUNT(a0), AVG(a0) FROM t0 WHERE a0 > 100"); m != nil {
		t.Fatalf("%s", m.Reproducer())
	}
}

// Regression: a scan of a wide table feeding a narrow projection exhausted
// DMEM on ModeDPU. Task formation sized the scan's double buffers from the
// pipeline's post-projection width (1 column) while the relation accessor
// allocated buffers for every streamed source column, so three or more wide
// columns overflowed the 32 KiB scratchpad and the forced offload fell back
// to the host. ModeX86 was unaffected (zero-copy path).
func TestRegressWideScanNarrowProjection(t *testing.T) {
	sc := &Scenario{
		Seed: 0,
		Tables: []*Table{
			{
				Name: "t0",
				Cols: []Column{
					{Name: "k0", Kind: KInt, Type: coltypes.Int(), Hi: 20},
					{Name: "a0", Kind: KInt, Type: coltypes.Int(), Hi: 99},
					{Name: "b0", Kind: KInt, Type: coltypes.Int(), Hi: 99},
					{Name: "c0", Kind: KInt, Type: coltypes.Int(), Hi: 99},
				},
				Rows: [][]storage.Value{
					{storage.IntValue(1), storage.IntValue(10), storage.IntValue(11), storage.IntValue(12)},
					{storage.IntValue(2), storage.IntValue(20), storage.IntValue(21), storage.IntValue(22)},
					{storage.IntValue(2), storage.IntValue(25), storage.IntValue(26), storage.IntValue(27)},
				},
			},
			{
				Name: "t1",
				Cols: []Column{
					{Name: "k1", Kind: KInt, Type: coltypes.Int(), Hi: 20},
				},
				Rows: [][]storage.Value{
					{storage.IntValue(2)},
					{storage.IntValue(3)},
				},
			},
		},
	}
	r, err := NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT a0 FROM t0 LEFT JOIN t1 ON (k0 = k1)",
		"SELECT a0 FROM t0 JOIN t1 ON (k0 = k1)",
	} {
		if m := r.CheckSQL(sql); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
	}
}

// Regression: GROUP BY with more distinct groups than the optimizer
// predicted made the low-NDV in-pipeline group table overflow fatally
// ("ops: group table overflow") instead of adapting. A tautological filter
// shrank the row estimate (and with it maxGroups) while every row survived,
// so both RAPID modes failed and ForceOffload silently fell back. The
// runtime now retries with the partitioned high-NDV strategy.
func TestRegressGroupTableOverflowFallback(t *testing.T) {
	const n = 400
	rows := make([][]storage.Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []storage.Value{storage.IntValue(int64(i % 20)), storage.IntValue(int64(i))}
	}
	sc := &Scenario{
		Seed: 0,
		Tables: []*Table{{
			Name: "t0",
			Cols: []Column{
				{Name: "k0", Kind: KInt, Type: coltypes.Int(), Hi: 20},
				{Name: "a0", Kind: KInt, Type: coltypes.Int(), Hi: 999},
			},
			Rows: rows,
		}},
	}
	r, err := NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m := r.CheckSQL("SELECT k0, a0, SUM(1) FROM t0 WHERE (a0 BETWEEN a0 AND a0) GROUP BY k0, a0"); m != nil {
		t.Fatalf("%s", m.Reproducer())
	}
}

// Regression: LEFT JOIN against an EMPTY build side with a string payload
// column panicked ("encoding: dict code 0 out of range"). Unmatched probe
// rows pad the build payload with code 0, which an empty dictionary cannot
// decode; both rendering the result and evaluating a string predicate over
// the padded rows in the host row interpreter hit Dict.Value. Out-of-range
// codes now decode as '' (the NULL-free engine's padding value).
func TestRegressEmptyBuildSideStringPayload(t *testing.T) {
	sc := &Scenario{
		Seed: 0,
		Tables: []*Table{
			{
				Name: "t0",
				Cols: []Column{
					{Name: "k0", Kind: KInt, Type: coltypes.Int(), Hi: 20},
					{Name: "b0", Kind: KStrLow, Type: coltypes.String(), Strs: []string{"cedar", "elm"}},
				},
				Rows: nil, // empty build side: its dictionary has no codes
			},
			{
				Name: "t1",
				Cols: []Column{
					{Name: "k1", Kind: KInt, Type: coltypes.Int(), Hi: 20},
					{Name: "a1", Kind: KInt, Type: coltypes.Int(), Hi: 99},
				},
				Rows: [][]storage.Value{
					{storage.IntValue(1), storage.IntValue(10)},
					{storage.IntValue(2), storage.IntValue(20)},
				},
			},
		},
	}
	r, err := NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT b0, a1 FROM t1 LEFT JOIN t0 ON (k1 = k0)",
		"SELECT a1 FROM t1 LEFT JOIN t0 ON (k1 = k0) WHERE ((b0 = 'cedar') OR (a1 <= 15))",
	} {
		if m := r.CheckSQL(sql); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
	}
}

// Regression: the binder pushed single-table WHERE conjuncts below the join
// unconditionally. For the nullable side of a LEFT JOIN that is wrong —
// filtering the build input first turns probe rows that lose their match
// into padded output rows instead of dropping them. Likewise a WHERE
// equality spanning the nullable side was merged into the join keys. Found
// by the TLP check (Q vs partition union on the same engine), so this pins
// exact row counts on the host lane rather than a cross-engine diff.
func TestRegressLeftJoinWherePushdown(t *testing.T) {
	sc := &Scenario{
		Seed: 0,
		Tables: []*Table{
			{
				Name: "t1",
				Cols: []Column{
					{Name: "k1", Kind: KInt, Type: coltypes.Int(), Hi: 20},
					{Name: "a1", Kind: KInt, Type: coltypes.Int(), Hi: 99},
				},
				Rows: [][]storage.Value{
					{storage.IntValue(1), storage.IntValue(7)},
					{storage.IntValue(5), storage.IntValue(9)},
				},
			},
			{
				Name: "t2",
				Cols: []Column{
					{Name: "k2", Kind: KInt, Type: coltypes.Int(), Hi: 20},
					{Name: "b2", Kind: KInt, Type: coltypes.Int(), Hi: 99},
				},
				Rows: [][]storage.Value{
					{storage.IntValue(5), storage.IntValue(8)},
				},
			},
		},
	}
	r, err := NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sql  string
		rows int
	}{
		// Only the padded row (k2 = 0) passes NOT BETWEEN; pushing the
		// filter into t2 empties the build side and pads BOTH probe rows.
		{"SELECT k1, k2 FROM t1 LEFT JOIN t2 ON (k1 = k2) WHERE (NOT (k2 BETWEEN 2 AND 12))", 1},
		// a1 = b2 holds for no joined row (7 vs padding 0, 9 vs 8); merged
		// into the join keys it instead pads both rows and drops the filter.
		{"SELECT k1 FROM t1 LEFT JOIN t2 ON (k1 = k2) WHERE (a1 = b2)", 0},
	}
	for _, tc := range cases {
		if m := r.CheckSQL(tc.sql); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
		res, err := r.primary.Query(tc.sql, engines[0].opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if got := res.Rel.Rows(); got != tc.rows {
			t.Fatalf("%s: got %d rows, want %d", tc.sql, got, tc.rows)
		}
	}
}

// Regression companion for the parser EOF fix: predicates and IS NULL fold
// through the whole differential stack.
func TestRegressIsNullFolding(t *testing.T) {
	r, err := NewRunner(regressScenario())
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT a0 FROM t0 WHERE a0 IS NULL",
		"SELECT a0 FROM t0 WHERE a0 IS NOT NULL",
		"SELECT a0 FROM t0 WHERE (a0 + 1) IS NULL OR a0 > 15",
	} {
		if m := r.CheckSQL(sql); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
	}
}
