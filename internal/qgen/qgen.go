// Package qgen is a randomized differential and metamorphic testing harness
// for the full SQL pipeline (parse → bind → compile → execute). It generates
// seeded random schemas, data and SQL query strings, then executes each
// query on the three engines — the hostdb row interpreter, RAPID ModeX86 and
// RAPID ModeDPU — plus a second database loaded with a different physical
// layout (partitioned, small chunks, RLE), and asserts bag-equality of the
// rendered results. On top of the differential check it runs metamorphic
// checks: TLP-style predicate partitioning (Q ≡ Q WHERE p ⊎ Q WHERE NOT p ⊎
// Q WHERE p IS NULL), tautology/contradiction injection, and the
// layout-equivalence check implied by the second database.
//
// The engine's value domain has no NULL: every column is NOT NULL and all
// expressions are total, so the IS NULL branch of TLP is legitimately
// constant-empty but still exercises the parse/bind/fold path.
//
// Everything is deterministic for a fixed seed. On a mismatch the runner
// produces a replayable {seed, query, schema+data} reproducer and the
// minimizer shrinks the query at the AST level while the mismatch persists.
package qgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Generator produces random scenarios and queries from a seeded PRNG.
type Generator struct {
	seed int64
	rng  *rand.Rand
	sc   *Scenario
}

// New creates a generator. The same seed always yields the same scenario and
// query sequence.
func New(seed int64) *Generator {
	return &Generator{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Scenario returns the current scenario (nil before NewScenario).
func (g *Generator) Scenario() *Scenario { return g.sc }

func (g *Generator) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return g.rng.Intn(n)
}

func (g *Generator) chance(p float64) bool { return g.rng.Float64() < p }

func (g *Generator) pick(ss []string) string { return ss[g.intn(len(ss))] }

// dateStr formats a day number (days since 1970-01-01) as yyyy-mm-dd,
// matching Relation.Render.
func dateStr(days int64) string {
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	m := mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// Mismatch describes one differential or metamorphic failure with everything
// needed to replay it.
type Mismatch struct {
	Seed     int64
	SQL      string
	Check    string // "differential", "order", "tlp", "tautology", ...
	Detail   string
	Scenario *Scenario
	// Minimized is filled by Runner.Minimize when a smaller failing query
	// was found.
	Minimized string
}

// Error implements error.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("qgen %s mismatch (seed %d): %s\n%s", m.Check, m.Seed, m.SQL, m.Detail)
}

// Reproducer renders the full replayable report: seed, query (and its
// minimized form), and the schema + data of every table.
func (m *Mismatch) Reproducer() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== qgen reproducer ===\n")
	fmt.Fprintf(&b, "check:     %s\n", m.Check)
	fmt.Fprintf(&b, "seed:      %d\n", m.Seed)
	fmt.Fprintf(&b, "query:     %s\n", m.SQL)
	if m.Minimized != "" && m.Minimized != m.SQL {
		fmt.Fprintf(&b, "minimized: %s\n", m.Minimized)
	}
	fmt.Fprintf(&b, "detail:\n%s\n", m.Detail)
	if m.Scenario != nil {
		b.WriteString(m.Scenario.Dump())
	}
	fmt.Fprintf(&b, "replay: go test ./internal/qgen -run Differential -qgen.seed=%d\n", m.Seed)
	return b.String()
}
