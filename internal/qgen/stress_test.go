package qgen

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/storage"
	"rapid/internal/tpch"
)

// TestConcurrentQueriesSharedRegistry runs mixed TPC-H and generated queries
// from many goroutines against one database with a shared metrics registry,
// while a writer mutates a scratch table and checkpoints. Run under
// `go test -race`; the assertions also pin the registry totals.
func TestConcurrentQueriesSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	db := hostdb.NewWithMetrics(reg)
	if err := tpch.PopulateHostDB(db, tpch.Config{ScaleFactor: 0.002, Seed: 7}); err != nil {
		t.Fatal(err)
	}

	// Load one generated scenario into the same database (its t0..tN names
	// are disjoint from the TPC-H tables).
	g := New(42)
	sc := g.NewScenario()
	for _, tab := range sc.Tables {
		schema := make([]storage.ColumnDef, len(tab.Cols))
		for i, c := range tab.Cols {
			schema[i] = storage.ColumnDef{Name: c.Name, Type: c.Type}
		}
		if _, err := db.CreateTable(tab.Name, storage.MustSchema(schema...)); err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) > 0 {
			if _, err := db.Insert(tab.Name, tab.Rows); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.Load(tab.Name, hostdb.LoadOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	// Scratch table for the concurrent writer; queries never touch it, so
	// the queried tables stay admissible throughout.
	if _, err := db.CreateTable("scratch", storage.MustSchema(storage.ColumnDef{Name: "v", Type: coltypes.Int()})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load("scratch", hostdb.LoadOptions{}); err != nil {
		t.Fatal(err)
	}

	var issued atomic.Int64
	runQ := func(sql string, opts hostdb.QueryOptions) error {
		issued.Add(1)
		res, err := db.Query(sql, opts)
		if err != nil {
			return err
		}
		if res.FellBack {
			return fmt.Errorf("fell back to host")
		}
		if res.Profile != nil {
			if ierr := res.Profile.CheckInvariants(); ierr != nil {
				return fmt.Errorf("profile invariants: %w", ierr)
			}
			if ierr := res.Profile.CheckEnergyInvariants(power.DefaultEnergyModel()); ierr != nil {
				return fmt.Errorf("energy invariants: %w", ierr)
			}
		}
		return nil
	}

	lanes := []hostdb.QueryOptions{
		{Mode: hostdb.ForceHost},
		{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true, Profile: true},
		{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU, FailOnInadmissible: true, Profile: true},
	}

	// Query pool: the generated queries the host accepts, plus TPC-H Q1/Q6.
	var pool []string
	for i := 0; i < 12; i++ {
		sql := g.NextQuery().SQL()
		if err := runQ(sql, lanes[0]); err == nil {
			pool = append(pool, sql)
		}
	}
	if len(pool) < 4 {
		t.Fatalf("only %d usable generated queries", len(pool))
	}
	for _, name := range []string{"Q1", "Q6"} {
		for _, q := range tpch.Queries() {
			if q.Name == name {
				pool = append(pool, q.SQL)
			}
		}
	}

	// Telemetry endpoint stays curl-able (valid exposition, no duplicate
	// TYPE lines) while the query storm runs.
	srv, err := db.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	scrape := func() error {
		resp, err := http.Get(srv.URL())
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
			return fmt.Errorf("metrics content type %q", ct)
		}
		seen := map[string]bool{}
		for _, line := range strings.Split(string(body), "\n") {
			if !strings.HasPrefix(line, "# TYPE ") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("malformed TYPE line %q", line)
			}
			if seen[fields[2]] {
				return fmt.Errorf("duplicate TYPE for %s", fields[2])
			}
			seen[fields[2]] = true
		}
		if !seen["hostdb_queries_total"] {
			return fmt.Errorf("exposition missing hostdb_queries_total:\n%s", body)
		}
		return nil
	}

	const workers = 8
	const itersPerWorker = 24
	errCh := make(chan error, workers*itersPerWorker+16)
	var wg sync.WaitGroup
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			if err := scrape(); err != nil {
				errCh <- fmt.Errorf("mid-storm scrape: %w", err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < itersPerWorker; i++ {
				sql := pool[(w+i)%len(pool)]
				opts := lanes[(w+i)%len(lanes)]
				if err := runQ(sql, opts); err != nil {
					errCh <- fmt.Errorf("worker %d iter %d (%s): %w", w, i, sql, err)
					return
				}
			}
		}(w)
	}
	// Concurrent writer: journal mutations plus checkpoints exercise the
	// checkpoint-lag gauge while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.Insert("scratch", [][]storage.Value{{storage.IntValue(int64(i))}}); err != nil {
				errCh <- fmt.Errorf("writer insert: %w", err)
				return
			}
			if i%8 == 7 {
				if err := db.CheckpointAll(); err != nil {
					errCh <- fmt.Errorf("writer checkpoint: %w", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(scrapeStop)
	<-scrapeDone
	// One final scrape after the storm: counters at rest must still serve.
	if err := scrape(); err != nil {
		t.Error(err)
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	if err := db.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Values()
	if got, want := snap["hostdb_queries_total"], issued.Load(); got != want {
		t.Errorf("hostdb_queries_total = %d, want %d", got, want)
	}
	if snap["hostdb_queries_failed"] != 0 {
		t.Errorf("hostdb_queries_failed = %d, want 0", snap["hostdb_queries_failed"])
	}
	if snap["hostdb_queries_offloaded"] == 0 {
		t.Error("no offloaded queries counted")
	}
	if snap["hostdb_checkpoints_total"] == 0 {
		t.Error("no checkpoints counted")
	}
	if lag := snap["hostdb_checkpoint_lag_entries"]; lag != 0 {
		t.Errorf("checkpoint lag gauge = %d after CheckpointAll, want 0", lag)
	}
}
