package qgen

import (
	"fmt"
	"strings"

	"rapid/internal/sqlparse"
)

// renderStmt turns a parsed statement back into SQL. Round-tripping through
// sqlparse is what lets the minimizer shrink failing queries at the AST
// level instead of by string surgery.
func renderStmt(s *sqlparse.SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(renderExpr(it.Expr))
		if it.As != "" {
			b.WriteString(" AS ")
			b.WriteString(it.As)
		}
	}
	b.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(renderTableRef(tr))
	}
	for _, j := range s.Joins {
		if j.Kind == "LEFT" {
			b.WriteString(" LEFT JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		b.WriteString(renderTableRef(j.Table))
		b.WriteString(" ON ")
		b.WriteString(renderPred(j.On))
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(renderPred(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderExpr(e))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(renderPred(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.SetOp != "" && s.SetRight != nil {
		b.WriteString(" ")
		b.WriteString(s.SetOp)
		b.WriteString(" ")
		b.WriteString(renderStmt(s.SetRight))
	}
	return b.String()
}

func renderTableRef(tr sqlparse.TableRef) string {
	if tr.Alias != "" && tr.Alias != tr.Name {
		return tr.Name + " " + tr.Alias
	}
	return tr.Name
}

func renderExpr(e sqlparse.AstExpr) string {
	switch ex := e.(type) {
	case *sqlparse.ColName:
		if ex.Table != "" {
			return ex.Table + "." + ex.Name
		}
		return ex.Name
	case *sqlparse.NumLit:
		return ex.Text
	case *sqlparse.StrLit:
		return "'" + ex.Val + "'"
	case *sqlparse.DateLit:
		return "DATE '" + dateStr(ex.Days) + "'"
	case *sqlparse.BinExpr:
		return "(" + renderExpr(ex.L) + " " + ex.Op + " " + renderExpr(ex.R) + ")"
	case *sqlparse.CaseExpr:
		return "CASE WHEN " + renderPred(ex.Cond) +
			" THEN " + renderExpr(ex.Then) +
			" ELSE " + renderExpr(ex.Else) + " END"
	case *sqlparse.FuncExpr:
		var b strings.Builder
		b.WriteString(ex.Name)
		b.WriteString("(")
		if ex.Star {
			b.WriteString("*")
		} else if ex.Arg != nil {
			b.WriteString(renderExpr(ex.Arg))
		}
		b.WriteString(")")
		if ex.Over != nil {
			b.WriteString(" OVER (")
			if len(ex.Over.PartitionBy) > 0 {
				b.WriteString("PARTITION BY ")
				for i, p := range ex.Over.PartitionBy {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(renderExpr(p))
				}
			}
			if len(ex.Over.OrderBy) > 0 {
				if len(ex.Over.PartitionBy) > 0 {
					b.WriteString(" ")
				}
				b.WriteString("ORDER BY ")
				for i, o := range ex.Over.OrderBy {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(renderExpr(o.Expr))
					if o.Desc {
						b.WriteString(" DESC")
					}
				}
			}
			b.WriteString(")")
		}
		return b.String()
	}
	return "?"
}

func renderPred(p sqlparse.AstPred) string {
	switch pr := p.(type) {
	case *sqlparse.CmpPred:
		return "(" + renderExpr(pr.L) + " " + pr.Op + " " + renderExpr(pr.R) + ")"
	case *sqlparse.BetweenP:
		return "(" + renderExpr(pr.E) + " BETWEEN " + renderExpr(pr.Lo) +
			" AND " + renderExpr(pr.Hi) + ")"
	case *sqlparse.InP:
		var b strings.Builder
		b.WriteString("(")
		b.WriteString(renderExpr(pr.E))
		if pr.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if pr.Sub != nil {
			b.WriteString(renderStmt(pr.Sub))
		} else {
			for i, it := range pr.List {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(renderExpr(it))
			}
		}
		b.WriteString("))")
		return b.String()
	case *sqlparse.LikeP:
		not := ""
		if pr.Not {
			not = "NOT "
		}
		return "(" + renderExpr(pr.E) + " " + not + "LIKE '" + pr.Pattern + "')"
	case *sqlparse.IsNullP:
		not := ""
		if pr.Not {
			not = "NOT "
		}
		return "(" + renderExpr(pr.E) + " IS " + not + "NULL)"
	case *sqlparse.AndP:
		parts := make([]string, len(pr.Preds))
		for i, s := range pr.Preds {
			parts[i] = renderPred(s)
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	case *sqlparse.OrP:
		parts := make([]string, len(pr.Preds))
		for i, s := range pr.Preds {
			parts[i] = renderPred(s)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	case *sqlparse.NotP:
		return "(NOT " + renderPred(pr.P) + ")"
	}
	return "(1 = 1)"
}
