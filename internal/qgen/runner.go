package qgen

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/storage"
)

// engineSpec is one execution lane of the differential check.
type engineSpec struct {
	name string
	alt  bool // run against the alternate-layout database
	opts hostdb.QueryOptions
}

// engines: the hostdb row interpreter is the oracle; both RAPID modes run on
// the primary layout, and ModeX86 additionally runs on a database loaded
// with different qcomp/storage knobs (partitioned, tiny chunks, RLE) so
// physical-plan equivalence is checked on every query.
// Every RAPID lane runs with profiling on, so the soak also checks the
// per-operator accounting invariants (cycle, DMS-byte and row conservation)
// on each generated query.
var engines = []engineSpec{
	{name: "host", opts: hostdb.QueryOptions{Mode: hostdb.ForceHost}},
	{name: "x86", opts: hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true, Profile: true}},
	{name: "dpu", opts: hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU, FailOnInadmissible: true, Profile: true}},
	{name: "x86/partitioned", alt: true, opts: hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true, Profile: true}},
}

// profErr folds a profile-invariant violation into an engine error. The
// energy decomposition is checked alongside the accounting invariants, so
// every soak query also proves span joules sum to whole-query joules and
// stay inside the provisioned-power envelope.
func profErr(res *hostdb.QueryResult) error {
	if res.Profile != nil {
		if err := res.Profile.CheckInvariants(); err != nil {
			return fmt.Errorf("profile invariants: %w", err)
		}
		if err := res.Profile.CheckEnergyInvariants(power.DefaultEnergyModel()); err != nil {
			return fmt.Errorf("energy invariants: %w", err)
		}
	}
	return nil
}

// trayLane is one distributed execution lane: a tray of n nodes over the
// primary database, with every scenario table hash-sharded.
type trayLane struct {
	nodes int
	tray  *cluster.Tray
}

// Runner owns the two databases loaded from a scenario and executes checks.
type Runner struct {
	Sc      *Scenario
	primary *hostdb.Database
	alt     *hostdb.Database
	trays   []trayLane

	// Executed counts engine executions; Rejected counts queries that every
	// engine consistently refused (parse/bind errors), which is fine — the
	// generator probes error paths too.
	Executed int
	Rejected int
}

// NewRunner builds both databases and loads every table: the primary with
// default layout, the alternate with hash partitioning on the join key,
// small chunks and RLE enabled.
func NewRunner(sc *Scenario) (*Runner, error) {
	r := &Runner{Sc: sc, primary: hostdb.New(), alt: hostdb.New()}
	for _, spec := range []struct {
		db   *hostdb.Database
		opts hostdb.LoadOptions
	}{
		{r.primary, hostdb.LoadOptions{}},
		{r.alt, hostdb.LoadOptions{Partitions: 4, PartitionKey: 0, ChunkRows: 7, TryRLE: true}},
	} {
		for _, t := range sc.Tables {
			schema := make([]storage.ColumnDef, len(t.Cols))
			for i, c := range t.Cols {
				schema[i] = storage.ColumnDef{Name: c.Name, Type: c.Type}
			}
			if _, err := spec.db.CreateTable(t.Name, storage.MustSchema(schema...)); err != nil {
				return nil, err
			}
			if len(t.Rows) > 0 {
				if _, err := spec.db.Insert(t.Name, t.Rows); err != nil {
					return nil, err
				}
			}
			if _, err := spec.db.Load(t.Name, spec.opts); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// EnableTrays adds a distributed differential lane per node count: each is a
// tray of n SoC nodes over the primary database with every scenario table
// hash-sharded (ReplicateMaxRows < 0), so exchange operators, repartitioning
// joins and empty shards are exercised on every generated query.
func (r *Runner) EnableTrays(nodeCounts []int) error {
	for _, n := range nodeCounts {
		tray, err := cluster.New(r.primary, cluster.Config{Nodes: n, ReplicateMaxRows: -1})
		if err != nil {
			return err
		}
		for _, t := range r.Sc.Tables {
			if err := tray.Load(t.Name, nil); err != nil {
				tray.Close()
				return fmt.Errorf("tray(%d): load %s: %w", n, t.Name, err)
			}
		}
		r.trays = append(r.trays, trayLane{nodes: n, tray: tray})
	}
	return nil
}

// Close stops the scheduler worker pools and background machinery of both
// databases. The Runner is unusable afterwards.
func (r *Runner) Close() {
	for _, tl := range r.trays {
		tl.tray.Close()
	}
	r.primary.Close()
	r.alt.Close()
}

// CheckJournal verifies the query-journal bookkeeping after a soak: every
// engine execution the runner issued appears in exactly one journal with a
// terminal outcome (tray-lane queries journal into the primary database's
// journal), the cumulative outcome counters account for every record, and
// no query is stuck in the active table. Call it once at the end of a run —
// it compares totals, so partial checks mid-soak would race in-flight
// queries.
func (r *Runner) CheckJournal() *Mismatch {
	var total int64
	for _, db := range []*hostdb.Database{r.primary, r.alt} {
		j := db.QueryJournal()
		var sum int64
		for _, o := range []obs.QueryOutcome{obs.OutcomeOK, obs.OutcomeShed, obs.OutcomeCanceled, obs.OutcomeError} {
			sum += j.OutcomeCount(o)
		}
		if sum != j.Total() {
			return r.mismatch("journal", "", fmt.Sprintf(
				"outcome counters sum to %d but the journal total is %d", sum, j.Total()))
		}
		total += j.Total()
	}
	if total != int64(r.Executed) {
		return r.mismatch("journal", "", fmt.Sprintf(
			"journals hold %d records but the runner issued %d engine executions", total, r.Executed))
	}
	for _, db := range []*hostdb.Database{r.primary, r.alt} {
		if act := db.ActiveQueries(); len(act) != 0 {
			return r.mismatch("journal", "", fmt.Sprintf(
				"%d queries still in the active table after the soak", len(act)))
		}
	}
	return nil
}

// engineRun is one engine's outcome for a query.
type engineRun struct {
	name string
	rel  *ops.Relation
	err  error
}

func (r *Runner) runAll(sql string) []engineRun {
	out := make([]engineRun, len(engines), len(engines)+len(r.trays))
	for i, e := range engines {
		db := r.primary
		if e.alt {
			db = r.alt
		}
		res, err := db.Query(sql, e.opts)
		r.Executed++
		switch {
		case err != nil:
			out[i] = engineRun{name: e.name, err: err}
		case res.FellBack:
			// ForceOffload fell back: RAPID execution itself failed while
			// the host could run the plan — that is a real engine bug.
			out[i] = engineRun{name: e.name, err: fmt.Errorf("RAPID execution fell back to host")}
		default:
			if perr := profErr(res); perr != nil {
				out[i] = engineRun{name: e.name, err: perr}
			} else {
				out[i] = engineRun{name: e.name, rel: res.Rel}
			}
		}
	}
	for _, tl := range r.trays {
		name := fmt.Sprintf("tray%d", tl.nodes)
		res, err := tl.tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeX86})
		r.Executed++
		if err != nil {
			out = append(out, engineRun{name: name, err: err})
		} else {
			out = append(out, engineRun{name: name, rel: res.Rel})
		}
	}
	return out
}

// bag renders every row of a relation and returns the sorted multiset.
func bag(rel *ops.Relation) []string {
	n := rel.Rows()
	rows := make([]string, n)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.Reset()
		for c := 0; c < rel.NumCols(); c++ {
			sb.WriteString(rel.Render(i, c))
			sb.WriteByte(0)
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return rows
}

func diffBags(a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("row count %d vs %d", len(a), len(b))
	}
	shown := 0
	var sb strings.Builder
	for i := range a {
		if a[i] != b[i] {
			fmt.Fprintf(&sb, "row %d: %q vs %q; ", i,
				strings.ReplaceAll(a[i], "\x00", "|"), strings.ReplaceAll(b[i], "\x00", "|"))
			if shown++; shown >= 5 {
				sb.WriteString("...")
				break
			}
		}
	}
	return sb.String()
}

func (r *Runner) mismatch(check, sql, detail string) *Mismatch {
	return &Mismatch{Seed: r.Sc.Seed, SQL: sql, Check: check, Detail: detail, Scenario: r.Sc}
}

// CheckSQL runs the bare differential check on a SQL string: every engine
// must agree with the host on the rendered result bag, or every engine must
// reject the query. Returns nil when consistent.
func (r *Runner) CheckSQL(sql string) *Mismatch {
	runs := r.runAll(sql)
	host := runs[0]
	if host.err != nil {
		var okEngines []string
		for _, e := range runs[1:] {
			if e.err == nil {
				okEngines = append(okEngines, e.name)
			}
		}
		if len(okEngines) > 0 {
			return r.mismatch("differential", sql, fmt.Sprintf(
				"host rejected the query (%v) but %v executed it", host.err, okEngines))
		}
		r.Rejected++
		return nil
	}
	hostBag := bag(host.rel)
	for _, e := range runs[1:] {
		if e.err != nil {
			return r.mismatch("differential", sql, fmt.Sprintf(
				"host executed the query but %s failed: %v", e.name, e.err))
		}
		if e.rel.NumCols() != host.rel.NumCols() {
			return r.mismatch("differential", sql, fmt.Sprintf(
				"column count host=%d %s=%d", host.rel.NumCols(), e.name, e.rel.NumCols()))
		}
		if d := diffBags(hostBag, bag(e.rel)); d != "" {
			return r.mismatch("differential", sql, fmt.Sprintf("host vs %s: %s", e.name, d))
		}
	}
	return nil
}

// CheckConcurrent executes the same SQL on `parallel` sessions at once —
// cycling through the RAPID lanes, shared databases and all — and
// differentially compares every concurrent result against a serial host
// oracle run. Scheduler bugs (cross-query state leaks, tile-pool corruption,
// accounting races under the shared SoC) surface as ordinary replayable
// mismatches. A lane shed by admission control (ErrOverloaded) is tolerated:
// load shedding is correct behavior, not a wrong answer.
func (r *Runner) CheckConcurrent(sql string, parallel int) *Mismatch {
	if parallel < 2 {
		return nil
	}
	hres, herr := r.primary.Query(sql, engines[0].opts)
	r.Executed++
	if herr != nil {
		// Rejection consistency across engines is already covered by the
		// serial differential check; nothing to race here.
		return nil
	}
	hostBag := bag(hres.Rel)

	specs := engines[1:]
	results := make([]engineRun, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		e := specs[i%len(specs)]
		db := r.primary
		if e.alt {
			db = r.alt
		}
		wg.Add(1)
		go func(slot int, name string, db *hostdb.Database, opts hostdb.QueryOptions) {
			defer wg.Done()
			res, err := db.Query(sql, opts)
			switch {
			case err != nil:
				results[slot] = engineRun{name: name, err: err}
			case res.FellBack:
				results[slot] = engineRun{name: name, err: fmt.Errorf("RAPID execution fell back to host")}
			default:
				if perr := profErr(res); perr != nil {
					results[slot] = engineRun{name: name, err: perr}
				} else {
					results[slot] = engineRun{name: name, rel: res.Rel}
				}
			}
		}(i, e.name, db, e.opts)
	}
	wg.Wait()
	r.Executed += parallel

	for i, lane := range results {
		if lane.err != nil {
			if errors.Is(lane.err, sched.ErrOverloaded) {
				continue
			}
			return r.mismatch("concurrent", sql, fmt.Sprintf(
				"serial host executed but concurrent session %d (%s) failed: %v", i, lane.name, lane.err))
		}
		if lane.rel.NumCols() != hres.Rel.NumCols() {
			return r.mismatch("concurrent", sql, fmt.Sprintf(
				"column count host=%d session %d (%s)=%d", hres.Rel.NumCols(), i, lane.name, lane.rel.NumCols()))
		}
		if d := diffBags(hostBag, bag(lane.rel)); d != "" {
			return r.mismatch("concurrent", sql, fmt.Sprintf(
				"serial host vs concurrent session %d (%s): %s", i, lane.name, d))
		}
	}
	return nil
}

// Check runs the full per-query validation: the differential check plus
// ordering and limit verification when the query declares them.
func (r *Runner) Check(q *Query) *Mismatch {
	sql := q.SQL()
	if m := r.CheckSQL(sql); m != nil {
		return m
	}
	if len(q.SortKeys) == 0 && q.limit < 0 {
		return nil
	}
	runs := r.runAll(sql)
	for _, e := range runs {
		if e.err != nil {
			return nil // consistently rejected; already accounted above
		}
		if q.limit >= 0 && e.rel.Rows() > q.limit {
			return r.mismatch("limit", sql, fmt.Sprintf(
				"%s returned %d rows with LIMIT %d", e.name, e.rel.Rows(), q.limit))
		}
		if err := checkSorted(e.rel, q.SortKeys); err != nil {
			return r.mismatch("order", sql, fmt.Sprintf("%s: %v", e.name, err))
		}
	}
	return nil
}

// checkSorted verifies the relation is ordered on the given output
// positions. Keys are guaranteed non-string by the generator, so the raw
// int64 encodings (ints, day numbers, unscaled decimals, bools) order
// correctly.
func checkSorted(rel *ops.Relation, keys []SortChk) error {
	for row := 1; row < rel.Rows(); row++ {
		for _, k := range keys {
			a := rel.Cols[k.Pos].Data.Get(row - 1)
			b := rel.Cols[k.Pos].Data.Get(row)
			if k.Desc {
				a, b = b, a
			}
			if a < b {
				break
			}
			if a > b {
				return fmt.Errorf("rows %d,%d violate ORDER BY position %d", row-1, row, k.Pos+1)
			}
		}
	}
	return nil
}

// CheckTLP verifies ternary-logic partitioning on every engine: for a
// predicate p := e > c, the base query's bag must equal the union of the
// bags of Q WHERE p, Q WHERE NOT p and Q WHERE e IS NULL. In this NULL-free
// engine the third branch is constant-empty but still exercises the
// parse/bind/fold path.
func (r *Runner) CheckTLP(q *Query) *Mismatch {
	if !q.TLPable() {
		return nil
	}
	ints := intCols(q.scope)
	if len(ints) == 0 {
		return nil
	}
	c := ints[g0(r.Sc.Seed, len(ints))]
	cutoff := c.Hi / 2
	branches := []string{
		fmt.Sprintf("((%s) > (%d))", c.Name, cutoff),
		fmt.Sprintf("(NOT ((%s) > (%d)))", c.Name, cutoff),
		fmt.Sprintf("((%s) IS NULL)", c.Name),
	}
	base := q.SQL()
	for _, e := range engines {
		if e.alt {
			continue
		}
		bres, err := r.primary.Query(base, e.opts)
		r.Executed++
		if err != nil || bres.FellBack {
			return nil // base inconsistencies are caught by Check
		}
		baseBag := bag(bres.Rel)
		var parts []string
		for _, br := range branches {
			pres, perr := r.primary.Query(q.WithConjunct(br), e.opts)
			r.Executed++
			if perr == nil && pres.FellBack {
				perr = fmt.Errorf("RAPID execution fell back to host")
			}
			if perr == nil {
				perr = profErr(pres)
			}
			if perr != nil {
				return r.mismatch("tlp", base, fmt.Sprintf(
					"%s: base executed but branch %q failed: %v", e.name, br, perr))
			}
			parts = append(parts, bag(pres.Rel)...)
		}
		sort.Strings(parts)
		if d := diffBags(baseBag, parts); d != "" {
			return r.mismatch("tlp", base, fmt.Sprintf(
				"%s: Q vs (Q WHERE p ⊎ Q WHERE NOT p ⊎ Q WHERE p IS NULL): %s", e.name, d))
		}
	}
	return nil
}

// CheckPruningMetamorphic verifies zone-map pruning is result-invariant:
// every RAPID lane — and every enabled tray lane — must return the identical
// result bag with pruning force-disabled and enabled. A divergence means a
// zone map rejected a tile (or a shard summary rejected a node fragment)
// that still held qualifying rows. The pruned run keeps profiling on, so the
// pruned+scanned == total-tiles accounting invariant is checked on every
// generated query too (via profErr).
func (r *Runner) CheckPruningMetamorphic(sql string) *Mismatch {
	for _, e := range engines[1:] {
		db := r.primary
		if e.alt {
			db = r.alt
		}
		offOpts := e.opts
		offOpts.DisablePruning = true
		off, offErr := db.Query(sql, offOpts)
		on, onErr := db.Query(sql, e.opts)
		r.Executed += 2
		if offErr != nil || onErr != nil {
			if (offErr == nil) != (onErr == nil) {
				return r.mismatch("pruning", sql, fmt.Sprintf(
					"%s: unpruned err=%v, pruned err=%v", e.name, offErr, onErr))
			}
			continue // consistently rejected
		}
		if perr := profErr(on); perr != nil {
			return r.mismatch("pruning", sql, fmt.Sprintf("%s (pruned): %v", e.name, perr))
		}
		if d := diffBags(bag(off.Rel), bag(on.Rel)); d != "" {
			return r.mismatch("pruning", sql, fmt.Sprintf(
				"%s: unpruned vs pruned: %s", e.name, d))
		}
	}
	for _, tl := range r.trays {
		name := fmt.Sprintf("tray%d", tl.nodes)
		off, offErr := tl.tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeX86, DisablePruning: true})
		on, onErr := tl.tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeX86})
		r.Executed += 2
		if offErr != nil || onErr != nil {
			if (offErr == nil) != (onErr == nil) {
				return r.mismatch("pruning", sql, fmt.Sprintf(
					"%s: unpruned err=%v, pruned err=%v", name, offErr, onErr))
			}
			continue
		}
		if d := diffBags(bag(off.Rel), bag(on.Rel)); d != "" {
			return r.mismatch("pruning", sql, fmt.Sprintf(
				"%s: unpruned vs pruned: %s", name, d))
		}
	}
	return nil
}

// g0 derives a deterministic small index from the scenario seed.
func g0(seed int64, n int) int {
	if seed < 0 {
		seed = -seed
	}
	return int(seed % int64(n))
}

// tautologies over an int column c: each must preserve any query's bag.
func tautologies(c *Column) []string {
	return []string{
		"(1 = 1)",
		fmt.Sprintf("(%s = %s)", c.Name, c.Name),
		fmt.Sprintf("((%s) IS NOT NULL)", c.Name),
		fmt.Sprintf("(%s BETWEEN %s AND %s)", c.Name, c.Name, c.Name),
	}
}

// CheckTautology verifies that ANDing a tautological conjunct preserves the
// result bag on host and ModeX86, and that a contradictory conjunct yields
// engine-consistent results.
func (r *Runner) CheckTautology(q *Query) *Mismatch {
	if !q.TautologyOK() {
		return nil
	}
	ints := intCols(q.scope)
	if len(ints) == 0 {
		return nil
	}
	c := ints[g0(r.Sc.Seed+1, len(ints))]
	taut := tautologies(c)[g0(r.Sc.Seed, 4)]
	base := q.SQL()
	for _, e := range engines[:2] { // host + x86
		bres, err := r.primary.Query(base, e.opts)
		r.Executed++
		if err != nil || bres.FellBack {
			return nil
		}
		tres, terr := r.primary.Query(q.WithConjunct(taut), e.opts)
		r.Executed++
		if terr == nil && tres.FellBack {
			terr = fmt.Errorf("RAPID execution fell back to host")
		}
		if terr == nil {
			terr = profErr(tres)
		}
		if terr != nil {
			return r.mismatch("tautology", base, fmt.Sprintf(
				"%s: base executed but tautology-extended %q failed: %v", e.name, taut, terr))
		}
		if d := diffBags(bag(bres.Rel), bag(tres.Rel)); d != "" {
			return r.mismatch("tautology", base, fmt.Sprintf(
				"%s: AND %s changed the result: %s", e.name, taut, d))
		}
	}
	// Contradiction: run the full differential check on the contradictory
	// query (aggregates over the emptied input still produce a row; the
	// engines must agree on it).
	contra := []string{"(1 = 0)", fmt.Sprintf("((%s) IS NULL)", c.Name)}[g0(r.Sc.Seed, 2)]
	if m := r.CheckSQL(q.WithConjunct(contra)); m != nil {
		m.Check = "contradiction"
		return m
	}
	return nil
}
