package qgen

import "testing"

// TestMetamorphicCache soaks the two-tier query cache: every generated query
// runs cold, then hot (all lanes must hit with the identical bag), then after
// a seed-picked single-row DML on each referenced table (no lane may serve a
// stale hit, and the fresh bags must match an uncached oracle), then re-warm.
// The host X86/DPU lanes share the primary's cache with a 2-node tray lane,
// so the host/tray key separation and MutSCN invalidation of tray entries
// are exercised on every query.
func TestMetamorphicCache(t *testing.T) {
	n := *flagN / 4
	if n < 30 {
		n = 30
	}
	checked, rejected := 0, 0
	for scen := 0; checked < n; scen++ {
		g := New(*flagSeed + 90210 + int64(scen)*1_000_003)
		r, err := NewRunner(g.NewScenario())
		if err != nil {
			t.Fatalf("scenario %d: %v", scen, err)
		}
		r.EnableCache()
		if err := r.EnableTrays([]int{2}); err != nil {
			r.Close()
			t.Fatalf("scenario %d: %v", scen, err)
		}
		for i := 0; i < queriesPerScenario && checked < n; i++ {
			q := g.NextQuery()
			if m := r.CheckCache(q); m != nil {
				t.Fatalf("%s", m.Reproducer())
			}
			checked++
		}
		rejected += r.Rejected
		r.Close()
	}
	t.Logf("cache: %d queries cycled cold/hot/DML/re-warm across %d host engines + tray lane (%d rejected consistently)",
		checked, len(engines), rejected)
}
