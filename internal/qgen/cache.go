package qgen

import (
	"fmt"
	"strings"

	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/ops"
	"rapid/internal/qcache"
	"rapid/internal/qef"
	"rapid/internal/sqlparse"
	"rapid/internal/storage"
)

// Metamorphic cache lane: with the query cache enabled, a repeated query
// must hit and serve the identical bag on every lane, a mutation of any
// referenced table must invalidate (no stale hit), and the post-DML answer
// must match an uncached oracle run.

// EnableCache installs the shared two-tier query cache on both databases
// (the tray lanes share the primary's cache through the host).
func (r *Runner) EnableCache() {
	r.primary.EnableQueryCache(qcache.Config{})
	r.alt.EnableQueryCache(qcache.Config{})
}

// cacheLaneRes is one lane's outcome in the cache check.
type cacheLaneRes struct {
	rel    *ops.Relation
	status string
	err    error
}

// CheckCache runs the cache metamorphic check on one generated query:
//
//  1. cold pass on every lane (host, X86, DPU, alternate layout, trays) —
//     primes or refreshes each lane's entry, all bags must agree;
//  2. hot pass — every lane must report a cache hit with the identical bag;
//  3. seed-picked single-row DML on every table the query references
//     (applied identically to both databases, checkpointed) — the next pass
//     must NOT hit, and its bag must equal an uncached oracle run;
//  4. re-warm — hits again, serving the post-DML answer.
//
// Queries every engine rejects are skipped, like the differential check.
func (r *Runner) CheckCache(q *Query) *Mismatch {
	sql := q.SQL()
	type lane struct {
		name string
		run  func(noCache bool) cacheLaneRes
	}
	var lanes []lane
	for _, e := range engines {
		e := e
		db := r.primary
		if e.alt {
			db = r.alt
		}
		lanes = append(lanes, lane{name: e.name, run: func(noCache bool) cacheLaneRes {
			opts := e.opts
			opts.NoCache = noCache
			res, err := db.Query(sql, opts)
			r.Executed++
			if err == nil && res.FellBack {
				err = fmt.Errorf("RAPID execution fell back to host")
			}
			if err != nil {
				return cacheLaneRes{err: err}
			}
			return cacheLaneRes{rel: res.Rel, status: res.Cache}
		}})
	}
	for _, tl := range r.trays {
		tl := tl
		lanes = append(lanes, lane{name: fmt.Sprintf("tray%d", tl.nodes), run: func(noCache bool) cacheLaneRes {
			res, err := tl.tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeX86, NoCache: noCache})
			r.Executed++
			if err != nil {
				return cacheLaneRes{err: err}
			}
			return cacheLaneRes{rel: res.Rel, status: res.Cache}
		}})
	}

	// Cold pass. A host rejection must be unanimous (the generator probes
	// error paths); any split is an ordinary differential bug.
	cold := make([]cacheLaneRes, len(lanes))
	for i, l := range lanes {
		cold[i] = l.run(false)
	}
	if cold[0].err != nil {
		for i, l := range lanes {
			if cold[i].err == nil {
				return r.mismatch("cache", sql, fmt.Sprintf(
					"host rejected the query (%v) but %s executed it", cold[0].err, l.name))
			}
		}
		r.Rejected++
		return nil
	}
	hostBag := bag(cold[0].rel)
	for i, l := range lanes[1:] {
		if cold[i+1].err != nil {
			return r.mismatch("cache", sql, fmt.Sprintf(
				"host executed the query but %s failed cold: %v", l.name, cold[i+1].err))
		}
		if d := diffBags(hostBag, bag(cold[i+1].rel)); d != "" {
			return r.mismatch("cache", sql, fmt.Sprintf("cold host vs %s: %s", l.name, d))
		}
	}

	// Hot pass: every lane must hit and serve the identical bag.
	for i, l := range lanes {
		hot := l.run(false)
		if hot.err != nil {
			return r.mismatch("cache", sql, fmt.Sprintf("%s failed hot: %v", l.name, hot.err))
		}
		if hot.status != "hit" {
			return r.mismatch("cache", sql, fmt.Sprintf(
				"%s hot status = %q, want hit", l.name, hot.status))
		}
		if d := diffBags(bag(cold[i].rel), bag(hot.rel)); d != "" {
			return r.mismatch("cache", sql, fmt.Sprintf("%s cold vs hot: %s", l.name, d))
		}
	}

	// Seed-picked DML on every referenced table: duplicate one existing row
	// (valid by construction), identically in both databases, checkpointed
	// so the strict offload lanes stay admissible. Tray shards reload on
	// their next bind.
	mutated := false
	for ti, tb := range r.referencedTables(sql) {
		if len(tb.Rows) == 0 {
			continue
		}
		row := tb.Rows[g0(r.Sc.Seed+int64(ti), len(tb.Rows))]
		for _, db := range []*hostdb.Database{r.primary, r.alt} {
			if _, err := db.Insert(tb.Name, [][]storage.Value{row}); err != nil {
				return r.mismatch("cache", sql, fmt.Sprintf("DML on %s: %v", tb.Name, err))
			}
			if err := db.Checkpoint(tb.Name); err != nil {
				return r.mismatch("cache", sql, fmt.Sprintf("checkpoint %s: %v", tb.Name, err))
			}
		}
		mutated = true
	}
	if !mutated {
		return nil // nothing to invalidate (all referenced tables empty)
	}

	// Post-DML pass: a hit here is a stale result — the bug this lane
	// exists to catch. The fresh bags must match an uncached oracle run.
	oracle := lanes[0].run(true)
	if oracle.err != nil {
		return r.mismatch("cache", sql, fmt.Sprintf("post-DML oracle failed: %v", oracle.err))
	}
	oracleBag := bag(oracle.rel)
	post := make([]cacheLaneRes, len(lanes))
	for i, l := range lanes {
		post[i] = l.run(false)
		if post[i].err != nil {
			return r.mismatch("cache", sql, fmt.Sprintf(
				"%s executed before the DML but failed after it: %v", l.name, post[i].err))
		}
		if post[i].status == "hit" {
			return r.mismatch("cache", sql, fmt.Sprintf(
				"%s served a cache hit after DML on a referenced table (stale result)", l.name))
		}
		if d := diffBags(oracleBag, bag(post[i].rel)); d != "" {
			return r.mismatch("cache", sql, fmt.Sprintf(
				"post-DML uncached oracle vs %s: %s", l.name, d))
		}
	}

	// Re-warm: the refreshed entries must hit and keep the new answer.
	for i, l := range lanes {
		re := l.run(false)
		if re.err != nil {
			return r.mismatch("cache", sql, fmt.Sprintf("%s failed on re-warm: %v", l.name, re.err))
		}
		if re.status != "hit" {
			return r.mismatch("cache", sql, fmt.Sprintf(
				"%s re-warm status = %q, want hit", l.name, re.status))
		}
		if d := diffBags(bag(post[i].rel), bag(re.rel)); d != "" {
			return r.mismatch("cache", sql, fmt.Sprintf("%s post-DML vs re-warm: %s", l.name, d))
		}
	}
	return nil
}

// referencedTables resolves the scenario tables a statement reads, in
// scenario order (deduplicated).
func (r *Runner) referencedTables(sql string) []*Table {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil
	}
	names := make(map[string]bool)
	for _, n := range sqlparse.StmtTables(stmt) {
		names[strings.ToLower(n)] = true
	}
	var out []*Table
	for _, tb := range r.Sc.Tables {
		if names[strings.ToLower(tb.Name)] {
			out = append(out, tb)
		}
	}
	return out
}
