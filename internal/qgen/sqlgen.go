package qgen

import (
	"fmt"
	"strings"
)

// SortChk records an ORDER BY key as an output position (0-based) for
// post-hoc sortedness verification on the result relation.
type SortChk struct {
	Pos  int
	Desc bool
}

// Query is one generated SQL query plus the metadata the runner needs to
// check it (expected ordering, limit) and to build metamorphic variants
// (where-conjunct injection scope).
type Query struct {
	Class string

	raw   string   // set-op queries are fully assembled and not extendable
	sel   []string // rendered select items
	from  string
	where []string // conjuncts, each parenthesized
	tail  string   // " GROUP BY ..."/" HAVING ..." suffix
	order string   // " ORDER BY ..." or ""
	limit int      // -1 = none

	NOut      int
	SortKeys  []SortChk
	FullOrder bool // ORDER BY covers every output position

	scope []*Column // columns usable for extra predicates (TLP/tautology)
}

// SQL assembles the query string.
func (q *Query) SQL() string {
	if q.raw != "" {
		return q.raw
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(q.sel, ", "))
	b.WriteString(" FROM ")
	b.WriteString(q.from)
	if len(q.where) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(q.where, " AND "))
	}
	b.WriteString(q.tail)
	b.WriteString(q.order)
	if q.limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.limit)
	}
	return b.String()
}

// WithConjunct returns the query with one extra AND conjunct. Only valid
// when Extendable.
func (q *Query) WithConjunct(c string) string {
	cp := *q
	cp.where = append(append([]string{}, q.where...), c)
	return cp.SQL()
}

// Extendable reports whether WithConjunct produces a valid query.
func (q *Query) Extendable() bool { return q.raw == "" }

// TLPable reports whether the TLP identity Q ≡ Q WHERE p ⊎ Q WHERE NOT p ⊎
// Q WHERE p IS NULL holds structurally: row-level selection only, no
// aggregation/windows/set ops/order/limit.
func (q *Query) TLPable() bool {
	return (q.Class == "simple" || q.Class == "join") &&
		q.raw == "" && q.tail == "" && q.order == "" && q.limit < 0
}

// TautologyOK reports whether adding a tautological conjunct must preserve
// the result bag: any extendable query whose limit (if any) is under a
// total order.
func (q *Query) TautologyOK() bool {
	return q.Extendable() && (q.limit < 0 || q.FullOrder || q.limit == 0)
}

// NextQuery generates one random query against the current scenario.
func (g *Generator) NextQuery() *Query {
	if g.sc == nil {
		g.NewScenario()
	}
	r := g.rng.Float64()
	multi := len(g.sc.Tables) >= 2
	switch {
	case r < 0.30:
		return g.genSimple()
	case r < 0.55:
		return g.genAgg()
	case r < 0.70:
		if multi {
			return g.genJoin()
		}
		return g.genSimple()
	case r < 0.80:
		return g.genSetOp()
	case r < 0.90:
		return g.genWindow()
	default:
		if multi {
			return g.genSemiJoin()
		}
		return g.genAgg()
	}
}

func (g *Generator) table() *Table { return g.sc.Tables[g.intn(len(g.sc.Tables))] }

func colPtrs(t *Table) []*Column {
	out := make([]*Column, len(t.Cols))
	for i := range t.Cols {
		out[i] = &t.Cols[i]
	}
	return out
}

// --- scalar expressions ------------------------------------------------------

// intExpr renders a random integer-typed scalar expression over t's int
// columns. Integer division is deliberately never generated: its semantics
// are engine-defined (documented divergence).
func (g *Generator) intExpr(cols []*Column, depth int) string {
	ints := intCols(cols)
	if len(ints) == 0 || (depth > 0 && g.chance(0.4)) {
		return fmt.Sprintf("%d", 1+g.intn(9))
	}
	c := ints[g.intn(len(ints))]
	if depth >= 2 || g.chance(0.45) {
		return c.Name
	}
	switch g.intn(4) {
	case 0:
		return fmt.Sprintf("(%s + %s)", c.Name, g.intExpr(cols, depth+1))
	case 1:
		return fmt.Sprintf("(%s - %s)", c.Name, g.intExpr(cols, depth+1))
	case 2:
		return fmt.Sprintf("(%s * %d)", c.Name, 1+g.intn(5))
	default:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END",
			g.predAtom(cols), c.Name, g.intExpr(cols, depth+1))
	}
}

func intCols(cols []*Column) []*Column {
	var out []*Column
	for _, c := range cols {
		if c.IsInt() {
			out = append(out, c)
		}
	}
	return out
}

// --- predicates --------------------------------------------------------------

var cmpOps = []string{"=", "<>", "<", "<=", ">", ">="}

// predAtom renders one atomic predicate over the given columns.
func (g *Generator) predAtom(cols []*Column) string {
	// Filter to predicate-friendly columns.
	var cands []*Column
	for _, c := range cols {
		if c.Kind != KBool {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return "(1 = 1)"
	}
	c := cands[g.intn(len(cands))]
	op := g.pick(cmpOps)
	switch {
	case c.IsInt():
		switch g.intn(5) {
		case 0:
			return fmt.Sprintf("(%s %s %s)", c.Name, op, g.constFor(c))
		case 1:
			// col vs col (int only; string col-vs-col compares dict codes
			// on RAPID — documented divergence, never generated).
			if o := intCols(cols); len(o) > 1 {
				other := o[g.intn(len(o))]
				return fmt.Sprintf("(%s %s %s)", c.Name, op, other.Name)
			}
			return fmt.Sprintf("(%s %s %s)", c.Name, op, g.constFor(c))
		case 2:
			lo := g.intn(int(c.Hi))
			return fmt.Sprintf("(%s BETWEEN %d AND %d)", c.Name, lo, lo+g.intn(int(c.Hi)))
		case 3:
			return fmt.Sprintf("(%s IN (%s, %s, %s))", c.Name,
				g.constFor(c), g.constFor(c), g.constFor(c))
		default:
			return fmt.Sprintf("(%s %s %s)", g.intExpr(cols, 1), op, g.constFor(c))
		}
	case c.Kind == KDec:
		return fmt.Sprintf("(%s %s %s)", c.Name, op, g.constFor(c))
	case c.IsStr():
		switch g.intn(4) {
		case 0:
			eq := "="
			if g.chance(0.3) {
				eq = "<>"
			}
			return fmt.Sprintf("(%s %s %s)", c.Name, eq, g.constFor(c))
		case 1:
			w := g.pick(c.Strs)
			pat := []string{"%" + w + "%", w + "%", "%" + w, w}[g.intn(4)]
			not := ""
			if g.chance(0.25) {
				not = "NOT "
			}
			return fmt.Sprintf("(%s %sLIKE '%s')", c.Name, not, pat)
		case 2:
			return fmt.Sprintf("(%s IN (%s, %s))", c.Name, g.constFor(c), g.constFor(c))
		default:
			return fmt.Sprintf("(%s %s %s)", c.Name, g.pick([]string{"=", "<>"}), g.constFor(c))
		}
	default: // KDate
		if g.chance(0.4) {
			lo := c.Base + int64(g.intn(120))
			return fmt.Sprintf("(%s BETWEEN DATE '%s' AND DATE '%s')",
				c.Name, dateStr(lo), dateStr(lo+int64(g.intn(60))))
		}
		return fmt.Sprintf("(%s %s %s)", c.Name, op, g.constFor(c))
	}
}

// pred renders a possibly-compound predicate.
func (g *Generator) pred(cols []*Column) string {
	switch g.intn(10) {
	case 0, 1:
		return fmt.Sprintf("(%s AND %s)", g.predAtom(cols), g.predAtom(cols))
	case 2, 3:
		return fmt.Sprintf("(%s OR %s)", g.predAtom(cols), g.predAtom(cols))
	case 4:
		return fmt.Sprintf("(NOT %s)", g.predAtom(cols))
	case 5:
		// IS NULL is constant-false in this NULL-free engine; keep it live
		// inside an OR so the query still returns rows.
		return fmt.Sprintf("((%s) IS NULL OR %s)", g.intExpr(cols, 1), g.predAtom(cols))
	case 6:
		// IS NOT NULL is a tautological conjunct.
		return fmt.Sprintf("((%s) IS NOT NULL AND %s)", g.intExpr(cols, 1), g.predAtom(cols))
	default:
		return g.predAtom(cols)
	}
}

func (g *Generator) genWhere(cols []*Column) []string {
	var out []string
	n := 0
	switch r := g.rng.Float64(); {
	case r < 0.30:
		n = 0
	case r < 0.75:
		n = 1
	default:
		n = 2
	}
	for i := 0; i < n; i++ {
		out = append(out, g.pred(cols))
	}
	return out
}

// --- ORDER BY / LIMIT --------------------------------------------------------

// outItem is one select-list entry with its sortability.
type outItem struct {
	expr     string
	sortable bool
}

// genOrder renders ORDER BY over output positions. When full is requested
// (and every item is sortable) the permutation covers every position, which
// makes the output sequence engine-independent: any rows tied on all sort
// keys are fully identical.
func (g *Generator) genOrder(items []outItem, wantFull bool) (string, []SortChk, bool) {
	var sortable []int
	for i, it := range items {
		if it.sortable {
			sortable = append(sortable, i)
		}
	}
	if len(sortable) == 0 {
		return "", nil, false
	}
	full := wantFull && len(sortable) == len(items)
	n := 1 + g.intn(len(sortable))
	if full {
		n = len(items)
	}
	perm := g.rng.Perm(len(sortable))[:n]
	var keys []SortChk
	var parts []string
	for _, pi := range perm {
		pos := sortable[pi]
		desc := g.chance(0.4)
		keys = append(keys, SortChk{Pos: pos, Desc: desc})
		p := fmt.Sprintf("%d", pos+1)
		if desc {
			p += " DESC"
		}
		parts = append(parts, p)
	}
	return " ORDER BY " + strings.Join(parts, ", "), keys, full
}

// --- query classes -----------------------------------------------------------

func (g *Generator) genSimple() *Query {
	t := g.table()
	cols := colPtrs(t)
	q := &Query{Class: "simple", from: t.Name, limit: -1, scope: cols}

	wantLimit := g.chance(0.20)
	var items []outItem
	if g.chance(0.10) && !wantLimit {
		q.sel = []string{"*"}
		for _, c := range t.Cols {
			items = append(items, outItem{expr: c.Name, sortable: c.Sortable()})
		}
	} else {
		n := 1 + g.intn(4)
		for i := 0; i < n; i++ {
			if !wantLimit && g.chance(0.55) {
				c := cols[g.intn(len(cols))]
				items = append(items, outItem{expr: c.Name, sortable: c.Sortable()})
			} else {
				items = append(items, outItem{expr: g.intExpr(cols, 0), sortable: true})
			}
			q.sel = append(q.sel, items[i].expr)
		}
	}
	q.NOut = len(items)
	q.where = g.genWhere(cols)

	if wantLimit || g.chance(0.40) {
		q.order, q.SortKeys, q.FullOrder = g.genOrder(items, wantLimit)
	}
	if wantLimit && q.FullOrder {
		q.limit = g.intn(2 * (len(t.Rows) + 2))
	} else if g.chance(0.05) {
		q.limit = 0 // LIMIT 0 is bag-safe with or without a total order
	}
	return q
}

func (g *Generator) genAgg() *Query {
	t := g.table()
	cols := colPtrs(t)
	q := &Query{Class: "agg", from: t.Name, limit: -1, scope: cols}

	nGroup := g.intn(3)
	var items []outItem
	groupNames := make([]string, 0, nGroup)
	for i := 0; i < nGroup; i++ {
		c := cols[g.intn(len(cols))]
		dup := false
		for _, n := range groupNames {
			if n == c.Name {
				dup = true
			}
		}
		if dup {
			continue
		}
		groupNames = append(groupNames, c.Name)
		items = append(items, outItem{expr: c.Name, sortable: c.Sortable()})
	}

	ints := intCols(cols)
	nAgg := 1 + g.intn(3)
	for i := 0; i < nAgg; i++ {
		var a string
		switch g.intn(7) {
		case 0:
			a = "COUNT(*)"
		case 1:
			if len(ints) > 0 {
				a = fmt.Sprintf("AVG(%s)", ints[g.intn(len(ints))].Name)
			} else {
				a = "COUNT(*)"
			}
		case 2:
			// Aggregate over an arithmetic expression.
			if len(ints) > 0 {
				a = fmt.Sprintf("SUM(%s)", g.intExpr(cols, 1))
			} else {
				a = "COUNT(*)"
			}
		default:
			fn := g.pick([]string{"SUM", "MIN", "MAX"})
			var nums []*Column
			for _, c := range cols {
				if c.IsInt() || c.Kind == KDec {
					nums = append(nums, c)
				}
			}
			if len(nums) == 0 {
				a = "COUNT(*)"
			} else {
				a = fmt.Sprintf("%s(%s)", fn, nums[g.intn(len(nums))].Name)
			}
		}
		items = append(items, outItem{expr: a, sortable: true})
	}
	for _, it := range items {
		q.sel = append(q.sel, it.expr)
	}
	q.NOut = len(items)
	q.where = g.genWhere(cols)

	if len(groupNames) > 0 {
		q.tail = " GROUP BY " + strings.Join(groupNames, ", ")
		if g.chance(0.25) && len(ints) > 0 {
			q.tail += fmt.Sprintf(" HAVING %s > %d",
				g.pick([]string{"COUNT(*)", "SUM(" + ints[g.intn(len(ints))].Name + ")"}),
				g.intn(20))
		}
		if g.chance(0.35) {
			wantFull := g.chance(0.5)
			q.order, q.SortKeys, q.FullOrder = g.genOrder(items, wantFull)
			if q.FullOrder && g.chance(0.5) {
				q.limit = g.intn(12)
			}
		}
	}
	return q
}

func (g *Generator) genJoin() *Query {
	ti := g.rng.Perm(len(g.sc.Tables))
	left, right := g.sc.Tables[ti[0]], g.sc.Tables[ti[1]]
	kind := "JOIN"
	if g.chance(0.2) {
		kind = "LEFT JOIN"
	}
	on := fmt.Sprintf("%s = %s", left.Cols[0].Name, right.Cols[0].Name)
	if li, ri := intCols(colPtrs(left)), intCols(colPtrs(right)); g.chance(0.2) && len(li) > 1 && len(ri) > 1 {
		on += fmt.Sprintf(" AND %s = %s",
			li[g.intn(len(li))].Name, ri[g.intn(len(ri))].Name)
	}
	from := fmt.Sprintf("%s %s %s ON %s", left.Name, kind, right.Name, on)

	scope := append(colPtrs(left), colPtrs(right)...)
	third := len(g.sc.Tables) >= 3 && kind == "JOIN" && g.chance(0.25)
	if third {
		t3 := g.sc.Tables[ti[2]]
		from += fmt.Sprintf(" JOIN %s ON %s = %s", t3.Name, right.Cols[0].Name, t3.Cols[0].Name)
		scope = append(scope, colPtrs(t3)...)
	}

	q := &Query{Class: "join", from: from, limit: -1, scope: scope}
	n := 1 + g.intn(4)
	var items []outItem
	for i := 0; i < n; i++ {
		c := scope[g.intn(len(scope))]
		items = append(items, outItem{expr: c.Name, sortable: c.Sortable()})
		q.sel = append(q.sel, c.Name)
	}
	q.NOut = n
	q.where = g.genWhere(scope)
	if g.chance(0.25) {
		q.order, q.SortKeys, q.FullOrder = g.genOrder(items, false)
	}
	return q
}

func (g *Generator) genSetOp() *Query {
	t := g.table()
	cols := colPtrs(t)
	n := 1 + g.intn(3)
	var sel []string
	for i := 0; i < n; i++ {
		sel = append(sel, cols[g.intn(len(cols))].Name)
	}
	list := strings.Join(sel, ", ")
	op := g.pick([]string{"UNION", "UNION ALL", "INTERSECT", "MINUS"})
	lhs := fmt.Sprintf("SELECT %s FROM %s WHERE %s", list, t.Name, g.pred(cols))
	rhs := fmt.Sprintf("SELECT %s FROM %s WHERE %s", list, t.Name, g.pred(cols))
	return &Query{
		Class: "setop", raw: lhs + " " + op + " " + rhs,
		NOut: n, limit: -1, scope: cols,
	}
}

func (g *Generator) genWindow() *Query {
	t := g.table()
	cols := colPtrs(t)
	q := &Query{Class: "window", from: t.Name, limit: -1, scope: cols}

	var items []outItem
	nPlain := 1 + g.intn(2)
	for i := 0; i < nPlain; i++ {
		c := cols[g.intn(len(cols))]
		items = append(items, outItem{expr: c.Name, sortable: c.Sortable()})
	}
	part := cols[g.intn(len(cols))]
	var sortables []*Column
	for _, c := range cols {
		if c.Sortable() {
			sortables = append(sortables, c)
		}
	}
	var win string
	ints := intCols(cols)
	// RANK/DENSE_RANK are tie-stable and SUM OVER (PARTITION BY) is
	// order-free, so all three are deterministic across engines.
	// ROW_NUMBER and running sums are not — never generated.
	switch {
	case len(ints) > 0 && g.chance(0.35):
		win = fmt.Sprintf("SUM(%s) OVER (PARTITION BY %s)",
			ints[g.intn(len(ints))].Name, part.Name)
	case len(sortables) > 0:
		fn := g.pick([]string{"RANK()", "DENSE_RANK()"})
		ob := sortables[g.intn(len(sortables))]
		desc := ""
		if g.chance(0.4) {
			desc = " DESC"
		}
		if g.chance(0.2) {
			win = fmt.Sprintf("%s OVER (ORDER BY %s%s)", fn, ob.Name, desc)
		} else {
			win = fmt.Sprintf("%s OVER (PARTITION BY %s ORDER BY %s%s)",
				fn, part.Name, ob.Name, desc)
		}
	default:
		return g.genSimple()
	}
	items = append(items, outItem{expr: win, sortable: true})
	for _, it := range items {
		q.sel = append(q.sel, it.expr)
	}
	q.NOut = len(items)
	if g.chance(0.30) {
		q.where = []string{g.predAtom(cols)}
	}
	return q
}

func (g *Generator) genSemiJoin() *Query {
	ti := g.rng.Perm(len(g.sc.Tables))
	outer, inner := g.sc.Tables[ti[0]], g.sc.Tables[ti[1]]
	cols := colPtrs(outer)
	q := &Query{Class: "semijoin", from: outer.Name, limit: -1, scope: cols}

	n := 1 + g.intn(3)
	for i := 0; i < n; i++ {
		q.sel = append(q.sel, cols[g.intn(len(cols))].Name)
	}
	q.NOut = n

	sub := fmt.Sprintf("SELECT %s FROM %s", inner.Cols[0].Name, inner.Name)
	if g.chance(0.5) {
		sub += " WHERE " + g.predAtom(colPtrs(inner))
	}
	not := ""
	if g.chance(0.3) {
		not = "NOT "
	}
	q.where = append(q.where,
		fmt.Sprintf("%s %sIN (%s)", outer.Cols[0].Name, not, sub))
	if g.chance(0.4) {
		q.where = append(q.where, g.predAtom(cols))
	}
	return q
}
