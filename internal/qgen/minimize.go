package qgen

import "rapid/internal/sqlparse"

// Minimize greedily shrinks a failing query at the AST level: it applies
// structural reductions (drop clauses, split conjunctions, drop select
// items or joins) and keeps a candidate whenever the differential check
// still reports a mismatch. Candidates that no longer parse or bind are
// rejected consistently by every engine and therefore dropped naturally.
func (r *Runner) Minimize(sql string) string {
	cur := sql
	budget := 150
	for {
		improved := false
		for _, cand := range shrinkVariants(cur) {
			if budget <= 0 {
				return cur
			}
			budget--
			if r.CheckSQL(cand) != nil {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// shrinkVariants produces one-step reductions of the query. Each candidate
// comes from a fresh parse so mutations never alias.
func shrinkVariants(sql string) []string {
	base, err := sqlparse.Parse(sql)
	if err != nil {
		return nil
	}
	var out []string
	mutate := func(fn func(*sqlparse.SelectStmt) bool) {
		s, perr := sqlparse.Parse(sql)
		if perr != nil {
			return
		}
		if fn(s) {
			out = append(out, renderStmt(s))
		}
	}

	// Set operation: keep each side alone.
	if base.SetRight != nil {
		mutate(func(s *sqlparse.SelectStmt) bool {
			s.SetOp, s.SetRight = "", nil
			return true
		})
		mutate(func(s *sqlparse.SelectStmt) bool {
			*s = *s.SetRight
			return true
		})
	}

	// WHERE: drop entirely, then each structural simplification.
	if base.Where != nil {
		mutate(func(s *sqlparse.SelectStmt) bool {
			s.Where = nil
			return true
		})
		for i := 0; i < countSimplifications(base.Where); i++ {
			i := i
			mutate(func(s *sqlparse.SelectStmt) bool {
				n := i
				if p, ok := simplifyPred(s.Where, &n); ok {
					s.Where = p
					return true
				}
				return false
			})
		}
	}

	if base.Having != nil {
		mutate(func(s *sqlparse.SelectStmt) bool {
			s.Having = nil
			return true
		})
	}
	if len(base.OrderBy) > 0 || base.Limit >= 0 {
		mutate(func(s *sqlparse.SelectStmt) bool {
			s.OrderBy, s.Limit = nil, -1
			return true
		})
	}
	if base.Limit >= 0 {
		mutate(func(s *sqlparse.SelectStmt) bool {
			s.Limit = -1
			return true
		})
	}
	if len(base.GroupBy) > 0 {
		mutate(func(s *sqlparse.SelectStmt) bool {
			s.GroupBy = nil
			return true
		})
	}

	// Drop each join.
	for j := range base.Joins {
		j := j
		mutate(func(s *sqlparse.SelectStmt) bool {
			s.Joins = append(s.Joins[:j], s.Joins[j+1:]...)
			return true
		})
	}

	// Drop each select item; replace compound expressions by operands.
	if len(base.Select) > 1 {
		for i := range base.Select {
			i := i
			mutate(func(s *sqlparse.SelectStmt) bool {
				s.Select = append(s.Select[:i], s.Select[i+1:]...)
				return true
			})
		}
	}
	for i, it := range base.Select {
		if it.Star {
			continue
		}
		for k := range subExprs(it.Expr) {
			i, k := i, k
			mutate(func(s *sqlparse.SelectStmt) bool {
				subs := subExprs(s.Select[i].Expr)
				if k >= len(subs) {
					return false
				}
				s.Select[i].Expr = subs[k]
				return true
			})
		}
	}
	return out
}

// countSimplifications returns how many one-step predicate reductions exist.
func countSimplifications(p sqlparse.AstPred) int {
	switch pr := p.(type) {
	case *sqlparse.AndP:
		return len(pr.Preds)
	case *sqlparse.OrP:
		return len(pr.Preds)
	case *sqlparse.NotP:
		return 1
	}
	return 0
}

// simplifyPred returns the n-th one-step reduction of p, decrementing n
// through the possibilities.
func simplifyPred(p sqlparse.AstPred, n *int) (sqlparse.AstPred, bool) {
	switch pr := p.(type) {
	case *sqlparse.AndP:
		if *n < len(pr.Preds) {
			return pr.Preds[*n], true
		}
	case *sqlparse.OrP:
		if *n < len(pr.Preds) {
			return pr.Preds[*n], true
		}
	case *sqlparse.NotP:
		if *n == 0 {
			return pr.P, true
		}
	}
	return nil, false
}

// subExprs returns the immediate operands of a compound expression.
func subExprs(e sqlparse.AstExpr) []sqlparse.AstExpr {
	switch ex := e.(type) {
	case *sqlparse.BinExpr:
		return []sqlparse.AstExpr{ex.L, ex.R}
	case *sqlparse.CaseExpr:
		return []sqlparse.AstExpr{ex.Then, ex.Else}
	case *sqlparse.FuncExpr:
		if ex.Arg != nil {
			if _, ok := ex.Arg.(*sqlparse.ColName); ok && ex.Over == nil {
				return nil // MIN(a) → a rarely simplifies usefully
			}
		}
	}
	return nil
}
