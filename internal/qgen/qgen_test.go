package qgen

import (
	"flag"
	"testing"

	"rapid/internal/sqlparse"
)

var (
	flagN    = flag.Int("qgen.n", 200, "number of generated queries for the differential test")
	flagSeed = flag.Int64("qgen.seed", 1, "master seed; fixed seed = identical scenarios and queries")
)

const queriesPerScenario = 20

// TestDifferentialSQL is the tentpole check: every generated query must
// produce the same result bag on the hostdb row interpreter, RAPID ModeX86,
// RAPID ModeDPU and an alternate partitioned/RLE physical layout. Short mode
// runs the default 200 queries; raise with -qgen.n for soak runs.
func TestDifferentialSQL(t *testing.T) {
	n := *flagN
	executed, rejected := 0, 0
	for scen := 0; executed < n; scen++ {
		g := New(*flagSeed + int64(scen)*1_000_003)
		r, err := NewRunner(g.NewScenario())
		if err != nil {
			t.Fatalf("scenario %d: %v", scen, err)
		}
		for i := 0; i < queriesPerScenario && executed < n; i++ {
			q := g.NextQuery()
			if m := r.Check(q); m != nil {
				m.Minimized = r.Minimize(m.SQL)
				t.Fatalf("%s", m.Reproducer())
			}
			executed++
		}
		if m := r.CheckJournal(); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
		rejected += r.Rejected
	}
	t.Logf("differential: %d queries checked across %d engines (%d rejected consistently)",
		executed, len(engines), rejected)
}

// TestMetamorphicTLP checks ternary-logic partitioning: Q ≡ Q WHERE p ⊎
// Q WHERE NOT p ⊎ Q WHERE p IS NULL on all three engines.
func TestMetamorphicTLP(t *testing.T) {
	n := *flagN / 4
	if n < 30 {
		n = 30
	}
	checked := 0
	for scen := 0; checked < n; scen++ {
		g := New(*flagSeed + 7777 + int64(scen)*1_000_003)
		r, err := NewRunner(g.NewScenario())
		if err != nil {
			t.Fatalf("scenario %d: %v", scen, err)
		}
		for i := 0; i < queriesPerScenario && checked < n; i++ {
			q := g.NextQuery()
			if !q.TLPable() {
				continue
			}
			if m := r.CheckTLP(q); m != nil {
				t.Fatalf("%s", m.Reproducer())
			}
			checked++
		}
		if m := r.CheckJournal(); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
	}
	t.Logf("tlp: %d queries partition-checked", checked)
}

// TestMetamorphicTautology checks that tautological conjuncts preserve the
// result bag and contradictory conjuncts stay engine-consistent.
func TestMetamorphicTautology(t *testing.T) {
	n := *flagN / 4
	if n < 30 {
		n = 30
	}
	checked := 0
	for scen := 0; checked < n; scen++ {
		g := New(*flagSeed + 424242 + int64(scen)*1_000_003)
		r, err := NewRunner(g.NewScenario())
		if err != nil {
			t.Fatalf("scenario %d: %v", scen, err)
		}
		for i := 0; i < queriesPerScenario && checked < n; i++ {
			q := g.NextQuery()
			if !q.TautologyOK() {
				continue
			}
			if m := r.CheckTautology(q); m != nil {
				t.Fatalf("%s", m.Reproducer())
			}
			checked++
		}
		if m := r.CheckJournal(); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
	}
	t.Logf("tautology: %d queries checked", checked)
}

// TestMetamorphicPruning checks that zone-map pruning never changes an
// answer: every generated query runs with pruning force-disabled and enabled
// on every RAPID lane plus a 3-node tray, and the result bags must match.
// The pruned runs keep profiling on, so the pruned+scanned == total-tiles
// accounting invariant is soak-checked alongside.
func TestMetamorphicPruning(t *testing.T) {
	n := *flagN / 4
	if n < 30 {
		n = 30
	}
	checked := 0
	for scen := 0; checked < n; scen++ {
		g := New(*flagSeed + 555_001 + int64(scen)*1_000_003)
		r, err := NewRunner(g.NewScenario())
		if err != nil {
			t.Fatalf("scenario %d: %v", scen, err)
		}
		if err := r.EnableTrays([]int{3}); err != nil {
			r.Close()
			t.Fatalf("scenario %d: %v", scen, err)
		}
		for i := 0; i < queriesPerScenario && checked < n; i++ {
			q := g.NextQuery()
			if m := r.CheckPruningMetamorphic(q.SQL()); m != nil {
				m.Minimized = r.Minimize(m.SQL)
				t.Fatalf("%s", m.Reproducer())
			}
			checked++
		}
		if m := r.CheckJournal(); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
		r.Close()
	}
	t.Logf("pruning metamorphic: %d queries checked pruned-vs-unpruned", checked)
}

// TestConcurrentDifferential is the scheduler-facing lane of the soak: every
// generated query additionally runs on 6 concurrent sessions sharing the two
// databases (and therefore their shared-SoC schedulers), each compared
// against a serial host-oracle run. Run with -race to make it a scheduler
// race detector as well as a differential check.
func TestConcurrentDifferential(t *testing.T) {
	n := *flagN / 4
	if n < 30 {
		n = 30
	}
	const parallel = 6
	executed := 0
	for scen := 0; executed < n; scen++ {
		g := New(*flagSeed + 31337 + int64(scen)*1_000_003)
		r, err := NewRunner(g.NewScenario())
		if err != nil {
			t.Fatalf("scenario %d: %v", scen, err)
		}
		for i := 0; i < queriesPerScenario && executed < n; i++ {
			q := g.NextQuery()
			if m := r.CheckConcurrent(q.SQL(), parallel); m != nil {
				m.Minimized = r.Minimize(m.SQL)
				t.Fatalf("%s", m.Reproducer())
			}
			executed++
		}
		if m := r.CheckJournal(); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
		r.Close()
	}
	t.Logf("concurrent: %d queries checked on %d simultaneous sessions", executed, parallel)
}

// TestGeneratorDeterminism pins the replayability contract: the same seed
// must regenerate the identical scenario and query stream.
func TestGeneratorDeterminism(t *testing.T) {
	const seed = 99
	g1, g2 := New(seed), New(seed)
	s1, s2 := g1.NewScenario(), g2.NewScenario()
	if s1.Dump() != s2.Dump() {
		t.Fatalf("scenario dumps differ for the same seed:\n%s\nvs\n%s", s1.Dump(), s2.Dump())
	}
	for i := 0; i < 50; i++ {
		a, b := g1.NextQuery().SQL(), g2.NextQuery().SQL()
		if a != b {
			t.Fatalf("query %d differs for the same seed:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestRendererRoundTrip checks render(parse(q)) is re-parseable and stable
// for generated queries — the invariant the minimizer depends on.
func TestRendererRoundTrip(t *testing.T) {
	g := New(7)
	g.NewScenario()
	for i := 0; i < 100; i++ {
		sql := g.NextQuery().SQL()
		for _, v := range shrinkVariants(sql) {
			if _, err := sqlparse.Parse(v); err != nil {
				t.Fatalf("rendered shrink candidate does not re-parse: %v\n  base: %s\n  cand: %s", err, sql, v)
			}
		}
	}
}
