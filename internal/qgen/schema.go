package qgen

import (
	"fmt"
	"sort"
	"strings"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
	"rapid/internal/storage"
)

// ColKind is the generator's notion of a column flavor; it drives both data
// generation and which predicates/expressions a column can appear in.
type ColKind int

const (
	KInt     ColKind = iota // uniform integers
	KIntSkew                // heavily skewed integers (hot values)
	KDec                    // decimal with scale 1..3
	KStrLow                 // low-NDV string (dictionary/RLE friendly)
	KStrHigh                // high-NDV string
	KDate                   // dates
	KBool                   // booleans
)

// Column is one generated column plus the metadata the SQL generator needs
// to produce type-correct constants.
type Column struct {
	Name string
	Kind ColKind
	Type coltypes.Type
	Hi   int64    // upper bound for int constants
	Base int64    // day-number base for date constants
	Strs []string // constant pool for string columns
}

// Sortable reports whether ORDER BY on this column agrees across engines.
// String columns sort by dictionary code on RAPID but lexicographically on
// the host, so the generator never orders by them.
func (c *Column) Sortable() bool { return c.Kind != KStrLow && c.Kind != KStrHigh }

// IsInt reports whether the column holds plain integers.
func (c *Column) IsInt() bool { return c.Kind == KInt || c.Kind == KIntSkew }

// IsStr reports whether the column is a string column.
func (c *Column) IsStr() bool { return c.Kind == KStrLow || c.Kind == KStrHigh }

// Table is one generated table with its full data set.
type Table struct {
	Name string
	Cols []Column // Cols[0] is always an int join key with a small domain
	Rows [][]storage.Value
}

// Scenario is a complete generated database: tables, schemas and data.
type Scenario struct {
	Seed   int64
	Tables []*Table
}

// Dump renders the scenario (schema and data) for reproducer reports. Row
// dumps are truncated; the seed regenerates them exactly.
func (s *Scenario) Dump() string {
	var b strings.Builder
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "table %s (%d rows):", t.Name, len(t.Rows))
		for _, c := range t.Cols {
			fmt.Fprintf(&b, " %s %s", c.Name, c.Type)
		}
		b.WriteByte('\n')
		for i, row := range t.Rows {
			if i >= 12 {
				fmt.Fprintf(&b, "  ... %d more rows (regenerate from seed)\n", len(t.Rows)-i)
				break
			}
			b.WriteString("  ")
			for j, v := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(renderValue(t.Cols[j], v))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func renderValue(c Column, v storage.Value) string {
	switch c.Type.Kind {
	case coltypes.KindString:
		return "'" + v.Str + "'"
	case coltypes.KindDecimal:
		return v.Dec.String()
	case coltypes.KindDate:
		return dateStr(v.Int)
	default:
		return fmt.Sprintf("%d", v.Int)
	}
}

// strPool is the word list low-NDV string columns draw from; plain
// identifiers, no quoting hazards.
var strPool = []string{
	"ash", "birch", "cedar", "dogwood", "elm", "fir", "ginkgo",
	"hazel", "ivy", "juniper", "kapok", "larch", "maple", "nutmeg",
}

// NewScenario generates 1-3 tables with random schemas and data: empty and
// tiny tables, skewed and sorted columns (RLE-friendly), low- and high-NDV
// dictionary strings, decimals and dates.
func (g *Generator) NewScenario() *Scenario {
	sc := &Scenario{Seed: g.seed}
	nt := 1 + g.intn(3)
	for i := 0; i < nt; i++ {
		sc.Tables = append(sc.Tables, g.genTable(i))
	}
	g.sc = sc
	return sc
}

func (g *Generator) genTable(idx int) *Table {
	t := &Table{Name: fmt.Sprintf("t%d", idx)}
	// Join key: small overlapping int domain so joins actually match.
	t.Cols = append(t.Cols, Column{
		Name: fmt.Sprintf("k%d", idx), Kind: KInt, Type: coltypes.Int(), Hi: 20,
	})
	extras := 2 + g.intn(4)
	for j := 0; j < extras; j++ {
		name := fmt.Sprintf("%c%d", 'a'+j, idx)
		t.Cols = append(t.Cols, g.genColumn(name))
	}

	var rows int
	switch r := g.rng.Float64(); {
	case r < 0.10:
		rows = 0
	case r < 0.25:
		rows = 1 + g.intn(5)
	default:
		rows = 20 + g.intn(381)
	}

	// Generate per-column vectors so some can be sorted independently
	// (long runs exercise RLE), then zip into rows.
	colVals := make([][]storage.Value, len(t.Cols))
	for c := range t.Cols {
		vals := make([]storage.Value, rows)
		for r := 0; r < rows; r++ {
			vals[r] = g.genValue(&t.Cols[c])
		}
		if g.chance(0.25) {
			sort.Slice(vals, func(a, b int) bool { return vals[a].Int < vals[b].Int })
		}
		colVals[c] = vals
	}
	t.Rows = make([][]storage.Value, rows)
	for r := 0; r < rows; r++ {
		row := make([]storage.Value, len(t.Cols))
		for c := range t.Cols {
			row[c] = colVals[c][r]
		}
		t.Rows[r] = row
	}
	return t
}

func (g *Generator) genColumn(name string) Column {
	switch g.intn(7) {
	case 0, 1: // plain ints are the workhorse
		hi := []int64{9, 99, 999}[g.intn(3)]
		return Column{Name: name, Kind: KInt, Type: coltypes.Int(), Hi: hi}
	case 2:
		return Column{Name: name, Kind: KIntSkew, Type: coltypes.Int(), Hi: 99}
	case 3:
		scale := int8(1 + g.intn(3))
		return Column{Name: name, Kind: KDec, Type: coltypes.Decimal(scale), Hi: 99999}
	case 4:
		n := 3 + g.intn(4)
		pool := make([]string, n)
		off := g.intn(len(strPool))
		for i := range pool {
			pool[i] = strPool[(off+i)%len(strPool)]
		}
		return Column{Name: name, Kind: KStrLow, Type: coltypes.String(), Strs: pool}
	case 5:
		pool := make([]string, 40)
		for i := range pool {
			pool[i] = fmt.Sprintf("v%03d", g.intn(900))
		}
		return Column{Name: name, Kind: KStrHigh, Type: coltypes.String(), Strs: pool}
	case 6:
		if g.chance(0.5) {
			return Column{Name: name, Kind: KDate, Type: coltypes.Date(), Base: 18500 + int64(g.intn(400))}
		}
		return Column{Name: name, Kind: KBool, Type: coltypes.Bool()}
	}
	panic("unreachable")
}

func (g *Generator) genValue(c *Column) storage.Value {
	switch c.Kind {
	case KInt:
		v := int64(g.intn(int(c.Hi) + 1))
		if g.chance(0.15) {
			v = -v
		}
		return storage.IntValue(v)
	case KIntSkew:
		if g.chance(0.75) {
			return storage.IntValue(int64(g.intn(3)) * 7) // hot values 0/7/14
		}
		return storage.IntValue(int64(g.intn(int(c.Hi) + 1)))
	case KDec:
		return storage.DecValue(encoding.Decimal{
			Unscaled: int64(g.intn(int(c.Hi))), Scale: c.Type.Scale,
		})
	case KStrLow, KStrHigh:
		return storage.StrValue(g.pick(c.Strs))
	case KDate:
		return storage.Value{Kind: coltypes.KindDate, Int: c.Base + int64(g.intn(120))}
	case KBool:
		return storage.BoolValue(g.chance(0.5))
	}
	panic("unreachable")
}

// constFor renders a random constant literal compatible with the column.
func (g *Generator) constFor(c *Column) string {
	switch c.Kind {
	case KInt, KIntSkew:
		return fmt.Sprintf("%d", g.intn(int(c.Hi)+1))
	case KDec:
		return encoding.Decimal{Unscaled: int64(g.intn(int(c.Hi))), Scale: c.Type.Scale}.String()
	case KStrLow, KStrHigh:
		return "'" + g.pick(c.Strs) + "'"
	case KDate:
		return "DATE '" + dateStr(c.Base+int64(g.intn(120))) + "'"
	case KBool:
		return fmt.Sprintf("%d", g.intn(2))
	}
	panic("unreachable")
}
