package qgen

import "testing"

// TestDistributedDifferential is the distributed differential battery: every
// generated query runs on the single-node engines AND on trays of 1, 2, 4
// and 8 nodes with all scenario tables hash-sharded, and every lane's result
// bag must match the host oracle. This exercises the distributed planner's
// join-localization cases, the shuffle/broadcast/gather exchange operators
// and the two-phase aggregation merge across random schemas and data,
// including empty shards and skewed key distributions.
//
// Replay a failure with:
//
//	go test ./internal/qgen -run DistributedDifferential -qgen.seed=<seed>
func TestDistributedDifferential(t *testing.T) {
	n := *flagN / 2
	if n < 60 {
		n = 60
	}
	executed, rejected := 0, 0
	for scen := 0; executed < n; scen++ {
		g := New(*flagSeed + 31337 + int64(scen)*1_000_003)
		r, err := NewRunner(g.NewScenario())
		if err != nil {
			t.Fatalf("scenario %d: %v", scen, err)
		}
		if err := r.EnableTrays([]int{1, 2, 4, 8}); err != nil {
			r.Close()
			t.Fatalf("scenario %d: %v", scen, err)
		}
		for i := 0; i < queriesPerScenario && executed < n; i++ {
			q := g.NextQuery()
			if m := r.Check(q); m != nil {
				m.Minimized = r.Minimize(m.SQL)
				t.Fatalf("%s", m.Reproducer())
			}
			executed++
		}
		if m := r.CheckJournal(); m != nil {
			t.Fatalf("%s", m.Reproducer())
		}
		rejected += r.Rejected
		r.Close()
	}
	t.Logf("distributed differential: %d queries checked on %d single-node engines + 4 tray lanes (%d rejected consistently)",
		executed, len(engines), rejected)
}
