package cluster_test

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

var (
	tpchOnce sync.Once
	tpchDB   *hostdb.Database

	// -cluster.nodes=1,4 restricts the identity batteries to specific tray
	// widths (the CI shard matrix runs one width per leg); empty keeps the
	// full default sweep.
	flagNodes = flag.String("cluster.nodes", "", "comma-separated tray node counts for the identity batteries (empty = default sweep)")
)

// nodeSweep returns the node counts a battery should run, honoring the
// -cluster.nodes override.
func nodeSweep(t *testing.T, def []int) []int {
	t.Helper()
	if *flagNodes == "" {
		return def
	}
	var out []int
	for _, s := range strings.Split(*flagNodes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			t.Fatalf("-cluster.nodes: bad node count %q", s)
		}
		out = append(out, n)
	}
	return out
}

// tpchHost returns a shared small TPC-H host database.
func tpchHost(t testing.TB) *hostdb.Database {
	t.Helper()
	tpchOnce.Do(func() {
		db := hostdb.New()
		if err := tpch.PopulateHostDB(db, tpch.Config{ScaleFactor: 0.002, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		tpchDB = db
	})
	return tpchDB
}

// newTray builds a tray over the host and loads every TPC-H table with the
// auto policy (small dimensions replicate, facts hash-shard on column 0, so
// lineitem and orders co-partition on orderkey).
func newTray(t testing.TB, db *hostdb.Database, cfg cluster.Config) *cluster.Tray {
	t.Helper()
	tray, err := cluster.New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tpch.TableNames() {
		if err := tray.Load(name, nil); err != nil {
			tray.Close()
			t.Fatalf("load %s: %v", name, err)
		}
	}
	t.Cleanup(tray.Close)
	return tray
}

// bag renders every row and returns the sorted multiset.
func bag(rel *ops.Relation) []string {
	rows := make([]string, rel.Rows())
	var sb strings.Builder
	for i := range rows {
		sb.Reset()
		for c := 0; c < rel.NumCols(); c++ {
			sb.WriteString(rel.Render(i, c))
			sb.WriteByte('|')
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return rows
}

func sameBags(t *testing.T, label string, want, got *ops.Relation) {
	t.Helper()
	if want.NumCols() != got.NumCols() {
		t.Fatalf("%s: column count host=%d tray=%d", label, want.NumCols(), got.NumCols())
	}
	wb, gb := bag(want), bag(got)
	if len(wb) != len(gb) {
		t.Fatalf("%s: row count host=%d tray=%d", label, len(wb), len(gb))
	}
	for i := range wb {
		if wb[i] != gb[i] {
			t.Fatalf("%s: row %d differs:\nhost: %s\ntray: %s", label, i, wb[i], gb[i])
		}
	}
}

// TestTPCHDistributedIdentity is the acceptance battery: all TPC-H queries
// on trays of 1, 2, 4 and 8 nodes must return exactly the single-node
// result (the host row engine is the oracle).
func TestTPCHDistributedIdentity(t *testing.T) {
	db := tpchHost(t)
	for _, nodes := range nodeSweep(t, []int{1, 2, 4, 8}) {
		tray := newTray(t, db, cluster.Config{Nodes: nodes})
		for _, q := range tpch.Queries() {
			want, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
			if err != nil {
				t.Fatalf("host %s: %v", q.Name, err)
			}
			got, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86})
			if err != nil {
				t.Fatalf("tray(%d) %s: %v", nodes, q.Name, err)
			}
			sameBags(t, fmt.Sprintf("nodes=%d %s", nodes, q.Name), want.Rel, got.Rel)
		}
	}
}

// TestTPCHDistributedIdentityDPU spot-checks the simulated-DPU mode lane:
// aggregation-heavy and join-heavy queries on a 4-node tray.
func TestTPCHDistributedIdentityDPU(t *testing.T) {
	db := tpchHost(t)
	tray := newTray(t, db, cluster.Config{Nodes: 4})
	for _, name := range []string{"Q1", "Q6", "Q12", "Q14"} {
		q, ok := tpch.QueryByName(name)
		if !ok {
			t.Fatalf("unknown query %s", name)
		}
		want, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
		if err != nil {
			t.Fatalf("host %s: %v", name, err)
		}
		got, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeDPU})
		if err != nil {
			t.Fatalf("tray %s: %v", name, err)
		}
		sameBags(t, "dpu "+name, want.Rel, got.Rel)
	}
}

// TestShardedEverythingIdentity forces every table — including the tiny
// dimensions — onto the hash-sharding path (ReplicateMaxRows < 0), so
// repartitioning joins, broadcasts and empty shards are all exercised.
func TestShardedEverythingIdentity(t *testing.T) {
	db := tpchHost(t)
	for _, nodes := range nodeSweep(t, []int{2, 4, 8}) {
		tray := newTray(t, db, cluster.Config{Nodes: nodes, ReplicateMaxRows: -1})
		for _, q := range tpch.Queries() {
			want, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
			if err != nil {
				t.Fatalf("host %s: %v", q.Name, err)
			}
			got, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86})
			if err != nil {
				t.Fatalf("tray(%d) %s: %v", nodes, q.Name, err)
			}
			sameBags(t, fmt.Sprintf("sharded nodes=%d %s", nodes, q.Name), want.Rel, got.Rel)
		}
	}
}

// TestNetAccountingReconciles checks the exchange accounting invariant: the
// per-exchange stats, the Result totals, the rapid_net_* counters and the
// energy decomposition must all describe the same bytes.
func TestNetAccountingReconciles(t *testing.T) {
	db := tpchHost(t)
	reg := obs.NewRegistry()
	tray := newTray(t, db, cluster.Config{Nodes: 4, ReplicateMaxRows: -1, Metrics: reg})

	counter := func(name string) int64 { return reg.Counter(name).Value() }
	beforeRows, beforeBytes := counter("rapid_net_rows_total"), counter("rapid_net_bytes_total")
	beforeTiles, beforeEx := counter("rapid_net_tiles_total"), counter("rapid_net_exchanges_total")

	q, _ := tpch.QueryByName("Q12") // lineitem ⋈ orders + group-by: shuffle, gather, partials
	res, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exchanges) == 0 {
		t.Fatal("expected exchanges on a sharded join")
	}
	var rows, bytes, tiles int64
	var secs float64
	for _, ex := range res.Exchanges {
		rows += ex.MovedRows
		bytes += ex.MovedBytes
		tiles += ex.Tiles
		secs += ex.Seconds
	}
	if rows != res.NetRows || bytes != res.NetBytes || tiles != res.NetTiles {
		t.Fatalf("exchange sums (%d rows, %d bytes, %d tiles) != result totals (%d, %d, %d)",
			rows, bytes, tiles, res.NetRows, res.NetBytes, res.NetTiles)
	}
	if secs != res.NetSeconds {
		t.Fatalf("exchange seconds %v != net seconds %v", secs, res.NetSeconds)
	}
	if got, want := res.Energy.NetFJ, power.LinkEnergyFJ(res.NetBytes); got != want {
		t.Fatalf("net energy %d fJ != LinkEnergyFJ(%d) = %d", got, res.NetBytes, want)
	}
	if d := counter("rapid_net_rows_total") - beforeRows; d != res.NetRows {
		t.Fatalf("counter rows delta %d != %d", d, res.NetRows)
	}
	if d := counter("rapid_net_bytes_total") - beforeBytes; d != res.NetBytes {
		t.Fatalf("counter bytes delta %d != %d", d, res.NetBytes)
	}
	if d := counter("rapid_net_tiles_total") - beforeTiles; d != res.NetTiles {
		t.Fatalf("counter tiles delta %d != %d", d, res.NetTiles)
	}
	if d := counter("rapid_net_exchanges_total") - beforeEx; d != int64(len(res.Exchanges)) {
		t.Fatalf("counter exchanges delta %d != %d", d, len(res.Exchanges))
	}
	// The makespan decomposes exactly.
	if got := res.NodeSimSeconds + res.NetSeconds + res.CoordSimSeconds; got != res.SimSeconds {
		t.Fatalf("makespan %v != node %v + net %v + coord %v",
			res.SimSeconds, res.NodeSimSeconds, res.NetSeconds, res.CoordSimSeconds)
	}
}
