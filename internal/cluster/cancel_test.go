package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/tpch"
)

// TestTrayDeadlineCancelsAllNodes: a deadline expiring mid-query — during
// admission, node-local execution or an exchange — must cancel every node
// within one tile / work unit, return the context error, and leak no
// goroutines. The everything-sharded 8-node layout maximizes the exchange
// work a cancellation can land in the middle of.
func TestTrayDeadlineCancelsAllNodes(t *testing.T) {
	db := tpchHost(t)
	tray := newTray(t, db, cluster.Config{Nodes: 8, ReplicateMaxRows: -1})
	q, _ := tpch.QueryByName("Q12") // shuffle + gather + partial aggregation

	// Warm up once so lazily started node pools don't count as leaks.
	if _, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		// Sweep the deadline across the query's lifetime so different runs
		// expire in different phases (admission, scan, shuffle, merge).
		d := time.Duration(1+i*i*25) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), d)
		start := time.Now()
		_, err := tray.QueryCtx(ctx, q.SQL, cluster.QueryOptions{Mode: qef.ModeX86})
		took := time.Since(start)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iter %d: err = %v, want context.DeadlineExceeded or success", i, err)
		}
		// Cancellation is observed per exchange tile / scheduler work unit:
		// even generously, the whole tray must stop well under a second.
		if err != nil && took > 2*time.Second {
			t.Fatalf("iter %d: cancellation took %v", i, took)
		}
	}

	// All node admissions must be back and no per-node executor goroutine
	// may outlive its canceled query. Give the runtime a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after 20 canceled tray queries",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTrayOverloadSheds: one overloaded node sheds the whole tray query
// with ErrOverloaded, and the admissions already granted on earlier nodes
// are released — repeated sheds must not exhaust the healthy nodes, and the
// tray must run normally once the hot node drains.
func TestTrayOverloadSheds(t *testing.T) {
	db := tpchHost(t)
	tray := newTray(t, db, cluster.Config{
		Nodes: 4,
		Sched: sched.Config{MaxConcurrent: 1, MaxQueued: 1},
	})
	q, _ := tpch.QueryByName("Q6")

	// Saturate node 2: one admission running, one waiter filling the queue.
	hot := tray.NodeScheduler(2)
	hold, err := hot.Admit(context.Background(), sched.Request{})
	if err != nil {
		t.Fatalf("hold: %v", err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			adm, err := hot.Admit(wctx, sched.Request{})
			if err == nil {
				adm.Release()
				return
			}
			if errors.Is(err, sched.ErrOverloaded) {
				// The probe below transiently held the queue slot; retry
				// until this waiter occupies it.
				time.Sleep(100 * time.Microsecond)
				continue
			}
			return // wctx canceled: test shutting down
		}
	}()
	// Wait until the waiter occupies the queue slot, so the tray query's
	// admission on node 2 fast-fails instead of queueing. The probe uses a
	// short deadline: if it wins the race for the empty queue slot it bails
	// out with DeadlineExceeded and frees the slot for the waiter.
	for i := 0; ; i++ {
		pctx, pcancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, perr := hot.Admit(pctx, sched.Request{})
		pcancel()
		if errors.Is(perr, sched.ErrOverloaded) {
			break
		}
		if perr == nil {
			t.Fatal("probe admission unexpectedly succeeded on a held scheduler")
		}
		if i > 500 {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// Every attempt sheds on node 2; nodes 0 and 1 must have their
	// admissions released each time or the third attempt would hang on
	// node 0's single slot.
	for i := 0; i < 3; i++ {
		if _, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86}); !errors.Is(err, sched.ErrOverloaded) {
			t.Fatalf("attempt %d: err = %v, want sched.ErrOverloaded", i, err)
		}
	}

	wcancel()
	wg.Wait()
	hold.Release()
	if _, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86}); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestTrayConcurrentQueryRace drives one shared tray from many goroutines —
// half running to completion and checked against the host oracle, half
// canceled midway — so the race detector sees admission, exchange,
// cancellation fan-out and telemetry running concurrently.
func TestTrayConcurrentQueryRace(t *testing.T) {
	db := tpchHost(t)
	tray := newTray(t, db, cluster.Config{Nodes: 4, ReplicateMaxRows: -1})
	q, _ := tpch.QueryByName("Q12")
	want, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if (w+i)%2 == 0 {
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(1+w*100+i*37)*time.Microsecond)
					_, err := tray.QueryCtx(ctx, q.SQL, cluster.QueryOptions{Mode: qef.ModeX86})
					cancel()
					if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, sched.ErrOverloaded) {
						errs <- fmt.Errorf("worker %d iter %d (canceled lane): %v", w, i, err)
						return
					}
					continue
				}
				res, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86})
				if err != nil {
					if errors.Is(err, sched.ErrOverloaded) {
						continue // load shedding is correct behavior
					}
					errs <- fmt.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				wb, gb := bag(want.Rel), bag(res.Rel)
				if len(wb) != len(gb) {
					errs <- fmt.Errorf("worker %d iter %d: rows host=%d tray=%d", w, i, len(wb), len(gb))
					return
				}
				for r := range wb {
					if wb[r] != gb[r] {
						errs <- fmt.Errorf("worker %d iter %d: row %d differs", w, i, r)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
