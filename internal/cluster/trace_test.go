package cluster_test

import (
	"encoding/json"
	"testing"

	"rapid/internal/cluster"
	"rapid/internal/obs"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

// TestDistributedTraceGoldenStructure is the golden-structure test for
// stitched distributed traces: a 4-node TPC-H Q12 run with trace recording
// on must produce one Chrome-trace process with a coordinator lane plus one
// lane per node, fragment profiles that pass the accounting invariants and
// reconcile with the tray's per-node counters, and flow events that match
// the exchange statistics exactly.
func TestDistributedTraceGoldenStructure(t *testing.T) {
	const nodes = 4
	db := tpchHost(t)
	tray := newTray(t, db, cluster.Config{Nodes: nodes})
	defer tray.Close()
	q, _ := tpch.QueryByName("Q12") // co-partitioned join + shuffle-free agg + gather

	res, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeDPU, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("Trace empty with QueryOptions.Trace set")
	}

	// Step shape: exactly one of NodeProfiles / Coord / Exchange per step,
	// and the exchange steps mirror res.Exchanges one-to-one in order.
	var exSpans []*obs.ExchangeSpan
	var coordCycles, nodeCycles int64
	perNode := make([]int64, nodes)
	for _, st := range res.Trace {
		set := 0
		if st.NodeProfiles != nil {
			set++
		}
		if st.Coord != nil {
			set++
		}
		if st.Exchange != nil {
			set++
		}
		if set != 1 {
			t.Fatalf("step %q sets %d groups, want exactly 1", st.Label, set)
		}
		switch {
		case st.Exchange != nil:
			exSpans = append(exSpans, st.Exchange)
		case st.Coord != nil:
			if err := st.Coord.CheckInvariants(); err != nil {
				t.Fatalf("coordinator fragment %q: %v", st.Label, err)
			}
			coordCycles += st.Coord.TotalCycles()
		default:
			for i, p := range st.NodeProfiles {
				if p == nil {
					continue
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("node %d fragment %q: %v", i, st.Label, err)
				}
				perNode[i] += p.TotalCycles()
				nodeCycles += p.TotalCycles()
			}
		}
	}
	if len(exSpans) != len(res.Exchanges) {
		t.Fatalf("trace has %d exchange steps, result has %d exchanges", len(exSpans), len(res.Exchanges))
	}
	var wantFlows int
	for i, sp := range exSpans {
		st := res.Exchanges[i]
		if sp.Kind != st.Kind.String() || sp.MovedRows != st.MovedRows || sp.MovedBytes != st.MovedBytes {
			t.Fatalf("exchange %d: span %s/%d/%d vs stats %s/%d/%d",
				i, sp.Kind, sp.MovedRows, sp.MovedBytes, st.Kind, st.MovedRows, st.MovedBytes)
		}
		var rows int64
		for _, f := range sp.Flows() {
			rows += f.Rows
		}
		if rows != st.MovedRows {
			t.Fatalf("exchange %d (%s): flow rows sum to %d, MovedRows is %d", i, sp.Kind, rows, st.MovedRows)
		}
		wantFlows += len(sp.Flows())
	}
	// Q12 always ends in a gather of the partial aggregates: 4 contributing
	// nodes means at least 4 flows even when the join is fully co-located.
	if wantFlows < nodes {
		t.Fatalf("only %d flows; the final gather alone contributes %d", wantFlows, nodes)
	}

	// Fragment cycle sums reconcile with the tray's own counters.
	for i := range perNode {
		if perNode[i] != res.PerNode[i].Cycles {
			t.Fatalf("node %d: trace fragments sum to %d cycles, PerNode reports %d", i, perNode[i], res.PerNode[i].Cycles)
		}
	}
	if got := nodeCycles + coordCycles; got != res.TotalCycles {
		t.Fatalf("trace cycles %d (nodes %d + coord %d) != TotalCycles %d", got, nodeCycles, coordCycles, res.TotalCycles)
	}

	// Rendered trace: one process, a named lane per node plus the
	// coordinator, and one flow start/finish pair per cross-node stream.
	b := obs.NewTraceBuilder()
	b.AddDistributedQuery("Q12", qef.ModeDPU.String(), nodes, res.Trace)
	data, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	lanes := map[int]string{}
	pids := map[int]bool{}
	starts, finishes := 0, 0
	var flowRows int64
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			lanes[ev.Tid], _ = ev.Args["name"].(string)
		case ev.Ph == "s":
			starts++
			flowRows += int64(ev.Args["rows"].(float64))
		case ev.Ph == "f":
			finishes++
		}
	}
	if len(pids) != 1 {
		t.Fatalf("trace spans %d processes, want 1", len(pids))
	}
	if len(lanes) != nodes+1 {
		t.Fatalf("trace has %d lanes, want %d (coordinator + %d nodes)", len(lanes), nodes+1, nodes)
	}
	if lanes[0] != "coordinator" {
		t.Fatalf("tid 0 named %q, want coordinator", lanes[0])
	}
	for i := 0; i < nodes; i++ {
		if want := "node " + string(rune('0'+i)); lanes[i+1] != want {
			t.Fatalf("tid %d named %q, want %q", i+1, lanes[i+1], want)
		}
	}
	if starts != wantFlows || finishes != wantFlows {
		t.Fatalf("flow events %d/%d, want %d starts and finishes (one per exchange stream)", starts, finishes, wantFlows)
	}
	var wantRows int64
	for _, st := range res.Exchanges {
		wantRows += st.MovedRows
	}
	if flowRows != wantRows {
		t.Fatalf("flow rows total %d, exchange MovedRows total %d", flowRows, wantRows)
	}
}

// TestTrayTraceOffByDefault pins that trace recording costs nothing unless
// asked for: no Trace steps without the option.
func TestTrayTraceOffByDefault(t *testing.T) {
	db := tpchHost(t)
	tray := newTray(t, db, cluster.Config{Nodes: 2})
	defer tray.Close()
	q, _ := tpch.QueryByName("Q6")
	res, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("Trace recorded without QueryOptions.Trace: %d steps", len(res.Trace))
	}
}
