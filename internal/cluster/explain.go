package cluster

import (
	"fmt"
	"strings"
)

// renderAnalyze renders the distributed EXPLAIN ANALYZE report: the
// execution-order trace (node-local fragments, exchanges, coordinator
// operators), one span per exchange with its row/byte/tile/link-time
// accounting, the per-node resource breakdown, and the query totals. All
// quantities are modeled, so the report is deterministic for a given query
// and tray shape.
func (q *query) renderAnalyze(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distributed Plan (nodes=%d, mode=%s)\n", res.Nodes, q.mode)
	b.WriteString("Trace:\n")
	for i, s := range q.steps {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, s)
	}
	b.WriteString("Exchanges:\n")
	if len(res.Exchanges) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, st := range res.Exchanges {
		fmt.Fprintf(&b, "  %-9s %-28s rows_in=%-7d rows_out=%-7d moved_rows=%-7d bytes=%-9d tiles=%-4d link_us=%.2f\n",
			st.Kind.String(), st.Label, st.RowsIn, st.RowsOut, st.MovedRows, st.MovedBytes, st.Tiles, st.Seconds*1e6)
	}
	b.WriteString("Per-node:\n")
	for i, ns := range res.PerNode {
		fmt.Fprintf(&b, "  node%-2d cycles=%-10d dms_rd=%-10d dms_wr=%-10d sim_us=%.2f\n",
			i, ns.Cycles, ns.DMSReadBytes, ns.DMSWriteBytes, ns.SimSeconds*1e6)
	}
	if res.TilesPruned > 0 || res.ShardsPruned > 0 {
		fmt.Fprintf(&b, "Pruning: tiles_pruned=%d shards_pruned=%d via zone maps\n",
			res.TilesPruned, res.ShardsPruned)
	}
	fmt.Fprintf(&b, "Net: rows=%d bytes=%d tiles=%d link_us=%.2f energy_nj=%d\n",
		res.NetRows, res.NetBytes, res.NetTiles, res.NetSeconds*1e6, res.Energy.NetFJ/1e6)
	fmt.Fprintf(&b, "Makespan: sim_us=%.2f (node=%.2f net=%.2f coord=%.2f)\n",
		res.SimSeconds*1e6, res.NodeSimSeconds*1e6, res.NetSeconds*1e6, res.CoordSimSeconds*1e6)
	return b.String()
}
