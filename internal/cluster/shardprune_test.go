package cluster_test

import (
	"strings"
	"testing"

	"rapid/internal/cluster"
	"rapid/internal/coltypes"
	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// rangeShardedTray builds a 3-node tray over a 300-row table range-sharded
// on id with bounds {100, 200}: node 0 holds id 0..99, node 1 100..199,
// node 2 200..299.
func rangeShardedTray(t *testing.T) (*hostdb.Database, *cluster.Tray) {
	t.Helper()
	db := hostdb.New()
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "id", Type: coltypes.Int()},
		storage.ColumnDef{Name: "val", Type: coltypes.Int()},
	)
	if _, err := db.CreateTable("m", schema); err != nil {
		t.Fatal(err)
	}
	rows := make([][]storage.Value, 300)
	for i := range rows {
		rows[i] = []storage.Value{storage.IntValue(int64(i)), storage.IntValue(int64(i * 2))}
	}
	if _, err := db.Insert("m", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load("m", hostdb.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	tray, err := cluster.New(db, cluster.Config{Nodes: 3, ReplicateMaxRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tray.Load("m", &cluster.ShardSpec{
		Policy: storage.RangeSharded, Key: 0, Bounds: []int64{100, 200},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tray.Close(); db.Close() })
	return db, tray
}

// TestShardZonePruning checks the coordinator-level prune: a predicate that
// only the first range shard can satisfy must skip the other two node
// fragments entirely, without changing the answer.
func TestShardZonePruning(t *testing.T) {
	_, tray := rangeShardedTray(t)
	sql := "SELECT id, val FROM m WHERE id < 50"

	on, err := tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeX86, Analyze: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Rel.Rows() != 50 {
		t.Fatalf("rows = %d, want 50", on.Rel.Rows())
	}
	if on.ShardsPruned != 2 {
		t.Fatalf("ShardsPruned = %d, want 2 (nodes holding id >= 100)", on.ShardsPruned)
	}
	if c := tray.Metrics().Counter("rapid_shards_pruned_total").Value(); c != 2 {
		t.Fatalf("rapid_shards_pruned_total = %d, want 2", c)
	}
	if !strings.Contains(on.Analyze, "shards_pruned=2") {
		t.Fatalf("EXPLAIN ANALYZE missing pruning line:\n%s", on.Analyze)
	}

	off, err := tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeX86, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.ShardsPruned != 0 {
		t.Fatalf("DisablePruning still pruned %d shards", off.ShardsPruned)
	}
	sameBags(t, "pruned vs unpruned", off.Rel, on.Rel)

	// The skipped nodes must not have executed anything: zero cycles, zero
	// DMS traffic on the DPU run.
	don, err := tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	idle := 0
	for _, ns := range don.PerNode {
		if ns.Cycles == 0 && ns.DMSReadBytes == 0 && ns.DMSWriteBytes == 0 {
			idle++
		}
	}
	if idle != 2 {
		t.Fatalf("pruned nodes billed work: per-node stats %+v", don.PerNode)
	}
}

// TestShardZonePruningAllShards checks the degenerate case: a contradiction
// prunes every fragment, and the result keeps its schema with zero rows.
func TestShardZonePruningAllShards(t *testing.T) {
	_, tray := rangeShardedTray(t)
	res, err := tray.Query("SELECT id, val FROM m WHERE id < 0", cluster.QueryOptions{Mode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Rows() != 0 || res.Rel.NumCols() != 2 {
		t.Fatalf("rel = %d rows x %d cols, want 0 x 2", res.Rel.Rows(), res.Rel.NumCols())
	}
	if res.ShardsPruned != 3 {
		t.Fatalf("ShardsPruned = %d, want 3", res.ShardsPruned)
	}
}

// TestShardZonePruningSparesAggregations pins the soundness guard: scalar
// aggregations over an emptied shard still produce identity rows, so the
// coordinator must never shard-prune a distributed group-by fragment even
// when every zone rejects the predicate.
func TestShardZonePruningSparesAggregations(t *testing.T) {
	_, tray := rangeShardedTray(t)
	res, err := tray.Query("SELECT COUNT(*), MIN(id) FROM m WHERE id < 0", cluster.QueryOptions{Mode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsPruned != 0 {
		t.Fatalf("aggregation fragments were shard-pruned (%d)", res.ShardsPruned)
	}
	if res.Rel.Rows() != 1 {
		t.Fatalf("scalar aggregate rows = %d, want 1", res.Rel.Rows())
	}
	if got := res.Rel.Cols[0].Data.Get(0); got != 0 {
		t.Fatalf("COUNT(*) = %d, want 0", got)
	}
}
