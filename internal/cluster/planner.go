package cluster

import (
	"fmt"

	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/storage"
)

// The distributed planner works on N lockstep plan trees — nodes[i] is node
// i's structurally-identical copy of the query plan, differing only in
// which shard its Scan leaves read (rewriteForNode). tryLocal classifies a
// subtree's locality bottom-up: a fragment is node-local when every node
// can execute its copy over its own shards and the union of the per-node
// results equals the global result. Partitioned joins that are not
// co-located get exchange operators spliced in as materialized relation
// leaves (relLeaf), executed eagerly — the tray's version of the paper's
// "maximally push work to where the data lives".

// relLeaf is a plan leaf over an exchange output; CompileWithInputs maps it
// to a qcomp relation node.
type relLeaf struct {
	rel *ops.Relation
	fs  []plan.Field
}

func newRelLeaf(rel *ops.Relation) *relLeaf {
	fs := make([]plan.Field, len(rel.Cols))
	for i, c := range rel.Cols {
		fs[i] = plan.Field{Name: c.Name, Type: c.Type, Dict: c.Dict}
	}
	return &relLeaf{rel: rel, fs: fs}
}

func (r *relLeaf) Schema() []plan.Field  { return r.fs }
func (r *relLeaf) Children() []plan.Node { return nil }
func (r *relLeaf) String() string        { return fmt.Sprintf("Exchange[rows=%d]", r.rel.Rows()) }

// rewriteForNode derives node i's lockstep plan from the coordinator-bound
// tree: Scans are re-targeted at node i's shard replica, everything else is
// shallow-copied with the same (immutable) expressions. Binding once and
// rewriting — instead of binding per node — keeps the join order identical
// on every node even when shard statistics differ.
func (t *Tray) rewriteForNode(n plan.Node, nodeID int) (plan.Node, error) {
	switch node := n.(type) {
	case *plan.Scan:
		shard, err := t.shardFor(nodeID, node.Table.Name())
		if err != nil {
			return nil, err
		}
		return plan.NewScan(shard, node.SCN, append([]int(nil), node.Cols...)), nil
	case *plan.Filter:
		in, err := t.rewriteForNode(node.Input, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.Filter{Input: in, Pred: node.Pred}, nil
	case *plan.Project:
		in, err := t.rewriteForNode(node.Input, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.Project{Input: in, Exprs: node.Exprs, Names: node.Names}, nil
	case *plan.Join:
		l, err := t.rewriteForNode(node.Left, nodeID)
		if err != nil {
			return nil, err
		}
		r, err := t.rewriteForNode(node.Right, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.Join{Type: node.Type, Left: l, Right: r, LeftKeys: node.LeftKeys, RightKeys: node.RightKeys}, nil
	case *plan.GroupBy:
		in, err := t.rewriteForNode(node.Input, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.GroupBy{Input: in, Keys: node.Keys, Aggs: node.Aggs}, nil
	case *plan.Sort:
		in, err := t.rewriteForNode(node.Input, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.Sort{Input: in, Keys: node.Keys}, nil
	case *plan.Limit:
		in, err := t.rewriteForNode(node.Input, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.Limit{Input: in, K: node.K}, nil
	case *plan.SetOp:
		l, err := t.rewriteForNode(node.Left, nodeID)
		if err != nil {
			return nil, err
		}
		r, err := t.rewriteForNode(node.Right, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.SetOp{Kind: node.Kind, Left: l, Right: r}, nil
	case *plan.Window:
		in, err := t.rewriteForNode(node.Input, nodeID)
		if err != nil {
			return nil, err
		}
		return &plan.Window{Input: in, Func: node.Func, PartitionBy: node.PartitionBy,
			OrderBy: node.OrderBy, ValueCol: node.ValueCol, Name: node.Name}, nil
	}
	return nil, fmt.Errorf("cluster: cannot distribute plan node %T", n)
}

// recipe is a node-local execution plan for one subtree: per-node trees to
// compile (possibly with relLeaf exchange inputs) plus the partitioning
// state of the combined output.
type recipe struct {
	// repl: every node produces the identical full result (subtree touches
	// only replicated tables).
	repl bool
	// partCol is the output column every node's rows are partitioned on
	// (-1 unknown/row-sliced); part is the partition function. Valid only
	// when !repl.
	partCol int
	part    *storage.ShardMap
	trees   []plan.Node
	leaves  []map[plan.Node]*ops.Relation
}

func childAt(nodes []plan.Node, k int) []plan.Node {
	out := make([]plan.Node, len(nodes))
	for i, n := range nodes {
		out[i] = n.Children()[k]
	}
	return out
}

func mergeLeaves(a, b []map[plan.Node]*ops.Relation) []map[plan.Node]*ops.Relation {
	out := make([]map[plan.Node]*ops.Relation, len(a))
	for i := range a {
		m := make(map[plan.Node]*ops.Relation, len(a[i])+len(b[i]))
		for k, v := range a[i] {
			m[k] = v
		}
		for k, v := range b[i] {
			m[k] = v
		}
		out[i] = m
	}
	return out
}

func emptyLeaves(n int) []map[plan.Node]*ops.Relation {
	return make([]map[plan.Node]*ops.Relation, n)
}

// alignedKey returns the join-key index whose column is the recipe's
// partition column, or -1: the side is already partitioned on that key.
func alignedKey(rec *recipe, keys []int) int {
	if rec.repl || rec.partCol < 0 || rec.part == nil {
		return -1
	}
	for k, c := range keys {
		if c == rec.partCol {
			return k
		}
	}
	return -1
}

// tryLocal classifies the subtree and, when it is node-local (possibly
// after exchanges), returns the per-node recipe. Exchanges are executed
// eagerly here — by the time a recipe is returned, its relLeaf inputs are
// materialized and distributed.
func (q *query) tryLocal(nodes []plan.Node) (*recipe, bool, error) {
	n := q.nodes()
	switch n0 := nodes[0].(type) {
	case *plan.Scan:
		sm := n0.Table.ShardMap()
		if sm == nil {
			return nil, false, fmt.Errorf("cluster: table %q carries no shard map", n0.Table.Name())
		}
		rec := &recipe{
			repl:    sm.Policy == storage.Replicated,
			partCol: -1,
			trees:   append([]plan.Node(nil), nodes...),
			leaves:  emptyLeaves(n),
		}
		if !rec.repl {
			for ci, c := range n0.Cols {
				if c == sm.Key {
					rec.partCol, rec.part = ci, sm
					break
				}
			}
		}
		return rec, true, nil

	case *plan.Filter:
		child, ok, err := q.tryLocal(childAt(nodes, 0))
		if !ok || err != nil {
			return nil, false, err
		}
		trees := make([]plan.Node, n)
		for i := range trees {
			trees[i] = &plan.Filter{Input: child.trees[i], Pred: nodes[i].(*plan.Filter).Pred}
		}
		return &recipe{repl: child.repl, partCol: child.partCol, part: child.part,
			trees: trees, leaves: child.leaves}, true, nil

	case *plan.Project:
		child, ok, err := q.tryLocal(childAt(nodes, 0))
		if !ok || err != nil {
			return nil, false, err
		}
		partCol := -1
		if !child.repl && child.partCol >= 0 {
			for j, e := range n0.Exprs {
				if cr, isRef := e.(*plan.ColRef); isRef && cr.Idx == child.partCol {
					partCol = j
					break
				}
			}
		}
		part := child.part
		if partCol < 0 {
			part = nil
		}
		trees := make([]plan.Node, n)
		for i := range trees {
			pi := nodes[i].(*plan.Project)
			trees[i] = &plan.Project{Input: child.trees[i], Exprs: pi.Exprs, Names: pi.Names}
		}
		return &recipe{repl: child.repl, partCol: partCol, part: part,
			trees: trees, leaves: child.leaves}, true, nil

	case *plan.Join:
		l, ok, err := q.tryLocal(childAt(nodes, 0))
		if !ok || err != nil {
			return nil, false, err
		}
		r, ok, err := q.tryLocal(childAt(nodes, 1))
		if !ok || err != nil {
			return nil, false, err
		}
		return q.localizeJoin(nodes, l, r)
	}
	return nil, false, nil
}

// joinTrees assembles per-node join copies over the given child trees.
func joinTrees(nodes []plan.Node, lt, rt []plan.Node) []plan.Node {
	out := make([]plan.Node, len(nodes))
	for i := range nodes {
		ji := nodes[i].(*plan.Join)
		out[i] = &plan.Join{Type: ji.Type, Left: lt[i], Right: rt[i],
			LeftKeys: ji.LeftKeys, RightKeys: ji.RightKeys}
	}
	return out
}

// leafTrees turns per-node relations into relLeaf plan nodes plus their
// input bindings. shared, when non-nil, binds the one relation to every
// node (broadcast output) and parts is ignored.
func leafTrees(n int, parts []*ops.Relation, shared *ops.Relation) ([]plan.Node, []map[plan.Node]*ops.Relation) {
	trees := make([]plan.Node, n)
	leaves := make([]map[plan.Node]*ops.Relation, n)
	for i := 0; i < n; i++ {
		rel := shared
		if rel == nil {
			rel = parts[i]
		}
		leaf := newRelLeaf(rel)
		trees[i] = leaf
		leaves[i] = map[plan.Node]*ops.Relation{leaf: rel}
	}
	return trees, leaves
}

// localizeJoin distributes a join whose two children are node-local,
// inserting exchanges where the sides are not co-located:
//
//	repl ⋈ repl                       → local, replicated
//	part ⋈ part, co-partitioned on key → local (the co-location fast path)
//	part ⋈ repl                       → local, partitioned like the left
//	repl ⋈ part, inner                → local, partitioned like the right
//	repl ⋈ part, semi/anti/louter     → broadcast right + row-slice left
//	                                    (probing per node would duplicate)
//	part ⋈ part, one side aligned     → shuffle the other side to it
//	part ⋈ part, neither aligned      → shuffle both by the join key, or
//	                                    broadcast the small side when that
//	                                    moves fewer bytes
func (q *query) localizeJoin(nodes []plan.Node, l, r *recipe) (*recipe, bool, error) {
	n := q.nodes()
	j0 := nodes[0].(*plan.Join)
	inner := j0.Type == plan.InnerJoin
	nLeft := len(j0.Left.Schema())

	switch {
	case l.repl && r.repl:
		return &recipe{repl: true, partCol: -1,
			trees: joinTrees(nodes, l.trees, r.trees), leaves: mergeLeaves(l.leaves, r.leaves)}, true, nil

	case !l.repl && !r.repl:
		// Co-partitioned on a shared join key?
		for k := range j0.LeftKeys {
			if j0.LeftKeys[k] == l.partCol && j0.RightKeys[k] == r.partCol && l.part.SameFunction(r.part) {
				return &recipe{partCol: l.partCol, part: l.part,
					trees: joinTrees(nodes, l.trees, r.trees), leaves: mergeLeaves(l.leaves, r.leaves)}, true, nil
			}
		}
		if k := alignedKey(l, j0.LeftKeys); k >= 0 {
			// Left already lives on its join key: move only the right side.
			rparts, err := q.materialize(r, false, "shuffle input")
			if err != nil {
				return nil, false, err
			}
			shuffled, err := q.shuffle(rparts, j0.RightKeys[k], l.part,
				fmt.Sprintf("right by key[%d] to %s", k, l.part.Policy))
			if err != nil {
				return nil, false, err
			}
			rt, rl := leafTrees(n, shuffled, nil)
			return &recipe{partCol: l.partCol, part: l.part,
				trees: joinTrees(nodes, l.trees, rt), leaves: mergeLeaves(l.leaves, rl)}, true, nil
		}
		if k := alignedKey(r, j0.RightKeys); k >= 0 {
			lparts, err := q.materialize(l, false, "shuffle input")
			if err != nil {
				return nil, false, err
			}
			shuffled, err := q.shuffle(lparts, j0.LeftKeys[k], r.part,
				fmt.Sprintf("left by key[%d] to %s", k, r.part.Policy))
			if err != nil {
				return nil, false, err
			}
			lt, ll := leafTrees(n, shuffled, nil)
			return &recipe{partCol: j0.LeftKeys[k], part: r.part,
				trees: joinTrees(nodes, lt, r.trees), leaves: mergeLeaves(ll, r.leaves)}, true, nil
		}
		// Neither side aligned: materialize both, then pick the cheaper of
		// shuffling both by the first key pair or broadcasting one side.
		lparts, err := q.materialize(l, false, "exchange input")
		if err != nil {
			return nil, false, err
		}
		rparts, err := q.materialize(r, false, "exchange input")
		if err != nil {
			return nil, false, err
		}
		var bytesL, bytesR int64
		for i := 0; i < n; i++ {
			bytesL += relBytes(lparts[i])
			bytesR += relBytes(rparts[i])
		}
		shuffleCost := (bytesL + bytesR) / int64(n) * int64(n-1)
		bcastRCost := bytesR * int64(n-1)
		bcastLCost := bytesL * int64(n-1)
		if bcastRCost < shuffleCost && bcastRCost <= bcastLCost {
			full, err := q.broadcast(rparts, "right (small side)")
			if err != nil {
				return nil, false, err
			}
			lt, ll := leafTrees(n, lparts, nil)
			rt, rl := leafTrees(n, nil, full)
			return &recipe{partCol: l.partCol, part: l.part,
				trees: joinTrees(nodes, lt, rt), leaves: mergeLeaves(ll, rl)}, true, nil
		}
		if inner && bcastLCost < shuffleCost {
			full, err := q.broadcast(lparts, "left (small side)")
			if err != nil {
				return nil, false, err
			}
			lt, ll := leafTrees(n, nil, full)
			rt, rl := leafTrees(n, rparts, nil)
			partCol := -1
			if r.partCol >= 0 {
				partCol = nLeft + r.partCol
			}
			return &recipe{partCol: partCol, part: r.part,
				trees: joinTrees(nodes, lt, rt), leaves: mergeLeaves(ll, rl)}, true, nil
		}
		hash := &storage.ShardMap{Policy: storage.HashSharded, Key: 0, Nodes: n}
		ls, err := q.shuffle(lparts, j0.LeftKeys[0], hash, "left by join key")
		if err != nil {
			return nil, false, err
		}
		rs, err := q.shuffle(rparts, j0.RightKeys[0], hash, "right by join key")
		if err != nil {
			return nil, false, err
		}
		lt, ll := leafTrees(n, ls, nil)
		rt, rl := leafTrees(n, rs, nil)
		return &recipe{partCol: j0.LeftKeys[0], part: hash,
			trees: joinTrees(nodes, lt, rt), leaves: mergeLeaves(ll, rl)}, true, nil

	case !l.repl: // left partitioned, right replicated: probe stays put.
		return &recipe{partCol: l.partCol, part: l.part,
			trees: joinTrees(nodes, l.trees, r.trees), leaves: mergeLeaves(l.leaves, r.leaves)}, true, nil

	default: // left replicated, right partitioned
		if inner {
			partCol := -1
			if r.partCol >= 0 {
				partCol = nLeft + r.partCol
			}
			return &recipe{partCol: partCol, part: r.part,
				trees: joinTrees(nodes, l.trees, r.trees), leaves: mergeLeaves(l.leaves, r.leaves)}, true, nil
		}
		// Semi/anti/left-outer with a replicated probe side: per-node
		// probing would emit each left row once per node. Broadcast the
		// right side so every node sees the full build input, and slice the
		// replicated left by row index so each left row is probed exactly
		// once (a free "virtual repartition" — the copies are already
		// everywhere, no bytes move).
		rparts, err := q.materialize(r, false, "broadcast input")
		if err != nil {
			return nil, false, err
		}
		full, err := q.broadcast(rparts, "right (build side)")
		if err != nil {
			return nil, false, err
		}
		lparts, err := q.materialize(l, false, "replicated probe")
		if err != nil {
			return nil, false, err
		}
		trees := make([]plan.Node, n)
		leaves := make([]map[plan.Node]*ops.Relation, n)
		for i := 0; i < n; i++ {
			lleaf := newRelLeaf(sliceModulo(lparts[i], i, n))
			rleaf := newRelLeaf(full)
			ji := nodes[i].(*plan.Join)
			trees[i] = &plan.Join{Type: ji.Type, Left: lleaf, Right: rleaf,
				LeftKeys: ji.LeftKeys, RightKeys: ji.RightKeys}
			leaves[i] = map[plan.Node]*ops.Relation{lleaf: lleaf.rel, rleaf: full}
		}
		return &recipe{partCol: -1, trees: trees, leaves: leaves}, true, nil
	}
}
