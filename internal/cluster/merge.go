package cluster

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/ops"
	"rapid/internal/plan"
)

// Two-phase aggregation. The partial phase runs the node-local GroupBy with
// decomposable aggregates only:
//
//	SUM/MIN/MAX/COUNT/COUNT(*)  → unchanged (their partials fold exactly)
//	AVG                         → SUM + COUNT(*) partials, finalized at the
//	                              coordinator with the single-node formula
//	                              sum*100/cnt, so the integer truncation
//	                              happens once, on global totals
//	scalar (no GROUP BY)        → an extra __prows COUNT(*), because a
//	                              node with zero matching rows still emits
//	                              a partial row whose MIN/MAX columns hold
//	                              the 0 empty-input sentinel; the merge
//	                              must skip those, not fold the 0 in
//
// Grouped partials need no row guard: a group exists on a node only if at
// least one row fed it.

// partialAggs rewrites a node's aggregate list into its partial form.
func partialAggs(g *plan.GroupBy) []plan.AggExpr {
	out := make([]plan.AggExpr, 0, len(g.Aggs)+1)
	for _, a := range g.Aggs {
		if a.Kind == plan.Avg {
			out = append(out,
				plan.AggExpr{Kind: plan.Sum, Arg: a.Arg, Name: a.Name + "__psum"},
				plan.AggExpr{Kind: plan.CountStar, Name: a.Name + "__pcnt"})
			continue
		}
		out = append(out, a)
	}
	if len(g.Keys) == 0 {
		out = append(out, plan.AggExpr{Kind: plan.CountStar, Name: "__prows"})
	}
	return out
}

// aggLayout locates original aggregate j's partial state in the partial
// relation (absolute column indexes).
type aggLayout struct {
	kind plan.AggKind
	col  int // partial value column (SUM partial for AVG)
	cnt  int // partial COUNT(*) column (AVG only)
}

// partialLayout returns the per-aggregate layout plus the __prows column
// index (-1 for grouped aggregation).
func partialLayout(g *plan.GroupBy) (lay []aggLayout, prows int) {
	col := len(g.Keys)
	for _, a := range g.Aggs {
		if a.Kind == plan.Avg {
			lay = append(lay, aggLayout{kind: plan.Avg, col: col, cnt: col + 1})
			col += 2
			continue
		}
		lay = append(lay, aggLayout{kind: a.Kind, col: col})
		col++
	}
	prows = -1
	if len(g.Keys) == 0 {
		prows = col
	}
	return lay, prows
}

// pacc is one aggregate's fold state: a is the running value (SUM partial
// for AVG), b the running count (AVG), seen whether any non-empty partial
// contributed (scalar MIN/MAX).
type pacc struct {
	a, b int64
	seen bool
}

type mgroup struct {
	keys []int64
	accs []pacc
}

// mergePartials folds the gathered per-node partial rows into the final
// relation, using g's original (coordinator-bound) schema for the output
// column metadata. Group output order is first-appearance order in the
// gathered relation (node order, then each node's partial order) — a bag
// identical to the single-node result.
func (q *query) mergePartials(g *plan.GroupBy, gathered *ops.Relation) (*ops.Relation, error) {
	lay, prows := partialLayout(g)
	nk := len(g.Keys)
	outFields := g.Schema()
	if len(outFields) != nk+len(g.Aggs) {
		return nil, fmt.Errorf("cluster: group-by schema mismatch: %d fields for %d keys + %d aggs",
			len(outFields), nk, len(g.Aggs))
	}
	rows := gathered.Rows()

	fold := func(accs []pacc, r int) {
		alive := true
		if prows >= 0 {
			alive = gathered.Cols[prows].Data.Get(r) > 0
		}
		for j, l := range lay {
			v := gathered.Cols[l.col].Data.Get(r)
			switch l.kind {
			case plan.Sum, plan.Count, plan.CountStar:
				accs[j].a += v
				accs[j].seen = true
			case plan.Avg:
				accs[j].a += v
				accs[j].b += gathered.Cols[l.cnt].Data.Get(r)
				accs[j].seen = true
			case plan.Min:
				if alive && (!accs[j].seen || v < accs[j].a) {
					accs[j].a, accs[j].seen = v, true
				}
			case plan.Max:
				if alive && (!accs[j].seen || v > accs[j].a) {
					accs[j].a, accs[j].seen = v, true
				}
			}
		}
	}

	var order []*mgroup
	if nk == 0 {
		gr := &mgroup{accs: make([]pacc, len(lay))}
		order = append(order, gr)
		for r := 0; r < rows; r++ {
			fold(gr.accs, r)
		}
	} else {
		index := make(map[string]*mgroup, rows)
		keybuf := make([]byte, 0, nk*8)
		for r := 0; r < rows; r++ {
			keybuf = keybuf[:0]
			for k := 0; k < nk; k++ {
				v := uint64(gathered.Cols[k].Data.Get(r))
				keybuf = append(keybuf,
					byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
					byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
			}
			gr, ok := index[string(keybuf)]
			if !ok {
				gr = &mgroup{keys: make([]int64, nk), accs: make([]pacc, len(lay))}
				for k := 0; k < nk; k++ {
					gr.keys[k] = gathered.Cols[k].Data.Get(r)
				}
				index[string(keybuf)] = gr
				order = append(order, gr)
			}
			fold(gr.accs, r)
		}
	}

	n := len(order)
	cols := make([]ops.Col, 0, nk+len(lay))
	for k := 0; k < nk; k++ {
		vals := make([]int64, n)
		for i, gr := range order {
			vals[i] = gr.keys[k]
		}
		f := outFields[k]
		cols = append(cols, ops.Col{Name: f.Name, Type: f.Type, Dict: f.Dict, Data: coltypes.I64(vals)})
	}
	for j, l := range lay {
		vals := make([]int64, n)
		for i, gr := range order {
			acc := gr.accs[j]
			switch l.kind {
			case plan.Avg:
				if acc.b != 0 {
					vals[i] = acc.a * 100 / acc.b
				}
			case plan.Min, plan.Max:
				if acc.seen {
					vals[i] = acc.a
				}
			default:
				vals[i] = acc.a
			}
		}
		f := outFields[nk+j]
		cols = append(cols, ops.Col{Name: f.Name, Type: f.Type, Dict: f.Dict, Data: coltypes.I64(vals)})
	}
	return ops.NewRelation(cols)
}
