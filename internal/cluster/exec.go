package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"rapid/internal/coltypes"
	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/power"
	"rapid/internal/qcache"
	"rapid/internal/qcomp"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/sqlparse"
)

// QueryOptions tunes one tray query.
type QueryOptions struct {
	// Mode selects the per-node execution mode (ModeDPU simulates the SoC
	// timing model, ModeX86 runs the same kernels natively).
	Mode qef.Mode
	// Analyze renders the distributed EXPLAIN ANALYZE trace into
	// Result.Analyze. An `EXPLAIN ANALYZE <query>` SQL prefix sets it too.
	Analyze bool
	// Trace records per-node fragment profiles and exchange spans into
	// Result.Trace, ready for obs.TraceBuilder.AddDistributedQuery — one
	// stitched Chrome trace with a lane per node and flow events for every
	// cross-node data stream.
	Trace bool
	// DisablePruning turns off zone-map pruning at every level (shard
	// fragments at the coordinator, tiles inside each node). Metamorphic
	// test lanes use it to assert pruning never changes results.
	DisablePruning bool
	// NoCache bypasses the shared query cache for this query: no lookup, no
	// publication, and no singleflight participation.
	NoCache bool
}

// NodeStats is one node's resource consumption for a query.
type NodeStats struct {
	Cycles        int64
	DMSReadBytes  int64
	DMSWriteBytes int64
	SimSeconds    float64
}

// TrayEnergy is the energy decomposition of one distributed query:
// per-node + coordinator activity, interconnect transfer energy, and the
// idle floor of all N uncore domains over the query makespan.
type TrayEnergy struct {
	ActivityFJ int64 // dpCore cycles + DMS bytes, all nodes + coordinator
	NetFJ      int64 // power.LinkEnergyFJ over every exchanged byte
	IdleJ      float64
}

// TotalJoules returns the whole-tray energy of the query.
func (e TrayEnergy) TotalJoules() float64 {
	return float64(e.ActivityFJ+e.NetFJ)/power.FJPerJoule + e.IdleJ
}

// Result is the outcome of one distributed query.
type Result struct {
	Rel   *ops.Relation
	Nodes int

	// QueryID is the fleet-wide identifier the query was journaled under
	// (shared with the host database's active-query table).
	QueryID uint64

	// SimSeconds is the modeled distributed makespan: the slowest node's
	// simulated time, plus the serialized interconnect time, plus the
	// coordinator's merge time.
	SimSeconds      float64
	NodeSimSeconds  float64 // max over nodes
	CoordSimSeconds float64
	NetSeconds      float64

	NetRows, NetBytes, NetTiles int64
	Exchanges                   []ExchangeStats
	PerNode                     []NodeStats
	QueueWait                   time.Duration // max admission wait across nodes
	Energy                      TrayEnergy

	// TotalCycles is dpCore cycles across all nodes plus the coordinator
	// (the exact integer added to rapid_dpcore_cycles_total).
	TotalCycles int64
	// EnergyNJ is activity+idle energy in nanojoules — the exact integers
	// added to the energy counters, so journal sums reconcile with them.
	EnergyNJ int64
	// DMEMHighWater is the max DMEM bytes reserved on any dpCore of any
	// node during the query (ModeDPU only).
	DMEMHighWater int

	// ShardsPruned counts node fragments the coordinator skipped entirely
	// because the shard's zone summary proved the fragment empty; TilesPruned
	// sums the tiles zone maps skipped inside the nodes that did run.
	ShardsPruned int
	TilesPruned  int64

	// Cache reports the query's result-cache interaction: "hit", "miss",
	// "stale" (entry found but invalidated by a version mismatch), "bypass"
	// (NoCache or uncacheable), or "" when no cache is installed on the
	// host. Hits carry the producing execution's cost in CyclesSaved /
	// EnergySavedNJ and bill ~zero cycles, network traffic and energy.
	Cache         string
	CyclesSaved   int64
	EnergySavedNJ int64

	Explain string // logical plan (coordinator binding)
	Analyze string // distributed EXPLAIN ANALYZE (when requested)

	// Trace is the ordered fragment/exchange record for distributed trace
	// stitching (set when QueryOptions.Trace).
	Trace []obs.DistStep
}

// query is the per-execution state of one distributed query: the node and
// coordinator contexts, the cancellation fan-out, and the exchange trace.
type query struct {
	t    *Tray
	reg  *obs.Registry
	link LinkModel
	mode qef.Mode

	// outer is the caller's context; goCtx the derived cancelable context
	// every node executes under. Any node failure calls cancel, tearing
	// down the other nodes within one exchange tile / work unit.
	outer  context.Context
	goCtx  context.Context
	cancel context.CancelFunc

	nctx  []*qef.Context
	coord *qef.Context

	stats      []ExchangeStats
	netSeconds float64
	netBytes   int64
	netRows    int64
	netTiles   int64
	steps      []string // execution-order trace for EXPLAIN ANALYZE

	traceOn bool           // record fragment profiles + exchange spans
	trace   []obs.DistStep // stitched-trace steps, in execution order

	noPrune      bool // QueryOptions.DisablePruning, fanned to every context
	shardsPruned int  // node fragments skipped via shard zone summaries
}

func (q *query) nodes() int { return len(q.nctx) }

func (q *query) step(format string, args ...any) {
	q.steps = append(q.steps, fmt.Sprintf(format, args...))
}

func stripExplainAnalyze(sql string) (string, bool) {
	rest := strings.TrimSpace(sql)
	fields := strings.Fields(rest)
	if len(fields) >= 2 && strings.EqualFold(fields[0], "EXPLAIN") && strings.EqualFold(fields[1], "ANALYZE") {
		idx := strings.Index(strings.ToUpper(rest), "ANALYZE") + len("ANALYZE")
		return strings.TrimSpace(rest[idx:]), true
	}
	return sql, false
}

// Query executes a SQL query across the tray. See QueryCtx.
func (t *Tray) Query(sql string, opts QueryOptions) (*Result, error) {
	return t.QueryCtx(context.Background(), sql, opts)
}

// QueryCtx plans the query once at the coordinator, rewrites the plan into
// N lockstep per-node copies over the shard replicas, admits the query on
// every node's scheduler (all-or-nothing, in node order — ordered
// acquisition keeps concurrent tray queries deadlock-free), executes
// maximal node-local fragments in parallel with exchanges in between, and
// merges at the coordinator. Canceling goCtx (or any node failing) cancels
// every node within one exchange tile / scheduler work unit.
//
// Every query — including sheds, cancellations and failures — is journaled
// in the host database's query journal under a fleet-wide QueryID, and
// visible in the host's active-query table while it runs (cancel-by-ID
// tears the whole tray query down).
func (t *Tray) QueryCtx(goCtx context.Context, sql string, opts QueryOptions) (*Result, error) {
	if goCtx == nil {
		goCtx = context.Background()
	}
	if inner, ok := stripExplainAnalyze(sql); ok {
		sql = inner
		opts.Analyze = true
	}
	cctx, cancel := context.WithCancel(goCtx)
	defer cancel()
	start := time.Now()
	active := t.host.Active()
	id := active.NextID()
	h := active.Register(id, sql, opts.Mode.String(), t.NumNodes(), cancel)
	defer h.Done()

	// Literal normalization feeds the shared cache keys and the journal
	// fingerprint, exactly as on the host path: parameterized repeats of one
	// template group together. Unlexable statements keep the raw-SQL
	// fingerprint and bypass the cache.
	norm, normOK := normalizeForCache(sql)
	fp := obs.Fingerprint(sql)
	if normOK {
		fp = norm.TemplateFP
	}

	res, err := t.query(cctx, sql, norm, normOK, opts, h)
	wall := time.Since(start)

	rec := obs.QueryRecord{
		ID:          id,
		Fingerprint: fp,
		SQL:         sql,
		Mode:        opts.Mode.String(),
		Nodes:       t.NumNodes(),
		Outcome:     trayOutcome(err),
		WallNs:      int64(wall),
		Start:       start.UnixNano(),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if res != nil {
		res.QueryID = id
		if res.Rel != nil {
			rec.Rows = int64(res.Rel.Rows())
		}
		rec.Cycles = res.TotalCycles
		rec.EnergyNJ = res.EnergyNJ
		rec.NetBytes = res.NetBytes
		rec.QueueWaitNs = int64(res.QueueWait)
		rec.DMEMHighNow = int64(res.DMEMHighWater)
		rec.Cache = res.Cache
	}
	t.host.QueryJournal().Record(rec)
	t.reg.Histogram("cluster_query_seconds", obs.DefLatencyBuckets...).Observe(wall.Seconds())
	return res, err
}

// trayOutcome classifies a distributed query's terminal error for the
// journal (mirrors the host database's classification).
func trayOutcome(err error) obs.QueryOutcome {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, sched.ErrOverloaded):
		return obs.OutcomeShed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeCanceled
	}
	return obs.OutcomeError
}

func (t *Tray) queryCtx(goCtx context.Context, sql string, norm sqlparse.Normalized, usePlanCache bool, opts QueryOptions, h obs.ActiveHandle) (*Result, []qcache.Version, error) {
	h.SetPhase("planning")
	scn := t.host.CurrentSCN()
	cache := t.host.QueryCache()
	usePlanCache = usePlanCache && cache != nil
	var bound plan.Node
	var v0 []qcache.Version
	planKey := qcache.PlanKey{Template: norm.TemplateFP, Params: norm.ParamsFP, Scope: t.planScope()}
	if usePlanCache {
		if pe := cache.GetPlan(planKey, t.cacheVersion); pe != nil {
			if cloned, cerr := plan.CloneAtSCN(pe.Root, scn); cerr == nil {
				// Parse and coordinator bind skipped. The skeleton's Scan
				// leaves still point at bind-time shard replicas, but
				// rewriteForNode re-resolves every Scan by table name below,
				// so only names flow into execution — stale pointers can't.
				bound = cloned
				v0 = pe.Versions
			}
		}
	}
	if bound == nil {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, nil, err
		}
		if usePlanCache {
			v0, _ = t.cacheVersions(sqlparse.StmtTables(stmt))
		}
		// Bind once against node 0's shards — one join order for all nodes
		// even when per-shard statistics differ — then rewrite per node.
		bound, err = sqlparse.Bind(stmt, nodeCatalog{t: t, id: 0}, scn)
		if err != nil {
			return nil, nil, err
		}
		if usePlanCache && v0 != nil {
			// Validate-before-publish, as on the host: binding may itself
			// reload stale shards, so the skeleton is only sound when the
			// vector captured before parse still holds after bind.
			if cur, ok := t.cacheVersions(versionNames(v0)); ok && versionsEqual(v0, cur) {
				cache.PutPlan(planKey, &qcache.Plan{Root: bound, Versions: v0})
			} else {
				v0 = nil
			}
		}
	}
	n := t.NumNodes()
	plans := make([]plan.Node, n)
	for i := 0; i < n; i++ {
		var err error
		if plans[i], err = t.rewriteForNode(bound, i); err != nil {
			return nil, nil, err
		}
	}

	qctx, cancel := context.WithCancel(goCtx)
	defer cancel()
	q := &query{
		t: t, reg: t.reg, link: t.link, mode: opts.Mode,
		outer: goCtx, goCtx: qctx, cancel: cancel,
		traceOn: opts.Trace,
		noPrune: opts.DisablePruning,
	}

	// Per-node admission: each node's scheduler enforces its own
	// concurrency and queue limits; a single overloaded node sheds the
	// whole query (ErrOverloaded) after releasing what was admitted.
	h.SetPhase("queued")
	adms := make([]*sched.Admission, 0, n)
	release := func() {
		for _, a := range adms {
			a.Release()
		}
	}
	for i := 0; i < n; i++ {
		ctx := qef.NewContext(opts.Mode)
		ctx.Metrics = t.reg
		ctx.NoPrune = opts.DisablePruning
		adm, aerr := t.nodes[i].sched.Admit(goCtx, sched.Request{Cores: ctx.Workers(), QueryID: h.ID()})
		if aerr != nil {
			release()
			return nil, nil, aerr
		}
		adms = append(adms, adm)
		ctx.SetGoContext(qctx)
		ctx.Exec = adm
		q.nctx = append(q.nctx, ctx)
	}
	defer release()
	h.SetPhase("executing")
	q.coord = qef.NewContext(opts.Mode)
	q.coord.Metrics = t.reg
	q.coord.NoPrune = opts.DisablePruning
	q.coord.SetGoContext(qctx)

	rel, err := q.exec(plans)
	if err != nil {
		if cerr := goCtx.Err(); cerr != nil {
			return nil, nil, cerr
		}
		return nil, nil, err
	}

	res := &Result{
		Rel: rel, Nodes: n,
		NetSeconds: q.netSeconds, NetRows: q.netRows, NetBytes: q.netBytes, NetTiles: q.netTiles,
		Exchanges:    q.stats,
		Explain:      plan.Format(bound),
		ShardsPruned: q.shardsPruned,
	}
	em := power.DefaultEnergyModel()
	var totCycles, totRd, totWr int64
	for i, ctx := range q.nctx {
		cy := int64(ctx.SoC.TotalCycles())
		rd, wr := ctx.DMS.TotalsByDir()
		sim := ctx.SimElapsed()
		res.PerNode = append(res.PerNode, NodeStats{
			Cycles: cy, DMSReadBytes: rd.Bytes, DMSWriteBytes: wr.Bytes, SimSeconds: sim,
		})
		totCycles += cy
		totRd += rd.Bytes
		totWr += wr.Bytes
		res.TilesPruned += ctx.TilesPruned()
		if sim > res.NodeSimSeconds {
			res.NodeSimSeconds = sim
		}
		if w := adms[i].QueueWait(); w > res.QueueWait {
			res.QueueWait = w
		}
	}
	crd, cwr := q.coord.DMS.TotalsByDir()
	res.TilesPruned += q.coord.TilesPruned()
	totCycles += int64(q.coord.SoC.TotalCycles())
	totRd += crd.Bytes
	totWr += cwr.Bytes
	res.CoordSimSeconds = q.coord.SimElapsed()
	res.SimSeconds = res.NodeSimSeconds + res.NetSeconds + res.CoordSimSeconds
	res.TotalCycles = totCycles

	core, rdFJ, wrFJ := em.ActivityFJ(totCycles, totRd, totWr)
	res.Energy = TrayEnergy{
		ActivityFJ: core + rdFJ + wrFJ,
		NetFJ:      power.LinkEnergyFJ(q.netBytes),
		IdleJ:      float64(n) * em.UncoreIdleWatts * res.SimSeconds,
	}
	if opts.Mode == qef.ModeDPU {
		for _, ctx := range append(append([]*qef.Context(nil), q.nctx...), q.coord) {
			for _, co := range ctx.SoC.Cores() {
				if hw := co.DMEM().HighWater(); hw > res.DMEMHighWater {
					res.DMEMHighWater = hw
				}
			}
		}
	}

	// The per-query histograms observe the exact integers added to the
	// counters below, so histogram sums reconcile with counter totals
	// exactly (both stay below 2^53, where float64 addition is lossless).
	actNJ := res.Energy.ActivityFJ / 1e6
	idleNJ := int64(res.Energy.IdleJ * 1e9)
	res.EnergyNJ = actNJ + idleNJ

	m := t.reg
	m.Counter("rapid_dpcore_cycles_total").Add(totCycles)
	m.Counter("rapid_dms_read_bytes_total").Add(totRd)
	m.Counter("rapid_dms_write_bytes_total").Add(totWr)
	m.Counter("rapid_sim_microseconds_total").Add(int64(res.SimSeconds * 1e6))
	m.Counter("rapid_activity_energy_nanojoules_total").Add(actNJ)
	m.Counter("rapid_idle_energy_nanojoules_total").Add(idleNJ)
	m.Histogram("rapid_query_cycles", obs.DefCycleBuckets...).Observe(float64(totCycles))
	m.Histogram("rapid_query_energy_nanojoules", obs.DefEnergyNJBuckets...).Observe(float64(res.EnergyNJ))
	m.Histogram("rapid_query_net_bytes", obs.DefBytesBuckets...).Observe(float64(q.netBytes))

	if opts.Analyze {
		res.Analyze = q.renderAnalyze(res)
	}
	if q.traceOn {
		res.Trace = q.trace
	}
	return res, v0, nil
}

// exec runs lockstep plan trees and returns the combined (coordinator-side)
// result. Fragments below the first non-local operator run per node;
// aggregations distribute as partials; everything else merges at the
// coordinator.
func (q *query) exec(nodes []plan.Node) (*ops.Relation, error) {
	if err := q.goCtx.Err(); err != nil {
		return nil, err
	}
	switch nodes[0].(type) {
	case *plan.GroupBy:
		rec, ok, err := q.tryLocal(childAt(nodes, 0))
		if err != nil {
			return nil, err
		}
		if ok {
			return q.distributedGroupBy(nodes, rec)
		}
	case *plan.Scan, *plan.Filter, *plan.Project, *plan.Join:
		rec, ok, err := q.tryLocal(nodes)
		if err != nil {
			return nil, err
		}
		if ok {
			if rec.repl {
				// Every node would produce the identical relation: run the
				// fragment once and pull a single copy.
				parts, err := q.materialize(rec, true, "fragment")
				if err != nil {
					return nil, err
				}
				return q.gather(parts[:1], "result")
			}
			parts, err := q.materialize(rec, false, "fragment")
			if err != nil {
				return nil, err
			}
			return q.gather(parts, "result")
		}
	}
	return q.coordFragment(nodes)
}

// coordFragment executes one operator at the coordinator over the
// (recursively distributed) results of its children.
func (q *query) coordFragment(nodes []plan.Node) (*ops.Relation, error) {
	n0 := nodes[0]
	kids := n0.Children()
	var inputs map[plan.Node]*ops.Relation
	if len(kids) > 0 {
		inputs = make(map[plan.Node]*ops.Relation, len(kids))
		for k := range kids {
			rel, err := q.exec(childAt(nodes, k))
			if err != nil {
				return nil, err
			}
			inputs[kids[k]] = rel
		}
	}
	compiled, err := qcomp.CompileWithInputs(n0, inputs)
	if err != nil {
		return nil, err
	}
	var prof *obs.Profile
	var snap fragSnap
	if q.traceOn {
		prof = obs.NewProfile(q.mode.String(), q.coord.SoC.Config().NumCores, q.coord.SoC.Config().FreqHz, compiled.SpanDefs())
		snap = snapFrag(q.coord)
		q.coord.Prof = prof
	}
	rel, err := compiled.Execute(q.coord)
	if prof != nil {
		q.coord.Prof = nil
	}
	if err != nil {
		return nil, err
	}
	if prof != nil {
		finishFrag(prof, q.coord, snap)
		q.trace = append(q.trace, obs.DistStep{Label: "coordinator " + opName(n0), Coord: prof})
	}
	q.step("coordinator %s rows=%d", opName(n0), rel.Rows())
	return rel, nil
}

// distributedGroupBy aggregates in two phases: exact per-node partials
// (AVG lowered to SUM+COUNT, scalar aggregates carrying a __prows count so
// empty shards can't poison MIN/MAX with their 0 sentinel), gathered and
// folded at the coordinator with the same finalization arithmetic as the
// single-node engine — distributed answers stay bit-identical.
func (q *query) distributedGroupBy(nodes []plan.Node, rec *recipe) (*ops.Relation, error) {
	n := q.nodes()
	if rec.repl {
		trees := make([]plan.Node, n)
		for i := range trees {
			gi := nodes[i].(*plan.GroupBy)
			trees[i] = &plan.GroupBy{Input: rec.trees[i], Keys: gi.Keys, Aggs: gi.Aggs}
		}
		// prunable=false: an aggregation over an empty input still yields
		// identity rows (scalar aggregates), so skipping the fragment would
		// change the answer.
		parts, err := q.runNodes(trees, rec.leaves, "group-by (replicated)", true, false)
		if err != nil {
			return nil, err
		}
		return q.gather(parts[:1], "result")
	}
	trees := make([]plan.Node, n)
	for i := range trees {
		gi := nodes[i].(*plan.GroupBy)
		trees[i] = &plan.GroupBy{Input: rec.trees[i], Keys: gi.Keys, Aggs: partialAggs(gi)}
	}
	parts, err := q.runNodes(trees, rec.leaves, "partial group-by", false, false)
	if err != nil {
		return nil, err
	}
	gathered, err := q.gather(parts, "partials")
	if err != nil {
		return nil, err
	}
	out, err := q.mergePartials(nodes[0].(*plan.GroupBy), gathered)
	if err != nil {
		return nil, err
	}
	q.step("merge group-by groups=%d", out.Rows())
	return out, nil
}

// materialize executes a recipe's per-node trees, returning one relation
// per node (only node 0 when only0 — replicated fragments need a single
// execution).
func (q *query) materialize(rec *recipe, only0 bool, label string) ([]*ops.Relation, error) {
	// Materialized fragments merge with union semantics, so a fragment the
	// shard zones prove empty can be replaced by an empty relation.
	return q.runNodes(rec.trees, rec.leaves, label, only0, true)
}

// fragSnap is one context's cumulative counters at a fragment boundary.
// A node context accumulates across every fragment of the query, so a
// fragment's profile is finalized from the deltas since its snapshot.
type fragSnap struct {
	cycles     []int64
	rdB, wrB   int64
	rdS, wrS   float64
	busR, busW float64
	sim        float64
	start      time.Time
}

func snapFrag(ctx *qef.Context) fragSnap {
	cores := ctx.SoC.Cores()
	cy := make([]int64, len(cores))
	for i, co := range cores {
		cy[i] = int64(co.Cycles())
	}
	rdT, wrT := ctx.DMS.TotalsByDir()
	busR, busW := ctx.BusSeconds()
	return fragSnap{
		cycles: cy,
		rdB:    rdT.Bytes, wrB: wrT.Bytes,
		rdS: rdT.Seconds, wrS: wrT.Seconds,
		busR: busR, busW: busW,
		sim:   ctx.SimElapsed(),
		start: time.Now(),
	}
}

// finishFrag finalizes a fragment profile from the counter deltas since
// the snapshot. SimSeconds takes the max of the elapsed-sim and bus-time
// deltas: SimElapsed is a running max across engines, so its delta alone
// could undercut the fragment's own bus time and break the profile's
// SimSeconds >= bus-seconds invariant.
func finishFrag(prof *obs.Profile, ctx *qef.Context, s fragSnap) {
	cores := ctx.SoC.Cores()
	cy := make([]int64, len(cores))
	for i, co := range cores {
		cy[i] = int64(co.Cycles()) - s.cycles[i]
	}
	rdT, wrT := ctx.DMS.TotalsByDir()
	busR, busW := ctx.BusSeconds()
	dBusR, dBusW := busR-s.busR, busW-s.busW
	sim := ctx.SimElapsed() - s.sim
	if dBusR > sim {
		sim = dBusR
	}
	if dBusW > sim {
		sim = dBusW
	}
	prof.Finalize(obs.Totals{
		WallSeconds:     time.Since(s.start).Seconds(),
		SimSeconds:      sim,
		BusReadSeconds:  dBusR,
		BusWriteSeconds: dBusW,
		CoreCycles:      cy,
		DMSReadBytes:    rdT.Bytes - s.rdB,
		DMSWriteBytes:   wrT.Bytes - s.wrB,
		DMSReadSeconds:  rdT.Seconds - s.rdS,
		DMSWriteSeconds: wrT.Seconds - s.wrS,
	})
}

// runNodes compiles and executes one plan tree per node concurrently, each
// on its own node context (its scheduler's worker pool in ModeDPU). The
// first failing node cancels the shared query context, stopping the others
// at their next tile or work-unit boundary.
//
// When prunable (union-semantics fragments only), the coordinator first
// consults each shard's zone summary: a fragment the summary proves empty is
// never compiled, admitted or executed — its node contributes a zero-row
// relation with the fragment's schema and burns no cycles, DMS traffic or
// energy.
func (q *query) runNodes(trees []plan.Node, leaves []map[plan.Node]*ops.Relation, label string, only0, prunable bool) ([]*ops.Relation, error) {
	n := len(trees)
	count := n
	if only0 {
		count = 1
	}
	res := make([]*ops.Relation, n)
	errs := make([]error, count)
	var skip []bool
	if prunable && !q.noPrune {
		skip = make([]bool, count)
		pruned := 0
		for i := 0; i < count; i++ {
			if qcomp.ShardZonePruned(trees[i]) {
				skip[i] = true
				res[i] = emptyRelation(trees[i].Schema())
				pruned++
			}
		}
		if pruned > 0 {
			q.shardsPruned += pruned
			q.reg.Counter("rapid_shards_pruned_total").Add(int64(pruned))
			q.step("shard zones pruned %d/%d %s fragments", pruned, count, label)
		}
	}
	var profs []*obs.Profile
	if q.traceOn {
		profs = make([]*obs.Profile, n)
	}
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		if skip != nil && skip[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := q.nctx[i]
			compiled, err := qcomp.CompileWithInputs(trees[i], leaves[i])
			if err == nil {
				if q.traceOn {
					prof := obs.NewProfile(q.mode.String(), ctx.SoC.Config().NumCores, ctx.SoC.Config().FreqHz, compiled.SpanDefs())
					snap := snapFrag(ctx)
					ctx.Prof = prof
					res[i], err = compiled.Execute(ctx)
					ctx.Prof = nil
					if err == nil {
						finishFrag(prof, ctx, snap)
						profs[i] = prof
					}
				} else {
					res[i], err = compiled.Execute(ctx)
				}
			}
			if err != nil {
				errs[i] = err
				q.cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := q.pickError(errs); err != nil {
		return nil, err
	}
	if q.traceOn {
		q.trace = append(q.trace, obs.DistStep{Label: label, NodeProfiles: profs})
	}
	rows := make([]int64, count)
	for i := 0; i < count; i++ {
		rows[i] = int64(res[i].Rows())
	}
	q.step("fragment %s rows/node=%v", label, rows)
	return res, nil
}

// pickError prefers a root-cause error over the cancellations it fanned
// out: the caller's own cancellation wins, then any non-context node error,
// then the first context error.
func (q *query) pickError(errs []error) error {
	var anyErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if anyErr == nil {
			anyErr = e
		}
		if !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
			return e
		}
	}
	if anyErr != nil {
		if err := q.outer.Err(); err != nil {
			return err
		}
	}
	return anyErr
}

// emptyRelation builds a zero-row relation with the given schema — the
// stand-in result of a shard-pruned fragment, keeping column names, types
// and dictionaries so downstream merges see the same shape as an executed
// fragment that matched nothing.
func emptyRelation(fields []plan.Field) *ops.Relation {
	cols := make([]ops.Col, len(fields))
	for i, f := range fields {
		cols[i] = ops.Col{Name: f.Name, Type: f.Type, Dict: f.Dict, Data: coltypes.I64{}}
	}
	return &ops.Relation{Cols: cols}
}

func opName(n plan.Node) string {
	s := n.String()
	if i := strings.IndexAny(s, "(["); i > 0 {
		return s[:i]
	}
	return s
}
