package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/qcache"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/storage"
)

// cacheTray builds the explainDB host with the shared query cache enabled
// and a 2-node tray over it.
func cacheTray(t *testing.T) (*hostdb.Database, *cluster.Tray, *qcache.Cache) {
	t.Helper()
	db := explainDB(t)
	cache := db.EnableQueryCache(qcache.Config{})
	tray, err := cluster.New(db, cluster.Config{Nodes: 2, ReplicateMaxRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tray.Close)
	for _, name := range []string{"facts", "dims"} {
		if err := tray.Load(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	return db, tray, cache
}

const trayCacheSQL = `SELECT g, SUM(v), COUNT(*) FROM facts WHERE g < 7 GROUP BY g`

// TestTrayCacheHitMissInvalidate walks one distributed query through the
// cache lifecycle: cold miss (billed), whitespace-variant hot hit (zero
// cycles, saved cost carried), literal-variant plan-cache reuse, host DML
// invalidation (stale, fresh answer), and re-warm.
func TestTrayCacheHitMissInvalidate(t *testing.T) {
	db, tray, cache := cacheTray(t)
	opts := cluster.QueryOptions{Mode: qef.ModeDPU}

	cold, err := tray.Query(trayCacheSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold query Cache = %q, want miss", cold.Cache)
	}
	if cold.TotalCycles == 0 {
		t.Fatal("cold DPU tray query billed zero cycles")
	}

	// Whitespace/case variant of the same statement must hit.
	hot, err := tray.Query("select  G, sum(V), count(*)\nfrom facts where G < 7 group by G", opts)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Cache != "hit" {
		t.Fatalf("hot query Cache = %q, want hit", hot.Cache)
	}
	if hot.Rel != cold.Rel {
		t.Fatal("cache hit did not share the stored relation")
	}
	if hot.TotalCycles != 0 || hot.EnergyNJ != 0 || hot.NetBytes != 0 {
		t.Fatalf("cache hit billed cycles=%d energy=%d net=%d, want all zero",
			hot.TotalCycles, hot.EnergyNJ, hot.NetBytes)
	}
	if hot.CyclesSaved != cold.TotalCycles || hot.EnergySavedNJ != cold.EnergyNJ {
		t.Fatalf("hit saved (%d cy, %d nJ), producing run cost (%d cy, %d nJ)",
			hot.CyclesSaved, hot.EnergySavedNJ, cold.TotalCycles, cold.EnergyNJ)
	}

	// A different literal is a different result (and plan) key: miss.
	lit, err := tray.Query(`SELECT g, SUM(v), COUNT(*) FROM facts WHERE g < 5 GROUP BY g`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lit.Cache != "miss" {
		t.Fatalf("different-literal query Cache = %q, want miss", lit.Cache)
	}
	if lit.Rel.Rows() >= cold.Rel.Rows() {
		t.Fatalf("g<5 returned %d groups, expected fewer than g<7's %d", lit.Rel.Rows(), cold.Rel.Rows())
	}

	// The same statement under another execution mode misses the result
	// cache (mode is in the key) but reuses the bound plan skeleton — plan
	// scope is mode-independent.
	preplan := cache.Stats().PlanHits
	x86, err := tray.Query(trayCacheSQL, cluster.QueryOptions{Mode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if x86.Cache != "miss" {
		t.Fatalf("other-mode query Cache = %q, want miss", x86.Cache)
	}
	if got := cache.Stats().PlanHits; got != preplan+1 {
		t.Fatalf("plan hits = %d, want %d (skeleton reuse across modes)", got, preplan+1)
	}
	sameBags(t, "dpu vs x86 tray", cold.Rel, x86.Rel)

	// Host DML invalidates: the next read is stale (entry found, version
	// mismatch) and must see the new row via the reloaded shards.
	if _, err := db.Insert("facts", [][]storage.Value{{
		storage.IntValue(3), storage.IntValue(3), storage.IntValue(1_000_000),
	}}); err != nil {
		t.Fatal(err)
	}
	stale, err := tray.Query(trayCacheSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Cache != "stale" {
		t.Fatalf("post-DML query Cache = %q, want stale", stale.Cache)
	}
	if same := bag(stale.Rel); strings.Join(same, "") == strings.Join(bag(cold.Rel), "") {
		t.Fatal("post-DML read returned the pre-DML relation — stale hit")
	}
	rewarm, err := tray.Query(trayCacheSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rewarm.Cache != "hit" {
		t.Fatalf("re-warmed query Cache = %q, want hit", rewarm.Cache)
	}
	if rewarm.Rel != stale.Rel {
		t.Fatal("re-warmed hit did not serve the post-DML relation")
	}
}

// TestTrayCacheKeyedSeparatelyFromHost pins the key separation: a tray
// result can never answer the host's single-SoC lookup of the same SQL,
// and vice versa.
func TestTrayCacheKeyedSeparatelyFromHost(t *testing.T) {
	db, tray, _ := cacheTray(t)
	if _, err := tray.Query(trayCacheSQL, cluster.QueryOptions{Mode: qef.ModeDPU}); err != nil {
		t.Fatal(err)
	}
	hostRes, err := db.Query(trayCacheSQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if hostRes.Cache != "miss" {
		t.Fatalf("host lookup after tray warm-up Cache = %q, want miss (separate key space)", hostRes.Cache)
	}
	trayRes, err := tray.Query(trayCacheSQL, cluster.QueryOptions{Mode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if trayRes.Cache != "hit" {
		t.Fatalf("tray re-read Cache = %q, want hit", trayRes.Cache)
	}
	sameBags(t, "host vs cached tray", hostRes.Rel, trayRes.Rel)
}

// TestTrayNoCacheBypasses pins the opt-out: NoCache queries never look up,
// never publish, and are counted as bypasses.
func TestTrayNoCacheBypasses(t *testing.T) {
	_, tray, cache := cacheTray(t)
	opts := cluster.QueryOptions{Mode: qef.ModeX86, NoCache: true}
	before := cache.Stats().Bypasses
	for i := 0; i < 2; i++ {
		res, err := tray.Query(trayCacheSQL, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache != "bypass" {
			t.Fatalf("NoCache run %d Cache = %q, want bypass", i, res.Cache)
		}
	}
	st := cache.Stats()
	if st.Bypasses != before+2 {
		t.Fatalf("bypasses = %d, want %d", st.Bypasses, before+2)
	}
	if st.ResidentEntries != 0 {
		t.Fatalf("NoCache queries published %d entries", st.ResidentEntries)
	}
}

// TestTrayCacheHitBypassesNodeAdmission occupies every admission slot of
// node 0 (one slot, no queue) and shows a warm hit still answers while an
// uncached query sheds.
func TestTrayCacheHitBypassesNodeAdmission(t *testing.T) {
	db := explainDB(t)
	db.EnableQueryCache(qcache.Config{})
	tray, err := cluster.New(db, cluster.Config{
		Nodes: 2, ReplicateMaxRows: -1,
		Sched: sched.Config{MaxConcurrent: 1, MaxQueued: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tray.Close)
	for _, name := range []string{"facts", "dims"} {
		if err := tray.Load(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	opts := cluster.QueryOptions{Mode: qef.ModeX86}
	if _, err := tray.Query(trayCacheSQL, opts); err != nil {
		t.Fatal(err)
	}

	adm, err := tray.NodeScheduler(0).Admit(context.Background(), sched.Request{Cores: 1, QueryID: 999})
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Release()

	// An uncached query must wait in node 0's admission queue (and here
	// time out); the warm hit below answers without touching any scheduler.
	qctx, cancelT := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancelT()
	if _, err := tray.QueryCtx(qctx, trayCacheSQL, cluster.QueryOptions{Mode: qef.ModeX86, NoCache: true}); err == nil {
		t.Fatal("uncached query ran while node 0's only slot is held")
	}
	res, err := tray.Query(trayCacheSQL, opts)
	if err != nil {
		t.Fatalf("cache hit blocked by node admission: %v", err)
	}
	if res.Cache != "hit" {
		t.Fatalf("Cache = %q, want hit", res.Cache)
	}
}

// TestTrayAnalyzeShowsCacheLine pins the cache line in the distributed
// EXPLAIN ANALYZE report for both the producing miss and the served hit.
func TestTrayAnalyzeShowsCacheLine(t *testing.T) {
	_, tray, _ := cacheTray(t)
	const sql = "EXPLAIN ANALYZE " + trayCacheSQL
	miss, err := tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(miss.Analyze, "cache: miss") {
		t.Fatalf("miss report lacks cache line:\n%s", miss.Analyze)
	}
	hit, err := tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hit.Analyze, "cache: hit — served from result cache") {
		t.Fatalf("hit report lacks cache line:\n%s", hit.Analyze)
	}
}

// TestTrayJournalFingerprintGroups pins the satellite at the tray level:
// literal and whitespace variants of one template share the journal
// fingerprint, and records carry the cache interaction.
func TestTrayJournalFingerprintGroups(t *testing.T) {
	db, tray, _ := cacheTray(t)
	variants := []string{
		`SELECT g, SUM(v), COUNT(*) FROM facts WHERE g < 7 GROUP BY g`,
		"select g, sum(v), count(*)  from facts\twhere g < 3 group by g",
	}
	for _, q := range variants {
		if _, err := tray.Query(q, cluster.QueryOptions{Mode: qef.ModeX86}); err != nil {
			t.Fatal(err)
		}
	}
	recs := db.QueryJournal().Records()
	if len(recs) < 2 {
		t.Fatalf("journal holds %d records, want >= 2", len(recs))
	}
	a, b := recs[len(recs)-2], recs[len(recs)-1]
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("literal variants got fingerprints %x and %x, want equal", a.Fingerprint, b.Fingerprint)
	}
	if a.Cache != "miss" || b.Cache != "miss" {
		t.Fatalf("journal cache fields = %q, %q, want miss, miss", a.Cache, b.Cache)
	}
}
