package cluster_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/coltypes"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// explainDB builds a small self-contained host database: a fact table
// hash-sharded on k and a second partitioned table joined on a different
// column, so the distributed plan needs a shuffle, a gather and a
// partial-aggregation merge.
func explainDB(t *testing.T) *hostdb.Database {
	t.Helper()
	db := hostdb.New()
	t.Cleanup(db.Close)
	mk := func(name string, rows [][]storage.Value, cols ...storage.ColumnDef) {
		if _, err := db.CreateTable(name, storage.MustSchema(cols...)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert(name, rows); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Load(name, hostdb.LoadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	var facts [][]storage.Value
	for i := 0; i < 3000; i++ {
		facts = append(facts, []storage.Value{
			storage.IntValue(int64(i % 97)),
			storage.IntValue(int64(i % 11)),
			storage.IntValue(int64(i)),
		})
	}
	mk("facts", facts,
		storage.ColumnDef{Name: "k", Type: coltypes.Int()},
		storage.ColumnDef{Name: "g", Type: coltypes.Int()},
		storage.ColumnDef{Name: "v", Type: coltypes.Int()},
	)
	var dims [][]storage.Value
	for i := 0; i < 11; i++ {
		dims = append(dims, []storage.Value{
			storage.IntValue(int64(i)),
			storage.IntValue(int64(i * 10)),
		})
	}
	mk("dims", dims,
		storage.ColumnDef{Name: "dg", Type: coltypes.Int()},
		storage.ColumnDef{Name: "w", Type: coltypes.Int()},
	)
	return db
}

// TestDistributedExplainAnalyzeGolden pins the EXPLAIN ANALYZE report of a
// distributed plan: the trace of node-local fragments and exchanges, one
// span per exchange with rows/bytes/tiles/link-time, the per-node
// cycle/DMS/sim breakdown and the makespan decomposition. Everything in the
// report is modeled (ModeDPU), so it is bit-deterministic; regenerate with
// -update after intentional planner or accounting changes.
func TestDistributedExplainAnalyzeGolden(t *testing.T) {
	db := explainDB(t)
	tray, err := cluster.New(db, cluster.Config{Nodes: 4, ReplicateMaxRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tray.Close)
	for _, name := range []string{"facts", "dims"} {
		if err := tray.Load(name, nil); err != nil {
			t.Fatal(err)
		}
	}

	const sql = `EXPLAIN ANALYZE
SELECT g, SUM(v), COUNT(*) FROM facts, dims WHERE g = dg AND w < 80 GROUP BY g`
	res, err := tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyze == "" {
		t.Fatal("EXPLAIN ANALYZE produced no report")
	}
	got := res.Analyze

	// The report must be reproducible run over run before comparing to the
	// golden file — a flaky golden is worse than none.
	for i := 0; i < 2; i++ {
		again, err := tray.Query(sql, cluster.QueryOptions{Mode: qef.ModeDPU})
		if err != nil {
			t.Fatal(err)
		}
		if again.Analyze != got {
			t.Fatalf("EXPLAIN ANALYZE not deterministic:\n--- first ---\n%s--- rerun %d ---\n%s", got, i, again.Analyze)
		}
	}

	path := filepath.Join("testdata", "explain_distributed.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("distributed EXPLAIN ANALYZE drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}

	// Structural spot checks, independent of the exact numbers.
	for _, frag := range []string{"Distributed Plan (nodes=4", "Trace:", "Exchanges:", "Per-node:", "node3", "Makespan:"} {
		if !strings.Contains(got, frag) {
			t.Errorf("report missing %q:\n%s", frag, got)
		}
	}
}
