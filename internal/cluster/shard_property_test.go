package cluster_test

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"rapid/internal/cluster"
	"rapid/internal/coltypes"
	"rapid/internal/hostdb"
	"rapid/internal/storage"
)

// shardRows reads every row of a shard back as logical int64 tuples.
func shardRows(st *storage.Table) [][]int64 {
	var out [][]int64
	for p := 0; p < st.NumPartitions(); p++ {
		part := st.Partition(p)
		for ci := 0; ci < part.NumChunks(); ci++ {
			ch := part.Chunk(ci)
			for r := 0; r < ch.Rows(); r++ {
				row := make([]int64, ch.NumCols())
				for c := 0; c < ch.NumCols(); c++ {
					row[c] = ch.Col(c).Data().Get(r)
				}
				out = append(out, row)
			}
		}
	}
	return out
}

func tupleBag(rows [][]int64) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func sameTupleBags(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkShardMap verifies the completeness invariant for one loaded table:
// every host row lives on exactly one node (the one its key routes to), and
// nothing else does.
func checkShardMap(t *testing.T, tray *cluster.Tray, want [][]int64) bool {
	t.Helper()
	sm := tray.ShardMapOf("pt")
	if sm == nil {
		t.Log("no shard map after load")
		return false
	}
	if err := sm.Validate(); err != nil {
		t.Logf("invalid shard map: %v", err)
		return false
	}
	var all [][]int64
	for i := 0; i < tray.NumNodes(); i++ {
		rows := shardRows(tray.Shard("pt", i))
		for _, r := range rows {
			if owner := sm.NodeFor(r[sm.Key]); owner != i {
				t.Logf("row %v on node %d but NodeFor(%d) = %d", r, i, r[sm.Key], owner)
				return false
			}
		}
		all = append(all, rows...)
	}
	// Row-count equality plus multiset equality: together they say every
	// host row appears on exactly one node, no duplicates, no strays.
	if len(all) != len(want) {
		t.Logf("shards hold %d rows, host has %d", len(all), len(want))
		return false
	}
	if !sameTupleBags(tupleBag(all), tupleBag(want)) {
		t.Log("shard union is not the host multiset")
		return false
	}
	return true
}

// TestShardMapCompletenessProperty is the testing/quick property battery for
// the shard loader: for random data, node counts and policies, (a) every
// host row lands on exactly one node and that node is NodeFor(key), (b) the
// union of shards is exactly the host multiset, and (c) mutating the host
// table and re-loading round-trips the new contents the same way.
func TestShardMapCompletenessProperty(t *testing.T) {
	prop := func(keys []int16, width uint8, useRange bool) bool {
		n := 2 + int(width)%7 // 2..8 nodes
		db := hostdb.New()
		defer db.Close()
		schema := storage.MustSchema(
			storage.ColumnDef{Name: "k", Type: coltypes.Int()},
			storage.ColumnDef{Name: "a", Type: coltypes.Int()},
			storage.ColumnDef{Name: "b", Type: coltypes.Int()},
		)
		if _, err := db.CreateTable("pt", schema); err != nil {
			t.Log(err)
			return false
		}
		var want [][]int64
		rows := make([][]storage.Value, len(keys))
		for i, k := range keys {
			tuple := []int64{int64(k), int64(i), int64(k) * 3}
			want = append(want, tuple)
			rows[i] = []storage.Value{
				storage.IntValue(tuple[0]), storage.IntValue(tuple[1]), storage.IntValue(tuple[2]),
			}
		}
		if len(rows) > 0 {
			if _, err := db.Insert("pt", rows); err != nil {
				t.Log(err)
				return false
			}
		}
		if _, err := db.Load("pt", hostdb.LoadOptions{}); err != nil {
			t.Log(err)
			return false
		}

		tray, err := cluster.New(db, cluster.Config{Nodes: n})
		if err != nil {
			t.Log(err)
			return false
		}
		defer tray.Close()
		spec := &cluster.ShardSpec{Policy: storage.HashSharded, Key: 0}
		if useRange {
			spec.Policy = storage.RangeSharded
			// Equal-width int16 split points: strictly ascending, len n-1.
			for i := 1; i < n; i++ {
				spec.Bounds = append(spec.Bounds, -32768+int64(i)*65536/int64(n))
			}
		}
		if err := tray.Load("pt", spec); err != nil {
			t.Log(err)
			return false
		}
		if !checkShardMap(t, tray, want) {
			return false
		}

		// Round-trip: mutate the host table, re-load, and the shards must
		// describe the new multiset under the same routing.
		extra := make([][]storage.Value, 0, len(keys)+1)
		for i, k := range keys {
			tuple := []int64{int64(k) + 1, int64(i) + 1000, int64(k)}
			want = append(want, tuple)
			extra = append(extra, []storage.Value{
				storage.IntValue(tuple[0]), storage.IntValue(tuple[1]), storage.IntValue(tuple[2]),
			})
		}
		tuple := []int64{7, -1, 21}
		want = append(want, tuple)
		extra = append(extra, []storage.Value{
			storage.IntValue(tuple[0]), storage.IntValue(tuple[1]), storage.IntValue(tuple[2]),
		})
		if _, err := db.Insert("pt", extra); err != nil {
			t.Log(err)
			return false
		}
		if _, err := db.Load("pt", hostdb.LoadOptions{}); err != nil {
			t.Log(err)
			return false
		}
		if err := tray.Load("pt", spec); err != nil {
			t.Log(err)
			return false
		}
		return checkShardMap(t, tray, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
