package cluster

import (
	"context"
	"fmt"
	"time"

	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/qcache"
	"rapid/internal/sqlparse"
)

// Tray-side query-cache glue (DESIGN.md §10). The tray shares the host
// database's cache instance — one byte budget and one singleflight table
// across the fleet — but keys its entries under a distinct mode prefix and
// the tray's node count, so a distributed result can never answer a
// single-SoC lookup (or vice versa).

// cachedTrayExec is the engine payload of one tray result-cache entry.
// The relation is shared, never mutated — the same read-only-once-returned
// invariant Query callers already rely on.
type cachedTrayExec struct {
	Rel     *ops.Relation
	Explain string
}

// trayModeKey discriminates tray cache entries from host entries and from
// each other: per-node execution mode plus the pruning switch (pruning is
// results-neutral by design, but the metamorphic lanes compare the two
// populations independently, so they get separate keys).
func trayModeKey(opts QueryOptions) string {
	m := "tray-" + opts.Mode.String()
	if opts.DisablePruning {
		m += "+noprune"
	}
	return m
}

// planScope is the plan-cache scope for coordinator binds: plans are bound
// against node shards, so trays of different widths cannot share skeletons.
func (t *Tray) planScope() string { return fmt.Sprintf("tray%d", t.NumNodes()) }

// cacheVersion returns a table's version-vector entry as the tray sees it:
// the host-level mutation SCN alone. Shard replicas reload exactly when the
// host MutationSCN passes their load SCN (shardFor), so an unchanged MutSCN
// means unchanged shard contents; host-replica checkpoint epochs never
// affect tray answers and are deliberately excluded.
func (t *Tray) cacheVersion(name string) (qcache.Version, bool) {
	ht, err := t.host.Table(name)
	if err != nil {
		return qcache.Version{}, false
	}
	return qcache.Version{Name: name, MutSCN: ht.MutationSCN()}, true
}

// cacheVersions captures the version vector for a table list, in order.
func (t *Tray) cacheVersions(tables []string) ([]qcache.Version, bool) {
	out := make([]qcache.Version, 0, len(tables))
	for _, name := range tables {
		v, ok := t.cacheVersion(name)
		if !ok {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// versionsEqual is the validate-before-publish check (see the hostdb twin).
func versionsEqual(a, b []qcache.Version) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// versionNames extracts the table-name footprint of a version vector.
func versionNames(vs []qcache.Version) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// relationBytes estimates a result relation's resident footprint for the
// cache byte budget.
func relationBytes(rel *ops.Relation) int64 {
	if rel == nil {
		return 0
	}
	var n int64 = 64
	for _, c := range rel.Cols {
		n += 64
		if c.Data != nil {
			n += int64(c.Data.SizeBytes())
		}
	}
	return n
}

// cachedHitResult builds the Result for a tray result-cache hit or a shared
// singleflight execution: the stored relation with zero marginal cycles,
// network traffic, energy and admission, and the saved cost carried from
// the producing execution.
func (t *Tray) cachedHitResult(r *qcache.Result, opts QueryOptions, status string) *Result {
	src := r.Payload.(*cachedTrayExec)
	res := &Result{
		Rel:           src.Rel,
		Nodes:         t.NumNodes(),
		Explain:       src.Explain,
		Cache:         status,
		CyclesSaved:   r.CyclesSaved,
		EnergySavedNJ: r.EnergySavedNJ,
	}
	if opts.Analyze {
		res.Analyze = fmt.Sprintf(
			"Distributed Plan (nodes=%d, cached)\ncache: %s — served from result cache; saved ~%d cycles, ~%d nJ, ~%.3fms execution\n",
			res.Nodes, status, r.CyclesSaved, r.EnergySavedNJ, float64(r.WallNs)/1e6)
	}
	return res
}

// buildTrayCacheEntry wraps a finished distributed execution as a
// result-cache entry.
func buildTrayCacheEntry(res *Result, versions []qcache.Version, wallNs int64) *qcache.Result {
	rows := 0
	if res.Rel != nil {
		rows = res.Rel.Rows()
	}
	return &qcache.Result{
		Payload:       &cachedTrayExec{Rel: res.Rel, Explain: res.Explain},
		Bytes:         relationBytes(res.Rel),
		Versions:      versions,
		Rows:          rows,
		CyclesSaved:   res.TotalCycles,
		EnergySavedNJ: res.EnergyNJ,
		WallNs:        wallNs,
	}
}

// annotateTrayCache appends the cache interaction to the distributed
// EXPLAIN ANALYZE report (only when a report was produced, so cacheless
// trays render byte-identically to before the cache existed).
func annotateTrayCache(res *Result, opts QueryOptions, status string) {
	if opts.Analyze && res.Analyze != "" && status != "" {
		res.Analyze += fmt.Sprintf("cache: %s\n", status)
	}
}

// normalizeForCache runs the literal normalization used for cache keys and
// journal fingerprints; false means the statement does not lex (raw-SQL
// fingerprint kept, cache bypassed).
func normalizeForCache(sql string) (sqlparse.Normalized, bool) {
	n, err := sqlparse.Normalize(sql)
	return n, err == nil
}

// query orchestrates the cache tiers around queryCtx, mirroring the host
// database's orchestrator: result-cache lookup (hits return before any
// node's scheduler admission), singleflight collapse of concurrent
// identical misses, the distributed execution, and validate-before-publish
// admission of the finished result.
func (t *Tray) query(ctx context.Context, sql string, norm sqlparse.Normalized, normOK bool, opts QueryOptions, h obs.ActiveHandle) (*Result, error) {
	cache := t.host.QueryCache()
	cacheable := cache != nil && normOK && !opts.NoCache
	if !cacheable {
		if cache != nil {
			cache.NoteBypass()
		}
		res, _, err := t.queryCtx(ctx, sql, norm, false, opts, h)
		if err == nil && cache != nil {
			res.Cache = "bypass"
			annotateTrayCache(res, opts, "bypass")
		}
		return res, err
	}

	key := qcache.Key{Template: norm.TemplateFP, Params: norm.ParamsFP, Mode: trayModeKey(opts), Nodes: t.NumNodes()}
	status := "miss"
	var flight *qcache.Flight
	for {
		if r, st := cache.GetResult(key, t.cacheVersion); st == qcache.Hit {
			return t.cachedHitResult(r, opts, "hit"), nil
		} else if st == qcache.Stale {
			status = "stale"
		}
		f, leader := cache.Begin(key)
		if leader {
			flight = f
			break
		}
		// Another client is executing this exact distributed query: wait for
		// its result instead of fanning out N more fragments. ok=false means
		// the leader failed or its result was unpublishable — loop back and
		// compete for leadership.
		if r, ok := f.Wait(ctx); ok {
			return t.cachedHitResult(r, opts, "hit"), nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	// Leader path: always settle the flight so followers never block past
	// this execution.
	var entry *qcache.Result
	defer func() { flight.Finish(entry) }()

	execStart := time.Now()
	res, v0, err := t.queryCtx(ctx, sql, norm, true, opts, h)
	if err != nil {
		return nil, err
	}
	res.Cache = status
	annotateTrayCache(res, opts, status)
	// Publish only when the version vector captured before bind still holds
	// after the distributed execution — an interleaved host mutation (which
	// would have re-sharded under us mid-flight) voids the entry.
	if v0 != nil {
		if cur, ok := t.cacheVersions(versionNames(v0)); ok && versionsEqual(v0, cur) {
			e := buildTrayCacheEntry(res, v0, int64(time.Since(execStart)))
			entry = e // share with flight followers even if admission rejects
			cache.PutResult(key, e)
		}
	}
	return res, nil
}
