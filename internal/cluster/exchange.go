package cluster

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/storage"
)

// ExchangeKind classifies an exchange operator.
type ExchangeKind int

const (
	// Shuffle re-partitions per-node relations by a key column: every row
	// moves to the node its key hashes (or range-routes) to.
	Shuffle ExchangeKind = iota
	// Broadcast replicates every node's rows to all other nodes, producing
	// one full copy per node.
	Broadcast
	// Gather concentrates per-node relations at the coordinator.
	Gather
)

func (k ExchangeKind) String() string {
	switch k {
	case Shuffle:
		return "shuffle"
	case Broadcast:
		return "broadcast"
	case Gather:
		return "gather"
	}
	return fmt.Sprintf("ExchangeKind(%d)", int(k))
}

// ExchangeStats is the accounting record of one executed exchange — the
// source of the net_* counters and the conservation invariants (rows in ==
// rows out for shuffle/gather; rows out == rows in × N for broadcast; moved
// bytes == moved rows × 8 × cols, since exchanges ship the widened 8-byte
// tile format).
type ExchangeStats struct {
	Kind  ExchangeKind
	Label string
	// RowsIn is the total rows entering across all source nodes; RowsOut
	// the total rows delivered across all destinations.
	RowsIn, RowsOut int64
	// MovedRows/MovedBytes count only rows crossing the interconnect
	// (destination != source); co-located deliveries are free.
	MovedRows, MovedBytes int64
	// Tiles is the number of link messages (per source→destination stream,
	// LinkModel.TileRows rows each).
	Tiles int64
	// Seconds is the modeled serialized link time of the exchange.
	Seconds float64
	// PerNodeRows is rows delivered per destination (Shuffle/Broadcast) or
	// contributed per source (Gather).
	PerNodeRows []int64
	// PerSourceRows is rows contributed per source node (all kinds). For
	// Gather it aliases PerNodeRows' meaning.
	PerSourceRows []int64
	// MovedMatrix[src][dst] counts rows that crossed the interconnect per
	// source→destination stream (co-located deliveries excluded, so the
	// diagonal is zero). Nil for Gather, where every row flows to the
	// coordinator: PerSourceRows is the per-stream breakdown there. The
	// matrix total equals MovedRows exactly — trace flow events are built
	// from it.
	MovedMatrix [][]int64
}

// exchangeRowBytes is the wire width: exchanges ship tiles in the widened
// 8-byte-per-column format the engine's tile loops use.
func exchangeRowBytes(rel *ops.Relation) int { return 8 * rel.NumCols() }

// relBytes is the wire size of a whole relation.
func relBytes(rel *ops.Relation) int64 {
	return int64(rel.Rows()) * int64(exchangeRowBytes(rel))
}

// colBuilder accumulates destination columns for exchange outputs.
type colBuilder struct {
	meta ops.Col
	data []int64
}

func newBuilders(proto *ops.Relation) []colBuilder {
	bs := make([]colBuilder, proto.NumCols())
	for i, c := range proto.Cols {
		bs[i] = colBuilder{meta: ops.Col{Name: c.Name, Type: c.Type, Dict: c.Dict}}
	}
	return bs
}

func buildersRelation(bs []colBuilder) *ops.Relation {
	cols := make([]ops.Col, len(bs))
	for i, b := range bs {
		c := b.meta
		if b.data == nil {
			b.data = []int64{}
		}
		c.Data = coltypes.I64(b.data)
		cols[i] = c
	}
	return ops.MustRelation(cols)
}

// shuffle re-partitions per-node relations so row r lands on
// part.NodeFor(r[keyCol]). parts[i] is node i's input (nil treated empty);
// the result is indexed by destination node. Cancellation is observed every
// LinkModel.TileRows rows.
func (q *query) shuffle(parts []*ops.Relation, keyCol int, part *storage.ShardMap, label string) ([]*ops.Relation, error) {
	n := q.nodes()
	proto := firstNonNil(parts)
	outs := make([][]colBuilder, n)
	for d := 0; d < n; d++ {
		outs[d] = newBuilders(proto)
	}
	st := ExchangeStats{
		Kind: Shuffle, Label: label,
		PerNodeRows:   make([]int64, n),
		PerSourceRows: make([]int64, n),
	}
	rowBytes := exchangeRowBytes(proto)
	// movedPer[src][dst] counts cross-node rows for tile accounting.
	movedPer := make([][]int64, n)
	for s := range movedPer {
		movedPer[s] = make([]int64, n)
	}
	st.MovedMatrix = movedPer
	for src, rel := range parts {
		if rel == nil {
			continue
		}
		key := rel.Cols[keyCol].Data
		rows := rel.Rows()
		st.RowsIn += int64(rows)
		st.PerSourceRows[src] += int64(rows)
		for r := 0; r < rows; r++ {
			if r%q.link.TileRows == 0 {
				if err := q.goCtx.Err(); err != nil {
					return nil, err
				}
			}
			d := part.NodeFor(key.Get(r))
			for c := range rel.Cols {
				outs[d][c].data = append(outs[d][c].data, rel.Cols[c].Data.Get(r))
			}
			st.PerNodeRows[d]++
			if d != src {
				movedPer[src][d]++
			}
		}
	}
	res := make([]*ops.Relation, n)
	for d := 0; d < n; d++ {
		res[d] = buildersRelation(outs[d])
		st.RowsOut += int64(res[d].Rows())
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			moved := movedPer[s][d]
			if moved == 0 {
				continue
			}
			st.MovedRows += moved
			st.MovedBytes += moved * int64(rowBytes)
			st.Tiles += q.link.Tiles(int(moved))
			st.Seconds += q.link.TransferSeconds(int(moved), rowBytes)
		}
	}
	q.record(st)
	return res, nil
}

// broadcast produces one full union of all per-node inputs, delivered to
// every node: each source's rows cross the link to the N-1 other nodes.
// The returned relation is shared (immutable) across destinations.
func (q *query) broadcast(parts []*ops.Relation, label string) (*ops.Relation, error) {
	n := q.nodes()
	proto := firstNonNil(parts)
	bs := newBuilders(proto)
	st := ExchangeStats{
		Kind: Broadcast, Label: label,
		PerNodeRows:   make([]int64, n),
		PerSourceRows: make([]int64, n),
		MovedMatrix:   make([][]int64, n),
	}
	for s := range st.MovedMatrix {
		st.MovedMatrix[s] = make([]int64, n)
	}
	rowBytes := exchangeRowBytes(proto)
	for src, rel := range parts {
		if rel == nil {
			continue
		}
		rows := rel.Rows()
		st.RowsIn += int64(rows)
		st.PerSourceRows[src] += int64(rows)
		for d := 0; d < n; d++ {
			if d != src {
				st.MovedMatrix[src][d] += int64(rows)
			}
		}
		for r := 0; r < rows; r++ {
			if r%q.link.TileRows == 0 {
				if err := q.goCtx.Err(); err != nil {
					return nil, err
				}
			}
			for c := range rel.Cols {
				bs[c].data = append(bs[c].data, rel.Cols[c].Data.Get(r))
			}
		}
		if rows > 0 && n > 1 {
			moved := int64(rows) * int64(n-1)
			st.MovedRows += moved
			st.MovedBytes += moved * int64(rowBytes)
			st.Tiles += q.link.Tiles(rows) * int64(n-1)
			st.Seconds += q.link.TransferSeconds(rows, rowBytes) * float64(n-1)
		}
	}
	out := buildersRelation(bs)
	for d := 0; d < n; d++ {
		st.PerNodeRows[d] = int64(out.Rows())
	}
	st.RowsOut = int64(out.Rows()) * int64(n)
	q.record(st)
	return out, nil
}

// gather concentrates per-node relations at the coordinator, concatenated
// in node order. Every row crosses the link (the coordinator is the host,
// not a tray node).
func (q *query) gather(parts []*ops.Relation, label string) (*ops.Relation, error) {
	n := q.nodes()
	proto := firstNonNil(parts)
	bs := newBuilders(proto)
	st := ExchangeStats{
		Kind: Gather, Label: label,
		PerNodeRows:   make([]int64, n),
		PerSourceRows: make([]int64, n),
	}
	rowBytes := exchangeRowBytes(proto)
	for src, rel := range parts {
		if rel == nil {
			continue
		}
		rows := rel.Rows()
		st.RowsIn += int64(rows)
		st.PerNodeRows[src] = int64(rows)
		st.PerSourceRows[src] = int64(rows)
		for r := 0; r < rows; r++ {
			if r%q.link.TileRows == 0 {
				if err := q.goCtx.Err(); err != nil {
					return nil, err
				}
			}
			for c := range rel.Cols {
				bs[c].data = append(bs[c].data, rel.Cols[c].Data.Get(r))
			}
		}
		if rows > 0 {
			st.MovedRows += int64(rows)
			st.MovedBytes += int64(rows) * int64(rowBytes)
			st.Tiles += q.link.Tiles(rows)
			st.Seconds += q.link.TransferSeconds(rows, rowBytes)
		}
	}
	out := buildersRelation(bs)
	st.RowsOut = int64(out.Rows())
	q.record(st)
	return out, nil
}

// sliceModulo keeps the rows of rel whose index ≡ node (mod n) — the free
// "virtual repartition" of an already-replicated relation: no bytes cross
// the link because every node holds the full copy and keeps its share.
func sliceModulo(rel *ops.Relation, node, n int) *ops.Relation {
	bs := newBuilders(rel)
	for r := node; r < rel.Rows(); r += n {
		for c := range rel.Cols {
			bs[c].data = append(bs[c].data, rel.Cols[c].Data.Get(r))
		}
	}
	return buildersRelation(bs)
}

func firstNonNil(parts []*ops.Relation) *ops.Relation {
	for _, r := range parts {
		if r != nil {
			return r
		}
	}
	return &ops.Relation{}
}

// exchangeSpan converts an ExchangeStats into its obs-side trace record
// (obs stays cluster-agnostic; the slices are shared, not copied — stats
// are immutable once recorded).
func exchangeSpan(st ExchangeStats) *obs.ExchangeSpan {
	sp := &obs.ExchangeSpan{
		Kind: st.Kind.String(), Label: st.Label, Seconds: st.Seconds,
		RowsIn: st.RowsIn, RowsOut: st.RowsOut,
		MovedRows: st.MovedRows, MovedBytes: st.MovedBytes, Tiles: st.Tiles,
		PerSourceRows: st.PerSourceRows,
		MovedMatrix:   st.MovedMatrix,
	}
	if st.Kind != Gather {
		sp.PerDestRows = st.PerNodeRows
	}
	return sp
}

// record accumulates an executed exchange into the query's trace and the
// tray-wide net_* telemetry.
func (q *query) record(st ExchangeStats) {
	q.stats = append(q.stats, st)
	if q.traceOn {
		q.trace = append(q.trace, obs.DistStep{Label: st.Label, Exchange: exchangeSpan(st)})
	}
	q.step("exchange %s %s moved_rows=%d bytes=%d", st.Kind, st.Label, st.MovedRows, st.MovedBytes)
	q.netSeconds += st.Seconds
	q.netBytes += st.MovedBytes
	q.netRows += st.MovedRows
	q.netTiles += st.Tiles
	m := q.reg
	m.Counter("rapid_net_exchanges_total").Inc()
	switch st.Kind {
	case Shuffle:
		m.Counter("rapid_net_shuffles_total").Inc()
	case Broadcast:
		m.Counter("rapid_net_broadcasts_total").Inc()
	case Gather:
		m.Counter("rapid_net_gathers_total").Inc()
	}
	m.Counter("rapid_net_rows_total").Add(st.MovedRows)
	m.Counter("rapid_net_bytes_total").Add(st.MovedBytes)
	m.Counter("rapid_net_tiles_total").Add(st.Tiles)
	m.Counter("rapid_net_microseconds_total").Add(int64(st.Seconds * 1e6))
	m.Counter("rapid_net_energy_nanojoules_total").Add(q.link.EnergyFJ(st.MovedBytes) / 1e6)
}
