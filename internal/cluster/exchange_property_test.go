package cluster

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"rapid/internal/coltypes"
	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// propQuery builds a bare query over n nodes with a fresh registry — just
// enough machinery to drive the exchange operators directly.
func propQuery(n int) *query {
	return &query{
		reg:   obs.NewRegistry(),
		link:  DefaultLinkModel(),
		goCtx: context.Background(),
		nctx:  make([]*qef.Context, n),
	}
}

// pairRelation builds a two-column (key, payload) relation.
func pairRelation(ks, vs []int64) *ops.Relation {
	return ops.MustRelation([]ops.Col{
		{Name: "k", Type: coltypes.Int(), Data: coltypes.I64(ks)},
		{Name: "v", Type: coltypes.Int(), Data: coltypes.I64(vs)},
	})
}

// pairBag renders a set of relations as one sorted (key, payload) multiset.
func pairBag(rels ...*ops.Relation) []string {
	var out []string
	for _, rel := range rels {
		if rel == nil {
			continue
		}
		for r := 0; r < rel.Rows(); r++ {
			out = append(out, fmt.Sprintf("%d|%d", rel.Cols[0].Data.Get(r), rel.Cols[1].Data.Get(r)))
		}
	}
	sort.Strings(out)
	return out
}

func bagsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExchangeConservationProperty is the testing/quick battery for the
// exchange operators: for random inputs and node counts, shuffle, broadcast
// and gather must conserve rows and values (rows in == rows out for
// shuffle/gather, rows out == union × N for broadcast), bill moved bytes as
// exactly moved rows × the 8-byte wire width, route every shuffled row to
// NodeFor(key), and reconcile all of it against the rapid_net_* counters.
func TestExchangeConservationProperty(t *testing.T) {
	prop := func(keys []int16, width uint8) bool {
		n := 1 + int(width)%8 // 1..8 nodes
		// Deal rows round-robin into per-node inputs; nodes left with no
		// rows get a nil input (the executor's empty-shard representation).
		ks := make([][]int64, n)
		vs := make([][]int64, n)
		for i, k := range keys {
			ks[i%n] = append(ks[i%n], int64(k))
			vs[i%n] = append(vs[i%n], int64(i))
		}
		parts := make([]*ops.Relation, n)
		totalRows := int64(0)
		for i := 0; i < n; i++ {
			if len(ks[i]) == 0 {
				continue
			}
			parts[i] = pairRelation(ks[i], vs[i])
			totalRows += int64(len(ks[i]))
		}
		inBag := pairBag(parts...)
		const rowBytes = 2 * 8

		q := propQuery(n)
		sm := &storage.ShardMap{Policy: storage.HashSharded, Nodes: n}

		// Shuffle: conservation, routing, byte billing.
		outs, err := q.shuffle(parts, 0, sm, "prop")
		if err != nil {
			t.Log(err)
			return false
		}
		sh := q.stats[len(q.stats)-1]
		var outRows int64
		for d, rel := range outs {
			outRows += int64(rel.Rows())
			for r := 0; r < rel.Rows(); r++ {
				if sm.NodeFor(rel.Cols[0].Data.Get(r)) != d {
					t.Logf("shuffle delivered key %d to node %d", rel.Cols[0].Data.Get(r), d)
					return false
				}
			}
		}
		if sh.RowsIn != totalRows || sh.RowsOut != totalRows || outRows != totalRows {
			t.Logf("shuffle rows in=%d out=%d delivered=%d want %d", sh.RowsIn, sh.RowsOut, outRows, totalRows)
			return false
		}
		if !bagsEqual(inBag, pairBag(outs...)) {
			t.Log("shuffle did not conserve the value multiset")
			return false
		}
		if sh.MovedBytes != sh.MovedRows*rowBytes {
			t.Logf("shuffle moved %d bytes for %d rows", sh.MovedBytes, sh.MovedRows)
			return false
		}

		// Broadcast: every node receives the full union.
		bcast, err := q.broadcast(parts, "prop")
		if err != nil {
			t.Log(err)
			return false
		}
		bc := q.stats[len(q.stats)-1]
		if bc.RowsIn != totalRows || int64(bcast.Rows()) != totalRows {
			t.Logf("broadcast union %d rows, want %d", bcast.Rows(), totalRows)
			return false
		}
		if bc.RowsOut != totalRows*int64(n) || bc.MovedRows != totalRows*int64(n-1) {
			t.Logf("broadcast out=%d moved=%d for %d rows on %d nodes", bc.RowsOut, bc.MovedRows, totalRows, n)
			return false
		}
		if !bagsEqual(inBag, pairBag(bcast)) {
			t.Log("broadcast did not conserve the value multiset")
			return false
		}
		if bc.MovedBytes != bc.MovedRows*rowBytes {
			t.Logf("broadcast moved %d bytes for %d rows", bc.MovedBytes, bc.MovedRows)
			return false
		}

		// Gather: the coordinator sees exactly the union, every row billed.
		gathered, err := q.gather(parts, "prop")
		if err != nil {
			t.Log(err)
			return false
		}
		ga := q.stats[len(q.stats)-1]
		if ga.RowsIn != totalRows || ga.RowsOut != totalRows || ga.MovedRows != totalRows {
			t.Logf("gather in=%d out=%d moved=%d want %d", ga.RowsIn, ga.RowsOut, ga.MovedRows, totalRows)
			return false
		}
		if !bagsEqual(inBag, pairBag(gathered)) {
			t.Log("gather did not conserve the value multiset")
			return false
		}
		if ga.MovedBytes != ga.MovedRows*rowBytes {
			t.Logf("gather moved %d bytes for %d rows", ga.MovedBytes, ga.MovedRows)
			return false
		}

		// All three exchanges must reconcile with the net_* counters and the
		// query's running totals.
		var rows, bytes, tiles int64
		for _, st := range q.stats {
			rows += st.MovedRows
			bytes += st.MovedBytes
			tiles += st.Tiles
		}
		if q.netRows != rows || q.netBytes != bytes || q.netTiles != tiles {
			t.Logf("query totals (%d, %d, %d) != stat sums (%d, %d, %d)",
				q.netRows, q.netBytes, q.netTiles, rows, bytes, tiles)
			return false
		}
		counter := func(name string) int64 { return q.reg.Counter(name).Value() }
		if counter("rapid_net_rows_total") != rows ||
			counter("rapid_net_bytes_total") != bytes ||
			counter("rapid_net_tiles_total") != tiles {
			t.Logf("net counters (%d, %d, %d) != stat sums (%d, %d, %d)",
				counter("rapid_net_rows_total"), counter("rapid_net_bytes_total"),
				counter("rapid_net_tiles_total"), rows, bytes, tiles)
			return false
		}
		if counter("rapid_net_exchanges_total") != 3 ||
			counter("rapid_net_shuffles_total") != 1 ||
			counter("rapid_net_broadcasts_total") != 1 ||
			counter("rapid_net_gathers_total") != 1 {
			t.Log("per-kind exchange counters do not match one shuffle + one broadcast + one gather")
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
