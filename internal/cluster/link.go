// Package cluster implements the multi-node RAPID tray (paper §7.4: SF1000
// "sharded over 8 servers"): N full SoC nodes — each with its own 32
// virtual dpCores, DMEM scratchpads, DMS and shared-SoC scheduler — holding
// hash/range-sharded table replicas, a distributed executor that runs
// maximal node-local plan fragments per node, and exchange operators
// (shuffle, broadcast, gather) that move materialized tiles over a modeled
// interconnect. A coordinator merges per-node partial results with the
// exact single-node aggregate semantics, so distributed answers are
// bit-identical to single-node execution.
package cluster

import "rapid/internal/power"

// LinkModel is the analytical timing model of the tray interconnect, in the
// style of dms.Model: a per-message latency plus a serialized bandwidth
// term. The tray links are the bottleneck the paper's deployment works
// around by sharding (§7.4); the defaults model a 10GbE-class fabric whose
// exchange traffic is far slower per byte than the on-chip DMS, which is
// exactly why the planner prefers node-local fragments.
type LinkModel struct {
	// BytesPerSec is the per-link serialized bandwidth (10 Gb/s ≈ 1.25e9).
	BytesPerSec float64
	// MessageLatencySec is the per-tile fixed cost: NIC doorbell, switch
	// traversal and receive interrupt (~4 µs for kernel-bypass fabrics).
	MessageLatencySec float64
	// TileRows is the exchange granularity: relations move (and cancellation
	// is observed) in tiles of this many rows. Default 1024, matching the
	// storage chunk sweet spot.
	TileRows int
}

// DefaultLinkModel returns the calibrated tray interconnect model.
func DefaultLinkModel() LinkModel {
	return LinkModel{
		BytesPerSec:       1.25e9,
		MessageLatencySec: 4e-6,
		TileRows:          1024,
	}
}

func (m LinkModel) withDefaults() LinkModel {
	d := DefaultLinkModel()
	if m.BytesPerSec <= 0 {
		m.BytesPerSec = d.BytesPerSec
	}
	if m.MessageLatencySec < 0 {
		m.MessageLatencySec = d.MessageLatencySec
	}
	if m.MessageLatencySec == 0 {
		m.MessageLatencySec = d.MessageLatencySec
	}
	if m.TileRows <= 0 {
		m.TileRows = d.TileRows
	}
	return m
}

// TransferSeconds prices moving one stream of rows*rowBytes over a link:
// one message latency per tile plus the serialized byte time.
func (m LinkModel) TransferSeconds(rows, rowBytes int) float64 {
	if rows <= 0 {
		return 0
	}
	tiles := (rows + m.TileRows - 1) / m.TileRows
	return float64(tiles)*m.MessageLatencySec + float64(rows*rowBytes)/m.BytesPerSec
}

// Tiles returns the number of link messages a stream of rows occupies.
func (m LinkModel) Tiles(rows int) int64 {
	if rows <= 0 {
		return 0
	}
	return int64((rows + m.TileRows - 1) / m.TileRows)
}

// EnergyFJ prices bytes crossing the fabric (power.LinkFJPerByte).
func (m LinkModel) EnergyFJ(bytes int64) int64 { return power.LinkEnergyFJ(bytes) }
