package cluster

import (
	"fmt"
	"sync"

	"rapid/internal/coltypes"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/sched"
	"rapid/internal/sqlparse"
	"rapid/internal/storage"
)

// Config tunes a tray.
type Config struct {
	// Nodes is the tray width (>= 1).
	Nodes int
	// ReplicateMaxRows is the auto-sharding threshold: tables at or below
	// it are replicated to every node, larger ones hash-sharded on column
	// 0. Default 64; negative disables replication (everything shards).
	ReplicateMaxRows int
	// Link overrides the interconnect model (zero fields take defaults).
	Link LinkModel
	// Sched configures each node's shared-SoC scheduler (every node gets
	// its own pool; the Metrics field is overridden with the tray registry).
	Sched sched.Config
	// Metrics receives the tray's telemetry (net_* and per-node rapid_*
	// counters). Nil allocates a fresh registry.
	Metrics *obs.Registry
}

// ShardSpec requests an explicit sharding for one table.
type ShardSpec struct {
	Policy storage.ShardPolicy
	Key    int     // sharding column (HashSharded/RangeSharded)
	Bounds []int64 // RangeSharded split points (ascending, len Nodes-1)
}

// node is one tray member: a full SoC with its own scheduler/worker pool.
// Its table shards live in the tray's shared state (trayTable.shards[id]).
type node struct {
	id    int
	sched *sched.Scheduler
}

// trayTable is the tray-side state of one loaded logical table.
type trayTable struct {
	shard   *storage.ShardMap
	spec    *ShardSpec // nil = auto; re-applied on reload
	shards  []*storage.Table
	loadSCN uint64 // host SCN the shards were built at
}

// Tray is an N-node RAPID cluster in front of one System X host database.
// The host remains the source of truth; Load builds per-node shard
// replicas (sharing the host dictionaries, so encoded values compare
// across nodes), and Query executes distributed plans over them.
type Tray struct {
	host *hostdb.Database
	reg  *obs.Registry
	link LinkModel
	cfg  Config

	nodes []*node

	mu     sync.Mutex
	tables map[string]*trayTable

	closed bool
}

// New builds a tray of cfg.Nodes full SoC nodes over the host database.
func New(host *hostdb.Database, cfg Config) (*Tray, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: tray needs Nodes >= 1, got %d", cfg.Nodes)
	}
	if cfg.ReplicateMaxRows == 0 {
		cfg.ReplicateMaxRows = 64
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &Tray{
		host:   host,
		reg:    reg,
		link:   cfg.Link.withDefaults(),
		cfg:    cfg,
		tables: make(map[string]*trayTable),
	}
	for i := 0; i < cfg.Nodes; i++ {
		sc := cfg.Sched
		sc.Metrics = reg
		t.nodes = append(t.nodes, &node{id: i, sched: sched.New(sc)})
	}
	t.describeMetrics()
	return t, nil
}

func (t *Tray) describeMetrics() {
	t.reg.Describe("rapid_net_exchanges_total", "Exchange operators executed on the tray interconnect.")
	t.reg.Describe("rapid_net_shuffles_total", "Shuffle exchanges executed.")
	t.reg.Describe("rapid_net_broadcasts_total", "Broadcast exchanges executed.")
	t.reg.Describe("rapid_net_gathers_total", "Gather exchanges executed.")
	t.reg.Describe("rapid_net_rows_total", "Rows moved across tray nodes (co-located deliveries excluded).")
	t.reg.Describe("rapid_net_bytes_total", "Bytes moved across tray nodes in the widened 8-byte exchange format.")
	t.reg.Describe("rapid_net_tiles_total", "Link messages (exchange tiles) sent between tray nodes.")
	t.reg.Describe("rapid_shards_pruned_total", "Node fragments skipped before fan-out because shard zone summaries proved them empty.")
	t.reg.Describe("rapid_tiles_pruned_total", "Storage tiles skipped by zone maps without DMEM admission, DMS traffic, cycles or energy.")
	t.reg.Describe("rapid_net_microseconds_total", "Modeled serialized interconnect time.")
	t.reg.Describe("rapid_net_energy_nanojoules_total", "Interconnect transfer energy (LinkFJPerByte).")
}

// NumNodes returns the tray width.
func (t *Tray) NumNodes() int { return len(t.nodes) }

// Host returns the backing host database.
func (t *Tray) Host() *hostdb.Database { return t.host }

// Metrics returns the tray's telemetry registry.
func (t *Tray) Metrics() *obs.Registry { return t.reg }

// Link returns the effective interconnect model.
func (t *Tray) Link() LinkModel { return t.link }

// NodeScheduler exposes node i's scheduler (tests occupy admission slots
// through it).
func (t *Tray) NodeScheduler(i int) *sched.Scheduler { return t.nodes[i].sched }

// Close stops every node's worker pool. In-flight queries fail with
// sched.ErrClosed.
func (t *Tray) Close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	for _, n := range t.nodes {
		n.sched.Close()
	}
}

// Load builds (or rebuilds) the per-node shard replicas of a host table.
// spec nil auto-shards: tables with at most ReplicateMaxRows rows are
// replicated, larger ones hash-sharded on column 0.
func (t *Tray) Load(table string, spec *ShardSpec) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.loadLocked(table, spec)
}

func (t *Tray) loadLocked(table string, spec *ShardSpec) error {
	ht, err := t.host.Table(table)
	if err != nil {
		return err
	}
	loadSCN := t.host.CurrentSCN()
	rows := ht.LiveValues()
	n := len(t.nodes)

	sm := &storage.ShardMap{Nodes: n}
	switch {
	case spec != nil:
		sm.Policy, sm.Key = spec.Policy, spec.Key
		sm.Bounds = append([]int64(nil), spec.Bounds...)
	case t.cfg.ReplicateMaxRows >= 0 && len(rows) <= t.cfg.ReplicateMaxRows:
		sm.Policy = storage.Replicated
	default:
		sm.Policy, sm.Key = storage.HashSharded, 0
	}
	if err := sm.Validate(); err != nil {
		return err
	}

	// Every shard builder shares the host dictionaries: identical string
	// codes on every node make group keys, sort ranks and bound literals
	// comparable without recoding.
	opts := storage.BuildOptions{ChunkRows: storage.DefaultChunkRows, SharedDicts: ht.Dicts()}
	builders := make([]*storage.TableBuilder, n)
	for i := range builders {
		builders[i] = storage.NewTableBuilder(table, ht.Schema(), opts)
	}
	for _, vals := range rows {
		if sm.Policy == storage.Replicated {
			for _, b := range builders {
				if err := b.Append(vals); err != nil {
					return err
				}
			}
			continue
		}
		encVal, err := encodeShardKey(ht, sm.Key, vals[sm.Key])
		if err != nil {
			return err
		}
		if err := builders[sm.NodeFor(encVal)].Append(vals); err != nil {
			return err
		}
	}
	tt := &trayTable{shard: sm, spec: spec, loadSCN: loadSCN, shards: make([]*storage.Table, n)}
	for i, b := range builders {
		st, err := b.Build()
		if err != nil {
			return err
		}
		st.SetShardMap(sm)
		tt.shards[i] = st
	}
	t.tables[table] = tt
	return nil
}

// encodeShardKey maps a logical value onto the encoded int64 domain the
// shard map routes on — the same encoding the builders store, so the map's
// placement always agrees with the shard contents.
func encodeShardKey(ht *hostdb.HostTable, col int, v storage.Value) (int64, error) {
	def := ht.Schema().Col(col)
	switch def.Type.Kind {
	case coltypes.KindString:
		return int64(ht.Dicts()[col].Add(v.Str)), nil
	case coltypes.KindDecimal:
		u, ok := v.Dec.Rescale(def.Type.Scale)
		if !ok {
			return 0, fmt.Errorf("cluster: shard key decimal %v does not fit scale %d", v.Dec, def.Type.Scale)
		}
		return u, nil
	default:
		return v.Int, nil
	}
}

// ShardMapOf returns the shard map of a loaded table (nil if not loaded).
func (t *Tray) ShardMapOf(table string) *storage.ShardMap {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tt, ok := t.tables[table]; ok {
		return tt.shard
	}
	return nil
}

// Shard returns node i's shard replica of a loaded table (tests and the
// property battery inspect placement through it).
func (t *Tray) Shard(table string, i int) *storage.Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tt, ok := t.tables[table]; ok {
		return tt.shards[i]
	}
	return nil
}

// shardFor resolves node i's current shard of a table, transparently
// re-loading all shards when host mutations made them stale — the tray
// analog of the single-node SCN admissibility rule (§3.3): instead of
// falling back, the tray refreshes its replicas before binding.
func (t *Tray) shardFor(nodeID int, table string) (*storage.Table, error) {
	ht, err := t.host.Table(table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tt, ok := t.tables[table]
	if !ok {
		return nil, fmt.Errorf("cluster: table %q not loaded on the tray (run Load first)", table)
	}
	if ht.MutationSCN() > tt.loadSCN {
		if err := t.loadLocked(table, tt.spec); err != nil {
			return nil, err
		}
		tt = t.tables[table]
	}
	return tt.shards[nodeID], nil
}

// nodeCatalog binds SQL against one node's shard replicas.
type nodeCatalog struct {
	t  *Tray
	id int
}

func (c nodeCatalog) Lookup(name string) (*storage.Table, error) {
	return c.t.shardFor(c.id, name)
}

var _ sqlparse.Catalog = nodeCatalog{}
