package ops

import (
	"math/rand"
	"sort"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/primitives"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

func intRel(names []string, cols ...[]int64) *Relation {
	rc := make([]Col, len(cols))
	for i := range cols {
		rc[i] = Col{Name: names[i], Type: coltypes.Int(), Data: coltypes.I64(cols[i])}
	}
	return MustRelation(rc)
}

func seq(n int, f func(i int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func bothModes(t *testing.T, fn func(t *testing.T, ctx *qef.Context)) {
	t.Helper()
	for _, mode := range []qef.Mode{qef.ModeDPU, qef.ModeX86} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) { fn(t, qef.NewContext(mode)) })
	}
}

func TestRelationBasics(t *testing.T) {
	r := intRel([]string{"a", "b"}, []int64{1, 2, 3}, []int64{4, 5, 6})
	if r.Rows() != 3 || r.NumCols() != 2 {
		t.Fatal("shape")
	}
	if r.ColIndex("b") != 1 || r.ColIndex("z") != -1 {
		t.Fatal("ColIndex")
	}
	if len(r.Datas()) != 2 {
		t.Fatal("Datas")
	}
	if r.Render(1, 0) != "2" {
		t.Fatal("Render int")
	}
	if _, err := NewRelation([]Col{
		{Name: "a", Data: coltypes.I64{1}},
		{Name: "b", Data: coltypes.I64{1, 2}},
	}); err == nil {
		t.Fatal("ragged relation should fail")
	}
}

func TestRenderTypes(t *testing.T) {
	r := MustRelation([]Col{
		{Name: "d", Type: coltypes.Decimal(2), Data: coltypes.I64{12345}},
		{Name: "dt", Type: coltypes.Date(), Data: coltypes.I64{storage.DateValue(1995, 3, 15).Days()}},
		{Name: "b", Type: coltypes.Bool(), Data: coltypes.I64{1}},
	})
	if r.Render(0, 0) != "123.45" {
		t.Fatalf("decimal render = %s", r.Render(0, 0))
	}
	if r.Render(0, 1) != "1995-03-15" {
		t.Fatalf("date render = %s", r.Render(0, 1))
	}
	if r.Render(0, 2) != "true" {
		t.Fatal("bool render")
	}
}

func TestExprEval(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		cols := []coltypes.Data{
			coltypes.FromInt64s(coltypes.W4, []int64{1, 2, 3}),
			coltypes.FromInt64s(coltypes.W8, []int64{10, 20, 30}),
		}
		tile := qef.NewTile(cols, 3)
		err := ctx.RunSerial(func(tc *qef.TaskCtx) error {
			// (a + b) * 2
			e := &BinExpr{Op: OpMul,
				L: &BinExpr{Op: OpAdd, L: &ColRef{Idx: 0}, R: &ColRef{Idx: 1}},
				R: &ConstExpr{Val: 2}}
			got := e.Eval(tc, tile)
			want := []int64{22, 44, 66}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("expr[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			// CASE WHEN a >= 2 THEN b ELSE 0 END
			ce := &CaseExpr{
				Cond: &ConstCmp{Col: 0, Op: primitives.GE, Val: 2},
				Then: &ColRef{Idx: 1},
				Else: &ConstExpr{Val: 0},
			}
			cg := ce.Eval(tc, tile)
			if cg[0] != 0 || cg[1] != 20 || cg[2] != 30 {
				t.Errorf("case = %v", cg)
			}
			// Div by zero column yields 0.
			de := &BinExpr{Op: OpDiv, L: &ColRef{Idx: 1}, R: &BinExpr{Op: OpSub, L: &ColRef{Idx: 0}, R: &ColRef{Idx: 0}}}
			dg := de.Eval(tc, tile)
			if dg[0] != 0 {
				t.Errorf("div0 = %v", dg)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if e := (&BinExpr{Op: OpAdd, L: &ColRef{Idx: 0, Name: "x"}, R: &ConstExpr{Val: 1}}); e.String() != "(x + 1)" {
			t.Fatalf("String = %s", e.String())
		}
	})
}

func buildTestTable(t testing.TB, rows int) *storage.Table {
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "k", Type: coltypes.Int()},
		storage.ColumnDef{Name: "v", Type: coltypes.Int()},
		storage.ColumnDef{Name: "g", Type: coltypes.Int()},
	)
	b := storage.NewTableBuilder("t", schema, storage.BuildOptions{ChunkRows: 512})
	for i := 0; i < rows; i++ {
		if err := b.Append([]storage.Value{
			storage.IntValue(int64(i)),
			storage.IntValue(int64(i % 100)),
			storage.IntValue(int64(i % 7)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestScanFilterCollect(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		tbl := buildTestTable(t, 5000)
		snap := tbl.Snapshot(storage.LatestSCN)
		sink := NewCollectSink([]Col{
			{Name: "k", Type: coltypes.Int()},
			{Name: "v", Type: coltypes.Int()},
		})
		chain := func() qef.Operator {
			return &FilterOp{
				Preds: []Predicate{
					&ConstCmp{Col: 1, Op: primitives.LT, Val: 10, Sel: 0.1},
					&ConstCmp{Col: 0, Op: primitives.GE, Val: 1000, Sel: 0.8},
				},
				Next: sink,
			}
		}
		if err := TableScan(ctx, snap, []int{0, 1}, 256, nil, chain); err != nil {
			t.Fatal(err)
		}
		rel := sink.Relation()
		// v = k%100 < 10 and k >= 1000: k in [1000,5000) with k%100<10:
		// 40 hundreds x 10 = 400 rows.
		if rel.Rows() != 400 {
			t.Fatalf("rows = %d, want 400", rel.Rows())
		}
		for i := 0; i < rel.Rows(); i++ {
			k := rel.Cols[0].Data.Get(i)
			v := rel.Cols[1].Data.Get(i)
			if v != k%100 || v >= 10 || k < 1000 {
				t.Fatalf("bad row k=%d v=%d", k, v)
			}
		}
	})
}

func TestScanSeesDeletes(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	tbl := buildTestTable(t, 1000)
	if err := tbl.Tracker().Apply(storage.UpdateUnit{
		SCN:     1,
		Deletes: []storage.RowRef{{Part: 0, Chunk: 0, Row: 5}, {Part: 0, Chunk: 1, Row: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	sink := &CountSink{}
	err := TableScan(ctx, tbl.Snapshot(storage.LatestSCN), []int{0}, 256, nil, func() qef.Operator { return sink })
	if err != nil {
		t.Fatal(err)
	}
	if sink.Rows() != 998 {
		t.Fatalf("rows = %d, want 998", sink.Rows())
	}
}

func TestFilterRIDSwitch(t *testing.T) {
	// A highly selective predicate must produce a RID list downstream.
	ctx := qef.NewContext(qef.ModeX86)
	tbl := buildTestTable(t, 4096)
	probe := &reprProbe{}
	chain := func() qef.Operator {
		return &FilterOp{
			Preds: []Predicate{&ConstCmp{Col: 0, Op: primitives.EQ, Val: 77, Sel: 0.0002}},
			Next:  probe,
		}
	}
	if err := TableScan(ctx, tbl.Snapshot(storage.LatestSCN), []int{0}, 512, nil, chain); err != nil {
		t.Fatal(err)
	}
	if !probe.sawRIDs {
		t.Fatal("selective filter should emit RID lists")
	}
	if probe.rows != 1 {
		t.Fatalf("rows = %d", probe.rows)
	}
}

type reprProbe struct {
	sawRIDs bool
	sawBV   bool
	rows    int
}

func (p *reprProbe) DMEMSize(int) int         { return 0 }
func (p *reprProbe) Open(*qef.TaskCtx) error  { return nil }
func (p *reprProbe) Close(*qef.TaskCtx) error { return nil }
func (p *reprProbe) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	if t.RIDs != nil {
		p.sawRIDs = true
	}
	if t.Sel != nil {
		p.sawBV = true
	}
	p.rows += t.QualifyingRows()
	return nil
}

func TestMaterializeAndProject(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		tbl := buildTestTable(t, 2000)
		sink := NewCollectSink([]Col{{Name: "expr", Type: coltypes.Int()}})
		chain := func() qef.Operator {
			return &FilterOp{
				Preds: []Predicate{&ConstCmp{Col: 1, Op: primitives.LT, Val: 50, Sel: 0.5}},
				Next: &MaterializeOp{
					Next: &ProjectOp{
						Exprs: []Expr{&BinExpr{Op: OpMul, L: &ColRef{Idx: 1}, R: &ConstExpr{Val: 3}}},
						Next:  sink,
					},
				},
			}
		}
		if err := TableScan(ctx, tbl.Snapshot(storage.LatestSCN), []int{0, 1}, 256, nil, chain); err != nil {
			t.Fatal(err)
		}
		rel := sink.Relation()
		if rel.Rows() != 1000 {
			t.Fatalf("rows = %d", rel.Rows())
		}
		for i := 0; i < rel.Rows(); i++ {
			v := rel.Cols[0].Data.Get(i)
			if v%3 != 0 || v >= 150 {
				t.Fatalf("expr value %d", v)
			}
		}
	})
}

func TestScalarAgg(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		tbl := buildTestTable(t, 3000)
		res := NewScalarAggResult(3)
		specs := []AggSpec{
			{Kind: AggSum, Expr: &ColRef{Idx: 1}},
			{Kind: AggMax, Expr: &ColRef{Idx: 0}},
			{Kind: AggCountStar},
		}
		chain := func() qef.Operator {
			return &FilterOp{
				Preds: []Predicate{&ConstCmp{Col: 1, Op: primitives.LT, Val: 10, Sel: 0.1}},
				Next:  &ScalarAggOp{Specs: specs, Result: res},
			}
		}
		if err := TableScan(ctx, tbl.Snapshot(storage.LatestSCN), []int{0, 1}, 256, nil, chain); err != nil {
			t.Fatal(err)
		}
		// v<10: 30 full hundreds -> 300 rows, sum v = 30*(0..9)=30*45=1350.
		if got := res.Value(0, AggSum); got != 1350 {
			t.Fatalf("sum = %d", got)
		}
		if got := res.Value(2, AggCountStar); got != 300 {
			t.Fatalf("count = %d", got)
		}
		if got := res.Value(1, AggMax); got != 2909 {
			t.Fatalf("max = %d", got) // largest k with k%100<10 below 3000
		}
	})
}

func TestGroupByLowNDV(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		tbl := buildTestTable(t, 7000)
		specs := []AggSpec{
			{Kind: AggSum, Expr: &ColRef{Idx: 1}, Name: "sum_v"},
			{Kind: AggCountStar, Name: "cnt"},
		}
		merger := NewGroupMerger(1, specs)
		chain := func() qef.Operator {
			return &GroupByOp{
				GroupCols: []int{2},
				Specs:     specs,
				MaxGroups: 16,
				Merger:    merger,
			}
		}
		if err := TableScan(ctx, tbl.Snapshot(storage.LatestSCN), []int{0, 1, 2}, 256, nil, chain); err != nil {
			t.Fatal(err)
		}
		if merger.NumGroups() != 7 {
			t.Fatalf("groups = %d", merger.NumGroups())
		}
		rel := merger.Relation([]Col{{Name: "g", Type: coltypes.Int()}}, nil)
		// Verify against reference.
		wantSum := map[int64]int64{}
		wantCnt := map[int64]int64{}
		for i := 0; i < 7000; i++ {
			g := int64(i % 7)
			wantSum[g] += int64(i % 100)
			wantCnt[g]++
		}
		for i := 0; i < rel.Rows(); i++ {
			g := rel.Cols[0].Data.Get(i)
			if rel.Cols[1].Data.Get(i) != wantSum[g] {
				t.Fatalf("group %d sum = %d, want %d", g, rel.Cols[1].Data.Get(i), wantSum[g])
			}
			if rel.Cols[2].Data.Get(i) != wantCnt[g] {
				t.Fatalf("group %d count wrong", g)
			}
		}
	})
}

func TestGroupByOverflowErrors(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	tbl := buildTestTable(t, 1000)
	merger := NewGroupMerger(1, nil)
	chain := func() qef.Operator {
		return &GroupByOp{GroupCols: []int{0}, MaxGroups: 4, Merger: merger}
	}
	err := TableScan(ctx, tbl.Snapshot(storage.LatestSCN), []int{0}, 256, nil, chain)
	if err == nil {
		t.Fatal("expected group overflow error (NDV 1000 vs table 4)")
	}
}

func TestGroupByPartitionedHighNDV(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		n := 20000
		rel := intRel([]string{"g", "v"},
			seq(n, func(i int) int64 { return int64(i % 3000) }), // 3000 groups
			seq(n, func(i int) int64 { return int64(i) }))
		specs := []AggSpec{{Kind: AggSum, Expr: &ColRef{Idx: 1}, Name: "s"}}
		got, err := GroupByPartitioned(ctx, rel, []int{0}, specs, PartScheme{Rounds: []int{16}}, 512)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != 3000 {
			t.Fatalf("groups = %d", got.Rows())
		}
		want := map[int64]int64{}
		for i := 0; i < n; i++ {
			want[int64(i%3000)] += int64(i)
		}
		for i := 0; i < got.Rows(); i++ {
			g := got.Cols[0].Data.Get(i)
			if got.Cols[1].Data.Get(i) != want[g] {
				t.Fatalf("group %d sum wrong", g)
			}
		}
	})
}

func TestGroupByPartitionedRepartitionsOnBadStats(t *testing.T) {
	// maxGroupsPerPart far below actual forces the runtime re-partitioning.
	ctx := qef.NewContext(qef.ModeX86)
	n := 8000
	rel := intRel([]string{"g"}, seq(n, func(i int) int64 { return int64(i % 4000) }))
	got, err := GroupByPartitioned(ctx, rel, []int{0}, []AggSpec{{Kind: AggCountStar, Name: "c"}},
		PartScheme{Rounds: []int{4}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 4000 {
		t.Fatalf("groups = %d", got.Rows())
	}
}

func TestPartitionByHashCompleteness(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		n := 10000
		cols := []coltypes.Data{
			coltypes.FromInt64s(coltypes.W4, seq(n, func(i int) int64 { return int64(i) })),
			coltypes.FromInt64s(coltypes.W8, seq(n, func(i int) int64 { return int64(i * 3) })),
		}
		for _, scheme := range []PartScheme{
			{Rounds: []int{8}},
			{Rounds: []int{8, 4}},
			{Rounds: []int{32, 8, 4}},
		} {
			pr, err := PartitionByHash(ctx, cols, []int{0}, scheme, 256)
			if err != nil {
				t.Fatalf("%s: %v", scheme, err)
			}
			if pr.NumPartitions() != scheme.Fanout() {
				t.Fatalf("%s: partitions = %d", scheme, pr.NumPartitions())
			}
			total := 0
			seen := make([]bool, n)
			for p := 0; p < pr.NumPartitions(); p++ {
				rows := pr.Rows(p)
				total += rows
				if len(pr.Hashes[p]) != rows {
					t.Fatalf("%s: hash vector misaligned", scheme)
				}
				for i := 0; i < rows; i++ {
					k := pr.Cols[p][0].Get(i)
					if pr.Cols[p][1].Get(i) != k*3 {
						t.Fatalf("%s: row torn", scheme)
					}
					if seen[k] {
						t.Fatalf("%s: duplicate row %d", scheme, k)
					}
					seen[k] = true
				}
			}
			if total != n {
				t.Fatalf("%s: rows = %d", scheme, total)
			}
		}
	})
}

func TestPartitionSchemeValidate(t *testing.T) {
	if (PartScheme{Rounds: []int{64}}).Validate() == nil {
		t.Fatal("HW round above 32 must fail")
	}
	if (PartScheme{Rounds: []int{8, 3}}).Validate() == nil {
		t.Fatal("non power of two must fail")
	}
	if (PartScheme{Rounds: []int{32, 64}}).Validate() != nil {
		t.Fatal("software rounds above 32 are fine")
	}
	if (PartScheme{Rounds: []int{16, 4}}).Fanout() != 64 {
		t.Fatal("fanout")
	}
	if (PartScheme{Rounds: []int{16, 4}}).String() != "16x4" {
		t.Fatal("string")
	}
}

func refJoin(bk, pk []int64) map[[2]int]bool {
	want := map[[2]int]bool{}
	for p, pv := range pk {
		for b, bv := range bk {
			if pv == bv {
				want[[2]int{b, p}] = true
			}
		}
	}
	return want
}

func TestHashJoinInner(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		rng := rand.New(rand.NewSource(5))
		nb, np := 3000, 9000
		bk := seq(nb, func(i int) int64 { return int64(i) })
		pk := seq(np, func(i int) int64 { return int64(rng.Intn(2 * nb)) })
		build := intRel([]string{"bk", "bv"}, bk, seq(nb, func(i int) int64 { return int64(i * 10) }))
		probe := intRel([]string{"pk", "pv"}, pk, seq(np, func(i int) int64 { return int64(i) }))
		out, err := HashJoin(ctx, build, probe, JoinSpec{
			Type:         InnerJoin,
			BuildKeys:    []int{0},
			ProbeKeys:    []int{0},
			BuildPayload: []int{0, 1},
			ProbePayload: []int{1},
			Scheme:       PartScheme{Rounds: []int{16}},
			Vectorized:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Expected matches: probe keys < nb.
		wantRows := 0
		for _, k := range pk {
			if k < int64(nb) {
				wantRows++
			}
		}
		if out.Rows() != wantRows {
			t.Fatalf("rows = %d, want %d", out.Rows(), wantRows)
		}
		// Validate payload alignment: bv must be 10*bk.
		for i := 0; i < out.Rows(); i++ {
			if out.Cols[2].Data.Get(i) != 10*out.Cols[1].Data.Get(i) {
				t.Fatal("payload misaligned")
			}
		}
	})
}

func TestHashJoinSemiAnti(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	build := intRel([]string{"k"}, []int64{2, 4, 6})
	probe := intRel([]string{"k", "v"}, seq(10, func(i int) int64 { return int64(i) }),
		seq(10, func(i int) int64 { return int64(100 + i) }))
	semi, err := HashJoin(ctx, build, probe, JoinSpec{
		Type: SemiJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		ProbePayload: []int{0, 1}, Scheme: PartScheme{Rounds: []int{4}}, Vectorized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if semi.Rows() != 3 {
		t.Fatalf("semi rows = %d", semi.Rows())
	}
	anti, err := HashJoin(ctx, build, probe, JoinSpec{
		Type: AntiJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		ProbePayload: []int{0, 1}, Scheme: PartScheme{Rounds: []int{4}}, Vectorized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if anti.Rows() != 7 {
		t.Fatalf("anti rows = %d", anti.Rows())
	}
	// Semi + anti partition the probe side.
	got := map[int64]bool{}
	for i := 0; i < semi.Rows(); i++ {
		got[semi.Cols[0].Data.Get(i)] = true
	}
	for i := 0; i < anti.Rows(); i++ {
		k := anti.Cols[0].Data.Get(i)
		if got[k] {
			t.Fatalf("key %d in both semi and anti", k)
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	build := intRel([]string{"k", "bv"}, []int64{1, 3}, []int64{111, 333})
	probe := intRel([]string{"k"}, []int64{1, 2, 3, 4})
	out, err := HashJoin(ctx, build, probe, JoinSpec{
		Type: LeftOuterJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		ProbePayload: []int{0}, BuildPayload: []int{1},
		Scheme: PartScheme{Rounds: []int{2}}, Vectorized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 4 {
		t.Fatalf("rows = %d", out.Rows())
	}
	vals := map[int64]int64{}
	for i := 0; i < 4; i++ {
		vals[out.Cols[0].Data.Get(i)] = out.Cols[1].Data.Get(i)
	}
	if vals[1] != 111 || vals[3] != 333 || vals[2] != 0 || vals[4] != 0 {
		t.Fatalf("outer vals = %v", vals)
	}
}

func TestHashJoinCompositeKey(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	build := intRel([]string{"a", "b", "v"}, []int64{1, 1, 2}, []int64{10, 20, 10}, []int64{7, 8, 9})
	probe := intRel([]string{"a", "b"}, []int64{1, 2, 1}, []int64{20, 10, 99})
	out, err := HashJoin(ctx, build, probe, JoinSpec{
		Type: InnerJoin, BuildKeys: []int{0, 1}, ProbeKeys: []int{0, 1},
		ProbePayload: []int{0, 1}, BuildPayload: []int{2},
		Scheme: PartScheme{Rounds: []int{2}}, Vectorized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("rows = %d", out.Rows())
	}
	sum := out.Cols[2].Data.Get(0) + out.Cols[2].Data.Get(1)
	if sum != 8+9 {
		t.Fatalf("matched payloads sum = %d", sum)
	}
}

// Small skew: DMEM capacity below the real partition size must still give
// correct results through the overflow path.
func TestHashJoinSmallSkewOverflow(t *testing.T) {
	ctx := qef.NewContext(qef.ModeDPU)
	nb := 2000
	build := intRel([]string{"k"}, seq(nb, func(i int) int64 { return int64(i) }))
	probe := intRel([]string{"k"}, seq(nb, func(i int) int64 { return int64(i) }))
	out, err := HashJoin(ctx, build, probe, JoinSpec{
		Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		ProbePayload: []int{0},
		Scheme:       PartScheme{Rounds: []int{2}},
		EstPartRows:  nb / 2 / 3, // 3x underestimate: overflow, not re-partition
		SkewFactor:   100,        // disable large-skew handling
		Vectorized:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != nb {
		t.Fatalf("rows = %d, want %d", out.Rows(), nb)
	}
}

// Large skew: one partition far above estimate triggers dynamic
// re-partitioning and still joins correctly.
func TestHashJoinLargeSkewRepartition(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	nb := 4000
	build := intRel([]string{"k"}, seq(nb, func(i int) int64 { return int64(i) }))
	probe := intRel([]string{"k"}, seq(nb, func(i int) int64 { return int64(nb - 1 - i) }))
	out, err := HashJoin(ctx, build, probe, JoinSpec{
		Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		ProbePayload: []int{0},
		Scheme:       PartScheme{Rounds: []int{2}},
		EstPartRows:  100, // every partition looks skewed
		SkewFactor:   2,
		Vectorized:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != nb {
		t.Fatalf("rows = %d, want %d", out.Rows(), nb)
	}
}

// Heavy hitter: all build rows share one key; flow-join spreads the probe
// side and results stay correct.
func TestHashJoinHeavyHitter(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	nb, np := 3000, 6000
	build := intRel([]string{"k", "v"},
		seq(nb, func(i int) int64 { return 42 }),
		seq(nb, func(i int) int64 { return int64(i) }))
	pk := seq(np, func(i int) int64 {
		if i%100 == 0 {
			return 42
		}
		return int64(i + 1000000)
	})
	probe := intRel([]string{"k"}, pk)
	out, err := HashJoin(ctx, build, probe, JoinSpec{
		Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		ProbePayload: []int{0}, BuildPayload: []int{1},
		Scheme:      PartScheme{Rounds: []int{4}},
		EstPartRows: 100,
		SkewFactor:  2,
		Vectorized:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 60 probe hits x 3000 build rows.
	if out.Rows() != 60*nb {
		t.Fatalf("rows = %d, want %d", out.Rows(), 60*nb)
	}
}

// Property-flavored equivalence: hash join vs nested loop on random data.
func TestHashJoinEquivalenceRandom(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nb, np := rng.Intn(500)+1, rng.Intn(500)+1
		bk := seq(nb, func(int) int64 { return int64(rng.Intn(100)) })
		pk := seq(np, func(int) int64 { return int64(rng.Intn(100)) })
		build := intRel([]string{"k"}, bk)
		probe := intRel([]string{"k"}, pk)
		out, err := HashJoin(ctx, build, probe, JoinSpec{
			Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
			ProbePayload: []int{0}, BuildPayload: []int{0},
			Scheme: PartScheme{Rounds: []int{4, 2}}, Vectorized: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Rows() != len(refJoin(bk, pk)) {
			t.Fatalf("trial %d: rows = %d, want %d", trial, out.Rows(), len(refJoin(bk, pk)))
		}
	}
}

func TestSortRelation(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		rng := rand.New(rand.NewSource(9))
		n := 10000
		a := seq(n, func(int) int64 { return int64(rng.Intn(100) - 50) })
		b := seq(n, func(int) int64 { return int64(rng.Intn(1000)) })
		rel := intRel([]string{"a", "b"}, a, b)
		sorted, err := SortRelation(ctx, rel, []SortKey{{Col: 0}, {Col: 1, Desc: true}})
		if err != nil {
			t.Fatal(err)
		}
		if sorted.Rows() != n {
			t.Fatal("row count changed")
		}
		for i := 1; i < n; i++ {
			pa, ca := sorted.Cols[0].Data.Get(i-1), sorted.Cols[0].Data.Get(i)
			if pa > ca {
				t.Fatalf("a not ascending at %d", i)
			}
			if pa == ca {
				if sorted.Cols[1].Data.Get(i-1) < sorted.Cols[1].Data.Get(i) {
					t.Fatalf("b not descending within a at %d", i)
				}
			}
		}
	})
}

func TestTopK(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		rng := rand.New(rand.NewSource(3))
		n := 50000
		v := seq(n, func(int) int64 { return int64(rng.Intn(1000000)) })
		rel := intRel([]string{"v"}, v)
		top, err := TopK(ctx, rel, []SortKey{{Col: 0, Desc: true}}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if top.Rows() != 10 {
			t.Fatalf("rows = %d", top.Rows())
		}
		ref := append([]int64(nil), v...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] })
		for i := 0; i < 10; i++ {
			if top.Cols[0].Data.Get(i) != ref[i] {
				t.Fatalf("top[%d] = %d, want %d", i, top.Cols[0].Data.Get(i), ref[i])
			}
		}
	})
	// k >= n falls back to full sort.
	ctx := qef.NewContext(qef.ModeX86)
	small := intRel([]string{"v"}, []int64{3, 1, 2})
	top, err := TopK(ctx, small, []SortKey{{Col: 0}}, 10)
	if err != nil || top.Rows() != 3 || top.Cols[0].Data.Get(0) != 1 {
		t.Fatalf("small topk: %v", err)
	}
}

func TestWindowFunctions(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	rel := intRel([]string{"g", "o", "v"},
		[]int64{1, 1, 1, 2, 2},
		[]int64{10, 20, 20, 5, 6},
		[]int64{100, 200, 300, 10, 20})
	rn, err := Window(ctx, rel, WindowSpec{Func: WinRowNumber, PartitionBy: []int{0}, OrderBy: []SortKey{{Col: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	col := rn.Cols[3].Data
	if col.Get(0) != 1 || col.Get(1) != 2 || col.Get(2) != 3 || col.Get(3) != 1 || col.Get(4) != 2 {
		t.Fatalf("row_number = %v", coltypes.ToInt64s(col))
	}
	rk, _ := Window(ctx, rel, WindowSpec{Func: WinRank, PartitionBy: []int{0}, OrderBy: []SortKey{{Col: 1}}})
	rc := rk.Cols[3].Data
	if rc.Get(0) != 1 || rc.Get(1) != 2 || rc.Get(2) != 2 {
		t.Fatalf("rank = %v", coltypes.ToInt64s(rc))
	}
	dr, _ := Window(ctx, rel, WindowSpec{Func: WinDenseRank, PartitionBy: []int{0}, OrderBy: []SortKey{{Col: 1}}})
	dc := dr.Cols[3].Data
	if dc.Get(2) != 2 {
		t.Fatalf("dense_rank = %v", coltypes.ToInt64s(dc))
	}
	cs, _ := Window(ctx, rel, WindowSpec{Func: WinCumSum, PartitionBy: []int{0}, OrderBy: []SortKey{{Col: 1}}, ValueCol: 2})
	cc := cs.Cols[3].Data
	if cc.Get(0) != 100 || cc.Get(2) != 600 || cc.Get(4) != 30 {
		t.Fatalf("cumsum = %v", coltypes.ToInt64s(cc))
	}
	ws, _ := Window(ctx, rel, WindowSpec{Func: WinSum, PartitionBy: []int{0}, ValueCol: 2})
	wc := ws.Cols[3].Data
	if wc.Get(0) != 600 || wc.Get(4) != 30 {
		t.Fatalf("winsum = %v", coltypes.ToInt64s(wc))
	}
}

func TestSetOps(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		a := intRel([]string{"x"}, []int64{1, 2, 3, 3, 4})
		b := intRel([]string{"x"}, []int64{3, 4, 5})
		check := func(kind SetOpKind, want []int64) {
			t.Helper()
			got, err := SetOp(ctx, a, b, kind)
			if err != nil {
				t.Fatal(err)
			}
			vals := coltypes.ToInt64s(got.Cols[0].Data)
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			if len(vals) != len(want) {
				t.Fatalf("%v: got %v, want %v", kind, vals, want)
			}
			for i := range want {
				if vals[i] != want[i] {
					t.Fatalf("%v: got %v, want %v", kind, vals, want)
				}
			}
		}
		check(SetUnion, []int64{1, 2, 3, 4, 5})
		check(SetIntersect, []int64{3, 4})
		check(SetMinus, []int64{1, 2})
		check(SetUnionAll, []int64{1, 2, 3, 3, 3, 4, 4, 5})
	})
	// Arity mismatch.
	ctx := qef.NewContext(qef.ModeX86)
	if _, err := SetOp(ctx, intRel([]string{"x"}, []int64{1}),
		intRel([]string{"x", "y"}, []int64{1}, []int64{2}), SetUnion); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestLimit(t *testing.T) {
	r := intRel([]string{"x"}, []int64{1, 2, 3, 4})
	if Limit(r, 2).Rows() != 2 || Limit(r, 9).Rows() != 4 {
		t.Fatal("limit")
	}
}
