package ops

import (
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// TableScan streams a storage snapshot through operator chains: one work
// unit per chunk, distributed over the dpCores, each unit pulling its
// chunk's columns tile by tile through the relation accessor. Deleted rows
// (update-unit overlay) become the tile's initial selection vector.
//
// When prune is non-nil, chunks whose zone maps prove the predicate cannot
// match are skipped BEFORE a work unit is created for them: a pruned chunk
// is never admitted to DMEM, moved over the DMS, or charged cycles/energy —
// the cheapest tile is the one the DPU never touches. Chunk-level
// pruned/scanned/total counts land on the active span; the profile asserts
// pruned+scanned == total.
//
// Each core owns ONE chain instance for the whole scan (operator state such
// as group tables is per core, merged at Close — the paper's merge-operator
// pattern); chainFor builds the instances, and the sinks/mergers they end
// in are shared and thread-safe.
func TableScan(ctx *qef.Context, snap *storage.Snapshot, cols []int, tileRows int, prune Predicate, chainFor func() qef.Operator) error {
	chunks := snap.Chunks()
	span := ctx.ActiveSpan()
	span.AddTilesTotal(int64(len(chunks)))
	units := make([]qef.WorkUnit, 0, len(chunks))
	chains := make([]qef.Operator, ctx.Workers())
	pruned := int64(0)
	for _, cv := range chunks {
		cv := cv
		if prune != nil && !ctx.NoPrune && ZoneReject(prune, tileZone(&cv, cols)) {
			pruned++
			continue
		}
		units = append(units, func(tc *qef.TaskCtx) error {
			tc.SpanTileChunk()
			head, err := chainOf(tc, chains, chainFor)
			if err != nil {
				return err
			}
			data := colScratch(tc, len(cols))
			for i, c := range cols {
				data[i] = cv.Data(c)
			}
			ra := qef.NewAccessor(tc)
			base := 0
			return ra.Sequential(data, tileRows, func(t *qef.Tile) error {
				tc.ResetScratch()
				if cv.Deleted != nil {
					sel := bvScratch(tc, t.N)
					live := 0
					for i := 0; i < t.N; i++ {
						if !cv.Deleted.Test(base + i) {
							sel.Set(i)
							live++
						}
					}
					if live < t.N {
						t.Sel = sel
					}
				}
				base += t.N
				return emitTo(tc, head, t)
			})
		})
	}
	if pruned > 0 {
		span.AddTilesPruned(pruned)
		ctx.AddTilesPruned(pruned)
		ctx.CountMetric("rapid_tiles_pruned_total", pruned)
	}
	if err := ctx.RunParallel(units); err != nil {
		return err
	}
	return closeChains(ctx, chains)
}

// tileZone adapts a ChunkView's zone maps to the scanned tile layout: the
// predicate's column indices address positions in cols, not table columns.
func tileZone(cv *storage.ChunkView, cols []int) func(int) (storage.Zone, bool) {
	return func(c int) (storage.Zone, bool) {
		if c < 0 || c >= len(cols) {
			return storage.Zone{}, false
		}
		return cv.Zone(cols[c])
	}
}

// RelationScan streams a materialized relation through chains, splitting
// rows into per-core spans of whole tiles.
func RelationScan(ctx *qef.Context, rel *Relation, tileRows int, chainFor func() qef.Operator) error {
	rows := rel.Rows()
	if tileRows < qef.MinTileRows {
		tileRows = qef.MinTileRows
	}
	// Contiguous spans of several tiles each so every core gets work.
	spanRows := tileRows * 4
	if min := (rows + ctx.Workers() - 1) / ctx.Workers(); spanRows < min {
		spanRows = min
	}
	var units []qef.WorkUnit
	chains := make([]qef.Operator, ctx.Workers())
	data := rel.Datas()
	for lo := 0; lo < rows; lo += spanRows {
		hi := lo + spanRows
		if hi > rows {
			hi = rows
		}
		lo, hi := lo, hi
		units = append(units, func(tc *qef.TaskCtx) error {
			head, err := chainOf(tc, chains, chainFor)
			if err != nil {
				return err
			}
			span := colScratch(tc, len(data))
			for i, d := range data {
				span[i] = d.Slice(lo, hi)
			}
			ra := qef.NewAccessor(tc)
			return ra.Sequential(span, tileRows, func(t *qef.Tile) error {
				tc.ResetScratch()
				return emitTo(tc, head, t)
			})
		})
	}
	if rows == 0 {
		// Still open/close one chain so scalar aggregates emit their
		// identity row.
		units = append(units, func(tc *qef.TaskCtx) error {
			_, err := chainOf(tc, chains, chainFor)
			return err
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return err
	}
	return closeChains(ctx, chains)
}

// chainOf returns the core's chain, opening a fresh instance on first use.
func chainOf(tc *qef.TaskCtx, chains []qef.Operator, chainFor func() qef.Operator) (qef.Operator, error) {
	if chains[tc.CoreID] == nil {
		head := chainFor()
		if err := head.Open(tc); err != nil {
			return nil, err
		}
		chains[tc.CoreID] = head
	}
	return chains[tc.CoreID], nil
}

func emitTo(tc *qef.TaskCtx, head qef.Operator, t *qef.Tile) error {
	tc.SpanTileIn(t.N)
	return head.Produce(tc, t)
}

// closeChains closes every per-core chain on its own core: unit i of
// RunParallel lands on worker i%workers, so the first `workers` units pin
// one close per core.
func closeChains(ctx *qef.Context, chains []qef.Operator) error {
	units := make([]qef.WorkUnit, len(chains))
	for w := range chains {
		w := w
		units[w] = func(tc *qef.TaskCtx) error {
			if chains[w] == nil {
				return nil
			}
			return chains[w].Close(tc)
		}
	}
	return ctx.RunParallel(units)
}
