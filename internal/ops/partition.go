package ops

import (
	"fmt"
	mathbits "math/bits"

	"rapid/internal/coltypes"
	"rapid/internal/dms"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// PartScheme is a partitioning scheme (paper §5.3): the fan-out of each
// round, all powers of two. Round 0 runs on the DMS (hardware, <= 32-way);
// later rounds are the vectorized software partitioning on the dpCores.
type PartScheme struct {
	Rounds []int
}

// Fanout returns the total fan-out (product of rounds).
func (s PartScheme) Fanout() int {
	f := 1
	for _, r := range s.Rounds {
		f *= r
	}
	return f
}

// Validate checks hardware limits and power-of-two fan-outs.
func (s PartScheme) Validate() error {
	for i, r := range s.Rounds {
		if r < 1 || r&(r-1) != 0 {
			return fmt.Errorf("ops: round %d fan-out %d must be a power of two", i, r)
		}
		if i == 0 && r > dms.MaxFanout {
			return fmt.Errorf("ops: hardware round fan-out %d exceeds %d", r, dms.MaxFanout)
		}
	}
	return nil
}

func (s PartScheme) String() string {
	if len(s.Rounds) == 0 {
		return "none"
	}
	out := ""
	for i, r := range s.Rounds {
		if i > 0 {
			out += "x"
		}
		out += fmt.Sprintf("%d", r)
	}
	return out
}

// PartitionedRel is a hash-partitioned relation: per-partition column sets
// plus the per-row CRC32 hash vectors that travel with the data so that
// subsequent rounds and the join kernels never re-hash.
type PartitionedRel struct {
	Cols   [][]coltypes.Data
	Hashes [][]uint32
	// Bits is the number of low hash bits consumed by the partitioning.
	Bits uint
}

// NumPartitions returns the partition count.
func (p *PartitionedRel) NumPartitions() int { return len(p.Cols) }

// Rows returns the row count of partition i.
func (p *PartitionedRel) Rows(i int) int {
	if len(p.Cols[i]) == 0 {
		return len(p.Hashes[i])
	}
	return p.Cols[i][0].Len()
}

// PartitionByHash partitions cols by the CRC32 hash of keyCols according to
// the scheme. Round 0 uses the DMS hash engine (no dpCore cycles); later
// rounds run the software partitioning operator on all cores with
// DMEM-resident per-partition buffers flushed to DRAM as they fill (§5.3).
func PartitionByHash(ctx *qef.Context, cols []coltypes.Data, keyCols []int, scheme PartScheme, tileRows int) (*PartitionedRel, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	// Hardware hash: the DMS computes CRC32 over the key columns.
	keyData := make([]coltypes.Data, len(keyCols))
	for i, k := range keyCols {
		keyData[i] = cols[k]
	}
	var hv []uint32
	if ctx.Mode == qef.ModeDPU {
		var ht dms.Timing
		hv, ht = ctx.DMS.HashVector(cols, keyCols)
		// The hash pass runs on the DMS from the orchestrator, outside any
		// work unit; attribute its bytes/time to the active operator span so
		// the profile reconciles with the engine's transfer totals.
		ctx.AccountSpanTransfer(ht)
	} else {
		hv = primitives.HashColumns(nil, keyData, nil)
	}
	cur := &PartitionedRel{Cols: [][]coltypes.Data{cols}, Hashes: [][]uint32{hv}}
	if len(scheme.Rounds) == 0 {
		return cur, nil
	}
	// Round 0: hardware partitioning by the low hash bits. The DMS does
	// this during the transfer; it is billed inside HashVector's
	// partition-time model, and the dpCores stay idle.
	hw := scheme.Rounds[0]
	cur = splitPartition(cur.Cols[0], cur.Hashes[0], hw, 0)
	shift := uint(mathbits.Len(uint(hw - 1)))
	// Software rounds.
	for _, fanout := range scheme.Rounds[1:] {
		next, err := swPartitionRound(ctx, cur, fanout, shift, tileRows)
		if err != nil {
			return nil, err
		}
		cur = next
		shift += uint(mathbits.Len(uint(fanout - 1)))
	}
	cur.Bits = shift
	return cur, nil
}

// splitPartition routes rows by hash bits [shift, shift+log2 fanout) — the
// functional effect of the hardware round.
func splitPartition(cols []coltypes.Data, hv []uint32, fanout int, shift uint) *PartitionedRel {
	mask := uint32(fanout - 1)
	n := len(hv)
	counts := make([]int, fanout)
	for _, h := range hv {
		counts[(h>>shift)&mask]++
	}
	out := &PartitionedRel{
		Cols:   make([][]coltypes.Data, fanout),
		Hashes: make([][]uint32, fanout),
	}
	rids := make([][]uint32, fanout)
	for p := range rids {
		rids[p] = make([]uint32, 0, counts[p])
	}
	for i := 0; i < n; i++ {
		p := (hv[i] >> shift) & mask
		rids[p] = append(rids[p], uint32(i))
	}
	for p := 0; p < fanout; p++ {
		out.Hashes[p] = make([]uint32, len(rids[p]))
		for j, r := range rids[p] {
			out.Hashes[p][j] = hv[r]
		}
		out.Cols[p] = make([]coltypes.Data, len(cols))
		for c, col := range cols {
			dst := col.NewSame(len(rids[p]))
			coltypes.Gather(dst, col, rids[p])
			out.Cols[p][c] = dst
		}
	}
	out.Bits = shift + uint(mathbits.Len(uint(fanout-1)))
	return out
}

// SWPartitionRound runs one software partitioning round over an existing
// partitioned relation — exported for the Fig 10 micro-benchmark, which
// sweeps fan-out and tile size over the software operator in isolation.
func SWPartitionRound(ctx *qef.Context, in *PartitionedRel, fanout int, shift uint, tileRows int) (*PartitionedRel, error) {
	return swPartitionRound(ctx, in, fanout, shift, tileRows)
}

// swPartitionRound applies one software partitioning round to every current
// partition in parallel: per input partition, stream tiles, compute the
// partition map (Listing 2), gather per-partition rows into DMEM-local
// buffers (Listing 3) and flush them to DRAM outputs as they fill.
func swPartitionRound(ctx *qef.Context, in *PartitionedRel, fanout int, shift uint, tileRows int) (*PartitionedRel, error) {
	nIn := in.NumPartitions()
	out := &PartitionedRel{
		Cols:   make([][]coltypes.Data, nIn*fanout),
		Hashes: make([][]uint32, nIn*fanout),
	}
	units := make([]qef.WorkUnit, 0, nIn)
	for pi := 0; pi < nIn; pi++ {
		pi := pi
		units = append(units, func(tc *qef.TaskCtx) error {
			return swPartitionOne(tc, in.Cols[pi], in.Hashes[pi], fanout, shift, tileRows,
				func(child int, cols []coltypes.Data, hv []uint32) error {
					slot := pi*fanout + child
					if out.Cols[slot] == nil {
						out.Cols[slot] = cols
						out.Hashes[slot] = hv
						return nil
					}
					for c := range cols {
						nd, err := appendData(out.Cols[slot][c], cols[c])
						if err != nil {
							return err
						}
						out.Cols[slot][c] = nd
					}
					out.Hashes[slot] = append(out.Hashes[slot], hv...)
					return nil
				})
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return nil, err
	}
	// Normalize empty slots.
	for slot := range out.Cols {
		if out.Cols[slot] == nil {
			out.Cols[slot] = emptyLike(in.Cols[0])
			out.Hashes[slot] = nil
		}
	}
	return out, nil
}

// swPartitionOne is the software partitioning operator over one input
// partition. flush is called per (child, buffered rows) as DMEM buffers
// fill; each input partition is owned by one core, so flush needs no
// locking. A flush error aborts the unit.
func swPartitionOne(tc *qef.TaskCtx, cols []coltypes.Data, hv []uint32, fanout int, shift uint, tileRows int, flush func(int, []coltypes.Data, []uint32) error) error {
	if len(hv) == 0 {
		return nil
	}
	rowBytes := 4 // hash
	for _, c := range cols {
		rowBytes += c.Width().Bytes()
	}
	// DMEM budget (§5.3: "we calculate the vector and buffer sizes such
	// that data stays in DMEM"): the local output buffers get half the
	// scratchpad; input tile double-buffers and the partition map share
	// the rest, shrinking the tile when needed.
	tc.DMEM.Mark()
	defer tc.DMEM.Release()
	// Output buffers get half the scratchpad, but never so much that the
	// minimum 64-row input tile cannot fit (tiny-DMEM resilience).
	minInput := 2*qef.MinTileRows*rowBytes + qef.MinTileRows*4 + (fanout+1)*4
	outBudget := tc.DMEM.Free() / 2
	if rest := tc.DMEM.Free() - outBudget; rest < minInput {
		outBudget = tc.DMEM.Free() - minInput
	}
	if outBudget < 0 {
		outBudget = 0
	}
	bufRows := outBudget / (fanout * rowBytes)
	if bufRows < 1 {
		return fmt.Errorf("ops: fan-out %d leaves no DMEM for partition buffers", fanout)
	}
	if bufRows > 4096 {
		bufRows = 4096
	}
	if err := tc.DMEM.Alloc(fanout * bufRows * rowBytes); err != nil {
		return err
	}
	for tileRows > qef.MinTileRows && 2*tileRows*rowBytes+tileRows*4+(fanout+1)*4 > tc.DMEM.Free() {
		tileRows /= 2
	}
	inBytes := 2 * tileRows * rowBytes
	mapBytes := tileRows*4 + (fanout+1)*4
	if err := tc.DMEM.Alloc(inBytes + mapBytes); err != nil {
		return err
	}

	bufCols := make([][]coltypes.Data, fanout)
	bufHash := make([][]uint32, fanout)
	bufN := make([]int, fanout)
	for p := 0; p < fanout; p++ {
		bufCols[p] = make([]coltypes.Data, len(cols))
		for c := range cols {
			bufCols[p][c] = cols[c].NewSame(bufRows)
		}
		bufHash[p] = make([]uint32, bufRows)
	}
	doFlush := func(p int) error {
		n := bufN[p]
		if n == 0 {
			return nil
		}
		outCols := make([]coltypes.Data, len(cols))
		for c := range cols {
			outCols[c] = bufCols[p][c].Slice(0, n).NewSame(n)
			outCols[c].CopyFrom(0, bufCols[p][c].Slice(0, n))
		}
		outHv := append([]uint32(nil), bufHash[p][:n]...)
		// Bill the DMS flush of the local buffer to DRAM (one contiguous
		// region per partition).
		if tc.Core != nil {
			bytes := 0
			for c := range outCols {
				bytes += n * outCols[c].Width().Bytes()
			}
			tc.AddTransfer(tc.Ctx.DMS.StreamWrite(bytes))
		}
		if err := flush(p, outCols, outHv); err != nil {
			return err
		}
		bufN[p] = 0
		return nil
	}

	n := len(hv)
	for lo := 0; lo < n; lo += tileRows {
		hi := lo + tileRows
		if hi > n {
			hi = n
		}
		tn := hi - lo
		// Input tile transfer (read side).
		if tc.Core != nil {
			views := make([]coltypes.Data, len(cols))
			srcs := make([]coltypes.Data, len(cols))
			for c := range cols {
				views[c] = cols[c].NewSame(tn)
				srcs[c] = cols[c]
			}
			tc.AddTransfer(tc.Ctx.DMS.Read(srcs, lo, hi, views))
		}
		tileHv := hv[lo:hi]
		m := primitives.ComputePartitionMap(core(tc), tileHv, fanout, shift)
		for p := 0; p < fanout; p++ {
			sel := m.Partition(p)
			for len(sel) > 0 {
				space := bufRows - bufN[p]
				take := len(sel)
				if take > space {
					take = space
				}
				batch := sel[:take]
				for c := range cols {
					dst := bufCols[p][c].Slice(bufN[p], bufN[p]+take)
					src := cols[c].Slice(lo, hi)
					primitives.SwPartitionColumn(core(tc), src, &primitives.PartitionMap{
						RowIdx:  batch,
						Offsets: []int32{0, int32(take)},
					}, 0, dst)
				}
				for j, r := range batch {
					bufHash[p][bufN[p]+j] = tileHv[r]
				}
				bufN[p] += take
				sel = sel[take:]
				if bufN[p] == bufRows {
					if err := doFlush(p); err != nil {
						return err
					}
				}
			}
		}
	}
	for p := 0; p < fanout; p++ {
		if err := doFlush(p); err != nil {
			return err
		}
	}
	return nil
}

// appendData concatenates two same-width columns. A width mismatch or an
// unknown representation is a query error carried up through the work unit —
// fuzzed plans must not crash the worker.
func appendData(a, b coltypes.Data) (coltypes.Data, error) {
	switch av := a.(type) {
	case coltypes.I8:
		bv, ok := b.(coltypes.I8)
		if !ok {
			return nil, fmt.Errorf("ops: cannot append %T to %T", b, a)
		}
		return append(av, bv...), nil
	case coltypes.I16:
		bv, ok := b.(coltypes.I16)
		if !ok {
			return nil, fmt.Errorf("ops: cannot append %T to %T", b, a)
		}
		return append(av, bv...), nil
	case coltypes.I32:
		bv, ok := b.(coltypes.I32)
		if !ok {
			return nil, fmt.Errorf("ops: cannot append %T to %T", b, a)
		}
		return append(av, bv...), nil
	case coltypes.I64:
		bv, ok := b.(coltypes.I64)
		if !ok {
			return nil, fmt.Errorf("ops: cannot append %T to %T", b, a)
		}
		return append(av, bv...), nil
	}
	return nil, fmt.Errorf("ops: unsupported data %T", a)
}

func emptyLike(cols []coltypes.Data) []coltypes.Data {
	out := make([]coltypes.Data, len(cols))
	for i, c := range cols {
		out[i] = c.NewSame(0)
	}
	return out
}
