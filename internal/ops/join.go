package ops

import (
	"fmt"
	mathbits "math/bits"
	"sync"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// JoinType selects the join semantics (§6.5).
type JoinType int

const (
	InnerJoin     JoinType = iota
	SemiJoin               // probe rows with at least one build match
	AntiJoin               // probe rows with no build match
	LeftOuterJoin          // all probe rows; unmatched get zero build payload
)

func (t JoinType) String() string {
	switch t {
	case InnerJoin:
		return "inner"
	case SemiJoin:
		return "semi"
	case AntiJoin:
		return "anti"
	case LeftOuterJoin:
		return "left-outer"
	}
	return fmt.Sprintf("JoinType(%d)", int(t))
}

// JoinSpec configures a hash join. The build side should be the smaller
// relation (the driving relation of §6.1).
type JoinSpec struct {
	Type      JoinType
	BuildKeys []int // key column indices in the build relation (1 or 2)
	ProbeKeys []int // matching key columns in the probe relation
	// BuildPayload / ProbePayload are the columns each side contributes to
	// the output, in output order (probe payload first).
	BuildPayload []int
	ProbePayload []int

	Scheme   PartScheme // partitioning scheme from the optimizer
	TileRows int        // operator tile size

	// EstPartRows is the optimizer's estimate of build rows per partition
	// (the DMEM capacity). Underestimates trigger the §6.4 resilience.
	EstPartRows int
	// SkewFactor: partitions larger than SkewFactor*EstPartRows are "large
	// skew" and get re-partitioned dynamically; below that the hash table
	// overflows gracefully ("small skew").
	SkewFactor float64
	// Vectorized false charges the row-at-a-time dispatch penalty (the
	// Fig 13 ablation).
	Vectorized bool
}

func (s *JoinSpec) normalize(buildRows int) {
	if s.TileRows <= 0 {
		s.TileRows = qef.DefaultTileRows
	}
	if s.SkewFactor <= 1 {
		s.SkewFactor = 4
	}
	if s.EstPartRows <= 0 {
		f := s.Scheme.Fanout()
		if f < 1 {
			f = 1
		}
		s.EstPartRows = buildRows/f + 1
	}
}

// HashJoin executes the partitioned hash join of §6: partition both inputs
// by key hash, then per partition pair run the compact DMEM join kernel on
// one dpCore, all pairs in parallel.
func HashJoin(ctx *qef.Context, build, probe *Relation, spec JoinSpec) (*Relation, error) {
	if len(spec.BuildKeys) != len(spec.ProbeKeys) || len(spec.BuildKeys) == 0 || len(spec.BuildKeys) > 2 {
		return nil, fmt.Errorf("ops: join needs 1 or 2 key pairs, got %d/%d", len(spec.BuildKeys), len(spec.ProbeKeys))
	}
	spec.normalize(build.Rows())

	bp, err := PartitionByHash(ctx, build.Datas(), spec.BuildKeys, spec.Scheme, spec.TileRows)
	if err != nil {
		return nil, err
	}
	pp, err := PartitionByHash(ctx, probe.Datas(), spec.ProbeKeys, spec.Scheme, spec.TileRows)
	if err != nil {
		return nil, err
	}
	if bp.NumPartitions() != pp.NumPartitions() {
		return nil, fmt.Errorf("ops: partition count mismatch %d vs %d", bp.NumPartitions(), pp.NumPartitions())
	}

	sink := newJoinSink(build, probe, spec)
	var units []qef.WorkUnit
	for p := 0; p < bp.NumPartitions(); p++ {
		p := p
		buildRows := bp.Rows(p)
		probeRows := pp.Rows(p)
		if probeRows == 0 && (spec.Type == InnerJoin || spec.Type == SemiJoin ||
			spec.Type == AntiJoin || spec.Type == LeftOuterJoin) {
			continue
		}
		// Flow-join heavy-hitter handling (§6.4): a build partition far
		// above estimate whose keys are a single value cannot be split by
		// re-partitioning; spread the probe side across cores instead.
		if buildRows > int(spec.SkewFactor*float64(spec.EstPartRows)) &&
			singleKeyPartition(bp, p, spec.BuildKeys) && probeRows > 0 {
			const chunks = 8
			step := (probeRows + chunks - 1) / chunks
			for lo := 0; lo < probeRows; lo += step {
				hi := lo + step
				if hi > probeRows {
					hi = probeRows
				}
				lo, hi := lo, hi
				units = append(units, func(tc *qef.TaskCtx) error {
					return joinPair(tc, bp, pp, p, lo, hi, &spec, sink)
				})
			}
			continue
		}
		units = append(units, func(tc *qef.TaskCtx) error {
			return joinPair(tc, bp, pp, p, 0, pp.Rows(p), &spec, sink)
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return nil, err
	}
	return sink.relation(), nil
}

// singleKeyPartition samples the partition's keys for the heavy-hitter
// histogram: true when every sampled key equals the first.
func singleKeyPartition(pr *PartitionedRel, p int, keys []int) bool {
	n := pr.Rows(p)
	if n == 0 {
		return false
	}
	key := pr.Cols[p][keys[0]]
	first := key.Get(0)
	step := n / 64
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		if key.Get(i) != first {
			return false
		}
	}
	return true
}

// joinPair joins build partition p against probe rows [plo, phi).
func joinPair(tc *qef.TaskCtx, bp, pp *PartitionedRel, p, plo, phi int, spec *JoinSpec, sink *joinSink) error {
	buildRows := bp.Rows(p)
	// Large skew (§6.4): dynamically insert another partitioning round for
	// this pair when it exceeds the skew threshold and has key diversity.
	if buildRows > int(spec.SkewFactor*float64(spec.EstPartRows)) &&
		!singleKeyPartition(bp, p, spec.BuildKeys) {
		sub := 4
		subShift := bp.Bits
		sbp := splitPartition(bp.Cols[p], bp.Hashes[p], sub, subShift)
		probeCols := colScratch(tc, len(pp.Cols[p]))
		for c := range probeCols {
			probeCols[c] = pp.Cols[p][c].Slice(plo, phi)
		}
		spp := splitPartition(probeCols, pp.Hashes[p][plo:phi], sub, subShift)
		for sp := 0; sp < sub; sp++ {
			if err := joinPairData(tc, sbp.Cols[sp], sbp.Hashes[sp], spp.Cols[sp], spp.Hashes[sp], spec, sink); err != nil {
				return err
			}
		}
		return nil
	}
	probeCols := colScratch(tc, len(pp.Cols[p]))
	for c := range probeCols {
		probeCols[c] = pp.Cols[p][c].Slice(plo, phi)
	}
	return joinPairData(tc, bp.Cols[p], bp.Hashes[p], probeCols, pp.Hashes[p][plo:phi], spec, sink)
}

// joinPairData runs the build and probe kernels over one partition pair.
func joinPairData(tc *qef.TaskCtx, buildCols []coltypes.Data, bhv []uint32, probeCols []coltypes.Data, phv []uint32, spec *JoinSpec, sink *joinSink) error {
	nb, np := len(bhv), len(phv)
	if nb == 0 {
		// Anti and left-outer joins still emit probe rows: every probe row
		// is unmatched, so take the dense path (nil selection).
		if spec.Type == AntiJoin || spec.Type == LeftOuterJoin {
			if spec.Type == AntiJoin {
				sink.emitProbeOnly(tc, probeCols, nil, np)
			} else {
				sink.emitOuter(tc, probeCols, nil, nil, np, nil)
			}
		}
		return nil
	}
	// Pool scope: everything taken below (shifted hashes, widened keys,
	// match bit-vectors, sink staging) dies with this partition pair. The
	// skew path runs several pairs per unit, so without this the takes
	// would accumulate across pairs.
	if tc != nil {
		tc.MarkScratch()
		defer tc.ReleaseScratch()
	}
	if !spec.Vectorized {
		primitives.ChargeScalarDispatch(core(tc), nb+np)
	}
	// Bucket index bits come from the top of the hash — disjoint from the
	// low bits consumed by partitioning.
	nBuckets := primitives.BucketsFor(nb)
	bucketShift := uint(32 - mathbits.Len(uint(nBuckets-1)))
	shiftHv := func(hv []uint32) []uint32 {
		out := u32Scratch(tc, len(hv))
		for i, h := range hv {
			out[i] = h >> bucketShift
		}
		return out
	}
	sbhv := shiftHv(bhv)
	sphv := shiftHv(phv)

	buildKeys := primitives.WidenToI64(core(tc), buildCols[spec.BuildKeys[0]], scratch(tc, nb))
	var buildKeys2 []int64
	if len(spec.BuildKeys) == 2 {
		buildKeys2 = primitives.WidenToI64(core(tc), buildCols[spec.BuildKeys[1]], scratch(tc, nb))
	}
	probeKeys := primitives.WidenToI64(core(tc), probeCols[spec.ProbeKeys[0]], scratch(tc, np))
	var probeKeys2 []int64
	if len(spec.ProbeKeys) == 2 {
		probeKeys2 = primitives.WidenToI64(core(tc), probeCols[spec.ProbeKeys[1]], scratch(tc, np))
	}

	// DMEM capacity: the optimizer's estimate, clamped to what actually
	// fits the scratchpad. Rows beyond capacity overflow gracefully to
	// DRAM (small-skew resilience, §6.4).
	capacity := spec.EstPartRows
	if nb < capacity {
		capacity = nb
	}
	tc.DMEM.Mark()
	defer tc.DMEM.Release()
	budget := tc.DMEM.Free() - 2048 // leave room for key vectors/control
	for capacity > 16 && primitives.HTSizeBytes(capacity, nBuckets) > budget {
		capacity /= 2
	}
	if err := tc.DMEM.Alloc(primitives.HTSizeBytes(capacity, nBuckets)); err != nil {
		return err
	}
	ht := primitives.NewCompactHT(capacity, nBuckets)
	ht.Build(core(tc), sbhv, buildKeys, buildKeys2, spec.TileRows)

	switch spec.Type {
	case InnerJoin:
		matches := ht.Probe(core(tc), sphv, probeKeys, probeKeys2, spec.TileRows, nil)
		sink.emitMatches(tc, buildCols, probeCols, matches)
	case SemiJoin, AntiJoin:
		exists := bvScratch(tc, np)
		ht.ProbeExists(core(tc), sphv, probeKeys, probeKeys2, spec.TileRows, exists)
		if spec.Type == AntiJoin {
			neg := bvScratch(tc, np)
			neg.Not(exists)
			exists = neg
		}
		sink.emitProbeOnly(tc, probeCols, exists, np)
	case LeftOuterJoin:
		matches := ht.Probe(core(tc), sphv, probeKeys, probeKeys2, spec.TileRows, nil)
		matched := bvScratch(tc, np)
		for _, m := range matches {
			matched.Set(int(m.ProbeRow))
		}
		unmatched := bvScratch(tc, np)
		unmatched.Not(matched)
		sink.emitOuter(tc, probeCols, buildCols, unmatched, np, matches)
	}
	return nil
}

// joinSink accumulates join output rows.
type joinSink struct {
	spec  *JoinSpec
	build *Relation
	probe *Relation

	mu   sync.Mutex
	cols [][]int64
}

func newJoinSink(build, probe *Relation, spec JoinSpec) *joinSink {
	n := len(spec.ProbePayload) + len(spec.BuildPayload)
	return &joinSink{
		spec:  &spec,
		build: build,
		probe: probe,
		cols:  make([][]int64, n),
	}
}

// emitMatches gathers payload columns for matched pairs.
func (s *joinSink) emitMatches(tc *qef.TaskCtx, buildCols, probeCols []coltypes.Data, matches []primitives.Match) {
	if len(matches) == 0 {
		return
	}
	rows := rowScratch(tc, len(s.cols))
	ci := 0
	probeRIDs := u32Scratch(tc, len(matches))
	buildRIDs := u32Scratch(tc, len(matches))
	for i, m := range matches {
		probeRIDs[i] = m.ProbeRow
		buildRIDs[i] = m.BuildRow
	}
	for _, pc := range s.spec.ProbePayload {
		rows[ci] = gatherI64(tc, probeCols[pc], probeRIDs)
		ci++
	}
	for _, bc := range s.spec.BuildPayload {
		rows[ci] = gatherI64(tc, buildCols[bc], buildRIDs)
		ci++
	}
	s.appendRows(rows)
}

// gatherI64 gathers src rows into a widened int64 vector, charging the
// DMEM gather cost.
func gatherI64(tc *qef.TaskCtx, src coltypes.Data, rids []uint32) []int64 {
	out := scratch(tc, len(rids))
	for i, r := range rids {
		out[i] = src.Get(int(r))
	}
	if c := core(tc); c != nil {
		c.Charge(dpu.Cycles(2 * len(rids)))
	}
	return out
}

// emitProbeOnly emits the probe payload of rows set in sel (semi/anti). A
// nil sel means every one of the `total` probe rows qualifies — the dense
// fast path copies sequentially without materializing a selection at all,
// and the sparse path walks the bit-vector directly instead of building an
// intermediate RID list.
func (s *joinSink) emitProbeOnly(tc *qef.TaskCtx, probeCols []coltypes.Data, sel *bits.Vector, total int) {
	n := total
	if sel != nil {
		n = sel.Count()
	}
	if n == 0 {
		return
	}
	rows := rowScratch(tc, len(s.cols))
	ci := 0
	for _, pc := range s.spec.ProbePayload {
		vals := scratch(tc, n)
		col := probeCols[pc]
		if sel == nil {
			for i := 0; i < n; i++ {
				vals[i] = col.Get(i)
			}
		} else {
			j := 0
			sel.ForEach(func(i int) {
				vals[j] = col.Get(i)
				j++
			})
		}
		rows[ci] = vals
		ci++
	}
	for range s.spec.BuildPayload {
		rows[ci] = scratch(tc, n) // zero build payload
		ci++
	}
	if c := core(tc); c != nil {
		c.Charge(dpu.Cycles(2 * n))
	}
	s.appendRows(rows)
}

// emitOuter emits matched pairs plus unmatched probe rows with zero build
// payload. A nil unmatched vector means all `total` probe rows are
// unmatched (the empty-build case).
func (s *joinSink) emitOuter(tc *qef.TaskCtx, probeCols, buildCols []coltypes.Data, unmatched *bits.Vector, total int, matches []primitives.Match) {
	if len(matches) > 0 {
		s.emitMatches(tc, buildCols, probeCols, matches)
	}
	s.emitProbeOnly(tc, probeCols, unmatched, total)
}

func (s *joinSink) appendRows(rows [][]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.cols {
		s.cols[c] = append(s.cols[c], rows[c]...)
	}
}

// relation materializes the join output with column metadata from the
// payload sources.
func (s *joinSink) relation() *Relation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Col, 0, len(s.cols))
	ci := 0
	for _, pc := range s.spec.ProbePayload {
		c := s.probe.Cols[pc]
		c.Data = coltypes.I64(s.cols[ci])
		out = append(out, c)
		ci++
	}
	for _, bc := range s.spec.BuildPayload {
		c := s.build.Cols[bc]
		c.Data = coltypes.I64(s.cols[ci])
		out = append(out, c)
		ci++
	}
	return MustRelation(out)
}
