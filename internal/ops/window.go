package ops

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/qef"
)

// Window functions (§5.4): analytic aggregates and rank with PARTITION BY.
// The relation is sorted by (partition keys, order keys); a scan then
// computes the function per partition. Partition boundaries are detected on
// the sorted key columns.

// WindowFunc selects the window function.
type WindowFunc int

const (
	WinRowNumber WindowFunc = iota
	WinRank
	WinDenseRank
	WinCumSum // running SUM(value) within the partition
	WinSum    // partition-total SUM(value) on every row
)

func (f WindowFunc) String() string {
	switch f {
	case WinRowNumber:
		return "ROW_NUMBER"
	case WinRank:
		return "RANK"
	case WinDenseRank:
		return "DENSE_RANK"
	case WinCumSum:
		return "CUM_SUM"
	case WinSum:
		return "SUM"
	}
	return fmt.Sprintf("WindowFunc(%d)", int(f))
}

// WindowSpec configures one window computation.
type WindowSpec struct {
	Func        WindowFunc
	PartitionBy []int
	OrderBy     []SortKey
	ValueCol    int // WinCumSum / WinSum input
	Name        string
}

// Window returns rel sorted by (PartitionBy, OrderBy) with the window
// column appended.
func Window(ctx *qef.Context, rel *Relation, spec WindowSpec) (*Relation, error) {
	keys := make([]SortKey, 0, len(spec.PartitionBy)+len(spec.OrderBy))
	for _, p := range spec.PartitionBy {
		keys = append(keys, SortKey{Col: p})
	}
	keys = append(keys, spec.OrderBy...)
	sorted, err := SortRelation(ctx, rel, keys)
	if err != nil {
		return nil, err
	}
	n := sorted.Rows()
	out := make([]int64, n)
	err = ctx.RunSerial(func(tc *qef.TaskCtx) error {
		samePartition := func(i, j int) bool {
			for _, p := range spec.PartitionBy {
				if sorted.Cols[p].Data.Get(i) != sorted.Cols[p].Data.Get(j) {
					return false
				}
			}
			return true
		}
		sameOrder := func(i, j int) bool {
			for _, sk := range spec.OrderBy {
				if sorted.Cols[sk.Col].Data.Get(i) != sorted.Cols[sk.Col].Data.Get(j) {
					return false
				}
			}
			return true
		}
		var valCol coltypes.Data
		if spec.Func == WinCumSum || spec.Func == WinSum {
			valCol = sorted.Cols[spec.ValueCol].Data
		}
		start := 0
		for start < n {
			end := start + 1
			for end < n && samePartition(start, end) {
				end++
			}
			switch spec.Func {
			case WinRowNumber:
				for i := start; i < end; i++ {
					out[i] = int64(i - start + 1)
				}
			case WinRank:
				rank := int64(1)
				for i := start; i < end; i++ {
					if i > start && !sameOrder(i-1, i) {
						rank = int64(i - start + 1)
					}
					out[i] = rank
				}
			case WinDenseRank:
				rank := int64(1)
				for i := start; i < end; i++ {
					if i > start && !sameOrder(i-1, i) {
						rank++
					}
					out[i] = rank
				}
			case WinCumSum:
				var sum int64
				for i := start; i < end; i++ {
					sum += valCol.Get(i)
					out[i] = sum
				}
			case WinSum:
				var sum int64
				for i := start; i < end; i++ {
					sum += valCol.Get(i)
				}
				for i := start; i < end; i++ {
					out[i] = sum
				}
			}
			start = end
		}
		if c := core(tc); c != nil {
			c.Charge(dpu.Cycles(3 * n))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	name := spec.Name
	if name == "" {
		name = spec.Func.String()
	}
	cols := append(append([]Col(nil), sorted.Cols...), Col{
		Name: name,
		Type: coltypes.Int(),
		Data: coltypes.I64(out),
	})
	return MustRelation(cols), nil
}
