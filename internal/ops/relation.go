// Package ops implements RAPID's data processing operators (paper §5.4 and
// §6): scan, filter with RID/bit-vector duality and late materialization,
// combined hardware+software partitioning, the partitioned hash join with
// skew- and statistics-resilient execution, both group-by strategies, radix
// sorting, top-k, window functions and set operations.
//
// Streaming operators implement qef.Operator and run inside tasks; heavier
// phases (partitioning, join, sort) are relation-to-relation functions that
// parallelize across the dpCores through qef.Context.RunParallel.
package ops

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
)

// Col is one column of a materialized relation: data plus the logical type
// information needed to interpret and render it.
type Col struct {
	Name string
	Type coltypes.Type
	Dict *encoding.Dict // string columns
	Data coltypes.Data
}

// Relation is a DRAM-materialized (intermediate) relation — the unit flowing
// between tasks. Within a task, data flows as qef.Tile instead.
type Relation struct {
	Cols []Col
}

// NewRelation builds a relation, validating column lengths agree.
func NewRelation(cols []Col) (*Relation, error) {
	if len(cols) > 0 {
		n := cols[0].Data.Len()
		for _, c := range cols[1:] {
			if c.Data.Len() != n {
				return nil, fmt.Errorf("ops: ragged relation: %q has %d rows, %q has %d",
					cols[0].Name, n, c.Name, c.Data.Len())
			}
		}
	}
	return &Relation{Cols: cols}, nil
}

// MustRelation builds a relation or panics.
func MustRelation(cols []Col) *Relation {
	r, err := NewRelation(cols)
	if err != nil {
		panic(err)
	}
	return r
}

// Rows returns the row count.
func (r *Relation) Rows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Data.Len()
}

// NumCols returns the column count.
func (r *Relation) NumCols() int { return len(r.Cols) }

// ColIndex returns the index of the named column or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Datas returns the raw column data slices in order.
func (r *Relation) Datas() []coltypes.Data {
	out := make([]coltypes.Data, len(r.Cols))
	for i, c := range r.Cols {
		out[i] = c.Data
	}
	return out
}

// Render decodes cell (row, col) for display.
func (r *Relation) Render(row, col int) string {
	c := r.Cols[col]
	v := c.Data.Get(row)
	switch c.Type.Kind {
	case coltypes.KindString:
		if c.Dict != nil {
			if v < 0 || v >= int64(c.Dict.Len()) {
				// Left-outer padding in the NULL-free engine: unmatched
				// probe rows carry code 0, which an empty build-side
				// dictionary cannot decode. Render the padding as ''.
				return ""
			}
			return c.Dict.Value(int32(v))
		}
		return fmt.Sprintf("#%d", v)
	case coltypes.KindDecimal:
		return encoding.Decimal{Unscaled: v, Scale: c.Type.Scale}.String()
	case coltypes.KindDate:
		return dateString(v)
	case coltypes.KindBool:
		if v != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%d", v)
	}
}

// dateString formats a day number; kept local to avoid importing storage.
func dateString(days int64) string {
	// days since 1970-01-01; reuse the civil-date algorithm.
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	m := mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}
