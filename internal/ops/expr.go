package ops

import (
	"fmt"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// Expr is a vectorized arithmetic expression over a tile's columns,
// evaluated into a 64-bit accumulator vector. The compiler has already done
// all type work (DSB scale alignment, width selection), so evaluation is
// pure integer arithmetic composed of widen/arith primitives.
type Expr interface {
	// Eval computes the expression densely for all t.N rows.
	Eval(tc *qef.TaskCtx, t *qef.Tile) []int64
	// String renders the expression for plan display.
	String() string
}

// ColRef reads tile column Idx, widening to 64 bits.
type ColRef struct {
	Idx  int
	Name string
}

func (e *ColRef) Eval(tc *qef.TaskCtx, t *qef.Tile) []int64 {
	return primitives.WidenToI64(core(tc), t.Cols[e.Idx], scratch(tc, t.N))
}

func (e *ColRef) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("$%d", e.Idx)
}

// ConstExpr is a 64-bit constant (already scaled by the compiler).
type ConstExpr struct {
	Val int64
}

func (e *ConstExpr) Eval(tc *qef.TaskCtx, t *qef.Tile) []int64 {
	out := scratch(tc, t.N)
	for i := range out {
		out[i] = e.Val
	}
	charge1(tc, t.N)
	return out
}

func (e *ConstExpr) String() string { return fmt.Sprintf("%d", e.Val) }

// ArithOp is a binary arithmetic operator.
type ArithOp int

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// BinExpr applies an arithmetic operator element-wise.
type BinExpr struct {
	Op   ArithOp
	L, R Expr
}

func (e *BinExpr) Eval(tc *qef.TaskCtx, t *qef.Tile) []int64 {
	l := e.L.Eval(tc, t)
	// Constant fast paths use the *Const primitives (cheaper than
	// materializing a constant vector).
	if c, ok := e.R.(*ConstExpr); ok {
		out := scratch(tc, len(l))
		switch e.Op {
		case OpAdd:
			primitives.AddConst(core(tc), l, c.Val, out)
		case OpSub:
			primitives.AddConst(core(tc), l, -c.Val, out)
		case OpMul:
			primitives.MulConst(core(tc), l, c.Val, out)
		case OpDiv:
			primitives.DivConst(core(tc), l, c.Val, out)
		}
		return out
	}
	r := e.R.Eval(tc, t)
	out := scratch(tc, len(l))
	switch e.Op {
	case OpAdd:
		primitives.AddCol(core(tc), l, r, out)
	case OpSub:
		primitives.SubCol(core(tc), l, r, out)
	case OpMul:
		primitives.MulCol(core(tc), l, r, out)
	case OpDiv:
		for i := range l {
			if r[i] == 0 {
				out[i] = 0
			} else {
				out[i] = l[i] / r[i]
			}
		}
		charge4(tc, len(l))
	}
	return out
}

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// CaseExpr is CASE WHEN cond THEN a ELSE b END, evaluated branch-free: both
// arms are computed and blended by the condition bit-vector (the DPU way —
// no data-dependent branches in primitives).
type CaseExpr struct {
	Cond Predicate
	Then Expr
	Else Expr
}

func (e *CaseExpr) Eval(tc *qef.TaskCtx, t *qef.Tile) []int64 {
	cond := evalPredDense(tc, e.Cond, t)
	a := e.Then.Eval(tc, t)
	b := e.Else.Eval(tc, t)
	out := scratch(tc, t.N)
	for i := range out {
		if cond.Test(i) {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	charge1(tc, t.N)
	return out
}

func (e *CaseExpr) String() string {
	return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END", e.Cond, e.Then, e.Else)
}

func core(tc *qef.TaskCtx) *dpu.Core {
	if tc == nil {
		return nil
	}
	return tc.Core
}

// scratch returns a tile-lifetime buffer (per-task pool when available).
func scratch(tc *qef.TaskCtx, n int) []int64 {
	if tc == nil {
		return make([]int64, n)
	}
	return tc.I64Scratch(n)
}

// bvScratch returns a cleared tile-lifetime bit-vector.
func bvScratch(tc *qef.TaskCtx, n int) *bits.Vector {
	if tc == nil {
		return bits.NewVector(n)
	}
	return tc.BVScratch(n)
}

// ridScratch returns an empty tile-lifetime RID buffer of capacity n.
func ridScratch(tc *qef.TaskCtx, n int) []uint32 {
	if tc == nil {
		return make([]uint32, 0, n)
	}
	return tc.RIDScratch(n)
}

// u32Scratch returns a zeroed tile-lifetime uint32 buffer of length n.
func u32Scratch(tc *qef.TaskCtx, n int) []uint32 {
	if tc == nil {
		return make([]uint32, n)
	}
	return tc.U32Scratch(n)
}

// colScratch returns a zeroed tile-lifetime column-header slice.
func colScratch(tc *qef.TaskCtx, n int) []coltypes.Data {
	if tc == nil {
		return make([]coltypes.Data, n)
	}
	return tc.ColScratch(n)
}

// rowScratch returns a zeroed tile-lifetime [][]int64 header slice.
func rowScratch(tc *qef.TaskCtx, n int) [][]int64 {
	if tc == nil {
		return make([][]int64, n)
	}
	return tc.RowScratch(n)
}

// dataScratch returns a zeroed tile-lifetime column buffer.
func dataScratch(tc *qef.TaskCtx, w coltypes.Width, n int) coltypes.Data {
	if tc == nil {
		return coltypes.New(w, n)
	}
	return tc.DataScratch(w, n)
}

// tileScratch returns a recycled tile-lifetime Tile over cols.
func tileScratch(tc *qef.TaskCtx, cols []coltypes.Data, n int) *qef.Tile {
	if tc == nil {
		return qef.NewTile(cols, n)
	}
	return tc.TileScratch(cols, n)
}

// exprScratchBytes returns an upper bound on the tile-lifetime pool bytes
// Eval takes for one tile of tileRows rows — every node of the tree holds
// one 8-byte accumulator vector, and CASE additionally evaluates its
// condition. This is what operator DMEMSize declarations charge per
// expression, keeping the declared budgets upper bounds on observed pool
// usage (enforced by the conformance tests).
func exprScratchBytes(e Expr, tileRows int) int {
	switch e := e.(type) {
	case *ColRef, *ConstExpr:
		return 8 * tileRows
	case *BinExpr:
		total := exprScratchBytes(e.L, tileRows) + 8*tileRows
		if _, ok := e.R.(*ConstExpr); !ok {
			total += exprScratchBytes(e.R, tileRows)
		}
		return total
	case *CaseExpr:
		return predScratchBytes(e.Cond, tileRows) +
			exprScratchBytes(e.Then, tileRows) +
			exprScratchBytes(e.Else, tileRows) + 8*tileRows
	default:
		// Unknown expression node: assume two accumulators.
		return 16 * tileRows
	}
}

func charge1(tc *qef.TaskCtx, n int) {
	if c := core(tc); c != nil {
		c.Charge(dpu.Cycles(n))
	}
}

func charge4(tc *qef.TaskCtx, n int) {
	if c := core(tc); c != nil {
		c.Charge(dpu.Cycles(4 * n))
	}
}
