package ops

import (
	"fmt"
	"sort"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// SortMergeJoin implements the sort-merge join of §6.5: "we apply a
// partitioning-based sorting and a merge-join step". Both inputs are
// range-partitioned on the join key with shared bounds (so matching keys
// land in the same partition pair), each dpCore radix-sorts its pair, and a
// merge scan emits the matches. Inner equi-join on a single key pair.
//
// The paper keeps hash join as the primary algorithm (§6, citing the
// sort-vs-hash analysis of Balkesen et al.); this operator exists for the
// comparison and for inputs that arrive pre-sorted downstream.
func SortMergeJoin(ctx *qef.Context, build, probe *Relation, spec JoinSpec) (*Relation, error) {
	if spec.Type != InnerJoin {
		return nil, fmt.Errorf("ops: sort-merge join supports inner joins only")
	}
	if len(spec.BuildKeys) != 1 || len(spec.ProbeKeys) != 1 {
		return nil, fmt.Errorf("ops: sort-merge join takes exactly one key pair")
	}
	spec.normalize(build.Rows())

	bKey := build.Cols[spec.BuildKeys[0]].Data
	pKey := probe.Cols[spec.ProbeKeys[0]].Data

	// Shared range bounds from a sample of both sides.
	ranges := ctx.Workers()
	bounds := sharedBounds(bKey, pKey, ranges)
	bParts := rangeSplit(build.Datas(), bKey, bounds)
	pParts := rangeSplit(probe.Datas(), pKey, bounds)

	sink := newJoinSink(build, probe, spec)
	units := make([]qef.WorkUnit, 0, len(bounds)+1)
	for p := 0; p <= len(bounds); p++ {
		p := p
		units = append(units, func(tc *qef.TaskCtx) error {
			return mergeJoinPair(tc, bParts[p], pParts[p], &spec, sink)
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return nil, err
	}
	return sink.relation(), nil
}

// sharedBounds samples both key columns and returns range splitters.
func sharedBounds(a, b coltypes.Data, ranges int) []int64 {
	if ranges <= 1 {
		return nil
	}
	var sample []int64
	take := func(d coltypes.Data) {
		n := d.Len()
		step := n/256 + 1
		for i := 0; i < n; i += step {
			sample = append(sample, d.Get(i))
		}
	}
	take(a)
	take(b)
	if len(sample) == 0 {
		return nil
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	bounds := make([]int64, ranges-1)
	for i := range bounds {
		bounds[i] = sample[(i+1)*len(sample)/ranges]
	}
	// Deduplicate bounds (heavy duplicates in the sample).
	out := bounds[:0]
	for i, bd := range bounds {
		if i == 0 || bd != out[len(out)-1] {
			out = append(out, bd)
		}
	}
	return out
}

// rangeSplit routes rows to len(bounds)+1 ranges by key.
func rangeSplit(cols []coltypes.Data, key coltypes.Data, bounds []int64) [][]coltypes.Data {
	nr := len(bounds) + 1
	n := key.Len()
	rids := make([][]uint32, nr)
	for i := 0; i < n; i++ {
		v := key.Get(i)
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if v < bounds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		rids[lo] = append(rids[lo], uint32(i))
	}
	out := make([][]coltypes.Data, nr)
	for p := 0; p < nr; p++ {
		out[p] = make([]coltypes.Data, len(cols))
		for c, col := range cols {
			dst := col.NewSame(len(rids[p]))
			coltypes.Gather(dst, col, rids[p])
			out[p][c] = dst
		}
	}
	return out
}

// mergeJoinPair sorts both sides of one range by key and merges.
func mergeJoinPair(tc *qef.TaskCtx, buildCols, probeCols []coltypes.Data, spec *JoinSpec, sink *joinSink) error {
	bKey := buildCols[spec.BuildKeys[0]]
	pKey := probeCols[spec.ProbeKeys[0]]
	nb, np := bKey.Len(), pKey.Len()
	if nb == 0 || np == 0 {
		return nil
	}
	bOrder := sortedOrder(tc, bKey)
	pOrder := sortedOrder(tc, pKey)

	var matches []struct{ b, p uint32 }
	bi, pi := 0, 0
	for bi < nb && pi < np {
		bv := bKey.Get(int(bOrder[bi]))
		pv := pKey.Get(int(pOrder[pi]))
		switch {
		case bv < pv:
			bi++
		case bv > pv:
			pi++
		default:
			// Block of equal keys on both sides: emit the cross product.
			bEnd := bi
			for bEnd < nb && bKey.Get(int(bOrder[bEnd])) == bv {
				bEnd++
			}
			pEnd := pi
			for pEnd < np && pKey.Get(int(pOrder[pEnd])) == pv {
				pEnd++
			}
			for x := bi; x < bEnd; x++ {
				for y := pi; y < pEnd; y++ {
					matches = append(matches, struct{ b, p uint32 }{bOrder[x], pOrder[y]})
				}
			}
			bi, pi = bEnd, pEnd
		}
	}
	if c := core(tc); c != nil {
		// Merge scan: ~2 cycles per visited row plus emission.
		c.Charge(dpu.Cycles(2*(nb+np) + 2*len(matches)))
	}
	if len(matches) == 0 {
		return nil
	}
	ms := make([]primitives.Match, len(matches))
	for i, m := range matches {
		ms[i] = primitives.Match{BuildRow: m.b, ProbeRow: m.p}
	}
	sink.emitMatches(tc, buildCols, probeCols, ms)
	return nil
}

// sortedOrder returns row indices of d in ascending key order using the
// per-core radix sort.
func sortedOrder(tc *qef.TaskCtx, d coltypes.Data) []uint32 {
	n := d.Len()
	order := make([]uint32, n)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		order[i] = uint32(i)
		keys[i] = orderKey(d.Get(i), false)
	}
	radixSortRIDs(tc, order, keys)
	return order
}
