package ops

import (
	"sort"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// FilterOp is the filter operator of §5.4. Predicates are evaluated
// most-selective-first; the first predicate scans the tile densely and
// subsequent predicates see only surviving rows. The result representation
// switches between a RID list and a bit-vector by the 1/32 density rule,
// and materialization of payload columns is deferred to the downstream
// operator (late materialization) — the operator only updates the tile's
// selection state.
type FilterOp struct {
	Preds []Predicate
	Next  qef.Operator

	ordered []Predicate
}

// DMEMSize: one bit-vector per live predicate result plus control state.
func (f *FilterOp) DMEMSize(tileRows int) int {
	return 2*bits.VectorSizeBytes(tileRows) + 64
}

// Open sorts predicates by estimated selectivity (predicate reordering).
func (f *FilterOp) Open(tc *qef.TaskCtx) error {
	f.ordered = append([]Predicate(nil), f.Preds...)
	sort.SliceStable(f.ordered, func(i, j int) bool {
		return f.ordered[i].EstSelectivity() < f.ordered[j].EstSelectivity()
	})
	return f.Next.Open(tc)
}

// Produce evaluates the predicate chain on one tile.
func (f *FilterOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	primitives.ChargeTileOverhead(core(tc))
	cur := t.Sel
	if t.RIDs != nil {
		// Upstream handed a RID list; convert once.
		cur = bits.NewVector(t.N)
		cur.FromRIDs(t.RIDs)
		t.RIDs = nil
	}
	hits := t.N
	for _, p := range f.ordered {
		var bv *bits.Vector
		bv, hits = p.Eval(tc, t, cur)
		cur = bv
		if hits == 0 {
			break
		}
	}
	if cur != nil {
		// Representation choice (§5.4): RID list below 1/32 density.
		if bits.ChooseRIDs(hits, t.N) {
			t.RIDs = cur.ToRIDs(nil)
			t.Sel = nil
		} else {
			t.Sel = cur
			t.RIDs = nil
		}
	}
	if hits == 0 {
		return nil // nothing survives; skip downstream
	}
	return f.Next.Produce(tc, t)
}

// Close flushes downstream.
func (f *FilterOp) Close(tc *qef.TaskCtx) error { return f.Next.Close(tc) }

// MaterializeOp compacts a tile's selection: qualifying rows of every column
// are gathered into dense output vectors. This is the deferred projection
// materialization at the point the compiler chose (§5.4).
type MaterializeOp struct {
	Next qef.Operator
}

func (m *MaterializeOp) DMEMSize(tileRows int) int {
	return tileRows * 8 // one gathered output buffer, reused per column
}

func (m *MaterializeOp) Open(tc *qef.TaskCtx) error { return m.Next.Open(tc) }

func (m *MaterializeOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	if t.Dense() {
		return m.Next.Produce(tc, t)
	}
	rids := t.SelRIDs()
	out := make([]coltypes.Data, len(t.Cols))
	for i, c := range t.Cols {
		dst := c.NewSame(len(rids))
		primitives.GatherRows(core(tc), c, rids, dst)
		out[i] = dst
	}
	nt := qef.NewTile(out, len(rids))
	return m.Next.Produce(tc, nt)
}

func (m *MaterializeOp) Close(tc *qef.TaskCtx) error { return m.Next.Close(tc) }

// ProjectOp evaluates expressions into new output columns. Exprs evaluate
// densely, so the compiler places a MaterializeOp upstream when the
// selection is sparse.
type ProjectOp struct {
	Exprs []Expr
	// Keep lists input columns passed through unchanged; each entry is an
	// input column index. Computed columns follow the kept ones.
	Keep []int
	Next qef.Operator
}

func (p *ProjectOp) DMEMSize(tileRows int) int {
	return len(p.Exprs) * tileRows * 8
}

func (p *ProjectOp) Open(tc *qef.TaskCtx) error { return p.Next.Open(tc) }

func (p *ProjectOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	out := make([]coltypes.Data, 0, len(p.Keep)+len(p.Exprs))
	for _, k := range p.Keep {
		out = append(out, t.Cols[k])
	}
	for _, e := range p.Exprs {
		out = append(out, coltypes.I64(e.Eval(tc, t)))
	}
	nt := qef.NewTile(out, t.N)
	nt.Sel = t.Sel
	nt.RIDs = t.RIDs
	return p.Next.Produce(tc, nt)
}

func (p *ProjectOp) Close(tc *qef.TaskCtx) error { return p.Next.Close(tc) }
