package ops

import (
	"sort"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// FilterOp is the filter operator of §5.4. Predicates are evaluated
// most-selective-first; the first predicate scans the tile densely and
// subsequent predicates see only surviving rows. The result representation
// switches between a RID list and a bit-vector by the 1/32 density rule,
// and materialization of payload columns is deferred to the downstream
// operator (late materialization) — the operator only updates the tile's
// selection state.
type FilterOp struct {
	Preds []Predicate
	Next  qef.Operator

	ordered []Predicate
}

// DMEMSize: the predicate tree's scratch (one bit-vector per node plus
// expression accumulators), the RID-list conversions on entry and exit, and
// control state. Kept an upper bound on observed pool usage — the
// conformance tests compare this against the pool high-water mark.
func (f *FilterOp) DMEMSize(tileRows int) int {
	total := 0
	for _, p := range f.Preds {
		total += predScratchBytes(p, tileRows)
	}
	return total + bits.VectorSizeBytes(tileRows) + 4*tileRows + 64
}

// Open sorts predicates by estimated selectivity (predicate reordering).
func (f *FilterOp) Open(tc *qef.TaskCtx) error {
	f.ordered = append([]Predicate(nil), f.Preds...)
	sort.SliceStable(f.ordered, func(i, j int) bool {
		return f.ordered[i].EstSelectivity() < f.ordered[j].EstSelectivity()
	})
	return f.Next.Open(tc)
}

// Produce evaluates the predicate chain on one tile.
func (f *FilterOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	primitives.ChargeTileOverhead(core(tc))
	cur := t.Sel
	if t.RIDs != nil {
		// Upstream handed a RID list; convert once.
		cur = bvScratch(tc, t.N)
		cur.FromRIDs(t.RIDs)
		t.RIDs = nil
	}
	hits := t.N
	for _, p := range f.ordered {
		var bv *bits.Vector
		bv, hits = p.Eval(tc, t, cur)
		cur = bv
		if hits == 0 {
			break
		}
	}
	if cur != nil {
		// Representation choice (§5.4): RID list below 1/32 density.
		if bits.ChooseRIDs(hits, t.N) {
			t.RIDs = cur.ToRIDs(ridScratch(tc, hits))
			t.Sel = nil
		} else {
			t.Sel = cur
			t.RIDs = nil
		}
	}
	if hits == 0 {
		return nil // nothing survives; skip downstream
	}
	return f.Next.Produce(tc, t)
}

// Close flushes downstream.
func (f *FilterOp) Close(tc *qef.TaskCtx) error { return f.Next.Close(tc) }

// MaterializeOp compacts a tile's selection: qualifying rows of every column
// are gathered into dense output vectors. This is the deferred projection
// materialization at the point the compiler chose (§5.4).
type MaterializeOp struct {
	Next qef.Operator

	// RowBytes is the total byte width of one input row (sum of the widths
	// of the columns entering this operator). It sizes the gathered output
	// buffers in DMEMSize; zero falls back to a single 8-byte column.
	RowBytes int
}

// DMEMSize: the gathered output buffers (RowBytes per row, held
// simultaneously for the output tile) plus the RID list driving the gather.
// The old declaration charged one reused 8-byte buffer, which disagreed
// with Produce holding every gathered column at once.
func (m *MaterializeOp) DMEMSize(tileRows int) int {
	rb := m.RowBytes
	if rb <= 0 {
		rb = 8
	}
	return tileRows*rb + 4*tileRows
}

func (m *MaterializeOp) Open(tc *qef.TaskCtx) error { return m.Next.Open(tc) }

func (m *MaterializeOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	if t.Dense() {
		return m.Next.Produce(tc, t)
	}
	rids := t.AppendSelRIDs(ridScratch(tc, t.QualifyingRows()))
	out := colScratch(tc, len(t.Cols))
	for i, c := range t.Cols {
		dst := dataScratch(tc, c.Width(), len(rids))
		primitives.GatherRows(core(tc), c, rids, dst)
		out[i] = dst
	}
	return m.Next.Produce(tc, tileScratch(tc, out, len(rids)))
}

func (m *MaterializeOp) Close(tc *qef.TaskCtx) error { return m.Next.Close(tc) }

// ProjectOp evaluates expressions into new output columns. Exprs evaluate
// densely, so the compiler places a MaterializeOp upstream when the
// selection is sparse.
type ProjectOp struct {
	Exprs []Expr
	// Keep lists input columns passed through unchanged; each entry is an
	// input column index. Computed columns follow the kept ones.
	Keep []int
	Next qef.Operator
}

// DMEMSize: the full scratch of every expression tree, not just one 8-byte
// output per expression — the old declaration undercounted nested
// arithmetic (and assumed 8-byte outputs for free).
func (p *ProjectOp) DMEMSize(tileRows int) int {
	total := 0
	for _, e := range p.Exprs {
		total += exprScratchBytes(e, tileRows)
	}
	return total
}

func (p *ProjectOp) Open(tc *qef.TaskCtx) error { return p.Next.Open(tc) }

func (p *ProjectOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	out := colScratch(tc, len(p.Keep)+len(p.Exprs))
	for i, k := range p.Keep {
		out[i] = t.Cols[k]
	}
	for i, e := range p.Exprs {
		out[len(p.Keep)+i] = coltypes.I64(e.Eval(tc, t))
	}
	nt := tileScratch(tc, out, t.N)
	nt.Sel = t.Sel
	nt.RIDs = t.RIDs
	return p.Next.Produce(tc, nt)
}

func (p *ProjectOp) Close(tc *qef.TaskCtx) error { return p.Next.Close(tc) }
