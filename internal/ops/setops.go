package ops

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/qef"
)

// Set operations (§5.4): MINUS, INTERSECT and UNION over relations of equal
// arity, with SQL set semantics (duplicates eliminated). Rows are compared
// on all columns via a hash set; the work is hash-partitioned across cores
// so each core owns a disjoint key space.

// SetOpKind selects the operation.
type SetOpKind int

const (
	SetUnion SetOpKind = iota
	SetUnionAll
	SetIntersect
	SetMinus
)

func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "UNION"
	case SetUnionAll:
		return "UNION ALL"
	case SetIntersect:
		return "INTERSECT"
	case SetMinus:
		return "MINUS"
	}
	return fmt.Sprintf("SetOpKind(%d)", int(k))
}

// SetOp computes `a kind b`. Column metadata comes from a.
func SetOp(ctx *qef.Context, a, b *Relation, kind SetOpKind) (*Relation, error) {
	if a.NumCols() != b.NumCols() {
		return nil, fmt.Errorf("ops: set operation arity mismatch: %d vs %d", a.NumCols(), b.NumCols())
	}
	if kind == SetUnionAll {
		return concatRelations(a, b)
	}
	allA, err := PartitionByHash(ctx, a.Datas(), allCols(a), PartScheme{Rounds: []int{16}}, qef.DefaultTileRows)
	if err != nil {
		return nil, err
	}
	allB, err := PartitionByHash(ctx, b.Datas(), allCols(b), PartScheme{Rounds: []int{16}}, qef.DefaultTileRows)
	if err != nil {
		return nil, err
	}
	nc := a.NumCols()
	results := make([][][]int64, allA.NumPartitions())
	units := make([]qef.WorkUnit, 0, allA.NumPartitions())
	for p := 0; p < allA.NumPartitions(); p++ {
		p := p
		units = append(units, func(tc *qef.TaskCtx) error {
			seenB := rowSet(allB.Cols[p], nc)
			out := make([][]int64, nc)
			emitted := map[string]struct{}{}
			key := make([]byte, 0, nc*8)
			na := 0
			if nc > 0 {
				na = allA.Cols[p][0].Len()
			}
			for i := 0; i < na; i++ {
				key = key[:0]
				for c := 0; c < nc; c++ {
					v := allA.Cols[p][c].Get(i)
					for b := 0; b < 8; b++ {
						key = append(key, byte(v>>(8*b)))
					}
				}
				ks := string(key)
				if _, dup := emitted[ks]; dup {
					continue
				}
				_, inB := seenB[ks]
				keep := false
				switch kind {
				case SetUnion:
					keep = true
				case SetIntersect:
					keep = inB
				case SetMinus:
					keep = !inB
				}
				if !keep {
					continue
				}
				emitted[ks] = struct{}{}
				for c := 0; c < nc; c++ {
					out[c] = append(out[c], allA.Cols[p][c].Get(i))
				}
			}
			if kind == SetUnion {
				// Rows only in B.
				nb := 0
				if nc > 0 {
					nb = allB.Cols[p][0].Len()
				}
				for i := 0; i < nb; i++ {
					key = key[:0]
					for c := 0; c < nc; c++ {
						v := allB.Cols[p][c].Get(i)
						for b := 0; b < 8; b++ {
							key = append(key, byte(v>>(8*b)))
						}
					}
					ks := string(key)
					if _, dup := emitted[ks]; dup {
						continue
					}
					emitted[ks] = struct{}{}
					for c := 0; c < nc; c++ {
						out[c] = append(out[c], allB.Cols[p][c].Get(i))
					}
				}
			}
			if c := core(tc); c != nil {
				c.Charge(dpu.Cycles(10 * (na + 1)))
			}
			results[p] = out
			return nil
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return nil, err
	}
	cols := make([]Col, nc)
	for c := 0; c < nc; c++ {
		var vals []int64
		for p := range results {
			if results[p] != nil {
				vals = append(vals, results[p][c]...)
			}
		}
		cols[c] = a.Cols[c]
		cols[c].Data = coltypes.I64(vals)
	}
	return MustRelation(cols), nil
}

func allCols(r *Relation) []int {
	out := make([]int, r.NumCols())
	for i := range out {
		out[i] = i
	}
	return out
}

func rowSet(cols []coltypes.Data, nc int) map[string]struct{} {
	set := map[string]struct{}{}
	if nc == 0 || len(cols) == 0 {
		return set
	}
	n := cols[0].Len()
	key := make([]byte, 0, nc*8)
	for i := 0; i < n; i++ {
		key = key[:0]
		for c := 0; c < nc; c++ {
			v := cols[c].Get(i)
			for b := 0; b < 8; b++ {
				key = append(key, byte(v>>(8*b)))
			}
		}
		set[string(key)] = struct{}{}
	}
	return set
}

func concatRelations(a, b *Relation) (*Relation, error) {
	cols := make([]Col, a.NumCols())
	for c := range cols {
		cols[c] = a.Cols[c]
		ad, bd := a.Cols[c].Data, b.Cols[c].Data
		if ad.Width() != bd.Width() {
			wide := coltypes.New(coltypes.W8, ad.Len()+bd.Len())
			for i := 0; i < ad.Len(); i++ {
				wide.Set(i, ad.Get(i))
			}
			for i := 0; i < bd.Len(); i++ {
				wide.Set(ad.Len()+i, bd.Get(i))
			}
			cols[c].Data = wide
			continue
		}
		dst := ad.NewSame(ad.Len() + bd.Len())
		dst.CopyFrom(0, ad)
		dst.CopyFrom(ad.Len(), bd)
		cols[c].Data = dst
	}
	return NewRelation(cols)
}
