package ops

import (
	"rapid/internal/primitives"
	"rapid/internal/storage"
)

// ZoneReject reports whether predicate p provably matches no row of a tile
// whose per-column zones are served by zone (ok=false means "no usable zone
// for that column" and the affected leaf cannot reject). The analysis is
// conservative in exactly one direction: a true return is a proof of
// emptiness over the encoded domain — predicates evaluate over the same
// encoded values the zones summarize — while false only means "cannot rule
// the tile out". Columns are addressed in the scanned tile layout, the same
// indices the predicate's Eval uses.
func ZoneReject(p Predicate, zone func(col int) (storage.Zone, bool)) bool {
	switch p := p.(type) {
	case *ConstCmp:
		z, ok := zone(p.Col)
		if !ok {
			return false
		}
		return cmpRangeEmpty(z.Min, z.Max, p.Op, p.Val)
	case *Between:
		z, ok := zone(p.Col)
		if !ok {
			return false
		}
		return z.Max < p.Lo || z.Min > p.Hi
	case *InSet:
		z, ok := zone(p.Col)
		if !ok || p.Set == nil {
			return false
		}
		// Dictionary codes are dense non-negative ints; the tile can match
		// only if some member code falls inside [Min, Max].
		lo := z.Min
		if lo < 0 {
			lo = 0
		}
		if lo >= int64(p.Set.Len()) {
			return true
		}
		next := p.Set.NextSet(int(lo))
		return next < 0 || int64(next) > z.Max
	case *ColCmp:
		za, oka := zone(p.A)
		zb, okb := zone(p.B)
		if !oka || !okb {
			return false
		}
		switch p.Op {
		case primitives.LT:
			return za.Min >= zb.Max
		case primitives.LE:
			return za.Min > zb.Max
		case primitives.GT:
			return za.Max <= zb.Min
		case primitives.GE:
			return za.Max < zb.Min
		case primitives.EQ:
			return za.Max < zb.Min || za.Min > zb.Max
		case primitives.NE:
			return za.Min == za.Max && zb.Min == zb.Max && za.Min == zb.Min
		}
		return false
	case *And:
		for _, sub := range p.Preds {
			if ZoneReject(sub, zone) {
				return true
			}
		}
		return false
	case *Or:
		if len(p.Preds) == 0 {
			return false
		}
		for _, sub := range p.Preds {
			if !ZoneReject(sub, zone) {
				return false
			}
		}
		return true
	case *Not:
		// NOT over an always-true branch matches nothing (the empty-IN-list
		// rewrite); anything finer would need an "accepts every row" proof.
		switch p.P.(type) {
		case TruePred, *TruePred:
			return true
		}
		return false
	default:
		// TruePred, ExprCmp and unknown nodes: no zone information applies.
		return false
	}
}

// cmpRangeEmpty reports whether {v in [min, max] : v op val} is empty.
func cmpRangeEmpty(min, max int64, op primitives.CmpOp, val int64) bool {
	switch op {
	case primitives.EQ:
		return val < min || val > max
	case primitives.NE:
		return min == max && min == val
	case primitives.LT:
		return min >= val
	case primitives.LE:
		return min > val
	case primitives.GT:
		return max <= val
	case primitives.GE:
		return max < val
	}
	return false
}
