package ops

import (
	"testing"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/primitives"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// zonesOf serves fixed zones per column; a missing entry means "no zone".
func zonesOf(m map[int]storage.Zone) func(int) (storage.Zone, bool) {
	return func(c int) (storage.Zone, bool) {
		z, ok := m[c]
		return z, ok
	}
}

func TestZoneRejectConstCmp(t *testing.T) {
	z := zonesOf(map[int]storage.Zone{0: {Min: 10, Max: 20, Rows: 4}})
	cases := []struct {
		op   primitives.CmpOp
		val  int64
		want bool
	}{
		{primitives.EQ, 15, false}, {primitives.EQ, 9, true}, {primitives.EQ, 21, true},
		{primitives.EQ, 10, false}, {primitives.EQ, 20, false},
		{primitives.LT, 10, true}, {primitives.LT, 11, false},
		{primitives.LE, 9, true}, {primitives.LE, 10, false},
		{primitives.GT, 20, true}, {primitives.GT, 19, false},
		{primitives.GE, 21, true}, {primitives.GE, 20, false},
		{primitives.NE, 15, false},
	}
	for _, c := range cases {
		got := ZoneReject(&ConstCmp{Col: 0, Op: c.op, Val: c.val}, z)
		if got != c.want {
			t.Errorf("op=%v val=%d: reject=%v, want %v", c.op, c.val, got, c.want)
		}
	}
	// Single-point zone: NE can reject.
	pt := zonesOf(map[int]storage.Zone{0: {Min: 7, Max: 7, Rows: 1}})
	if !ZoneReject(&ConstCmp{Col: 0, Op: primitives.NE, Val: 7}, pt) {
		t.Error("NE over single-point zone must reject")
	}
	// Missing zone never rejects.
	if ZoneReject(&ConstCmp{Col: 1, Op: primitives.EQ, Val: 0}, z) {
		t.Error("missing zone must not reject")
	}
}

func TestZoneRejectBetweenAndInSet(t *testing.T) {
	z := zonesOf(map[int]storage.Zone{0: {Min: 10, Max: 20, Rows: 4}})
	if !ZoneReject(&Between{Col: 0, Lo: 21, Hi: 30}, z) ||
		!ZoneReject(&Between{Col: 0, Lo: 0, Hi: 9}, z) {
		t.Error("disjoint BETWEEN must reject")
	}
	if ZoneReject(&Between{Col: 0, Lo: 20, Hi: 25}, z) ||
		ZoneReject(&Between{Col: 0, Lo: 5, Hi: 10}, z) {
		t.Error("touching BETWEEN must not reject")
	}

	set := bits.NewVector(32)
	set.Set(5)
	set.Set(25)
	if !ZoneReject(&InSet{Col: 0, Set: set}, zonesOf(map[int]storage.Zone{0: {Min: 10, Max: 20}})) {
		t.Error("IN-set with no member inside the zone must reject")
	}
	if ZoneReject(&InSet{Col: 0, Set: set}, zonesOf(map[int]storage.Zone{0: {Min: 20, Max: 30}})) {
		t.Error("IN-set with member 25 inside must not reject")
	}
	if ZoneReject(&InSet{Col: 0, Set: nil}, z) {
		t.Error("nil set must not reject")
	}
	// Zone entirely past the set's universe.
	if !ZoneReject(&InSet{Col: 0, Set: set}, zonesOf(map[int]storage.Zone{0: {Min: 40, Max: 50}})) {
		t.Error("zone past set length must reject")
	}
}

func TestZoneRejectColCmpAndBoolean(t *testing.T) {
	z := zonesOf(map[int]storage.Zone{
		0: {Min: 0, Max: 10},
		1: {Min: 10, Max: 20},
		2: {Min: 30, Max: 40},
	})
	if !ZoneReject(&ColCmp{A: 1, B: 0, Op: primitives.LT}, z) { // min(a)=10 >= max(b)=10
		t.Error("a<b with min(a)>=max(b) must reject")
	}
	if ZoneReject(&ColCmp{A: 0, B: 1, Op: primitives.LE}, z) {
		t.Error("overlapping a<=b must not reject")
	}
	if !ZoneReject(&ColCmp{A: 0, B: 2, Op: primitives.EQ}, z) {
		t.Error("disjoint a=b must reject")
	}

	rejecting := &ConstCmp{Col: 0, Op: primitives.GT, Val: 99}
	passing := &ConstCmp{Col: 0, Op: primitives.GE, Val: 0}
	if !ZoneReject(&And{Preds: []Predicate{passing, rejecting}}, z) {
		t.Error("AND rejects when any conjunct rejects")
	}
	if ZoneReject(&Or{Preds: []Predicate{passing, rejecting}}, z) {
		t.Error("OR must not reject while any branch can match")
	}
	if !ZoneReject(&Or{Preds: []Predicate{rejecting, rejecting}}, z) {
		t.Error("OR rejects when every branch rejects")
	}
	if !ZoneReject(&Not{P: TruePred{}}, z) {
		t.Error("NOT TRUE (empty IN list) must reject")
	}
	if ZoneReject(&Not{P: rejecting}, z) {
		t.Error("NOT over a rejecting branch must not reject")
	}
	if ZoneReject(TruePred{}, z) {
		t.Error("TRUE must not reject")
	}
}

// TestPrunedTilesAreUnbilled proves a zone-skipped tile is free: the same
// scan with a prune predicate must bill strictly fewer DPU cycles and DMS
// bytes than without, return the identical rows, and keep the
// pruned+scanned == total accounting. Skipping happens before work-unit
// creation, so a pruned tile never touches DMEM admission either.
func TestPrunedTilesAreUnbilled(t *testing.T) {
	tbl := buildTestTable(t, 5000) // k = 0..4999, clustered; ChunkRows 512
	pred := &ConstCmp{Col: 0, Op: primitives.GE, Val: 4500, Sel: 0.1}

	run := func(prune Predicate, noPrune bool) (*Relation, int64, int64, *qef.Context) {
		ctx := qef.NewContext(qef.ModeDPU)
		ctx.NoPrune = noPrune
		sink := NewCollectSink([]Col{{Name: "k", Type: coltypes.Int()}})
		chain := func() qef.Operator {
			return &FilterOp{Preds: []Predicate{pred}, Next: sink}
		}
		if err := TableScan(ctx, tbl.Snapshot(storage.LatestSCN), []int{0}, 512, prune, chain); err != nil {
			t.Fatal(err)
		}
		rd, wr := ctx.DMS.TotalsByDir()
		return sink.Relation(), int64(ctx.SoC.TotalCycles()), rd.Bytes + wr.Bytes, ctx
	}

	full, fullCycles, fullBytes, _ := run(nil, false)
	pruned, prunedCycles, prunedBytes, pctx := run(pred, false)

	if full.Rows() != 500 || pruned.Rows() != full.Rows() {
		t.Fatalf("rows: full=%d pruned=%d, want 500", full.Rows(), pruned.Rows())
	}
	if got := pctx.TilesPruned(); got != 8 { // chunks 0..7 of 10 hold k < 4096
		t.Fatalf("tiles pruned = %d, want 8", got)
	}
	if prunedCycles >= fullCycles {
		t.Fatalf("pruned scan billed %d cycles, full scan %d — skipped tiles are not free", prunedCycles, fullCycles)
	}
	if prunedBytes >= fullBytes {
		t.Fatalf("pruned scan billed %d DMS bytes, full scan %d — skipped tiles are not free", prunedBytes, fullBytes)
	}

	// NoPrune must force the full-billing path even with a prune predicate.
	_, offCycles, offBytes, offCtx := run(pred, true)
	if offCtx.TilesPruned() != 0 {
		t.Fatal("NoPrune still pruned tiles")
	}
	if offCycles != fullCycles || offBytes != fullBytes {
		t.Fatalf("NoPrune billing differs from unpruned scan: cycles %d vs %d, bytes %d vs %d",
			offCycles, fullCycles, offBytes, fullBytes)
	}
}
