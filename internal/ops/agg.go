package ops

import (
	"fmt"
	"sync"

	"rapid/internal/dpu"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// AggKind selects an aggregate function.
type AggKind int

const (
	AggSum AggKind = iota
	AggMin
	AggMax
	AggCount // COUNT(expr) over qualifying rows
	AggCountStar
)

func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggCount:
		return "COUNT"
	case AggCountStar:
		return "COUNT(*)"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggSpec is one aggregate output: a function over an input expression
// (nil for COUNT(*)).
type AggSpec struct {
	Kind AggKind
	Expr Expr
	Name string
}

// ScalarAggOp computes ungrouped aggregates: each core accumulates locally
// and merges into the shared result at Close (the merge-operator pattern).
type ScalarAggOp struct {
	Specs  []AggSpec
	Result *ScalarAggResult

	local []primitives.AggState
}

// ScalarAggResult is the shared, merged aggregate state.
type ScalarAggResult struct {
	mu     sync.Mutex
	states []primitives.AggState
	inited bool
}

// NewScalarAggResult allocates the shared result for n specs.
func NewScalarAggResult(n int) *ScalarAggResult {
	r := &ScalarAggResult{states: make([]primitives.AggState, n)}
	for i := range r.states {
		r.states[i] = primitives.NewAggState()
	}
	r.inited = true
	return r
}

// State returns the merged state of spec i.
func (r *ScalarAggResult) State(i int) primitives.AggState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.states[i]
}

// Value returns the final value of spec i under the given kind.
func (r *ScalarAggResult) Value(i int, kind AggKind) int64 {
	st := r.State(i)
	switch kind {
	case AggSum:
		return st.Sum
	case AggMin:
		return st.Min
	case AggMax:
		return st.Max
	default:
		return st.Count
	}
}

// DMEMSize: per-spec accumulator state, each computed expression's scratch,
// and the RID-gather staging vector. The old flat tileRows*8 undercounted
// multi-expression aggregate lists.
func (a *ScalarAggOp) DMEMSize(tileRows int) int {
	total := len(a.Specs) * 32
	for _, spec := range a.Specs {
		if spec.Kind == AggCountStar || spec.Expr == nil {
			continue
		}
		total += exprScratchBytes(spec.Expr, tileRows) + 8*tileRows
	}
	return total
}

func (a *ScalarAggOp) Open(tc *qef.TaskCtx) error {
	a.local = make([]primitives.AggState, len(a.Specs))
	for i := range a.local {
		a.local[i] = primitives.NewAggState()
	}
	return nil
}

func (a *ScalarAggOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	primitives.ChargeTileOverhead(core(tc))
	for i, spec := range a.Specs {
		if spec.Kind == AggCountStar {
			a.local[i].Count += int64(t.QualifyingRows())
			continue
		}
		vals := spec.Expr.Eval(tc, t)
		if t.RIDs != nil {
			// RID selection: gather the qualifying subset, then fold it.
			sub := scratch(tc, len(t.RIDs))
			for j, r := range t.RIDs {
				sub[j] = vals[r]
			}
			if c := core(tc); c != nil {
				c.Charge(dpu.Cycles(len(t.RIDs)))
			}
			primitives.Aggregate(core(tc), sub, nil, &a.local[i])
			continue
		}
		primitives.Aggregate(core(tc), vals, t.Sel, &a.local[i])
	}
	return nil
}

func (a *ScalarAggOp) Close(tc *qef.TaskCtx) error {
	a.Result.mu.Lock()
	defer a.Result.mu.Unlock()
	for i := range a.Specs {
		a.Result.states[i].Merge(a.local[i])
	}
	return nil
}
