package ops

import (
	"sort"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/qef"
)

// Sorting (§5.4): "we provide sorting with a partitioning based algorithm;
// each dpCore utilizes a radix-sorting algorithm." SortRelation range-
// partitions the rows on the leading key so every dpCore sorts an
// independent range with LSD radix sort, and the ranges concatenate into
// the total order.

// SortKey is one ORDER BY term.
type SortKey struct {
	Col  int
	Desc bool
}

// orderKey transforms a signed value into a uint64 whose unsigned order
// matches the requested order (bias the sign bit; complement for DESC).
func orderKey(v int64, desc bool) uint64 {
	u := uint64(v) ^ (1 << 63)
	if desc {
		u = ^u
	}
	return u
}

// SortRelation returns rel's rows reordered by the sort keys.
func SortRelation(ctx *qef.Context, rel *Relation, keys []SortKey) (*Relation, error) {
	n := rel.Rows()
	if n == 0 || len(keys) == 0 {
		return rel, nil
	}
	// Transformed key vectors.
	tkeys := make([][]uint64, len(keys))
	for k, sk := range keys {
		col := rel.Cols[sk.Col].Data
		tk := make([]uint64, n)
		for i := 0; i < n; i++ {
			tk[i] = orderKey(col.Get(i), sk.Desc)
		}
		tkeys[k] = tk
	}

	// Range partitioning on the leading key: sample, pick bounds, route.
	ranges := ctx.Workers()
	if ranges > n {
		ranges = 1
	}
	bounds := sampleBounds(tkeys[0], ranges)
	rangeOf := func(v uint64) int {
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if v < bounds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	rids := make([][]uint32, ranges)
	for i := 0; i < n; i++ {
		r := rangeOf(tkeys[0][i])
		rids[r] = append(rids[r], uint32(i))
	}

	// Per-range multi-key radix sort, in parallel.
	units := make([]qef.WorkUnit, 0, ranges)
	for r := 0; r < ranges; r++ {
		r := r
		units = append(units, func(tc *qef.TaskCtx) error {
			// Stable LSD over the keys, least-significant key first.
			for k := len(tkeys) - 1; k >= 0; k-- {
				radixSortRIDs(tc, rids[r], tkeys[k])
			}
			return nil
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return nil, err
	}

	// Concatenate ranges and gather the output.
	order := make([]uint32, 0, n)
	for r := 0; r < ranges; r++ {
		order = append(order, rids[r]...)
	}
	out := make([]Col, len(rel.Cols))
	for c, rc := range rel.Cols {
		dst := rc.Data.NewSame(n)
		coltypes.Gather(dst, rc.Data, order)
		out[c] = rc
		out[c].Data = dst
	}
	return MustRelation(out), nil
}

// sampleBounds picks ranges-1 splitters from a sample of the keys.
func sampleBounds(keys []uint64, ranges int) []uint64 {
	if ranges <= 1 {
		return nil
	}
	const perRange = 32
	sampleN := ranges * perRange
	sample := make([]uint64, 0, sampleN)
	step := len(keys) / sampleN
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(keys); i += step {
		sample = append(sample, keys[i])
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	bounds := make([]uint64, ranges-1)
	for b := range bounds {
		bounds[b] = sample[(b+1)*len(sample)/ranges]
	}
	return bounds
}

// radixSortRIDs stably sorts the rid slice by key[rid] using byte-wise LSD
// counting sort, skipping constant bytes.
func radixSortRIDs(tc *qef.TaskCtx, rids []uint32, key []uint64) {
	n := len(rids)
	if n <= 1 {
		return
	}
	tmp := make([]uint32, n)
	var counts [256]int
	passes := 0
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		first := byte(key[rids[0]] >> shift)
		constant := true
		for _, r := range rids {
			b := byte(key[r] >> shift)
			counts[b]++
			if b != first {
				constant = false
			}
		}
		if constant {
			continue
		}
		passes++
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, r := range rids {
			b := byte(key[r] >> shift)
			tmp[counts[b]] = r
			counts[b]++
		}
		copy(rids, tmp)
	}
	if c := core(tc); c != nil {
		// ~3 cycles/row per pass (read, bucket update, store).
		c.Charge(dpu.Cycles(3 * n * (passes + 1)))
	}
}
