package ops

import (
	"sort"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/qef"
)

// TopK is RAPID's vectorized top-k operator (§5.4): each dpCore keeps a
// bounded candidate set for its row span, pruning tiles against the current
// k-th threshold, and a final merge sorts the few surviving candidates.
func TopK(ctx *qef.Context, rel *Relation, keys []SortKey, k int) (*Relation, error) {
	n := rel.Rows()
	if k <= 0 {
		out := make([]Col, len(rel.Cols))
		for c, rc := range rel.Cols {
			out[c] = rc
			out[c].Data = rc.Data.Slice(0, 0)
		}
		return MustRelation(out), nil
	}
	if n <= k {
		return SortRelation(ctx, rel, keys)
	}
	tkeys := make([][]uint64, len(keys))
	for i, sk := range keys {
		col := rel.Cols[sk.Col].Data
		tk := make([]uint64, n)
		for r := 0; r < n; r++ {
			tk[r] = orderKey(col.Get(r), sk.Desc)
		}
		tkeys[i] = tk
	}
	less := func(a, b uint32) bool {
		for _, tk := range tkeys {
			if tk[a] != tk[b] {
				return tk[a] < tk[b]
			}
		}
		return a < b // deterministic tiebreak
	}

	workers := ctx.Workers()
	span := (n + workers - 1) / workers
	locals := make([][]uint32, workers)
	units := make([]qef.WorkUnit, 0, workers)
	for w := 0; w < workers; w++ {
		lo := w * span
		hi := lo + span
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		w, lo, hi := w, lo, hi
		units = append(units, func(tc *qef.TaskCtx) error {
			// Bounded candidate set: append, and compact back to k by
			// partial sort whenever it doubles. Amortized ~O(n).
			cand := make([]uint32, 0, 2*k)
			var threshold uint32
			haveThreshold := false
			for i := lo; i < hi; i++ {
				r := uint32(i)
				if haveThreshold && !less(r, threshold) {
					continue
				}
				cand = append(cand, r)
				if len(cand) >= 2*k {
					sort.Slice(cand, func(a, b int) bool { return less(cand[a], cand[b]) })
					cand = cand[:k]
					threshold = cand[k-1]
					haveThreshold = true
				}
			}
			sort.Slice(cand, func(a, b int) bool { return less(cand[a], cand[b]) })
			if len(cand) > k {
				cand = cand[:k]
			}
			locals[w] = cand
			if c := core(tc); c != nil {
				c.Charge(dpu.Cycles(2 * (hi - lo)))
			}
			return nil
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return nil, err
	}
	// Merge the (<= workers*k) candidates.
	var all []uint32
	for _, l := range locals {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return less(all[a], all[b]) })
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Col, len(rel.Cols))
	for c, rc := range rel.Cols {
		dst := rc.Data.NewSame(len(all))
		coltypes.Gather(dst, rc.Data, all)
		out[c] = rc
		out[c].Data = dst
	}
	return MustRelation(out), nil
}

// Limit returns the first k rows (no ordering).
func Limit(rel *Relation, k int) *Relation {
	n := rel.Rows()
	if k >= n {
		return rel
	}
	out := make([]Col, len(rel.Cols))
	for c, rc := range rel.Cols {
		out[c] = rc
		out[c].Data = rc.Data.Slice(0, k)
	}
	return MustRelation(out)
}
