package ops

import (
	"sync"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// GroupByPartitioned is the high-NDV group-by strategy of §5.4: a
// partitioning phase distributes distinct groups over dpCores so each
// partition's hash table fits in DMEM, then every core aggregates its
// partitions independently — no merge needed because partitions hold
// disjoint groups. If a partition holds more groups than estimated, it is
// re-partitioned at runtime.
func GroupByPartitioned(ctx *qef.Context, rel *Relation, groupCols []int, specs []AggSpec, scheme PartScheme, maxGroupsPerPart int) (*Relation, error) {
	parts, err := PartitionByHash(ctx, rel.Datas(), groupCols, scheme, qef.DefaultTileRows)
	if err != nil {
		return nil, err
	}
	if maxGroupsPerPart <= 0 {
		maxGroupsPerPart = 4096
	}
	out := &groupCollector{
		nKeys: len(groupCols),
		specs: specs,
	}
	units := make([]qef.WorkUnit, 0, parts.NumPartitions())
	for p := 0; p < parts.NumPartitions(); p++ {
		p := p
		units = append(units, func(tc *qef.TaskCtx) error {
			return groupOnePartition(tc, parts.Cols[p], parts.Hashes[p], parts.Bits, groupCols, specs, maxGroupsPerPart, out)
		})
	}
	if err := ctx.RunParallel(units); err != nil {
		return nil, err
	}
	keyCols := make([]Col, len(groupCols))
	outNames := make([]string, len(specs))
	for i, g := range groupCols {
		keyCols[i] = rel.Cols[g]
	}
	for i, s := range specs {
		outNames[i] = s.Name
	}
	return out.relation(keyCols, outNames), nil
}

// groupOnePartition aggregates one partition, re-partitioning on overflow
// (the runtime adaptation when statistics underestimated the NDV).
func groupOnePartition(tc *qef.TaskCtx, cols []coltypes.Data, hv []uint32, usedBits uint, groupCols []int, specs []AggSpec, maxGroups int, out *groupCollector) error {
	n := len(hv)
	if n == 0 {
		return nil
	}
	tc.DMEM.Mark()
	defer tc.DMEM.Release()
	cap := maxGroups
	if n < cap {
		cap = n
	}
	if err := tc.DMEM.Alloc(GroupTableSizeBytes(cap, len(groupCols))); err != nil {
		// The table itself cannot fit: re-partition immediately.
		tc.DMEM.Release()
		tc.DMEM.Mark()
		return regroupSplit(tc, cols, hv, usedBits, groupCols, specs, maxGroups, out)
	}
	table := NewGroupTable(cap, len(groupCols))
	aggs := make([]*primitives.GroupedAgg, len(specs))
	for i := range aggs {
		aggs[i] = primitives.NewGroupedAgg(cap)
	}
	keyData := make([]coltypes.Data, len(groupCols))
	for i, g := range groupCols {
		keyData[i] = cols[g]
	}
	keyBuf := make([]int64, len(groupCols))
	gids := make([]uint32, n)
	for i := 0; i < n; i++ {
		for k, d := range keyData {
			keyBuf[k] = d.Get(i)
		}
		gid := table.FindOrAdd(hv[i], keyBuf)
		if gid < 0 {
			// NDV above estimate: split this partition further and retry
			// each half with a fresh table.
			return regroupSplit(tc, cols, hv, usedBits, groupCols, specs, maxGroups, out)
		}
		gids[i] = uint32(gid)
	}
	if c := core(tc); c != nil {
		c.Charge(dpu.Cycles(3 * n))
	}
	for s, spec := range specs {
		if spec.Kind == AggCountStar {
			aggs[s].AccumulateCounts(core(tc), gids)
			continue
		}
		tile := qef.NewTile(cols, n)
		vals := spec.Expr.Eval(tc, tile)
		aggs[s].Accumulate(core(tc), gids, vals)
	}
	out.add(table, aggs, specs)
	return nil
}

func regroupSplit(tc *qef.TaskCtx, cols []coltypes.Data, hv []uint32, usedBits uint, groupCols []int, specs []AggSpec, maxGroups int, out *groupCollector) error {
	const sub = 4
	split := splitPartition(cols, hv, sub, usedBits)
	for p := 0; p < sub; p++ {
		if split.Rows(p) == len(hv) {
			// All rows share the same hash bits (e.g. a single huge group
			// cluster): splitting cannot help; grow the table instead.
			return groupOnePartition(tc, split.Cols[p], split.Hashes[p], split.Bits, groupCols, specs, maxGroups*4, out)
		}
		if err := groupOnePartition(tc, split.Cols[p], split.Hashes[p], split.Bits, groupCols, specs, maxGroups, out); err != nil {
			return err
		}
	}
	return nil
}

// groupCollector accumulates finished partitions' groups. Groups are
// disjoint across partitions, so this is a plain append.
type groupCollector struct {
	nKeys int
	specs []AggSpec

	mu    sync.Mutex
	kcols [][]int64
	accs  [][]primitives.AggState
}

func (g *groupCollector) add(table *GroupTable, aggs []*primitives.GroupedAgg, specs []AggSpec) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.kcols == nil {
		g.kcols = make([][]int64, g.nKeys)
		g.accs = make([][]primitives.AggState, len(specs))
	}
	for gid := 0; gid < table.NumGroups(); gid++ {
		for k := 0; k < g.nKeys; k++ {
			g.kcols[k] = append(g.kcols[k], table.Key(k, gid))
		}
		for s := range specs {
			g.accs[s] = append(g.accs[s], primitives.AggState{
				Sum:   aggs[s].Sums[gid],
				Min:   aggs[s].Mins[gid],
				Max:   aggs[s].Maxs[gid],
				Count: aggs[s].Counts[gid],
			})
		}
	}
}

func (g *groupCollector) relation(keyCols []Col, outNames []string) *Relation {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int
	if len(g.kcols) > 0 {
		n = len(g.kcols[0])
	} else if len(g.accs) > 0 {
		n = len(g.accs[0])
	}
	cols := make([]Col, 0, g.nKeys+len(g.specs))
	for k := 0; k < g.nKeys; k++ {
		c := keyCols[k]
		// g.kcols stays nil when the input had no rows (no partition ever
		// produced a group); emit empty key columns, not a panic.
		var kv []int64
		if k < len(g.kcols) {
			kv = g.kcols[k]
		}
		c.Data = coltypes.I64(append([]int64(nil), kv...))
		cols = append(cols, c)
	}
	for s, spec := range g.specs {
		vals := make([]int64, n)
		for row := 0; row < n; row++ {
			st := g.accs[s][row]
			switch spec.Kind {
			case AggSum:
				vals[row] = st.Sum
			case AggMin:
				vals[row] = st.Min
			case AggMax:
				vals[row] = st.Max
			default:
				vals[row] = st.Count
			}
		}
		name := spec.Name
		if name == "" && s < len(outNames) {
			name = outNames[s]
		}
		cols = append(cols, Col{Name: name, Type: coltypes.Int(), Data: coltypes.I64(vals)})
	}
	return MustRelation(cols)
}
