package ops

import (
	"testing"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// --- DMEMSize conformance -------------------------------------------------
//
// Every operator declares its per-tile DMEM need via DMEMSize, and the task
// former sizes tiles from those declarations. Since the per-core pool now
// serves all tile-lifetime scratch, the declaration must be an upper bound
// on observed pool usage — a mismatch here is exactly the accounting bug
// class this test pins down.

const confTileRows = 256

// confTile builds a 3-column tile (W4, W8, W4) from plain allocations so
// the tile itself never touches the pool.
func confTile(n int) *qef.Tile {
	widths := []coltypes.Width{coltypes.W4, coltypes.W8, coltypes.W4}
	cols := make([]coltypes.Data, len(widths))
	for c, w := range widths {
		d := coltypes.New(w, n)
		for i := 0; i < n; i++ {
			d.Set(i, int64((i*7+c)%100))
		}
		cols[c] = d
	}
	return qef.NewTile(cols, n)
}

func withSel(t *qef.Tile) *qef.Tile {
	sel := bits.NewVector(t.N)
	for i := 0; i < t.N; i += 2 {
		sel.Set(i)
	}
	t.Sel = sel
	return t
}

func withRIDs(t *qef.Tile) *qef.Tile {
	for i := 0; i < t.N; i += 40 {
		t.RIDs = append(t.RIDs, uint32(i))
	}
	return t
}

// observedPoolBytes runs op.Open + one Produce on a pooled task context and
// returns the pool high-water mark attributable to the Produce call.
func observedPoolBytes(t *testing.T, mode qef.Mode, op qef.Operator, tile *qef.Tile) int {
	t.Helper()
	ctx := qef.NewContext(mode)
	used := -1
	err := ctx.RunSerial(func(tc *qef.TaskCtx) error {
		if err := op.Open(tc); err != nil {
			return err
		}
		tc.ResetScratch()
		p := tc.Pool()
		base := p.DataBytesInUse()
		p.MarkHighWater()
		if err := op.Produce(tc, tile); err != nil {
			return err
		}
		used = p.HighWater() - base
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	return used
}

func TestDMEMSizeIsUpperBoundOnPoolUse(t *testing.T) {
	richPred := &And{Preds: []Predicate{
		&ConstCmp{Col: 0, Op: primitives.LT, Val: 90, Sel: 0.9},
		&Or{Preds: []Predicate{
			&Between{Col: 1, Lo: 5, Hi: 95, Sel: 0.9},
			&Not{P: &ColCmp{A: 0, B: 2, Op: primitives.EQ, Sel: 0.1}},
		}},
		&ExprCmp{
			E:   &BinExpr{Op: OpMul, L: &ColRef{Idx: 1}, R: &ConstExpr{Val: 3}},
			Op:  primitives.GT,
			Val: 10,
			Sel: 0.8,
		},
	}}
	cases := []struct {
		name string
		op   func() qef.Operator
		tile func() *qef.Tile
	}{
		{"filter/dense", func() qef.Operator {
			return &FilterOp{Preds: []Predicate{richPred}, Next: &CountSink{}}
		}, func() *qef.Tile { return confTile(confTileRows) }},
		{"filter/rids", func() qef.Operator {
			return &FilterOp{Preds: []Predicate{richPred}, Next: &CountSink{}}
		}, func() *qef.Tile { return withRIDs(confTile(confTileRows)) }},
		{"filter/truepred", func() qef.Operator {
			return &FilterOp{Preds: []Predicate{TruePred{}}, Next: &CountSink{}}
		}, func() *qef.Tile { return confTile(confTileRows) }},
		{"materialize/sel", func() qef.Operator {
			return &MaterializeOp{RowBytes: 4 + 8 + 4, Next: &CountSink{}}
		}, func() *qef.Tile { return withSel(confTile(confTileRows)) }},
		{"materialize/rids", func() qef.Operator {
			return &MaterializeOp{RowBytes: 4 + 8 + 4, Next: &CountSink{}}
		}, func() *qef.Tile { return withRIDs(confTile(confTileRows)) }},
		{"project", func() qef.Operator {
			return &ProjectOp{
				Exprs: []Expr{
					&BinExpr{Op: OpAdd,
						L: &BinExpr{Op: OpMul, L: &ColRef{Idx: 0}, R: &ColRef{Idx: 1}},
						R: &ConstExpr{Val: 7}},
					&CaseExpr{
						Cond: &ConstCmp{Col: 2, Op: primitives.GT, Val: 50, Sel: 0.5},
						Then: &ColRef{Idx: 0},
						Else: &ConstExpr{Val: 0},
					},
				},
				Keep: []int{2},
				Next: &CountSink{},
			}
		}, func() *qef.Tile { return confTile(confTileRows) }},
		{"scalaragg/rids", func() qef.Operator {
			return &ScalarAggOp{
				Specs: []AggSpec{
					{Kind: AggSum, Expr: &BinExpr{Op: OpMul, L: &ColRef{Idx: 0}, R: &ColRef{Idx: 1}}},
					{Kind: AggMax, Expr: &ColRef{Idx: 2}},
					{Kind: AggCountStar},
				},
				Result: NewScalarAggResult(3),
			}
		}, func() *qef.Tile { return withRIDs(confTile(confTileRows)) }},
		{"groupby/dense", func() qef.Operator {
			return &GroupByOp{
				GroupCols: []int{0, 2},
				Specs: []AggSpec{
					{Kind: AggSum, Expr: &ColRef{Idx: 1}},
					{Kind: AggCountStar},
				},
				MaxGroups: 512,
				Merger:    NewGroupMerger(2, nil),
			}
		}, func() *qef.Tile { return confTile(confTileRows) }},
		{"groupby/sel", func() qef.Operator {
			return &GroupByOp{
				GroupCols: []int{0},
				Specs:     []AggSpec{{Kind: AggMin, Expr: &BinExpr{Op: OpSub, L: &ColRef{Idx: 1}, R: &ConstExpr{Val: 1}}}},
				MaxGroups: 512,
				Merger:    NewGroupMerger(1, nil),
			}
		}, func() *qef.Tile { return withSel(confTile(confTileRows)) }},
		{"collect/dense", func() qef.Operator {
			return NewCollectSink([]Col{{Name: "a"}, {Name: "b"}, {Name: "c"}})
		}, func() *qef.Tile { return confTile(confTileRows) }},
		{"collect/sel", func() qef.Operator {
			return NewCollectSink([]Col{{Name: "a"}, {Name: "b"}, {Name: "c"}})
		}, func() *qef.Tile { return withSel(confTile(confTileRows)) }},
	}
	for _, mode := range []qef.Mode{qef.ModeX86, qef.ModeDPU} {
		for _, c := range cases {
			op := c.op()
			declared := op.DMEMSize(confTileRows)
			used := observedPoolBytes(t, mode, op, c.tile())
			if used > declared {
				t.Errorf("%s/%s: observed pool use %d bytes exceeds declared DMEMSize %d",
					mode, c.name, used, declared)
			}
		}
	}
}

// --- Steady-state allocation guards ---------------------------------------

// allocChain is the canonical filter→materialize→project tile loop the
// ISSUE's regression guard targets.
func allocChain(sink qef.Operator) func() qef.Operator {
	return func() qef.Operator {
		return &FilterOp{
			Preds: []Predicate{&ConstCmp{Col: 0, Op: primitives.LT, Val: 500, Sel: 0.5}},
			Next: &MaterializeOp{
				RowBytes: 3 * 4,
				Next: &ProjectOp{
					Exprs: []Expr{&BinExpr{Op: OpMul, L: &ColRef{Idx: 1}, R: &ConstExpr{Val: 3}}},
					Keep:  []int{0},
					Next:  sink,
				},
			},
		}
	}
}

func allocRelation(rows int) *Relation {
	cols := make([]Col, 3)
	for c := range cols {
		d := coltypes.New(coltypes.W4, rows)
		for i := 0; i < rows; i++ {
			d.Set(i, int64((i*2654435761+c)%1000))
		}
		cols[c] = Col{Name: string(rune('a' + c)), Type: coltypes.Int(), Data: d}
	}
	return MustRelation(cols)
}

// testTileLoopAllocs measures steady-state allocations of one full scan
// (after a warm-up pass that grows the pools) and asserts the per-tile
// budget. The budget tolerates the few interface-boxing allocations Go
// forces per tile (slice-view headers and expression-result boxing) but
// fails on any regression to per-tile buffer allocation.
func testTileLoopAllocs(t *testing.T, mode qef.Mode, perTileBudget float64) {
	const rows = 1 << 15
	const tileRows = 256
	rel := allocRelation(rows)
	ctx := qef.NewContext(mode)
	scan := func() {
		sink := &CountSink{}
		if err := RelationScan(ctx, rel, tileRows, allocChain(sink)); err != nil {
			t.Fatal(err)
		}
		if sink.Rows() == 0 {
			t.Fatal("no rows survived the filter")
		}
	}
	scan() // warm-up: pools grow to steady-state size here
	tiles := float64(rows / tileRows)
	// Fixed per-scan overhead (work-unit closures, goroutines, chain
	// construction) is excluded from the per-tile budget.
	const fixedBudget = 4096
	allocs := testing.AllocsPerRun(5, scan)
	if perTile := (allocs - fixedBudget) / tiles; perTile > perTileBudget {
		t.Errorf("%s tile loop: %.0f allocs/scan ≈ %.2f allocs/tile (budget %.2f) — the hot path regressed",
			mode, allocs, perTile, perTileBudget)
	}
}

func TestTileLoopAllocsX86(t *testing.T) { testTileLoopAllocs(t, qef.ModeX86, 8) }
func TestTileLoopAllocsDPU(t *testing.T) { testTileLoopAllocs(t, qef.ModeDPU, 8) }
