package ops

import (
	"math/rand"
	"testing"

	"rapid/internal/qef"
)

func TestSortMergeJoinBasic(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		build := intRel([]string{"k", "bv"}, []int64{5, 1, 3, 1}, []int64{50, 10, 30, 11})
		probe := intRel([]string{"k", "pv"}, []int64{1, 2, 3, 1}, []int64{100, 200, 300, 101})
		out, err := SortMergeJoin(ctx, build, probe, JoinSpec{
			Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
			ProbePayload: []int{0, 1}, BuildPayload: []int{1},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Key 1: 2 build x 2 probe = 4; key 3: 1x1 = 1. Total 5.
		if out.Rows() != 5 {
			t.Fatalf("rows = %d, want 5", out.Rows())
		}
		for i := 0; i < out.Rows(); i++ {
			k := out.Cols[0].Data.Get(i)
			bv := out.Cols[2].Data.Get(i)
			if k == 3 && bv != 30 {
				t.Fatal("payload misaligned")
			}
		}
	})
}

// Sort-merge and hash join must agree on random inputs — the two §6
// algorithms are interchangeable on inner equi-joins.
func TestSortMergeMatchesHashJoin(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		nb, np := rng.Intn(2000)+1, rng.Intn(2000)+1
		bk := seq(nb, func(int) int64 { return int64(rng.Intn(300)) })
		pk := seq(np, func(int) int64 { return int64(rng.Intn(300)) })
		build := intRel([]string{"k"}, bk)
		probe := intRel([]string{"k"}, pk)
		spec := JoinSpec{
			Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
			ProbePayload: []int{0}, BuildPayload: []int{0}, Vectorized: true,
			Scheme: PartScheme{Rounds: []int{4}},
		}
		hj, err := HashJoin(ctx, build, probe, spec)
		if err != nil {
			t.Fatal(err)
		}
		smj, err := SortMergeJoin(ctx, build, probe, spec)
		if err != nil {
			t.Fatal(err)
		}
		if hj.Rows() != smj.Rows() {
			t.Fatalf("trial %d: hash %d vs merge %d rows", trial, hj.Rows(), smj.Rows())
		}
	}
}

func TestSortMergeJoinErrors(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	r := intRel([]string{"k"}, []int64{1})
	if _, err := SortMergeJoin(ctx, r, r, JoinSpec{Type: SemiJoin, BuildKeys: []int{0}, ProbeKeys: []int{0}}); err == nil {
		t.Fatal("semi join unsupported")
	}
	if _, err := SortMergeJoin(ctx, r, r, JoinSpec{Type: InnerJoin, BuildKeys: []int{0, 0}, ProbeKeys: []int{0, 0}}); err == nil {
		t.Fatal("composite key unsupported")
	}
}

func TestSortMergeJoinEmptySides(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	empty := intRel([]string{"k"}, []int64{})
	full := intRel([]string{"k"}, []int64{1, 2, 3})
	out, err := SortMergeJoin(ctx, empty, full, JoinSpec{
		Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0}, ProbePayload: []int{0},
	})
	if err != nil || out.Rows() != 0 {
		t.Fatalf("empty build: %v rows=%d", err, out.Rows())
	}
}
