package ops

import (
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// Failure injection: a DPU configured with a fraction of the normal DMEM.
// Every operator must still produce correct results by shrinking tiles,
// overflowing hash tables to DRAM and re-partitioning — never by failing.

func tinyDMEMContext(t *testing.T, dmemBytes int) *qef.Context {
	t.Helper()
	cfg := dpu.DefaultConfig()
	cfg.DMEMBytes = dmemBytes
	return qef.NewContextWith(qef.ModeDPU, cfg)
}

func TestJoinUnderDMEMPressure(t *testing.T) {
	for _, dmem := range []int{4 * 1024, 8 * 1024} {
		ctx := tinyDMEMContext(t, dmem)
		n := 20000
		build := intRel([]string{"k", "v"},
			seq(n, func(i int) int64 { return int64(i) }),
			seq(n, func(i int) int64 { return int64(i * 2) }))
		probe := intRel([]string{"k"}, seq(n, func(i int) int64 { return int64(i) }))
		out, err := HashJoin(ctx, build, probe, JoinSpec{
			Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
			ProbePayload: []int{0}, BuildPayload: []int{1},
			Scheme:     PartScheme{Rounds: []int{8}},
			Vectorized: true,
		})
		if err != nil {
			t.Fatalf("dmem=%d: %v", dmem, err)
		}
		if out.Rows() != n {
			t.Fatalf("dmem=%d: rows = %d, want %d", dmem, out.Rows(), n)
		}
		// Tiny DMEM forces overflow; simulated time must reflect the extra
		// DRAM traffic (slower than the comfortable configuration).
		comfortable := qef.NewContext(qef.ModeDPU)
		_, err = HashJoin(comfortable, build, probe, JoinSpec{
			Type: InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
			ProbePayload: []int{0}, BuildPayload: []int{1},
			Scheme:     PartScheme{Rounds: []int{8}},
			Vectorized: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ctx.SimElapsed() < comfortable.SimElapsed() {
			t.Fatalf("dmem=%d: pressure run (%.3gms) faster than comfortable (%.3gms)",
				dmem, ctx.SimElapsed()*1e3, comfortable.SimElapsed()*1e3)
		}
	}
}

func TestPartitionUnderDMEMPressure(t *testing.T) {
	ctx := tinyDMEMContext(t, 4*1024)
	n := 30000
	cols := []struct{}{}
	_ = cols
	data := intRel([]string{"k", "v"},
		seq(n, func(i int) int64 { return int64(i * 7) }),
		seq(n, func(i int) int64 { return int64(i) }))
	pr, err := PartitionByHash(ctx, data.Datas(), []int{0}, PartScheme{Rounds: []int{8, 8}}, 512)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < pr.NumPartitions(); p++ {
		total += pr.Rows(p)
	}
	if total != n {
		t.Fatalf("rows lost under pressure: %d", total)
	}
}

func TestGroupByUnderDMEMPressure(t *testing.T) {
	ctx := tinyDMEMContext(t, 4*1024)
	n := 20000
	rel := intRel([]string{"g", "v"},
		seq(n, func(i int) int64 { return int64(i % 5000) }),
		seq(n, func(i int) int64 { return int64(i) }))
	out, err := GroupByPartitioned(ctx, rel, []int{0},
		[]AggSpec{{Kind: AggSum, Expr: &ColRef{Idx: 1}, Name: "s"}},
		PartScheme{Rounds: []int{8}}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 5000 {
		t.Fatalf("groups = %d", out.Rows())
	}
	want := map[int64]int64{}
	for i := 0; i < n; i++ {
		want[int64(i%5000)] += int64(i)
	}
	for i := 0; i < out.Rows(); i++ {
		if out.Cols[1].Data.Get(i) != want[out.Cols[0].Data.Get(i)] {
			t.Fatal("wrong sum under pressure")
		}
	}
}

func TestScanFailsCleanlyWhenTileCannotFit(t *testing.T) {
	// 64-row minimum tiles of 40 wide columns, double-buffered, exceed a
	// 2 KiB scratchpad: the accessor must return an error, not corrupt
	// data or panic.
	ctx := tinyDMEMContext(t, 2*1024)
	cols := make([]Col, 40)
	for i := range cols {
		cols[i] = Col{Name: "c", Data: coltypes.I64(seq(1000, func(j int) int64 { return int64(j) }))}
	}
	rel := MustRelation(cols)
	sink := &CountSink{}
	err := RelationScan(ctx, rel, 64, func() qef.Operator { return sink })
	if err == nil {
		t.Fatal("expected DMEM exhaustion error")
	}
}

func TestOverflowStatsReported(t *testing.T) {
	// Direct kernel check: under a capacity squeeze the hash table reports
	// the overflow row count (the observability §6.4 relies on).
	n := 1000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	ht := primitives.NewCompactHT(100, 64)
	hv := make([]uint32, n)
	for i := range hv {
		hv[i] = uint32(i * 2654435761)
	}
	ht.Build(nil, hv, keys, nil, 256)
	if ht.OverflowRows() != n-100 {
		t.Fatalf("overflow = %d, want %d", ht.OverflowRows(), n-100)
	}
	if ht.Rows() != n {
		t.Fatalf("rows = %d", ht.Rows())
	}
}
