package ops

import (
	"fmt"
	"sync"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// GroupTable is the DMEM-resident grouping hash table: open addressing over
// the CRC32 hash of the group keys, group keys stored columnar by dense
// group id. Like the join kernel it is pointer-free and sized against the
// 32 KiB scratchpad.
type GroupTable struct {
	mask    uint32
	slots   []int32 // gid+1; 0 = empty
	keyCols [][]int64
	hashes  []uint32 // per-gid hash for fast reject
	n       int
	cap     int
}

// GroupTableSizeBytes returns the DMEM footprint for maxGroups groups with
// nKeys key columns (what the group-by declares as op_dmem_size).
func GroupTableSizeBytes(maxGroups, nKeys int) int {
	slots := nextPow2(2 * maxGroups)
	return slots*4 + maxGroups*(nKeys*8+4)
}

// NewGroupTable builds a table for up to maxGroups groups of nKeys key
// columns.
func NewGroupTable(maxGroups, nKeys int) *GroupTable {
	slots := nextPow2(2 * maxGroups)
	g := &GroupTable{
		mask:    uint32(slots - 1),
		slots:   make([]int32, slots),
		keyCols: make([][]int64, nKeys),
		cap:     maxGroups,
	}
	for i := range g.keyCols {
		g.keyCols[i] = make([]int64, 0, maxGroups)
	}
	return g
}

// NumGroups returns the number of distinct groups seen.
func (g *GroupTable) NumGroups() int { return g.n }

// Key returns key column k of group gid.
func (g *GroupTable) Key(k int, gid int) int64 { return g.keyCols[k][gid] }

// FindOrAdd returns the dense group id of the key tuple, adding it when
// new. Returns -1 when the table is full (the caller re-partitions, the
// runtime adaptation of §5.4).
func (g *GroupTable) FindOrAdd(h uint32, key []int64) int {
	slot := h & g.mask
	for {
		s := g.slots[slot]
		if s == 0 {
			if g.n >= g.cap {
				return -1
			}
			gid := g.n
			g.n++
			g.slots[slot] = int32(gid + 1)
			g.hashes = append(g.hashes, h)
			for k := range g.keyCols {
				g.keyCols[k] = append(g.keyCols[k], key[k])
			}
			return gid
		}
		gid := int(s - 1)
		if g.hashes[gid] == h {
			match := true
			for k := range g.keyCols {
				if g.keyCols[k][gid] != key[k] {
					match = false
					break
				}
			}
			if match {
				return gid
			}
		}
		slot = (slot + 1) & g.mask
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ErrGroupOverflow signals that the low-NDV strategy hit more groups than
// the statistics predicted; the caller falls back to the partitioned
// strategy.
var ErrGroupOverflow = fmt.Errorf("ops: group table overflow (NDV above estimate)")

// GroupByOp is the low-NDV group-by strategy of §5.4: every core aggregates
// into its own small DMEM table, and a merge operator combines the (few)
// groups at Close. The compiler selects this strategy when the table of all
// groups fits the collective DMEM.
type GroupByOp struct {
	GroupCols []int // tile column indices of the group keys
	Specs     []AggSpec
	MaxGroups int
	Merger    *GroupMerger

	table  *GroupTable
	aggs   []*primitives.GroupedAgg
	keyBuf []int64
}

// DMEMSize: the group table and per-spec accumulator arrays (unit lifetime)
// plus the per-tile hash/gid/row vectors and each aggregate expression's
// scratch. Per-tile scratch comes from the task pool, so this stays an
// upper bound on observed pool usage (operator instances persist across
// work units while the pool resets — cross-tile caches must not be
// pool-backed, which is why the old cached hv/gids/rows fields are gone).
func (g *GroupByOp) DMEMSize(tileRows int) int {
	total := GroupTableSizeBytes(g.MaxGroups, len(g.GroupCols)) +
		len(g.Specs)*4*8*g.MaxGroups + 12*tileRows
	for _, spec := range g.Specs {
		if spec.Kind == AggCountStar || spec.Expr == nil {
			continue
		}
		total += exprScratchBytes(spec.Expr, tileRows) + 8*tileRows
	}
	return total
}

func (g *GroupByOp) Open(tc *qef.TaskCtx) error {
	g.table = NewGroupTable(g.MaxGroups, len(g.GroupCols))
	g.aggs = make([]*primitives.GroupedAgg, len(g.Specs))
	for i := range g.aggs {
		g.aggs[i] = primitives.NewGroupedAgg(g.MaxGroups)
	}
	g.keyBuf = make([]int64, len(g.GroupCols))
	return nil
}

func (g *GroupByOp) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	primitives.ChargeTileOverhead(core(tc))
	// Hash the group key columns (hardware CRC32 engine provides this in
	// the on-the-fly partitioning path).
	keyData := colScratch(tc, len(g.GroupCols))
	for i, c := range g.GroupCols {
		keyData[i] = t.Cols[c]
	}
	hv := primitives.HashColumns(core(tc), keyData, ridScratch(tc, t.N))
	gids := ridScratch(tc, t.N)
	rows := ridScratch(tc, t.N)
	var overflow error
	t.ForEachRow(func(i int) {
		if overflow != nil {
			return
		}
		for k, d := range keyData {
			g.keyBuf[k] = d.Get(i)
		}
		gid := g.table.FindOrAdd(hv[i], g.keyBuf)
		if gid < 0 {
			overflow = ErrGroupOverflow
			return
		}
		gids = append(gids, uint32(gid))
		rows = append(rows, uint32(i))
	})
	if overflow != nil {
		return overflow
	}
	if c := core(tc); c != nil {
		c.Charge(dpu.Cycles(3 * len(rows))) // table probe loop
	}
	dense := t.Dense()
	for s, spec := range g.Specs {
		if spec.Kind == AggCountStar {
			g.aggs[s].AccumulateCounts(core(tc), gids)
			continue
		}
		vals := spec.Expr.Eval(tc, t)
		if dense {
			g.aggs[s].Accumulate(core(tc), gids, vals)
			continue
		}
		sub := scratch(tc, len(rows))
		for j, r := range rows {
			sub[j] = vals[r]
		}
		g.aggs[s].Accumulate(core(tc), gids, sub)
	}
	return nil
}

func (g *GroupByOp) Close(tc *qef.TaskCtx) error {
	// Merge operator: ship local groups to the shared merger over ATE.
	g.Merger.merge(tc, g.table, g.aggs, g.Specs)
	return nil
}

// GroupMerger combines per-core group tables into the final grouped result.
type GroupMerger struct {
	NKeys int
	Specs []AggSpec

	mu    sync.Mutex
	keys  map[string]int // serialized key -> row
	kcols [][]int64
	accs  [][]primitives.AggState // [spec][row]
}

// NewGroupMerger builds a merger for nKeys group columns and the specs.
func NewGroupMerger(nKeys int, specs []AggSpec) *GroupMerger {
	return &GroupMerger{
		NKeys: nKeys,
		Specs: specs,
		keys:  make(map[string]int),
		kcols: make([][]int64, nKeys),
		accs:  make([][]primitives.AggState, len(specs)),
	}
}

func (m *GroupMerger) merge(tc *qef.TaskCtx, table *GroupTable, aggs []*primitives.GroupedAgg, specs []AggSpec) {
	if table == nil {
		return
	}
	if c := core(tc); c != nil && table.n > 0 {
		// ATE transfer of the local groups to the merge core.
		c.Charge(dpu.Cycles(10 * table.n))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	keyBuf := make([]byte, 0, m.NKeys*8)
	for gid := 0; gid < table.n; gid++ {
		keyBuf = keyBuf[:0]
		for k := 0; k < m.NKeys; k++ {
			v := table.Key(k, gid)
			for b := 0; b < 8; b++ {
				keyBuf = append(keyBuf, byte(v>>(8*b)))
			}
		}
		row, ok := m.keys[string(keyBuf)]
		if !ok {
			row = len(m.keys)
			m.keys[string(keyBuf)] = row
			for k := 0; k < m.NKeys; k++ {
				m.kcols[k] = append(m.kcols[k], table.Key(k, gid))
			}
			for s := range m.accs {
				m.accs[s] = append(m.accs[s], primitives.NewAggState())
			}
		}
		for s := range specs {
			st := primitives.AggState{
				Sum:   aggs[s].Sums[gid],
				Min:   aggs[s].Mins[gid],
				Max:   aggs[s].Maxs[gid],
				Count: aggs[s].Counts[gid],
			}
			m.accs[s][row].Merge(st)
		}
	}
}

// NumGroups returns the merged group count.
func (m *GroupMerger) NumGroups() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.keys)
}

// Relation materializes the merged result: group key columns first, then
// one column per agg spec.
func (m *GroupMerger) Relation(keyCols []Col, outNames []string) *Relation {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.keys)
	cols := make([]Col, 0, m.NKeys+len(m.Specs))
	for k := 0; k < m.NKeys; k++ {
		c := keyCols[k]
		c.Data = coltypes.I64(append([]int64(nil), m.kcols[k]...))
		cols = append(cols, c)
	}
	for s, spec := range m.Specs {
		vals := make([]int64, n)
		for row := 0; row < n; row++ {
			st := m.accs[s][row]
			switch spec.Kind {
			case AggSum:
				vals[row] = st.Sum
			case AggMin:
				vals[row] = st.Min
			case AggMax:
				vals[row] = st.Max
			default:
				vals[row] = st.Count
			}
		}
		name := spec.Name
		if name == "" && s < len(outNames) {
			name = outNames[s]
		}
		cols = append(cols, Col{Name: name, Type: coltypes.Int(), Data: coltypes.I64(vals)})
	}
	return MustRelation(cols)
}
