package ops

import (
	"errors"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/qef"
)

// fakeData is a Data representation the engine does not know how to append —
// the stand-in for whatever a fuzzed plan smuggles into a partition flush.
type fakeData struct{}

func (fakeData) Len() int                     { return 1 }
func (fakeData) Width() coltypes.Width        { return coltypes.W8 }
func (fakeData) Get(int) int64                { return 0 }
func (fakeData) Set(int, int64)               {}
func (fakeData) Slice(int, int) coltypes.Data { return fakeData{} }
func (fakeData) NewSame(int) coltypes.Data    { return fakeData{} }
func (fakeData) SizeBytes() int               { return 8 }
func (fakeData) CopyFrom(int, coltypes.Data)  {}

// TestAppendDataMismatchIsError pins the partition-flush panic fix: a width
// mismatch or an unknown representation must come back as a query error, not
// crash the worker.
func TestAppendDataMismatchIsError(t *testing.T) {
	if _, err := appendData(coltypes.I32{1}, coltypes.I64{2}); err == nil {
		t.Fatal("width mismatch must return an error")
	}
	if _, err := appendData(fakeData{}, fakeData{}); err == nil {
		t.Fatal("unknown representation must return an error")
	}
	nd, err := appendData(coltypes.I16{1}, coltypes.I16{2, 3})
	if err != nil || nd.Len() != 3 {
		t.Fatalf("same-width append: err=%v len=%d", err, nd.Len())
	}
}

// TestSWPartitionFlushErrorPropagates proves a flush failure aborts the work
// unit and surfaces through the qef run instead of being swallowed (the
// flush path used to have no error return at all).
func TestSWPartitionFlushErrorPropagates(t *testing.T) {
	ctx := qef.NewContext(qef.ModeX86)
	cols := []coltypes.Data{coltypes.I64(seq(256, func(i int) int64 { return int64(i) }))}
	hv := make([]uint32, 256)
	for i := range hv {
		hv[i] = uint32(i)
	}
	wantErr := errors.New("flush rejected")
	err := ctx.RunSerial(func(tc *qef.TaskCtx) error {
		return swPartitionOne(tc, cols, hv, 4, 0, 64,
			func(int, []coltypes.Data, []uint32) error { return wantErr })
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the flush error", err)
	}
}
