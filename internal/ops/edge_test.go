package ops

import (
	"testing"

	"rapid/internal/qef"
)

// Edge-condition coverage for the relation-to-relation operators: empty
// inputs, degenerate constant keys, duplicate rows in set operations, and
// the LIMIT 0 / tie boundaries of top-k. All shapes the qgen harness
// generates routinely; pinned here at the operator level.

func emptyRel(names ...string) *Relation {
	cols := make([][]int64, len(names))
	for i := range cols {
		cols[i] = nil
	}
	return intRel(names, cols...)
}

func TestHashJoinEmptyInputs(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		probe := intRel([]string{"pk", "pv"}, []int64{1, 2, 3}, []int64{10, 20, 30})
		build := intRel([]string{"bk", "bv"}, []int64{2, 5}, []int64{200, 500})
		spec := func(typ JoinType) JoinSpec {
			return JoinSpec{
				Type: typ, BuildKeys: []int{0}, ProbeKeys: []int{0},
				BuildPayload: []int{1}, ProbePayload: []int{0, 1},
				Scheme: PartScheme{Rounds: []int{4}}, Vectorized: true,
			}
		}
		cases := []struct {
			name         string
			build, probe *Relation
			typ          JoinType
			rows         int
		}{
			{"inner/empty-build", emptyRel("bk", "bv"), probe, InnerJoin, 0},
			{"inner/empty-probe", build, emptyRel("pk", "pv"), InnerJoin, 0},
			{"inner/both-empty", emptyRel("bk", "bv"), emptyRel("pk", "pv"), InnerJoin, 0},
			{"semi/empty-build", emptyRel("bk", "bv"), probe, SemiJoin, 0},
			{"anti/empty-build", emptyRel("bk", "bv"), probe, AntiJoin, 3},
			{"outer/empty-build", emptyRel("bk", "bv"), probe, LeftOuterJoin, 3},
			{"outer/empty-probe", build, emptyRel("pk", "pv"), LeftOuterJoin, 0},
		}
		for _, tc := range cases {
			sp := spec(tc.typ)
			if tc.typ == SemiJoin || tc.typ == AntiJoin {
				sp.BuildPayload = nil
			}
			out, err := HashJoin(ctx, tc.build, tc.probe, sp)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if out.Rows() != tc.rows {
				t.Fatalf("%s: rows = %d, want %d", tc.name, out.Rows(), tc.rows)
			}
		}
		// Left-outer against an empty build pads the build payload with 0.
		out, err := HashJoin(ctx, emptyRel("bk", "bv"), probe, spec(LeftOuterJoin))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < out.Rows(); i++ {
			if pad := out.Cols[2].Data.Get(i); pad != 0 {
				t.Fatalf("row %d: padding = %d, want 0", i, pad)
			}
		}
	})
}

func TestRelationOpsOnEmptyInput(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		empty := emptyRel("a", "b")

		sorted, err := SortRelation(ctx, empty, []SortKey{{Col: 0}})
		if err != nil || sorted.Rows() != 0 {
			t.Fatalf("sort empty: rows=%d err=%v", sorted.Rows(), err)
		}
		top, err := TopK(ctx, empty, []SortKey{{Col: 1, Desc: true}}, 5)
		if err != nil || top.Rows() != 0 {
			t.Fatalf("topk empty: rows=%d err=%v", top.Rows(), err)
		}
		win, err := Window(ctx, empty, WindowSpec{Func: WinRowNumber, PartitionBy: []int{0}, OrderBy: []SortKey{{Col: 1}}})
		if err != nil || win.Rows() != 0 {
			t.Fatalf("window empty: rows=%d err=%v", win.Rows(), err)
		}
		if win.NumCols() != 3 {
			t.Fatalf("window empty: cols=%d, want input+1", win.NumCols())
		}
		grp, err := GroupByPartitioned(ctx, emptyRel("g", "v"), []int{0},
			[]AggSpec{{Kind: AggSum, Expr: &ColRef{Idx: 1}, Name: "s"}},
			PartScheme{Rounds: []int{4}}, 64)
		if err != nil || grp.Rows() != 0 {
			t.Fatalf("group empty: rows=%d err=%v", grp.Rows(), err)
		}
		for _, kind := range []SetOpKind{SetUnion, SetUnionAll, SetIntersect, SetMinus} {
			out, err := SetOp(ctx, empty, emptyRel("a", "b"), kind)
			if err != nil || out.Rows() != 0 {
				t.Fatalf("%v on empty: rows=%d err=%v", kind, out.Rows(), err)
			}
		}
		// One side empty: UNION keeps the non-empty side's distinct rows.
		some := intRel([]string{"a", "b"}, []int64{1, 1, 2}, []int64{5, 5, 6})
		u, err := SetOp(ctx, some, emptyRel("a", "b"), SetUnion)
		if err != nil || u.Rows() != 2 {
			t.Fatalf("union with empty: rows=%d err=%v", u.Rows(), err)
		}
		m, err := SetOp(ctx, emptyRel("a", "b"), some, SetMinus)
		if err != nil || m.Rows() != 0 {
			t.Fatalf("minus from empty: rows=%d err=%v", m.Rows(), err)
		}
	})
}

func TestSetOpsDuplicateKeys(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		// a = {1,1,2,3,3,3}, b = {2,2,4}: duplicates on both sides must
		// collapse under set semantics and survive under UNION ALL.
		a := intRel([]string{"v"}, []int64{1, 1, 2, 3, 3, 3})
		b := intRel([]string{"v"}, []int64{2, 2, 4})
		cases := []struct {
			kind SetOpKind
			rows int
		}{
			{SetUnion, 4},     // {1,2,3,4}
			{SetUnionAll, 9},  // bag concat
			{SetIntersect, 1}, // {2}
			{SetMinus, 2},     // {1,3}
		}
		for _, tc := range cases {
			out, err := SetOp(ctx, a, b, tc.kind)
			if err != nil {
				t.Fatalf("%v: %v", tc.kind, err)
			}
			if out.Rows() != tc.rows {
				t.Fatalf("%v: rows = %d, want %d", tc.kind, out.Rows(), tc.rows)
			}
		}
		// Identical inputs: INTERSECT and UNION both yield the distinct set,
		// MINUS empties.
		i2, _ := SetOp(ctx, a, a, SetIntersect)
		m2, _ := SetOp(ctx, a, a, SetMinus)
		if i2.Rows() != 3 || m2.Rows() != 0 {
			t.Fatalf("self setops: intersect=%d minus=%d", i2.Rows(), m2.Rows())
		}
	})
}

func TestTopKLimitZeroAndTies(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		rel := intRel([]string{"k", "v"},
			[]int64{5, 5, 5, 5, 1, 1, 9},
			[]int64{0, 1, 2, 3, 4, 5, 6})

		zero, err := TopK(ctx, rel, []SortKey{{Col: 0}}, 0)
		if err != nil || zero.Rows() != 0 {
			t.Fatalf("k=0: rows=%d err=%v", zero.Rows(), err)
		}
		if zero.NumCols() != 2 {
			t.Fatalf("k=0: cols=%d", zero.NumCols())
		}

		// k cuts through a tie group (four 5s, cut at 3): exactly k rows
		// come back and they are the smallest keys.
		top, err := TopK(ctx, rel, []SortKey{{Col: 0}}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if top.Rows() != 3 {
			t.Fatalf("k=3 with ties: rows = %d", top.Rows())
		}
		want := []int64{1, 1, 5}
		for i, w := range want {
			if got := top.Cols[0].Data.Get(i); got != w {
				t.Fatalf("row %d key = %d, want %d", i, got, w)
			}
		}

		// k beyond the row count degrades to a full sort.
		all, err := TopK(ctx, rel, []SortKey{{Col: 0, Desc: true}}, 100)
		if err != nil || all.Rows() != rel.Rows() {
			t.Fatalf("k>n: rows=%d err=%v", all.Rows(), err)
		}
		if all.Cols[0].Data.Get(0) != 9 {
			t.Fatalf("k>n: first key = %d, want 9", all.Cols[0].Data.Get(0))
		}

		// Limit is a plain prefix.
		if l := Limit(rel, 0); l.Rows() != 0 {
			t.Fatalf("Limit 0: rows=%d", l.Rows())
		}
		if l := Limit(rel, 2); l.Rows() != 2 {
			t.Fatalf("Limit 2: rows=%d", l.Rows())
		}
		if l := Limit(rel, 100); l.Rows() != rel.Rows() {
			t.Fatalf("Limit>n: rows=%d", l.Rows())
		}
	})
}

func TestGroupByConstantKey(t *testing.T) {
	bothModes(t, func(t *testing.T, ctx *qef.Context) {
		// Every row lands in one group: the degenerate skew case for the
		// partitioned strategy (all rows hash to a single partition).
		n := 5000
		rel := intRel([]string{"g", "v"},
			seq(n, func(i int) int64 { return 7 }),
			seq(n, func(i int) int64 { return int64(i) }))
		out, err := GroupByPartitioned(ctx, rel, []int{0},
			[]AggSpec{
				{Kind: AggSum, Expr: &ColRef{Idx: 1}, Name: "s"},
				{Kind: AggCountStar, Name: "c"},
			},
			PartScheme{Rounds: []int{16}}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rows() != 1 {
			t.Fatalf("groups = %d, want 1", out.Rows())
		}
		if k := out.Cols[0].Data.Get(0); k != 7 {
			t.Fatalf("key = %d", k)
		}
		wantSum := int64(n) * int64(n-1) / 2
		if s := out.Cols[1].Data.Get(0); s != wantSum {
			t.Fatalf("sum = %d, want %d", s, wantSum)
		}
		if c := out.Cols[2].Data.Get(0); c != int64(n) {
			t.Fatalf("count = %d, want %d", c, n)
		}
	})
}
