package ops

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// Predicate is a vectorized boolean condition over a tile. Eval computes the
// qualifying rows among those set in inBV (nil = all rows) into a
// tile-lifetime bit-vector (pool scratch — valid until the next
// ResetScratch); EstSelectivity is the compiler's estimate driving predicate
// reordering and the RID/bit-vector representation choice (§5.4).
type Predicate interface {
	Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int)
	EstSelectivity() float64
	String() string
}

// predScratchBytes returns an upper bound on the tile-lifetime pool bytes
// one Eval of p takes for a tile of tileRows rows: one result bit-vector per
// node, plus expression scratch for computed comparisons. Operator DMEMSize
// declarations are built from this so they stay upper bounds on observed
// pool usage.
func predScratchBytes(p Predicate, tileRows int) int {
	bv := bits.VectorSizeBytes(tileRows)
	switch p := p.(type) {
	case *ConstCmp, *Between, *InSet, *ColCmp, TruePred, *TruePred:
		return bv
	case *ExprCmp:
		return bv + exprScratchBytes(p.E, tileRows)
	case *And:
		total := 0
		for _, sub := range p.Preds {
			total += predScratchBytes(sub, tileRows)
		}
		return total
	case *Or:
		total := bv
		for _, sub := range p.Preds {
			total += predScratchBytes(sub, tileRows)
		}
		return total
	case *Not:
		return bv + predScratchBytes(p.P, tileRows)
	default:
		// Unknown predicate node: assume two bit-vectors.
		return 2 * bv
	}
}

// evalPredDense evaluates p over all rows of the tile.
func evalPredDense(tc *qef.TaskCtx, p Predicate, t *qef.Tile) *bits.Vector {
	bv, _ := p.Eval(tc, t, nil)
	return bv
}

// ConstCmp compares a column against a constant.
type ConstCmp struct {
	Col  int
	Op   primitives.CmpOp
	Val  int64
	Sel  float64 // estimated selectivity
	Name string  // column name for display
}

func (p *ConstCmp) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	out := bvScratch(tc, t.N)
	var hits int
	if inBV == nil {
		hits = primitives.FilterConstBV(core(tc), t.Cols[p.Col], p.Op, p.Val, out)
	} else {
		hits = primitives.FilterConstBVMasked(core(tc), t.Cols[p.Col], p.Op, p.Val, inBV, out)
	}
	return out, hits
}

func (p *ConstCmp) EstSelectivity() float64 { return selOrDefault(p.Sel) }

func (p *ConstCmp) String() string {
	return fmt.Sprintf("%s %s %d", colName(p.Name, p.Col), cmpSymbol(p.Op), p.Val)
}

// Between tests lo <= col <= hi.
type Between struct {
	Col    int
	Lo, Hi int64
	Sel    float64
	Name   string
}

func (p *Between) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	out := bvScratch(tc, t.N)
	hits := primitives.FilterBetweenBV(core(tc), t.Cols[p.Col], p.Lo, p.Hi, inBV, out)
	return out, hits
}

func (p *Between) EstSelectivity() float64 { return selOrDefault(p.Sel) }

func (p *Between) String() string {
	return fmt.Sprintf("%s BETWEEN %d AND %d", colName(p.Name, p.Col), p.Lo, p.Hi)
}

// InSet tests dictionary-code membership (string equality, IN lists, LIKE
// prefix and string ranges all compile to this).
type InSet struct {
	Col  int
	Set  *bits.Vector
	Sel  float64
	Name string
}

func (p *InSet) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	out := bvScratch(tc, t.N)
	hits := primitives.FilterInSetBV(core(tc), t.Cols[p.Col], p.Set, inBV, out)
	return out, hits
}

func (p *InSet) EstSelectivity() float64 { return selOrDefault(p.Sel) }

func (p *InSet) String() string {
	return fmt.Sprintf("%s IN <set:%d>", colName(p.Name, p.Col), p.Set.Count())
}

// ColCmp compares two columns of the tile.
type ColCmp struct {
	A, B int
	Op   primitives.CmpOp
	Sel  float64
}

func (p *ColCmp) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	out := bvScratch(tc, t.N)
	hits := primitives.FilterColColBV(core(tc), t.Cols[p.A], t.Cols[p.B], p.Op, inBV, out)
	return out, hits
}

func (p *ColCmp) EstSelectivity() float64 { return selOrDefault(p.Sel) }

func (p *ColCmp) String() string {
	return fmt.Sprintf("$%d %s $%d", p.A, cmpSymbol(p.Op), p.B)
}

// ExprCmp compares a computed expression against a constant (e.g.
// l_extendedprice * l_discount > c). More expensive than ConstCmp; the
// compiler orders it late.
type ExprCmp struct {
	E   Expr
	Op  primitives.CmpOp
	Val int64
	Sel float64
}

func (p *ExprCmp) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	d := coltypes.I64(p.E.Eval(tc, t))
	out := bvScratch(tc, t.N)
	var hits int
	if inBV == nil {
		hits = primitives.FilterConstBV(core(tc), d, p.Op, p.Val, out)
	} else {
		hits = primitives.FilterConstBVMasked(core(tc), d, p.Op, p.Val, inBV, out)
	}
	return out, hits
}

func (p *ExprCmp) EstSelectivity() float64 { return selOrDefault(p.Sel) }

func (p *ExprCmp) String() string {
	return fmt.Sprintf("%s %s %d", p.E, cmpSymbol(p.Op), p.Val)
}

// And is a conjunction evaluated most-selective-first (the §5.4 predicate
// reordering applies inside conjunctions as well). The ordering is computed
// once via sync.Once: predicate instances are shared across per-core chains,
// so a plain lazily-assigned field would race.
type And struct {
	Preds []Predicate

	orderOnce sync.Once
	ordered   []Predicate
}

func (p *And) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	p.orderOnce.Do(func() {
		p.ordered = append([]Predicate(nil), p.Preds...)
		sort.SliceStable(p.ordered, func(i, j int) bool {
			return p.ordered[i].EstSelectivity() < p.ordered[j].EstSelectivity()
		})
	})
	ordered := p.ordered
	cur := inBV
	var out *bits.Vector
	hits := 0
	for _, sub := range ordered {
		out, hits = sub.Eval(tc, t, cur)
		if hits == 0 {
			return out, 0
		}
		cur = out
	}
	return out, hits
}

func (p *And) EstSelectivity() float64 {
	s := 1.0
	for _, sub := range p.Preds {
		s *= sub.EstSelectivity()
	}
	return s
}

func (p *And) String() string { return joinPreds(p.Preds, " AND ") }

// Or is a disjunction: the union of the branch results.
type Or struct {
	Preds []Predicate
}

func (p *Or) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	acc := bvScratch(tc, t.N)
	for _, sub := range p.Preds {
		bv, _ := sub.Eval(tc, t, inBV)
		acc.Or(acc, bv)
	}
	return acc, acc.Count()
}

func (p *Or) EstSelectivity() float64 {
	miss := 1.0
	for _, sub := range p.Preds {
		miss *= 1 - sub.EstSelectivity()
	}
	return 1 - miss
}

func (p *Or) String() string { return joinPreds(p.Preds, " OR ") }

// Not negates a predicate over the candidate rows.
type Not struct {
	P Predicate
}

func (p *Not) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	bv, _ := p.P.Eval(tc, t, inBV)
	out := bvScratch(tc, t.N)
	if inBV == nil {
		out.Not(bv)
	} else {
		out.AndNot(inBV, bv)
	}
	return out, out.Count()
}

func (p *Not) EstSelectivity() float64 { return 1 - p.P.EstSelectivity() }

func (p *Not) String() string { return fmt.Sprintf("NOT (%s)", p.P) }

// TruePred matches every candidate row (used by degenerate rewrites).
type TruePred struct{}

func (TruePred) Eval(tc *qef.TaskCtx, t *qef.Tile, inBV *bits.Vector) (*bits.Vector, int) {
	out := bvScratch(tc, t.N)
	if inBV == nil {
		out.SetAll()
		return out, t.N
	}
	out.CopyFrom(inBV)
	return out, out.Count()
}

func (TruePred) EstSelectivity() float64 { return 1.0 }
func (TruePred) String() string          { return "TRUE" }

func selOrDefault(s float64) float64 {
	if s <= 0 || s > 1 {
		return 0.5
	}
	return s
}

func colName(name string, idx int) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("$%d", idx)
}

func cmpSymbol(op primitives.CmpOp) string {
	switch op {
	case primitives.EQ:
		return "="
	case primitives.NE:
		return "<>"
	case primitives.LT:
		return "<"
	case primitives.LE:
		return "<="
	case primitives.GT:
		return ">"
	case primitives.GE:
		return ">="
	}
	return "?"
}

func joinPreds(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
