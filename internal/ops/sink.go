package ops

import (
	"sync"

	"rapid/internal/coltypes"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// CollectSink terminates a task: tiles are materialized (selection applied)
// and appended to a DRAM result buffer — the materialization at a task
// boundary of §5.2. One sink is shared by all parallel chain instances; the
// append is serialized per tile, which is cheap relative to tile processing.
type CollectSink struct {
	// OutCols describes the result columns (names/types for the Relation).
	OutCols []Col

	mu   sync.Mutex
	bufs [][]int64
	rows int
}

// NewCollectSink builds a sink producing the given output column metadata.
func NewCollectSink(outCols []Col) *CollectSink {
	return &CollectSink{OutCols: outCols, bufs: make([][]int64, len(outCols))}
}

// DMEMSize: one widened 8-byte staging vector per output column. The old
// declaration of 0 ignored the per-tile staging buffers entirely.
func (s *CollectSink) DMEMSize(tileRows int) int {
	return len(s.OutCols) * 8 * tileRows
}

func (s *CollectSink) Open(tc *qef.TaskCtx) error { return nil }

func (s *CollectSink) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	if len(t.Cols) < len(s.bufs) {
		panic("ops: sink received fewer columns than declared")
	}
	// Gather qualifying rows per column into pool scratch, then append under
	// the lock (the append copies, so the scratch never escapes the tile).
	n := t.QualifyingRows()
	if n == 0 {
		return nil
	}
	staged := rowScratch(tc, len(s.bufs))
	dense := t.Dense()
	for c := range s.bufs {
		col := t.Cols[c]
		var vals []int64
		if dense {
			if i64, ok := col.(coltypes.I64); ok {
				vals = i64[:n]
			} else {
				vals = primitives.WidenToI64(nil, col, scratch(tc, n))
			}
		} else {
			vals = scratch(tc, n)[:0]
			t.ForEachRow(func(i int) { vals = append(vals, col.Get(i)) })
		}
		staged[c] = vals
	}
	if tc != nil && tc.Core != nil {
		// Bill the DRAM materialization through the DMS model. WriteTiming
		// uses Write's exact formula without throwaway destination buffers.
		tc.AddTransfer(tc.Ctx.DMS.WriteTiming(len(staged), n, 8))
	}
	s.mu.Lock()
	for c := range s.bufs {
		s.bufs[c] = append(s.bufs[c], staged[c]...)
	}
	s.rows += n
	s.mu.Unlock()
	return nil
}

func (s *CollectSink) Close(tc *qef.TaskCtx) error { return nil }

// Rows returns the number of collected rows.
func (s *CollectSink) Rows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// Relation materializes the collected result.
func (s *CollectSink) Relation() *Relation {
	s.mu.Lock()
	defer s.mu.Unlock()
	cols := make([]Col, len(s.OutCols))
	for i, c := range s.OutCols {
		cols[i] = c
		cols[i].Data = coltypes.I64(s.bufs[i])
	}
	return MustRelation(cols)
}

// CountSink counts qualifying rows without materializing them (used by
// micro-benchmarks and COUNT(*) fast paths).
type CountSink struct {
	mu   sync.Mutex
	rows int64
}

func (s *CountSink) DMEMSize(int) int            { return 0 }
func (s *CountSink) Open(tc *qef.TaskCtx) error  { return nil }
func (s *CountSink) Close(tc *qef.TaskCtx) error { return nil }

func (s *CountSink) Produce(tc *qef.TaskCtx, t *qef.Tile) error {
	n := t.QualifyingRows()
	s.mu.Lock()
	s.rows += int64(n)
	s.mu.Unlock()
	return nil
}

// Rows returns the counted rows.
func (s *CountSink) Rows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}
