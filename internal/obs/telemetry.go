package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// TelemetryServer exposes a Registry over HTTP while the engine runs:
// GET /metrics serves the Prometheus text exposition, GET /healthz a
// liveness probe. The server is opt-in (nothing listens unless asked) and
// reads the registry through the same synchronized snapshot path queries
// write through, so scraping during a query storm is race-free.
type TelemetryServer struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// ServeTelemetry starts a telemetry server for reg on addr (host:port;
// port 0 picks a free port — use Addr to discover it). The server runs in
// a background goroutine until Close.
func ServeTelemetry(addr string, reg *Registry) (*TelemetryServer, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: telemetry needs a registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	t := &TelemetryServer{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	t.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = t.srv.Serve(ln) }()
	return t, nil
}

func (t *TelemetryServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PrometheusContentType)
	// Render to a buffer first so a slow client cannot hold the registry
	// lock, and a write error cannot emit a torn exposition.
	body := t.reg.RenderPrometheus()
	_, _ = w.Write([]byte(body))
}

// Addr returns the bound listen address (resolves port 0).
func (t *TelemetryServer) Addr() string { return t.ln.Addr().String() }

// URL returns the scrape URL of the metrics endpoint.
func (t *TelemetryServer) URL() string { return "http://" + t.Addr() + "/metrics" }

// Close stops the listener and in-flight handlers.
func (t *TelemetryServer) Close() error { return t.srv.Close() }
