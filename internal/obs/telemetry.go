package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// TelemetryServer exposes the observability surface over HTTP while the
// engine runs: GET /metrics serves the Prometheus text exposition,
// GET /debug/queries the live active-query table plus recent journal
// records as JSON, GET /healthz a liveness probe, and (when enabled)
// /debug/pprof/* the Go runtime profiles. The server is opt-in (nothing
// listens unless asked) and reads registry/journal/active-set state through
// the same synchronized snapshot paths queries write through, so scraping
// during a query storm is race-free.
type TelemetryServer struct {
	cfg TelemetryConfig
	ln  net.Listener
	srv *http.Server
}

// TelemetryConfig selects what a telemetry server exposes. Registry is
// required; Active and Journal light up /debug/queries; EnablePprof gates
// the net/http/pprof handlers (off by default — heap and CPU profiles leak
// more than metrics do, so exposing them is an explicit choice).
type TelemetryConfig struct {
	Registry    *Registry
	Active      *ActiveSet
	Journal     *Journal
	EnablePprof bool
}

// ServeTelemetry starts a metrics-only telemetry server for reg on addr
// (host:port; port 0 picks a free port — use Addr to discover it). The
// server runs in a background goroutine until Close.
func ServeTelemetry(addr string, reg *Registry) (*TelemetryServer, error) {
	return ServeTelemetryWith(addr, TelemetryConfig{Registry: reg})
}

// ServeTelemetryWith starts a telemetry server with the full configured
// surface.
func ServeTelemetryWith(addr string, cfg TelemetryConfig) (*TelemetryServer, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("obs: telemetry needs a registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	t := &TelemetryServer{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.handleMetrics)
	mux.HandleFunc("/debug/queries", t.handleQueries)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	t.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = t.srv.Serve(ln) }()
	return t, nil
}

func (t *TelemetryServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PrometheusContentType)
	// Render to a buffer first so a slow client cannot hold the registry
	// lock, and a write error cannot emit a torn exposition.
	body := t.cfg.Registry.RenderPrometheus()
	_, _ = w.Write([]byte(body))
}

// QueriesSnapshot is the /debug/queries response body.
type QueriesSnapshot struct {
	Active  []ActiveQuery `json:"active"`
	Journal struct {
		Total    int64 `json:"total"`
		OK       int64 `json:"ok"`
		Shed     int64 `json:"shed"`
		Canceled int64 `json:"canceled"`
		Error    int64 `json:"error"`
		Slow     int64 `json:"slow"`
	} `json:"journal"`
	Recent []QueryRecord `json:"recent"` // newest-last tail of the journal
}

// recentTail bounds the journal tail returned by /debug/queries.
const recentTail = 32

func (t *TelemetryServer) handleQueries(w http.ResponseWriter, _ *http.Request) {
	var snap QueriesSnapshot
	snap.Active = t.cfg.Active.Snapshot()
	if snap.Active == nil {
		snap.Active = []ActiveQuery{}
	}
	snap.Recent = t.cfg.Journal.Tail(recentTail)
	if snap.Recent == nil {
		snap.Recent = []QueryRecord{}
	}
	snap.Journal.Total = t.cfg.Journal.Total()
	snap.Journal.OK = t.cfg.Journal.OutcomeCount(OutcomeOK)
	snap.Journal.Shed = t.cfg.Journal.OutcomeCount(OutcomeShed)
	snap.Journal.Canceled = t.cfg.Journal.OutcomeCount(OutcomeCanceled)
	snap.Journal.Error = t.cfg.Journal.OutcomeCount(OutcomeError)
	snap.Journal.Slow = t.cfg.Journal.SlowCount()
	body, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(body, '\n'))
}

// Addr returns the bound listen address (resolves port 0).
func (t *TelemetryServer) Addr() string { return t.ln.Addr().String() }

// URL returns the scrape URL of the metrics endpoint.
func (t *TelemetryServer) URL() string { return "http://" + t.Addr() + "/metrics" }

// Close stops the listener and in-flight handlers.
func (t *TelemetryServer) Close() error { return t.srv.Close() }
