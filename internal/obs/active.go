package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Live query introspection: an ActiveSet tracks every in-flight query from
// issue to completion. It is also the QueryID authority — hostdb and the
// cluster tray draw IDs from the same set, so a fleet has one ID space. The
// set is a reusable slot slab with a free list (no per-query map churn); a
// registration hands back a handle that writes phase updates and deregisters
// on Done.

// ActiveQuery is a point-in-time view of one in-flight query.
type ActiveQuery struct {
	ID      uint64        `json:"id"`
	SQL     string        `json:"sql"`
	Mode    string        `json:"mode"`  // requested engine: "auto", "host", "x86", "dpu"
	Nodes   int           `json:"nodes"` // tray fan-out; 1 for single-SoC
	Phase   string        `json:"phase"` // "queued", "executing", "merging", ...
	Elapsed time.Duration `json:"elapsed_ns"`
}

type activeSlot struct {
	inUse  bool
	id     uint64
	sql    string
	mode   string
	nodes  int
	phase  string
	start  time.Time
	cancel context.CancelFunc
}

// ActiveSet tracks in-flight queries and allocates QueryIDs.
type ActiveSet struct {
	mu     sync.Mutex
	nextID uint64
	slots  []activeSlot
	free   []int // indexes of unused slots
	inUse  int
}

// NewActiveSet returns an empty set.
func NewActiveSet() *ActiveSet { return &ActiveSet{} }

// NextID allocates the next QueryID (monotonic from 1). Nil-safe.
func (s *ActiveSet) NextID() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return id
}

// ActiveHandle refers to one registered query. The zero handle is inert, so
// callers on a nil set can use it unconditionally.
type ActiveHandle struct {
	set  *ActiveSet
	slot int
	id   uint64
}

// Register adds a query to the set. The SQL is truncated like journal
// records; cancel (optional) is invoked by Cancel(id). Returns an inert
// handle on a nil set.
func (s *ActiveSet) Register(id uint64, sql, mode string, nodes int, cancel context.CancelFunc) ActiveHandle {
	if s == nil {
		return ActiveHandle{}
	}
	if len(sql) > maxJournalSQL {
		sql = sql[:maxJournalSQL]
	}
	s.mu.Lock()
	var idx int
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, activeSlot{})
		idx = len(s.slots) - 1
	}
	s.slots[idx] = activeSlot{
		inUse: true, id: id, sql: sql, mode: mode, nodes: nodes,
		phase: "issued", start: time.Now(), cancel: cancel,
	}
	s.inUse++
	s.mu.Unlock()
	return ActiveHandle{set: s, slot: idx, id: id}
}

// SetPhase updates the query's phase label. Inert on the zero handle and
// after Done.
func (h ActiveHandle) SetPhase(phase string) {
	if h.set == nil {
		return
	}
	h.set.mu.Lock()
	if sl := &h.set.slots[h.slot]; sl.inUse && sl.id == h.id {
		sl.phase = phase
	}
	h.set.mu.Unlock()
}

// SetNodes updates the query's node fan-out (the tray knows it only after
// planning). Inert on the zero handle.
func (h ActiveHandle) SetNodes(n int) {
	if h.set == nil {
		return
	}
	h.set.mu.Lock()
	if sl := &h.set.slots[h.slot]; sl.inUse && sl.id == h.id {
		sl.nodes = n
	}
	h.set.mu.Unlock()
}

// ID returns the registered QueryID (0 for the zero handle).
func (h ActiveHandle) ID() uint64 { return h.id }

// Elapsed returns the time since registration (0 for the zero handle or
// after Done).
func (h ActiveHandle) Elapsed() time.Duration {
	if h.set == nil {
		return 0
	}
	h.set.mu.Lock()
	defer h.set.mu.Unlock()
	if sl := &h.set.slots[h.slot]; sl.inUse && sl.id == h.id {
		return time.Since(sl.start)
	}
	return 0
}

// Done removes the query from the set, recycling its slot. Idempotent.
func (h ActiveHandle) Done() {
	if h.set == nil {
		return
	}
	h.set.mu.Lock()
	if sl := &h.set.slots[h.slot]; sl.inUse && sl.id == h.id {
		*sl = activeSlot{}
		h.set.free = append(h.set.free, h.slot)
		h.set.inUse--
	}
	h.set.mu.Unlock()
}

// Len returns the number of in-flight queries.
func (s *ActiveSet) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// Snapshot returns the in-flight queries sorted by ID (issue order).
func (s *ActiveSet) Snapshot() []ActiveQuery {
	if s == nil {
		return nil
	}
	now := time.Now()
	s.mu.Lock()
	out := make([]ActiveQuery, 0, s.inUse)
	for i := range s.slots {
		sl := &s.slots[i]
		if !sl.inUse {
			continue
		}
		out = append(out, ActiveQuery{
			ID: sl.id, SQL: sl.sql, Mode: sl.mode, Nodes: sl.nodes,
			Phase: sl.phase, Elapsed: now.Sub(sl.start),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel invokes the registered cancel function of query id. Returns false
// when the id is not in flight or was registered without a cancel function.
func (s *ActiveSet) Cancel(id uint64) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	var cancel context.CancelFunc
	for i := range s.slots {
		if sl := &s.slots[i]; sl.inUse && sl.id == id {
			cancel = sl.cancel
			break
		}
	}
	s.mu.Unlock()
	if cancel == nil {
		return false
	}
	cancel()
	return true
}
