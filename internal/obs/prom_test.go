package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a strict reader of the text format used for the
// round-trip tests: it returns sample values by series name (label sets
// folded into the name) and the TYPE declarations, and errors on anything
// malformed — duplicate TYPE lines, samples before their TYPE, unparseable
// values, or non-monotonic histogram buckets.
func parseExposition(text string) (samples map[string]float64, types map[string]string, err error) {
	samples = make(map[string]float64)
	types = make(map[string]string)
	current := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		fail := func(msg string) error { return fmt.Errorf("line %d (%q): %s", ln+1, line, msg) }
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				return nil, nil, fail("malformed HELP")
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				return nil, nil, fail("malformed TYPE")
			}
			name, typ := parts[0], parts[1]
			if _, dup := types[name]; dup {
				return nil, nil, fail("duplicate TYPE for " + name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, nil, fail("unknown type " + typ)
			}
			types[name] = typ
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, nil, fail("unknown comment")
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, nil, fail("no value")
		}
		series, valStr := line[:sp], line[sp+1:]
		val, perr := strconv.ParseFloat(valStr, 64)
		if perr != nil {
			return nil, nil, fail("bad value: " + perr.Error())
		}
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(base, "_sum"), "_count")
		if types[base] == "histogram" {
			base += "?" // histogram child series belong to the parent TYPE
		}
		if current == "" || !strings.HasPrefix(series, strings.TrimSuffix(current, "?")) {
			return nil, nil, fail("sample outside its TYPE block")
		}
		if _, dup := samples[series]; dup {
			return nil, nil, fail("duplicate series " + series)
		}
		samples[series] = val
	}
	return samples, types, nil
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("hostdb_queries_total").Add(42)
	r.Gauge("hostdb_checkpoint_lag_entries").Set(-3)
	h := r.Histogram("hostdb_query_seconds", 0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	text := r.RenderPrometheus()
	samples, types, err := parseExposition(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if types["hostdb_queries_total"] != "counter" || types["hostdb_checkpoint_lag_entries"] != "gauge" || types["hostdb_query_seconds"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	if samples["hostdb_queries_total"] != 42 || samples["hostdb_checkpoint_lag_entries"] != -3 {
		t.Fatalf("scalar samples wrong: %v", samples)
	}
	// Histogram: cumulative buckets, monotone, +Inf == count.
	buckets := []struct {
		le   string
		want float64
	}{{"0.01", 1}, {"0.1", 3}, {"1", 4}, {"+Inf", 5}}
	for _, b := range buckets {
		series := fmt.Sprintf("hostdb_query_seconds_bucket{le=%q}", b.le)
		if got := samples[series]; got != b.want {
			t.Errorf("%s = %v, want %v", series, got, b.want)
		}
	}
	if samples["hostdb_query_seconds_count"] != 5 {
		t.Errorf("count = %v", samples["hostdb_query_seconds_count"])
	}
	if got, want := samples["hostdb_query_seconds_sum"], 0.005+0.05+0.05+0.5+5; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Standard names carry HELP text.
	if !strings.Contains(text, "# HELP hostdb_queries_total ") {
		t.Error("missing HELP for standard metric")
	}
	// Rendering twice is byte-identical (deterministic order).
	if again := r.RenderPrometheus(); again != text {
		t.Error("rendering is not deterministic")
	}
}

func TestPrometheusNoDuplicateNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(0.2)
	r.Counter("a_total").Inc() // same metric again must not re-render
	if _, _, err := parseExposition(r.RenderPrometheus()); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"good_name":   "good_name",
		"ns:sub":      "ns:sub",
		"bad name-1":  "bad_name_1",
		"0starts_bad": "_starts_bad",
		"":            "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTelemetryServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hostdb_queries_total").Add(7)
	srv, err := ServeTelemetry("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Concurrent scrapes while writers bump metrics: must stay valid.
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r.Counter("hostdb_queries_total").Inc()
				r.Histogram("hostdb_query_seconds").Observe(0.001)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(srv.URL())
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
					errCh <- fmt.Errorf("content type %q", ct)
					return
				}
				if _, _, err := parseExposition(string(body)); err != nil {
					errCh <- fmt.Errorf("mid-storm exposition invalid: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
