package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: profiles rendered as the JSON array format
// understood by chrome://tracing and ui.perfetto.dev. Each query becomes a
// process (pid), each core a thread (tid), and each operator span a
// complete ("X") event on every core it ran on, with the span's counters
// and activity energy in args. The engine records per-span per-core
// aggregates rather than wall-clock intervals, so events within a core are
// laid out sequentially in producer-to-consumer order — lane lengths and
// proportions are exact, start offsets are synthetic.

type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	ID    int            `json:"id,omitempty"` // flow-event binding ("s"/"f" pairs)
	BP    string         `json:"bp,omitempty"` // flow binding point ("e" = enclosing slice)
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	TsUS  float64        `json:"ts"`
	DurUS *float64       `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceBuilder accumulates queries into one Chrome trace.
type TraceBuilder struct {
	events   []traceEvent
	nextPid  int
	nextFlow int
}

// NewTraceBuilder returns an empty trace.
func NewTraceBuilder() *TraceBuilder { return &TraceBuilder{nextPid: 1, nextFlow: 1} }

// Empty reports whether no query has been added.
func (b *TraceBuilder) Empty() bool { return b == nil || len(b.events) == 0 }

func meta(name string, pid, tid int, key, val string) traceEvent {
	return traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{key: val}}
}

// AddQuery renders one profile as a new process in the trace. A nil or
// empty profile adds nothing.
func (b *TraceBuilder) AddQuery(name string, p *Profile) {
	if b == nil || p == nil || len(p.Defs) == 0 {
		return
	}
	pid := b.nextPid
	b.nextPid++
	label := fmt.Sprintf("%s (%s)", name, p.Mode)
	b.events = append(b.events, meta("process_name", pid, 0, "name", label))

	var rep EnergyReport
	if p.isDPU() {
		rep = p.Energy(defaultEnergyModel())
	}

	// Per-core cursor: each core's spans are laid end to end. Iterate defs
	// in reverse so producers (sources) come before their consumers — the
	// compiler emits consumer-before-producer.
	cursor := make([]float64, p.Cores)
	coresUsed := make([]bool, p.Cores)
	for i := len(p.Defs) - 1; i >= 0; i-- {
		d := p.Defs[i]
		s := p.spans[i]
		for core := 0; core < p.Cores; core++ {
			var durSec float64
			if p.isDPU() {
				durSec = float64(s.cycles[core]) / p.FreqHz
				if dms := s.readSec[core] + s.writeSec[core]; dms > durSec {
					durSec = dms
				}
			} else {
				durSec = float64(s.wallNs[core]) / 1e9
			}
			active := durSec > 0 || s.rowsIn[core] != 0 || s.rowsOut[core] != 0
			if !active {
				continue
			}
			coresUsed[core] = true
			args := map[string]any{
				"cycles":          s.cycles[core],
				"rows_in":         s.rowsIn[core],
				"rows_out":        s.rowsOut[core],
				"dms_read_bytes":  s.readBytes[core],
				"dms_write_bytes": s.writeBytes[core],
			}
			if d.Detail != "" {
				args["detail"] = d.Detail
			}
			if p.isDPU() {
				cfj, rfj, wfj := rep.Model.ActivityFJ(s.cycles[core], s.readBytes[core], s.writeBytes[core])
				args["energy_uj"] = fjJoules(cfj+rfj+wfj) * 1e6
			}
			dur := durSec * 1e6
			b.events = append(b.events, traceEvent{
				Name: d.Name, Cat: string(d.Kind), Ph: "X",
				Pid: pid, Tid: core, TsUS: cursor[core], DurUS: &dur,
				Args: args,
			})
			cursor[core] += durSec * 1e6
		}
	}
	for core, used := range coresUsed {
		if used {
			b.events = append(b.events, meta("thread_name", pid, core, "name", fmt.Sprintf("core %d", core)))
		}
	}
}

// Render writes the accumulated trace as Chrome trace-event JSON
// ({"traceEvents": [...]}, loadable in chrome://tracing and Perfetto).
func (b *TraceBuilder) Render(w io.Writer) error {
	events := b.events
	if events == nil {
		events = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// JSON renders the trace to a byte slice.
func (b *TraceBuilder) JSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := b.Render(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ChromeTrace renders this single profile as a standalone trace.
func (p *Profile) ChromeTrace(name string) ([]byte, error) {
	b := NewTraceBuilder()
	b.AddQuery(name, p)
	return b.JSON()
}
