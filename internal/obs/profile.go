// Package obs is the engine observability layer: per-query profiles with
// per-operator attribution of dpCore cycles, DMS transfers and row flow
// (the decomposition behind the paper's §7 per-kernel evaluation), plus an
// engine-wide metrics registry of counters and gauges.
//
// A Profile is created per query execution from the compiler's operator
// span definitions. During execution the QEF attributes accounting deltas
// to the currently-active span; after execution the whole-query totals are
// frozen in, and CheckInvariants verifies that the decomposition exactly
// reconciles with them — per core for cycles, per direction for DMS bytes.
package obs

import (
	"fmt"
	"math"
)

// SpanKind is a coarse operator category, used by the Chrome-trace export
// for event categories (filterable in Perfetto) and by telemetry rollups.
type SpanKind string

const (
	// KindSource covers operators whose cost is dominated by DMS traffic
	// (table scans, stream re-reads).
	KindSource SpanKind = "source"
	// KindPipeline covers per-tile streaming operators (filter, project,
	// pipelined aggregation endpoints).
	KindPipeline SpanKind = "pipeline"
	// KindBlocking covers materializing operators (joins, sorts,
	// partitioned group-by, set operations).
	KindBlocking SpanKind = "blocking"
)

// SpanDef is one operator span declared at plan time: a stable operator ID,
// its parent in the data-flow tree (-1 for the root) and display metadata.
type SpanDef struct {
	ID     int      `json:"id"`
	Parent int      `json:"parent"`
	Name   string   `json:"name"`
	Detail string   `json:"detail,omitempty"`
	Kind   SpanKind `json:"kind,omitempty"`
	// Conserves marks a row-conservation contract: this operator's rows-in
	// must equal the summed rows-out of its children in the span tree.
	Conserves bool `json:"conserves,omitempty"`
}

// OpSpan accumulates one operator's measurements. Storage is per core so
// concurrent work units never contend: core w writes only slot w, and the
// orchestrator (which runs strictly between parallel phases) uses slot 0.
// All methods are nil-receiver safe so call sites need no profiling checks.
type OpSpan struct {
	cycles     []int64
	wallNs     []int64
	readBytes  []int64
	writeBytes []int64
	readSec    []float64
	writeSec   []float64
	rowsIn     []int64
	rowsOut    []int64
	tilesIn    []int64
	tilesOut   []int64

	// Zone-map scan accounting, in storage-chunk granularity (the accessor
	// may sub-tile a chunk under DMEM degradation, so chunks — not accessor
	// tiles — are the stable unit). chunksTotal/chunksPruned are written by
	// the orchestrator (slot 0); chunksScanned is ticked per work unit on its
	// core. Invariant: pruned + scanned == total per span.
	chunksTotal   []int64
	chunksPruned  []int64
	chunksScanned []int64
}

func newOpSpan(cores int) *OpSpan {
	return &OpSpan{
		cycles:        make([]int64, cores),
		wallNs:        make([]int64, cores),
		readBytes:     make([]int64, cores),
		writeBytes:    make([]int64, cores),
		readSec:       make([]float64, cores),
		writeSec:      make([]float64, cores),
		rowsIn:        make([]int64, cores),
		rowsOut:       make([]int64, cores),
		tilesIn:       make([]int64, cores),
		tilesOut:      make([]int64, cores),
		chunksTotal:   make([]int64, cores),
		chunksPruned:  make([]int64, cores),
		chunksScanned: make([]int64, cores),
	}
}

// AddCycles attributes a dpCore cycle delta measured on the given core.
func (s *OpSpan) AddCycles(core int, cy int64) {
	if s == nil {
		return
	}
	s.cycles[core] += cy
}

// AddWallNs attributes native wall time (ModeX86) measured on a worker.
func (s *OpSpan) AddWallNs(core int, ns int64) {
	if s == nil {
		return
	}
	s.wallNs[core] += ns
}

// AddTransfer attributes one DMS operation.
func (s *OpSpan) AddTransfer(core int, write bool, bytes int64, sec float64) {
	if s == nil {
		return
	}
	if write {
		s.writeBytes[core] += bytes
		s.writeSec[core] += sec
	} else {
		s.readBytes[core] += bytes
		s.readSec[core] += sec
	}
}

// TickIn counts one tile of rows entering the operator.
func (s *OpSpan) TickIn(core int, rows int64) {
	if s == nil {
		return
	}
	s.rowsIn[core] += rows
	s.tilesIn[core]++
}

// TickOut counts one tile of rows leaving the operator.
func (s *OpSpan) TickOut(core int, rows int64) {
	if s == nil {
		return
	}
	s.rowsOut[core] += rows
	s.tilesOut[core]++
}

// AddTilesTotal records the scan's total chunk (zone-map tile) count,
// orchestrator-side before fan-out.
func (s *OpSpan) AddTilesTotal(n int64) {
	if s == nil {
		return
	}
	s.chunksTotal[0] += n
}

// AddTilesPruned records chunks skipped by zone-map pruning,
// orchestrator-side before fan-out.
func (s *OpSpan) AddTilesPruned(n int64) {
	if s == nil {
		return
	}
	s.chunksPruned[0] += n
}

// TickTileScanned counts one chunk actually scanned, on its core.
func (s *OpSpan) TickTileScanned(core int) {
	if s == nil {
		return
	}
	s.chunksScanned[core]++
}

// AddRowsIn counts materialized input rows (orchestrator-side, no tile).
func (s *OpSpan) AddRowsIn(rows int64) {
	if s == nil {
		return
	}
	s.rowsIn[0] += rows
}

// AddRowsOut counts materialized output rows (orchestrator-side, no tile).
func (s *OpSpan) AddRowsOut(rows int64) {
	if s == nil {
		return
	}
	s.rowsOut[0] += rows
}

func sum64(v []int64) int64 {
	var t int64
	for _, x := range v {
		t += x
	}
	return t
}

func sumF(v []float64) float64 {
	var t float64
	for _, x := range v {
		t += x
	}
	return t
}

// Cycles returns the span's total attributed cycles.
func (s *OpSpan) Cycles() int64 { return sum64(s.cycles) }

// WallNs returns the span's total attributed native nanoseconds.
func (s *OpSpan) WallNs() int64 { return sum64(s.wallNs) }

// ReadBytes returns total DMS read bytes attributed to the span.
func (s *OpSpan) ReadBytes() int64 { return sum64(s.readBytes) }

// WriteBytes returns total DMS write bytes attributed to the span.
func (s *OpSpan) WriteBytes() int64 { return sum64(s.writeBytes) }

// ReadSeconds returns total DMS read seconds attributed to the span.
func (s *OpSpan) ReadSeconds() float64 { return sumF(s.readSec) }

// WriteSeconds returns total DMS write seconds attributed to the span.
func (s *OpSpan) WriteSeconds() float64 { return sumF(s.writeSec) }

// RowsIn returns total input rows.
func (s *OpSpan) RowsIn() int64 { return sum64(s.rowsIn) }

// RowsOut returns total output rows.
func (s *OpSpan) RowsOut() int64 { return sum64(s.rowsOut) }

// TilesIn returns total input tiles.
func (s *OpSpan) TilesIn() int64 { return sum64(s.tilesIn) }

// TilesOut returns total output tiles.
func (s *OpSpan) TilesOut() int64 { return sum64(s.tilesOut) }

// TilesTotal returns the span's total scannable chunks (zero for non-scan
// spans).
func (s *OpSpan) TilesTotal() int64 { return sum64(s.chunksTotal) }

// TilesPruned returns chunks the span skipped via zone maps.
func (s *OpSpan) TilesPruned() int64 { return sum64(s.chunksPruned) }

// TilesScanned returns chunks the span actually scanned.
func (s *OpSpan) TilesScanned() int64 { return sum64(s.chunksScanned) }

// Totals are the whole-query counters frozen into a profile after
// execution; CheckInvariants reconciles the spans against them.
type Totals struct {
	WallSeconds float64
	// QueueWaitSeconds is time the query spent in the scheduler's admission
	// queue before execution began (zero when unscheduled or admitted
	// immediately).
	QueueWaitSeconds float64
	SimSeconds       float64
	BusReadSeconds   float64
	BusWriteSeconds  float64
	CoreCycles       []int64 // per-core counter deltas for the query
	DMSReadBytes     int64
	DMSWriteBytes    int64
	DMSReadSeconds   float64
	DMSWriteSeconds  float64
}

// Profile is the per-query observability record: the span tree plus the
// whole-query totals.
type Profile struct {
	Mode  string
	Cores int
	// FreqHz is the dpCore clock the cycle counters were measured at; it
	// converts span cycles to time for the trace export. Zero (ModeX86)
	// means wall time carries the timing instead.
	FreqHz float64
	Defs   []SpanDef

	spans []*OpSpan

	// adapted records a runtime plan adaptation (e.g. the §5.4 group-by
	// overflow fallback): parts of the plan re-executed, so row-conservation
	// edges are no longer exact. Cycle and byte conservation still hold.
	adapted bool

	finalized bool
	totals    Totals

	// cacheNote is the query cache interaction ("miss", "stale", ...) for
	// the EXPLAIN ANALYZE `cache:` line; hits never carry a profile (no
	// execution happened), so hit notes ride on QueryResult.ProfileNote.
	cacheNote string
}

// SetCacheNote records the result-cache interaction for Format's `cache:`
// line. Safe to call after Finalize (display-only state).
func (p *Profile) SetCacheNote(status string) { p.cacheNote = status }

// NewProfile allocates a profile with one span per definition. Span slot
// storage is preallocated here — the per-tile execution path only does
// arithmetic on it.
func NewProfile(mode string, cores int, freqHz float64, defs []SpanDef) *Profile {
	p := &Profile{Mode: mode, Cores: cores, FreqHz: freqHz, Defs: defs}
	p.spans = make([]*OpSpan, len(defs))
	for i := range p.spans {
		p.spans[i] = newOpSpan(cores)
	}
	return p
}

// Span returns the span for an operator ID; nil for out-of-range IDs or a
// nil profile, so callers can thread "profiling off" without checks.
func (p *Profile) Span(id int) *OpSpan {
	if p == nil || id < 0 || id >= len(p.spans) {
		return nil
	}
	return p.spans[id]
}

// MarkAdapted records a runtime plan adaptation (relaxes row invariants).
func (p *Profile) MarkAdapted() {
	if p != nil {
		p.adapted = true
	}
}

// Adapted reports whether the plan adapted at runtime.
func (p *Profile) Adapted() bool { return p != nil && p.adapted }

// Finalize freezes the whole-query totals into the profile.
func (p *Profile) Finalize(t Totals) {
	if p == nil {
		return
	}
	p.totals = t
	p.finalized = true
}

// Totals returns the frozen whole-query totals.
func (p *Profile) Totals() Totals { return p.totals }

// TotalCycles returns the whole-query cycle total (sum over cores).
func (p *Profile) TotalCycles() int64 { return sum64(p.totals.CoreCycles) }

// TilesTotal returns the query-wide scannable chunk count over all spans.
func (p *Profile) TilesTotal() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, s := range p.spans {
		n += s.TilesTotal()
	}
	return n
}

// TilesPruned returns the query-wide zone-pruned chunk count over all spans.
func (p *Profile) TilesPruned() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, s := range p.spans {
		n += s.TilesPruned()
	}
	return n
}

// TilesScanned returns the query-wide scanned chunk count over all spans.
func (p *Profile) TilesScanned() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, s := range p.spans {
		n += s.TilesScanned()
	}
	return n
}

// CheckInvariants verifies that the per-operator decomposition exactly
// reconciles with the whole-query totals:
//
//  1. per core, operator cycle spans sum to that core's cycle delta;
//  2. per direction, span DMS bytes sum to the engine's transfer totals
//     (and span seconds to the bus occupancy, within float tolerance);
//  3. the simulated elapsed time is at least the bus occupancy of the
//     busier direction;
//  4. along every conserving data-flow edge, parent rows-in equals the
//     summed rows-out of its children (skipped after a runtime plan
//     adaptation, which re-executes part of the stream);
//  5. per scan span, zone-pruned plus scanned chunks equal the scan's total
//     chunks — no tile silently disappears and no tile is double-counted
//     (also skipped after a plan adaptation, which aborts a scan mid-stream
//     before re-executing it).
func (p *Profile) CheckInvariants() error {
	if p == nil {
		return nil
	}
	if !p.finalized {
		return fmt.Errorf("obs: profile not finalized")
	}
	// 1. Per-core cycle conservation (exact integer equality).
	for core := 0; core < p.Cores; core++ {
		var spanSum int64
		for _, s := range p.spans {
			spanSum += s.cycles[core]
		}
		var want int64
		if core < len(p.totals.CoreCycles) {
			want = p.totals.CoreCycles[core]
		}
		if spanSum != want {
			return fmt.Errorf("obs: core %d cycle spans sum to %d, core counter delta is %d", core, spanSum, want)
		}
	}
	// 2. Per-direction DMS byte conservation (exact integer equality).
	var rdB, wrB int64
	var rdS, wrS float64
	for _, s := range p.spans {
		rdB += s.ReadBytes()
		wrB += s.WriteBytes()
		rdS += s.ReadSeconds()
		wrS += s.WriteSeconds()
	}
	if rdB != p.totals.DMSReadBytes {
		return fmt.Errorf("obs: span DMS read bytes sum to %d, engine total is %d", rdB, p.totals.DMSReadBytes)
	}
	if wrB != p.totals.DMSWriteBytes {
		return fmt.Errorf("obs: span DMS write bytes sum to %d, engine total is %d", wrB, p.totals.DMSWriteBytes)
	}
	// Seconds are float sums in different orders; allow relative drift.
	if !closeEnough(rdS, p.totals.DMSReadSeconds) {
		return fmt.Errorf("obs: span DMS read seconds sum to %g, engine total is %g", rdS, p.totals.DMSReadSeconds)
	}
	if !closeEnough(wrS, p.totals.DMSWriteSeconds) {
		return fmt.Errorf("obs: span DMS write seconds sum to %g, engine total is %g", wrS, p.totals.DMSWriteSeconds)
	}
	// 3. Elapsed-time lower bound: the serialized DDR bus.
	maxBus := p.totals.BusReadSeconds
	if p.totals.BusWriteSeconds > maxBus {
		maxBus = p.totals.BusWriteSeconds
	}
	if p.totals.SimSeconds < maxBus*(1-1e-9) {
		return fmt.Errorf("obs: SimElapsed %g below bus occupancy %g", p.totals.SimSeconds, maxBus)
	}
	// 4. Row conservation along declared edges.
	if !p.adapted {
		for _, d := range p.Defs {
			if !d.Conserves {
				continue
			}
			var childOut int64
			children := 0
			for _, c := range p.Defs {
				if c.Parent == d.ID {
					childOut += p.spans[c.ID].RowsOut()
					children++
				}
			}
			if children == 0 {
				continue
			}
			if in := p.spans[d.ID].RowsIn(); in != childOut {
				return fmt.Errorf("obs: operator %d (%s) rows-in %d != children rows-out %d", d.ID, d.Name, in, childOut)
			}
		}
	}
	// 5. Zone-map pruning accounting: pruned + scanned == total per span.
	if !p.adapted {
		for i, s := range p.spans {
			total := s.TilesTotal()
			if total == 0 && s.TilesPruned() == 0 && s.TilesScanned() == 0 {
				continue
			}
			if got := s.TilesPruned() + s.TilesScanned(); got != total {
				name := ""
				if i < len(p.Defs) {
					name = p.Defs[i].Name
				}
				return fmt.Errorf("obs: operator %d (%s) pruned %d + scanned %d != total tiles %d",
					i, name, s.TilesPruned(), s.TilesScanned(), total)
			}
		}
	}
	return nil
}

func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale+1e-15
}

// isDPU reports whether the profile carries the DPU cycle/transfer model
// (the only mode the activity-energy model applies to).
func (p *Profile) isDPU() bool { return p != nil && p.Mode == "dpu" }

// SpanSummary is the JSON-friendly rendering of one operator span.
type SpanSummary struct {
	ID           int      `json:"id"`
	Parent       int      `json:"parent"`
	Name         string   `json:"name"`
	Detail       string   `json:"detail,omitempty"`
	Kind         SpanKind `json:"kind,omitempty"`
	EnergyUJ     float64  `json:"energy_uj,omitempty"`
	Cycles       int64    `json:"cycles"`
	WallMs       float64  `json:"wall_ms"`
	ReadBytes    int64    `json:"dms_read_bytes"`
	WriteBytes   int64    `json:"dms_write_bytes"`
	ReadSeconds  float64  `json:"dms_read_seconds"`
	WriteSeconds float64  `json:"dms_write_seconds"`
	RowsIn       int64    `json:"rows_in"`
	RowsOut      int64    `json:"rows_out"`
	TilesIn      int64    `json:"tiles_in"`
	TilesOut     int64    `json:"tiles_out"`
	TilesTotal   int64    `json:"tiles_total,omitempty"`
	TilesPruned  int64    `json:"tiles_pruned,omitempty"`
	TilesScanned int64    `json:"tiles_scanned,omitempty"`
}

// EnergySummary is the JSON rendering of a query's activity energy.
type EnergySummary struct {
	CoreJoules     float64 `json:"core_joules"`
	DMSReadJoules  float64 `json:"dms_read_joules"`
	DMSWriteJoules float64 `json:"dms_write_joules"`
	IdleJoules     float64 `json:"idle_joules"`
	TotalJoules    float64 `json:"total_joules"`
	// ProvisionedJoules is the §7.4 provisioned-power energy of the same
	// interval — the bound TotalJoules stays within.
	ProvisionedJoules float64 `json:"provisioned_joules"`
	JoulesPerRow      float64 `json:"joules_per_row,omitempty"`
}

// Summary is the JSON-friendly rendering of a whole profile.
type Summary struct {
	Mode             string         `json:"mode"`
	Adapted          bool           `json:"adapted,omitempty"`
	WallSeconds      float64        `json:"wall_seconds"`
	QueueWaitSeconds float64        `json:"queue_wait_seconds,omitempty"`
	SimSeconds       float64        `json:"sim_seconds"`
	BusReadSeconds   float64        `json:"bus_read_seconds"`
	BusWriteSeconds  float64        `json:"bus_write_seconds"`
	TotalCycles      int64          `json:"total_cycles"`
	DMSReadBytes     int64          `json:"dms_read_bytes"`
	DMSWriteBytes    int64          `json:"dms_write_bytes"`
	TilesTotal       int64          `json:"tiles_total,omitempty"`
	TilesPruned      int64          `json:"tiles_pruned,omitempty"`
	TilesScanned     int64          `json:"tiles_scanned,omitempty"`
	Energy           *EnergySummary `json:"energy,omitempty"`
	Ops              []SpanSummary  `json:"ops"`
}

// Summary renders the profile for JSON export. DPU profiles include the
// activity-energy decomposition under the default energy model.
func (p *Profile) Summary() Summary {
	if p == nil {
		return Summary{}
	}
	out := Summary{
		Mode:             p.Mode,
		Adapted:          p.adapted,
		WallSeconds:      p.totals.WallSeconds,
		QueueWaitSeconds: p.totals.QueueWaitSeconds,
		SimSeconds:       p.totals.SimSeconds,
		BusReadSeconds:   p.totals.BusReadSeconds,
		BusWriteSeconds:  p.totals.BusWriteSeconds,
		TotalCycles:      p.TotalCycles(),
		DMSReadBytes:     p.totals.DMSReadBytes,
		DMSWriteBytes:    p.totals.DMSWriteBytes,
		TilesTotal:       p.TilesTotal(),
		TilesPruned:      p.TilesPruned(),
		TilesScanned:     p.TilesScanned(),
	}
	var rep EnergyReport
	if p.isDPU() {
		rep = p.Energy(defaultEnergyModel())
		out.Energy = &EnergySummary{
			CoreJoules:        fjJoules(rep.Query.CoreFJ),
			DMSReadJoules:     fjJoules(rep.Query.DMSReadFJ),
			DMSWriteJoules:    fjJoules(rep.Query.DMSWriteFJ),
			IdleJoules:        rep.Query.IdleJ,
			TotalJoules:       rep.Query.TotalJoules(),
			ProvisionedJoules: rep.ProvisionedJ,
			JoulesPerRow:      rep.JoulesPerRow(),
		}
	}
	for i, d := range p.Defs {
		s := p.spans[i]
		ss := SpanSummary{
			ID: d.ID, Parent: d.Parent, Name: d.Name, Detail: d.Detail, Kind: d.Kind,
			Cycles: s.Cycles(), WallMs: float64(s.WallNs()) / 1e6,
			ReadBytes: s.ReadBytes(), WriteBytes: s.WriteBytes(),
			ReadSeconds: s.ReadSeconds(), WriteSeconds: s.WriteSeconds(),
			RowsIn: s.RowsIn(), RowsOut: s.RowsOut(),
			TilesIn: s.TilesIn(), TilesOut: s.TilesOut(),
			TilesTotal: s.TilesTotal(), TilesPruned: s.TilesPruned(), TilesScanned: s.TilesScanned(),
		}
		if out.Energy != nil {
			ss.EnergyUJ = fjJoules(rep.Spans[i].ActivityFJ()) * 1e6
		}
		out.Ops = append(out.Ops, ss)
	}
	return out
}
