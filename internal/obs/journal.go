package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Query journal: a bounded in-memory ring of structured completion records,
// one per issued query, fleet-wide (the multi-node tray shares the host's
// journal). The ring is a preallocated slab of value-type records — recording
// is a mutex-guarded struct copy, no per-query map churn or allocation — and
// cumulative outcome counters survive ring eviction, so reconciliation against
// the scheduler's admission counters never depends on ring capacity.

// QueryOutcome classifies how a query terminated.
type QueryOutcome int8

const (
	OutcomeOK       QueryOutcome = iota // completed with a result
	OutcomeShed                         // rejected by admission control (ErrOverloaded)
	OutcomeCanceled                     // context canceled or deadline exceeded
	OutcomeError                        // any other error
	numOutcomes
)

func (o QueryOutcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeShed:
		return "shed"
	case OutcomeCanceled:
		return "canceled"
	case OutcomeError:
		return "error"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the outcome as its string form in JSONL exports.
func (o QueryOutcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// UnmarshalJSON parses the string form back, so /debug/queries and JSONL
// consumers can round-trip records.
func (o *QueryOutcome) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "ok":
		*o = OutcomeOK
	case "shed":
		*o = OutcomeShed
	case "canceled":
		*o = OutcomeCanceled
	case "error":
		*o = OutcomeError
	default:
		return fmt.Errorf("obs: unknown query outcome %q", s)
	}
	return nil
}

// maxJournalSQL bounds the SQL text kept per record. Truncation slices the
// incoming string (no copy), so a record never pins more than the caller's
// original allocation.
const maxJournalSQL = 512

// QueryRecord is one journal entry. All fields are plain values; Record
// copies the struct into the ring slab.
type QueryRecord struct {
	ID          uint64       `json:"id"`
	Fingerprint uint64       `json:"fingerprint"`
	SQL         string       `json:"sql"`
	Mode        string       `json:"mode"`  // "host", "x86", "dpu"
	Nodes       int          `json:"nodes"` // tray fan-out; 1 for single-SoC
	Outcome     QueryOutcome `json:"outcome"`
	Error       string       `json:"error,omitempty"`
	Rows        int64        `json:"rows"`
	Cycles      int64        `json:"cycles"`            // total dpCore cycles (DPU offloads)
	EnergyNJ    int64        `json:"energy_nj"`         // activity+idle nanojoules (DPU offloads)
	NetBytes    int64        `json:"net_bytes"`         // exchange bytes moved (tray queries)
	QueueWaitNs int64        `json:"queue_wait_ns"`     // admission queue wait
	WallNs      int64        `json:"wall_ns"`           // end-to-end wall time
	DMEMHighNow int64        `json:"dmem_high_water"`   // max per-core DMEM bytes reserved
	Cache       string       `json:"cache,omitempty"`   // result-cache interaction: hit|miss|stale|bypass ("" = no cache)
	Slow        bool         `json:"slow"`              // WallNs exceeded the slow threshold
	Start       int64        `json:"start_unix_nanos"`  // completion records carry issue time
}

// Journal is the bounded completion ring plus cumulative counters. All
// methods are safe for concurrent use.
type Journal struct {
	mu        sync.Mutex
	ring      []QueryRecord // preallocated slab, len == cap
	next      int           // next write index
	total     int64         // records ever written (>= len when wrapped)
	byOutcome [numOutcomes]int64
	slow      int64
	slowNs    int64 // slow-query threshold; 0 disables
}

// DefJournalCapacity is the default ring size.
const DefJournalCapacity = 1024

// NewJournal returns a journal holding the last capacity records
// (DefJournalCapacity if capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefJournalCapacity
	}
	return &Journal{ring: make([]QueryRecord, capacity)}
}

// SetSlowThreshold marks records whose wall time meets or exceeds d as slow
// (d <= 0 disables). Applies to records written after the call.
func (j *Journal) SetSlowThreshold(d time.Duration) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.slowNs = int64(d)
	j.mu.Unlock()
}

// SlowThreshold returns the current slow-query threshold.
func (j *Journal) SlowThreshold() time.Duration {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return time.Duration(j.slowNs)
}

// Record appends rec to the ring, evicting the oldest entry once full, and
// bumps the cumulative counters. It truncates SQL, stamps the Slow flag and
// is allocation-free. Nil-safe.
func (j *Journal) Record(rec QueryRecord) {
	if j == nil {
		return
	}
	if len(rec.SQL) > maxJournalSQL {
		rec.SQL = rec.SQL[:maxJournalSQL]
	}
	if rec.Outcome < 0 || rec.Outcome >= numOutcomes {
		rec.Outcome = OutcomeError
	}
	j.mu.Lock()
	rec.Slow = j.slowNs > 0 && rec.WallNs >= j.slowNs
	j.ring[j.next] = rec
	j.next++
	if j.next == len(j.ring) {
		j.next = 0
	}
	j.total++
	j.byOutcome[rec.Outcome]++
	if rec.Slow {
		j.slow++
	}
	j.mu.Unlock()
}

// Total returns the number of records ever written (not bounded by the ring).
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// OutcomeCount returns the cumulative count of records with outcome o.
func (j *Journal) OutcomeCount(o QueryOutcome) int64 {
	if j == nil || o < 0 || o >= numOutcomes {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.byOutcome[o]
}

// SlowCount returns the cumulative count of slow-flagged records.
func (j *Journal) SlowCount() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slow
}

// Len returns the number of records currently held (min(total, capacity)).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lenLocked()
}

func (j *Journal) lenLocked() int {
	if j.total < int64(len(j.ring)) {
		return int(j.total)
	}
	return len(j.ring)
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.ring)
}

// Records returns a copy of the held records, oldest first.
func (j *Journal) Records() []QueryRecord {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.lenLocked()
	out := make([]QueryRecord, 0, n)
	start := j.next - n
	if start < 0 {
		start += len(j.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, j.ring[(start+i)%len(j.ring)])
	}
	return out
}

// Tail returns the newest n records, oldest first.
func (j *Journal) Tail(n int) []QueryRecord {
	recs := j.Records()
	if n < len(recs) {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// WriteJSONL exports the held records as one JSON object per line, oldest
// first.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends '\n' per record
	for _, rec := range j.Records() {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: journal export: %w", err)
		}
	}
	return nil
}

// Fingerprint hashes SQL with whitespace runs collapsed and letters lowered
// outside string literals, so formatting variants of one statement share a
// fingerprint. FNV-1a 64-bit, computed without building the normalized
// string (zero allocations on the hot path).
func Fingerprint(sql string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	inWS := true   // leading whitespace dropped; runs collapse to one ' '
	inStr := false // inside a '...' literal: hash verbatim
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if inStr {
			h = (h ^ uint64(c)) * prime64
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if !inWS {
				h = (h ^ uint64(' ')) * prime64
				inWS = true
			}
			continue
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		case c == '\'':
			inStr = true
		}
		h = (h ^ uint64(c)) * prime64
		inWS = false
	}
	return h
}
