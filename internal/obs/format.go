package obs

import (
	"fmt"
	"strings"
)

// Format renders the profile as the EXPLAIN ANALYZE table: one row per
// operator (indented by data-flow depth), a "total" footer with the
// whole-query counters the spans reconcile against, and a summary line
// with the time totals. Columns are pipe-separated with raw integers so
// the output is machine-parseable as well as readable.
func (p *Profile) Format() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE (%s, %d cores", p.Mode, p.Cores)
	if p.adapted {
		b.WriteString(", plan adapted at runtime")
	}
	b.WriteString(")\n")

	depth := make([]int, len(p.Defs))
	for i, d := range p.Defs {
		if d.Parent >= 0 && d.Parent < len(depth) {
			depth[i] = depth[d.Parent] + 1
		}
	}

	// The energy column is DPU-only: ModeX86 does no cycle or DMS
	// accounting, so activity energy would render as a misleading zero.
	var rep EnergyReport
	energyCell := func(fj int64) string { return fmt.Sprintf("%.3f", fjJoules(fj)*1e6) }
	if p.isDPU() {
		rep = p.Energy(defaultEnergyModel())
	}

	rows := make([][]string, 0, len(p.Defs)+2)
	rows = append(rows, []string{"operator", "cycles", "rd_bytes", "wr_bytes", "energy_uj", "rows_in", "rows_out", "tiles_in", "tiles_out", "wall_ms"})
	for i, d := range p.Defs {
		s := p.spans[i]
		name := strings.Repeat("  ", depth[i]) + d.Name
		if d.Detail != "" {
			name += " " + d.Detail
		}
		cell := "-"
		if p.isDPU() {
			cell = energyCell(rep.Spans[i].ActivityFJ())
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", s.Cycles()),
			fmt.Sprintf("%d", s.ReadBytes()),
			fmt.Sprintf("%d", s.WriteBytes()),
			cell,
			fmt.Sprintf("%d", s.RowsIn()),
			fmt.Sprintf("%d", s.RowsOut()),
			fmt.Sprintf("%d", s.TilesIn()),
			fmt.Sprintf("%d", s.TilesOut()),
			fmt.Sprintf("%.3f", float64(s.WallNs())/1e6),
		})
	}
	totalEnergy := "-"
	if p.isDPU() {
		totalEnergy = energyCell(rep.Query.ActivityFJ())
	}
	rows = append(rows, []string{
		"total",
		fmt.Sprintf("%d", p.TotalCycles()),
		fmt.Sprintf("%d", p.totals.DMSReadBytes),
		fmt.Sprintf("%d", p.totals.DMSWriteBytes),
		totalEnergy,
		"", "", "", "",
		fmt.Sprintf("%.3f", p.totals.WallSeconds*1e3),
	})

	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for c, cell := range r {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for i, r := range rows {
		for c, cell := range r {
			if c > 0 {
				b.WriteString(" | ")
			}
			if c == 0 {
				fmt.Fprintf(&b, "%-*s", widths[c], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[c], cell)
			}
		}
		b.WriteString("\n")
		if i == 0 {
			for c, w := range widths {
				if c > 0 {
					b.WriteString("-+-")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "sim %.6gs  bus_rd %.6gs  bus_wr %.6gs  wall %.3fms\n",
		p.totals.SimSeconds, p.totals.BusReadSeconds, p.totals.BusWriteSeconds,
		p.totals.WallSeconds*1e3)
	if p.totals.QueueWaitSeconds > 0 {
		fmt.Fprintf(&b, "queue_wait %.3fms (shared-SoC admission)\n", p.totals.QueueWaitSeconds*1e3)
	}
	if tot := p.TilesTotal(); tot > 0 {
		pruned := p.TilesPruned()
		fmt.Fprintf(&b, "tiles_pruned %d/%d (%.1f%%) via zone maps, %d scanned\n",
			pruned, tot, 100*float64(pruned)/float64(tot), p.TilesScanned())
	}
	if p.cacheNote != "" {
		fmt.Fprintf(&b, "cache: %s\n", p.cacheNote)
	}
	if p.isDPU() {
		fmt.Fprintf(&b, "energy %.6g J (core %.6g + dms %.6g + idle %.6g)  provisioned %.6g J",
			rep.Query.TotalJoules(),
			fjJoules(rep.Query.CoreFJ),
			fjJoules(rep.Query.DMSReadFJ+rep.Query.DMSWriteFJ),
			rep.Query.IdleJ,
			rep.ProvisionedJ)
		if jpr := rep.JoulesPerRow(); jpr > 0 {
			fmt.Fprintf(&b, "  %.6g J/row", jpr)
		}
		b.WriteString("\n")
	}
	return b.String()
}
