package obs

import (
	"strings"
	"sync"
	"testing"
)

func twoSpanProfile() *Profile {
	defs := []SpanDef{
		{ID: 0, Parent: -1, Name: "GroupBy", Conserves: true},
		{ID: 1, Parent: 0, Name: "Scan(t)"},
	}
	return NewProfile("ModeDPU", 2, defs)
}

func TestProfileInvariantsHold(t *testing.T) {
	p := twoSpanProfile()
	scan, gb := p.Span(1), p.Span(0)
	scan.AddCycles(0, 100)
	scan.AddCycles(1, 50)
	scan.AddTransfer(0, false, 4096, 1e-6)
	scan.TickIn(0, 256)
	scan.TickOut(0, 200)
	gb.AddCycles(0, 40)
	gb.TickIn(0, 200)
	gb.AddRowsOut(4)
	gb.AddTransfer(1, true, 128, 1e-7)
	p.Finalize(Totals{
		SimSeconds:      2e-6,
		BusReadSeconds:  1e-6,
		BusWriteSeconds: 1e-7,
		CoreCycles:      []int64{140, 50},
		DMSReadBytes:    4096,
		DMSWriteBytes:   128,
		DMSReadSeconds:  1e-6,
		DMSWriteSeconds: 1e-7,
	})
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	out := p.Format()
	for _, want := range []string{"GroupBy", "Scan(t)", "total", "190"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	sum := p.Summary()
	if sum.TotalCycles != 190 || len(sum.Ops) != 2 {
		t.Fatalf("summary: %+v", sum)
	}
}

func TestProfileInvariantViolationsDetected(t *testing.T) {
	mk := func(mut func(p *Profile)) error {
		p := twoSpanProfile()
		p.Span(1).AddCycles(0, 10)
		p.Span(1).AddRowsOut(5)
		p.Span(0).AddRowsIn(5)
		mut(p)
		return p.CheckInvariants()
	}
	cases := []struct {
		name string
		mut  func(p *Profile)
		want string
	}{
		{"cycle mismatch", func(p *Profile) {
			p.Finalize(Totals{CoreCycles: []int64{11, 0}})
		}, "cycle spans"},
		{"byte mismatch", func(p *Profile) {
			p.Finalize(Totals{CoreCycles: []int64{10, 0}, DMSReadBytes: 1})
		}, "read bytes"},
		{"sim below bus", func(p *Profile) {
			p.Finalize(Totals{CoreCycles: []int64{10, 0}, SimSeconds: 1e-9, BusReadSeconds: 1e-3})
		}, "below bus"},
		{"row mismatch", func(p *Profile) {
			p.Span(0).AddRowsIn(1)
			p.Finalize(Totals{CoreCycles: []int64{10, 0}})
		}, "rows-in"},
	}
	for _, tc := range cases {
		err := mk(tc.mut)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// Adapted profiles relax only the row invariant.
	err := mk(func(p *Profile) {
		p.Span(0).AddRowsIn(1)
		p.MarkAdapted()
		p.Finalize(Totals{CoreCycles: []int64{10, 0}})
	})
	if err != nil {
		t.Errorf("adapted profile should skip row conservation: %v", err)
	}
	if err := mk(func(p *Profile) {}); err == nil {
		t.Error("unfinalized profile must fail invariants")
	}
}

func TestNilSafety(t *testing.T) {
	var p *Profile
	s := p.Span(3)
	s.AddCycles(0, 1)
	s.AddWallNs(0, 1)
	s.AddTransfer(0, true, 1, 1)
	s.TickIn(0, 1)
	s.TickOut(0, 1)
	s.AddRowsIn(1)
	s.AddRowsOut(1)
	p.MarkAdapted()
	p.Finalize(Totals{})
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Format() != "" {
		t.Error("nil profile should format empty")
	}

	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Add(2)
	if r.Snapshot() != nil || r.Counter("x").Value() != 0 {
		t.Error("nil registry must be inert")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Snapshot()["g"]; got != 8000 {
		t.Fatalf("gauge = %d, want 8000", got)
	}
	r.Gauge("g").Set(5)
	if got := r.Gauge("g").Value(); got != 5 {
		t.Fatalf("gauge after Set = %d", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "c" || names[1] != "g" {
		t.Fatalf("names = %v", names)
	}
}
