package obs

import (
	"strings"
	"sync"
	"testing"
)

func twoSpanProfile() *Profile {
	defs := []SpanDef{
		{ID: 0, Parent: -1, Name: "GroupBy", Conserves: true},
		{ID: 1, Parent: 0, Name: "Scan(t)"},
	}
	return NewProfile("dpu", 2, 800e6, defs)
}

func TestProfileInvariantsHold(t *testing.T) {
	p := twoSpanProfile()
	scan, gb := p.Span(1), p.Span(0)
	scan.AddCycles(0, 100)
	scan.AddCycles(1, 50)
	scan.AddTransfer(0, false, 4096, 1e-6)
	scan.TickIn(0, 256)
	scan.TickOut(0, 200)
	gb.AddCycles(0, 40)
	gb.TickIn(0, 200)
	gb.AddRowsOut(4)
	gb.AddTransfer(1, true, 128, 1e-7)
	p.Finalize(Totals{
		SimSeconds:      2e-6,
		BusReadSeconds:  1e-6,
		BusWriteSeconds: 1e-7,
		CoreCycles:      []int64{140, 50},
		DMSReadBytes:    4096,
		DMSWriteBytes:   128,
		DMSReadSeconds:  1e-6,
		DMSWriteSeconds: 1e-7,
	})
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	out := p.Format()
	for _, want := range []string{"GroupBy", "Scan(t)", "total", "190"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	sum := p.Summary()
	if sum.TotalCycles != 190 || len(sum.Ops) != 2 {
		t.Fatalf("summary: %+v", sum)
	}
}

func TestProfileInvariantViolationsDetected(t *testing.T) {
	mk := func(mut func(p *Profile)) error {
		p := twoSpanProfile()
		p.Span(1).AddCycles(0, 10)
		p.Span(1).AddRowsOut(5)
		p.Span(0).AddRowsIn(5)
		mut(p)
		return p.CheckInvariants()
	}
	cases := []struct {
		name string
		mut  func(p *Profile)
		want string
	}{
		{"cycle mismatch", func(p *Profile) {
			p.Finalize(Totals{CoreCycles: []int64{11, 0}})
		}, "cycle spans"},
		{"byte mismatch", func(p *Profile) {
			p.Finalize(Totals{CoreCycles: []int64{10, 0}, DMSReadBytes: 1})
		}, "read bytes"},
		{"sim below bus", func(p *Profile) {
			p.Finalize(Totals{CoreCycles: []int64{10, 0}, SimSeconds: 1e-9, BusReadSeconds: 1e-3})
		}, "below bus"},
		{"row mismatch", func(p *Profile) {
			p.Span(0).AddRowsIn(1)
			p.Finalize(Totals{CoreCycles: []int64{10, 0}})
		}, "rows-in"},
	}
	for _, tc := range cases {
		err := mk(tc.mut)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// Adapted profiles relax only the row invariant.
	err := mk(func(p *Profile) {
		p.Span(0).AddRowsIn(1)
		p.MarkAdapted()
		p.Finalize(Totals{CoreCycles: []int64{10, 0}})
	})
	if err != nil {
		t.Errorf("adapted profile should skip row conservation: %v", err)
	}
	if err := mk(func(p *Profile) {}); err == nil {
		t.Error("unfinalized profile must fail invariants")
	}
}

func TestNilSafety(t *testing.T) {
	var p *Profile
	s := p.Span(3)
	s.AddCycles(0, 1)
	s.AddWallNs(0, 1)
	s.AddTransfer(0, true, 1, 1)
	s.TickIn(0, 1)
	s.TickOut(0, 1)
	s.AddRowsIn(1)
	s.AddRowsOut(1)
	p.MarkAdapted()
	p.Finalize(Totals{})
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Format() != "" {
		t.Error("nil profile should format empty")
	}

	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Add(2)
	r.Histogram("z").Observe(1)
	r.Describe("x", "help")
	if r.Snapshot() != nil || r.Values() != nil || r.Counter("x").Value() != 0 || r.Histogram("z").Count() != 0 {
		t.Error("nil registry must be inert")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Values()["g"]; got != 8000 {
		t.Fatalf("gauge = %d, want 8000", got)
	}
	r.Gauge("g").Set(5)
	if got := r.Gauge("g").Value(); got != 5 {
		t.Fatalf("gauge after Set = %d", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "c" || names[1] != "g" {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 0.001, 0.01, 0.1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(i%4) * 0.004) // 0, .004, .008, .012
			}
		}(i)
	}
	wg.Wait()
	v := h.View()
	if v.Count != 8000 || h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", v.Count)
	}
	var total int64
	for _, c := range v.Counts {
		total += c
	}
	if total != 8000 {
		t.Fatalf("bucket sum = %d", total)
	}
	// 2000 observations of 0 land in the first bucket; .004/.008 in the
	// second; .012 in the third; none overflow.
	if v.Counts[0] != 2000 || v.Counts[1] != 4000 || v.Counts[2] != 2000 || v.Counts[3] != 0 {
		t.Fatalf("bucket counts = %v", v.Counts)
	}
	wantSum := 2000 * (0.004 + 0.008 + 0.012)
	if diff := v.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", v.Sum, wantSum)
	}
}

func TestSnapshotDeterministicAndHelp(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b_gauge").Set(2)
	r.Counter("a_counter").Add(1)
	r.Histogram("c_hist", 1).Observe(0.5)
	r.Describe("a_counter", "custom help")
	r.Counter("hostdb_queries_total").Inc()
	for i := 0; i < 5; i++ {
		snap := r.Snapshot()
		var names []string
		for _, m := range snap {
			names = append(names, m.Name)
		}
		want := []string{"a_counter", "b_gauge", "c_hist", "hostdb_queries_total"}
		if len(names) != len(want) {
			t.Fatalf("names = %v", names)
		}
		for j := range want {
			if names[j] != want[j] {
				t.Fatalf("snapshot order not deterministic: %v", names)
			}
		}
		if snap[0].Help != "custom help" {
			t.Fatalf("Describe not honored: %q", snap[0].Help)
		}
		if snap[3].Help == "" {
			t.Fatal("standard metric missing default help")
		}
		if snap[2].Kind != KindHistogram || snap[2].Hist == nil || snap[2].Hist.Count != 1 {
			t.Fatalf("histogram snapshot: %+v", snap[2])
		}
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge reuse of a counter name must panic")
		}
	}()
	r.Gauge("m")
}
