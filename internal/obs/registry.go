package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing engine metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an engine metric that can move both ways (e.g. checkpoint lag).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Set replaces the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a concurrency-safe name→metric map shared by everything that
// touches one Database: the host engine, the offload path and the QEF.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// on a nil registry it returns nil, and nil metrics ignore updates.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns all metric values by name (counters and gauges merged;
// names are disjoint by convention).
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}

// Names returns the sorted metric names currently registered.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
