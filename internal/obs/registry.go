package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing engine metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an engine metric that can move both ways (e.g. checkpoint lag).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Set replaces the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds for query latencies:
// 100 µs to 10 s in a 1-2.5-5 progression, in seconds.
var DefLatencyBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution metric (cumulative rendering is
// left to the exporter). Observations are lock-free: per-bucket atomic
// counters plus a CAS-looped float sum, so concurrent queries never
// serialize on it.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	sort.Float64s(h.bounds)
	h.buckets = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistView is a point-in-time copy of a histogram. Counts are per-bucket
// (not cumulative); Counts[i] pairs with Bounds[i], and the final extra
// element is the overflow (+Inf) bucket.
type HistView struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// View snapshots the histogram. The bucket counts are read after the
// count/sum pair, so View never reports more observations in the buckets
// than in Count (it may briefly report fewer under concurrent writes).
func (h *Histogram) View() HistView {
	if h == nil {
		return HistView{}
	}
	v := HistView{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		v.Counts[i] = h.buckets[i].Load()
	}
	return v
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucketed counts
// by linear interpolation within the bucket that crosses the target rank.
// The overflow bucket reports its lower bound (the largest finite bound).
// Returns 0 on an empty histogram.
func (v HistView) Quantile(q float64) float64 {
	if v.Count == 0 || len(v.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(v.Count)
	var cum float64
	for i, c := range v.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(v.Bounds) { // overflow bucket: no upper bound
				return v.Bounds[len(v.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = v.Bounds[i-1]
			}
			hi := v.Bounds[i]
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return v.Bounds[len(v.Bounds)-1]
}

// ExpBuckets returns n histogram bounds starting at start and growing by
// factor: start, start*factor, ... — the standard shape for cycle, byte and
// energy distributions that span many orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Default bounds for the fleet histograms. Cycles cover 1k..~68G dpCore
// cycles (×4 steps), bytes 64 B..~4 GiB (×4), energy 1 µJ..~69 J in
// nanojoules (×4).
var (
	DefCycleBuckets    = ExpBuckets(1e3, 4, 13)
	DefBytesBuckets    = ExpBuckets(64, 4, 13)
	DefEnergyNJBuckets = ExpBuckets(1e3, 4, 13)
)

// MetricKind discriminates registry entries.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Metric is one entry of a registry snapshot.
type Metric struct {
	Name string
	Kind MetricKind
	Help string
	// Value carries counter and gauge readings; Hist carries histograms.
	Value int64
	Hist  *HistView
}

// Registry is a concurrency-safe name→metric map shared by everything that
// touches one Database: the host engine, the offload path and the QEF.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	kinds      map[string]MetricKind
	help       map[string]string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		kinds:      make(map[string]MetricKind),
		help:       make(map[string]string),
	}
}

// claim registers name under kind, panicking on a kind conflict: one name
// must never render as two metric types (the exposition format forbids
// duplicates, and a silent second metric would corrupt dashboards).
func (r *Registry) claim(name string, kind MetricKind) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %v, requested %v", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// on a nil registry it returns nil, and nil metrics ignore updates.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.claim(name, KindCounter)
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.claim(name, KindGauge)
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (DefLatencyBuckets when none are given). Later calls
// return the existing histogram regardless of bounds. Nil-safe.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		r.claim(name, KindHistogram)
		if len(bounds) == 0 {
			bounds = DefLatencyBuckets
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Describe attaches help text to a metric name, shown by the Prometheus
// exporter. Engine-standard names have defaults (see help.go); Describe
// overrides them. Nil-safe.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// helpFor resolves help text under the lock.
func (r *Registry) helpFor(name string) string {
	if h, ok := r.help[name]; ok {
		return h
	}
	return defaultHelp[name]
}

// Snapshot returns every registered metric, sorted by name, with kind and
// help text resolved — the deterministic input to the Prometheus renderer
// and to tests.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.kinds))
	for n, c := range r.counters {
		out = append(out, Metric{Name: n, Kind: KindCounter, Help: r.helpFor(n), Value: c.Value()})
	}
	for n, g := range r.gauges {
		out = append(out, Metric{Name: n, Kind: KindGauge, Help: r.helpFor(n), Value: g.Value()})
	}
	for n, h := range r.histograms {
		v := h.View()
		out = append(out, Metric{Name: n, Kind: KindHistogram, Help: r.helpFor(n), Hist: &v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Values returns counter and gauge readings by name (histograms excluded) —
// the map form kept for assertion-style tests.
func (r *Registry) Values() map[string]int64 {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	out := make(map[string]int64, len(snap))
	for _, m := range snap {
		if m.Kind != KindHistogram {
			out[m.Name] = m.Value
		}
	}
	return out
}

// Names returns the sorted metric names currently registered.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for _, m := range snap {
		names = append(names, m.Name)
	}
	return names
}
