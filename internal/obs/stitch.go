package obs

import "fmt"

// Distributed trace stitching: a tray query executes as per-node plan
// fragments interleaved with exchanges (shuffle / broadcast / gather). The
// cluster layer records the execution as an ordered []DistStep — fragment
// steps carrying one finalized Profile per participating node, exchange
// steps carrying an ExchangeSpan — and AddDistributedQuery renders them as
// ONE Chrome-trace process: thread 0 is the coordinator lane, thread i+1 is
// node i's lane. Fragment spans are laid sequentially per lane (span
// duration = the node's critical path over its cores); exchanges appear as
// send/recv slices on the participating lanes with Chrome flow events
// ("s"/"f") for every cross-node data stream, so shuffles, broadcasts and
// gathers read as arrows between lanes. Like the single-query export, lane
// lengths and proportions are exact while start offsets are synthetic.

// ExchangeSpan is the engine-neutral record of one executed exchange, the
// trace-side mirror of the cluster's ExchangeStats (kept separate so obs
// does not import the cluster package).
type ExchangeSpan struct {
	Kind    string  // "shuffle", "broadcast", "gather"
	Label   string
	Seconds float64 // modeled serialized link time

	RowsIn, RowsOut              int64
	MovedRows, MovedBytes, Tiles int64 // cross-node traffic only

	// PerSourceRows is rows entering per source node; PerDestRows rows
	// delivered per destination node (nil for gather — the destination is
	// the coordinator, delivered rows are RowsOut).
	PerSourceRows []int64
	PerDestRows   []int64
	// MovedMatrix[src][dst] is the cross-node rows of each stream — one
	// flow event per non-zero entry. Nil for gather, where every source's
	// full contribution flows to the coordinator (PerSourceRows).
	MovedMatrix [][]int64
}

// FlowEdge is one cross-node data stream of an exchange. Dst == -1 means
// the coordinator.
type FlowEdge struct {
	Src, Dst int
	Rows     int64
}

// Flows returns the exchange's cross-node streams. The per-stream rows sum
// to MovedRows exactly — the contract the golden-structure test pins.
func (e *ExchangeSpan) Flows() []FlowEdge {
	var out []FlowEdge
	if e.MovedMatrix == nil {
		for s, rows := range e.PerSourceRows {
			if rows > 0 {
				out = append(out, FlowEdge{Src: s, Dst: -1, Rows: rows})
			}
		}
		return out
	}
	for s, row := range e.MovedMatrix {
		for d, rows := range row {
			if rows > 0 {
				out = append(out, FlowEdge{Src: s, Dst: d, Rows: rows})
			}
		}
	}
	return out
}

// DistStep is one step of a distributed execution, in order. Exactly one
// group of fields is set: NodeProfiles (a barrier-synchronized per-node
// fragment), Coord (a coordinator-side fragment), or Exchange.
type DistStep struct {
	Label        string
	NodeProfiles []*Profile // indexed by node; nil = node did not run
	Coord        *Profile
	Exchange     *ExchangeSpan
}

// AddDistributedQuery renders one distributed query as a new process: a
// coordinator lane plus one lane per node, fragments and exchanges laid in
// step order. A query with no steps adds nothing.
func (b *TraceBuilder) AddDistributedQuery(name, mode string, nodes int, steps []DistStep) {
	if b == nil || nodes <= 0 || len(steps) == 0 {
		return
	}
	pid := b.nextPid
	b.nextPid++
	label := fmt.Sprintf("%s (%s, %d nodes)", name, mode, nodes)
	b.events = append(b.events, meta("process_name", pid, 0, "name", label))
	b.events = append(b.events, meta("thread_name", pid, 0, "name", "coordinator"))
	for i := 0; i < nodes; i++ {
		b.events = append(b.events, meta("thread_name", pid, i+1, "name", fmt.Sprintf("node %d", i)))
	}

	// cursor[0] is the coordinator lane, cursor[i+1] node i's; in seconds.
	cursor := make([]float64, nodes+1)
	for _, st := range steps {
		switch {
		case st.Exchange != nil:
			b.layExchange(pid, nodes, cursor, st.Exchange)
		case st.Coord != nil:
			// Coordinator fragments run after their gathered inputs, which
			// already advanced lane 0 past the nodes.
			cursor[0] = b.layFragment(pid, 0, st.Coord, cursor[0])
		default:
			// Node fragments run concurrently and join before the next step
			// (the engine barrier-syncs them), so all node lanes advance to
			// the slowest participant.
			end := 0.0
			for i, p := range st.NodeProfiles {
				if i >= nodes {
					break
				}
				if p == nil || len(p.Defs) == 0 {
					continue
				}
				cursor[i+1] = b.layFragment(pid, i+1, p, cursor[i+1])
				if cursor[i+1] > end {
					end = cursor[i+1]
				}
			}
			for i := 1; i <= nodes; i++ {
				if cursor[i] < end {
					cursor[i] = end
				}
			}
		}
	}
}

// layFragment lays one fragment profile's spans sequentially on lane tid
// starting at `at` seconds, and returns the lane end. Each span's duration
// is the node's critical path for that operator: the max over cores of the
// per-core duration (cores within a node run in parallel); its args carry
// the node totals.
func (b *TraceBuilder) layFragment(pid, tid int, p *Profile, at float64) float64 {
	var rep EnergyReport
	if p.isDPU() {
		rep = p.Energy(defaultEnergyModel())
	}
	cur := at
	// Reverse def order: producers before consumers (see AddQuery).
	for i := len(p.Defs) - 1; i >= 0; i-- {
		d := p.Defs[i]
		s := p.spans[i]
		var durSec float64
		var cycles, rowsIn, rowsOut, rb, wb int64
		for core := 0; core < p.Cores; core++ {
			var cd float64
			if p.isDPU() {
				cd = float64(s.cycles[core]) / p.FreqHz
				if dms := s.readSec[core] + s.writeSec[core]; dms > cd {
					cd = dms
				}
			} else {
				cd = float64(s.wallNs[core]) / 1e9
			}
			if cd > durSec {
				durSec = cd
			}
			cycles += s.cycles[core]
			rowsIn += s.rowsIn[core]
			rowsOut += s.rowsOut[core]
			rb += s.readBytes[core]
			wb += s.writeBytes[core]
		}
		if durSec == 0 && rowsIn == 0 && rowsOut == 0 {
			continue
		}
		args := map[string]any{
			"cycles":          cycles,
			"rows_in":         rowsIn,
			"rows_out":        rowsOut,
			"dms_read_bytes":  rb,
			"dms_write_bytes": wb,
		}
		if d.Detail != "" {
			args["detail"] = d.Detail
		}
		if p.isDPU() {
			cfj, rfj, wfj := rep.Model.ActivityFJ(cycles, rb, wb)
			args["energy_uj"] = fjJoules(cfj+rfj+wfj) * 1e6
		}
		dur := durSec * 1e6
		b.events = append(b.events, traceEvent{
			Name: d.Name, Cat: string(d.Kind), Ph: "X",
			Pid: pid, Tid: tid, TsUS: cur * 1e6, DurUS: &dur,
			Args: args,
		})
		cur += durSec
	}
	return cur
}

// layExchange renders one exchange: send slices on every contributing
// source lane over the first half of the link interval, recv slices on
// every destination lane (the coordinator for gather) over the second half,
// and one flow event pair per cross-node stream, carrying the stream's
// exact row count. All node lanes (and the coordinator for gather) advance
// to the exchange end — the link serializes the tray.
func (b *TraceBuilder) layExchange(pid, nodes int, cursor []float64, ex *ExchangeSpan) {
	start := 0.0
	for i := 1; i <= nodes; i++ {
		if cursor[i] > start {
			start = cursor[i]
		}
	}
	gather := ex.Kind == "gather"
	if gather && cursor[0] > start {
		start = cursor[0]
	}
	half := ex.Seconds / 2
	sendTs, recvTs := start, start+half
	name := fmt.Sprintf("%s (%s)", ex.Kind, ex.Label)

	for s, rows := range ex.PerSourceRows {
		if rows == 0 || s >= nodes {
			continue
		}
		dur := half * 1e6
		b.events = append(b.events, traceEvent{
			Name: name + " send", Cat: "exchange", Ph: "X",
			Pid: pid, Tid: s + 1, TsUS: sendTs * 1e6, DurUS: &dur,
			Args: map[string]any{"rows": rows},
		})
	}
	if gather {
		dur := half * 1e6
		b.events = append(b.events, traceEvent{
			Name: name + " recv", Cat: "exchange", Ph: "X",
			Pid: pid, Tid: 0, TsUS: recvTs * 1e6, DurUS: &dur,
			Args: map[string]any{"rows": ex.RowsOut},
		})
	} else {
		for d, rows := range ex.PerDestRows {
			if rows == 0 || d >= nodes {
				continue
			}
			dur := half * 1e6
			b.events = append(b.events, traceEvent{
				Name: name + " recv", Cat: "exchange", Ph: "X",
				Pid: pid, Tid: d + 1, TsUS: recvTs * 1e6, DurUS: &dur,
				Args: map[string]any{"rows": rows},
			})
		}
	}

	// One flow per cross-node stream; anchored inside the send/recv slices.
	for _, f := range ex.Flows() {
		id := b.nextFlow
		b.nextFlow++
		dstTid := 0 // coordinator
		if f.Dst >= 0 {
			dstTid = f.Dst + 1
		}
		args := map[string]any{"rows": f.Rows}
		b.events = append(b.events, traceEvent{
			Name: name, Cat: "dataflow", Ph: "s", ID: id,
			Pid: pid, Tid: f.Src + 1, TsUS: (sendTs + half/4) * 1e6, Args: args,
		})
		b.events = append(b.events, traceEvent{
			Name: name, Cat: "dataflow", Ph: "f", ID: id, BP: "e",
			Pid: pid, Tid: dstTid, TsUS: (recvTs + half/4) * 1e6, Args: args,
		})
	}

	end := start + ex.Seconds
	for i := 1; i <= nodes; i++ {
		cursor[i] = end
	}
	if gather {
		cursor[0] = end
	}
}
