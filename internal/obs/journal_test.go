package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalRingBoundAndCounters(t *testing.T) {
	j := NewJournal(8)
	if j.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", j.Cap())
	}
	for i := 0; i < 20; i++ {
		j.Record(QueryRecord{ID: uint64(i + 1), Outcome: QueryOutcome(i % 4), SQL: "SELECT 1"})
	}
	if j.Total() != 20 {
		t.Fatalf("Total = %d, want 20", j.Total())
	}
	if j.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (ring bound)", j.Len())
	}
	recs := j.Records()
	if len(recs) != 8 {
		t.Fatalf("Records len = %d, want 8", len(recs))
	}
	// Oldest-first: the newest 8 of 20 are IDs 13..20.
	for i, r := range recs {
		if want := uint64(13 + i); r.ID != want {
			t.Fatalf("Records[%d].ID = %d, want %d", i, r.ID, want)
		}
	}
	if tail := j.Tail(3); len(tail) != 3 || tail[2].ID != 20 {
		t.Fatalf("Tail(3) = %+v, want IDs 18,19,20", tail)
	}
	// Cumulative outcome counters survive eviction: 20 records cycling
	// through 4 outcomes is 5 each.
	var sum int64
	for _, o := range []QueryOutcome{OutcomeOK, OutcomeShed, OutcomeCanceled, OutcomeError} {
		if c := j.OutcomeCount(o); c != 5 {
			t.Fatalf("OutcomeCount(%s) = %d, want 5", o, c)
		}
		sum += j.OutcomeCount(o)
	}
	if sum != j.Total() {
		t.Fatalf("outcome counters sum to %d, total is %d", sum, j.Total())
	}
}

func TestJournalSlowThreshold(t *testing.T) {
	j := NewJournal(4)
	j.SetSlowThreshold(10 * time.Millisecond)
	j.Record(QueryRecord{ID: 1, WallNs: int64(5 * time.Millisecond)})
	j.Record(QueryRecord{ID: 2, WallNs: int64(20 * time.Millisecond)})
	if j.SlowCount() != 1 {
		t.Fatalf("SlowCount = %d, want 1", j.SlowCount())
	}
	recs := j.Records()
	if recs[0].Slow || !recs[1].Slow {
		t.Fatalf("slow flags = %v,%v, want false,true", recs[0].Slow, recs[1].Slow)
	}
	j.SetSlowThreshold(0) // disable
	j.Record(QueryRecord{ID: 3, WallNs: int64(time.Hour)})
	if j.SlowCount() != 1 {
		t.Fatalf("SlowCount after disable = %d, want 1", j.SlowCount())
	}
}

func TestJournalTruncatesSQLAndClampsOutcome(t *testing.T) {
	j := NewJournal(2)
	long := strings.Repeat("x", 2*maxJournalSQL)
	j.Record(QueryRecord{ID: 1, SQL: long, Outcome: QueryOutcome(99)})
	rec := j.Records()[0]
	if len(rec.SQL) != maxJournalSQL {
		t.Fatalf("SQL len = %d, want %d", len(rec.SQL), maxJournalSQL)
	}
	if rec.Outcome != OutcomeError {
		t.Fatalf("out-of-range outcome clamped to %s, want error", rec.Outcome)
	}
}

func TestJournalWriteJSONL(t *testing.T) {
	j := NewJournal(4)
	j.Record(QueryRecord{ID: 1, SQL: "SELECT 1", Mode: "dpu", Outcome: OutcomeOK, Rows: 3})
	j.Record(QueryRecord{ID: 2, SQL: "SELECT 2", Mode: "host", Outcome: OutcomeShed, Error: "overloaded"})
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0]["outcome"] != "ok" || lines[1]["outcome"] != "shed" {
		t.Fatalf("outcomes = %v,%v, want ok,shed", lines[0]["outcome"], lines[1]["outcome"])
	}
	if lines[1]["error"] != "overloaded" {
		t.Fatalf("error field = %v", lines[1]["error"])
	}
}

func TestJournalRecordAllocationFree(t *testing.T) {
	j := NewJournal(16)
	j.SetSlowThreshold(time.Millisecond)
	rec := QueryRecord{ID: 1, SQL: "SELECT a, b FROM t WHERE a > 10", Mode: "dpu", Outcome: OutcomeOK}
	if avg := testing.AllocsPerRun(200, func() { j.Record(rec) }); avg != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", avg)
	}
	sql := "SELECT  l_orderkey,  SUM(l_extendedprice) FROM lineitem WHERE l_tax > '0.02' GROUP BY l_orderkey"
	if avg := testing.AllocsPerRun(200, func() { _ = Fingerprint(sql) }); avg != 0 {
		t.Fatalf("Fingerprint allocates %.1f allocs/op, want 0", avg)
	}
}

func TestJournalConcurrentStorm(t *testing.T) {
	j := NewJournal(32)
	const writers, per = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record(QueryRecord{ID: uint64(w*per + i), Outcome: QueryOutcome(i % 4)})
				if i%10 == 0 {
					_ = j.Records()
					_ = j.Total()
				}
			}
		}(w)
	}
	wg.Wait()
	if j.Total() != writers*per {
		t.Fatalf("Total = %d, want %d", j.Total(), writers*per)
	}
	if j.Len() != 32 {
		t.Fatalf("Len = %d, want ring bound 32", j.Len())
	}
	var sum int64
	for _, o := range []QueryOutcome{OutcomeOK, OutcomeShed, OutcomeCanceled, OutcomeError} {
		sum += j.OutcomeCount(o)
	}
	if sum != j.Total() {
		t.Fatalf("outcome counters sum to %d, total %d", sum, j.Total())
	}
}

func TestFingerprintNormalization(t *testing.T) {
	base := Fingerprint("SELECT a FROM t WHERE b = 'X y'")
	same := []string{
		"select a from t where b = 'X y'",
		"  SELECT\ta\nFROM   t WHERE b = 'X y'",
		"Select A From T Where B = 'X y'",
	}
	for _, s := range same {
		if Fingerprint(s) != base {
			t.Fatalf("Fingerprint(%q) differs from base", s)
		}
	}
	diff := []string{
		"SELECT a FROM t WHERE b = 'x y'", // literal case is significant
		"SELECT a FROM t WHERE b = 'Xy'",  // literal whitespace is significant
		"SELECT a FROM t WHERE c = 'X y'",
	}
	for _, s := range diff {
		if Fingerprint(s) == base {
			t.Fatalf("Fingerprint(%q) collides with base", s)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(QueryRecord{})
	j.SetSlowThreshold(time.Second)
	if j.Total() != 0 || j.Len() != 0 || j.Cap() != 0 || j.SlowCount() != 0 {
		t.Fatal("nil journal should report zeros")
	}
	if j.Records() != nil {
		t.Fatal("nil journal Records should be nil")
	}
}

func TestActiveSetLifecycle(t *testing.T) {
	s := NewActiveSet()
	if id := s.NextID(); id != 1 {
		t.Fatalf("first NextID = %d, want 1", id)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	h1 := s.Register(2, "SELECT 1", "dpu", 1, cancel1)
	h2 := s.Register(3, "SELECT 2", "auto", 4, nil)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	h1.SetPhase("executing")
	h2.SetNodes(8)
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].ID != 2 || snap[1].ID != 3 {
		t.Fatalf("Snapshot = %+v, want IDs 2,3 sorted", snap)
	}
	if snap[0].Phase != "executing" || snap[1].Phase != "issued" {
		t.Fatalf("phases = %q,%q", snap[0].Phase, snap[1].Phase)
	}
	if snap[1].Nodes != 8 {
		t.Fatalf("SetNodes not applied: %d", snap[1].Nodes)
	}
	// Cancel by ID invokes the registered CancelFunc.
	if !s.Cancel(2) {
		t.Fatal("Cancel(2) = false, want true")
	}
	if ctx1.Err() == nil {
		t.Fatal("cancel func was not invoked")
	}
	if s.Cancel(3) {
		t.Fatal("Cancel(3) should fail: registered without cancel func")
	}
	if s.Cancel(999) {
		t.Fatal("Cancel of unknown ID should fail")
	}
	// Done recycles slots; idempotent; stale handles are inert.
	h1.Done()
	h1.Done()
	if s.Len() != 1 {
		t.Fatalf("Len after Done = %d, want 1", s.Len())
	}
	h3 := s.Register(4, "SELECT 3", "x86", 1, nil)
	h1.SetPhase("stale") // must not touch the recycled slot
	if snap := s.Snapshot(); len(snap) != 2 {
		t.Fatalf("Len = %d, want 2", len(snap))
	} else {
		for _, q := range snap {
			if q.Phase == "stale" {
				t.Fatal("stale handle mutated a recycled slot")
			}
		}
	}
	h2.Done()
	h3.Done()
	if s.Len() != 0 {
		t.Fatalf("Len after all Done = %d, want 0", s.Len())
	}
}

func TestActiveSetSlotReuseNoGrowth(t *testing.T) {
	s := NewActiveSet()
	for i := 0; i < 100; i++ {
		h := s.Register(uint64(i+1), "SELECT 1", "dpu", 1, nil)
		h.Done()
	}
	s.mu.Lock()
	slots := len(s.slots)
	s.mu.Unlock()
	if slots != 1 {
		t.Fatalf("sequential register/done grew the slab to %d slots, want 1", slots)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket (1,10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // bucket (10,100]
	}
	v := h.View()
	if p50 := v.Quantile(0.5); p50 <= 1 || p50 > 10 {
		t.Fatalf("p50 = %g, want in (1,10]", p50)
	}
	if p99 := v.Quantile(0.99); p99 <= 10 || p99 > 100 {
		t.Fatalf("p99 = %g, want in (10,100]", p99)
	}
	if q := (HistView{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty view quantile = %g, want 0", q)
	}
	// Overflow bucket reports the largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(1000)
	if q := h2.View().Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %g, want 2", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 4, 5)
	want := []float64{1, 4, 16, 64, 256}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("b[%d] = %g, want %g", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, 2, 3) should panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

// BenchmarkJournalRecord guards the allocation-free hot path (run with
// -benchmem; the CI alloc-regression job asserts 0 allocs/op).
func BenchmarkJournalRecord(b *testing.B) {
	j := NewJournal(DefJournalCapacity)
	j.SetSlowThreshold(time.Millisecond)
	rec := QueryRecord{ID: 1, SQL: "SELECT a, b FROM t WHERE a > 10", Mode: "dpu", Outcome: OutcomeOK, WallNs: 12345}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.ID = uint64(i)
		j.Record(rec)
	}
}

// BenchmarkFingerprint guards the zero-allocation fingerprint path.
func BenchmarkFingerprint(b *testing.B) {
	sql := "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate > '1995-01-01' GROUP BY l_orderkey"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Fingerprint(sql)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
