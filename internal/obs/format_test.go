package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rapid/internal/power"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenProfile builds a fixed three-operator profile with activity in
// every counter class so the golden rendering exercises each column.
func goldenProfile(mode string) *Profile {
	defs := []SpanDef{
		{ID: 0, Parent: -1, Name: "GroupBy", Detail: "keys=1 aggs=1", Kind: KindBlocking, Conserves: true},
		{ID: 1, Parent: 0, Name: "Filter", Kind: KindPipeline, Conserves: true},
		{ID: 2, Parent: 1, Name: "Scan(t)", Kind: KindSource},
	}
	p := NewProfile(mode, 2, 800e6, defs)
	scan, filt, gb := p.Span(2), p.Span(1), p.Span(0)
	if mode == "dpu" {
		scan.AddCycles(0, 4000)
		scan.AddCycles(1, 3500)
		scan.AddTransfer(0, false, 65536, 65536/12.9e9)
		scan.AddTransfer(1, false, 32768, 32768/12.9e9)
		filt.AddCycles(0, 1200)
		filt.AddCycles(1, 900)
		gb.AddCycles(0, 700)
		gb.AddTransfer(0, true, 4096, 4096/12.9e9)
	} else {
		scan.AddWallNs(0, 210000)
		filt.AddWallNs(0, 45000)
		gb.AddWallNs(0, 30000)
	}
	scan.TickIn(0, 1024)
	scan.TickOut(0, 1024)
	filt.TickIn(0, 1024)
	filt.TickOut(0, 400)
	gb.TickIn(0, 400)
	gb.AddRowsOut(8)
	t := Totals{WallSeconds: 0.000285}
	if mode == "dpu" {
		t.SimSeconds = 13e-6
		t.BusReadSeconds = (65536 + 32768) / 12.9e9
		t.BusWriteSeconds = 4096 / 12.9e9
		t.CoreCycles = []int64{5900, 4400}
		t.DMSReadBytes = 65536 + 32768
		t.DMSWriteBytes = 4096
		t.DMSReadSeconds = t.BusReadSeconds
		t.DMSWriteSeconds = t.BusWriteSeconds
	} else {
		t.CoreCycles = []int64{0, 0}
	}
	p.Finalize(t)
	return p
}

func TestFormatGolden(t *testing.T) {
	for _, mode := range []string{"dpu", "x86"} {
		t.Run(mode, func(t *testing.T) {
			p := goldenProfile(mode)
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("golden profile must satisfy invariants: %v", err)
			}
			if err := p.CheckEnergyInvariants(power.DefaultEnergyModel()); err != nil {
				t.Fatalf("golden profile must satisfy energy invariants: %v", err)
			}
			got := p.Format()
			path := filepath.Join("testdata", "format_"+mode+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("Format() drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

func TestFormatEnergyColumnDPUOnly(t *testing.T) {
	dpu := goldenProfile("dpu").Format()
	if !strings.Contains(dpu, "energy_uj") || !strings.Contains(dpu, "provisioned") {
		t.Errorf("dpu format missing energy reporting:\n%s", dpu)
	}
	if !strings.Contains(dpu, "J/row") {
		t.Errorf("dpu format missing joules-per-row summary:\n%s", dpu)
	}
	x86 := goldenProfile("x86").Format()
	if strings.Contains(x86, "provisioned") || strings.Contains(x86, "J/row") {
		t.Errorf("x86 format must not report activity energy:\n%s", x86)
	}
}

func TestEnergyInvariants(t *testing.T) {
	m := power.DefaultEnergyModel()
	p := goldenProfile("dpu")
	rep := p.Energy(m)
	if rep.SpanActivityFJ() != rep.Query.ActivityFJ() {
		t.Fatalf("span sum %d != query activity %d", rep.SpanActivityFJ(), rep.Query.ActivityFJ())
	}
	if rep.RowsOut != 8 {
		t.Fatalf("RowsOut = %d, want root span's 8", rep.RowsOut)
	}
	if jpr := rep.JoulesPerRow(); jpr <= 0 || jpr != rep.Query.TotalJoules()/8 {
		t.Fatalf("JoulesPerRow = %v", jpr)
	}
	if rep.Query.TotalJoules() > rep.ProvisionedJ {
		t.Fatalf("total %g J above provisioned %g J", rep.Query.TotalJoules(), rep.ProvisionedJ)
	}
	if err := p.CheckEnergyInvariants(m); err != nil {
		t.Fatal(err)
	}

	// A profile whose span cycles do not cover the query counter must trip
	// the exact reconciliation.
	defs := []SpanDef{{ID: 0, Parent: -1, Name: "op"}}
	bad := NewProfile("dpu", 1, 800e6, defs)
	bad.Span(0).AddCycles(0, 10)
	bad.Finalize(Totals{SimSeconds: 1e-6, CoreCycles: []int64{11}})
	if err := bad.CheckEnergyInvariants(m); err == nil || !strings.Contains(err.Error(), "span energies") {
		t.Fatalf("want span-sum mismatch error, got %v", err)
	}

	// Unfinalized profiles are rejected; nil profiles are inert.
	unfin := NewProfile("dpu", 1, 800e6, defs)
	if err := unfin.CheckEnergyInvariants(m); err == nil {
		t.Fatal("unfinalized profile must fail energy invariants")
	}
	var nilP *Profile
	if err := nilP.CheckEnergyInvariants(m); err != nil {
		t.Fatal(err)
	}
}
