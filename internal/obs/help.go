package obs

// defaultHelp is the help text for the engine's standard metric names,
// emitted by the Prometheus renderer unless overridden via Describe. Keep
// entries one line: the exposition format escapes nothing here, so text
// must not contain newlines or backslashes.
var defaultHelp = map[string]string{
	"hostdb_queries_total":          "SQL queries submitted to the host database.",
	"hostdb_queries_failed":         "Queries that returned an error.",
	"hostdb_queries_offloaded":      "Queries executed on the RAPID engine.",
	"hostdb_queries_host":           "Queries executed on the host row engine.",
	"hostdb_queries_fellback":       "Offload candidates that fell back to the host engine.",
	"hostdb_checkpoints_total":      "Journal checkpoints propagated to RAPID replicas.",
	"hostdb_checkpoint_lag_entries": "Journal entries not yet propagated to RAPID replicas.",
	"hostdb_query_seconds":          "End-to-end query latency (parse to result), seconds.",

	"rapid_dpcore_cycles_total":              "dpCore cycles executed by offloaded queries (ModeDPU).",
	"rapid_dms_read_bytes_total":             "Bytes read from DRAM by the DMS for offloaded queries.",
	"rapid_dms_write_bytes_total":            "Bytes written to DRAM by the DMS for offloaded queries.",
	"rapid_dms_descriptors_total":            "DMS descriptors executed by offloaded queries.",
	"rapid_sim_microseconds_total":           "Simulated DPU execution time of offloaded queries, microseconds.",
	"rapid_activity_energy_nanojoules_total": "Activity energy (dpCore + DMS) of offloaded queries, nanojoules.",
	"rapid_idle_energy_nanojoules_total":     "Uncore/idle-floor energy of offloaded queries, nanojoules.",

	"qef_work_units_total":           "Work units executed on the dpCore pool.",
	"qef_tile_degradations":          "Tile-size degradations forced by DMEM pressure.",
	"qcomp_group_overflow_fallbacks": "Group-by overflow fallbacks to the partitioned plan (§5.4).",

	"rapid_query_cycles":              "Per-query dpCore cycle distribution (bucket sums reconcile with rapid_dpcore_cycles_total).",
	"rapid_query_energy_nanojoules":   "Per-query energy distribution, nanojoules (sums reconcile with the activity+idle energy counters).",
	"rapid_query_net_bytes":           "Per-query exchange bytes moved across the tray interconnect (sums reconcile with rapid_net_bytes_total).",
	"cluster_query_seconds":           "End-to-end distributed query latency, seconds.",
}
