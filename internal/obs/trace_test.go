package obs

import (
	"encoding/json"
	"testing"
)

// decodeTrace parses the export back the way a trace viewer would.
func decodeTrace(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, raw)
	}
	return doc.TraceEvents
}

func TestChromeTraceDPU(t *testing.T) {
	p := goldenProfile("dpu")
	raw, err := p.ChromeTrace("q1")
	if err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, raw)

	var complete, metadata int
	byName := map[string][]map[string]any{}
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			name := e["name"].(string)
			byName[name] = append(byName[name], e)
			// Every complete event carries a non-negative duration and the
			// counter args the viewer surfaces on click.
			if e["dur"].(float64) < 0 {
				t.Errorf("%s: negative duration", name)
			}
			args := e["args"].(map[string]any)
			for _, k := range []string{"cycles", "rows_in", "rows_out", "dms_read_bytes", "dms_write_bytes", "energy_uj"} {
				if _, ok := args[k]; !ok {
					t.Errorf("%s: missing arg %q", name, k)
				}
			}
		case "M":
			metadata++
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if complete == 0 || metadata == 0 {
		t.Fatalf("trace has %d complete and %d metadata events", complete, metadata)
	}
	// The scan ran on both cores: two lanes.
	if got := len(byName["Scan(t)"]); got != 2 {
		t.Fatalf("Scan(t) events = %d, want 2 (one per core)", got)
	}
	// Kinds map to categories.
	if cat := byName["Scan(t)"][0]["cat"]; cat != "source" {
		t.Errorf("scan category = %v, want source", cat)
	}
	if cat := byName["GroupBy"][0]["cat"]; cat != "blocking" {
		t.Errorf("groupby category = %v, want blocking", cat)
	}
	// Per-core event energies sum to the whole-query activity energy.
	rep := p.Energy(defaultEnergyModel())
	var evSum float64
	for _, evs := range byName {
		for _, e := range evs {
			evSum += e["args"].(map[string]any)["energy_uj"].(float64)
		}
	}
	want := fjJoules(rep.Query.ActivityFJ()) * 1e6
	if diff := evSum - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("trace energy %g µJ != query activity %g µJ", evSum, want)
	}
	// Events on one core do not overlap (sequential layout).
	lanes := map[float64]float64{} // tid -> furthest end seen so far
	for _, e := range events {
		if e["ph"] != "X" {
			continue
		}
		tid := e["tid"].(float64)
		ts := e["ts"].(float64)
		if ts < lanes[tid] {
			t.Errorf("tid %v: event at ts %v overlaps previous end %v", tid, ts, lanes[tid])
		}
		lanes[tid] = ts + e["dur"].(float64)
	}
}

func TestChromeTraceX86UsesWallTime(t *testing.T) {
	p := goldenProfile("x86")
	raw, err := p.ChromeTrace("qx")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range decodeTrace(t, raw) {
		if e["ph"] != "X" {
			continue
		}
		args := e["args"].(map[string]any)
		if _, ok := args["energy_uj"]; ok {
			t.Error("x86 trace must not claim activity energy")
		}
		if e["name"] == "Scan(t)" {
			if dur := e["dur"].(float64); dur != 210 { // 210000 ns = 210 µs
				t.Errorf("scan duration = %v µs, want 210", dur)
			}
		}
	}
}

func TestTraceBuilderMultiQueryAndNilSafety(t *testing.T) {
	b := NewTraceBuilder()
	if !b.Empty() {
		t.Fatal("new builder should be empty")
	}
	b.AddQuery("nil", nil) // must not panic or add events
	if !b.Empty() {
		t.Fatal("nil profile must add nothing")
	}
	b.AddQuery("a", goldenProfile("dpu"))
	b.AddQuery("b", goldenProfile("x86"))
	raw, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, e := range decodeTrace(t, raw) {
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want two distinct processes", pids)
	}
	// Empty builder still writes a valid document.
	raw, err = NewTraceBuilder().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if events := decodeTrace(t, raw); len(events) != 0 {
		t.Fatalf("empty builder produced %d events", len(events))
	}
}
