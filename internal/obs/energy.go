package obs

import (
	"fmt"

	"rapid/internal/power"
)

// Per-operator energy attribution. The profile already reconciles cycles
// and DMS bytes exactly against the whole-query counters; pricing both
// sides with the integer femtojoule rates of power.EnergyModel preserves
// that exactness, so "per-span joules sum to whole-query joules" is an
// invariant checked without tolerance. The uncore/idle floor belongs to
// the query as a whole (cores idle inside an operator still burn it), so
// it appears only in the query breakdown, never in a span.

// defaultEnergyModel is the model used where no explicit one is threaded
// (Summary, Format).
func defaultEnergyModel() power.EnergyModel { return power.DefaultEnergyModel() }

func fjJoules(fj int64) float64 { return float64(fj) / power.FJPerJoule }

// SpanEnergy is one operator's priced activity.
type SpanEnergy struct {
	ID         int
	Name       string
	CoreFJ     int64
	DMSReadFJ  int64
	DMSWriteFJ int64
}

// ActivityFJ returns the span's total activity energy in femtojoules.
func (e SpanEnergy) ActivityFJ() int64 { return e.CoreFJ + e.DMSReadFJ + e.DMSWriteFJ }

// Joules returns the span's total activity energy in joules.
func (e SpanEnergy) Joules() float64 { return fjJoules(e.ActivityFJ()) }

// EnergyReport prices a finalized profile under an energy model.
type EnergyReport struct {
	Model power.EnergyModel
	// Spans holds per-operator activity energy, index-aligned with the
	// profile's Defs.
	Spans []SpanEnergy
	// Query is the whole-query breakdown priced from the frozen totals
	// (including the idle floor over the simulated interval).
	Query power.Breakdown
	// ProvisionedJ is the §7.4 provisioned-power energy of the same
	// interval, the upper bound on Query.TotalJoules().
	ProvisionedJ float64
	// RowsOut is the root operator's output cardinality, for joules/row.
	RowsOut int64
}

// SpanActivityFJ sums the per-span activity energies.
func (r EnergyReport) SpanActivityFJ() int64 {
	var t int64
	for _, s := range r.Spans {
		t += s.ActivityFJ()
	}
	return t
}

// JoulesPerRow returns total energy per result row (0 for no rows).
func (r EnergyReport) JoulesPerRow() float64 {
	if r.RowsOut <= 0 {
		return 0
	}
	return r.Query.TotalJoules() / float64(r.RowsOut)
}

// Energy prices the profile's spans and totals under m. Valid on any
// profile; only DPU-mode profiles carry non-zero activity (ModeX86 runs
// with the cycle and DMS accounting off).
func (p *Profile) Energy(m power.EnergyModel) EnergyReport {
	rep := EnergyReport{Model: m}
	if p == nil {
		return rep
	}
	rep.Spans = make([]SpanEnergy, len(p.Defs))
	for i, d := range p.Defs {
		s := p.spans[i]
		core, rd, wr := m.ActivityFJ(s.Cycles(), s.ReadBytes(), s.WriteBytes())
		rep.Spans[i] = SpanEnergy{ID: d.ID, Name: d.Name, CoreFJ: core, DMSReadFJ: rd, DMSWriteFJ: wr}
	}
	rep.Query = m.Activity(p.TotalCycles(), p.totals.DMSReadBytes, p.totals.DMSWriteBytes, p.totals.SimSeconds)
	rep.ProvisionedJ = m.ProvisionedJoules(p.totals.SimSeconds)
	if len(p.spans) > 0 {
		rep.RowsOut = p.spans[0].RowsOut()
	}
	return rep
}

// CheckEnergyInvariants verifies the energy decomposition of a finalized
// profile:
//
//  1. per-span activity joules sum *exactly* (integer femtojoules, no
//     tolerance) to the whole-query activity joules priced from the
//     engine's own counters;
//  2. on DPU profiles, total energy (activity + idle floor) never exceeds
//     the provisioned-power energy of the same simulated interval — the
//     Fig 14 provisioned methodology stays recoverable as a bound.
func (p *Profile) CheckEnergyInvariants(m power.EnergyModel) error {
	if p == nil {
		return nil
	}
	if !p.finalized {
		return fmt.Errorf("obs: profile not finalized")
	}
	rep := p.Energy(m)
	if got, want := rep.SpanActivityFJ(), rep.Query.ActivityFJ(); got != want {
		return fmt.Errorf("obs: span energies sum to %d fJ, whole-query activity is %d fJ", got, want)
	}
	if p.isDPU() {
		if total, bound := rep.Query.TotalJoules(), rep.ProvisionedJ; total > bound {
			return fmt.Errorf("obs: activity energy %g J exceeds provisioned bound %g J (sim %gs at %g W)",
				total, bound, p.totals.SimSeconds, m.Provisioned.Watts)
		}
	}
	return nil
}
