package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-exposition rendering of a Registry (format version
// 0.0.4, the plain-text scrape format). The output is deterministic: one
// block per metric in name order, each with # HELP (when known), # TYPE
// and the sample lines. Histograms render cumulatively with le labels plus
// the _sum and _count series, per the format's histogram convention.

// PrometheusContentType is the Content-Type for the exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if err := writeMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

// RenderPrometheus renders the registry to a string.
func (r *Registry) RenderPrometheus() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

func writeMetric(w io.Writer, m Metric) error {
	name := sanitizeMetricName(m.Name)
	if m.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, m.Help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Kind); err != nil {
		return err
	}
	switch m.Kind {
	case KindHistogram:
		var cum int64
		for i, c := range m.Hist.Counts {
			cum += c
			le := "+Inf"
			if i < len(m.Hist.Bounds) {
				le = formatFloat(m.Hist.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(m.Hist.Sum), name, m.Hist.Count); err != nil {
			return err
		}
	default:
		if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// sanitizeMetricName maps a registry name onto the metric-name alphabet
// [a-zA-Z_:][a-zA-Z0-9_:]*. Engine names are already clean; this is a
// guard against ad-hoc names leaking format-breaking characters.
func sanitizeMetricName(name string) string {
	ok := func(i int, r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			return true
		case r >= '0' && r <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i, r := range name {
		if !ok(i, r) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	var b strings.Builder
	for i, r := range name {
		if ok(i, r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
