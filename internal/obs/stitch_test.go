package obs

import "testing"

func TestExchangeSpanFlows(t *testing.T) {
	// Shuffle/broadcast: one flow per non-zero MovedMatrix entry; the rows
	// sum to MovedRows exactly.
	sh := &ExchangeSpan{
		Kind: "shuffle", MovedRows: 7,
		PerSourceRows: []int64{5, 4},
		MovedMatrix:   [][]int64{{0, 3}, {4, 0}},
	}
	flows := sh.Flows()
	if len(flows) != 2 {
		t.Fatalf("shuffle flows = %d, want 2", len(flows))
	}
	var sum int64
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("self-flow %+v", f)
		}
		if f.Dst < 0 {
			t.Fatalf("shuffle flow to coordinator: %+v", f)
		}
		sum += f.Rows
	}
	if sum != sh.MovedRows {
		t.Fatalf("flow rows sum to %d, MovedRows is %d", sum, sh.MovedRows)
	}

	// Gather: nil matrix, every contributing source flows to the
	// coordinator (Dst -1).
	g := &ExchangeSpan{Kind: "gather", MovedRows: 9, PerSourceRows: []int64{4, 0, 5}}
	gf := g.Flows()
	if len(gf) != 2 {
		t.Fatalf("gather flows = %d, want 2 (node 1 contributed nothing)", len(gf))
	}
	sum = 0
	for _, f := range gf {
		if f.Dst != -1 {
			t.Fatalf("gather flow dst = %d, want -1 (coordinator)", f.Dst)
		}
		sum += f.Rows
	}
	if sum != g.MovedRows {
		t.Fatalf("gather flow rows sum to %d, MovedRows is %d", sum, g.MovedRows)
	}
}

// fragProfile builds a one-operator finalized DPU profile with the given
// per-core cycles, for lane-layout tests.
func fragProfile(cycles ...int64) *Profile {
	p := NewProfile("dpu", len(cycles), 1e9, []SpanDef{{ID: 0, Name: "scan", Kind: KindPipeline}})
	for core, cy := range cycles {
		p.Span(0).AddCycles(core, cy)
		p.Span(0).TickOut(core, 10)
	}
	return p
}

func TestAddDistributedQueryStructure(t *testing.T) {
	const nodes = 2
	steps := []DistStep{
		{Label: "scan", NodeProfiles: []*Profile{fragProfile(1000, 2000), fragProfile(500)}},
		{Label: "shuffle", Exchange: &ExchangeSpan{
			Kind: "shuffle", Label: "k", Seconds: 1e-3, MovedRows: 3,
			PerSourceRows: []int64{2, 1}, PerDestRows: []int64{1, 2},
			MovedMatrix: [][]int64{{0, 2}, {1, 0}},
		}},
		{Label: "gather", Exchange: &ExchangeSpan{
			Kind: "gather", Label: "result", Seconds: 2e-3, MovedRows: 5,
			RowsOut: 5, PerSourceRows: []int64{3, 2},
		}},
		{Label: "merge", Coord: fragProfile(4000)},
	}
	b := NewTraceBuilder()
	b.AddDistributedQuery("Q", "dpu", nodes, steps)

	// One lane per node plus the coordinator, named via thread_name metadata.
	threadNames := map[int]string{}
	var procName string
	for _, ev := range b.events {
		if ev.Ph != "M" {
			continue
		}
		switch ev.Name {
		case "process_name":
			procName = ev.Args["name"].(string)
		case "thread_name":
			threadNames[ev.Tid] = ev.Args["name"].(string)
		}
	}
	if procName != "Q (dpu, 2 nodes)" {
		t.Fatalf("process name = %q", procName)
	}
	want := map[int]string{0: "coordinator", 1: "node 0", 2: "node 1"}
	if len(threadNames) != len(want) {
		t.Fatalf("thread lanes = %v, want %v", threadNames, want)
	}
	for tid, name := range want {
		if threadNames[tid] != name {
			t.Fatalf("tid %d named %q, want %q", tid, threadNames[tid], name)
		}
	}

	// Flow events come in s/f pairs with matching IDs, source on the sender
	// lane, finish on the receiver lane, each carrying the stream rows.
	starts := map[int]traceEvent{}
	finishes := map[int]traceEvent{}
	for _, ev := range b.events {
		switch ev.Ph {
		case "s":
			starts[ev.ID] = ev
		case "f":
			if ev.BP != "e" {
				t.Fatalf("flow finish without bp=e: %+v", ev)
			}
			finishes[ev.ID] = ev
		}
	}
	// 2 shuffle streams + 2 gather streams.
	if len(starts) != 4 || len(finishes) != 4 {
		t.Fatalf("flow pairs = %d/%d, want 4/4", len(starts), len(finishes))
	}
	var flowRows int64
	for id, s := range starts {
		f, ok := finishes[id]
		if !ok {
			t.Fatalf("flow %d has no finish event", id)
		}
		if f.TsUS <= s.TsUS {
			t.Fatalf("flow %d finish at %.3fus not after start %.3fus", id, f.TsUS, s.TsUS)
		}
		if s.Args["rows"] != f.Args["rows"] {
			t.Fatalf("flow %d rows differ: %v vs %v", id, s.Args["rows"], f.Args["rows"])
		}
		flowRows += s.Args["rows"].(int64)
	}
	if flowRows != 3+5 {
		t.Fatalf("total flow rows = %d, want 8 (shuffle 3 + gather 5)", flowRows)
	}

	// Lane layout: fragment slices only on node lanes, coordinator fragment
	// on tid 0 after the gather; every complete event has a duration.
	var coordFrag, nodeFrags int
	for _, ev := range b.events {
		if ev.Ph != "X" {
			continue
		}
		if ev.DurUS == nil {
			t.Fatalf("complete event without duration: %+v", ev)
		}
		if ev.Cat == string(KindPipeline) {
			if ev.Tid == 0 {
				coordFrag++
			} else {
				nodeFrags++
			}
		}
	}
	if nodeFrags != 2 || coordFrag != 1 {
		t.Fatalf("fragment slices node/coord = %d/%d, want 2/1", nodeFrags, coordFrag)
	}

	// A second query gets a fresh pid and fresh flow IDs.
	b.AddDistributedQuery("Q2", "dpu", nodes, steps)
	pids := map[int]bool{}
	for _, ev := range b.events {
		pids[ev.Pid] = true
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want 2 distinct processes", pids)
	}
}
