package qcache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fixedVersions(vs ...Version) func(string) (Version, bool) {
	return func(name string) (Version, bool) {
		for _, v := range vs {
			if v.Name == name {
				return v, true
			}
		}
		return Version{}, false
	}
}

func TestResultHitMissStale(t *testing.T) {
	c := New(Config{})
	k := Key{Template: 1, Params: 2, Mode: "x86", Nodes: 1}
	v1 := Version{Name: "t", MutSCN: 3, Epoch: 7}

	if _, st := c.GetResult(k, fixedVersions(v1)); st != Miss {
		t.Fatalf("want miss, got %v", st)
	}
	if !c.PutResult(k, &Result{Payload: "p", Bytes: 100, Versions: []Version{v1}}) {
		t.Fatal("put rejected")
	}
	r, st := c.GetResult(k, fixedVersions(v1))
	if st != Hit || r.Payload != "p" {
		t.Fatalf("want hit, got %v %v", st, r)
	}
	// Version vector moves -> stale, entry evicted.
	v2 := Version{Name: "t", MutSCN: 4, Epoch: 8}
	if _, st := c.GetResult(k, fixedVersions(v2)); st != Stale {
		t.Fatalf("want stale, got %v", st)
	}
	if _, st := c.GetResult(k, fixedVersions(v2)); st != Miss {
		t.Fatalf("stale entry must be removed; got %v", st)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Stale != 1 || s.Invalidations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEpochAloneInvalidates(t *testing.T) {
	c := New(Config{})
	k := Key{Template: 9}
	v := Version{Name: "t", MutSCN: 5, Epoch: 1}
	c.PutResult(k, &Result{Bytes: 1, Versions: []Version{v}})
	// Same mutation SCN, bumped epoch (checkpoint/compact path).
	if _, st := c.GetResult(k, fixedVersions(Version{Name: "t", MutSCN: 5, Epoch: 2})); st != Stale {
		t.Fatalf("epoch bump must invalidate, got %v", st)
	}
}

func TestLRUByteBudgetEviction(t *testing.T) {
	c := New(Config{MaxResultBytes: 1000, MaxEntryBytes: 1000})
	cur := fixedVersions(Version{Name: "t"})
	for i := 0; i < 4; i++ {
		c.PutResult(Key{Template: uint64(i)}, &Result{Bytes: 300, Versions: []Version{{Name: "t"}}})
	}
	// 4*300 > 1000: oldest (template 0) must be gone.
	if _, st := c.GetResult(Key{Template: 0}, cur); st != Miss {
		t.Fatal("oldest entry should be evicted")
	}
	if _, st := c.GetResult(Key{Template: 3}, cur); st != Hit {
		t.Fatal("newest entry should survive")
	}
	if s := c.Stats(); s.Evictions != 1 || s.ResidentBytes != 900 || s.ResidentEntries != 3 {
		t.Fatalf("stats = %+v", s)
	}
	// Touch template 1, then overflow: template 2 (now LRU) goes first.
	c.GetResult(Key{Template: 1}, cur)
	c.PutResult(Key{Template: 4}, &Result{Bytes: 300, Versions: []Version{{Name: "t"}}})
	if _, st := c.GetResult(Key{Template: 1}, cur); st != Hit {
		t.Fatal("recently used entry must survive eviction")
	}
	if _, st := c.GetResult(Key{Template: 2}, cur); st != Miss {
		t.Fatal("LRU entry should have been evicted")
	}
}

func TestAdmissionPolicy(t *testing.T) {
	c := New(Config{MaxResultBytes: 1000, MaxEntryBytes: 100, MinCostNs: 50})
	if c.PutResult(Key{Template: 1}, &Result{Bytes: 101, WallNs: 100}) {
		t.Fatal("oversized result must be rejected")
	}
	if c.PutResult(Key{Template: 2}, &Result{Bytes: 10, WallNs: 49}) {
		t.Fatal("too-cheap result must be rejected")
	}
	if !c.PutResult(Key{Template: 3}, &Result{Bytes: 100, WallNs: 50}) {
		t.Fatal("conforming result must be admitted")
	}
	if s := c.Stats(); s.Rejects != 2 {
		t.Fatalf("rejects = %d", s.Rejects)
	}
}

func TestPlanCacheValidationAndCapacity(t *testing.T) {
	c := New(Config{PlanEntries: 2})
	v := Version{Name: "t", MutSCN: 1, Epoch: 1}
	pk := PlanKey{Template: 1, Scope: "host"}
	c.PutPlan(pk, &Plan{Versions: []Version{v}})
	if p := c.GetPlan(pk, fixedVersions(v)); p == nil {
		t.Fatal("want plan hit")
	}
	if p := c.GetPlan(pk, fixedVersions(Version{Name: "t", MutSCN: 2, Epoch: 1})); p != nil {
		t.Fatal("stale plan must not be served")
	}
	if p := c.GetPlan(pk, fixedVersions(v)); p != nil {
		t.Fatal("stale plan must be dropped")
	}
	// Capacity 2: third insert evicts the LRU plan.
	c.PutPlan(PlanKey{Template: 10}, &Plan{Versions: []Version{v}})
	c.PutPlan(PlanKey{Template: 11}, &Plan{Versions: []Version{v}})
	c.GetPlan(PlanKey{Template: 10}, fixedVersions(v)) // touch 10
	c.PutPlan(PlanKey{Template: 12}, &Plan{Versions: []Version{v}})
	if p := c.GetPlan(PlanKey{Template: 11}, fixedVersions(v)); p != nil {
		t.Fatal("LRU plan should be evicted at capacity")
	}
	if p := c.GetPlan(PlanKey{Template: 10}, fixedVersions(v)); p == nil {
		t.Fatal("recently used plan should survive")
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := New(Config{})
	k := Key{Template: 42}
	var executions atomic.Int64
	var wg sync.WaitGroup
	results := make([]string, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				f, leader := c.Begin(k)
				if leader {
					executions.Add(1)
					time.Sleep(2 * time.Millisecond) // let followers pile on
					f.Finish(&Result{Payload: "r"})
					results[i] = "r"
					return
				}
				if r, ok := f.Wait(context.Background()); ok {
					results[i] = r.Payload.(string)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("want exactly 1 execution, got %d", got)
	}
	for i, r := range results {
		if r != "r" {
			t.Fatalf("client %d got %q", i, r)
		}
	}
	if s := c.Stats(); s.Shared != 63 {
		t.Fatalf("shared = %d, want 63", s.Shared)
	}
}

func TestSingleflightLeaderFailureReleasesFollowers(t *testing.T) {
	c := New(Config{})
	k := Key{Template: 7}
	f, leader := c.Begin(k)
	if !leader {
		t.Fatal("expected leadership")
	}
	done := make(chan bool)
	go func() {
		f2, leader2 := c.Begin(k)
		if leader2 {
			t.Error("second Begin while flight open must follow")
			f2.Finish(nil)
			done <- false
			return
		}
		_, ok := f2.Wait(context.Background())
		done <- ok
	}()
	time.Sleep(time.Millisecond)
	f.Finish(nil) // leader failed
	if ok := <-done; ok {
		t.Fatal("follower of a failed leader must re-execute (ok=false)")
	}
	// Key must be free again.
	if _, leader := c.Begin(k); !leader {
		t.Fatal("key must be released after Finish")
	}
}

func TestSingleflightWaitRespectsContext(t *testing.T) {
	c := New(Config{})
	f, _ := c.Begin(Key{Template: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	follower, leader := c.Begin(Key{Template: 1})
	if leader {
		t.Fatal("should follow")
	}
	if _, ok := follower.Wait(ctx); ok {
		t.Fatal("want ok=false on context timeout")
	}
	f.Finish(nil)
}

func TestPutResultReplacesExisting(t *testing.T) {
	c := New(Config{})
	k := Key{Template: 1}
	v := []Version{{Name: "t"}}
	c.PutResult(k, &Result{Payload: "a", Bytes: 10, Versions: v})
	c.PutResult(k, &Result{Payload: "b", Bytes: 20, Versions: v})
	r, st := c.GetResult(k, fixedVersions(Version{Name: "t"}))
	if st != Hit || r.Payload != "b" {
		t.Fatalf("want replaced entry, got %v %v", st, r)
	}
	if s := c.Stats(); s.ResidentBytes != 20 || s.ResidentEntries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
