// Package qcache is the two-tier query cache of DESIGN.md §10: a plan
// cache holding bound logical-plan skeletons keyed by the literal-
// normalized SQL template, and a result cache holding whole query results
// keyed by (template, parameter vector, execution mode, node count) and
// validated against per-table version vectors (host mutation SCN + storage
// data epoch). Entries never expire by time — they are invalidated by
// version mismatch, evicted by an LRU byte budget, and gated by an
// admission policy (oversized results are not cached; cheap ones can be
// skipped via MinCostNs). A singleflight layer collapses concurrent
// identical misses so a thundering herd of one dashboard query executes
// once per epoch. The cache itself is engine-agnostic: callers capture
// version vectors before execution and re-validate before publishing, so a
// mutation interleaved with an execution can never produce a stale-keyed
// entry (see storage.Table.DataEpoch for the ordering contract).
package qcache

import (
	"container/list"
	"context"
	"sync"

	"rapid/internal/obs"
	"rapid/internal/plan"
)

// Version is one table's position in the version vector: the host-level
// mutation SCN and the storage-level data epoch. Both must match exactly
// for an entry to be served — the SCN tracks host DML, the epoch tracks
// replica-side publications (checkpoint apply, compaction) that change
// what an offloaded scan sees without a new host SCN.
type Version struct {
	Name   string
	MutSCN uint64
	Epoch  uint64
}

// Key identifies one result-cache entry.
type Key struct {
	Template uint64 // normalized template fingerprint
	Params   uint64 // parameter vector fingerprint
	Mode     string // execution mode discriminator (engine + prune flags)
	Nodes    int    // tray width (1 = single host)
}

// PlanKey identifies one plan-cache entry. Params participates because
// literals are bound into the plan (encoded against dictionaries), so a
// skeleton is only reusable for the exact parameter vector.
type PlanKey struct {
	Template uint64
	Params   uint64
	Scope    string // "host" or "tray<N>" — plans bind against different catalogs
}

// Status classifies one result-cache interaction.
type Status int

const (
	Miss Status = iota
	Hit
	Stale  // entry found but version vector moved; evicted
	Shared // produced by another in-flight execution (singleflight)
)

func (s Status) String() string {
	return [...]string{"miss", "hit", "stale", "shared"}[s]
}

// Result is one cached query result plus the bookkeeping the cache and its
// callers need: the opaque engine payload, its estimated footprint, the
// version vector it was computed against, and the billed cost of the
// execution that produced it (for CyclesSaved/EnergySavedNJ accounting on
// hits).
type Result struct {
	Payload       any
	Bytes         int64
	Versions      []Version
	Rows          int
	CyclesSaved   int64
	EnergySavedNJ int64
	WallNs        int64 // wall time of the producing execution

	key  Key
	elem *list.Element
}

// Plan is one cached bound-plan skeleton.
type Plan struct {
	Root     plan.Node
	Versions []Version

	key  PlanKey
	elem *list.Element
}

// Config sizes the cache. Zero values select the defaults.
type Config struct {
	MaxResultBytes int64 // result-tier byte budget (default 64 MiB)
	MaxEntryBytes  int64 // per-entry admission cap (default budget/8)
	MinCostNs      int64 // only cache results whose execution took >= this
	PlanEntries    int   // plan-tier entry capacity (default 256)
	Metrics        *obs.Registry
}

const (
	defaultMaxResultBytes = 64 << 20
	defaultPlanEntries    = 256
)

// Cache is the shared two-tier query cache. One instance serves a whole
// host database and every tray built on top of it.
type Cache struct {
	maxBytes     int64
	maxEntry     int64
	minCostNs    int64
	planCapacity int

	mu      sync.Mutex
	bytes   int64
	results map[Key]*list.Element
	lru     *list.List // of *Result, front = most recent
	flights map[Key]*Flight

	pmu   sync.Mutex
	plans map[PlanKey]*list.Element
	plru  *list.List // of *Plan

	hits, misses, stales, shared    *obs.Counter
	evictions, invalidations        *obs.Counter
	bypasses, rejects               *obs.Counter
	bytesTotal                      *obs.Counter
	residentBytes, residentEntries  *obs.Gauge
	planHits, planMisses, planDrops *obs.Counter
}

// New builds a cache; reg may be nil (metrics become local-only).
func New(cfg Config) *Cache {
	if cfg.MaxResultBytes <= 0 {
		cfg.MaxResultBytes = defaultMaxResultBytes
	}
	if cfg.MaxEntryBytes <= 0 {
		cfg.MaxEntryBytes = cfg.MaxResultBytes / 8
	}
	if cfg.PlanEntries <= 0 {
		cfg.PlanEntries = defaultPlanEntries
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Cache{
		maxBytes:     cfg.MaxResultBytes,
		maxEntry:     cfg.MaxEntryBytes,
		minCostNs:    cfg.MinCostNs,
		planCapacity: cfg.PlanEntries,
		results:      make(map[Key]*list.Element),
		lru:          list.New(),
		flights:      make(map[Key]*Flight),
		plans:        make(map[PlanKey]*list.Element),
		plru:         list.New(),

		hits:            reg.Counter("rapid_cache_hits_total"),
		misses:          reg.Counter("rapid_cache_misses_total"),
		stales:          reg.Counter("rapid_cache_stale_total"),
		shared:          reg.Counter("rapid_cache_singleflight_shared_total"),
		evictions:       reg.Counter("rapid_cache_evictions_total"),
		invalidations:   reg.Counter("rapid_cache_invalidations_total"),
		bypasses:        reg.Counter("rapid_cache_bypass_total"),
		rejects:         reg.Counter("rapid_cache_admission_rejects_total"),
		bytesTotal:      reg.Counter("rapid_cache_bytes_total"),
		residentBytes:   reg.Gauge("rapid_cache_resident_bytes"),
		residentEntries: reg.Gauge("rapid_cache_resident_entries"),
		planHits:        reg.Counter("rapid_plan_cache_hits_total"),
		planMisses:      reg.Counter("rapid_plan_cache_misses_total"),
		planDrops:       reg.Counter("rapid_plan_cache_invalidations_total"),
	}
	return c
}

// Describe registers help strings for the cache metrics on reg.
func Describe(reg *obs.Registry) {
	reg.Describe("rapid_cache_hits_total", "result-cache hits served without execution")
	reg.Describe("rapid_cache_misses_total", "result-cache misses (no entry for the key)")
	reg.Describe("rapid_cache_stale_total", "result-cache entries found but invalidated by a version-vector mismatch")
	reg.Describe("rapid_cache_singleflight_shared_total", "queries served by joining another client's in-flight execution")
	reg.Describe("rapid_cache_evictions_total", "result-cache entries evicted by the LRU byte budget")
	reg.Describe("rapid_cache_invalidations_total", "cache entries dropped because a table's version vector moved")
	reg.Describe("rapid_cache_bypass_total", "queries that skipped the cache (NoCache, non-cacheable shape, or fallback result)")
	reg.Describe("rapid_cache_admission_rejects_total", "results denied admission (oversized or under MinCostNs)")
	reg.Describe("rapid_cache_bytes_total", "cumulative bytes admitted into the result cache")
	reg.Describe("rapid_cache_resident_bytes", "bytes currently resident in the result cache")
	reg.Describe("rapid_cache_resident_entries", "entries currently resident in the result cache")
	reg.Describe("rapid_plan_cache_hits_total", "plan-cache hits (parse+bind skipped)")
	reg.Describe("rapid_plan_cache_misses_total", "plan-cache misses")
	reg.Describe("rapid_plan_cache_invalidations_total", "plan-cache entries dropped (stale versions or capacity)")
}

// Validate reports whether every version in the vector still matches what
// current returns. current returning ok=false (table dropped) fails it.
func Validate(versions []Version, current func(name string) (Version, bool)) bool {
	for _, v := range versions {
		cur, ok := current(v.Name)
		if !ok || cur.MutSCN != v.MutSCN || cur.Epoch != v.Epoch {
			return false
		}
	}
	return true
}

// GetResult looks up k, validating the stored version vector against
// current. Stale entries are removed and counted as invalidations.
func (c *Cache) GetResult(k Key, current func(name string) (Version, bool)) (*Result, Status) {
	c.mu.Lock()
	elem, ok := c.results[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, Miss
	}
	r := elem.Value.(*Result)
	c.mu.Unlock()
	// Validation runs outside c.mu: current() reads engine-side state and
	// must not nest under the cache lock. The entry may be concurrently
	// evicted — removeIfPresent below tolerates that.
	if !Validate(r.Versions, current) {
		c.removeIfPresent(r)
		c.stales.Inc()
		c.invalidations.Inc()
		return nil, Stale
	}
	c.mu.Lock()
	if r.elem != nil {
		c.lru.MoveToFront(r.elem)
	}
	c.mu.Unlock()
	c.hits.Inc()
	return r, Hit
}

// PutResult admits r under k, evicting LRU entries to fit the byte budget.
// Returns false when the admission policy rejects it.
func (c *Cache) PutResult(k Key, r *Result) bool {
	if r.Bytes > c.maxEntry || (c.minCostNs > 0 && r.WallNs < c.minCostNs) {
		c.rejects.Inc()
		return false
	}
	c.mu.Lock()
	if old, ok := c.results[k]; ok {
		c.removeLocked(old.Value.(*Result))
	}
	for c.bytes+r.Bytes > c.maxBytes && c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back().Value.(*Result))
		c.evictions.Inc()
	}
	r.key = k
	r.elem = c.lru.PushFront(r)
	c.results[k] = r.elem
	c.bytes += r.Bytes
	c.residentBytes.Set(c.bytes)
	c.residentEntries.Set(int64(c.lru.Len()))
	c.mu.Unlock()
	c.bytesTotal.Add(r.Bytes)
	return true
}

// removeLocked unlinks r (c.mu held).
func (c *Cache) removeLocked(r *Result) {
	if r.elem == nil {
		return
	}
	c.lru.Remove(r.elem)
	delete(c.results, r.key)
	c.bytes -= r.Bytes
	r.elem = nil
	c.residentBytes.Set(c.bytes)
	c.residentEntries.Set(int64(c.lru.Len()))
}

func (c *Cache) removeIfPresent(r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(r)
}

// NoteBypass records a query that consulted the cache but was ineligible.
func (c *Cache) NoteBypass() { c.bypasses.Inc() }

// GetPlan looks up a bound-plan skeleton, validating its version vector.
func (c *Cache) GetPlan(k PlanKey, current func(name string) (Version, bool)) *Plan {
	c.pmu.Lock()
	elem, ok := c.plans[k]
	if !ok {
		c.pmu.Unlock()
		c.planMisses.Inc()
		return nil
	}
	p := elem.Value.(*Plan)
	c.pmu.Unlock()
	if !Validate(p.Versions, current) {
		c.pmu.Lock()
		if p.elem != nil {
			c.plru.Remove(p.elem)
			delete(c.plans, p.key)
			p.elem = nil
		}
		c.pmu.Unlock()
		c.planDrops.Inc()
		c.planMisses.Inc()
		return nil
	}
	c.pmu.Lock()
	if p.elem != nil {
		c.plru.MoveToFront(p.elem)
	}
	c.pmu.Unlock()
	c.planHits.Inc()
	return p
}

// PutPlan stores a bound-plan skeleton, evicting the LRU entry at capacity.
func (c *Cache) PutPlan(k PlanKey, p *Plan) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if old, ok := c.plans[k]; ok {
		c.plru.Remove(old)
		delete(c.plans, k)
	}
	for c.plru.Len() >= c.planCapacity {
		back := c.plru.Back()
		bp := back.Value.(*Plan)
		c.plru.Remove(back)
		delete(c.plans, bp.key)
		bp.elem = nil
		c.planDrops.Inc()
	}
	p.key = k
	p.elem = c.plru.PushFront(p)
	c.plans[k] = p.elem
}

// Flight is one in-progress execution of a missed key; followers of the
// same key wait on it instead of re-executing.
type Flight struct {
	c    *Cache
	k    Key
	done chan struct{}
	res  *Result
}

// Begin joins or opens the flight for k. The second return is true for the
// leader, who MUST call Finish exactly once (nil on failure) or followers
// block until their contexts cancel.
func (c *Cache) Begin(k Key) (*Flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[k]; ok {
		return f, false
	}
	f := &Flight{c: c, k: k, done: make(chan struct{})}
	c.flights[k] = f
	return f, true
}

// Finish publishes the leader's result (nil when the execution failed or
// the result was not publishable) and releases the key for new flights.
func (f *Flight) Finish(r *Result) {
	f.c.mu.Lock()
	if f.c.flights[f.k] == f {
		delete(f.c.flights, f.k)
	}
	f.c.mu.Unlock()
	f.res = r
	close(f.done)
}

// Wait blocks until the leader finishes or ctx is done. ok=false means the
// follower must execute on its own (leader failed, or ctx canceled —
// distinguished by ctx.Err()).
func (f *Flight) Wait(ctx context.Context) (*Result, bool) {
	select {
	case <-f.done:
		if f.res == nil {
			return nil, false
		}
		f.c.shared.Inc()
		return f.res, true
	case <-ctx.Done():
		return nil, false
	}
}

// Snapshot is a point-in-time view of the cache counters for tests and the
// bench report (works without an external registry).
type Snapshot struct {
	Hits, Misses, Stale, Shared     int64
	Evictions, Invalidations        int64
	Bypasses, Rejects               int64
	ResidentBytes, ResidentEntries  int64
	PlanHits, PlanMisses, PlanDrops int64
}

// Stats returns the current counter snapshot.
func (c *Cache) Stats() Snapshot {
	return Snapshot{
		Hits:            c.hits.Value(),
		Misses:          c.misses.Value(),
		Stale:           c.stales.Value(),
		Shared:          c.shared.Value(),
		Evictions:       c.evictions.Value(),
		Invalidations:   c.invalidations.Value(),
		Bypasses:        c.bypasses.Value(),
		Rejects:         c.rejects.Value(),
		ResidentBytes:   c.residentBytes.Value(),
		ResidentEntries: c.residentEntries.Value(),
		PlanHits:        c.planHits.Value(),
		PlanMisses:      c.planMisses.Value(),
		PlanDrops:       c.planDrops.Value(),
	}
}
