package qcomp

import (
	"errors"
	"fmt"
	"strings"

	"rapid/internal/coltypes"
	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// Compiled is a physical query execution plan (QEP) ready to run on a
// qef.Context.
type Compiled struct {
	root     physNode
	spanDefs []obs.SpanDef
}

// Compile lowers a logical plan into a physical QEP.
func Compile(n plan.Node) (*Compiled, error) { return CompileWithInputs(n, nil) }

// CompileWithInputs lowers a plan some of whose subtrees are already
// materialized relations: a node found in inputs compiles to a relation
// leaf instead of being lowered recursively. The distributed executor uses
// this to splice exchange outputs (shuffled/broadcast/gathered relations)
// under residual plan fragments.
func CompileWithInputs(n plan.Node, inputs map[plan.Node]*ops.Relation) (*Compiled, error) {
	pn, err := compileNode(n, inputs)
	if err != nil {
		return nil, err
	}
	reg := &spanReg{}
	pn.annotate(reg, -1)
	return &Compiled{root: pn, spanDefs: reg.defs}, nil
}

// Execute runs the QEP.
func (c *Compiled) Execute(ctx *qef.Context) (*ops.Relation, error) {
	return c.root.execute(ctx)
}

// Explain renders the physical plan.
func (c *Compiled) Explain() string {
	var sb strings.Builder
	c.root.explain(&sb, 0)
	return sb.String()
}

// physNode is a physical operator tree node.
type physNode interface {
	execute(ctx *qef.Context) (*ops.Relation, error)
	fields() []plan.Field
	estRows() int64
	explain(sb *strings.Builder, depth int)
	// annotate registers the node's operator span(s) under parent and
	// returns the span ID representing the node's output.
	annotate(reg *spanReg, parent int) int
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

// ---------------------------------------------------------------------------
// Pipeline: scan [+filter] [+project] [+aggregate] executed as one task.

type pipeStepKind int

const (
	stepFilter pipeStepKind = iota
	stepProject
)

type pipeStep struct {
	kind  pipeStepKind
	preds []ops.Predicate
	exprs []ops.Expr
	keep  []int
}

type terminalKind int

const (
	termCollect terminalKind = iota
	termScalarAgg
	termGroupBy
)

type pipelineNode struct {
	// Source: either a base-table snapshot or an upstream physical node.
	snap     *storage.Snapshot
	scanCols []int
	input    physNode

	cols  []colInfo
	steps []pipeStep
	est   int64

	terminal  terminalKind
	aggSpecs  []ops.AggSpec
	groupCols []int
	maxGroups int
	finals    []finalSpec
	outFields []plan.Field

	// Operator span IDs assigned by annotate: the source, each step, and
	// the terminal.
	srcID   int
	stepIDs []int
	termID  int
}

// finalSpec maps lowered agg outputs to requested columns (AVG lowering).
type finalSpec struct {
	kind    plan.AggKind
	specIdx int // primary spec column (after keys)
	cntIdx  int // count spec column for AVG
}

func (p *pipelineNode) fields() []plan.Field {
	if p.terminal != termCollect {
		return p.outFields
	}
	fs := make([]plan.Field, len(p.cols))
	for i, c := range p.cols {
		fs[i] = c.field
	}
	return fs
}

func (p *pipelineNode) estRows() int64 {
	if p.terminal == termGroupBy || p.terminal == termScalarAgg {
		if p.maxGroups > 0 {
			return int64(p.maxGroups)
		}
		return 1
	}
	return p.est
}

func (p *pipelineNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	if p.snap != nil {
		fmt.Fprintf(sb, "Pipeline[scan %s", p.snap.Table().Name())
	} else {
		sb.WriteString("Pipeline[relation")
	}
	for _, s := range p.steps {
		if s.kind == stepFilter {
			fmt.Fprintf(sb, " -> filter(%d preds)", len(s.preds))
		} else {
			fmt.Fprintf(sb, " -> project(%d exprs)", len(s.exprs)+len(s.keep))
		}
	}
	switch p.terminal {
	case termScalarAgg:
		fmt.Fprintf(sb, " -> agg(%d)", len(p.aggSpecs))
	case termGroupBy:
		fmt.Fprintf(sb, " -> groupby(keys=%d, aggs=%d, maxGroups=%d)", len(p.groupCols), len(p.aggSpecs), p.maxGroups)
	}
	sb.WriteString("]\n")
	if p.input != nil {
		p.input.explain(sb, depth+1)
	}
}

// prunePredicate returns the conjunction of filter predicates that apply
// directly to the scanned tile layout: every stepFilter before the first
// projection (projections re-index columns, so predicates beyond one address
// a different layout). The scan uses it to zone-reject whole chunks; nil
// means no prunable predicate.
func (p *pipelineNode) prunePredicate() ops.Predicate {
	if p.snap == nil {
		return nil
	}
	var preds []ops.Predicate
	for _, s := range p.steps {
		if s.kind != stepFilter {
			break
		}
		preds = append(preds, s.preds...)
	}
	switch len(preds) {
	case 0:
		return nil
	case 1:
		return preds[0]
	}
	return &ops.And{Preds: preds}
}

// zoneSurvivingRows returns the number of rows in chunks the current prune
// predicate cannot reject — an upper bound on the rows any downstream filter
// can pass, which sharpens the selectivity-based cardinality estimate. ok is
// false when the pipeline has no prunable base-table predicate.
func (p *pipelineNode) zoneSurvivingRows() (int64, bool) {
	prune := p.prunePredicate()
	if prune == nil {
		return 0, false
	}
	var rows int64
	for _, cv := range p.snap.Chunks() {
		cv := cv
		zone := func(c int) (storage.Zone, bool) {
			if c < 0 || c >= len(p.scanCols) {
				return storage.Zone{}, false
			}
			return cv.Zone(p.scanCols[c])
		}
		if ops.ZoneReject(prune, zone) {
			continue
		}
		n := int64(cv.Rows)
		if cv.Deleted != nil {
			n -= int64(cv.Deleted.Count())
		}
		rows += n
	}
	return rows, true
}

// stepInCols returns the column count entering each pipeline step: the
// scanned width, narrowed by each projection as the walk proceeds. It sizes
// the MaterializeOp the compiler inserts upstream of every projection.
func (p *pipelineNode) stepInCols() []int {
	cur := len(p.scanCols)
	if p.snap == nil && p.input != nil {
		cur = len(p.input.fields())
	}
	counts := make([]int, len(p.steps))
	for i, s := range p.steps {
		counts[i] = cur
		if s.kind == stepProject {
			cur = len(s.keep) + len(s.exprs)
		}
	}
	return counts
}

// opReqs describes the pipeline to the task former for tile sizing.
func (p *pipelineNode) opReqs() []OpReq {
	rowBytes := 8 * len(p.cols)
	// The scan double-buffers every SOURCE column in DMEM; a projection may
	// narrow p.cols well below that, so size the scan from what it streams,
	// not from the pipeline's output width.
	scanned := len(p.scanCols)
	if p.snap == nil && p.input != nil {
		scanned = len(p.input.fields())
	}
	scanRowBytes := 8 * scanned
	reqs := []OpReq{{
		Name:           "scan",
		DMEMSize:       func(rows int) int { return 2 * rows * scanRowBytes },
		OutBytesPerRow: rowBytes,
		Selectivity:    1,
	}}
	inCols := p.stepInCols()
	for i, s := range p.steps {
		s := s
		if s.kind == stepFilter {
			f := &ops.FilterOp{Preds: s.preds}
			sel := 1.0
			for _, pr := range s.preds {
				sel *= pr.EstSelectivity()
			}
			reqs = append(reqs, OpReq{
				Name:           "filter",
				DMEMSize:       f.DMEMSize,
				OutBytesPerRow: rowBytes,
				Selectivity:    sel,
			})
		} else {
			// The materialization the compiler inserts upstream of the
			// projection claims DMEM too (it holds every gathered input
			// column at once).
			m := &ops.MaterializeOp{RowBytes: 8 * inCols[i]}
			reqs = append(reqs, OpReq{
				Name:           "materialize",
				DMEMSize:       m.DMEMSize,
				OutBytesPerRow: 8 * inCols[i],
				Selectivity:    1,
			})
			pr := &ops.ProjectOp{Exprs: s.exprs, Keep: s.keep}
			reqs = append(reqs, OpReq{
				Name:           "project",
				DMEMSize:       pr.DMEMSize,
				OutBytesPerRow: (len(s.exprs) + len(s.keep)) * 8,
				Selectivity:    1,
			})
		}
	}
	switch p.terminal {
	case termCollect:
		nOut := len(p.cols)
		reqs = append(reqs, OpReq{
			Name: "collect",
			// One widened 8-byte staging vector per output column
			// (CollectSink.DMEMSize).
			DMEMSize:       func(rows int) int { return nOut * 8 * rows },
			OutBytesPerRow: rowBytes,
			Selectivity:    1,
		})
	case termScalarAgg:
		a := &ops.ScalarAggOp{Specs: p.aggSpecs}
		reqs = append(reqs, OpReq{Name: "agg", DMEMSize: a.DMEMSize, OutBytesPerRow: 8, Selectivity: 0})
	case termGroupBy:
		g := &ops.GroupByOp{GroupCols: p.groupCols, Specs: p.aggSpecs, MaxGroups: p.maxGroups}
		reqs = append(reqs, OpReq{Name: "groupby", DMEMSize: g.DMEMSize, OutBytesPerRow: 8, Selectivity: 0})
	}
	return reqs
}

func (p *pipelineNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	tileRows := ChooseTileRows(p.opReqs())

	var inputRel *ops.Relation
	if p.input != nil {
		var err error
		inputRel, err = p.input.execute(ctx)
		if err != nil {
			return nil, err
		}
	}

	// Shared terminal state.
	var sink *ops.CollectSink
	var aggRes *ops.ScalarAggResult
	var merger *ops.GroupMerger
	switch p.terminal {
	case termCollect:
		outCols := make([]ops.Col, len(p.cols))
		for i, c := range p.cols {
			outCols[i] = ops.Col{Name: c.field.Name, Type: c.field.Type, Dict: c.field.Dict}
		}
		sink = ops.NewCollectSink(outCols)
	case termScalarAgg:
		aggRes = ops.NewScalarAggResult(len(p.aggSpecs))
	case termGroupBy:
		merger = ops.NewGroupMerger(len(p.groupCols), p.aggSpecs)
	}

	// Profiling spans (all nil when ctx.Prof is off): each chain edge gets
	// a span wrapper installed once at chain-build time, and the scans run
	// under the source span so per-tile DMS reads land there.
	prof := ctx.Prof
	srcSpan := prof.Span(p.srcID)
	termSpan := prof.Span(p.termID)
	upSpan := func(i int) *obs.OpSpan { // span upstream of steps[i]
		if i == 0 {
			return srcSpan
		}
		return prof.Span(p.stepIDs[i-1])
	}

	inCols := p.stepInCols()
	chainFor := func() qef.Operator {
		var term qef.Operator
		switch p.terminal {
		case termCollect:
			term = sink
		case termScalarAgg:
			term = &ops.ScalarAggOp{Specs: p.aggSpecs, Result: aggRes}
		case termGroupBy:
			term = &ops.GroupByOp{GroupCols: p.groupCols, Specs: p.aggSpecs, MaxGroups: p.maxGroups, Merger: merger}
		}
		termUp := srcSpan
		if len(p.steps) > 0 {
			termUp = prof.Span(p.stepIDs[len(p.steps)-1])
		}
		head := qef.WithSpan(term, termSpan, termUp)
		for i := len(p.steps) - 1; i >= 0; i-- {
			s := p.steps[i]
			if s.kind == stepProject {
				head = &ops.ProjectOp{Exprs: s.exprs, Keep: s.keep, Next: head}
				// Projection evaluates densely; compact sparse selections
				// first (late materialization ends here).
				head = &ops.MaterializeOp{Next: head, RowBytes: 8 * inCols[i]}
			} else {
				head = &ops.FilterOp{Preds: s.preds, Next: head}
			}
			head = qef.WithSpan(head, prof.Span(p.stepIDs[i]), upSpan(i))
		}
		return head
	}

	var err error
	prevSpan := ctx.SetActiveSpan(srcSpan)
	if p.snap != nil {
		err = ops.TableScan(ctx, p.snap, p.scanCols, tileRows, p.prunePredicate(), chainFor)
	} else {
		err = ops.RelationScan(ctx, inputRel, tileRows, chainFor)
	}
	ctx.SetActiveSpan(prevSpan)
	if err != nil {
		if p.terminal == termGroupBy && errors.Is(err, ops.ErrGroupOverflow) {
			return p.executeGroupPartFallback(ctx)
		}
		return nil, err
	}

	switch p.terminal {
	case termCollect:
		rel := sink.Relation()
		termSpan.AddRowsOut(int64(rel.Rows()))
		return rel, nil
	case termScalarAgg:
		rel, err := p.finalizeScalar(aggRes)
		if err != nil {
			return nil, err
		}
		termSpan.AddRowsOut(int64(rel.Rows()))
		return rel, nil
	default:
		keyCols := make([]ops.Col, len(p.groupCols))
		for i, g := range p.groupCols {
			c := p.cols[g]
			keyCols[i] = ops.Col{Name: c.field.Name, Type: c.field.Type, Dict: c.field.Dict}
		}
		raw := merger.Relation(keyCols, nil)
		rel, err := p.finalizeGrouped(raw, len(p.groupCols))
		if err != nil {
			return nil, err
		}
		termSpan.AddRowsOut(int64(rel.Rows()))
		return rel, nil
	}
}

// executeGroupPartFallback is the §5.4 runtime adaptation: the statistics
// underestimated the group count and the low-NDV DMEM table overflowed, so
// materialize the pipeline input and re-group with the partitioned high-NDV
// strategy (which re-partitions itself on further overflow).
func (p *pipelineNode) executeGroupPartFallback(ctx *qef.Context) (*ops.Relation, error) {
	// Row-conservation edges no longer hold after the aborted first
	// attempt's partial ticks; cycle and byte attribution stay exact
	// because every work unit still runs under a span.
	ctx.Prof.MarkAdapted()
	ctx.CountMetric("qcomp_group_overflow_fallbacks", 1)
	in := *p
	in.terminal = termCollect
	ndv := int64(p.maxGroups) * 4
	if p.est > ndv {
		ndv = p.est
	}
	gp := &groupPartNode{
		input:     &in,
		groupCols: p.groupCols,
		specs:     p.aggSpecs,
		finals:    p.finals,
		out:       p.outFields,
		ndv:       ndv,
		// Reuse the terminal's span: the fallback is the same logical
		// group-by, re-executed with the partitioned strategy.
		opID: p.termID,
	}
	return gp.execute(ctx)
}

// finalizeScalar maps lowered agg states to the requested output columns.
func (p *pipelineNode) finalizeScalar(res *ops.ScalarAggResult) (*ops.Relation, error) {
	cols := make([]ops.Col, len(p.finals))
	for i, f := range p.finals {
		var v int64
		switch f.kind {
		case plan.Avg:
			sum := res.Value(f.specIdx, ops.AggSum)
			cnt := res.Value(f.cntIdx, ops.AggCountStar)
			if cnt != 0 {
				v = sum * 100 / cnt
			}
		case plan.Sum:
			v = res.Value(f.specIdx, ops.AggSum)
		case plan.Min:
			// Over zero rows the state still holds the +Inf/-Inf identity
			// sentinels; emit 0 like the row interpreter's empty-input row.
			if res.State(f.specIdx).Count != 0 {
				v = res.Value(f.specIdx, ops.AggMin)
			}
		case plan.Max:
			if res.State(f.specIdx).Count != 0 {
				v = res.Value(f.specIdx, ops.AggMax)
			}
		default:
			v = res.Value(f.specIdx, ops.AggCount)
		}
		fld := p.outFields[i]
		cols[i] = ops.Col{Name: fld.Name, Type: fld.Type, Data: coltypes.I64{v}}
	}
	return ops.NewRelation(cols)
}

// finalizeGrouped maps lowered agg columns of the raw grouped relation
// (keys first, then one column per lowered spec) to the requested outputs.
func (p *pipelineNode) finalizeGrouped(raw *ops.Relation, nKeys int) (*ops.Relation, error) {
	n := raw.Rows()
	cols := make([]ops.Col, 0, nKeys+len(p.finals))
	for k := 0; k < nKeys; k++ {
		c := raw.Cols[k]
		fld := p.outFields[k]
		c.Name, c.Type, c.Dict = fld.Name, fld.Type, fld.Dict
		cols = append(cols, c)
	}
	for i, f := range p.finals {
		fld := p.outFields[nKeys+i]
		vals := make([]int64, n)
		switch f.kind {
		case plan.Avg:
			sums := raw.Cols[nKeys+f.specIdx].Data
			cnts := raw.Cols[nKeys+f.cntIdx].Data
			for r := 0; r < n; r++ {
				if c := cnts.Get(r); c != 0 {
					vals[r] = sums.Get(r) * 100 / c
				}
			}
		default:
			src := raw.Cols[nKeys+f.specIdx].Data
			for r := 0; r < n; r++ {
				vals[r] = src.Get(r)
			}
		}
		cols = append(cols, ops.Col{Name: fld.Name, Type: fld.Type, Data: coltypes.I64(vals)})
	}
	return ops.NewRelation(cols)
}

// ---------------------------------------------------------------------------
// Compilation.

func compileNode(n plan.Node, in map[plan.Node]*ops.Relation) (physNode, error) {
	if rel, ok := in[n]; ok {
		return newRelationNode(rel), nil
	}
	switch node := n.(type) {
	case *plan.Scan:
		return compileScan(node), nil
	case *plan.Filter:
		return compileFilter(node, in)
	case *plan.Project:
		return compileProject(node, in)
	case *plan.GroupBy:
		return compileGroupBy(node, in)
	case *plan.Join:
		return compileJoin(node, in)
	case *plan.Sort:
		child, err := compileNode(node.Input, in)
		if err != nil {
			return nil, err
		}
		return &sortNode{input: child, keys: node.Keys}, nil
	case *plan.Limit:
		child, err := compileNode(node.Input, in)
		if err != nil {
			return nil, err
		}
		if s, ok := child.(*sortNode); ok {
			// Sort + Limit fuses into the vectorized Top-K operator.
			return &topkNode{input: s.input, keys: s.keys, k: node.K}, nil
		}
		return &limitNode{input: child, k: node.K}, nil
	case *plan.SetOp:
		l, err := compileNode(node.Left, in)
		if err != nil {
			return nil, err
		}
		r, err := compileNode(node.Right, in)
		if err != nil {
			return nil, err
		}
		return &setopNode{left: l, right: r, kind: node.Kind}, nil
	case *plan.Window:
		child, err := compileNode(node.Input, in)
		if err != nil {
			return nil, err
		}
		return &windowNode{input: child, spec: node}, nil
	}
	return nil, fmt.Errorf("qcomp: unsupported plan node %T", n)
}

func compileScan(s *plan.Scan) *pipelineNode {
	snap := s.Table.Snapshot(s.SCN)
	cols := make([]colInfo, len(s.Cols))
	stats := s.Table.Stats()
	for i, c := range s.Cols {
		def := s.Table.Schema().Col(c)
		cols[i] = colInfo{
			field: plan.Field{Name: def.Name, Type: def.Type, Dict: s.Table.Meta(c).Dict},
		}
		if stats != nil && c < len(stats.Cols) {
			cs := stats.Cols[c]
			cols[i].stats = &cs
		}
	}
	return &pipelineNode{snap: snap, scanCols: s.Cols, cols: cols, est: int64(snap.TotalRows())}
}

// asPipeline returns the node as an extensible pipeline: either the node
// itself (when it is a pipeline without terminal aggregation) or a new
// pipeline reading the node's materialized output.
func asPipeline(pn physNode) *pipelineNode {
	if p, ok := pn.(*pipelineNode); ok && p.terminal == termCollect {
		return p
	}
	fs := pn.fields()
	cols := make([]colInfo, len(fs))
	for i, f := range fs {
		cols[i] = colInfo{field: f}
	}
	return &pipelineNode{input: pn, cols: cols, est: pn.estRows()}
}

func compileFilter(f *plan.Filter, in map[plan.Node]*ops.Relation) (physNode, error) {
	child, err := compileNode(f.Input, in)
	if err != nil {
		return nil, err
	}
	p := asPipeline(child)
	pred, err := compilePred(f.Pred, p.cols)
	if err != nil {
		return nil, err
	}
	p.steps = append(p.steps, pipeStep{kind: stepFilter, preds: []ops.Predicate{pred}})
	est := int64(float64(p.est) * pred.EstSelectivity())
	// Zone maps give a hard upper bound: rows in chunks the conjunction
	// cannot reject. Take it when it is sharper than the selectivity guess.
	if zr, ok := p.zoneSurvivingRows(); ok && zr < est {
		est = zr
	}
	if est < 1 {
		est = 1
	}
	p.est = est
	return p, nil
}

func compileProject(pr *plan.Project, in map[plan.Node]*ops.Relation) (physNode, error) {
	child, err := compileNode(pr.Input, in)
	if err != nil {
		return nil, err
	}
	p := asPipeline(child)
	step := pipeStep{kind: stepProject}
	newCols := make([]colInfo, 0, len(pr.Exprs))
	// Pure column references become zero-copy keeps; everything else is a
	// computed expression. Keeps must precede exprs in the output tile
	// (ops.ProjectOp emits Keep columns first).
	type outSlot struct {
		keep int // >= 0: index into keep outputs
		expr int // >= 0: index into expr outputs
	}
	slots := make([]outSlot, len(pr.Exprs))
	for i, e := range pr.Exprs {
		name := ""
		if i < len(pr.Names) {
			name = pr.Names[i]
		}
		if cr, ok := e.(*plan.ColRef); ok {
			slots[i] = outSlot{keep: len(step.keep), expr: -1}
			step.keep = append(step.keep, cr.Idx)
			f := p.cols[cr.Idx].field
			if name != "" {
				f.Name = name
			}
			newCols = append(newCols, colInfo{field: f, stats: p.cols[cr.Idx].stats})
			continue
		}
		ce, err := compileExpr(e, p.cols)
		if err != nil {
			return nil, err
		}
		slots[i] = outSlot{keep: -1, expr: len(step.exprs)}
		step.exprs = append(step.exprs, ce)
		fname := name
		if fname == "" {
			fname = e.String()
		}
		newCols = append(newCols, colInfo{field: plan.Field{Name: fname, Type: e.Type()}})
	}
	// Tile layout after ProjectOp: keeps then exprs; remap newCols to that
	// physical order and remember the logical order for output naming.
	phys := make([]colInfo, len(newCols))
	for i, s := range slots {
		if s.expr < 0 {
			phys[s.keep] = newCols[i]
		} else {
			phys[len(step.keep)+s.expr] = newCols[i]
		}
	}
	// To keep logical order == physical order (parents index by schema
	// position), require that pure ColRefs precede computed exprs; when
	// they do not, fall back to compiling every output as an expression.
	ordered := true
	for i := 1; i < len(slots); i++ {
		if slots[i-1].expr >= 0 && slots[i].expr < 0 {
			ordered = false
			break
		}
	}
	if !ordered {
		step.keep = nil
		step.exprs = step.exprs[:0]
		phys = phys[:0]
		for i, e := range pr.Exprs {
			ce, err := compileExpr(e, p.cols)
			if err != nil {
				return nil, err
			}
			step.exprs = append(step.exprs, ce)
			phys = append(phys, newCols[i])
		}
	}
	p.steps = append(p.steps, step)
	p.cols = phys
	return p, nil
}

// lowNDVMaxGroups is the largest group count handled by the in-pipeline
// (low NDV) group-by: the merged table must fit the collective DMEM of the
// 32 dpCores (§5.4).
const lowNDVMaxGroups = 4096

func compileGroupBy(g *plan.GroupBy, in map[plan.Node]*ops.Relation) (physNode, error) {
	child, err := compileNode(g.Input, in)
	if err != nil {
		return nil, err
	}
	p := asPipeline(child)

	groupCols := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		cr, ok := k.(*plan.ColRef)
		if !ok {
			return nil, fmt.Errorf("qcomp: group key %d is not a column (normalize first)", i)
		}
		groupCols[i] = cr.Idx
	}

	// Lower AVG into SUM + COUNT.
	var specs []ops.AggSpec
	var finals []finalSpec
	for _, a := range g.Aggs {
		switch a.Kind {
		case plan.Avg:
			sumE, err := compileExpr(a.Arg, p.cols)
			if err != nil {
				return nil, err
			}
			finals = append(finals, finalSpec{kind: plan.Avg, specIdx: len(specs), cntIdx: len(specs) + 1})
			specs = append(specs,
				ops.AggSpec{Kind: ops.AggSum, Expr: sumE, Name: a.Name + "_sum"},
				ops.AggSpec{Kind: ops.AggCountStar, Name: a.Name + "_cnt"})
		case plan.CountStar:
			finals = append(finals, finalSpec{kind: plan.CountStar, specIdx: len(specs)})
			specs = append(specs, ops.AggSpec{Kind: ops.AggCountStar, Name: a.Name})
		default:
			argE, err := compileExpr(a.Arg, p.cols)
			if err != nil {
				return nil, err
			}
			kind := map[plan.AggKind]ops.AggKind{
				plan.Sum: ops.AggSum, plan.Min: ops.AggMin,
				plan.Max: ops.AggMax, plan.Count: ops.AggCount,
			}[a.Kind]
			finals = append(finals, finalSpec{kind: a.Kind, specIdx: len(specs)})
			specs = append(specs, ops.AggSpec{Kind: kind, Expr: argE, Name: a.Name})
		}
	}

	outFields := (&plan.GroupBy{Input: schemaOnly(p.fields()), Keys: g.Keys, Aggs: g.Aggs}).Schema()

	// NDV estimate drives the strategy choice (§5.4).
	ndv := int64(1)
	for _, gc := range groupCols {
		if st := p.cols[gc].stats; st != nil && st.NDV > 0 {
			ndv *= st.NDV
		} else {
			ndv *= 64 // unknown: assume moderate
		}
		if ndv > p.est {
			ndv = p.est
			break
		}
	}

	if len(groupCols) == 0 {
		p.terminal = termScalarAgg
		p.aggSpecs = specs
		p.finals = finals
		p.outFields = outFields
		p.maxGroups = 1
		return p, nil
	}
	if ndv <= lowNDVMaxGroups {
		p.terminal = termGroupBy
		p.groupCols = groupCols
		p.aggSpecs = specs
		p.finals = finals
		p.outFields = outFields
		p.maxGroups = int(ndv*4) + 64
		if p.maxGroups > 4*lowNDVMaxGroups {
			p.maxGroups = 4 * lowNDVMaxGroups
		}
		return p, nil
	}
	// High NDV: partitioned group-by over the materialized child.
	return &groupPartNode{
		input:     p,
		groupCols: groupCols,
		specs:     specs,
		finals:    finals,
		out:       outFields,
		ndv:       ndv,
	}, nil
}

// schemaOnly wraps fields as a leaf node for Schema() computations.
type fieldsNode struct{ fs []plan.Field }

func (f *fieldsNode) Schema() []plan.Field  { return f.fs }
func (f *fieldsNode) Children() []plan.Node { return nil }
func (f *fieldsNode) String() string        { return "fields" }

func schemaOnly(fs []plan.Field) plan.Node { return &fieldsNode{fs: fs} }
