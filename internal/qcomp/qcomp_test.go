package qcomp

import (
	"fmt"
	"strings"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// --- fixtures --------------------------------------------------------------

func ordersTable(t testing.TB, rows int) *storage.Table {
	t.Helper()
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "o_orderkey", Type: coltypes.Int()},
		storage.ColumnDef{Name: "o_custkey", Type: coltypes.Int()},
		storage.ColumnDef{Name: "o_total", Type: coltypes.Decimal(2)},
		storage.ColumnDef{Name: "o_date", Type: coltypes.Date()},
		storage.ColumnDef{Name: "o_status", Type: coltypes.String()},
	)
	b := storage.NewTableBuilder("orders", schema, storage.BuildOptions{ChunkRows: 1024})
	statuses := []string{"O", "F", "P"}
	for i := 0; i < rows; i++ {
		if err := b.Append([]storage.Value{
			storage.IntValue(int64(i)),
			storage.IntValue(int64(i % 200)),
			storage.DecString(fmt.Sprintf("%d.%02d", 10+i%1000, i%100)),
			storage.DateValue(1995, 1+(i%12), 1+(i%28)),
			storage.StrValue(statuses[i%3]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func custTable(t testing.TB, rows int) *storage.Table {
	t.Helper()
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "c_custkey", Type: coltypes.Int()},
		storage.ColumnDef{Name: "c_name", Type: coltypes.String()},
		storage.ColumnDef{Name: "c_nation", Type: coltypes.Int()},
	)
	b := storage.NewTableBuilder("customer", schema, storage.BuildOptions{ChunkRows: 512})
	for i := 0; i < rows; i++ {
		if err := b.Append([]storage.Value{
			storage.IntValue(int64(i)),
			storage.StrValue(fmt.Sprintf("Customer#%03d", i)),
			storage.IntValue(int64(i % 25)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func run(t *testing.T, ctx *qef.Context, n plan.Node) *ops.Relation {
	t.Helper()
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func colRefOf(n plan.Node, name string) *plan.ColRef {
	for i, f := range n.Schema() {
		if f.Name == name {
			return &plan.ColRef{Idx: i, Name: name, T: f.Type, Dict: f.Dict}
		}
	}
	panic("no column " + name)
}

// --- partition scheme optimization (§5.3) ----------------------------------

func TestRequiredPartitions(t *testing.T) {
	cfg := dpu.DefaultConfig()
	// Small data: still at least one partition per core.
	if got := RequiredPartitions(1000, cfg); got != 32 {
		t.Fatalf("small data partitions = %d, want 32", got)
	}
	// 16 MiB over a 16 KiB budget = 1024 partitions.
	if got := RequiredPartitions(16<<20, cfg); got != 1024 {
		t.Fatalf("16MiB partitions = %d, want 1024", got)
	}
}

func TestOptimizeSchemeHeuristics(t *testing.T) {
	// Target <= 32: one hardware round.
	s := OptimizeScheme(32, 1<<20)
	if len(s.Rounds) != 1 || s.Rounds[0] != 32 {
		t.Fatalf("32-way scheme = %s", s)
	}
	// Target 64: hardware cannot do it alone; expect two rounds.
	s = OptimizeScheme(64, 1<<24)
	if s.Fanout() < 64 || len(s.Rounds) < 2 {
		t.Fatalf("64-way scheme = %s", s)
	}
	if s.Validate() != nil {
		t.Fatalf("scheme %s invalid", s)
	}
	// Target 1024 = 32x32: two rounds, both within their limits.
	s = OptimizeScheme(1024, 1<<28)
	if s.Fanout() < 1024 {
		t.Fatalf("1024-way scheme = %s (fanout %d)", s, s.Fanout())
	}
	for i, r := range s.Rounds {
		if i == 0 && r > 32 {
			t.Fatalf("hardware round %d exceeds 32", r)
		}
	}
	// Symmetry preference: for 64 partitions after the HW round the paper
	// prefers 8x8 over 16x4 among equal-cost candidates.
	if sym := symmetryScore([]int{8, 8}); sym != 0 {
		t.Fatal("8x8 should be perfectly symmetric")
	}
	if symmetryScore([]int{16, 4}) <= symmetryScore([]int{8, 8}) {
		t.Fatal("16x4 should score worse than 8x8")
	}
}

func TestSchemeCostMonotonicity(t *testing.T) {
	data := int64(1 << 28)
	one := SchemeCost(ops.PartScheme{Rounds: []int{32}}, data)
	two := SchemeCost(ops.PartScheme{Rounds: []int{32, 32}}, data)
	if two <= one {
		t.Fatal("more rounds must cost more")
	}
	// Beyond the 64-way plateau software rounds degrade.
	cheap := SchemeCost(ops.PartScheme{Rounds: []int{32, 64}}, data)
	costly := SchemeCost(ops.PartScheme{Rounds: []int{32, 256}}, data)
	if costly <= cheap {
		t.Fatal("256-way software round should cost more than 64-way")
	}
}

// --- task formation (Fig 4) -------------------------------------------------

// TestTaskFormationFig4 reproduces the paper's Figure 4 example: an
// aggregation over 1M rows of 4-byte columns with 25% selectivity. Grouping
// scan+filter+aggregate into one task materializes far less to DRAM than
// one-operator-per-task, and the optimizer must choose the grouped
// formation.
func TestTaskFormationFig4(t *testing.T) {
	mkOps := func() []OpReq {
		return []OpReq{
			{
				Name:           "scan",
				DMEMSize:       func(rows int) int { return 2 * rows * 8 }, // 2 cols x 4B, double buffered
				OutBytesPerRow: 8,
				Selectivity:    1,
			},
			{
				Name:           "filter",
				DMEMSize:       (&ops.FilterOp{}).DMEMSize,
				OutBytesPerRow: 8,
				Selectivity:    0.25,
			},
			{
				Name:           "aggregate",
				DMEMSize:       func(rows int) int { return rows*8 + 64 },
				OutBytesPerRow: 16,
				Selectivity:    1e-6,
			},
		}
	}
	f, err := FormTasks(mkOps(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Tasks) != 1 {
		t.Fatalf("optimizer chose %d tasks, want 1 (grouped)", len(f.Tasks))
	}
	if f.Tasks[0].TileRows < qef.MinTileRows {
		t.Fatalf("tile rows = %d", f.Tasks[0].TileRows)
	}
	// Compare against the singles formation explicitly: grouped must
	// materialize less.
	singles, ok := packSingles(mkOps(), 28*1024, 1_000_000)
	if !ok {
		t.Fatal("singles should fit")
	}
	if f.MaterializedBytes >= singles.MaterializedBytes {
		t.Fatalf("grouped materializes %d, singles %d", f.MaterializedBytes, singles.MaterializedBytes)
	}
	if f.Cost >= singles.Cost {
		t.Fatal("grouped formation should be cheaper")
	}
}

func TestChooseTileRowsRespectsDMEM(t *testing.T) {
	// A hungry operator set: tile rows shrink to fit.
	hungry := []OpReq{{
		Name:     "wide",
		DMEMSize: func(rows int) int { return rows * 400 },
	}}
	rows := ChooseTileRows(hungry)
	if rows*400 > 28*1024 {
		t.Fatalf("tile rows %d overflow DMEM", rows)
	}
	if rows < qef.MinTileRows {
		t.Fatalf("tile rows %d below hardware minimum", rows)
	}
	// A light pipeline gets large tiles.
	light := []OpReq{{Name: "l", DMEMSize: func(rows int) int { return rows * 4 }}}
	if ChooseTileRows(light) < 1024 {
		t.Fatal("light pipeline should get large tiles")
	}
}

// --- end-to-end compilation -------------------------------------------------

func TestCompileFilterProject(t *testing.T) {
	tbl := ordersTable(t, 10000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	date0 := storage.MustParseDate("1995-06-01").Days()
	f := &plan.Filter{
		Input: scan,
		Pred: &plan.AndPred{Preds: []plan.Pred{
			&plan.Cmp{Op: plan.GE, L: colRefOf(scan, "o_date"), R: &plan.Const{T: coltypes.Date(), Val: date0}},
			&plan.Cmp{Op: plan.EQ, L: colRefOf(scan, "o_status"), R: &plan.Const{T: coltypes.String(), Str: "O"}},
		}},
	}
	total := colRefOf(scan, "o_total")
	doubled, err := plan.NewArith(plan.Mul, total, &plan.Const{T: coltypes.Decimal(0), Val: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Project{
		Input: f,
		Exprs: []plan.Expr{colRefOf(scan, "o_orderkey"), doubled},
		Names: []string{"key", "double_total"},
	}
	for _, mode := range []qef.Mode{qef.ModeDPU, qef.ModeX86} {
		ctx := qef.NewContext(mode)
		rel := run(t, ctx, p)
		if rel.Rows() == 0 {
			t.Fatal("no rows")
		}
		// Validate against direct evaluation.
		want := 0
		for i := 0; i < 10000; i++ {
			d := storage.DateValue(1995, 1+(i%12), 1+(i%28)).Days()
			if d >= date0 && i%3 == 0 {
				want++
			}
		}
		if rel.Rows() != want {
			t.Fatalf("%v: rows = %d, want %d", mode, rel.Rows(), want)
		}
		if rel.Cols[1].Name != "double_total" {
			t.Fatalf("col name %s", rel.Cols[1].Name)
		}
		// double_total has scale 2 (0-scale const times scale-2 column).
		if rel.Cols[1].Type.Scale != 2 {
			t.Fatalf("scale = %d", rel.Cols[1].Type.Scale)
		}
	}
}

func TestCompileScalarAggWithAvg(t *testing.T) {
	tbl := ordersTable(t, 5000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	g := &plan.GroupBy{
		Input: scan,
		Aggs: []plan.AggExpr{
			{Kind: plan.Sum, Arg: colRefOf(scan, "o_custkey"), Name: "s"},
			{Kind: plan.Avg, Arg: colRefOf(scan, "o_custkey"), Name: "a"},
			{Kind: plan.CountStar, Name: "n"},
		},
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, g)
	if rel.Rows() != 1 {
		t.Fatalf("rows = %d", rel.Rows())
	}
	var wantSum int64
	for i := 0; i < 5000; i++ {
		wantSum += int64(i % 200)
	}
	if got := rel.Cols[0].Data.Get(0); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	// AVG carries two extra scale digits.
	wantAvg := wantSum * 100 / 5000
	if got := rel.Cols[1].Data.Get(0); got != wantAvg {
		t.Fatalf("avg = %d, want %d", got, wantAvg)
	}
	if rel.Cols[1].Type.Scale != 2 {
		t.Fatalf("avg scale = %d", rel.Cols[1].Type.Scale)
	}
	if got := rel.Cols[2].Data.Get(0); got != 5000 {
		t.Fatalf("count = %d", got)
	}
}

func TestCompileGroupByStrategies(t *testing.T) {
	tbl := ordersTable(t, 20000)
	// Low NDV: group by o_status (3 groups) -> in-pipeline strategy.
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	low := &plan.GroupBy{
		Input: scan,
		Keys:  []plan.Expr{colRefOf(scan, "o_status")},
		Aggs:  []plan.AggExpr{{Kind: plan.CountStar, Name: "n"}},
	}
	cLow, err := Compile(low)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cLow.Explain(), "groupby") {
		t.Fatalf("low NDV should stay in-pipeline:\n%s", cLow.Explain())
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel, err := cLow.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows() != 3 {
		t.Fatalf("groups = %d", rel.Rows())
	}
	var total int64
	for i := 0; i < 3; i++ {
		total += rel.Cols[1].Data.Get(i)
	}
	if total != 20000 {
		t.Fatalf("counts sum to %d", total)
	}
	// High NDV: group by o_orderkey (20000 groups) -> partitioned strategy.
	high := &plan.GroupBy{
		Input: scan,
		Keys:  []plan.Expr{colRefOf(scan, "o_orderkey")},
		Aggs:  []plan.AggExpr{{Kind: plan.CountStar, Name: "n"}},
	}
	cHigh, err := Compile(high)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cHigh.Explain(), "GroupByPartitioned") {
		t.Fatalf("high NDV should partition:\n%s", cHigh.Explain())
	}
	rel2, err := cHigh.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Rows() != 20000 {
		t.Fatalf("groups = %d", rel2.Rows())
	}
}

func TestCompileJoin(t *testing.T) {
	orders := ordersTable(t, 8000)
	cust := custTable(t, 200)
	so := plan.NewScan(orders, storage.LatestSCN, nil)
	sc := plan.NewScan(cust, storage.LatestSCN, nil)
	// o_custkey is column 1 of orders; c_custkey is column 0 of customer.
	j := &plan.Join{Type: plan.InnerJoin, Left: so, Right: sc, LeftKeys: []int{1}, RightKeys: []int{0}}
	for _, mode := range []qef.Mode{qef.ModeDPU, qef.ModeX86} {
		ctx := qef.NewContext(mode)
		rel := run(t, ctx, j)
		// Every order matches exactly one customer (custkey 0..199).
		if rel.Rows() != 8000 {
			t.Fatalf("%v: rows = %d", mode, rel.Rows())
		}
		// Output schema: orders cols then customer cols.
		if rel.Cols[0].Name != "o_orderkey" || rel.Cols[5].Name != "c_custkey" {
			t.Fatalf("schema: %v / %v", rel.Cols[0].Name, rel.Cols[5].Name)
		}
		// Join correctness: o_custkey == c_custkey on every row.
		for i := 0; i < rel.Rows(); i++ {
			if rel.Cols[1].Data.Get(i) != rel.Cols[5].Data.Get(i) {
				t.Fatal("key mismatch in join output")
			}
		}
		// String payload survives: c_name renders through the dict.
		if !strings.HasPrefix(rel.Render(0, 6), "Customer#") {
			t.Fatalf("c_name render = %s", rel.Render(0, 6))
		}
	}
}

func TestCompileTopKAndSort(t *testing.T) {
	tbl := ordersTable(t, 5000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	topk := &plan.Limit{
		Input: &plan.Sort{Input: scan, Keys: []plan.SortItem{{Col: 2, Desc: true}}},
		K:     5,
	}
	c, err := Compile(topk)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Explain(), "TopK") {
		t.Fatalf("Sort+Limit should fuse to TopK:\n%s", c.Explain())
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel, err := c.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows() != 5 {
		t.Fatalf("rows = %d", rel.Rows())
	}
	for i := 1; i < 5; i++ {
		if rel.Cols[2].Data.Get(i-1) < rel.Cols[2].Data.Get(i) {
			t.Fatal("not descending")
		}
	}
}

func TestCompileSortByString(t *testing.T) {
	// ORDER BY a dictionary column must sort lexicographically even though
	// codes are insertion-ordered.
	cust := custTable(t, 50)
	scan := plan.NewScan(cust, storage.LatestSCN, nil)
	topk := &plan.Limit{
		Input: &plan.Sort{Input: scan, Keys: []plan.SortItem{{Col: 1, Desc: false}}},
		K:     3,
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, topk)
	if rel.Render(0, 1) != "Customer#000" || rel.Render(2, 1) != "Customer#002" {
		t.Fatalf("string order: %s, %s", rel.Render(0, 1), rel.Render(2, 1))
	}
}

func TestCompileLike(t *testing.T) {
	cust := custTable(t, 300)
	scan := plan.NewScan(cust, storage.LatestSCN, nil)
	f := &plan.Filter{
		Input: scan,
		Pred: &plan.LikePred{
			E: colRefOf(scan, "c_name"), Kind: plan.LikePrefix, Pattern: "Customer#01",
		},
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, f)
	// Customer#010 .. Customer#019 and Customer#01x doesn't exist beyond.
	if rel.Rows() != 10 {
		t.Fatalf("rows = %d", rel.Rows())
	}
}

func TestCompileBetweenAndIn(t *testing.T) {
	tbl := ordersTable(t, 3000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	f := &plan.Filter{
		Input: scan,
		Pred: &plan.AndPred{Preds: []plan.Pred{
			&plan.BetweenPred{
				E:  colRefOf(scan, "o_custkey"),
				Lo: &plan.Const{T: coltypes.Int(), Val: 10},
				Hi: &plan.Const{T: coltypes.Int(), Val: 19},
			},
			&plan.InPred{
				E: colRefOf(scan, "o_status"),
				List: []*plan.Const{
					{T: coltypes.String(), Str: "O"},
					{T: coltypes.String(), Str: "F"},
				},
			},
		}},
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, f)
	want := 0
	for i := 0; i < 3000; i++ {
		if k := i % 200; k >= 10 && k <= 19 && i%3 != 2 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
}

func TestCompileSemiJoin(t *testing.T) {
	orders := ordersTable(t, 2000)
	cust := custTable(t, 50) // custkeys 0..49; orders have 0..199
	so := plan.NewScan(orders, storage.LatestSCN, nil)
	sc := plan.NewScan(cust, storage.LatestSCN, nil)
	semi := &plan.Join{Type: plan.SemiJoin, Left: so, Right: sc, LeftKeys: []int{1}, RightKeys: []int{0}}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, semi)
	want := 0
	for i := 0; i < 2000; i++ {
		if i%200 < 50 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("semi rows = %d, want %d", rel.Rows(), want)
	}
	if len(rel.Cols) != 5 {
		t.Fatalf("semi join must keep only left columns, got %d", len(rel.Cols))
	}
}

func TestRescaleConstInPredicate(t *testing.T) {
	// o_total is DECIMAL(2); compare against 500 (scale 0): the constant
	// must rescale to 50000.
	tbl := ordersTable(t, 1000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	f := &plan.Filter{
		Input: scan,
		Pred: &plan.Cmp{Op: plan.GE, L: colRefOf(scan, "o_total"),
			R: &plan.Const{T: coltypes.Decimal(0), Val: 500}},
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, f)
	want := 0
	for i := 0; i < 1000; i++ {
		cents := int64(10+i%1000)*100 + int64(i%100)
		if cents >= 50000 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
}
