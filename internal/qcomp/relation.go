package qcomp

import (
	"fmt"
	"strings"

	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/qef"
)

// relationNode is a leaf over an already-materialized relation — the splice
// point CompileWithInputs uses to run a residual plan fragment over exchange
// outputs. It produces its relation as-is; parents stream it via
// ops.RelationScan like any other physNode output.
type relationNode struct {
	rel  *ops.Relation
	fs   []plan.Field
	opID int
}

func newRelationNode(rel *ops.Relation) *relationNode {
	fs := make([]plan.Field, len(rel.Cols))
	for i, c := range rel.Cols {
		fs[i] = plan.Field{Name: c.Name, Type: c.Type, Dict: c.Dict}
	}
	return &relationNode{rel: rel, fs: fs}
}

func (n *relationNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	ctx.Prof.Span(n.opID).AddRowsOut(int64(n.rel.Rows()))
	return n.rel, nil
}

func (n *relationNode) fields() []plan.Field { return n.fs }
func (n *relationNode) estRows() int64       { return int64(n.rel.Rows()) }

func (n *relationNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Relation[rows=%d]\n", n.rel.Rows())
}

func (n *relationNode) annotate(reg *spanReg, parent int) int {
	n.opID = reg.add(parent, "Relation", fmt.Sprintf("(rows=%d)", n.rel.Rows()), obs.KindSource, false)
	return n.opID
}
