package qcomp

import (
	mathbits "math/bits"

	"rapid/internal/dpu"
	"rapid/internal/ops"
)

// Partition-scheme optimization (paper §5.3): the required number of
// partitions is the data size divided by the DMEM budget (at least the core
// count), and the scheme is the cheapest factorization of that target into
// rounds, under the heuristics: (a) every round's fan-out is a power of
// two, (b) the fan-out per round is bounded (32 in hardware, 64 in software
// per Fig 10), (c) fewer rounds are better, and (d) symmetric fan-outs are
// preferred (8x8 over 16x4).

// usableDMEMFraction is the share of the 32 KiB scratchpad available for a
// join partition's hash table and key vectors after operator buffers.
const usableDMEMFraction = 0.5

// RequiredPartitions returns the partition target: total data bytes over
// the per-core DMEM budget, floored at the core count so every dpCore gets
// independent work.
func RequiredPartitions(dataBytes int64, cfg dpu.Config) int {
	budget := int64(float64(cfg.DMEMBytes) * usableDMEMFraction)
	parts := int((dataBytes + budget - 1) / budget)
	if parts < cfg.NumCores {
		parts = cfg.NumCores
	}
	return parts
}

// Per-round throughput model used to cost a scheme (bytes/s of input
// processed). The hardware round runs on the DMS at the Fig 8 rate; software
// rounds follow the Fig 10 shape: flat to 64-way, then degrading as the
// per-partition DMEM buffers shrink below the efficient flush size.
func roundBytesPerSec(round int, fanout int) float64 {
	if round == 0 {
		return 9.3 * (1 << 30) // DMS hardware partitioning, Fig 8
	}
	base := 7.4 * (1 << 30) // software partitioning plateau, Fig 10
	if fanout <= 64 {
		return base
	}
	// Beyond 64-way the local buffers shrink: halve throughput per
	// doubling.
	excess := float64(fanout) / 64
	return base / excess
}

// SchemeCost returns the modeled seconds to partition dataBytes with the
// scheme (each round re-reads and re-writes the data).
func SchemeCost(scheme ops.PartScheme, dataBytes int64) float64 {
	var sec float64
	for i, f := range scheme.Rounds {
		if f <= 1 {
			continue
		}
		sec += float64(dataBytes) / roundBytesPerSec(i, f)
	}
	return sec
}

// OptimizeScheme searches the factorizations of the partition target and
// returns the cheapest scheme.
func OptimizeScheme(targetPartitions int, dataBytes int64) ops.PartScheme {
	if targetPartitions <= 1 {
		return ops.PartScheme{Rounds: []int{1}}
	}
	totalBits := mathbits.Len(uint(targetPartitions - 1)) // ceil(log2)
	const hwBits = 5                                      // 32-way DMS
	const swBits = 6                                      // 64-way software plateau

	best := ops.PartScheme{}
	bestCost := 0.0
	bestSym := 0
	consider := func(rounds []int) {
		s := ops.PartScheme{Rounds: append([]int(nil), rounds...)}
		if s.Validate() != nil {
			return
		}
		c := SchemeCost(s, dataBytes)
		sym := symmetryScore(rounds)
		switch {
		case best.Rounds == nil,
			c < bestCost,
			c == bestCost && len(rounds) < len(best.Rounds),
			c == bestCost && len(rounds) == len(best.Rounds) && sym < bestSym:
			best, bestCost, bestSym = s, c, sym
		}
	}

	// One round: hardware only.
	if totalBits <= hwBits {
		consider([]int{1 << totalBits})
	}
	// Two rounds: hw + sw.
	for b1 := 1; b1 <= hwBits; b1++ {
		b2 := totalBits - b1
		if b2 >= 1 && b2 <= swBits+4 { // allow beyond plateau, cost penalizes
			consider([]int{1 << b1, 1 << b2})
		}
	}
	// Three rounds: hw + sw + sw.
	for b1 := 1; b1 <= hwBits; b1++ {
		for b2 := 1; b2 <= swBits; b2++ {
			b3 := totalBits - b1 - b2
			if b3 >= 1 && b3 <= swBits {
				consider([]int{1 << b1, 1 << b2, 1 << b3})
			}
		}
	}
	if best.Rounds == nil {
		// Fallback: max everything (very large targets).
		best = ops.PartScheme{Rounds: []int{32, 64, 64}}
	}
	return best
}

// symmetryScore is the spread of bits across rounds; lower is more
// symmetric (heuristic d of §5.3).
func symmetryScore(rounds []int) int {
	if len(rounds) == 0 {
		return 0
	}
	min, max := 64, 0
	for _, r := range rounds {
		b := mathbits.Len(uint(r - 1))
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	return max - min
}
