package qcomp

import (
	"fmt"

	"rapid/internal/obs"
)

// spanReg assigns stable operator IDs to the physical plan at compile
// time. IDs are registration order (consumers before producers, so a
// span's parent always has a smaller ID), and one obs.SpanDef is recorded
// per operator for the executor to allocate profile spans from.
type spanReg struct {
	defs []obs.SpanDef
}

func (r *spanReg) add(parent int, name, detail string, kind obs.SpanKind, conserves bool) int {
	id := len(r.defs)
	r.defs = append(r.defs, obs.SpanDef{
		ID: id, Parent: parent, Name: name, Detail: detail, Kind: kind, Conserves: conserves,
	})
	return id
}

// SpanDefs returns the compiled plan's operator span definitions; a
// per-execution obs.Profile is allocated from them.
func (c *Compiled) SpanDefs() []obs.SpanDef { return c.spanDefs }

// annotate implementations: each physical node registers one span per
// operator it executes and annotates its children below itself, returning
// the span ID that represents the node's output. The span kind classifies
// the operator for the trace export: sources are DMS-bound, pipeline
// operators stream per tile, blocking operators materialize.

func (p *pipelineNode) annotate(reg *spanReg, parent int) int {
	switch p.terminal {
	case termScalarAgg:
		p.termID = reg.add(parent, "ScalarAgg", fmt.Sprintf("(aggs=%d)", len(p.aggSpecs)), obs.KindPipeline, true)
	case termGroupBy:
		p.termID = reg.add(parent, "GroupBy", fmt.Sprintf("(keys=%d, aggs=%d, maxGroups=%d)", len(p.groupCols), len(p.aggSpecs), p.maxGroups), obs.KindPipeline, true)
	default:
		p.termID = reg.add(parent, "Collect", "", obs.KindPipeline, true)
	}
	up := p.termID
	p.stepIDs = make([]int, len(p.steps))
	for i := len(p.steps) - 1; i >= 0; i-- {
		s := p.steps[i]
		if s.kind == stepFilter {
			p.stepIDs[i] = reg.add(up, "Filter", fmt.Sprintf("(preds=%d)", len(s.preds)), obs.KindPipeline, true)
		} else {
			p.stepIDs[i] = reg.add(up, "Project", fmt.Sprintf("(exprs=%d)", len(s.exprs)+len(s.keep)), obs.KindPipeline, true)
		}
		up = p.stepIDs[i]
	}
	if p.snap != nil {
		p.srcID = reg.add(up, fmt.Sprintf("Scan(%s)", p.snap.Table().Name()), "", obs.KindSource, false)
	} else {
		// A streamed input: the scan's rows-in must equal the rows the
		// child materialized, which makes this edge a checkable invariant.
		p.srcID = reg.add(up, "Stream", "", obs.KindSource, true)
	}
	if p.input != nil {
		p.input.annotate(reg, p.srcID)
	}
	return p.termID
}

func (g *groupPartNode) annotate(reg *spanReg, parent int) int {
	g.opID = reg.add(parent, "GroupByPartitioned", fmt.Sprintf("(keys=%d, aggs=%d, ndv~%d)", len(g.groupCols), len(g.specs), g.ndv), obs.KindBlocking, true)
	g.input.annotate(reg, g.opID)
	return g.opID
}

func (n *joinNode) annotate(reg *spanReg, parent int) int {
	n.opID = reg.add(parent, "HashJoin", fmt.Sprintf("(type=%v, scheme=%s)", n.typ, n.scheme), obs.KindBlocking, true)
	n.left.annotate(reg, n.opID)
	n.right.annotate(reg, n.opID)
	return n.opID
}

func (n *sortNode) annotate(reg *spanReg, parent int) int {
	n.opID = reg.add(parent, "Sort", fmt.Sprintf("(keys=%d)", len(n.keys)), obs.KindBlocking, true)
	n.input.annotate(reg, n.opID)
	return n.opID
}

func (n *topkNode) annotate(reg *spanReg, parent int) int {
	n.opID = reg.add(parent, "TopK", fmt.Sprintf("(k=%d, keys=%d)", n.k, len(n.keys)), obs.KindBlocking, true)
	n.input.annotate(reg, n.opID)
	return n.opID
}

func (n *limitNode) annotate(reg *spanReg, parent int) int {
	n.opID = reg.add(parent, "Limit", fmt.Sprintf("(%d)", n.k), obs.KindPipeline, true)
	n.input.annotate(reg, n.opID)
	return n.opID
}

func (n *setopNode) annotate(reg *spanReg, parent int) int {
	n.opID = reg.add(parent, "SetOp", fmt.Sprintf("(%d)", n.kind), obs.KindBlocking, true)
	n.left.annotate(reg, n.opID)
	n.right.annotate(reg, n.opID)
	return n.opID
}

func (n *windowNode) annotate(reg *spanReg, parent int) int {
	n.opID = reg.add(parent, "Window", fmt.Sprintf("(f=%d)", n.spec.Func), obs.KindBlocking, true)
	n.input.annotate(reg, n.opID)
	return n.opID
}
