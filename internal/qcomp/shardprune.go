package qcomp

import (
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/storage"
)

// ShardZonePruned reports whether a per-node plan fragment provably produces
// no rows, using the fragment's shard table statistics as one table-wide
// zone. The tray coordinator consults it before fan-out: a pruned fragment
// is never compiled, admitted, or executed on its node, and the coordinator
// substitutes an empty relation (sound only for union-semantics merges —
// materialize/gather — never for aggregations, whose empty input still
// yields identity rows).
//
// The proof is conservative both ways stats can drift: table statistics stay
// a min/max superset of the live encoded domain across update units (see
// storage.refreshStatsLocked), so a rejection here can only under-prune,
// never drop a live row.
func ShardZonePruned(root plan.Node) bool {
	scan, preds := scanFilterChain(root, nil)
	if scan == nil || len(preds) == 0 {
		return false
	}
	stats := scan.Table.Stats()
	if stats == nil || stats.Rows == 0 {
		return false
	}
	// Unmerged inserts live outside the base stats only until Apply widens
	// them in — which it does synchronously — so the table-wide zone below
	// covers the delta chunk too.
	cols := make([]colInfo, len(scan.Cols))
	for i, c := range scan.Cols {
		def := scan.Table.Schema().Col(c)
		cols[i] = colInfo{field: plan.Field{Name: def.Name, Type: def.Type, Dict: scan.Table.Meta(c).Dict}}
		if c < len(stats.Cols) {
			cs := stats.Cols[c]
			cols[i].stats = &cs
		}
	}
	zone := func(c int) (storage.Zone, bool) {
		if c < 0 || c >= len(scan.Cols) {
			return storage.Zone{}, false
		}
		tc := scan.Cols[c]
		if tc < 0 || tc >= len(stats.Cols) {
			return storage.Zone{}, false
		}
		cs := stats.Cols[tc]
		return storage.Zone{Min: cs.Min, Max: cs.Max, Rows: int(stats.Rows)}, true
	}
	for _, p := range preds {
		compiled, err := compilePred(p, cols)
		if err != nil {
			return false
		}
		if ops.ZoneReject(compiled, zone) {
			return true
		}
	}
	return false
}

// scanFilterChain walks a Scan/Filter/Project chain top-down, returning the
// base scan and the filter predicates expressed directly in the scan's
// output layout. Predicates sitting above a Project address the projected
// layout, not the scan's, so passing a Project drops everything collected so
// far (a Filter below it can still prune). Any other node ends the walk
// without a scan.
func scanFilterChain(n plan.Node, preds []plan.Pred) (*plan.Scan, []plan.Pred) {
	switch node := n.(type) {
	case *plan.Scan:
		return node, preds
	case *plan.Filter:
		return scanFilterChain(node.Input, append(preds, node.Pred))
	case *plan.Project:
		return scanFilterChain(node.Input, nil)
	}
	return nil, nil
}
