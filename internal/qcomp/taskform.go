package qcomp

import (
	"fmt"

	"rapid/internal/mem"
	"rapid/internal/qef"
)

// Task formation (paper §5.2, Fig 4): operators are greedily grouped into
// tasks under the DMEM budget — operators within a task pipeline tiles
// through DMEM, and only task boundaries materialize to DRAM. Packing more
// operators into a task shrinks the per-operator vector size; the optimizer
// builds candidate formations and picks the one with the least modeled
// cost.

// OpReq describes one pipeline operator to the task former.
type OpReq struct {
	Name string
	// DMEMSize returns the operator's DMEM need at a tile size (state +
	// input/output vectors), mirroring op_dmem_size.
	DMEMSize func(tileRows int) int
	// OutBytesPerRow is the width of the operator's output row; combined
	// with Selectivity it sizes the DRAM materialization at a boundary.
	OutBytesPerRow int
	// Selectivity is output rows / input rows.
	Selectivity float64
}

// Task is one formed group.
type Task struct {
	Ops      []OpReq
	TileRows int
}

// Formation is a full grouping of the pipeline.
type Formation struct {
	Tasks []Task
	// MaterializedBytes is the DRAM traffic at task boundaries for
	// inputRows input rows (the quantity Fig 4 minimizes).
	MaterializedBytes int64
	// Cost is the modeled execution seconds.
	Cost float64
}

// dmemReserve is DMEM kept for the runtime (stack, control) and double
// buffering overhead.
const dmemReserve = 4 * 1024

// maxTileRowsFor returns the largest tile size at which the operator group
// fits the DMEM budget; 0 when even the minimum tile does not fit.
func maxTileRowsFor(ops []OpReq, budget int) int {
	fits := func(rows int) bool {
		total := 0
		for _, op := range ops {
			total += op.DMEMSize(rows)
		}
		return total <= budget
	}
	if !fits(qef.MinTileRows) {
		return 0
	}
	rows := qef.MinTileRows
	for rows*2 <= 4096 && fits(rows*2) {
		rows *= 2
	}
	return rows
}

// FormTasks builds the greedy maximal-packing formation plus the
// alternative single-operator formations, costs each over inputRows rows,
// and returns the cheapest (§5.2 "we create a set of task formation
// candidates ... and choose the one with the least overall cost").
func FormTasks(opsList []OpReq, inputRows int64) (Formation, error) {
	if len(opsList) == 0 {
		return Formation{}, fmt.Errorf("qcomp: no operators to form")
	}
	budget := mem.DMEMSize - dmemReserve

	var candidates []Formation
	// Candidate 1: greedy maximal packing.
	if f, ok := packGreedy(opsList, budget, inputRows); ok {
		candidates = append(candidates, f)
	}
	// Candidate 2: one operator per task with maximal vectors.
	if f, ok := packSingles(opsList, budget, inputRows); ok {
		candidates = append(candidates, f)
	}
	// Candidate 3: pairs (a middle ground).
	if f, ok := packPairs(opsList, budget, inputRows); ok {
		candidates = append(candidates, f)
	}
	if len(candidates) == 0 {
		return Formation{}, fmt.Errorf("qcomp: no operator grouping fits the %d-byte DMEM", mem.DMEMSize)
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Cost < best.Cost {
			best = c
		}
	}
	return best, nil
}

func packGreedy(opsList []OpReq, budget int, inputRows int64) (Formation, bool) {
	var tasks []Task
	i := 0
	for i < len(opsList) {
		// Start a task at operator i and extend while the group still fits
		// at the minimum tile size.
		j := i + 1
		for j < len(opsList) && maxTileRowsFor(opsList[i:j+1], budget) > 0 {
			j++
		}
		rows := maxTileRowsFor(opsList[i:j], budget)
		if rows == 0 {
			return Formation{}, false
		}
		tasks = append(tasks, Task{Ops: opsList[i:j], TileRows: rows})
		i = j
	}
	return costFormation(tasks, inputRows), true
}

func packSingles(opsList []OpReq, budget int, inputRows int64) (Formation, bool) {
	tasks := make([]Task, len(opsList))
	for i, op := range opsList {
		rows := maxTileRowsFor(opsList[i:i+1], budget)
		if rows == 0 {
			return Formation{}, false
		}
		tasks[i] = Task{Ops: []OpReq{op}, TileRows: rows}
	}
	return costFormation(tasks, inputRows), true
}

func packPairs(opsList []OpReq, budget int, inputRows int64) (Formation, bool) {
	var tasks []Task
	for i := 0; i < len(opsList); i += 2 {
		j := i + 2
		if j > len(opsList) {
			j = len(opsList)
		}
		rows := maxTileRowsFor(opsList[i:j], budget)
		if rows == 0 {
			return Formation{}, false
		}
		tasks = append(tasks, Task{Ops: opsList[i:j], TileRows: rows})
	}
	return costFormation(tasks, inputRows), true
}

// costFormation models a formation's cost: DRAM materialization at task
// boundaries (write + re-read) at DMS bandwidth, plus a per-tile control
// overhead that larger vectors amortize.
func costFormation(tasks []Task, inputRows int64) Formation {
	const dmsBytesPerSec = 9.5 * (1 << 30)
	const tileOverheadSec = 40e-9 // per tile per operator

	f := Formation{Tasks: tasks}
	rows := float64(inputRows)
	for ti, t := range tasks {
		for _, op := range t.Ops {
			tiles := rows / float64(t.TileRows)
			f.Cost += tiles * tileOverheadSec
			rows *= op.Selectivity
		}
		// Materialize at the boundary (not after the last task: its output
		// is the query result and always materializes; count it too so
		// formations are comparable).
		lastOp := t.Ops[len(t.Ops)-1]
		outBytes := int64(rows) * int64(lastOp.OutBytesPerRow)
		f.MaterializedBytes += outBytes
		f.Cost += float64(outBytes) / dmsBytesPerSec // write
		if ti < len(tasks)-1 {
			f.Cost += float64(outBytes) / dmsBytesPerSec // re-read
		}
	}
	return f
}

// ChooseTileRows picks the tile size for a pipeline of operators: the
// largest tile the DMEM fits (the second step of task formation, growing
// vectors into the remaining space).
func ChooseTileRows(opsList []OpReq) int {
	rows := maxTileRowsFor(opsList, mem.DMEMSize-dmemReserve)
	if rows == 0 {
		return qef.MinTileRows
	}
	return rows
}
