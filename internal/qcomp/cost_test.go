package qcomp

import (
	"testing"

	"rapid/internal/plan"
	"rapid/internal/storage"
)

func TestEstimateMonotonicity(t *testing.T) {
	small := ordersTable(t, 1000)
	big := ordersTable(t, 50000)
	es := Estimate(plan.NewScan(small, storage.LatestSCN, nil))
	eb := Estimate(plan.NewScan(big, storage.LatestSCN, nil))
	if eb.Seconds <= es.Seconds {
		t.Fatal("bigger scan must cost more")
	}
	if eb.OutputRows != 50000 {
		t.Fatalf("scan rows = %d", eb.OutputRows)
	}
	// A filter shrinks the estimated output and cannot make it cheaper
	// than the underlying scan transfer.
	scan := plan.NewScan(big, storage.LatestSCN, nil)
	f := &plan.Filter{Input: scan, Pred: &plan.Cmp{Op: plan.GT,
		L: colRefOf(scan, "o_custkey"), R: &plan.Const{Val: 10}}}
	ef := Estimate(f)
	if ef.OutputRows >= eb.OutputRows {
		t.Fatal("filter must reduce estimated rows")
	}
	if ef.Seconds < eb.Seconds {
		t.Fatal("filter cannot be cheaper than its scan")
	}
}

func TestEstimateJoinAndAggregate(t *testing.T) {
	orders := ordersTable(t, 20000)
	cust := custTable(t, 500)
	so := plan.NewScan(orders, storage.LatestSCN, nil)
	sc := plan.NewScan(cust, storage.LatestSCN, nil)
	j := &plan.Join{Type: plan.InnerJoin, Left: so, Right: sc, LeftKeys: []int{1}, RightKeys: []int{0}}
	ej := Estimate(j)
	if ej.Seconds <= Estimate(so).Seconds {
		t.Fatal("join must cost more than scanning one side")
	}
	if ej.OutputCols != len(j.Schema()) {
		t.Fatalf("join cols = %d, want %d", ej.OutputCols, len(j.Schema()))
	}
	g := &plan.GroupBy{Input: j, Keys: []plan.Expr{colRefOf(so, "o_custkey")},
		Aggs: []plan.AggExpr{{Kind: plan.CountStar, Name: "n"}}}
	eg := Estimate(g)
	if eg.OutputRows >= ej.OutputRows {
		t.Fatal("group-by must reduce estimated rows")
	}
	// Sort, limit, window, setop cover the remaining estimators.
	s := &plan.Sort{Input: g, Keys: []plan.SortItem{{Col: 0}}}
	if Estimate(s).Seconds <= eg.Seconds {
		t.Fatal("sort adds cost")
	}
	l := &plan.Limit{Input: s, K: 5}
	if Estimate(l).OutputRows != 5 {
		t.Fatal("limit rows")
	}
	w := &plan.Window{Input: g, Func: plan.RowNumber}
	if Estimate(w).OutputCols != eg.OutputCols+1 {
		t.Fatal("window adds a column")
	}
	u := &plan.SetOp{Kind: plan.Union, Left: g, Right: g}
	if Estimate(u).OutputRows != 2*eg.OutputRows {
		t.Fatal("union row estimate")
	}
}

func TestOffloadBenefitPrefersRapidForAnalytics(t *testing.T) {
	// A large scan+aggregate is the textbook offload case: the RAPID
	// estimate (including result return) must beat the host's
	// row-at-a-time model.
	tbl := ordersTable(t, 100000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	g := &plan.GroupBy{Input: scan, Aggs: []plan.AggExpr{{Kind: plan.CountStar, Name: "n"}}}
	rapidSec, hostSec := OffloadBenefit(g)
	if rapidSec >= hostSec {
		t.Fatalf("offload should win: rapid %.3gs vs host %.3gs", rapidSec, hostSec)
	}
	// The result-transfer term matters: a full-table SELECT * offload of
	// everything back over the network must look worse relative to its
	// own execution than the aggregate did.
	all := plan.NewScan(tbl, storage.LatestSCN, nil)
	rAll, hAll := OffloadBenefit(all)
	aggAdvantage := hostSec / rapidSec
	scanAdvantage := hAll / rAll
	if scanAdvantage >= aggAdvantage {
		t.Fatalf("returning all rows should dilute the offload advantage (%.1f vs %.1f)",
			scanAdvantage, aggAdvantage)
	}
}
