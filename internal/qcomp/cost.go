package qcomp

import (
	"rapid/internal/dpu"
	"rapid/internal/plan"
	"rapid/internal/primitives"
)

// The RAPID cost model (paper §5.2): running on bare metal, RAPID's costs
// are deterministic — analytic functions of data volume calibrated with
// micro-benchmarks. The host database uses these estimates for the
// cost-based offload decision (§3.1): offload when RAPID execution plus
// result transfer plus post-processing beats host-only execution.

// CostEstimate is the modeled execution of a plan fragment.
type CostEstimate struct {
	Seconds    float64 // modeled RAPID execution time
	OutputRows int64   // estimated result rows (network transfer volume)
	OutputCols int
}

const (
	dpuFreqHz        = 800e6
	dmsBytesPerSec   = 9.5 * (1 << 30)
	dpuCores         = 32
	resultLinkBps    = 3.0 * (1 << 30) // RDMA result return (§3.2)
	hostRowFixedSec  = 120e-9          // System X per-row iterator cost
	hostJoinProbeSec = 250e-9
)

// Estimate models a logical plan's execution time on RAPID.
func Estimate(n plan.Node) CostEstimate {
	switch node := n.(type) {
	case *plan.Scan:
		rows := int64(node.Table.Rows())
		bytes := int64(0)
		for _, c := range node.Cols {
			w := node.Table.Meta(c).Width
			bytes += rows * int64(w.Bytes())
		}
		return CostEstimate{
			Seconds:    float64(bytes) / dmsBytesPerSec,
			OutputRows: rows,
			OutputCols: len(node.Cols),
		}
	case *plan.Filter:
		in := Estimate(node.Input)
		// Filter compute overlaps the scan transfer; the filter runs at
		// ~1.65 cycles/row/core over 32 cores.
		compute := primitives.FilterCost(int(in.OutputRows)) / dpuFreqHz / dpuCores
		sec := in.Seconds
		if compute > sec {
			sec = compute
		}
		out := int64(float64(in.OutputRows) * 0.3)
		if out < 1 {
			out = 1
		}
		return CostEstimate{Seconds: sec, OutputRows: out, OutputCols: in.OutputCols}
	case *plan.Project:
		in := Estimate(node.Input)
		compute := 3 * float64(in.OutputRows) / dpuFreqHz / dpuCores
		return CostEstimate{Seconds: in.Seconds + compute, OutputRows: in.OutputRows, OutputCols: len(node.Exprs)}
	case *plan.Join:
		l := Estimate(node.Left)
		r := Estimate(node.Right)
		build, probe := r.OutputRows, l.OutputRows
		if build > probe {
			build, probe = probe, build
		}
		scheme := OptimizeScheme(RequiredPartitions(build*16, dpu.DefaultConfig()), build*16)
		partSec := SchemeCost(scheme, (l.OutputRows+r.OutputRows)*16)
		kernel := (primitives.JoinBuildCost(int(build), 256) +
			primitives.JoinProbeCost(int(probe), 256, 0.5)) / dpuFreqHz / dpuCores
		return CostEstimate{
			Seconds:    l.Seconds + r.Seconds + partSec + kernel,
			OutputRows: probe,
			OutputCols: l.OutputCols + r.OutputCols,
		}
	case *plan.GroupBy:
		in := Estimate(node.Input)
		compute := 6 * float64(in.OutputRows) / dpuFreqHz / dpuCores
		out := int64(1)
		if len(node.Keys) > 0 {
			out = in.OutputRows / 10
			if out < 1 {
				out = 1
			}
		}
		return CostEstimate{Seconds: in.Seconds + compute, OutputRows: out, OutputCols: len(node.Keys) + len(node.Aggs)}
	case *plan.Sort:
		in := Estimate(node.Input)
		compute := 24 * float64(in.OutputRows) / dpuFreqHz / dpuCores
		return CostEstimate{Seconds: in.Seconds + compute, OutputRows: in.OutputRows, OutputCols: in.OutputCols}
	case *plan.Limit:
		in := Estimate(node.Input)
		out := int64(node.K)
		if in.OutputRows < out {
			out = in.OutputRows
		}
		return CostEstimate{Seconds: in.Seconds, OutputRows: out, OutputCols: in.OutputCols}
	case *plan.SetOp:
		l := Estimate(node.Left)
		r := Estimate(node.Right)
		return CostEstimate{Seconds: l.Seconds + r.Seconds, OutputRows: l.OutputRows + r.OutputRows, OutputCols: l.OutputCols}
	case *plan.Window:
		in := Estimate(node.Input)
		compute := 30 * float64(in.OutputRows) / dpuFreqHz / dpuCores
		return CostEstimate{Seconds: in.Seconds + compute, OutputRows: in.OutputRows, OutputCols: in.OutputCols + 1}
	}
	return CostEstimate{Seconds: 0, OutputRows: 1, OutputCols: 1}
}

// OffloadBenefit compares RAPID offload against host-only execution for a
// fragment: returns (rapidTotalSec, hostSec). The host database offloads
// when rapidTotal < host (§3.1).
func OffloadBenefit(n plan.Node) (rapidSec, hostSec float64) {
	est := Estimate(n)
	transfer := float64(est.OutputRows*int64(est.OutputCols)*8) / resultLinkBps
	rapidSec = est.Seconds + transfer

	hostSec = hostCost(n)
	return rapidSec, hostSec
}

// hostCost models System X's row-at-a-time execution of the same fragment.
func hostCost(n plan.Node) float64 {
	switch node := n.(type) {
	case *plan.Scan:
		return float64(node.Table.Rows()) * hostRowFixedSec
	case *plan.Join:
		l := hostCost(node.Left)
		r := hostCost(node.Right)
		lr := Estimate(node.Left).OutputRows
		return l + r + float64(lr)*hostJoinProbeSec
	default:
		var sum float64
		for _, c := range n.Children() {
			sum += hostCost(c)
		}
		rows := Estimate(n).OutputRows
		return sum + float64(rows)*hostRowFixedSec
	}
}
