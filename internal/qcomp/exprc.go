// Package qcomp is the RAPID query compiler and optimizer (paper §5.2): it
// takes the logical plan (already normalized by the host database) and
// produces a physical execution over the columnar engine, deciding physical
// operator variants, primitive and encoding selection per column,
// partitioning schemes (§5.3), task formation with DMEM sharing, and degree
// of parallelism, using the calibrated cost model.
package qcomp

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/primitives"
	"rapid/internal/storage"
)

// colInfo is the compile-time knowledge about one tile column.
type colInfo struct {
	field plan.Field
	stats *storage.ColStats // nil when unknown (post-transform)
}

// compileExpr lowers a typed logical expression to an executable ops.Expr,
// inserting scale-alignment arithmetic for DSB operands.
func compileExpr(e plan.Expr, cols []colInfo) (ops.Expr, error) {
	switch ex := e.(type) {
	case *plan.ColRef:
		if ex.Idx < 0 || ex.Idx >= len(cols) {
			return nil, fmt.Errorf("qcomp: column index %d out of schema", ex.Idx)
		}
		return &ops.ColRef{Idx: ex.Idx, Name: ex.Name}, nil
	case *plan.Const:
		if ex.T.Kind == coltypes.KindString {
			return nil, fmt.Errorf("qcomp: string constant %q in arithmetic context", ex.Str)
		}
		return &ops.ConstExpr{Val: ex.Val}, nil
	case *plan.Arith:
		return compileArith(ex, cols)
	case *plan.CaseExpr:
		cond, err := compilePred(ex.Cond, cols)
		if err != nil {
			return nil, err
		}
		thenE, err := compileScaled(ex.Then, scaleOf(ex.T), cols)
		if err != nil {
			return nil, err
		}
		elseE, err := compileScaled(ex.Else, scaleOf(ex.T), cols)
		if err != nil {
			return nil, err
		}
		return &ops.CaseExpr{Cond: cond, Then: thenE, Else: elseE}, nil
	}
	return nil, fmt.Errorf("qcomp: unsupported expression %T", e)
}

// compileScaled compiles e and rescales its result to the target scale.
func compileScaled(e plan.Expr, target int8, cols []colInfo) (ops.Expr, error) {
	ce, err := compileExpr(e, cols)
	if err != nil {
		return nil, err
	}
	s := scaleOf(e.Type())
	switch {
	case s == target:
		return ce, nil
	case s < target:
		return &ops.BinExpr{Op: ops.OpMul, L: ce, R: &ops.ConstExpr{Val: encoding.Pow10(int(target - s))}}, nil
	default:
		return &ops.BinExpr{Op: ops.OpDiv, L: ce, R: &ops.ConstExpr{Val: encoding.Pow10(int(s - target))}}, nil
	}
}

func compileArith(a *plan.Arith, cols []colInfo) (ops.Expr, error) {
	switch a.Op {
	case plan.Add, plan.Sub:
		target := scaleOf(a.T)
		if a.T.Kind == coltypes.KindDate {
			target = 0
		}
		l, err := compileScaled(a.L, target, cols)
		if err != nil {
			return nil, err
		}
		r, err := compileScaled(a.R, target, cols)
		if err != nil {
			return nil, err
		}
		op := ops.OpAdd
		if a.Op == plan.Sub {
			op = ops.OpSub
		}
		return &ops.BinExpr{Op: op, L: l, R: r}, nil
	case plan.Mul:
		l, err := compileExpr(a.L, cols)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(a.R, cols)
		if err != nil {
			return nil, err
		}
		return &ops.BinExpr{Op: ops.OpMul, L: l, R: r}, nil
	case plan.Div:
		// Result scale is DivScale: value = L*10^(DivScale - ls + rs) / R.
		l, err := compileExpr(a.L, cols)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(a.R, cols)
		if err != nil {
			return nil, err
		}
		ls, rs := scaleOf(a.L.Type()), scaleOf(a.R.Type())
		adj := int(plan.DivScale) - int(ls) + int(rs)
		num := l
		if adj > 0 {
			num = &ops.BinExpr{Op: ops.OpMul, L: l, R: &ops.ConstExpr{Val: encoding.Pow10(adj)}}
		} else if adj < 0 {
			num = &ops.BinExpr{Op: ops.OpDiv, L: l, R: &ops.ConstExpr{Val: encoding.Pow10(-adj)}}
		}
		return &ops.BinExpr{Op: ops.OpDiv, L: num, R: r}, nil
	}
	return nil, fmt.Errorf("qcomp: unsupported arithmetic op %v", a.Op)
}

func scaleOf(t coltypes.Type) int8 {
	if t.Kind == coltypes.KindDecimal {
		return t.Scale
	}
	return 0
}

// compilePred lowers a logical predicate to an executable ops.Predicate
// with a selectivity estimate from statistics — the input to predicate
// reordering and representation choice (§5.4).
func compilePred(p plan.Pred, cols []colInfo) (ops.Predicate, error) {
	switch pr := p.(type) {
	case *plan.Cmp:
		return compileCmp(pr, cols)
	case *plan.BetweenPred:
		return compileBetween(pr, cols)
	case *plan.InPred:
		return compileIn(pr, cols)
	case *plan.LikePred:
		return compileLike(pr, cols)
	case *plan.AndPred:
		sub := make([]ops.Predicate, len(pr.Preds))
		for i, s := range pr.Preds {
			c, err := compilePred(s, cols)
			if err != nil {
				return nil, err
			}
			sub[i] = c
		}
		return &ops.And{Preds: sub}, nil
	case *plan.OrPred:
		sub := make([]ops.Predicate, len(pr.Preds))
		for i, s := range pr.Preds {
			c, err := compilePred(s, cols)
			if err != nil {
				return nil, err
			}
			sub[i] = c
		}
		return &ops.Or{Preds: sub}, nil
	case *plan.NotPred:
		c, err := compilePred(pr.P, cols)
		if err != nil {
			return nil, err
		}
		return &ops.Not{P: c}, nil
	}
	return nil, fmt.Errorf("qcomp: unsupported predicate %T", p)
}

func compileCmp(c *plan.Cmp, cols []colInfo) (ops.Predicate, error) {
	op := cmpOp(c.Op)
	// Normalize const to the right.
	l, r := c.L, c.R
	if _, isConst := l.(*plan.Const); isConst {
		l, r = r, l
		op = op.Swap()
	}
	lc, lIsCol := l.(*plan.ColRef)
	rc, rIsConst := r.(*plan.Const)

	// Column vs constant: the fast path. A constant that does not rescale
	// exactly to the column scale (e.g. integer column vs fractional
	// literal) falls through to the scale-widening expression path.
	if lIsCol && rIsConst {
		ci := cols[lc.Idx]
		// String comparison binds through the dictionary.
		if ci.field.Type.Kind == coltypes.KindString {
			return compileStringCmp(op, lc, rc, ci)
		}
		if val, ok := rescaleConst(rc, scaleOf(ci.field.Type)); ok {
			return &ops.ConstCmp{
				Col: lc.Idx, Op: op, Val: val,
				Sel:  cmpSelectivity(op, val, ci.stats),
				Name: lc.Name,
			}, nil
		}
	}

	// Column vs column with equal scales.
	if lIsCol {
		if rcol, ok := r.(*plan.ColRef); ok && scaleOf(lc.T) == scaleOf(rcol.T) {
			return &ops.ColCmp{A: lc.Idx, B: rcol.Idx, Op: op, Sel: 0.3}, nil
		}
	}

	// General case: expression comparison. Align both sides to a common
	// scale and compare the difference against the constant (or evaluate
	// both as expressions via subtraction against zero).
	ls, rs := scaleOf(l.Type()), scaleOf(r.Type())
	target := ls
	if rs > target {
		target = rs
	}
	if rIsConst {
		le, err := compileScaled(l, target, cols)
		if err != nil {
			return nil, err
		}
		val, ok := rescaleConst(rc, target)
		if !ok {
			return nil, fmt.Errorf("qcomp: constant %s not representable at scale %d", rc, target)
		}
		return &ops.ExprCmp{E: le, Op: op, Val: val, Sel: 0.3}, nil
	}
	le, err := compileScaled(l, target, cols)
	if err != nil {
		return nil, err
	}
	re, err := compileScaled(r, target, cols)
	if err != nil {
		return nil, err
	}
	diff := &ops.BinExpr{Op: ops.OpSub, L: le, R: re}
	return &ops.ExprCmp{E: diff, Op: op, Val: 0, Sel: 0.3}, nil
}

func compileStringCmp(op primitives.CmpOp, lc *plan.ColRef, rc *plan.Const, ci colInfo) (ops.Predicate, error) {
	dict := ci.field.Dict
	if dict == nil {
		return nil, fmt.Errorf("qcomp: string column %s has no dictionary", lc.Name)
	}
	switch op {
	case primitives.EQ, primitives.NE:
		code := dict.Code(rc.Str)
		if code < 0 {
			// Unknown string: EQ matches nothing, NE matches everything.
			// Compile to a comparison against an impossible code.
			code = int32(dict.Len()) + 1
		}
		sel := 1.0 / float64(maxInt(dict.Len(), 1))
		if op == primitives.NE {
			sel = 1 - sel
		}
		return &ops.ConstCmp{Col: lc.Idx, Op: op, Val: int64(code), Sel: sel, Name: lc.Name}, nil
	default:
		var sym string
		switch op {
		case primitives.LT:
			sym = "<"
		case primitives.LE:
			sym = "<="
		case primitives.GT:
			sym = ">"
		case primitives.GE:
			sym = ">="
		}
		set, err := dict.CompareCodes(sym, rc.Str)
		if err != nil {
			return nil, fmt.Errorf("qcomp: string comparison on %s: %w", lc.Name, err)
		}
		sel := float64(set.Count()) / float64(maxInt(dict.Len(), 1))
		return &ops.InSet{Col: lc.Idx, Set: set.Bitmap(), Sel: sel, Name: lc.Name}, nil
	}
}

func compileBetween(b *plan.BetweenPred, cols []colInfo) (ops.Predicate, error) {
	lc, ok := b.E.(*plan.ColRef)
	loC, okLo := b.Lo.(*plan.Const)
	hiC, okHi := b.Hi.(*plan.Const)
	if !ok || !okLo || !okHi {
		// Lower to two comparisons.
		lo := &plan.Cmp{Op: plan.GE, L: b.E, R: b.Lo}
		hi := &plan.Cmp{Op: plan.LE, L: b.E, R: b.Hi}
		return compilePred(&plan.AndPred{Preds: []plan.Pred{lo, hi}}, cols)
	}
	ci := cols[lc.Idx]
	s := scaleOf(ci.field.Type)
	lo, ok1 := rescaleConst(loC, s)
	hi, ok2 := rescaleConst(hiC, s)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("qcomp: BETWEEN bounds not representable at column scale")
	}
	return &ops.Between{
		Col: lc.Idx, Lo: lo, Hi: hi,
		Sel:  rangeSelectivity(lo, hi, ci.stats),
		Name: lc.Name,
	}, nil
}

func compileIn(in *plan.InPred, cols []colInfo) (ops.Predicate, error) {
	lc, ok := in.E.(*plan.ColRef)
	if !ok {
		return nil, fmt.Errorf("qcomp: IN over non-column expression")
	}
	ci := cols[lc.Idx]
	if ci.field.Type.Kind == coltypes.KindString {
		dict := ci.field.Dict
		if dict == nil {
			return nil, fmt.Errorf("qcomp: string column %s has no dictionary", lc.Name)
		}
		set := dict.MatchCodes(func(string) bool { return false }) // empty
		for _, c := range in.List {
			if code := dict.Code(c.Str); code >= 0 {
				set.Bitmap().Set(int(code))
			}
		}
		sel := float64(set.Count()) / float64(maxInt(dict.Len(), 1))
		return &ops.InSet{Col: lc.Idx, Set: set.Bitmap(), Sel: sel, Name: lc.Name}, nil
	}
	// Numeric IN: OR of equalities.
	var sub []ops.Predicate
	s := scaleOf(ci.field.Type)
	for _, c := range in.List {
		val, ok := rescaleConst(c, s)
		if !ok {
			continue
		}
		sub = append(sub, &ops.ConstCmp{
			Col: lc.Idx, Op: primitives.EQ, Val: val,
			Sel:  cmpSelectivity(primitives.EQ, val, ci.stats),
			Name: lc.Name,
		})
	}
	if len(sub) == 0 {
		return &ops.Not{P: ops.TruePred{}}, nil
	}
	return &ops.Or{Preds: sub}, nil
}

func compileLike(l *plan.LikePred, cols []colInfo) (ops.Predicate, error) {
	lc, ok := l.E.(*plan.ColRef)
	if !ok {
		return nil, fmt.Errorf("qcomp: LIKE over non-column expression")
	}
	ci := cols[lc.Idx]
	dict := ci.field.Dict
	if dict == nil {
		return nil, fmt.Errorf("qcomp: LIKE on non-dictionary column %s", lc.Name)
	}
	var set *encoding.CodeSet
	switch l.Kind {
	case plan.LikePrefix:
		set = dict.PrefixCodes(l.Pattern)
	case plan.LikeSuffix:
		set = dict.SuffixCodes(l.Pattern)
	case plan.LikeContains:
		set = dict.ContainsCodes(l.Pattern)
	case plan.LikeExact:
		set = dict.MatchCodes(func(s string) bool { return s == l.Pattern })
	}
	sel := float64(set.Count()) / float64(maxInt(dict.Len(), 1))
	var pred ops.Predicate = &ops.InSet{Col: lc.Idx, Set: set.Bitmap(), Sel: sel, Name: lc.Name}
	if l.Negate {
		pred = &ops.Not{P: pred}
	}
	return pred, nil
}

// rescaleConst converts a numeric/date constant to the target DSB scale.
func rescaleConst(c *plan.Const, target int8) (int64, bool) {
	s := scaleOf(c.T)
	d := encoding.Decimal{Unscaled: c.Val, Scale: s}
	return d.Rescale(target)
}

func cmpOp(op plan.CmpOp) primitives.CmpOp {
	switch op {
	case plan.EQ:
		return primitives.EQ
	case plan.NE:
		return primitives.NE
	case plan.LT:
		return primitives.LT
	case plan.LE:
		return primitives.LE
	case plan.GT:
		return primitives.GT
	case plan.GE:
		return primitives.GE
	}
	panic("qcomp: bad CmpOp")
}

// cmpSelectivity estimates predicate selectivity from column statistics
// assuming a uniform value distribution.
func cmpSelectivity(op primitives.CmpOp, val int64, st *storage.ColStats) float64 {
	if st == nil || st.Max < st.Min {
		return 0.3
	}
	width := float64(st.Max-st.Min) + 1
	switch op {
	case primitives.EQ:
		if st.NDV > 0 {
			return 1 / float64(st.NDV)
		}
		return 1 / width
	case primitives.NE:
		if st.NDV > 0 {
			return 1 - 1/float64(st.NDV)
		}
		return 1 - 1/width
	case primitives.LT, primitives.LE:
		f := (float64(val) - float64(st.Min)) / width
		return clamp01(f)
	case primitives.GT, primitives.GE:
		f := (float64(st.Max) - float64(val)) / width
		return clamp01(f)
	}
	return 0.3
}

func rangeSelectivity(lo, hi int64, st *storage.ColStats) float64 {
	if st == nil || st.Max <= st.Min {
		return 0.3
	}
	width := float64(st.Max-st.Min) + 1
	f := (float64(hi) - float64(lo) + 1) / width
	return clamp01(f)
}

func clamp01(f float64) float64 {
	if f < 0.001 {
		return 0.001
	}
	if f > 1 {
		return 1
	}
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
