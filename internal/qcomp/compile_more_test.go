package qcomp

import (
	"strings"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/plan"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// Direct compiler coverage: every expression/predicate shape through
// compileExpr/compilePred, and every physical node through execute.

func TestCompileArithmeticShapes(t *testing.T) {
	tbl := ordersTable(t, 2000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	total := colRefOf(scan, "o_total")     // DECIMAL(2)
	custkey := colRefOf(scan, "o_custkey") // INT

	mk := func(op plan.ArithOp, l, r plan.Expr) plan.Expr {
		e, err := plan.NewArith(op, l, r)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Mixed-scale add (int + decimal), subtract, multiply, divide, and a
	// CASE over a comparison.
	caseE, err := plan.NewCase(
		&plan.Cmp{Op: plan.GT, L: total, R: &plan.Const{T: coltypes.Decimal(0), Val: 500}},
		total,
		&plan.Const{T: coltypes.Decimal(2), Val: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Project{
		Input: scan,
		Exprs: []plan.Expr{
			mk(plan.Add, custkey, total),
			mk(plan.Sub, total, custkey),
			mk(plan.Mul, total, total),
			mk(plan.Div, total, mk(plan.Add, custkey, &plan.Const{T: coltypes.Int(), Val: 1})),
			caseE,
		},
		Names: []string{"a", "s", "m", "d", "c"},
	}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, p)
	if rel.Rows() != 2000 {
		t.Fatalf("rows = %d", rel.Rows())
	}
	// Spot-check the scale bookkeeping on row 0: o_custkey=0, o_total=10.00.
	if got := rel.Cols[0].Data.Get(0); got != 1000 { // 0 + 10.00 at scale 2
		t.Fatalf("add = %d", got)
	}
	if got := rel.Cols[2].Data.Get(0); got != 1000*1000 { // 10.00^2 at scale 4
		t.Fatalf("mul = %d", got)
	}
	if rel.Cols[2].Type.Scale != 4 || rel.Cols[3].Type.Scale != plan.DivScale {
		t.Fatal("scale metadata wrong")
	}
	// Div: 10.00 / 1 at DivScale = 100000.
	if got := rel.Cols[3].Data.Get(0); got != 100000 {
		t.Fatalf("div = %d", got)
	}
	// Case: 10.00 <= 500 -> 0.
	if got := rel.Cols[4].Data.Get(0); got != 0 {
		t.Fatalf("case = %d", got)
	}
}

func TestCompileStringPredicates(t *testing.T) {
	cust := custTable(t, 100)
	scan := plan.NewScan(cust, storage.LatestSCN, nil)
	name := colRefOf(scan, "c_name")
	ctx := qef.NewContext(qef.ModeX86)

	// EQ, NE, range comparison, LIKE variants, IN.
	check := func(pred plan.Pred, want int) {
		t.Helper()
		rel := run(t, ctx, &plan.Filter{Input: scan, Pred: pred})
		if rel.Rows() != want {
			t.Fatalf("%s: rows = %d, want %d", pred, rel.Rows(), want)
		}
	}
	check(&plan.Cmp{Op: plan.EQ, L: name, R: &plan.Const{T: coltypes.String(), Str: "Customer#042"}}, 1)
	check(&plan.Cmp{Op: plan.EQ, L: name, R: &plan.Const{T: coltypes.String(), Str: "nope"}}, 0)
	check(&plan.Cmp{Op: plan.NE, L: name, R: &plan.Const{T: coltypes.String(), Str: "Customer#042"}}, 99)
	check(&plan.Cmp{Op: plan.LT, L: name, R: &plan.Const{T: coltypes.String(), Str: "Customer#010"}}, 10)
	check(&plan.Cmp{Op: plan.GE, L: name, R: &plan.Const{T: coltypes.String(), Str: "Customer#090"}}, 10)
	check(&plan.LikePred{E: name, Kind: plan.LikePrefix, Pattern: "Customer#09"}, 10)
	check(&plan.LikePred{E: name, Kind: plan.LikeSuffix, Pattern: "7"}, 10)
	check(&plan.LikePred{E: name, Kind: plan.LikeContains, Pattern: "#05"}, 10)
	check(&plan.LikePred{E: name, Kind: plan.LikeExact, Pattern: "Customer#007"}, 1)
	check(&plan.LikePred{E: name, Kind: plan.LikePrefix, Pattern: "Customer#00", Negate: true}, 90)
	check(&plan.InPred{E: name, List: []*plan.Const{
		{T: coltypes.String(), Str: "Customer#001"},
		{T: coltypes.String(), Str: "Customer#002"},
		{T: coltypes.String(), Str: "missing"},
	}}, 2)
	// Constant-on-the-left normalization: 'Customer#095' > c_name means
	// c_name < 'Customer#095', i.e. names 000..094.
	check(&plan.Cmp{Op: plan.GT, L: &plan.Const{T: coltypes.String(), Str: "Customer#095"}, R: name}, 95)
}

func TestCompileNumericIn(t *testing.T) {
	tbl := ordersTable(t, 1000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	ck := colRefOf(scan, "o_custkey")
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, &plan.Filter{Input: scan, Pred: &plan.InPred{E: ck, List: []*plan.Const{
		{T: coltypes.Int(), Val: 3},
		{T: coltypes.Int(), Val: 7},
	}}})
	want := 0
	for i := 0; i < 1000; i++ {
		if k := i % 200; k == 3 || k == 7 {
			want++
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
	// Empty effective list matches nothing.
	rel2 := run(t, ctx, &plan.Filter{Input: scan, Pred: &plan.InPred{E: ck, List: nil}})
	if rel2.Rows() != 0 {
		t.Fatal("empty IN should match nothing")
	}
}

func TestCompileSetOpAndWindowNodes(t *testing.T) {
	tbl := ordersTable(t, 500)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	keyOnly := &plan.Project{Input: scan, Exprs: []plan.Expr{colRefOf(scan, "o_custkey")}, Names: []string{"k"}}
	u := &plan.SetOp{Kind: plan.Union, Left: keyOnly, Right: keyOnly}
	ctx := qef.NewContext(qef.ModeX86)
	rel := run(t, ctx, u)
	if rel.Rows() != 200 { // distinct custkeys
		t.Fatalf("union rows = %d", rel.Rows())
	}
	w := &plan.Window{Input: keyOnly, Func: plan.RowNumber, PartitionBy: []int{0}, Name: "rn"}
	relW := run(t, ctx, w)
	if relW.NumCols() != 2 || relW.Rows() != 500 {
		t.Fatalf("window shape %dx%d", relW.Rows(), relW.NumCols())
	}
	// Explain covers every node type's explain method.
	c, err := Compile(&plan.Limit{Input: &plan.Sort{Input: u, Keys: []plan.SortItem{{Col: 0}}}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Explain(), "TopK") {
		t.Fatal("explain")
	}
	cw, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cw.Explain(), "Window") {
		t.Fatal("window explain")
	}
	cu, err := Compile(u)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cu.Explain(), "SetOp") {
		t.Fatal("setop explain")
	}
}

func TestCompileErrors(t *testing.T) {
	tbl := ordersTable(t, 100)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	status := colRefOf(scan, "o_status")
	bad := []plan.Node{
		// String constant in arithmetic context.
		&plan.Project{Input: scan, Exprs: []plan.Expr{
			&plan.Arith{Op: plan.Add, L: status, R: &plan.Const{T: coltypes.String(), Str: "x"}, T: coltypes.Int()},
		}},
		// Group key that is not a column.
		&plan.GroupBy{Input: scan,
			Keys: []plan.Expr{&plan.Const{T: coltypes.Int(), Val: 1}},
			Aggs: []plan.AggExpr{{Kind: plan.CountStar, Name: "n"}}},
		// Join with zero keys.
		&plan.Join{Type: plan.InnerJoin, Left: scan, Right: scan},
	}
	for i, n := range bad {
		if _, err := Compile(n); err == nil {
			t.Errorf("case %d should fail to compile", i)
		}
	}
}

func TestCompileOrPredicateSelectivity(t *testing.T) {
	tbl := ordersTable(t, 3000)
	scan := plan.NewScan(tbl, storage.LatestSCN, nil)
	ck := colRefOf(scan, "o_custkey")
	or := &plan.OrPred{Preds: []plan.Pred{
		&plan.Cmp{Op: plan.LT, L: ck, R: &plan.Const{T: coltypes.Int(), Val: 10}},
		&plan.Cmp{Op: plan.GE, L: ck, R: &plan.Const{T: coltypes.Int(), Val: 190}},
	}}
	not := &plan.NotPred{P: or}
	ctx := qef.NewContext(qef.ModeDPU)
	relOr := run(t, ctx, &plan.Filter{Input: scan, Pred: or})
	relNot := run(t, ctx, &plan.Filter{Input: scan, Pred: not})
	if relOr.Rows()+relNot.Rows() != 3000 {
		t.Fatalf("OR (%d) + NOT OR (%d) must partition the input", relOr.Rows(), relNot.Rows())
	}
}
