package qcomp

import (
	"fmt"
	"strings"

	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/qef"
)

// ---------------------------------------------------------------------------
// Partitioned (high NDV) group-by.

type groupPartNode struct {
	input     physNode
	groupCols []int
	specs     []ops.AggSpec
	finals    []finalSpec
	out       []plan.Field
	ndv       int64
	opID      int
}

func (g *groupPartNode) fields() []plan.Field { return g.out }
func (g *groupPartNode) estRows() int64       { return g.ndv }

func (g *groupPartNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "GroupByPartitioned(keys=%d, aggs=%d, ndv~%d)\n", len(g.groupCols), len(g.specs), g.ndv)
	g.input.explain(sb, depth+1)
}

func (g *groupPartNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	rel, err := g.input.execute(ctx)
	if err != nil {
		return nil, err
	}
	sp := ctx.Prof.Span(g.opID)
	sp.AddRowsIn(int64(rel.Rows()))
	// Scheme: enough partitions that each partition's group table fits the
	// DMEM (the §5.4 pre-partitioning of high-NDV group-by).
	groupBytes := int64(len(g.groupCols)*8 + len(g.specs)*32)
	target := RequiredPartitions(g.ndv*groupBytes, ctx.SoC.Config())
	scheme := OptimizeScheme(target, g.ndv*groupBytes)
	maxGroups := int(g.ndv)/scheme.Fanout() + 64
	prev := ctx.SetActiveSpan(sp)
	raw, err := ops.GroupByPartitioned(ctx, rel, g.groupCols, g.specs, scheme, maxGroups*2)
	ctx.SetActiveSpan(prev)
	if err != nil {
		return nil, err
	}
	p := &pipelineNode{finals: g.finals, outFields: g.out}
	out, err := p.finalizeGrouped(raw, len(g.groupCols))
	if err != nil {
		return nil, err
	}
	sp.AddRowsOut(int64(out.Rows()))
	return out, nil
}

// ---------------------------------------------------------------------------
// Hash join.

type joinNode struct {
	typ     plan.JoinType
	left    physNode // probe / output-first side
	right   physNode // build side candidate
	lk, rk  []int
	out     []plan.Field
	est     int64
	scheme  ops.PartScheme
	swapped bool // build is the left input
	opID    int
}

func compileJoin(j *plan.Join, in map[plan.Node]*ops.Relation) (physNode, error) {
	left, err := compileNode(j.Left, in)
	if err != nil {
		return nil, err
	}
	right, err := compileNode(j.Right, in)
	if err != nil {
		return nil, err
	}
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 || len(j.LeftKeys) > 2 {
		return nil, fmt.Errorf("qcomp: join needs 1 or 2 key pairs")
	}
	n := &joinNode{
		typ: j.Type, left: left, right: right,
		lk: j.LeftKeys, rk: j.RightKeys,
		out: j.Schema(),
	}
	// Build-side choice: the smaller input, except for semi/anti/outer
	// joins whose semantics pin the build side to the right input.
	if j.Type == plan.InnerJoin && left.estRows() < right.estRows() {
		n.swapped = true
	}
	buildEst := right.estRows()
	if n.swapped {
		buildEst = left.estRows()
	}
	probeEst := left.estRows() + right.estRows() - buildEst
	n.est = probeEst
	// Partition scheme from the optimizer (§5.3): size on the build side.
	buildBytes := buildEst * int64(len(n.rk)*8+16)
	target := RequiredPartitions(buildBytes, dpu.DefaultConfig())
	n.scheme = OptimizeScheme(target, buildBytes)
	return n, nil
}

func (n *joinNode) fields() []plan.Field { return n.out }
func (n *joinNode) estRows() int64       { return n.est }

func (n *joinNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "HashJoin(type=%v, scheme=%s, swapped=%v)\n", n.typ, n.scheme, n.swapped)
	n.left.explain(sb, depth+1)
	n.right.explain(sb, depth+1)
}

func (n *joinNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	leftRel, err := n.left.execute(ctx)
	if err != nil {
		return nil, err
	}
	rightRel, err := n.right.execute(ctx)
	if err != nil {
		return nil, err
	}
	sp := ctx.Prof.Span(n.opID)
	sp.AddRowsIn(int64(leftRel.Rows() + rightRel.Rows()))
	build, probe := rightRel, leftRel
	bk, pk := n.rk, n.lk
	if n.swapped {
		build, probe = leftRel, rightRel
		bk, pk = n.lk, n.rk
	}
	spec := ops.JoinSpec{
		Type:       joinType(n.typ),
		BuildKeys:  bk,
		ProbeKeys:  pk,
		Scheme:     n.scheme,
		Vectorized: true,
	}
	// Payload: all columns of each side (the logical schema).
	switch n.typ {
	case plan.SemiJoin, plan.AntiJoin:
		spec.ProbePayload = allIdx(probe.NumCols())
	default:
		spec.ProbePayload = allIdx(probe.NumCols())
		spec.BuildPayload = allIdx(build.NumCols())
	}
	prev := ctx.SetActiveSpan(sp)
	out, err := ops.HashJoin(ctx, build, probe, spec)
	ctx.SetActiveSpan(prev)
	if err != nil {
		return nil, err
	}
	sp.AddRowsOut(int64(out.Rows()))
	// Output order: left columns then right columns. The sink emits probe
	// then build; reorder when the build side was the left input.
	if n.swapped && n.typ == plan.InnerJoin {
		nl := leftRel.NumCols()
		np := probe.NumCols()
		cols := make([]ops.Col, 0, out.NumCols())
		cols = append(cols, out.Cols[np:np+nl]...) // left (= build) side
		cols = append(cols, out.Cols[:np]...)      // right (= probe) side
		out = ops.MustRelation(cols)
	}
	// Restore field metadata.
	for i := range out.Cols {
		if i < len(n.out) {
			out.Cols[i].Name = n.out[i].Name
			out.Cols[i].Type = n.out[i].Type
			out.Cols[i].Dict = n.out[i].Dict
		}
	}
	return out, nil
}

func joinType(t plan.JoinType) ops.JoinType {
	switch t {
	case plan.SemiJoin:
		return ops.SemiJoin
	case plan.AntiJoin:
		return ops.AntiJoin
	case plan.LeftOuterJoin:
		return ops.LeftOuterJoin
	default:
		return ops.InnerJoin
	}
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ---------------------------------------------------------------------------
// Sort / Top-K / Limit.

type sortNode struct {
	input physNode
	keys  []plan.SortItem
	opID  int
}

func (n *sortNode) fields() []plan.Field { return n.input.fields() }
func (n *sortNode) estRows() int64       { return n.input.estRows() }
func (n *sortNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Sort(%v)\n", n.keys)
	n.input.explain(sb, depth+1)
}

func (n *sortNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	rel, err := n.input.execute(ctx)
	if err != nil {
		return nil, err
	}
	sp := ctx.Prof.Span(n.opID)
	sp.AddRowsIn(int64(rel.Rows()))
	nCols := rel.NumCols()
	ranked, keys := rankColumns(rel, sortKeys(n.keys, rel))
	prev := ctx.SetActiveSpan(sp)
	out, err := ops.SortRelation(ctx, ranked, keys)
	ctx.SetActiveSpan(prev)
	if err != nil {
		return nil, err
	}
	sp.AddRowsOut(int64(out.Rows()))
	return ops.MustRelation(out.Cols[:nCols]), nil
}

// sortKeys translates plan sort items, using dictionary rank order for
// string columns (codes are insertion-ordered, not lexicographic).
func sortKeys(items []plan.SortItem, rel *ops.Relation) []ops.SortKey {
	keys := make([]ops.SortKey, len(items))
	for i, it := range items {
		keys[i] = ops.SortKey{Col: it.Col, Desc: it.Desc}
	}
	return keys
}

// rankColumns replaces dictionary-coded sort columns by their rank so that
// ORDER BY sorts lexicographically. Returns a relation view with substitute
// columns appended and remapped keys.
func rankColumns(rel *ops.Relation, keys []ops.SortKey) (*ops.Relation, []ops.SortKey) {
	out := rel
	mapped := append([]ops.SortKey(nil), keys...)
	for i, k := range keys {
		c := rel.Cols[k.Col]
		if c.Type.Kind != coltypes.KindString || c.Dict == nil {
			continue
		}
		rank := c.Dict.SortRank()
		data := coltypes.New(coltypes.W4, c.Data.Len())
		for r := 0; r < c.Data.Len(); r++ {
			code := c.Data.Get(r)
			if code >= 0 && code < int64(len(rank)) {
				data.Set(r, int64(rank[code]))
			}
		}
		cols := append(append([]ops.Col(nil), out.Cols...), ops.Col{
			Name: c.Name + "#rank", Type: coltypes.Int(), Data: data,
		})
		out = ops.MustRelation(cols)
		mapped[i].Col = len(cols) - 1
	}
	return out, mapped
}

type topkNode struct {
	input physNode
	keys  []plan.SortItem
	k     int
	opID  int
}

func (n *topkNode) fields() []plan.Field { return n.input.fields() }
func (n *topkNode) estRows() int64 {
	e := n.input.estRows()
	if int64(n.k) < e {
		return int64(n.k)
	}
	return e
}
func (n *topkNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "TopK(k=%d, %v)\n", n.k, n.keys)
	n.input.explain(sb, depth+1)
}

func (n *topkNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	rel, err := n.input.execute(ctx)
	if err != nil {
		return nil, err
	}
	sp := ctx.Prof.Span(n.opID)
	sp.AddRowsIn(int64(rel.Rows()))
	nCols := rel.NumCols()
	ranked, keys := rankColumns(rel, sortKeys(n.keys, rel))
	prev := ctx.SetActiveSpan(sp)
	out, err := ops.TopK(ctx, ranked, keys, n.k)
	ctx.SetActiveSpan(prev)
	if err != nil {
		return nil, err
	}
	sp.AddRowsOut(int64(out.Rows()))
	return ops.MustRelation(out.Cols[:nCols]), nil
}

type limitNode struct {
	input physNode
	k     int
	opID  int
}

func (n *limitNode) fields() []plan.Field { return n.input.fields() }
func (n *limitNode) estRows() int64       { return int64(n.k) }
func (n *limitNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Limit(%d)\n", n.k)
	n.input.explain(sb, depth+1)
}

func (n *limitNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	rel, err := n.input.execute(ctx)
	if err != nil {
		return nil, err
	}
	sp := ctx.Prof.Span(n.opID)
	sp.AddRowsIn(int64(rel.Rows()))
	out := ops.Limit(rel, n.k)
	sp.AddRowsOut(int64(out.Rows()))
	return out, nil
}

// ---------------------------------------------------------------------------
// Set operations.

type setopNode struct {
	left, right physNode
	kind        plan.SetOpKind
	opID        int
}

func (n *setopNode) fields() []plan.Field { return n.left.fields() }
func (n *setopNode) estRows() int64       { return n.left.estRows() + n.right.estRows() }
func (n *setopNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "SetOp(%d)\n", n.kind)
	n.left.explain(sb, depth+1)
	n.right.explain(sb, depth+1)
}

func (n *setopNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	l, err := n.left.execute(ctx)
	if err != nil {
		return nil, err
	}
	r, err := n.right.execute(ctx)
	if err != nil {
		return nil, err
	}
	sp := ctx.Prof.Span(n.opID)
	sp.AddRowsIn(int64(l.Rows() + r.Rows()))
	kind := map[plan.SetOpKind]ops.SetOpKind{
		plan.Union: ops.SetUnion, plan.UnionAll: ops.SetUnionAll,
		plan.Intersect: ops.SetIntersect, plan.Minus: ops.SetMinus,
	}[n.kind]
	prev := ctx.SetActiveSpan(sp)
	out, err := ops.SetOp(ctx, l, r, kind)
	ctx.SetActiveSpan(prev)
	if err != nil {
		return nil, err
	}
	sp.AddRowsOut(int64(out.Rows()))
	return out, nil
}

// ---------------------------------------------------------------------------
// Window.

type windowNode struct {
	input physNode
	spec  *plan.Window
	opID  int
}

func (n *windowNode) fields() []plan.Field { return n.spec.Schema() }
func (n *windowNode) estRows() int64       { return n.input.estRows() }
func (n *windowNode) explain(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Window(f=%d)\n", n.spec.Func)
	n.input.explain(sb, depth+1)
}

func (n *windowNode) execute(ctx *qef.Context) (*ops.Relation, error) {
	rel, err := n.input.execute(ctx)
	if err != nil {
		return nil, err
	}
	fn := map[plan.WindowFunc]ops.WindowFunc{
		plan.RowNumber: ops.WinRowNumber, plan.Rank: ops.WinRank,
		plan.DenseRank: ops.WinDenseRank, plan.CumSum: ops.WinCumSum,
		plan.WinTotalSum: ops.WinSum,
	}[n.spec.Func]
	ob := make([]ops.SortKey, len(n.spec.OrderBy))
	for i, o := range n.spec.OrderBy {
		ob[i] = ops.SortKey{Col: o.Col, Desc: o.Desc}
	}
	sp := ctx.Prof.Span(n.opID)
	sp.AddRowsIn(int64(rel.Rows()))
	prev := ctx.SetActiveSpan(sp)
	out, err := ops.Window(ctx, rel, ops.WindowSpec{
		Func:        fn,
		PartitionBy: n.spec.PartitionBy,
		OrderBy:     ob,
		ValueCol:    n.spec.ValueCol,
		Name:        n.spec.Name,
	})
	ctx.SetActiveSpan(prev)
	if err != nil {
		return nil, err
	}
	sp.AddRowsOut(int64(out.Rows()))
	return out, nil
}
