package dms

import (
	"errors"
	"testing"

	"rapid/internal/coltypes"
)

func TestDescriptorValidation(t *testing.T) {
	col := coltypes.New(coltypes.W4, 100)
	buf := coltypes.New(coltypes.W4, 64)
	good := &Descriptor{Dir: DirRead, Col: col, Buf: buf, Rows: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Descriptor{
		{Dir: DirRead, Col: col, Buf: buf, Rows: 0},
		{Dir: DirRead, Col: nil, Buf: buf, Rows: 64},
		{Dir: DirRead, Col: col, Buf: coltypes.New(coltypes.W4, 32), Rows: 64},
		{Dir: DirRead, Col: col, Buf: coltypes.New(coltypes.W8, 64), Rows: 64},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("descriptor %d should fail validation", i)
		}
	}
	e, _ := newEngine()
	if _, err := e.NewLoop(bad[0]); err == nil {
		t.Fatal("NewLoop must validate")
	}
}

func TestLoopReadModifyWrite(t *testing.T) {
	e, _ := newEngine()
	n := 1000
	src := coltypes.New(coltypes.W4, n)
	dst := coltypes.New(coltypes.W4, n)
	for i := 0; i < n; i++ {
		src.Set(i, int64(i))
	}
	inBuf := coltypes.New(coltypes.W4, 128)
	outBuf := coltypes.New(coltypes.W4, 128)
	loop, err := e.NewLoop(
		&Descriptor{Dir: DirRead, Col: src, Buf: inBuf, Rows: 128},
		&Descriptor{Dir: DirWrite, Col: dst, Buf: outBuf, Rows: 128},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, tm, err := loop.Run(func(rows int) error {
		for i := 0; i < rows; i++ {
			outBuf.Set(i, src.Width().MaxInt()&(inBuf.Get(i)*2)) // double each value
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("rows = %d", rows)
	}
	if tm.Bytes != int64(2*n*4) || tm.Seconds <= 0 {
		t.Fatalf("timing = %+v", tm)
	}
	for i := 0; i < n; i++ {
		if dst.Get(i) != int64(2*i) {
			t.Fatalf("dst[%d] = %d", i, dst.Get(i))
		}
	}
	// Loop is reusable after Reset.
	loop.Reset()
	if loop.Remaining() != n {
		t.Fatal("Reset should rewind")
	}
}

func TestLoopBodyError(t *testing.T) {
	e, _ := newEngine()
	src := coltypes.New(coltypes.W4, 256)
	buf := coltypes.New(coltypes.W4, 64)
	loop, _ := e.NewLoop(&Descriptor{Dir: DirRead, Col: src, Buf: buf, Rows: 64})
	boom := errors.New("boom")
	_, _, err := loop.Run(func(int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoopPartialTail(t *testing.T) {
	e, _ := newEngine()
	src := coltypes.New(coltypes.W4, 100) // not a multiple of 64
	buf := coltypes.New(coltypes.W4, 64)
	loop, _ := e.NewLoop(&Descriptor{Dir: DirRead, Col: src, Buf: buf, Rows: 64})
	var sizes []int
	rows, _, err := loop.Run(func(n int) error {
		sizes = append(sizes, n)
		return nil
	})
	if err != nil || rows != 100 {
		t.Fatalf("rows = %d, err %v", rows, err)
	}
	if len(sizes) != 2 || sizes[0] != 64 || sizes[1] != 36 {
		t.Fatalf("iteration sizes = %v", sizes)
	}
}
