package dms

import (
	"fmt"
	mathbits "math/bits"
	"sort"

	"rapid/internal/coltypes"
	"rapid/internal/hashcrc"
)

// Strategy selects one of the DMS hardware partitioning modes (paper §5.4).
type Strategy int

const (
	// Radix inspects the low bits of the key column directly.
	Radix Strategy = iota
	// Hash applies the CRC32 engine to 1..4 key columns and inspects the
	// radix bits of the hash.
	Hash
	// Range matches each key against up to 32 pre-programmed range bounds.
	Range
	// RoundRobin cycles targets; with SkewTargets it replicates frequent
	// ranges across multiple cores (the skew mitigation of §5.4).
	RoundRobin
)

func (s Strategy) String() string {
	switch s {
	case Radix:
		return "radix"
	case Hash:
		return "hash"
	case Range:
		return "range"
	case RoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// MaxFanout is the hardware fan-out limit: one target per dpCore.
const MaxFanout = 32

// PartitionSpec programs the DMS partitioning engines.
type PartitionSpec struct {
	Strategy Strategy
	// Fanout is the number of target partitions (1..32). Radix and Hash
	// require a power of two.
	Fanout int
	// KeyCols are indices of the key columns (1..4 for Hash; exactly 1 for
	// Radix and Range; ignored by RoundRobin).
	KeyCols []int
	// Bounds are the Range strategy's pre-programmed upper bounds: row goes
	// to partition p where p is the first bound with key < Bounds[p], and
	// to the last partition otherwise. len(Bounds) == Fanout-1.
	Bounds []int64
	// SkewRanges optionally assigns a frequent key range [Lo, Hi] to a set
	// of targets that receive its rows round-robin (RoundRobin strategy).
	SkewRanges []SkewRange
}

// SkewRange replicates a frequent key range over multiple target cores.
type SkewRange struct {
	Lo, Hi  int64 // inclusive key range on KeyCols[0]
	Targets []int // dpCore targets receiving the range round-robin
}

// Validate checks the spec against the hardware limits.
func (s PartitionSpec) Validate(numCols int) error {
	if s.Fanout < 1 || s.Fanout > MaxFanout {
		return fmt.Errorf("dms: fan-out %d out of hardware range [1,%d]", s.Fanout, MaxFanout)
	}
	switch s.Strategy {
	case Radix:
		if len(s.KeyCols) != 1 {
			return fmt.Errorf("dms: radix partitioning takes exactly 1 key column")
		}
		if s.Fanout&(s.Fanout-1) != 0 {
			return fmt.Errorf("dms: radix fan-out %d must be a power of two", s.Fanout)
		}
	case Hash:
		if len(s.KeyCols) < 1 || len(s.KeyCols) > 4 {
			return fmt.Errorf("dms: hash partitioning takes 1..4 key columns, got %d", len(s.KeyCols))
		}
		if s.Fanout&(s.Fanout-1) != 0 {
			return fmt.Errorf("dms: hash fan-out %d must be a power of two", s.Fanout)
		}
	case Range:
		if len(s.KeyCols) != 1 {
			return fmt.Errorf("dms: range partitioning takes exactly 1 key column")
		}
		if len(s.Bounds) != s.Fanout-1 {
			return fmt.Errorf("dms: range partitioning needs %d bounds, got %d", s.Fanout-1, len(s.Bounds))
		}
		if !sort.SliceIsSorted(s.Bounds, func(i, j int) bool { return s.Bounds[i] < s.Bounds[j] }) {
			return fmt.Errorf("dms: range bounds must be sorted")
		}
	case RoundRobin:
		for _, r := range s.SkewRanges {
			if len(r.Targets) == 0 {
				return fmt.Errorf("dms: skew range with no targets")
			}
			for _, t := range r.Targets {
				if t < 0 || t >= s.Fanout {
					return fmt.Errorf("dms: skew target %d out of fan-out %d", t, s.Fanout)
				}
			}
		}
	default:
		return fmt.Errorf("dms: unknown strategy %d", s.Strategy)
	}
	for _, k := range s.KeyCols {
		if k < 0 || k >= numCols {
			return fmt.Errorf("dms: key column %d out of range (have %d columns)", k, numCols)
		}
	}
	return nil
}

// Partitions is the output of hardware partitioning: per-partition column
// sets, conceptually placed directly into the target dpCores' DMEMs.
type Partitions struct {
	Cols [][]coltypes.Data // Cols[p][c]
	Rows []int             // rows per partition
}

// NumPartitions returns the partition count.
func (p *Partitions) NumPartitions() int { return len(p.Rows) }

// PartitionIDs computes the target partition of every row (the CID vector
// the hardware stages in CID memory) without moving data.
func (e *Engine) PartitionIDs(cols []coltypes.Data, spec PartitionSpec) ([]uint8, Timing, error) {
	if err := spec.Validate(len(cols)); err != nil {
		return nil, Timing{}, err
	}
	if len(cols) == 0 {
		return nil, Timing{}, nil
	}
	n := cols[0].Len()
	ids := make([]uint8, n)
	switch spec.Strategy {
	case Radix:
		key := cols[spec.KeyCols[0]]
		mask := int64(spec.Fanout - 1)
		for i := 0; i < n; i++ {
			ids[i] = uint8(key.Get(i) & mask)
		}
	case Hash:
		mask := uint32(spec.Fanout - 1)
		hv := e.hashRows(cols, spec.KeyCols)
		for i, h := range hv {
			ids[i] = uint8(h & mask)
		}
	case Range:
		key := cols[spec.KeyCols[0]]
		for i := 0; i < n; i++ {
			ids[i] = uint8(rangeBucket(spec.Bounds, key.Get(i)))
		}
	case RoundRobin:
		rrCounters := make([]int, len(spec.SkewRanges))
		var keyCol coltypes.Data
		if len(spec.KeyCols) > 0 {
			keyCol = cols[spec.KeyCols[0]]
		}
		next := 0
		for i := 0; i < n; i++ {
			assigned := false
			if keyCol != nil {
				v := keyCol.Get(i)
				for ri, r := range spec.SkewRanges {
					if v >= r.Lo && v <= r.Hi {
						ids[i] = uint8(r.Targets[rrCounters[ri]%len(r.Targets)])
						rrCounters[ri]++
						assigned = true
						break
					}
				}
			}
			if !assigned {
				ids[i] = uint8(next % spec.Fanout)
				next++
			}
		}
	}
	t := e.model.partitionTime(n, len(cols), widthOf(cols), spec.Strategy, len(spec.KeyCols))
	e.account(t)
	return ids, t, nil
}

// HWPartition partitions all columns by the spec, producing per-partition
// column data. The DMS performs the whole operation in isolation from the
// dpCores: no core cycles are charged.
func (e *Engine) HWPartition(cols []coltypes.Data, spec PartitionSpec) (*Partitions, Timing, error) {
	ids, t, err := e.PartitionIDs(cols, spec)
	if err != nil {
		return nil, Timing{}, err
	}
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	counts := make([]int, spec.Fanout)
	for _, id := range ids {
		counts[id]++
	}
	// Per-partition RID lists via prefix offsets.
	offsets := make([]int, spec.Fanout)
	sum := 0
	for p, c := range counts {
		offsets[p] = sum
		sum += c
	}
	rids := make([]uint32, n)
	fill := append([]int(nil), offsets...)
	for i, id := range ids {
		rids[fill[id]] = uint32(i)
		fill[id]++
	}
	out := &Partitions{
		Cols: make([][]coltypes.Data, spec.Fanout),
		Rows: counts,
	}
	for p := 0; p < spec.Fanout; p++ {
		out.Cols[p] = make([]coltypes.Data, len(cols))
		sel := rids[offsets[p] : offsets[p]+counts[p]]
		for c, col := range cols {
			dst := col.NewSame(len(sel))
			coltypes.Gather(dst, col, sel)
			out.Cols[p][c] = dst
		}
	}
	return out, t, nil
}

// HashVector computes the CRC32 hash of the key columns for every row — the
// "vector of CRC32 hash values computed in hardware" that feeds the software
// partitioning pipeline of Listing 2.
func (e *Engine) HashVector(cols []coltypes.Data, keyCols []int) ([]uint32, Timing) {
	hv := e.hashRows(cols, keyCols)
	n := len(hv)
	var w coltypes.Width = coltypes.W4
	if len(cols) > 0 {
		w = widthOf(cols)
	}
	t := e.model.partitionTime(n, len(keyCols), w, Hash, len(keyCols))
	e.account(t)
	return hv, t
}

func (e *Engine) hashRows(cols []coltypes.Data, keyCols []int) []uint32 {
	if len(cols) == 0 {
		return nil
	}
	n := cols[0].Len()
	hv := make([]uint32, n)
	for i := 0; i < n; i++ {
		acc := hashcrc.Seed
		for _, k := range keyCols {
			acc = hashcrc.Hash64(acc, uint64(cols[k].Get(i)))
		}
		hv[i] = hashcrc.Finalize(acc)
	}
	return hv
}

// rangeBucket returns the index of the first bound greater than v, i.e. the
// partition whose half-open range contains v; v beyond the last bound lands
// in the final partition.
func rangeBucket(bounds []int64, v int64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// widthOf returns the dominant (first) column width for the timing model.
func widthOf(cols []coltypes.Data) coltypes.Width {
	if len(cols) == 0 {
		return coltypes.W4
	}
	return cols[0].Width()
}

// RadixBitsFor returns the number of radix bits for a fan-out (log2).
func RadixBitsFor(fanout int) int {
	if fanout <= 1 {
		return 0
	}
	return mathbits.Len(uint(fanout - 1))
}
