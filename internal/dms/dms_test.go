package dms

import (
	"math/rand"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/mem"
)

func newEngine() (*Engine, *mem.DRAM) {
	dram := mem.NewDRAM()
	return NewEngine(DefaultModel(), dram), dram
}

func mkCols(n, cols int, gen func(row, col int) int64) []coltypes.Data {
	out := make([]coltypes.Data, cols)
	for c := range out {
		d := coltypes.New(coltypes.W4, n)
		for i := 0; i < n; i++ {
			d.Set(i, gen(i, c))
		}
		out[c] = d
	}
	return out
}

func TestReadMovesData(t *testing.T) {
	e, dram := newEngine()
	src := mkCols(100, 3, func(r, c int) int64 { return int64(r*10 + c) })
	dst := []coltypes.Data{
		coltypes.New(coltypes.W4, 20),
		coltypes.New(coltypes.W4, 20),
		coltypes.New(coltypes.W4, 20),
	}
	tm := e.Read(src, 40, 60, dst)
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			if got := dst[c].Get(i); got != int64((40+i)*10+c) {
				t.Fatalf("col %d row %d = %d", c, i, got)
			}
		}
	}
	if tm.Bytes != 3*20*4 {
		t.Fatalf("Bytes = %d", tm.Bytes)
	}
	if tm.Descriptors != 3 {
		t.Fatalf("Descriptors = %d", tm.Descriptors)
	}
	if dram.Traffic() != tm.Bytes {
		t.Fatalf("DRAM traffic %d != %d", dram.Traffic(), tm.Bytes)
	}
	if e.Totals().Bytes != tm.Bytes {
		t.Fatal("totals not accumulated")
	}
}

func TestWriteMovesData(t *testing.T) {
	e, _ := newEngine()
	dst := mkCols(50, 2, func(r, c int) int64 { return 0 })
	src := mkCols(10, 2, func(r, c int) int64 { return int64(100 + r + c) })
	tm := e.Write(dst, 5, src, 10)
	for c := 0; c < 2; c++ {
		for i := 0; i < 10; i++ {
			if dst[c].Get(5+i) != int64(100+i+c) {
				t.Fatalf("write landed wrong at col %d row %d", c, i)
			}
		}
	}
	if dst[0].Get(4) != 0 || dst[0].Get(15) != 0 {
		t.Fatal("write out of bounds")
	}
	// Write pays bus turnaround on top of read-shaped chunk cost.
	rd := e.Model().readTime(10, 2, coltypes.W4)
	if tm.Seconds <= rd.Seconds {
		t.Fatal("write should cost more than read of same size")
	}
}

func TestGatherScatter(t *testing.T) {
	e, _ := newEngine()
	src := coltypes.FromInt64s(coltypes.W8, []int64{0, 10, 20, 30, 40, 50})
	dst := coltypes.New(coltypes.W8, 3)
	tm := e.GatherRead(src, []uint32{5, 1, 3}, dst)
	if dst.Get(0) != 50 || dst.Get(1) != 10 || dst.Get(2) != 30 {
		t.Fatalf("gather wrong: %v", coltypes.ToInt64s(dst))
	}
	if tm.Bytes != 24 {
		t.Fatalf("gather Bytes = %d", tm.Bytes)
	}
	back := coltypes.New(coltypes.W8, 6)
	e.ScatterWrite(back, []uint32{5, 1, 3}, dst)
	if back.Get(5) != 50 || back.Get(1) != 10 || back.Get(3) != 30 || back.Get(0) != 0 {
		t.Fatalf("scatter wrong: %v", coltypes.ToInt64s(back))
	}
}

func TestBitVectorGatherRead(t *testing.T) {
	e, _ := newEngine()
	src := coltypes.FromInt64s(coltypes.W4, []int64{100, 101, 102, 103, 104, 105, 106, 107})
	words := []uint64{0b10100101} // rows 0,2,5,7
	dst := coltypes.New(coltypes.W4, 8)
	n, _ := e.BitVectorGatherRead(src, words, 8, dst)
	if n != 4 {
		t.Fatalf("gathered %d rows", n)
	}
	want := []int64{100, 102, 105, 107}
	for i, w := range want {
		if dst.Get(i) != w {
			t.Fatalf("row %d = %d, want %d", i, dst.Get(i), w)
		}
	}
}

func TestFig9ShapeBandwidth(t *testing.T) {
	// The calibration targets of Fig 9: 128-row tiles of 4x4-byte columns
	// read at >= 9 GiB/s; 64-row tiles are slower; more columns decay
	// slightly.
	m := DefaultModel()
	const gib = 1 << 30
	bw := func(rows, cols int) float64 {
		tm := m.readTime(rows, cols, coltypes.W4)
		return float64(tm.Bytes) / tm.Seconds / gib
	}
	if b := bw(128, 4); b < 9.0 {
		t.Fatalf("128-row 4-col read = %.2f GiB/s, want >= 9", b)
	}
	if bw(64, 4) >= bw(128, 4) {
		t.Fatal("64-row tiles should be slower than 128")
	}
	if bw(128, 32) >= bw(128, 2) {
		t.Fatal("32 columns should be slower than 2")
	}
	// Decay must be slight (paper: "a slight performance decrease").
	if bw(128, 32) < 0.8*bw(128, 2) {
		t.Fatalf("column decay too steep: %.2f vs %.2f", bw(128, 32), bw(128, 2))
	}
}

func TestFig8ShapePartitionBandwidth(t *testing.T) {
	// 32-way HW partitioning of 4x4-byte columns lands around 9.3 GiB/s
	// for every strategy.
	e, _ := newEngine()
	const n = 1 << 20
	cols := mkCols(n, 4, func(r, c int) int64 { return int64(r) })
	const gib = 1 << 30
	specs := []PartitionSpec{
		{Strategy: Radix, Fanout: 32, KeyCols: []int{0}},
		{Strategy: Hash, Fanout: 32, KeyCols: []int{0}},
		{Strategy: Hash, Fanout: 32, KeyCols: []int{0, 1}},
		{Strategy: Hash, Fanout: 32, KeyCols: []int{0, 1, 2, 3}},
		{Strategy: Range, Fanout: 32, KeyCols: []int{0}, Bounds: uniformBounds(32, n)},
	}
	for _, spec := range specs {
		_, tm, err := e.PartitionIDs(cols, spec)
		if err != nil {
			t.Fatalf("%v: %v", spec.Strategy, err)
		}
		bw := float64(tm.Bytes) / tm.Seconds / gib
		if bw < 8.8 || bw > 10.0 {
			t.Fatalf("%v %d keys: %.2f GiB/s, want ~9.3", spec.Strategy, len(spec.KeyCols), bw)
		}
	}
}

func uniformBounds(fanout int, card int) []int64 {
	b := make([]int64, fanout-1)
	for i := range b {
		b[i] = int64((i + 1) * card / fanout)
	}
	return b
}

func TestRadixPartitioning(t *testing.T) {
	e, _ := newEngine()
	cols := mkCols(1000, 2, func(r, c int) int64 { return int64(r) })
	parts, _, err := e.HWPartition(cols, PartitionSpec{Strategy: Radix, Fanout: 8, KeyCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 8; p++ {
		total += parts.Rows[p]
		for i := 0; i < parts.Rows[p]; i++ {
			key := parts.Cols[p][0].Get(i)
			if key&7 != int64(p) {
				t.Fatalf("row with key %d in partition %d", key, p)
			}
			// Row integrity: second column must travel with the first.
			if parts.Cols[p][1].Get(i) != key {
				t.Fatal("row torn across columns")
			}
		}
	}
	if total != 1000 {
		t.Fatalf("rows lost: %d", total)
	}
}

func TestHashPartitioningCompleteAndDeterministic(t *testing.T) {
	e, _ := newEngine()
	rng := rand.New(rand.NewSource(3))
	cols := mkCols(5000, 1, func(r, c int) int64 { return int64(rng.Intn(100000)) })
	ids1, _, err := e.PartitionIDs(cols, PartitionSpec{Strategy: Hash, Fanout: 16, KeyCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, _ := e.PartitionIDs(cols, PartitionSpec{Strategy: Hash, Fanout: 16, KeyCols: []int{0}})
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatal("hash partitioning not deterministic")
		}
		if ids1[i] >= 16 {
			t.Fatalf("partition id %d out of fan-out", ids1[i])
		}
	}
	// Same key -> same partition.
	seen := map[int64]uint8{}
	for i := range ids1 {
		k := cols[0].Get(i)
		if p, ok := seen[k]; ok && p != ids1[i] {
			t.Fatalf("key %d in two partitions", k)
		}
		seen[k] = ids1[i]
	}
}

func TestHashPartitioningBalance(t *testing.T) {
	e, _ := newEngine()
	const n = 32000
	cols := mkCols(n, 1, func(r, c int) int64 { return int64(r) })
	parts, _, err := e.HWPartition(cols, PartitionSpec{Strategy: Hash, Fanout: 32, KeyCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	want := n / 32
	for p, rows := range parts.Rows {
		if rows < want*7/10 || rows > want*13/10 {
			t.Fatalf("partition %d has %d rows, want ~%d", p, rows, want)
		}
	}
}

func TestRangePartitioning(t *testing.T) {
	e, _ := newEngine()
	cols := mkCols(100, 1, func(r, c int) int64 { return int64(r) })
	spec := PartitionSpec{Strategy: Range, Fanout: 4, KeyCols: []int{0}, Bounds: []int64{25, 50, 75}}
	parts, _, err := e.HWPartition(cols, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int{25, 25, 25, 25}
	for p := range wantRows {
		if parts.Rows[p] != wantRows[p] {
			t.Fatalf("range partition %d has %d rows, want %d", p, parts.Rows[p], wantRows[p])
		}
	}
	// Boundary value: key 25 goes to partition 1 (bounds are exclusive
	// upper limits).
	ids, _, _ := e.PartitionIDs(cols, spec)
	if ids[25] != 1 || ids[24] != 0 || ids[99] != 3 {
		t.Fatalf("boundary routing wrong: ids[24..25]=%d,%d ids[99]=%d", ids[24], ids[25], ids[99])
	}
}

func TestRoundRobinSkewReplication(t *testing.T) {
	e, _ := newEngine()
	// Key 7 is a heavy hitter: replicate it over targets 0..3.
	n := 1000
	cols := mkCols(n, 1, func(r, c int) int64 {
		if r%2 == 0 {
			return 7
		}
		return int64(r + 1000) // disjoint from the heavy-hitter key
	})
	spec := PartitionSpec{
		Strategy: RoundRobin,
		Fanout:   8,
		KeyCols:  []int{0},
		SkewRanges: []SkewRange{
			{Lo: 7, Hi: 7, Targets: []int{0, 1, 2, 3}},
		},
	}
	ids, _, err := e.PartitionIDs(cols, spec)
	if err != nil {
		t.Fatal(err)
	}
	heavyCounts := make([]int, 8)
	for i, id := range ids {
		if cols[0].Get(i) == 7 {
			if id > 3 {
				t.Fatalf("heavy hitter routed to %d", id)
			}
			heavyCounts[id]++
		}
	}
	// 500 heavy rows spread evenly across 4 targets.
	for p := 0; p < 4; p++ {
		if heavyCounts[p] != 125 {
			t.Fatalf("heavy rows at target %d = %d, want 125", p, heavyCounts[p])
		}
	}
}

func TestHashVectorMatchesKernelHash(t *testing.T) {
	e, _ := newEngine()
	cols := mkCols(256, 2, func(r, c int) int64 { return int64(r * (c + 1)) })
	hv, tm := e.HashVector(cols, []int{0, 1})
	if len(hv) != 256 {
		t.Fatalf("len = %d", len(hv))
	}
	if tm.Seconds <= 0 {
		t.Fatal("hash vector must take time")
	}
	hv2, _ := e.HashVector(cols, []int{0, 1})
	for i := range hv {
		if hv[i] != hv2[i] {
			t.Fatal("hash vector not deterministic")
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []PartitionSpec{
		{Strategy: Radix, Fanout: 0, KeyCols: []int{0}},
		{Strategy: Radix, Fanout: 64, KeyCols: []int{0}},                           // beyond hardware
		{Strategy: Radix, Fanout: 12, KeyCols: []int{0}},                           // not power of 2
		{Strategy: Radix, Fanout: 8, KeyCols: []int{0, 1}},                         // too many keys
		{Strategy: Hash, Fanout: 8, KeyCols: nil},                                  // no keys
		{Strategy: Hash, Fanout: 8, KeyCols: []int{0, 1, 2, 3, 0}},                 // >4 keys
		{Strategy: Hash, Fanout: 8, KeyCols: []int{5}},                             // col out of range
		{Strategy: Range, Fanout: 4, KeyCols: []int{0}, Bounds: []int64{1}},        // wrong bound count
		{Strategy: Range, Fanout: 3, KeyCols: []int{0}, Bounds: []int64{5, 1}},     // unsorted
		{Strategy: RoundRobin, Fanout: 4, SkewRanges: []SkewRange{{Targets: nil}}}, // empty targets
		{Strategy: RoundRobin, Fanout: 4, SkewRanges: []SkewRange{{Targets: []int{9}}}},
		{Strategy: Strategy(99), Fanout: 4},
	}
	for i, s := range bad {
		if err := s.Validate(2); err == nil {
			t.Errorf("case %d (%v) should fail validation", i, s.Strategy)
		}
	}
}

func TestRadixBitsFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 32: 5, 1024: 10}
	for f, want := range cases {
		if got := RadixBitsFor(f); got != want {
			t.Errorf("RadixBitsFor(%d) = %d, want %d", f, got, want)
		}
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{Radix: "radix", Hash: "hash", Range: "range", RoundRobin: "round-robin"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
