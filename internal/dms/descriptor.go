package dms

import (
	"fmt"

	"rapid/internal/coltypes"
)

// Descriptor-programmed transfers (paper §2.3, §5.1): "we program the DMS
// using descriptors — a descriptor represents the data transfer with
// parameters like amount of data, source and destination memory locations.
// Typically, multiple descriptors are chained one after another to form a
// loop of DMS transfers. Loops allow reusing a set of descriptors for
// multiple iterations and overlap memory transfers with the ongoing
// computation."

// Direction of a descriptor.
type Direction int

const (
	DirRead  Direction = iota // DRAM -> DMEM
	DirWrite                  // DMEM -> DRAM
)

// Descriptor is one chained transfer: Rows elements of Col move to/from the
// DMEM buffer Buf per loop iteration, advancing by Rows through the column.
type Descriptor struct {
	Dir  Direction
	Col  coltypes.Data // DRAM column
	Buf  coltypes.Data // DMEM buffer (>= Rows elements)
	Rows int
}

// Validate checks descriptor consistency.
func (d *Descriptor) Validate() error {
	if d.Rows <= 0 {
		return fmt.Errorf("dms: descriptor rows must be positive")
	}
	if d.Col == nil || d.Buf == nil {
		return fmt.Errorf("dms: descriptor needs column and buffer")
	}
	if d.Buf.Len() < d.Rows {
		return fmt.Errorf("dms: buffer of %d elements below %d rows", d.Buf.Len(), d.Rows)
	}
	if d.Col.Width() != d.Buf.Width() {
		return fmt.Errorf("dms: width mismatch between column and buffer")
	}
	return nil
}

// Loop is a reusable chain of descriptors.
type Loop struct {
	eng   *Engine
	descs []*Descriptor
	pos   int
}

// NewLoop chains descriptors into a loop.
func (e *Engine) NewLoop(descs ...*Descriptor) (*Loop, error) {
	for i, d := range descs {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("descriptor %d: %w", i, err)
		}
	}
	return &Loop{eng: e, descs: descs}, nil
}

// Reset rewinds the loop to the first row.
func (l *Loop) Reset() { l.pos = 0 }

// Remaining returns the rows left in the shortest column.
func (l *Loop) Remaining() int {
	min := -1
	for _, d := range l.descs {
		left := d.Col.Len() - l.pos
		if min < 0 || left < min {
			min = left
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Iterate executes one loop iteration: all read descriptors fire (filling
// DMEM buffers), body computes over the buffers, then all write descriptors
// flush. Returns the rows processed (0 at end of data) and the transfer
// timing of the iteration. On hardware the next iteration's reads overlap
// the body via double buffering; the caller accounts that overlap
// (qef.TaskCtx does it with max(compute, transfer)).
func (l *Loop) Iterate(body func(rows int) error) (int, Timing, error) {
	n := l.Remaining()
	if n <= 0 {
		return 0, Timing{}, nil
	}
	var total Timing
	rows := n
	for _, d := range l.descs {
		if d.Rows < rows {
			rows = d.Rows
		}
	}
	for _, d := range l.descs {
		if d.Dir != DirRead {
			continue
		}
		tm := l.eng.Read([]coltypes.Data{d.Col}, l.pos, l.pos+rows, []coltypes.Data{d.Buf.Slice(0, rows)})
		total.Add(tm)
	}
	if body != nil {
		if err := body(rows); err != nil {
			return 0, total, err
		}
	}
	for _, d := range l.descs {
		if d.Dir != DirWrite {
			continue
		}
		tm := l.eng.Write([]coltypes.Data{d.Col}, l.pos, []coltypes.Data{d.Buf.Slice(0, rows)}, rows)
		total.Add(tm)
	}
	l.pos += rows
	return rows, total, nil
}

// Run drives the loop to completion, returning total rows and timing.
func (l *Loop) Run(body func(rows int) error) (int, Timing, error) {
	totalRows := 0
	var total Timing
	for {
		rows, tm, err := l.Iterate(body)
		total.Add(tm)
		if err != nil {
			return totalRows, total, err
		}
		if rows == 0 {
			return totalRows, total, nil
		}
		totalRows += rows
	}
}
