// Package dms models the RAPID Data Movement System (paper §2.3): the
// on-chip programmable DMA engine that moves data between DRAM and the
// dpCores' DMEM scratchpads, and that partitions rows on the fly
// (hash-radix, range, round-robin) without involving the dpCores.
//
// The engine is functional — descriptors really move and partition column
// data — and timing comes from a calibrated analytical model (this file).
// The calibration targets are the paper's own measurements: ~9.3 GiB/s for
// 32-way hardware partitioning of 4x4-byte columns (Fig 8) and >= 9 GiB/s
// (~75 % of DDR3 peak) for double-buffered reads at 128-row tiles (Fig 9),
// decaying slightly with column count and dropping at 64-row tiles.
package dms

import "rapid/internal/coltypes"

// Model holds the DMS timing parameters. The defaults are calibrated against
// the paper's Figures 8 and 9; see the constant comments for the targets.
type Model struct {
	// PeakBytesPerSec is the DDR3 channel peak (12 GiB/s ~ DDR3-1600).
	PeakBytesPerSec float64
	// DescriptorIssueNs is the per-descriptor issue cost inside a loop of
	// chained descriptors (setup proper is amortized by descriptor reuse).
	DescriptorIssueNs float64
	// PageSwitchBaseNs and PageSwitchPerColNs model the DRAM row-buffer
	// locality loss when the DMS interleaves fetches of many column
	// streams: switching to column stream c costs Base + PerCol*cols.
	PageSwitchBaseNs   float64
	PageSwitchPerColNs float64
	// WriteTurnaroundNs is the DDR bus turnaround cost charged once per
	// write burst in mixed read/write loops.
	WriteTurnaroundNs float64
	// Partition-engine row rates (rows/s): the CMEM -> CRC -> CID pipeline
	// is the bottleneck stage of hardware partitioning; rates differ
	// slightly by strategy, as in Fig 8.
	RadixRowsPerSec      float64
	HashRowsPerSecBase   float64 // 1 key
	HashRowsPerSecPerKey float64 // rate decrease per extra key
	RangeRowsPerSec      float64
	RoundRobinRowsPerSec float64
}

// DefaultModel returns the calibrated DMS model.
func DefaultModel() Model {
	return Model{
		PeakBytesPerSec:      12.9e9, // ~12 GiB/s
		DescriptorIssueNs:    3.0,
		PageSwitchBaseNs:     4.0,
		PageSwitchPerColNs:   0.20,
		WriteTurnaroundNs:    6.0,
		RadixRowsPerSec:      655e6,
		HashRowsPerSecBase:   645e6,
		HashRowsPerSecPerKey: 6e6,
		RangeRowsPerSec:      622e6,
		RoundRobinRowsPerSec: 660e6,
	}
}

// Timing reports the cost of a DMS operation.
type Timing struct {
	Seconds     float64
	Bytes       int64 // bytes moved over the DDR interface
	Descriptors int   // descriptors executed
	// Write marks the operation as a DRAM write (the execution framework
	// models read and write bus contention separately).
	Write bool
}

// Add accumulates another timing into t.
func (t *Timing) Add(o Timing) {
	t.Seconds += o.Seconds
	t.Bytes += o.Bytes
	t.Descriptors += o.Descriptors
}

// BytesPerSec returns the effective bandwidth of the operation.
func (t Timing) BytesPerSec() float64 {
	if t.Seconds == 0 {
		return 0
	}
	return float64(t.Bytes) / t.Seconds
}

// chunkTime returns the DDR-side time of transferring one column chunk of
// the given size when `cols` column streams are interleaved.
func (m Model) chunkTime(bytes int, cols int) float64 {
	pageSwitch := m.PageSwitchBaseNs + m.PageSwitchPerColNs*float64(cols)
	return (m.DescriptorIssueNs+pageSwitch)*1e-9 + float64(bytes)/m.PeakBytesPerSec
}

// readTime models a loop iteration reading `cols` column chunks of
// rows*width bytes each.
func (m Model) readTime(rows, cols int, width coltypes.Width) Timing {
	bytes := rows * width.Bytes()
	return Timing{
		Seconds:     float64(cols) * m.chunkTime(bytes, cols),
		Bytes:       int64(cols * bytes),
		Descriptors: cols,
	}
}

// writeTime models a loop iteration writing column chunks back to DRAM.
func (m Model) writeTime(rows, cols int, width coltypes.Width) Timing {
	t := m.readTime(rows, cols, width)
	t.Seconds += m.WriteTurnaroundNs * 1e-9
	return t
}

// partitionEngineRate returns the row rate of the CMEM/CRC/CID pipeline for
// a strategy.
func (m Model) partitionEngineRate(s Strategy, keys int) float64 {
	switch s {
	case Radix:
		return m.RadixRowsPerSec
	case Hash:
		r := m.HashRowsPerSecBase - m.HashRowsPerSecPerKey*float64(keys-1)
		if r < 1 {
			r = 1
		}
		return r
	case Range:
		return m.RangeRowsPerSec
	case RoundRobin:
		return m.RoundRobinRowsPerSec
	default:
		panic("dms: unknown strategy")
	}
}

// partitionTime models hardware partitioning of `rows` rows of `cols`
// columns: the DDR read stream and the partition-engine pipeline overlap, so
// the elapsed time is the slower of the two. Writes land in dpCore DMEMs
// (SRAM), not DRAM, so only the read side is billed to the DDR bus.
func (m Model) partitionTime(rows, cols int, width coltypes.Width, s Strategy, keys int) Timing {
	read := m.readTime(rows, cols, width)
	engine := float64(rows) / m.partitionEngineRate(s, keys)
	sec := read.Seconds
	if engine > sec {
		sec = engine
	}
	return Timing{Seconds: sec, Bytes: read.Bytes, Descriptors: read.Descriptors}
}
