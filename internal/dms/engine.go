package dms

import (
	"fmt"
	mathbits "math/bits"
	"sync"

	"rapid/internal/coltypes"
	"rapid/internal/mem"
)

// Engine is the DMS: it executes data-movement operations between the DRAM
// arena and DMEM-resident buffers, accounting both the functional effect
// (data really moves) and the modeled time. It is shared by all dpCores and
// safe for concurrent use; per-operation Timing values are returned to the
// caller so tasks can overlap transfer time with compute time, while the
// engine also keeps global totals for reporting.
type Engine struct {
	model Model
	dram  *mem.DRAM

	mu          sync.Mutex
	totalsRead  Timing
	totalsWrite Timing
}

// NewEngine creates a DMS over the given DRAM arena.
func NewEngine(model Model, dram *mem.DRAM) *Engine {
	return &Engine{model: model, dram: dram}
}

// Model returns the engine's timing model.
func (e *Engine) Model() Model { return e.model }

// Totals returns the cumulative timing over all operations (both
// directions merged).
func (e *Engine) Totals() Timing {
	rd, wr := e.TotalsByDir()
	rd.Add(wr)
	return rd
}

// TotalsByDir returns the cumulative timing split by transfer direction:
// DRAM→DMEM reads and DMEM→DRAM writes. The split is what the profiling
// invariants reconcile per-operator byte attributions against.
func (e *Engine) TotalsByDir() (read, write Timing) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totalsRead, e.totalsWrite
}

// ResetTotals zeroes the cumulative counters.
func (e *Engine) ResetTotals() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.totalsRead = Timing{}
	e.totalsWrite = Timing{}
}

func (e *Engine) account(t Timing) {
	if e.dram != nil {
		e.dram.AddTraffic(int(t.Bytes))
	}
	e.mu.Lock()
	if t.Write {
		e.totalsWrite.Add(t)
	} else {
		e.totalsRead.Add(t)
	}
	e.mu.Unlock()
}

// Read transfers rows [lo, hi) of each source column (DRAM) into the
// corresponding destination buffer (DMEM). Destination buffers must be at
// least hi-lo long; widths must match. This is the sequential access
// pattern of the relation accessor.
func (e *Engine) Read(src []coltypes.Data, lo, hi int, dst []coltypes.Data) Timing {
	rows := hi - lo
	if rows < 0 {
		panic("dms: negative row range")
	}
	if len(src) != len(dst) {
		panic("dms: column count mismatch")
	}
	var t Timing
	for i, s := range src {
		if s.Width() != dst[i].Width() {
			panic(fmt.Sprintf("dms: width mismatch on column %d", i))
		}
		coltypes.CopyRange(dst[i], 0, s, lo, hi)
		bytes := rows * s.Width().Bytes()
		t.Seconds += e.model.chunkTime(bytes, len(src))
		t.Bytes += int64(bytes)
		t.Descriptors++
	}
	e.account(t)
	return t
}

// Write transfers `rows` rows from DMEM buffers back to DRAM columns at
// offset `at`.
func (e *Engine) Write(dst []coltypes.Data, at int, src []coltypes.Data, rows int) Timing {
	if len(src) != len(dst) {
		panic("dms: column count mismatch")
	}
	var t Timing
	for i, s := range src {
		coltypes.CopyRange(dst[i], at, s, 0, rows)
		bytes := rows * s.Width().Bytes()
		t.Seconds += e.model.chunkTime(bytes, len(src))
		t.Bytes += int64(bytes)
		t.Descriptors++
	}
	t.Seconds += e.model.WriteTurnaroundNs * 1e-9
	t.Write = true
	e.account(t)
	return t
}

// WriteTiming bills a DMEM→DRAM columnar write of `rows` rows across ncols
// columns of widthBytes-wide elements without moving any data. The timing
// formula is identical to Write's, so callers whose functional effect
// happens elsewhere (e.g. the collect sink's host-side result append) can
// account the materialization without building throwaway destination
// buffers.
func (e *Engine) WriteTiming(ncols, rows, widthBytes int) Timing {
	var t Timing
	for i := 0; i < ncols; i++ {
		bytes := rows * widthBytes
		t.Seconds += e.model.chunkTime(bytes, ncols)
		t.Bytes += int64(bytes)
		t.Descriptors++
	}
	t.Seconds += e.model.WriteTurnaroundNs * 1e-9
	t.Write = true
	e.account(t)
	return t
}

// StreamWrite bills a contiguous DMEM->DRAM buffer flush: one chained
// descriptor, a single page open, the bus turnaround and the byte time.
// Used by the software partitioning operator's local-buffer flushes, where
// each flush is one contiguous region per partition.
func (e *Engine) StreamWrite(bytes int) Timing {
	t := Timing{
		Seconds: (e.model.DescriptorIssueNs+e.model.PageSwitchBaseNs+e.model.WriteTurnaroundNs)*1e-9 +
			float64(bytes)/e.model.PeakBytesPerSec,
		Bytes:       int64(bytes),
		Descriptors: 1,
		Write:       true,
	}
	e.account(t)
	return t
}

// GatherRate is the DMS random-gather element rate (elements/s): the gather
// engine issues one DRAM access per element and pipelines them.
const GatherRate = 800e6

// GatherRead transfers src[rids[i]] (DRAM) into dst[i] (DMEM) for each RID.
// This is the gather pattern used by the filter operator for non-first
// predicates (paper §5.4): only qualifying rows are moved.
func (e *Engine) GatherRead(src coltypes.Data, rids []uint32, dst coltypes.Data) Timing {
	coltypes.Gather(dst, src, rids)
	bytes := len(rids) * src.Width().Bytes()
	sec := float64(bytes) / e.model.PeakBytesPerSec
	if pipe := float64(len(rids)) / GatherRate; pipe > sec {
		sec = pipe
	}
	t := Timing{
		Seconds:     sec + e.model.DescriptorIssueNs*1e-9,
		Bytes:       int64(bytes),
		Descriptors: 1,
	}
	e.account(t)
	return t
}

// ScatterWrite transfers src[i] (DMEM) into dst[rids[i]] (DRAM).
func (e *Engine) ScatterWrite(dst coltypes.Data, rids []uint32, src coltypes.Data) Timing {
	coltypes.Scatter(dst, src, rids)
	bytes := len(rids) * src.Width().Bytes()
	sec := float64(bytes) / e.model.PeakBytesPerSec
	if pipe := float64(len(rids)) / GatherRate; pipe > sec {
		sec = pipe
	}
	t := Timing{
		Seconds:     sec + (e.model.DescriptorIssueNs+e.model.WriteTurnaroundNs)*1e-9,
		Bytes:       int64(bytes),
		Descriptors: 1,
		Write:       true,
	}
	e.account(t)
	return t
}

// BitVectorGatherRead is the bit-vector driven variant of GatherRead used by
// filter chains: the DMS walks the bit-vector and fetches only set rows.
// Returns the gathered row count.
func (e *Engine) BitVectorGatherRead(src coltypes.Data, words []uint64, nbits int, dst coltypes.Data) (int, Timing) {
	n := 0
	for wi, w := range words {
		base := wi * 64
		for w != 0 {
			tz := mathbits.TrailingZeros64(w)
			i := base + tz
			if i >= nbits {
				break
			}
			dst.Set(n, src.Get(i))
			n++
			w &= w - 1
		}
	}
	bytes := n * src.Width().Bytes()
	// The bit-vector itself is also streamed from DMEM (free) but the
	// gathered elements hit DRAM.
	sec := float64(bytes) / e.model.PeakBytesPerSec
	if pipe := float64(n) / GatherRate; pipe > sec {
		sec = pipe
	}
	t := Timing{Seconds: sec + e.model.DescriptorIssueNs*1e-9, Bytes: int64(bytes), Descriptors: 1}
	e.account(t)
	return n, t
}
