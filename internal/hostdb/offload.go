package hostdb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"rapid/internal/coltypes"
	"rapid/internal/obs"
	"rapid/internal/ops"
	"rapid/internal/plan"
	"rapid/internal/power"
	"rapid/internal/qcache"
	"rapid/internal/qcomp"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/sqlparse"
	"rapid/internal/storage"
)

// ExecMode selects how a query is executed.
type ExecMode int

const (
	// CostBased lets the optimizer decide (the paper's default, §3.1).
	CostBased ExecMode = iota
	// ForceHost runs on the System X row engine only.
	ForceHost
	// ForceOffload requires RAPID execution (fails if inadmissible).
	ForceOffload
)

// QueryOptions tunes execution.
type QueryOptions struct {
	Mode ExecMode
	// RapidMode selects the RAPID engine configuration (DPU simulation or
	// native x86 software execution).
	RapidMode qef.Mode
	// FailOnInadmissible makes inadmissible offloads fail instead of
	// falling back (paper: "the RAPID operator can either fail or
	// fallback").
	FailOnInadmissible bool
	// InjectRapidFailure simulates a RAPID node failure mid-query to
	// exercise the fallback path.
	InjectRapidFailure bool
	// Profile enables per-operator profiling of the RAPID execution; the
	// finished profile is returned in QueryResult.Profile. Also set by the
	// EXPLAIN ANALYZE prefix.
	Profile bool
	// DisablePruning turns off zone-map scan pruning for this query. Results
	// must be identical either way (the metamorphic test lanes assert it);
	// the switch exists for those lanes and for isolating pruning effects.
	DisablePruning bool
	// NoCache bypasses the query cache for this query (when one is
	// installed): no lookup, no singleflight, no admission of the result.
	NoCache bool
}

// QueryResult is the outcome of one query.
type QueryResult struct {
	Rel *ops.Relation

	Offloaded bool
	FellBack  bool
	// Timing breakdown (Fig 15): wall time inside RAPID execution vs the
	// host side (parse, optimize, result post-processing or full host
	// execution).
	RapidWall time.Duration
	HostWall  time.Duration
	// RapidSimSeconds is the DPU-simulated execution time (ModeDPU only).
	RapidSimSeconds float64
	// X86ModelSeconds is the same work modeled on a dual-socket x86 (the
	// hardware-attribution denominator of §7.4; ModeDPU only).
	X86ModelSeconds float64
	// Cost estimates behind the offload decision.
	EstRapidSec float64
	EstHostSec  float64
	Explain     string
	// Profile is the per-operator profile of the RAPID execution; non-nil
	// only when profiling was requested and the query ran on RAPID.
	Profile *obs.Profile
	// ProfileNote explains an absent profile when one was requested (the
	// query stayed on the host), so EXPLAIN ANALYZE never returns silence.
	ProfileNote string
	// Energy is the activity-based energy breakdown of the RAPID execution
	// (ModeDPU offloads only; zero otherwise — check HasEnergy).
	Energy    power.Breakdown
	HasEnergy bool
	// QueueWait is the time the query spent in the shared-SoC scheduler's
	// admission queue before RAPID execution began (zero for host-engine
	// queries and immediate admissions).
	QueueWait time.Duration
	// QueryID is the fleet-wide query identifier assigned at issue, the key
	// into the query journal and the active-query table.
	QueryID uint64
	// Cycles is the total dpCore cycle count of the RAPID execution (ModeDPU
	// offloads; zero otherwise).
	Cycles int64
	// EnergyNJ is the total (activity + idle) energy of the RAPID execution
	// in nanojoules — the same integer fed to the rapid_*_energy counters.
	EnergyNJ int64
	// DMEMHighWater is the largest per-core scratchpad reservation the query
	// reached, bytes (ModeDPU offloads; zero otherwise).
	DMEMHighWater int
	// TilesPruned is the number of storage chunks zone-map pruning skipped
	// during the RAPID execution (zero on the host path or with pruning
	// disabled).
	TilesPruned int64
	// Cache reports this query's result-cache interaction: "hit" (served
	// without execution, ~zero marginal cycles/energy), "miss", "stale"
	// (an entry existed but its version vector moved), "bypass" (cache
	// installed but ineligible: NoCache, failure injection, unlexable
	// statement), or "" when no cache is installed.
	Cache string
	// CyclesSaved/EnergySavedNJ carry the billed cost of the execution that
	// produced a cached result — the estimate of what this hit avoided.
	// Zero on anything but a hit.
	CyclesSaved   int64
	EnergySavedNJ int64
}

// RapidFraction returns the share of elapsed wall time spent in RAPID.
func (r *QueryResult) RapidFraction() float64 {
	total := r.RapidWall + r.HostWall
	if total == 0 {
		return 0
	}
	return float64(r.RapidWall) / float64(total)
}

// catalogAdapter exposes loaded RAPID replicas to the binder.
type catalogAdapter struct{ db *Database }

func (c catalogAdapter) Lookup(name string) (*storage.Table, error) {
	t, err := c.db.Table(name)
	if err != nil {
		return nil, err
	}
	rt := t.Rapid()
	if rt == nil {
		return nil, fmt.Errorf("hostdb: table %q not loaded into RAPID (run LOAD first)", name)
	}
	return rt, nil
}

// stripExplainAnalyze detects the EXPLAIN ANALYZE prefix (two words,
// case-insensitive; bare EXPLAIN is handled by the callers' plan output)
// and returns the inner query.
func stripExplainAnalyze(sql string) (string, bool) {
	rest := strings.TrimSpace(sql)
	fields := strings.Fields(rest)
	if len(fields) >= 2 && strings.EqualFold(fields[0], "EXPLAIN") && strings.EqualFold(fields[1], "ANALYZE") {
		idx := strings.Index(strings.ToUpper(rest), "ANALYZE") + len("ANALYZE")
		return strings.TrimSpace(rest[idx:]), true
	}
	return sql, false
}

// Query parses, plans and executes a SQL query, deciding offload cost-based
// per §3.1 and enforcing the SCN admissibility rule of §3.3. An
// `EXPLAIN ANALYZE <query>` prefix executes the inner query with
// per-operator profiling and returns the profile in the result. Engine-wide
// query counters land in the database's metrics registry.
func (db *Database) Query(sql string, opts QueryOptions) (*QueryResult, error) {
	return db.QueryCtx(context.Background(), sql, opts)
}

// QueryCtx is Query observing a context: cancellation and deadlines are
// checked while the query waits for admission, at work-unit dispatch and at
// every tile boundary, so a canceled query stops within one tile and returns
// ctx.Err(). Cancellation and scheduler overload (sched.ErrOverloaded) are
// returned directly — they never fall back to the host engine, since the
// caller asked the whole query to stop (or be shed), not just the offload.
func (db *Database) QueryCtx(ctx context.Context, sql string, opts QueryOptions) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if inner, ok := stripExplainAnalyze(sql); ok {
		sql = inner
		opts.Profile = true
	}
	// Issue: allocate the fleet-wide QueryID, register in the active-query
	// table (making the query cancelable by ID) and run under a derived
	// context so CancelQuery can reach it.
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	id := db.active.NextID()
	h := db.active.Register(id, sql, requestedMode(opts), 1, cancel)
	defer h.Done()

	// Literal normalization feeds both the cache keys and the journal
	// fingerprint: repeated parameterized queries group under one template
	// regardless of whitespace, case or literal values. Statements the
	// lexer rejects keep the raw-SQL fingerprint and bypass the cache.
	norm, normOK := normalizeForCache(sql)
	fp := obs.Fingerprint(sql)
	if normOK {
		fp = norm.TemplateFP
	}

	start := time.Now()
	res, err := db.query(qctx, sql, norm, normOK, opts, h)
	wall := time.Since(start)
	m := db.metrics
	m.Histogram("hostdb_query_seconds").Observe(wall.Seconds())
	m.Counter("hostdb_queries_total").Inc()
	switch {
	case err != nil:
		m.Counter("hostdb_queries_failed").Inc()
	case res.Offloaded:
		m.Counter("hostdb_queries_offloaded").Inc()
		if res.FellBack {
			// Not reachable today (FellBack implies !Offloaded), kept so the
			// counters stay truthful if the retry semantics ever change.
			m.Counter("hostdb_queries_fellback").Inc()
		}
	default:
		if res.FellBack {
			m.Counter("hostdb_queries_fellback").Inc()
		}
		m.Counter("hostdb_queries_host").Inc()
	}

	// Completion: one journal record per issued query, terminal outcome
	// included, whether it succeeded, shed, canceled or failed.
	rec := obs.QueryRecord{
		ID: id, Fingerprint: fp, SQL: sql,
		Mode: "host", Nodes: 1,
		Outcome: outcomeFor(err),
		WallNs:  int64(wall),
		Start:   start.UnixNano(),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if res != nil {
		if res.Offloaded {
			rec.Mode = opts.RapidMode.String()
		}
		if res.Rel != nil {
			rec.Rows = int64(res.Rel.Rows())
		}
		rec.Cycles = res.Cycles
		rec.EnergyNJ = res.EnergyNJ
		rec.QueueWaitNs = int64(res.QueueWait)
		rec.DMEMHighNow = int64(res.DMEMHighWater)
		rec.Cache = res.Cache
		res.QueryID = id
	}
	db.qjournal.Record(rec)
	return res, err
}

// requestedMode labels the engine the options ask for, before execution
// resolves it ("auto" = cost-based decision pending).
func requestedMode(opts QueryOptions) string {
	switch opts.Mode {
	case ForceHost:
		return "host"
	case ForceOffload:
		return opts.RapidMode.String()
	default:
		return "auto"
	}
}

// outcomeFor classifies a query's terminal state for the journal.
func outcomeFor(err error) obs.QueryOutcome {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, sched.ErrOverloaded):
		return obs.OutcomeShed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeCanceled
	default:
		return obs.OutcomeError
	}
}

// noFallback reports whether a RAPID execution error must be returned as the
// query's outcome instead of triggering host fallback: the query was
// canceled / timed out, shed by admission control, or the database closed.
func noFallback(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, sched.ErrOverloaded) ||
		errors.Is(err, sched.ErrClosed)
}

// query orchestrates the cache tiers around queryExec (DESIGN.md §10):
// result-cache lookup (hits return immediately, bypassing scheduler
// admission), singleflight collapse of concurrent identical misses, the
// actual execution, and validate-before-publish admission of the finished
// result. With no cache installed it degenerates to a plain queryExec.
func (db *Database) query(ctx context.Context, sql string, norm sqlparse.Normalized, normOK bool, opts QueryOptions, h obs.ActiveHandle) (*QueryResult, error) {
	cache := db.QueryCache()
	cacheable := cache != nil && normOK && !opts.NoCache && !opts.InjectRapidFailure
	if !cacheable {
		if cache != nil {
			cache.NoteBypass()
		}
		res, _, err := db.queryExec(ctx, sql, norm, false, opts, h)
		if err == nil && cache != nil {
			res.Cache = "bypass"
			annotateCacheStatus(res, opts, "bypass")
		}
		return res, err
	}

	key := qcache.Key{Template: norm.TemplateFP, Params: norm.ParamsFP, Mode: cacheModeKey(opts), Nodes: 1}
	status := "miss"
	var flight *qcache.Flight
	for {
		if r, st := cache.GetResult(key, db.cacheVersion); st == qcache.Hit {
			return cachedHitResult(r, opts, "hit"), nil
		} else if st == qcache.Stale {
			status = "stale"
		}
		f, leader := cache.Begin(key)
		if leader {
			flight = f
			break
		}
		// Another client is executing this exact key: wait for its result
		// instead of re-executing (thundering-herd collapse). ok=false
		// means the leader failed or produced an unshareable result — loop
		// back and compete for leadership.
		if r, ok := f.Wait(ctx); ok {
			return cachedHitResult(r, opts, "hit"), nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	// Leader path: always settle the flight, success or not, so followers
	// never block past this execution.
	var entry *qcache.Result
	defer func() { flight.Finish(entry) }()

	execStart := time.Now()
	res, v0, err := db.queryExec(ctx, sql, norm, true, opts, h)
	if err != nil {
		return nil, err
	}
	res.Cache = status
	annotateCacheStatus(res, opts, status)
	// Publish only when the version vector captured before parse/bind
	// still holds after execution — an interleaved mutation voids the
	// entry (it may mix old and new data). Fallback results are never
	// published: they are transitional (pending journal) and would leak
	// host-fallback answers into strict-offload keys after checkpointing.
	if !res.FellBack && v0 != nil {
		if cur, ok := db.cacheVersions(versionNames(v0)); ok && versionsEqual(v0, cur) {
			e := buildCacheEntry(res, v0, int64(time.Since(execStart)))
			entry = e // share with flight followers even if admission rejects
			cache.PutResult(key, e)
		}
	}
	return res, nil
}

// queryExec parses (or serves from the plan cache), binds, decides offload
// and executes one query. When usePlanCache is set it also captures the
// pre-bind version vector v0, later used for validate-before-publish.
func (db *Database) queryExec(ctx context.Context, sql string, norm sqlparse.Normalized, usePlanCache bool, opts QueryOptions, h obs.ActiveHandle) (*QueryResult, []qcache.Version, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	h.SetPhase("planning")
	hostStart := time.Now()
	cache := db.QueryCache()
	querySCN := db.CurrentSCN()
	var node plan.Node
	var v0 []qcache.Version
	planKey := qcache.PlanKey{Template: norm.TemplateFP, Params: norm.ParamsFP, Scope: planScopeHost}
	if usePlanCache && cache != nil {
		if pe := cache.GetPlan(planKey, db.cacheVersion); pe != nil {
			if cloned, cerr := plan.CloneAtSCN(pe.Root, querySCN); cerr == nil {
				// Parse and bind skipped: the cached skeleton is re-stamped
				// to this query's SCN. Costing, admissibility and zone
				// pruning still run against the fresh snapshot below.
				node = cloned
				v0 = pe.Versions
			}
		}
	}
	if node == nil {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, nil, err
		}
		if usePlanCache && cache != nil {
			v0, _ = db.cacheVersions(sqlparse.StmtTables(stmt))
		}
		node, err = sqlparse.Bind(stmt, catalogAdapter{db}, querySCN)
		if err != nil {
			return nil, nil, err
		}
		if usePlanCache && cache != nil && v0 != nil {
			// Same validate-before-publish discipline as results: literals
			// were encoded against the dictionaries as of v0, so the
			// skeleton is only sound if nothing moved during binding.
			if cur, ok := db.cacheVersions(versionNames(v0)); ok && versionsEqual(v0, cur) {
				cache.PutPlan(planKey, &qcache.Plan{Root: node, Versions: v0})
			} else {
				v0 = nil
			}
		}
	}
	res := &QueryResult{Explain: plan.Format(node)}
	res.EstRapidSec, res.EstHostSec = qcomp.OffloadBenefit(node)

	offload := false
	switch opts.Mode {
	case ForceHost:
		if opts.Profile {
			res.ProfileNote = "no DPU profile: query forced to host engine (profiling covers RAPID executions only)"
		}
	case ForceOffload:
		offload = true
	default:
		offload = res.EstRapidSec < res.EstHostSec
		if !offload && opts.Profile {
			res.ProfileNote = fmt.Sprintf("no DPU profile: cost model kept query on host (est rapid %.3gs >= host %.3gs)", res.EstRapidSec, res.EstHostSec)
		}
	}

	if offload {
		// Admissibility (§3.3): every journal entry visible to the query
		// must already be propagated to RAPID. The background checkpointer
		// normally keeps this true.
		admissible := db.admissible(node)
		if !admissible && opts.FailOnInadmissible {
			return nil, nil, fmt.Errorf("hostdb: query at SCN %d not admissible to RAPID", querySCN)
		}
		if admissible {
			run, rerr := db.runRapid(ctx, node, opts, h)
			res.QueueWait = run.queueWait
			if rerr == nil {
				res.Rel = run.rel
				res.Offloaded = true
				res.RapidWall = run.wall
				res.RapidSimSeconds = run.simSec
				res.X86ModelSeconds = run.x86Sec
				res.Profile = run.prof
				res.Energy = run.energy
				res.HasEnergy = run.hasEnergy
				res.Cycles = run.cycles
				res.EnergyNJ = run.energyNJ
				res.DMEMHighWater = run.dmemHigh
				res.TilesPruned = run.tilesPruned
				res.HostWall = time.Since(hostStart) - run.wall
				return res, v0, nil
			}
			if noFallback(rerr) {
				return nil, nil, rerr
			}
			// RAPID execution failed: fall back to the host plan (§3.2).
			res.FellBack = true
			if opts.Profile {
				res.ProfileNote = fmt.Sprintf("no DPU profile: RAPID execution failed (%v), query fell back to host", rerr)
			}
		} else {
			res.FellBack = true
			if opts.Profile {
				res.ProfileNote = "no DPU profile: query not admissible to RAPID (pending journal), fell back to host"
			}
		}
	}

	h.SetPhase("host-execute")
	rel, err := db.runHost(ctx, node)
	if err != nil {
		return nil, nil, err
	}
	res.Rel = rel
	res.HostWall = time.Since(hostStart) - res.RapidWall
	return res, v0, nil
}

// versionNames extracts the table-name footprint of a version vector.
func versionNames(vs []qcache.Version) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// annotateCacheStatus surfaces the cache interaction in EXPLAIN ANALYZE
// output: profiled RAPID executions get a `cache:` line in the profile,
// host-side runs get it appended to the profile note.
func annotateCacheStatus(res *QueryResult, opts QueryOptions, status string) {
	if !opts.Profile || status == "" {
		return
	}
	if res.Profile != nil {
		res.Profile.SetCacheNote(status)
		return
	}
	if res.ProfileNote != "" {
		res.ProfileNote += "; cache: " + status
	} else {
		res.ProfileNote = "cache: " + status
	}
}

// admissible checks the SCN rule for every table the plan touches.
func (db *Database) admissible(node plan.Node) bool {
	ok := true
	walkScans(node, func(s *plan.Scan) {
		if t, err := db.Table(s.Table.Name()); err == nil {
			if t.PendingJournal() > 0 {
				ok = false
			}
		}
	})
	return ok
}

func walkScans(n plan.Node, fn func(*plan.Scan)) {
	if s, ok := n.(*plan.Scan); ok {
		fn(s)
		return
	}
	for _, c := range n.Children() {
		walkScans(c, fn)
	}
}

// rapidRun is the outcome of one RAPID execution.
type rapidRun struct {
	rel         *ops.Relation
	wall        time.Duration
	queueWait   time.Duration
	simSec      float64
	x86Sec      float64
	prof        *obs.Profile
	energy      power.Breakdown
	hasEnergy   bool
	cycles      int64
	energyNJ    int64 // activity + idle nanojoules, as fed to the counters
	dmemHigh    int   // max per-core DMEM high-water, bytes
	tilesPruned int64 // chunks skipped by zone-map pruning
}

// runRapid is the RAPID operator (§3.1): it serializes the fragment plan to
// the RAPID node (here: compiles it), triggers execution, and receives the
// result relation "over the network". Execution goes through the shared-SoC
// scheduler: the query is admitted (possibly waiting, bounded by the run
// queue), its work units are multiplexed over the shared worker pool, and
// its admission slot is released when execution ends — success, failure or
// cancellation alike. Every DPU execution feeds the engine-wide telemetry
// counters and the activity energy model, whether or not per-operator
// profiling was requested.
func (db *Database) runRapid(goCtx context.Context, node plan.Node, opts QueryOptions, h obs.ActiveHandle) (rapidRun, error) {
	if opts.InjectRapidFailure {
		return rapidRun{}, fmt.Errorf("hostdb: injected RAPID node failure")
	}
	compiled, err := qcomp.Compile(node)
	if err != nil {
		return rapidRun{}, err
	}
	ctx := qef.NewContext(opts.RapidMode)
	ctx.Metrics = db.metrics
	ctx.NoPrune = opts.DisablePruning
	h.SetPhase("queued")
	adm, err := db.sched.Admit(goCtx, sched.Request{Cores: ctx.Workers(), QueryID: h.ID()})
	if err != nil {
		return rapidRun{}, err
	}
	defer adm.Release()
	h.SetPhase("executing")
	ctx.SetGoContext(goCtx)
	ctx.Exec = adm
	var prof *obs.Profile
	if opts.Profile {
		prof = obs.NewProfile(opts.RapidMode.String(), ctx.SoC.Config().NumCores, ctx.SoC.Config().FreqHz, compiled.SpanDefs())
		ctx.Prof = prof
	}
	start := time.Now()
	rel, err := compiled.Execute(ctx)
	wall := time.Since(start)
	if err != nil {
		return rapidRun{wall: wall, queueWait: adm.QueueWait()}, err
	}
	run := rapidRun{rel: rel, wall: wall, queueWait: adm.QueueWait(), simSec: ctx.SimElapsed(), prof: prof, tilesPruned: ctx.TilesPruned()}
	rdT, wrT := ctx.DMS.TotalsByDir()
	if prof != nil {
		busR, busW := ctx.BusSeconds()
		cores := ctx.SoC.Cores()
		coreCy := make([]int64, len(cores))
		for i, co := range cores {
			coreCy[i] = int64(co.Cycles())
		}
		prof.Finalize(obs.Totals{
			WallSeconds:      wall.Seconds(),
			QueueWaitSeconds: run.queueWait.Seconds(),
			SimSeconds:       run.simSec,
			BusReadSeconds:   busR,
			BusWriteSeconds:  busW,
			CoreCycles:       coreCy,
			DMSReadBytes:     rdT.Bytes,
			DMSWriteBytes:    wrT.Bytes,
			DMSReadSeconds:   rdT.Seconds,
			DMSWriteSeconds:  wrT.Seconds,
		})
	}
	totalCycles := int64(ctx.SoC.TotalCycles())
	run.cycles = totalCycles
	run.x86Sec = power.X86ModelSeconds(float64(totalCycles), ctx.DMS.Totals().Bytes)
	if opts.RapidMode == qef.ModeDPU {
		run.energy = power.DefaultEnergyModel().Activity(totalCycles, rdT.Bytes, wrT.Bytes, run.simSec)
		run.hasEnergy = true
		// The per-query histograms observe the exact integers added to the
		// counters, so histogram sums reconcile with counter totals exactly
		// (both stay below 2^53, where float64 addition is lossless).
		actNJ := int64(run.energy.ActivityJoules() * 1e9)
		idleNJ := int64(run.energy.IdleJ * 1e9)
		run.energyNJ = actNJ + idleNJ
		for _, co := range ctx.SoC.Cores() {
			if hw := co.DMEM().HighWater(); hw > run.dmemHigh {
				run.dmemHigh = hw
			}
		}
		m := db.metrics
		m.Counter("rapid_dpcore_cycles_total").Add(totalCycles)
		m.Counter("rapid_dms_read_bytes_total").Add(rdT.Bytes)
		m.Counter("rapid_dms_write_bytes_total").Add(wrT.Bytes)
		m.Counter("rapid_dms_descriptors_total").Add(int64(rdT.Descriptors + wrT.Descriptors))
		m.Counter("rapid_sim_microseconds_total").Add(int64(run.simSec * 1e6))
		m.Counter("rapid_activity_energy_nanojoules_total").Add(actNJ)
		m.Counter("rapid_idle_energy_nanojoules_total").Add(idleNJ)
		m.Histogram("rapid_query_cycles", obs.DefCycleBuckets...).Observe(float64(totalCycles))
		m.Histogram("rapid_query_energy_nanojoules", obs.DefEnergyNJBuckets...).Observe(float64(run.energyNJ))
	}
	return run, nil
}

// runHost executes the plan on the System X row engine and materializes the
// rows as a relation using the plan's output schema.
func (db *Database) runHost(ctx context.Context, node plan.Node) (*ops.Relation, error) {
	it, err := db.BuildIterator(node)
	if err != nil {
		return nil, err
	}
	rows, err := DrainCtx(ctx, it)
	if err != nil {
		return nil, err
	}
	fields := node.Schema()
	cols := make([]ops.Col, len(fields))
	data := make([][]int64, len(fields))
	for _, r := range rows {
		for c := range fields {
			data[c] = append(data[c], r[c])
		}
	}
	for c, f := range fields {
		col := data[c]
		if col == nil {
			col = []int64{}
		}
		cols[c] = ops.Col{Name: f.Name, Type: f.Type, Dict: f.Dict, Data: coltypes.I64(col)}
	}
	return ops.NewRelation(cols)
}

// StartBackgroundCheckpointer launches the periodic journal propagation
// threads of §3.3. Stop with StopBackgroundCheckpointer.
func (db *Database) StartBackgroundCheckpointer(interval time.Duration) {
	db.mu.Lock()
	if db.stopCheckpointer != nil {
		db.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	db.stopCheckpointer = stop
	db.mu.Unlock()
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				_ = db.CheckpointAll()
			}
		}
	}()
}

// StopBackgroundCheckpointer stops the background threads.
func (db *Database) StopBackgroundCheckpointer() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stopCheckpointer != nil {
		close(db.stopCheckpointer)
		db.stopCheckpointer = nil
	}
}
