package hostdb_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/tpch"
)

// The fleet-observability battery: the query journal, the active-query
// table, cancel-by-ID, the telemetry endpoint and the histogram/counter
// reconciliation contracts, all exercised on a shared database (CI runs
// this package under -race).

// TestJournalStormReconciles is the acceptance-criterion storm: 64 clients
// with mixed outcomes (ok / shed / canceled) against a tiny scheduler. Every
// issued query must land exactly one journal record, the cumulative outcome
// counters must sum to the total and reconcile with the scheduler's own
// admission counters, and nothing may remain in the active-query table.
func TestJournalStormReconciles(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 2, MaxQueued: 2})
	q := tpch.Queries()[0]
	opts := hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}

	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()

	const clients = 64
	var wg sync.WaitGroup
	var wantCanceled int64
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		ctx := context.Background()
		if g%4 == 3 {
			ctx = canceledCtx
			wantCanceled++
		}
		wg.Add(1)
		go func(g int, ctx context.Context) {
			defer wg.Done()
			_, errs[g] = db.QueryCtx(ctx, q.SQL, opts)
		}(g, ctx)
	}
	wg.Wait()

	var ok, shed, canceled int64
	for g, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, sched.ErrOverloaded):
			shed++
		case errors.Is(err, context.Canceled):
			canceled++
		default:
			t.Fatalf("client %d: unexpected error %v", g, err)
		}
	}
	if ok == 0 {
		t.Fatal("storm produced no successful queries")
	}
	if canceled < wantCanceled {
		t.Fatalf("canceled = %d, want >= %d (pre-canceled clients)", canceled, wantCanceled)
	}

	j := db.QueryJournal()
	if j.Total() != clients {
		t.Fatalf("journal Total = %d, want %d (one record per issued query)", j.Total(), clients)
	}
	if got := j.OutcomeCount(obs.OutcomeOK); got != ok {
		t.Errorf("journal ok = %d, clients saw %d", got, ok)
	}
	if got := j.OutcomeCount(obs.OutcomeShed); got != shed {
		t.Errorf("journal shed = %d, clients saw %d", got, shed)
	}
	if got := j.OutcomeCount(obs.OutcomeCanceled); got != canceled {
		t.Errorf("journal canceled = %d, clients saw %d", got, canceled)
	}
	var sum int64
	for _, o := range []obs.QueryOutcome{obs.OutcomeOK, obs.OutcomeShed, obs.OutcomeCanceled, obs.OutcomeError} {
		sum += j.OutcomeCount(o)
	}
	if sum != j.Total() {
		t.Errorf("outcome counters sum to %d, Total is %d", sum, j.Total())
	}
	if j.Len() > j.Cap() {
		t.Errorf("journal Len %d exceeds ring capacity %d", j.Len(), j.Cap())
	}

	// Reconciliation with the engine counters: one hostdb_queries_total tick
	// and one latency observation per journal record, and the journal's shed
	// count equals the scheduler's fast-fail counter.
	vals := db.Metrics().Values()
	if got := vals["hostdb_queries_total"]; got != j.Total() {
		t.Errorf("hostdb_queries_total = %d, journal Total = %d", got, j.Total())
	}
	if got := int64(db.Metrics().Histogram("hostdb_query_seconds").Count()); got != j.Total() {
		t.Errorf("hostdb_query_seconds count = %d, journal Total = %d", got, j.Total())
	}
	if got := vals["sched_rejected_total"]; got != shed {
		t.Errorf("sched_rejected_total = %d, journal shed = %d", got, shed)
	}
	if act := db.ActiveQueries(); len(act) != 0 {
		t.Errorf("active-query table holds %d entries after the storm: %+v", len(act), act)
	}
}

// TestCancelQueryByID kills a queued query through the active-query table:
// \ps shows it in phase "queued", CancelQuery unblocks it with
// context.Canceled, and the journal records the canceled outcome under the
// same fleet-wide ID.
func TestCancelQueryByID(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 1})
	q := tpch.Queries()[0]
	opts := hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}

	hold, err := db.Scheduler().Admit(context.Background(), sched.Request{})
	if err != nil {
		t.Fatalf("hold Admit: %v", err)
	}
	defer hold.Release()

	errc := make(chan error, 1)
	go func() {
		_, err := db.Query(q.SQL, opts)
		errc <- err
	}()

	// Wait for the query to surface as queued in the live table.
	var id uint64
	deadline := time.Now().Add(5 * time.Second)
	for id == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never appeared as queued in ActiveQueries")
		}
		for _, aq := range db.ActiveQueries() {
			if aq.Phase == "queued" {
				id = aq.ID
				if aq.SQL == "" || aq.Elapsed < 0 {
					t.Fatalf("malformed active entry: %+v", aq)
				}
			}
		}
		time.Sleep(time.Millisecond)
	}

	if !db.CancelQuery(id) {
		t.Fatalf("CancelQuery(%d) = false for a live query", id)
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query returned %v, want context.Canceled", err)
	}
	// Second cancel of a finished query must fail.
	if db.CancelQuery(id) {
		t.Errorf("CancelQuery(%d) succeeded after the query finished", id)
	}
	recs := db.QueryJournal().Records()
	last := recs[len(recs)-1]
	if last.ID != id || last.Outcome != obs.OutcomeCanceled {
		t.Fatalf("journal tail = id %d outcome %s, want id %d canceled", last.ID, last.Outcome, id)
	}
}

// TestTelemetryQueriesEndpoint scrapes /debug/queries and /metrics while
// pprof stays gated behind its flag.
func TestTelemetryQueriesEndpoint(t *testing.T) {
	db := concurrencyDB(t, sched.Config{})
	q := tpch.Queries()[0]
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := db.ServeTelemetryWith("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries = %d", code)
	}
	var snap obs.QueriesSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/queries is not JSON: %v\n%s", err, body)
	}
	j := db.QueryJournal()
	if snap.Journal.Total != j.Total() || snap.Journal.OK != j.OutcomeCount(obs.OutcomeOK) {
		t.Fatalf("snapshot journal %+v does not match journal total=%d ok=%d",
			snap.Journal, j.Total(), j.OutcomeCount(obs.OutcomeOK))
	}
	if len(snap.Recent) != j.Len() {
		t.Fatalf("snapshot recent = %d records, journal holds %d", len(snap.Recent), j.Len())
	}
	if snap.Active == nil {
		t.Fatal("active must marshal as [] even when idle")
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "hostdb_queries_total") {
		t.Fatalf("/metrics = %d, body %q...", code, body[:min(len(body), 80)])
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ = %d without the pprof flag, want 404", code)
	}

	psrv, err := db.ServeTelemetryWith("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	resp, err := http.Get("http://" + psrv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d with the pprof flag, want 200", resp.StatusCode)
	}
}

// TestQueryHistogramsReconcileWithCounters pins the exactness contract: the
// per-query distribution histograms observe the same integers that feed the
// engine-wide totals, so bucket sums reconcile with the counters exactly.
func TestQueryHistogramsReconcileWithCounters(t *testing.T) {
	db := concurrencyDB(t, sched.Config{})
	opts := hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU}
	var journalCycles, journalEnergy int64
	for _, q := range tpch.Queries()[:5] {
		res, err := db.Query(q.SQL, opts)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if !res.Offloaded {
			t.Fatalf("%s did not offload", q.Name)
		}
		journalCycles += res.Cycles
		journalEnergy += res.EnergyNJ
	}

	vals := db.Metrics().Values()
	cyc := db.Metrics().Histogram("rapid_query_cycles").View()
	if int64(cyc.Sum) != vals["rapid_dpcore_cycles_total"] {
		t.Errorf("rapid_query_cycles sum = %.0f, rapid_dpcore_cycles_total = %d",
			cyc.Sum, vals["rapid_dpcore_cycles_total"])
	}
	if int64(cyc.Sum) != journalCycles {
		t.Errorf("rapid_query_cycles sum = %.0f, per-result cycles sum to %d", cyc.Sum, journalCycles)
	}
	if cyc.Count != 5 {
		t.Errorf("rapid_query_cycles count = %d, want 5", cyc.Count)
	}
	en := db.Metrics().Histogram("rapid_query_energy_nanojoules").View()
	wantNJ := vals["rapid_activity_energy_nanojoules_total"] + vals["rapid_idle_energy_nanojoules_total"]
	if int64(en.Sum) != wantNJ {
		t.Errorf("energy histogram sum = %.0f nJ, counters total %d nJ", en.Sum, wantNJ)
	}
	if int64(en.Sum) != journalEnergy {
		t.Errorf("energy histogram sum = %.0f nJ, per-result EnergyNJ sums to %d", en.Sum, journalEnergy)
	}
	// The journal carries the same integers.
	var recCycles, recEnergy int64
	for _, rec := range db.QueryJournal().Records() {
		recCycles += rec.Cycles
		recEnergy += rec.EnergyNJ
	}
	if recCycles != journalCycles || recEnergy != journalEnergy {
		t.Errorf("journal sums cycles=%d energy=%d, results sum cycles=%d energy=%d",
			recCycles, recEnergy, journalCycles, journalEnergy)
	}
}

// min is a tiny local helper (no generics assumptions in older analyzers).
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = fmt.Sprintf
