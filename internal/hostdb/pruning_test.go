package hostdb

import (
	"strings"
	"testing"

	"rapid/internal/qef"
	"rapid/internal/storage"
)

// TestTilePruningOffload checks host-side zone-map pruning end to end: a
// range predicate on the clustered id column must skip every tile whose zone
// cannot match, bill nothing for the skipped tiles, surface the count in
// QueryResult.TilesPruned / rapid_tiles_pruned_total / the EXPLAIN ANALYZE
// profile — and never change the answer.
func TestTilePruningOffload(t *testing.T) {
	db := newTestDB(t, 4096) // ChunkRows 512 -> 8 tiles, id clustered 0..4095
	loadAll(t, db)
	sql := `SELECT id, grp FROM events WHERE id >= 3584`

	on, err := db.Query(sql, QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Rel.Rows() != 512 {
		t.Fatalf("rows = %d, want 512", on.Rel.Rows())
	}
	if on.TilesPruned != 7 {
		t.Fatalf("TilesPruned = %d, want 7 (tiles holding id < 3584)", on.TilesPruned)
	}
	if c := db.Metrics().Values()["rapid_tiles_pruned_total"]; c != 7 {
		t.Fatalf("rapid_tiles_pruned_total = %d, want 7", c)
	}
	if on.Profile == nil {
		t.Fatal("no profile")
	}
	if err := on.Profile.CheckInvariants(); err != nil {
		t.Fatalf("profile invariants with pruning: %v", err)
	}
	if txt := on.Profile.Format(); !strings.Contains(txt, "tiles_pruned 7/8") {
		t.Fatalf("EXPLAIN ANALYZE missing tiles_pruned line:\n%s", txt)
	}

	off, err := db.Query(sql, QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.TilesPruned != 0 {
		t.Fatalf("DisablePruning still pruned %d tiles", off.TilesPruned)
	}
	if off.Rel.Rows() != on.Rel.Rows() {
		t.Fatalf("pruning changed the answer: %d vs %d rows", on.Rel.Rows(), off.Rel.Rows())
	}
	// Skipped tiles are unbilled: the pruned run must cost strictly less.
	if on.Cycles >= off.Cycles {
		t.Fatalf("pruned run billed %d cycles, unpruned %d", on.Cycles, off.Cycles)
	}
}

// TestPruningAfterUpdatePastMax is the end-to-end regression for the stale
// TableStats bug: update a row's id past the old maximum, checkpoint, and
// the offloaded point query for the new value must still find it — before
// the fix, zone/statistics state frozen at load time claimed the value out
// of range.
func TestPruningAfterUpdatePastMax(t *testing.T) {
	db := newTestDB(t, 2048)
	loadAll(t, db)

	if _, err := db.Update("events", 100, 0, storage.IntValue(1_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("events"); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []QueryOptions{
		{Mode: ForceOffload, RapidMode: qef.ModeX86, Profile: true},
		{Mode: ForceOffload, RapidMode: qef.ModeX86, DisablePruning: true},
	} {
		res, err := db.Query(`SELECT id FROM events WHERE id >= 1000000`, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rel.Rows() != 1 || res.Rel.Cols[0].Data.Get(0) != 1_000_000 {
			t.Fatalf("disablePruning=%v: updated row lost (rows=%d)", opts.DisablePruning, res.Rel.Rows())
		}
	}

	// Cost-model side of the same bug: the refreshed statistics must admit
	// the new value so the estimator no longer claims zero selectivity.
	tbl, err := db.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	st := tbl.Rapid().Stats()
	if st == nil || st.Cols[0].Max < 1_000_000 {
		t.Fatalf("RAPID table stats stale after checkpoint: %+v", st)
	}
}
