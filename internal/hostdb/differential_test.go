package hostdb

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/plan"
	"rapid/internal/qcomp"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// Differential testing: the same randomly generated logical plans must
// produce identical results on the RAPID vectorized engine (both modes) and
// the System X row interpreter. This exercises expression scale alignment,
// predicate compilation, selection representations and the operators
// against an independent implementation.

type exprGen struct {
	rng    *rand.Rand
	fields []plan.Field
}

func (g *exprGen) expr(depth int) plan.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		// Leaf: column or constant.
		if g.rng.Intn(2) == 0 {
			// Numeric columns only (0..2).
			idx := g.rng.Intn(3)
			f := g.fields[idx]
			return &plan.ColRef{Idx: idx, Name: f.Name, T: f.Type}
		}
		if g.rng.Intn(2) == 0 {
			return &plan.Const{T: coltypes.Int(), Val: int64(g.rng.Intn(200) - 100)}
		}
		return &plan.Const{T: coltypes.Decimal(2), Val: int64(g.rng.Intn(20000) - 10000)}
	}
	ops := []plan.ArithOp{plan.Add, plan.Sub, plan.Mul}
	// Division is excluded: integer division does not commute with the
	// scale-alignment order and both engines define it independently.
	a, err := plan.NewArith(ops[g.rng.Intn(len(ops))], g.expr(depth-1), g.expr(depth-1))
	if err != nil {
		return &plan.Const{T: coltypes.Int(), Val: 1}
	}
	return a
}

func (g *exprGen) pred(depth int) plan.Pred {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		op := []plan.CmpOp{plan.EQ, plan.NE, plan.LT, plan.LE, plan.GT, plan.GE}[g.rng.Intn(6)]
		return &plan.Cmp{Op: op, L: g.expr(1), R: g.expr(1)}
	}
	switch g.rng.Intn(3) {
	case 0:
		return &plan.AndPred{Preds: []plan.Pred{g.pred(depth - 1), g.pred(depth - 1)}}
	case 1:
		return &plan.OrPred{Preds: []plan.Pred{g.pred(depth - 1), g.pred(depth - 1)}}
	default:
		return &plan.NotPred{P: g.pred(depth - 1)}
	}
}

func diffTable(t *testing.T, rng *rand.Rand, rows int) (*Database, *storage.Table) {
	t.Helper()
	db := New()
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "a", Type: coltypes.Int()},
		storage.ColumnDef{Name: "b", Type: coltypes.Int()},
		storage.ColumnDef{Name: "d", Type: coltypes.Decimal(2)},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	var batch [][]storage.Value
	for i := 0; i < rows; i++ {
		batch = append(batch, []storage.Value{
			storage.IntValue(int64(rng.Intn(200) - 100)),
			storage.IntValue(int64(rng.Intn(50))),
			storage.DecString(fmt.Sprintf("%d.%02d", rng.Intn(100)-50, rng.Intn(100))),
		})
	}
	if _, err := db.Insert("t", batch); err != nil {
		t.Fatal(err)
	}
	rt, err := db.Load("t", LoadOptions{ChunkRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	return db, rt
}

func TestDifferentialRandomPlans(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 977))
			db, rt := diffTable(t, rng, 500+rng.Intn(1500))
			scan := plan.NewScan(rt, storage.LatestSCN, nil)
			g := &exprGen{rng: rng, fields: scan.Schema()}

			// Filter + projection of random expressions, ordered by the
			// first input column for stable comparison.
			node := plan.Node(scan)
			node = &plan.Filter{Input: node, Pred: g.pred(2)}
			outExpr := g.expr(2)
			node = &plan.Project{
				Input: node,
				Exprs: []plan.Expr{
					&plan.ColRef{Idx: 0, Name: "a", T: scan.Schema()[0].Type},
					outExpr,
				},
				Names: []string{"a", "e"},
			}

			// Row interpreter.
			hostRel, err := db.runHost(context.Background(), node)
			if err != nil {
				t.Fatal(err)
			}
			// Vectorized engine, both modes.
			for _, mode := range []qef.Mode{qef.ModeX86, qef.ModeDPU} {
				compiled, err := qcomp.Compile(node)
				if err != nil {
					t.Fatalf("compile: %v\nexpr: %s", err, outExpr)
				}
				rel, err := compiled.Execute(qef.NewContext(mode))
				if err != nil {
					t.Fatal(err)
				}
				if rel.Rows() != hostRel.Rows() {
					t.Fatalf("%v: rows %d vs host %d\nplan:\n%s", mode, rel.Rows(), hostRel.Rows(), plan.Format(node))
				}
				// Compare as multisets of (a, e) pairs.
				count := map[[2]int64]int{}
				for i := 0; i < rel.Rows(); i++ {
					count[[2]int64{rel.Cols[0].Data.Get(i), rel.Cols[1].Data.Get(i)}]++
				}
				for i := 0; i < hostRel.Rows(); i++ {
					count[[2]int64{hostRel.Cols[0].Data.Get(i), hostRel.Cols[1].Data.Get(i)}]--
				}
				for k, c := range count {
					if c != 0 {
						t.Fatalf("%v: multiset mismatch at %v (%+d)\nexpr: %s\nplan:\n%s",
							mode, k, c, outExpr, plan.Format(node))
					}
				}
			}
		})
	}
}

// Differential aggregation: random group-by plans agree across engines.
func TestDifferentialRandomAggregates(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*31 + 7))
		db, rt := diffTable(t, rng, 800)
		scan := plan.NewScan(rt, storage.LatestSCN, nil)
		g := &exprGen{rng: rng, fields: scan.Schema()}
		kinds := []plan.AggKind{plan.Sum, plan.Min, plan.Max, plan.Count, plan.Avg}
		agg := plan.AggExpr{
			Kind: kinds[rng.Intn(len(kinds))],
			Arg:  g.expr(1),
			Name: "agg",
		}
		node := plan.Node(&plan.GroupBy{
			Input: scan,
			Keys:  []plan.Expr{&plan.ColRef{Idx: 1, Name: "b", T: coltypes.Int()}},
			Aggs:  []plan.AggExpr{agg},
		})
		hostRel, err := db.runHost(context.Background(), node)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := qcomp.Compile(node)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := compiled.Execute(qef.NewContext(qef.ModeX86))
		if err != nil {
			t.Fatal(err)
		}
		if rel.Rows() != hostRel.Rows() {
			t.Fatalf("trial %d: groups %d vs %d", trial, rel.Rows(), hostRel.Rows())
		}
		want := map[int64]int64{}
		for i := 0; i < hostRel.Rows(); i++ {
			want[hostRel.Cols[0].Data.Get(i)] = hostRel.Cols[1].Data.Get(i)
		}
		for i := 0; i < rel.Rows(); i++ {
			k := rel.Cols[0].Data.Get(i)
			if got := rel.Cols[1].Data.Get(i); got != want[k] {
				t.Fatalf("trial %d (%v): group %d: %d vs host %d", trial, agg.Kind, k, got, want[k])
			}
		}
	}
}
