package hostdb

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rapid/internal/coltypes"
	"rapid/internal/obs"
	"rapid/internal/qcache"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/storage"
)

func cacheTestDB(t testing.TB, rows int) *Database {
	t.Helper()
	db := newTestDB(t, rows)
	loadAll(t, db)
	db.EnableQueryCache(qcache.Config{})
	return db
}

const cacheSQL = "SELECT grp, SUM(amount) FROM events WHERE id < 900 GROUP BY grp"

func TestCacheHitServesIdenticalResultWithZeroBilling(t *testing.T) {
	db := cacheTestDB(t, 2000)
	defer db.Close()
	opts := QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU, FailOnInadmissible: true}

	cold, err := db.Query(cacheSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold run cache = %q, want miss", cold.Cache)
	}
	if cold.Cycles == 0 || cold.EnergyNJ == 0 {
		t.Fatalf("cold DPU run must bill cycles and energy: %d / %d", cold.Cycles, cold.EnergyNJ)
	}
	// Whitespace/case variant of the same query: must hit via normalization.
	hot, err := db.Query("select   GRP, sum(AMOUNT)\nfrom events where id < 900 group by grp", opts)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Cache != "hit" {
		t.Fatalf("hot run cache = %q, want hit", hot.Cache)
	}
	if hot.Cycles != 0 || hot.EnergyNJ != 0 || hot.RapidSimSeconds != 0 {
		t.Fatalf("hit must bill ~zero: cycles=%d energy=%d sim=%v", hot.Cycles, hot.EnergyNJ, hot.RapidSimSeconds)
	}
	if hot.CyclesSaved != cold.Cycles || hot.EnergySavedNJ != cold.EnergyNJ {
		t.Fatalf("saved accounting: got %d/%d want %d/%d", hot.CyclesSaved, hot.EnergySavedNJ, cold.Cycles, cold.EnergyNJ)
	}
	if hot.Rel != cold.Rel {
		t.Fatal("hit must share the cached relation")
	}
	if !hot.Offloaded {
		t.Fatal("hit must preserve the Offloaded flag of the producing run")
	}
	// Different literal: different parameter vector, distinct entry.
	other, err := db.Query("SELECT grp, SUM(amount) FROM events WHERE id < 500 GROUP BY grp", opts)
	if err != nil {
		t.Fatal(err)
	}
	if other.Cache != "miss" {
		t.Fatalf("different literal must miss, got %q", other.Cache)
	}
	s := db.QueryCache().Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPlanCacheServesTemplateAcrossLiterals(t *testing.T) {
	db := cacheTestDB(t, 1000)
	defer db.Close()
	opts := QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true}
	run := func(sql string) *QueryResult {
		t.Helper()
		r, err := db.Query(sql, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := run("SELECT COUNT(*) FROM events WHERE id < 100")
	b := run("SELECT COUNT(*) FROM events WHERE id < 200")
	if a.Cache != "miss" || b.Cache != "miss" {
		t.Fatalf("distinct literals must both miss the result cache: %q %q", a.Cache, b.Cache)
	}
	// Plan cache keys include the parameter vector (literals are bound into
	// the plan), so b re-binds; its template still normalizes identically.
	if a.Rel.Cols[0].Data.Get(0) != 100 || b.Rel.Cols[0].Data.Get(0) != 200 {
		t.Fatalf("wrong answers: %d / %d", a.Rel.Cols[0].Data.Get(0), b.Rel.Cols[0].Data.Get(0))
	}
	// Exact repeat of a: result hit.
	if r := run("SELECT COUNT(*) FROM events WHERE id < 100"); r.Cache != "hit" {
		t.Fatalf("repeat = %q, want hit", r.Cache)
	}
}

func TestCacheInvalidatedByDMLAndCheckpoint(t *testing.T) {
	db := cacheTestDB(t, 1000)
	defer db.Close()
	opts := QueryOptions{Mode: CostBased, RapidMode: qef.ModeX86}
	sql := "SELECT COUNT(*) FROM events"

	first, err := db.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" || first.Rel.Cols[0].Data.Get(0) != 1000 {
		t.Fatalf("cold: cache=%q rows=%d", first.Cache, first.Rel.Cols[0].Data.Get(0))
	}
	if r, _ := db.Query(sql, opts); r.Cache != "hit" {
		t.Fatalf("warm: %q", r.Cache)
	}
	// DML bumps the host mutation SCN: the entry must go stale, and the
	// post-DML read must see the new row immediately (inadmissible offload
	// falls back to the live host engine).
	if _, err := db.Insert("events", [][]storage.Value{{
		storage.IntValue(5000), storage.IntValue(1), storage.DecString("1.00"), storage.StrValue("red"),
	}}); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache != "stale" {
		t.Fatalf("post-DML cache = %q, want stale", after.Cache)
	}
	if got := after.Rel.Cols[0].Data.Get(0); got != 1001 {
		t.Fatalf("post-DML count = %d, want 1001", got)
	}
	if !after.FellBack {
		t.Fatal("expected host fallback while the journal is pending")
	}
	// Fallback results are never cached: the next run misses again (the
	// stale entry was evicted, nothing replaced it).
	again, _ := db.Query(sql, opts)
	if again.Cache != "miss" || again.Rel.Cols[0].Data.Get(0) != 1001 {
		t.Fatalf("fallback must not be cached: cache=%q", again.Cache)
	}
	// Checkpoint propagates the journal (replica epoch bumps); the query
	// offloads again and its result is cacheable.
	if err := db.Checkpoint("events"); err != nil {
		t.Fatal(err)
	}
	warm1, _ := db.Query(sql, opts)
	warm2, _ := db.Query(sql, opts)
	if warm1.Cache != "miss" || !warm1.Offloaded {
		t.Fatalf("post-checkpoint: cache=%q offloaded=%v", warm1.Cache, warm1.Offloaded)
	}
	if warm2.Cache != "hit" || warm2.Rel.Cols[0].Data.Get(0) != 1001 {
		t.Fatalf("post-checkpoint warm: cache=%q", warm2.Cache)
	}
}

func TestNoCacheBypassesAndCountsBypass(t *testing.T) {
	db := cacheTestDB(t, 500)
	defer db.Close()
	opts := QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true}
	if _, err := db.Query(cacheSQL, opts); err != nil {
		t.Fatal(err)
	}
	opts.NoCache = true
	r, err := db.Query(cacheSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache != "bypass" {
		t.Fatalf("NoCache run cache = %q, want bypass", r.Cache)
	}
	if s := db.QueryCache().Stats(); s.Bypasses != 1 {
		t.Fatalf("bypasses = %d", s.Bypasses)
	}
	// And the bypass run must not have refreshed or used the entry: a
	// normal run still hits the original.
	opts.NoCache = false
	if r, _ := db.Query(cacheSQL, opts); r.Cache != "hit" {
		t.Fatalf("want hit after bypass, got %q", r.Cache)
	}
}

func TestCacheHitBypassesSchedulerAdmission(t *testing.T) {
	// One admission slot, no queue: a second concurrent query would shed.
	// A cache hit must succeed even while the only slot is held.
	reg := obs.NewRegistry()
	db := NewWithConfig(reg, sched.Config{MaxConcurrent: 1, MaxQueued: 0})
	seedTestDB(t, db, 500)
	db.EnableQueryCache(qcache.Config{})
	defer db.Close()
	opts := QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true}
	if _, err := db.Query(cacheSQL, opts); err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot directly.
	adm, err := db.Scheduler().Admit(context.Background(), sched.Request{Cores: 1, QueryID: 999})
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Release()
	r, err := db.Query(cacheSQL, opts)
	if err != nil {
		t.Fatalf("cache hit must not need admission: %v", err)
	}
	if r.Cache != "hit" {
		t.Fatalf("cache = %q", r.Cache)
	}
}

// seedTestDB fills an existing database with the standard events table.
func seedTestDB(t testing.TB, db *Database, rows int) {
	t.Helper()
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "id", Type: coltypes.Int()},
		storage.ColumnDef{Name: "grp", Type: coltypes.Int()},
		storage.ColumnDef{Name: "amount", Type: coltypes.Decimal(2)},
		storage.ColumnDef{Name: "tag", Type: coltypes.String()},
	)
	if _, err := db.CreateTable("events", schema); err != nil {
		t.Fatal(err)
	}
	var batch [][]storage.Value
	tags := []string{"red", "green", "blue"}
	for i := 0; i < rows; i++ {
		batch = append(batch, []storage.Value{
			storage.IntValue(int64(i)),
			storage.IntValue(int64(i % 10)),
			storage.DecString("1.50"),
			storage.StrValue(tags[i%3]),
		})
	}
	if _, err := db.Insert("events", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load("events", LoadOptions{ChunkRows: 256}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleflightStormExecutesOncePerEpoch(t *testing.T) {
	db := cacheTestDB(t, 3000)
	defer db.Close()
	opts := QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true}
	// Warm up the scheduler's lazy worker pool (those goroutines live until
	// db.Close) so the leak check below only sees storm-created goroutines.
	if _, err := db.Query("SELECT COUNT(*) FROM events", QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()

	storm := func(wantRows int64) {
		t.Helper()
		var wg sync.WaitGroup
		var failures atomic.Int64
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r, err := db.Query("SELECT COUNT(*) FROM events WHERE grp < 7", opts)
				if err != nil || r.Rel.Cols[0].Data.Get(0) != wantRows {
					failures.Add(1)
				}
			}()
		}
		wg.Wait()
		if failures.Load() != 0 {
			t.Fatalf("%d clients failed or saw wrong counts", failures.Load())
		}
	}
	// Executions are counted via the journal: only a flight leader runs the
	// engine, and only its record reports cache miss/stale — every other
	// client ends as a store hit or a shared flight ("hit").
	executions := func() (execs, hits int) {
		for _, r := range db.QueryJournal().Records() {
			switch r.Cache {
			case "miss", "stale":
				execs++
			case "hit":
				hits++
			}
		}
		return
	}
	storm(2100) // 3000 rows, grp<7 -> 7/10
	if execs, hits := executions(); execs != 1 || hits != 63 {
		t.Fatalf("epoch 1: %d executions, %d hits; want 1 and 63 (stats %+v)", execs, hits, db.QueryCache().Stats())
	}
	// New epoch: DML + checkpoint, storm again — exactly one more execution.
	if _, err := db.Insert("events", [][]storage.Value{{
		storage.IntValue(9000), storage.IntValue(0), storage.DecString("1.00"), storage.StrValue("red"),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("events"); err != nil {
		t.Fatal(err)
	}
	storm(2101)
	if execs, hits := executions(); execs != 2 || hits != 126 {
		t.Fatalf("after 2 epochs: %d executions, %d hits; want 2 and 126 (stats %+v)", execs, hits, db.QueryCache().Stats())
	}
	// Goroutine-leak check: allow slack for runtime/test goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+10 {
		t.Fatalf("goroutine leak: %d before storm, %d after", before, g)
	}
}

// TestNoStaleHitUnderConcurrentDML is the -race pin for the epoch ordering
// fix: Tracker.Apply bumps the table epoch BEFORE publishing the unit, so
// a read that starts after a checkpointed update completes can never be
// served a pre-update cached result. The writer advances the table through
// generations while readers storm the same fingerprint; after each
// generation is fully published, a probe read must see the new count.
func TestNoStaleHitUnderConcurrentDML(t *testing.T) {
	db := cacheTestDB(t, 1000)
	defer db.Close()
	opts := QueryOptions{Mode: CostBased, RapidMode: qef.ModeX86}
	sql := "SELECT COUNT(*) FROM events"

	stop := make(chan struct{})
	var readers sync.WaitGroup
	var low atomic.Int64 // lowest acceptable count, advanced by the writer
	low.Store(1000)
	for i := 0; i < 8; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := low.Load()
				r, err := db.Query(sql, opts)
				if err != nil {
					t.Error(err)
					return
				}
				got := r.Rel.Cols[0].Data.Get(0)
				// Monotonicity: a read issued when `low` was already
				// published must never see fewer rows (a stale hit would).
				if got < floor {
					t.Errorf("stale read: count %d < published floor %d (cache=%s)", got, floor, r.Cache)
					return
				}
			}
		}()
	}
	for gen := 0; gen < 15; gen++ {
		if _, err := db.Insert("events", [][]storage.Value{{
			storage.IntValue(int64(10000 + gen)), storage.IntValue(1),
			storage.DecString("1.00"), storage.StrValue("blue"),
		}}); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint("events"); err != nil {
			t.Fatal(err)
		}
		// Insert + checkpoint fully published: raise the floor.
		low.Store(int64(1000 + gen + 1))
		// Probe: a fresh read right now must see the new generation.
		r, err := db.Query(sql, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Rel.Cols[0].Data.Get(0); got < int64(1000+gen+1) {
			t.Fatalf("gen %d: post-publication read returned %d (cache=%s)", gen, got, r.Cache)
		}
	}
	close(stop)
	readers.Wait()
}

// Satellite regression: journal fingerprints use the normalized template,
// so repeated parameterized queries group under one fingerprint while
// raw-SQL FNV would scatter them.
func TestJournalFingerprintGroupsParameterizedQueries(t *testing.T) {
	db := cacheTestDB(t, 200)
	defer db.Close()
	opts := QueryOptions{Mode: ForceHost}
	queries := []string{
		"SELECT COUNT(*) FROM events WHERE id < 10",
		"SELECT COUNT(*) FROM events WHERE id < 20",
		"select count(*)   from events\twhere id < 30",
		"SELECT count(*) FROM EVENTS WHERE ID < 40",
	}
	for _, q := range queries {
		if _, err := db.Query(q, opts); err != nil {
			t.Fatal(err)
		}
	}
	recs := db.QueryJournal().Records()
	if len(recs) != len(queries) {
		t.Fatalf("journal has %d records", len(recs))
	}
	fp := recs[0].Fingerprint
	for _, r := range recs {
		if r.Fingerprint != fp {
			t.Fatalf("fingerprints scattered: %x vs %x (%q)", r.Fingerprint, fp, r.SQL)
		}
	}
	// A structurally different query must not share the fingerprint.
	if _, err := db.Query("SELECT COUNT(*) FROM events WHERE grp < 10", opts); err != nil {
		t.Fatal(err)
	}
	recs = db.QueryJournal().Records()
	if recs[len(recs)-1].Fingerprint == fp {
		t.Fatal("different template must fingerprint differently")
	}
	// Unlexable SQL still journals (raw fingerprint fallback) — it errors
	// at parse, but the record lands.
	_, _ = db.Query("SELECT ~ FROM events", opts)
	recs = db.QueryJournal().Records()
	if len(recs) != len(queries)+2 {
		t.Fatalf("unlexable query must still journal: %d records", len(recs))
	}
}

func TestExplainAnalyzeShowsCacheLine(t *testing.T) {
	db := cacheTestDB(t, 500)
	defer db.Close()
	opts := QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU, FailOnInadmissible: true}
	miss, err := db.Query("EXPLAIN ANALYZE "+cacheSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Profile == nil {
		t.Fatalf("no profile: %s", miss.ProfileNote)
	}
	if !strings.Contains(miss.Profile.Format(), "cache: miss") {
		t.Fatalf("profile missing cache line:\n%s", miss.Profile.Format())
	}
	hit, err := db.Query("EXPLAIN ANALYZE "+cacheSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" {
		t.Fatalf("cache = %q", hit.Cache)
	}
	if !strings.Contains(hit.ProfileNote, "cache: hit") {
		t.Fatalf("hit note = %q", hit.ProfileNote)
	}
}
