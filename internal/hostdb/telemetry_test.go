package hostdb

import (
	"strings"
	"testing"

	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

// TestProfileNoteOnHostPaths pins the EXPLAIN ANALYZE satellite: when
// profiling is requested but the query never reaches RAPID, the result says
// why instead of silently carrying a nil profile.
func TestProfileNoteOnHostPaths(t *testing.T) {
	db := newTestDB(t, 500)
	loadAll(t, db)

	res, err := db.Query(`EXPLAIN ANALYZE SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceHost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatal("host execution must not carry a DPU profile")
	}
	if !strings.Contains(res.ProfileNote, "no DPU profile") || !strings.Contains(res.ProfileNote, "host") {
		t.Fatalf("ProfileNote = %q", res.ProfileNote)
	}

	// RAPID failure fallback notes the failure.
	res, err = db.Query(`EXPLAIN ANALYZE SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, InjectRapidFailure: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil || !strings.Contains(res.ProfileNote, "RAPID execution failed") {
		t.Fatalf("failure fallback: profile=%v note=%q", res.Profile != nil, res.ProfileNote)
	}

	// Inadmissible fallback notes the pending journal.
	if _, err := db.Insert("events", [][]storage.Value{{
		storage.IntValue(9000), storage.IntValue(1), storage.DecString("1.00"), storage.StrValue("red"),
	}}); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`EXPLAIN ANALYZE SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil || !strings.Contains(res.ProfileNote, "admissible") {
		t.Fatalf("inadmissible fallback: profile=%v note=%q", res.Profile != nil, res.ProfileNote)
	}

	// A successful offload has a profile and no note.
	if err := db.Checkpoint("events"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`EXPLAIN ANALYZE SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil || res.ProfileNote != "" {
		t.Fatalf("offload: profile=%v note=%q", res.Profile != nil, res.ProfileNote)
	}
}

// TestQueryEnergyAndTelemetryCounters verifies that every DPU offload feeds
// the energy model and the engine-wide counters, profiled or not.
func TestQueryEnergyAndTelemetryCounters(t *testing.T) {
	db := newTestDB(t, 2000)
	loadAll(t, db)
	res, err := db.Query(`SELECT grp, SUM(amount) FROM events GROUP BY grp`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded || !res.HasEnergy {
		t.Fatalf("offloaded=%v hasEnergy=%v", res.Offloaded, res.HasEnergy)
	}
	if res.Energy.TotalJoules() <= 0 || res.Energy.CoreFJ <= 0 || res.Energy.DMSReadFJ <= 0 {
		t.Fatalf("energy breakdown not populated: %+v", res.Energy)
	}
	// Activity + idle stays below the provisioned bound for the interval.
	m := power.DefaultEnergyModel()
	if bound := m.ProvisionedJoules(res.RapidSimSeconds); res.Energy.TotalJoules() > bound {
		t.Fatalf("total %g J exceeds provisioned %g J", res.Energy.TotalJoules(), bound)
	}
	vals := db.Metrics().Values()
	for _, name := range []string{
		"rapid_dpcore_cycles_total",
		"rapid_dms_read_bytes_total",
		"rapid_dms_descriptors_total",
		"rapid_sim_microseconds_total",
		"rapid_activity_energy_nanojoules_total",
		"rapid_idle_energy_nanojoules_total",
		"qef_work_units_total",
	} {
		if vals[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, vals[name])
		}
	}
	if h := db.Metrics().Histogram("hostdb_query_seconds"); h.Count() == 0 {
		t.Error("hostdb_query_seconds histogram saw no observations")
	}

	// An x86-mode offload must not claim DPU energy.
	before := db.Metrics().Values()["rapid_dpcore_cycles_total"]
	resX, err := db.Query(`SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if resX.HasEnergy {
		t.Error("x86 execution must not report activity energy")
	}
	if after := db.Metrics().Values()["rapid_dpcore_cycles_total"]; after != before {
		t.Errorf("x86 run moved DPU cycle counter %d -> %d", before, after)
	}
}
