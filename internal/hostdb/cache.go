package hostdb

import (
	"fmt"

	"rapid/internal/ops"
	"rapid/internal/qcache"
	"rapid/internal/sqlparse"
)

// Query-cache glue (DESIGN.md §10). The cache itself lives in
// internal/qcache; this file supplies the host-side keying, version
// vectors, payloads and hit accounting.

// cachedExec is the engine payload of one result-cache entry: everything a
// later hit needs to reconstruct a QueryResult without executing. The
// relation is shared, never mutated (result relations are read-only once
// returned — the same invariant Query callers already rely on).
type cachedExec struct {
	Rel         *ops.Relation
	Offloaded   bool
	Explain     string
	EstRapidSec float64
	EstHostSec  float64
}

// cacheModeKey discriminates result-cache entries by everything that can
// legally change the result surface or the error contract: the requested
// engine, strict-admissibility mode and pruning switch. Profile is
// deliberately absent — profiling changes billing detail, not results.
func cacheModeKey(opts QueryOptions) string {
	m := requestedMode(opts)
	if opts.FailOnInadmissible {
		m += "+strict"
	}
	if opts.DisablePruning {
		m += "+noprune"
	}
	return m
}

// cacheVersion returns table name's current version-vector entry: the
// host-level mutation SCN plus the RAPID replica's data epoch (which moves
// on checkpoint apply and compaction without a new host SCN).
func (db *Database) cacheVersion(name string) (qcache.Version, bool) {
	t, err := db.Table(name)
	if err != nil {
		return qcache.Version{}, false
	}
	v := qcache.Version{Name: name, MutSCN: t.MutationSCN()}
	if rt := t.Rapid(); rt != nil {
		v.Epoch = rt.DataEpoch()
	}
	return v, true
}

// cacheVersions captures the version vector for a table list, in order.
// ok=false when any table is unknown (not cacheable).
func (db *Database) cacheVersions(tables []string) ([]qcache.Version, bool) {
	out := make([]qcache.Version, 0, len(tables))
	for _, name := range tables {
		v, ok := db.cacheVersion(name)
		if !ok {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// versionsEqual is the validate-before-publish check: a result or plan is
// only published when the vector captured before parse/bind still matches
// the one captured after execution, so an interleaved mutation can never
// produce a stale-keyed entry.
func versionsEqual(a, b []qcache.Version) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// relationBytes estimates the resident footprint of a result relation for
// the cache's byte budget: column payloads at physical width plus a small
// per-column overhead.
func relationBytes(rel *ops.Relation) int64 {
	if rel == nil {
		return 0
	}
	var n int64 = 64
	for _, c := range rel.Cols {
		n += 64
		if c.Data != nil {
			n += int64(c.Data.SizeBytes())
		}
	}
	return n
}

// cachedHitResult builds the QueryResult for a result-cache hit or a
// shared singleflight execution: the stored relation with ~zero marginal
// billing (no cycles, no DMS, no energy, no admission) and the saved cost
// carried from the producing execution's profile.
func cachedHitResult(r *qcache.Result, opts QueryOptions, status string) *QueryResult {
	src := r.Payload.(*cachedExec)
	res := &QueryResult{
		Rel:           src.Rel,
		Offloaded:     src.Offloaded,
		Explain:       src.Explain,
		EstRapidSec:   src.EstRapidSec,
		EstHostSec:    src.EstHostSec,
		Cache:         status,
		CyclesSaved:   r.CyclesSaved,
		EnergySavedNJ: r.EnergySavedNJ,
	}
	if opts.Profile {
		res.ProfileNote = fmt.Sprintf(
			"cache: %s — served from result cache; saved ~%d cycles, ~%d nJ, ~%.3fms execution",
			status, r.CyclesSaved, r.EnergySavedNJ, float64(r.WallNs)/1e6)
	}
	return res
}

// buildCacheEntry wraps a finished miss execution as a result-cache entry.
func buildCacheEntry(res *QueryResult, versions []qcache.Version, wallNs int64) *qcache.Result {
	rows := 0
	if res.Rel != nil {
		rows = res.Rel.Rows()
	}
	return &qcache.Result{
		Payload: &cachedExec{
			Rel:         res.Rel,
			Offloaded:   res.Offloaded,
			Explain:     res.Explain,
			EstRapidSec: res.EstRapidSec,
			EstHostSec:  res.EstHostSec,
		},
		Bytes:         relationBytes(res.Rel),
		Versions:      versions,
		Rows:          rows,
		CyclesSaved:   res.Cycles,
		EnergySavedNJ: res.EnergyNJ,
		WallNs:        wallNs,
	}
}

// planScopeHost is the plan-cache scope for single-host binds; the tray
// binds against shard catalogs and uses its own scope (see cluster).
const planScopeHost = "host"

// normalizeForCache runs the literal normalization used for cache keys and
// journal fingerprints. The bool is false when the statement does not lex
// (the raw-SQL fingerprint remains the journal key and the query bypasses
// the cache).
func normalizeForCache(sql string) (sqlparse.Normalized, bool) {
	n, err := sqlparse.Normalize(sql)
	return n, err == nil
}
